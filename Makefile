GO ?= go

.PHONY: all build vet test test-short test-race cluster-test chaos multihost-smoke check metrics-lint bench-smoke bench-json bench-compare ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the concurrent layers (sweep service, durable
# result store, cluster coordinator, metric registry/tracer) — the
# packages whose invariants are all about shared state under load.
test-race:
	$(GO) test -race ./internal/service/... ./internal/store/... \
		./internal/cluster/... ./internal/obs/... \
		./internal/optimize/... ./internal/surrogate/... ./internal/uq/...

# Distributed-sweep fabric suite under the race detector: wire
# round-trip hash stability, rendezvous sharding, worker health and
# re-dispatch, 429 backpressure honoring, and the multi-node chaos
# tests (worker death, cross-node lease single-flight).
cluster-test:
	$(GO) test -race ./internal/cluster/...

# Fault-injection suite: panics mid-simulation, deadline overruns,
# transient and permanent failures, corrupted/truncated store entries,
# queue saturation, kill-restart recovery (both the result store and
# the durable sweep journal — coordinator killed mid-sweep and resumed,
# idempotent resubmission), and the multi-node chaos tests (worker
# killed mid-sweep, lease single-flight across nodes) — under the race
# detector.
chaos:
	$(GO) test -race -run 'Chaos|Restart|Corrupt|Truncated|Backpressure|CancelReleases|Journal|Recover|Idempotent' \
		./internal/service/... ./internal/store/... ./internal/cluster/...

# Two-process smoke: a worker and a coordinator as separate serve
# processes sharing one store directory; the coordinator is kill -9'd
# mid-sweep and restarted, and must resume the journaled sweep to
# completion and dedupe a same-key resubmission to the original id.
multihost-smoke: build
	./scripts/multihost_smoke.sh

# Lint the live /metrics exposition of a fully wired server against the
# strict format parser and the naming conventions.
metrics-lint:
	./scripts/metrics_lint.sh

# Static and runtime conformance: vet plus the exposition lint.
check: vet metrics-lint

# Quick perf smoke: the headline day-replay benchmarks (with the
# dense-vs-event speedup metric), the multi-day fan-out, the /metrics
# scrape cost under load, and the surrogate-accelerated optimizer.
bench-smoke:
	$(GO) test -run '^$$' -bench 'TwinDay|TableIV|RunBatchDays|SweepService|SweepWarmRestart|CoolingVariantSweep|MidDayCancel|MetricsScrapeUnderLoad|CoordinatorSweep|Optimize$$' -benchtime 1x .

# Emit the benchmark series as JSON (BENCH_PR10.json) so the perf
# trajectory is tracked PR over PR.
bench-json:
	./scripts/bench_json.sh BENCH_PR10.json

# Diff the two most recent BENCH_PR*.json series benchmark by benchmark
# (ns/op old vs new and the speedup ratio).
bench-compare:
	./scripts/bench_compare.sh

ci: build vet test check bench-smoke
