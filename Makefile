GO ?= go

.PHONY: all build vet test test-short bench-smoke bench-json bench-compare ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Quick perf smoke: the headline day-replay benchmarks (with the
# dense-vs-event speedup metric) plus the multi-day fan-out.
bench-smoke:
	$(GO) test -run '^$$' -bench 'TwinDay|TableIV|RunBatchDays|SweepService|CoolingVariantSweep|MidDayCancel' -benchtime 1x .

# Emit the benchmark series as JSON (BENCH_PR5.json) so the perf
# trajectory is tracked PR over PR.
bench-json:
	./scripts/bench_json.sh BENCH_PR5.json

# Diff the two most recent BENCH_PR*.json series benchmark by benchmark
# (ns/op old vs new and the speedup ratio).
bench-compare:
	./scripts/bench_compare.sh

ci: build vet test bench-smoke
