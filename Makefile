GO ?= go

.PHONY: all build vet test test-short test-race chaos check metrics-lint bench-smoke bench-json bench-compare ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the concurrent layers (sweep service, durable
# result store, metric registry/tracer) — the packages whose invariants
# are all about shared state under load.
test-race:
	$(GO) test -race ./internal/service/... ./internal/store/... ./internal/obs/...

# Fault-injection suite: panics mid-simulation, deadline overruns,
# transient and permanent failures, corrupted/truncated store entries,
# queue saturation, and kill-restart recovery — under the race detector.
chaos:
	$(GO) test -race -run 'Chaos|Restart|Corrupt|Truncated|Backpressure|CancelReleases' \
		./internal/service/... ./internal/store/...

# Lint the live /metrics exposition of a fully wired server against the
# strict format parser and the naming conventions.
metrics-lint:
	./scripts/metrics_lint.sh

# Static and runtime conformance: vet plus the exposition lint.
check: vet metrics-lint

# Quick perf smoke: the headline day-replay benchmarks (with the
# dense-vs-event speedup metric), the multi-day fan-out, and the
# /metrics scrape cost under load.
bench-smoke:
	$(GO) test -run '^$$' -bench 'TwinDay|TableIV|RunBatchDays|SweepService|SweepWarmRestart|CoolingVariantSweep|MidDayCancel|MetricsScrapeUnderLoad' -benchtime 1x .

# Emit the benchmark series as JSON (BENCH_PR7.json) so the perf
# trajectory is tracked PR over PR.
bench-json:
	./scripts/bench_json.sh BENCH_PR7.json

# Diff the two most recent BENCH_PR*.json series benchmark by benchmark
# (ns/op old vs new and the speedup ratio).
bench-compare:
	./scripts/bench_compare.sh

ci: build vet test check bench-smoke
