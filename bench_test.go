package exadigit

// One benchmark per table and figure of the paper's evaluation (§IV).
// Each benchmark regenerates its artifact at a reduced-but-faithful scale
// so the whole suite runs in minutes; cmd/experiments reproduces the
// full-scale numbers recorded in EXPERIMENTS.md.

import (
	"context"
	"math"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"exadigit/internal/exp"
	"exadigit/internal/power"
	"exadigit/internal/service"
)

// BenchmarkTableI regenerates the Frontier component overview.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := exp.TableI(); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableII regenerates the telemetry/FMU interface contract.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.TableII(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII regenerates the RAPS power verification (idle 7.24,
// HPL-core 22.3, peak 28.2 MW).
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := exp.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[2].RAPSMW, "peakMW")
	}
}

// BenchmarkTableIV regenerates the daily replay statistics over a reduced
// two-day window (the paper replays 183 days; cmd/experiments -days 183
// reproduces the full study).
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, sum, err := exp.TableIV(exp.DailyConfig{Days: 2, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.PowerMW.Mean, "avgMW")
		b.ReportMetric(sum.LossPct.Mean, "loss%")
	}
}

// BenchmarkFig4 regenerates the peak power breakdown.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows := exp.Fig4()
		b.ReportMetric(rows[0].MW, "gpuMW")
	}
}

// BenchmarkFig7 regenerates the cooling-model validation over a one-hour
// window (the paper validates ~24 h; cmd/experiments runs the full day).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, data, err := exp.Fig7(exp.Fig7Config{HorizonSec: 3600, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(data.Channels[3].MAPE, "pueMAPE%")
	}
}

// BenchmarkFig8 regenerates the synthetic benchmark transient (HPL +
// OpenMxP with the cooling model coupled).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, data, err := exp.Fig8(900)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(data.HPLPowerMW, "hplMW")
		b.ReportMetric(data.TempRiseHPLC, "tempRiseC")
	}
}

// BenchmarkFig9 regenerates the telemetry-replay validation over a
// two-hour window (full 24 h via cmd/experiments).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, data, err := exp.Fig9(exp.Fig9Config{Seed: 7, HorizonSec: 2 * 3600})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(data.MAPEPercent, "MAPE%")
	}
}

// BenchmarkSmartRectifier regenerates what-if 1 (§IV-3) over one day.
func BenchmarkSmartRectifier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunWhatIf(power.SmartRectifier, 1, 9, 91.5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.EtaGain*100, "etaGain%")
	}
}

// BenchmarkDC380 regenerates what-if 2 (§IV-3) over one day.
func BenchmarkDC380(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunWhatIf(power.DC380, 1, 9, 91.5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.VariantEta, "eta")
		b.ReportMetric(res.CarbonReductionPct, "carbonCut%")
	}
}

// runTwinDay executes one full synthetic day on the requested engine.
func runTwinDay(b *testing.B, engine string) *Result {
	b.Helper()
	tw, err := NewFrontierTwin()
	if err != nil {
		b.Fatal(err)
	}
	res, err := tw.Run(Scenario{
		Workload: WorkloadSynthetic, HorizonSec: 86400, TickSec: 15,
		Engine: engine, NoExport: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTwinDayUncooled measures the headline simulation rate the
// paper quotes ("each 24-hour replay takes about nine minutes ... or just
// three minutes without [cooling]"): one full simulated day per
// iteration on the event-driven engine. Outside the timed loop it also
// replays the same day on the dense reference engine and reports the
// measured speedup and the end-of-run energy divergence (the ISSUE 1
// acceptance gates: ≥3× and <0.01 %).
func BenchmarkTwinDayUncooled(b *testing.B) {
	start := time.Now()
	var res *Result
	for i := 0; i < b.N; i++ {
		res = runTwinDay(b, "event")
	}
	eventNs := float64(time.Since(start).Nanoseconds()) / float64(b.N)
	b.StopTimer()
	// The dense baseline runs once per benchmark invocation, not once
	// per b.N-calibration round — it costs a full simulated day.
	denseBaseline.Do(func() {
		denseStart := time.Now()
		denseRes := runTwinDay(b, "dense")
		denseNs = float64(time.Since(denseStart).Nanoseconds())
		denseMWh = denseRes.Report.EnergyMWh
	})
	b.ReportMetric(res.Report.AvgPowerMW, "avgMW")
	b.ReportMetric(denseNs/eventNs, "speedup_vs_dense")
	div := 100 * math.Abs(res.Report.EnergyMWh-denseMWh) / denseMWh
	b.ReportMetric(div, "energyDiv%")
	b.StartTimer()
}

var (
	denseBaseline sync.Once
	denseNs       float64
	denseMWh      float64
)

// BenchmarkTwinDayDense pins the dense reference engine's rate so the
// speedup trend stays visible in the recorded benchmark series.
func BenchmarkTwinDayDense(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runTwinDay(b, "dense")
	}
}

// BenchmarkRunBatchDays measures the parallel what-if fan-out: one
// synthetic day per logical CPU, spread across the worker pool.
func BenchmarkRunBatchDays(b *testing.B) {
	n := runtime.NumCPU()
	scenarios := make([]Scenario, n)
	for i := range scenarios {
		gen := DefaultGeneratorConfig()
		gen.Seed = int64(100 + i)
		scenarios[i] = Scenario{
			Workload: WorkloadSynthetic, HorizonSec: 86400, TickSec: 15,
			Generator: gen, NoExport: true,
		}
	}
	spec := FrontierSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunBatch(spec, scenarios, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res)), "days")
	}
}

// BenchmarkSweepService measures the twin-as-a-service throughput: a
// 16-scenario synthetic sweep submitted cold (every scenario simulated)
// and then re-submitted warm (served entirely from the content-addressed
// result cache), reporting scenarios/sec for both paths. This is the PR 2
// headline: the cache turns repeated what-ifs into O(hash lookup).
func BenchmarkSweepService(b *testing.B) {
	const n = 16
	scenarios := make([]Scenario, n)
	for i := range scenarios {
		gen := DefaultGeneratorConfig()
		gen.Seed = int64(5000 + i)
		scenarios[i] = Scenario{
			Name: "sweep-bench", Workload: WorkloadSynthetic,
			HorizonSec: 6 * 3600, TickSec: 15,
			Generator: gen, NoExport: true,
		}
	}
	spec := FrontierSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc := NewSweepService(SweepServiceOptions{})
		cold := time.Now()
		sw, err := svc.Submit(spec, scenarios, SweepOptions{Name: "cold"})
		if err != nil {
			b.Fatal(err)
		}
		<-sw.Done()
		coldSec := time.Since(cold).Seconds()

		warm := time.Now()
		sw2, err := svc.Submit(spec, scenarios, SweepOptions{Name: "warm"})
		if err != nil {
			b.Fatal(err)
		}
		<-sw2.Done()
		warmSec := time.Since(warm).Seconds()

		st := sw2.Status()
		if st.Cached != n {
			b.Fatalf("warm sweep not served from cache: %+v", st)
		}
		b.ReportMetric(float64(n)/coldSec, "cold_scen/s")
		b.ReportMetric(float64(n)/warmSec, "warm_scen/s")
		b.ReportMetric(warmSec/coldSec*100, "warm/cold%")
	}
}

// BenchmarkSweepWarmRestart measures the durable-store restart path (the
// PR 6 headline): a 16-scenario sweep is persisted once outside the
// timed loop, then each iteration "kill-restarts" the service — a fresh
// store.Open over the same directory plus a cold in-memory cache — and
// re-serves the whole sweep from disk, reporting scenarios/sec for the
// disk tier. Zero results are recomputed (the sweep must come back fully
// cached) and zero power models are rebuilt.
func BenchmarkSweepWarmRestart(b *testing.B) {
	const n = 16
	scenarios := make([]Scenario, n)
	for i := range scenarios {
		gen := DefaultGeneratorConfig()
		gen.Seed = int64(6000 + i)
		scenarios[i] = Scenario{
			Name: "restart-bench", Workload: WorkloadSynthetic,
			HorizonSec: 6 * 3600, TickSec: 15,
			Generator: gen, NoExport: true,
		}
	}
	spec := FrontierSpec()
	dir := b.TempDir()
	seedStore, err := OpenResultStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	seedSvc := NewSweepService(SweepServiceOptions{Store: seedStore})
	sw, err := seedSvc.Submit(spec, scenarios, SweepOptions{Name: "seed"})
	if err != nil {
		b.Fatal(err)
	}
	<-sw.Done()
	if st := sw.Status(); st.Done != n {
		b.Fatalf("seed sweep: %+v", st)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := OpenResultStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		svc := NewSweepService(SweepServiceOptions{Store: st})
		start := time.Now()
		sw, err := svc.Submit(spec, scenarios, SweepOptions{Name: "after-restart"})
		if err != nil {
			b.Fatal(err)
		}
		<-sw.Done()
		disk := time.Since(start).Seconds()
		if status := sw.Status(); status.Cached != n {
			b.Fatalf("restart sweep recomputed: %+v", status)
		}
		b.ReportMetric(float64(n)/disk, "disk_scen/s")
	}
}

// BenchmarkCoolingVariantSweep measures spec-driven sweep throughput:
// one sweep mixing three cooling plants (hand-calibrated preset, AutoCSM
// synthesis, and a re-sized AutoCSM variant) across three workload
// seeds, each scenario cooled by its own compiled design. The plants
// carry the adaptive solver — the accuracy budget sweeps ride on (the
// adaptive-vs-fixed tolerance is pinned per plant by
// TestAdaptiveSolverMatchesFixedAcrossPlants).
func BenchmarkCoolingVariantSweep(b *testing.B) {
	preset := FrontierSpec().Cooling
	preset.Solver = "adaptive"
	auto := preset
	auto.Preset = ""
	resized := auto
	resized.NumTowers = 4
	resized.TowerFlowGPM = 7500
	resized.PrimaryFlowGPM = 6000
	variants := []CoolingSpec{preset, auto, resized}

	var scenarios []Scenario
	for seed := int64(1); seed <= 3; seed++ {
		for i := range variants {
			gen := DefaultGeneratorConfig()
			gen.Seed = seed
			scenarios = append(scenarios, Scenario{
				Workload: WorkloadSynthetic, Generator: gen,
				HorizonSec: 1800, TickSec: 15, WetBulbC: 20,
				CoolingSpec: &variants[i],
				NoExport:    true, NoHistory: true,
			})
		}
	}
	workers := runtime.NumCPU()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc := NewSweepService(SweepServiceOptions{Workers: workers})
		start := time.Now()
		sw, err := svc.Submit(FrontierSpec(), scenarios, SweepOptions{Name: "cooling-mix"})
		if err != nil {
			b.Fatal(err)
		}
		<-sw.Done()
		if st := sw.Status(); st.Done != len(scenarios) {
			b.Fatalf("sweep status %+v", st)
		}
		b.ReportMetric(float64(len(scenarios))/time.Since(start).Seconds(), "scen/s")
	}
}

// BenchmarkMidDayCancel measures the cancel-to-stop latency of an
// in-flight cooled multi-day simulation — the context-aware abort the
// sweep service relies on (pre-refactor this was the rest of the run).
func BenchmarkMidDayCancel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		svc := NewSweepService(SweepServiceOptions{Workers: 1})
		sw, err := svc.Submit(FrontierSpec(), []Scenario{{
			Workload: WorkloadSynthetic, HorizonSec: 14 * 86400, TickSec: 1,
			Cooling: true, WetBulbC: 20, NoExport: true, NoHistory: true,
		}}, SweepOptions{Name: "long-day"})
		if err != nil {
			b.Fatal(err)
		}
		for sw.Status().Running == 0 {
			time.Sleep(time.Millisecond)
		}
		// Let it get a few simulated hours in before pulling the plug.
		time.Sleep(50 * time.Millisecond)
		start := time.Now()
		sw.Cancel()
		<-sw.Done()
		b.ReportMetric(float64(time.Since(start).Microseconds())/1e3, "cancel_ms")
		if st := sw.Status(); st.Cancelled != 1 {
			b.Fatalf("sweep status %+v", st)
		}
	}
}

// BenchmarkTwinDayCooled is the same day with the cooling model coupled.
func BenchmarkTwinDayCooled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tw, err := NewFrontierTwin()
		if err != nil {
			b.Fatal(err)
		}
		res, err := tw.Run(Scenario{
			Workload: WorkloadSynthetic, HorizonSec: 86400, TickSec: 15,
			Cooling: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Report.AvgPUE, "pue")
	}
}

// BenchmarkTwinDaySetonix measures the multi-partition twin: one full
// cooled day of a Setonix-like system — synthetic jobs on the CPU
// partition, a pinned-peak GPU partition — with both partitions' heat
// coupled into the shared plant. The per-partition power split rides
// along as cpuMW/gpuMW so the heterogeneous axis is tracked PR over PR.
func BenchmarkTwinDaySetonix(b *testing.B) {
	spec := SetonixLikeSpec()
	gen := DefaultGeneratorConfig()
	gen.Seed = 99
	day := Scenario{
		HorizonSec: 86400, TickSec: 15,
		Cooling: true, WetBulbC: 21, NoExport: true,
		Partitions: []PartitionScenario{
			{Workload: WorkloadSynthetic, Generator: gen},
			{Workload: WorkloadPeak},
		},
	}
	for i := 0; i < b.N; i++ {
		tw, err := NewTwin(spec)
		if err != nil {
			b.Fatal(err)
		}
		res, err := tw.Run(day)
		if err != nil {
			b.Fatal(err)
		}
		rep := res.Report
		if len(rep.Partitions) != 2 {
			b.Fatalf("expected 2 partition reports, got %d", len(rep.Partitions))
		}
		b.ReportMetric(rep.AvgPUE, "pue")
		b.ReportMetric(rep.Partitions[0].AvgPowerMW, "cpuMW")
		b.ReportMetric(rep.Partitions[1].AvgPowerMW, "gpuMW")
	}
}

// BenchmarkTwinDayCooledAdaptive is the cooled day under the adaptive
// plant solver (error-controlled integration, equilibrium holds, and
// cooling-boundary coasting) — the PR 4 headline. Outside the timed loop
// it replays the same day under the fixed-step reference solver and
// reports the energy and PUE divergence (acceptance gates: ≤0.1 % and
// ≤0.005) plus the fraction of simulated time the plant fast-forwarded.
// A fixed 20 °C wet bulb keeps the comparison a pure solver-error
// measurement (the seasonal weather generator is stateful, so coarser
// sampling under coasting would otherwise change its noise path).
func BenchmarkTwinDayCooledAdaptive(b *testing.B) {
	spec := FrontierSpec()
	spec.Cooling.Solver = "adaptive"
	day := Scenario{
		Workload: WorkloadSynthetic, HorizonSec: 86400, TickSec: 15,
		Cooling: true, WetBulbC: 20, NoExport: true,
	}
	var res *Result
	var quiescent float64
	for i := 0; i < b.N; i++ {
		tw, err := NewTwin(spec)
		if err != nil {
			b.Fatal(err)
		}
		res, err = tw.Run(day)
		if err != nil {
			b.Fatal(err)
		}
		quiescent = tw.Simulation().CoolingSolverStats().QuiescentFraction()
	}
	b.StopTimer()
	fixedCooledBaseline.Do(func() {
		tw, err := NewFrontierTwin()
		if err != nil {
			b.Fatal(err)
		}
		ref, err := tw.Run(day)
		if err != nil {
			b.Fatal(err)
		}
		fixedCooledMWh = ref.Report.EnergyMWh
		fixedCooledPUE = ref.Report.AvgPUE
	})
	b.ReportMetric(res.Report.AvgPUE, "pue")
	b.ReportMetric(quiescent*100, "quiescent%")
	b.ReportMetric(100*math.Abs(res.Report.EnergyMWh-fixedCooledMWh)/fixedCooledMWh, "energyDiv%")
	b.ReportMetric(math.Abs(res.Report.AvgPUE-fixedCooledPUE), "pueDiv")
	b.StartTimer()
}

var (
	fixedCooledBaseline sync.Once
	fixedCooledMWh      float64
	fixedCooledPUE      float64
)

// BenchmarkMetricsScrapeUnderLoad measures the /metrics exposition cost
// while the sweep service is mid-sweep with a saturated worker pool —
// the cost a Prometheus scrape interval imposes on a busy server. Each
// iteration is one full scrape through the real HTTP handler; the last
// response is re-parsed under the strict validator outside the timed
// loop and its family/series/byte sizes ride along.
func BenchmarkMetricsScrapeUnderLoad(b *testing.B) {
	svc := NewSweepService(SweepServiceOptions{Workers: runtime.NumCPU()})
	reg := svc.Registry()
	RegisterGoMetrics(reg)
	scenarios := make([]Scenario, 32)
	for i := range scenarios {
		gen := DefaultGeneratorConfig()
		gen.Seed = int64(8000 + i)
		scenarios[i] = Scenario{
			Name: "scrape-load", Workload: WorkloadSynthetic,
			HorizonSec: 6 * 3600, TickSec: 15,
			Generator: gen, NoExport: true, NoHistory: true,
		}
	}
	sw, err := svc.Submit(FrontierSpec(), scenarios, SweepOptions{Name: "scrape-load"})
	if err != nil {
		b.Fatal(err)
	}
	h := reg.Handler()
	var last []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			b.Fatalf("/metrics status = %d", rec.Code)
		}
		last = rec.Body.Bytes()
	}
	b.StopTimer()
	e, err := ParseMetricsExposition(last)
	if err != nil {
		b.Fatalf("scrape under load failed strict validation: %v", err)
	}
	series := 0
	for _, name := range e.FamilyNames() {
		series += len(e.Families[name].Series)
	}
	b.ReportMetric(float64(len(e.FamilyNames())), "families")
	b.ReportMetric(float64(series), "series")
	b.ReportMetric(float64(len(last)), "bytes")
	sw.Cancel()
	<-sw.Done()
}

// BenchmarkCoordinatorSweep measures the distributed sweep fabric (the
// PR 8 headline): a coordinator fans one cold sweep out to in-process
// worker serve instances over real HTTP, at 1 worker node vs 3. Each
// scenario's service time is pinned to a 450 ms floor (an injected wait
// dominating the few ms of actual simulation), so the measured scaling
// isolates what the fabric adds — sharding, HTTP submit/stream,
// result collection — rather than raw simulation CPU, which a
// single-CPU CI host cannot scale anyway. Reported: cold scenarios/sec
// at both topologies, the 3-vs-1 scaling ratio, and parallel
// efficiency (ratio / 3).
func BenchmarkCoordinatorSweep(b *testing.B) {
	const (
		n           = 36
		serviceTime = 450 * time.Millisecond
		slotsPer    = 2 // per-node concurrent simulations, both topologies
	)
	spec := FrontierSpec()
	runTopology := func(nodes int, seedBase int64) float64 {
		var cleanups []func()
		defer func() {
			for i := len(cleanups) - 1; i >= 0; i-- {
				cleanups[i]()
			}
		}()
		urls := make([]string, nodes)
		for w := range urls {
			wsvc := NewSweepService(SweepServiceOptions{Workers: slotsPer})
			wsvc.SetFaultInjector(&service.FaultInjector{
				BeforeRun: func(ctx context.Context, f service.Fault) error {
					t := time.NewTimer(serviceTime)
					defer t.Stop()
					select {
					case <-t.C:
						return nil
					case <-ctx.Done():
						return ctx.Err()
					}
				},
			})
			srv := httptest.NewServer(wsvc.Handler())
			cleanups = append(cleanups, srv.Close, wsvc.CancelAll)
			urls[w] = srv.URL
		}
		pool, err := NewClusterPool(ClusterOptions{Workers: urls})
		if err != nil {
			b.Fatal(err)
		}
		coord := NewSweepService(SweepServiceOptions{Workers: 16, Runner: pool})
		cleanups = append(cleanups, coord.CancelAll)
		scenarios := make([]Scenario, n)
		for i := range scenarios {
			gen := DefaultGeneratorConfig()
			gen.Seed = seedBase + int64(i) // fresh keys: every round is cold
			scenarios[i] = Scenario{
				Name: "coord-bench", Workload: WorkloadSynthetic,
				HorizonSec: 60, TickSec: 15,
				Generator: gen, NoExport: true, NoHistory: true,
			}
		}
		start := time.Now()
		sw, err := coord.Submit(spec, scenarios, SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		<-sw.Done()
		elapsed := time.Since(start).Seconds()
		if st := sw.Status(); st.Done != n {
			b.Fatalf("%d-node sweep: %+v", nodes, st)
		}
		return float64(n) / elapsed
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1 := runTopology(1, int64(100000+i*10000))
		r3 := runTopology(3, int64(200000+i*10000))
		b.ReportMetric(r1, "cold_1w_scen/s")
		b.ReportMetric(r3, "cold_3w_scen/s")
		b.ReportMetric(r3/r1, "scaling_x")
		b.ReportMetric(r3/r1/3*100, "efficiency%")
	}
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

// BenchmarkAblationTick measures the 1 s-vs-15 s tick fidelity/cost
// trade (the fast path must stay within 1 % energy).
func BenchmarkAblationTick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, div, err := exp.AblationTick(1800, 13)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(div, "energyDiv%")
	}
}

// BenchmarkAblationCoolingCost measures the cooling-coupling cost ratio
// (paper: ≈3×, 9 min vs 3 min per replayed day).
func BenchmarkAblationCoolingCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, ratio, err := exp.AblationCoolingCost(1800, 13)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ratio, "ratio")
	}
}

// BenchmarkAblationControlDt measures the plant integration-period trade
// (Finding 6's fidelity-vs-complexity balance).
func BenchmarkAblationControlDt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationControlDt([]float64{1, 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimize measures the surrogate-accelerated inner loop of
// the co-design optimizer (the PR 10 headline): the same study — an
// 8-generation, population-384 energy minimisation over workload
// arrival rate and job wall time — runs twice, once with every
// candidate twin-evaluated (DisableSurrogate) and once with the
// conformal-gated surrogate screening. Both arms settle the same number
// of candidates; the surrogate arm promotes only UQ fallbacks, the
// predicted Pareto frontier, and the predicted top K to the twin.
// Reported: candidate-settling throughput per arm, the screening
// speedup (target ≥20×), the fallback share, and the divergence of the
// surrogate arm's twin-exact best from the full arm's (target ≤1%).
func BenchmarkOptimize(b *testing.B) {
	study := OptimizeStudySpec{
		Knobs: []OptimizeKnob{
			{Name: "workload.arrival_mean_sec", Min: 30, Max: 300, Step: 0.5},
			{Name: "workload.wall_mean_sec", Min: 300, Max: 3600, Step: 10},
		},
		Objectives: []OptimizeObjective{
			{Metric: "energy_mwh"},
		},
		Population:  384,
		Generations: 8,
		InitSample:  16,
		PromoteTopK: 2,
		Seed:        17,
	}
	base := Scenario{
		Name: "optimize-bench", Workload: WorkloadSynthetic,
		HorizonSec: 1800, TickSec: 15,
		Generator: DefaultGeneratorConfig(), NoExport: true, NoHistory: true,
	}
	base.Generator.Seed = 9000
	spec := FrontierSpec()

	runArm := func(disable bool) (sec float64, res *OptimizeStudyResult) {
		svc := NewSweepService(SweepServiceOptions{})
		arm := study
		arm.DisableSurrogate = disable
		start := time.Now()
		st, err := svc.SubmitStudy(spec, base, arm, StudyOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if err := st.Wait(context.Background()); err != nil {
			b.Fatal(err)
		}
		status := st.Status()
		if status.State != service.StudyDone {
			b.Fatalf("arm(disable=%v): %s (%s)", disable, status.State, status.Error)
		}
		return time.Since(start).Seconds(), st.Result()
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fullSec, full := runArm(true)
		surrSec, surr := runArm(false)
		// Candidates settled = twin evaluations + surrogate screenings;
		// both arms face the same deduplicated candidate stream.
		fullCands := float64(full.TwinEvals + full.Screened)
		surrCands := float64(surr.TwinEvals + surr.Screened)
		fullRate := fullCands / fullSec
		surrRate := surrCands / surrSec
		if full.Best == nil || surr.Best == nil {
			b.Fatal("an arm found no feasible best")
		}
		div := math.Abs(surr.Best.Objectives["energy_mwh"]-full.Best.Objectives["energy_mwh"]) /
			full.Best.Objectives["energy_mwh"] * 100
		b.ReportMetric(fullRate, "twin_cands/s")
		b.ReportMetric(surrRate, "surr_cands/s")
		b.ReportMetric(surrRate/fullRate, "speedup_x")
		b.ReportMetric(float64(surr.Fallbacks)/surrCands*100, "fallback%")
		b.ReportMetric(div, "divergence%")
	}
}

// BenchmarkAblationSchedulers compares FCFS/SJF/EASY on an
// oversubscribed day.
func BenchmarkAblationSchedulers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, reports, err := exp.AblationSchedulers(1800, 21)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(reports["easy"].JobsCompleted), "easyJobs")
	}
}
