// Command autocsm generates a cooling-system model from a JSON system
// specification — the paper's Automated Cooling System Model pipeline
// (§V): it sizes pumps, heat exchangers, and tower cells from high-level
// design quantities, verifies the generated plant reaches a balanced
// steady state at its design load, and optionally emits the model as
// Modelica source text.
//
// Usage:
//
//	autocsm [-spec system.json] [-emit-modelica out.mo] [-verify]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"exadigit"
	"exadigit/internal/autocsm"
	"exadigit/internal/cooling"
	"exadigit/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("autocsm: ")

	var (
		specFile = flag.String("spec", "", "system spec JSON (default: built-in Frontier)")
		emitPath = flag.String("emit-modelica", "", "write the generated model as Modelica source")
		verify   = flag.Bool("verify", true, "settle the generated plant at design load and report")
	)
	flag.Parse()

	spec := exadigit.FrontierSpec()
	if *specFile != "" {
		s, err := exadigit.LoadSpec(*specFile)
		if err != nil {
			log.Fatal(err)
		}
		spec = *s
	}

	cfg, err := autocsm.Generate(spec.Cooling)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated cooling model for %q:\n", spec.Name)
	fmt.Printf("  %d CDU loops, %d towers × %d cells, %d HTWPs, %d CTWPs, %d EHX\n",
		cfg.NumCDUs, cfg.NumTowers, cfg.CellsPerTower, cfg.NumHTWPs, cfg.NumCTWPs, cfg.NumEHX)
	fmt.Printf("  CDU HEX UA %.0f W/degC, EHX UA %.0f W/degC, tower eps %.3f\n",
		cfg.CDUHex.UANominal, cfg.EHX.UANominal, cfg.Tower.EpsNominal)

	if *emitPath != "" {
		f, err := os.Create(*emitPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := autocsm.EmitModelica(f, "GeneratedCoolingSystem", cfg); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Modelica source written to %s\n", *emitPath)
	}

	if *verify {
		plant, err := cooling.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		heat := make([]float64, cfg.NumCDUs)
		total := spec.Cooling.DesignHeatMW * 1e6
		for i := range heat {
			heat[i] = total / float64(cfg.NumCDUs)
		}
		in := cooling.Inputs{
			CDUHeatW: heat,
			WetBulbC: spec.Cooling.DesignWetBulbC,
			ITPowerW: total / 0.945,
		}
		if err := plant.SettleToSteadyState(in, 4*3600); err != nil {
			log.Fatal(err)
		}
		o := plant.Snapshot()
		fmt.Printf("steady state at %.1f MW design load, %.1f degC wet bulb:\n",
			spec.Cooling.DesignHeatMW, spec.Cooling.DesignWetBulbC)
		fmt.Printf("  tower rejection  %.2f MW\n", plant.TowerRejectionW()/1e6)
		fmt.Printf("  primary loop     %.0f gpm, %.1f -> %.1f degC\n",
			o.HTWFlowM3s*units.M3sToGPM, o.FacilitySupplyC, o.FacilityReturnC)
		fmt.Printf("  tower loop       %.0f gpm, %d/%d cells staged\n",
			o.CTWFlowM3s*units.M3sToGPM, o.NumCellsStaged, cfg.TotalCells())
		fmt.Printf("  secondary supply %.2f degC (setpoint %.1f)\n",
			o.CDUs[0].SecSupplyTempC, cfg.SecSupplySetC)
		fmt.Printf("  PUE              %.3f\n", o.PUE)
	}
}
