// Command exadigit runs the integrated digital twin and serves the
// dashboard REST API (the paper's web-dashboard backend, §III-B6/III-D):
// it simulates a scenario on the Frontier twin and then exposes
// /api/status, /api/series, /api/cooling, /api/run and /api/experiments
// over HTTP, so what-if experiments can be launched and recalled exactly
// as through the paper's Kubernetes-hosted dashboard.
//
// The serve subcommand starts the twin-as-a-service backend instead: the
// concurrent scenario-sweep API (submit/status/cancel, content-addressed
// result cache, NDJSON result streaming) mounted alongside the dashboard
// endpoints. Passing worker URLs instead of a worker count turns the
// instance into a cluster coordinator that fans sweeps out to those
// workers over the same API (see README "Distributed sweeps").
//
// Usage:
//
//	exadigit [-addr :8080] [-workload synthetic] [-horizon 2h]
//	         [-cooling] [-once]
//	exadigit serve [-addr :8080] [-workers N|url,url,...] [-cache 1024]
//	               [-cache-bytes 268435456] [-spec spec.json] [-warm 15m]
//	               [-presets plants.json] [-token SECRET]
//	               [-store DIR] [-lease-ttl 0] [-quarantine-ttl 0]
//	               [-shard-stall 2m] [-scenario-timeout 0]
//	               [-max-attempts 3] [-max-pending 4096] [-drain 30s]
//	               [-trace FILE] [-metrics-log-every 60s] [-pprof]
//	exadigit metrics-dump   print the fully wired /metrics exposition
//	exadigit metrics-lint   validate it (format + naming conventions)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"exadigit"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("exadigit: ")

	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			serve(os.Args[2:])
			return
		case "metrics-dump":
			metricsExposition(true)
			return
		case "metrics-lint":
			metricsExposition(false)
			return
		}
	}

	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		workload = flag.String("workload", "synthetic", "initial scenario workload")
		horizon  = flag.Duration("horizon", 2*time.Hour, "initial scenario duration")
		cool     = flag.Bool("cooling", true, "couple the cooling model")
		once     = flag.Bool("once", false, "run the scenario, print status, and exit (no server)")
	)
	flag.Parse()

	tw, err := exadigit.NewFrontierTwin()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("running initial %s scenario (%v)...", *workload, *horizon)
	res, err := tw.Run(exadigit.Scenario{
		Workload:   exadigit.WorkloadKind(*workload),
		HorizonSec: horizon.Seconds(),
		TickSec:    15,
		Cooling:    *cool,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("scenario done: %.2f MW avg, %d jobs, PUE %.3f",
		res.Report.AvgPowerMW, res.Report.JobsCompleted, res.Report.AvgPUE)
	fmt.Print(exadigit.RenderStatus(tw))

	if *once {
		return
	}
	dash := exadigit.NewDashboardServer(tw)
	dash.SetLogf(log.Printf)
	log.Printf("serving dashboard API on %s", *addr)
	log.Printf("  GET  /api/status       — live status")
	log.Printf("  GET  /api/series       — power/PUE/utilization history")
	log.Printf("  GET  /api/cooling      — the compiled plant's output channels")
	log.Printf("  POST /api/run          — launch a what-if (workload=, mode=, horizon_sec=, cooling=)")
	log.Printf("  GET  /api/experiments  — recall stored what-if results")
	log.Printf("  GET  /api/metrics      — HTTP middleware counters")
	if err := http.ListenAndServe(*addr, dash.Handler()); err != nil {
		log.Fatal(err)
	}
}

// serve runs the twin-as-a-service mode: the sweep API plus the
// dashboard endpoints on one listener.
func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":8080", "HTTP listen address")
		workers    = fs.String("workers", "0", "an integer bounds concurrent local simulations (0 = all CPUs); comma-separated base URLs (http://host:8080,...) switch to coordinator mode, fanning sweeps out to those worker serve instances")
		cacheCap   = fs.Int("cache", 1024, "result-cache capacity (scenario results)")
		cacheBytes = fs.Int64("cache-bytes", 256<<20, "result-cache byte bound (approximate resident size)")
		specPath   = fs.String("spec", "", "system spec JSON for the dashboard twin (default: built-in Frontier)")
		warm       = fs.Duration("warm", 15*time.Minute, "warm-up scenario horizon for the dashboard twin (0 skips)")
		presets    = fs.String("presets", "", "cooling preset registry JSON ({\"name\": {plant config}}), resolved before built-ins")
		token      = fs.String("token", "", "bearer token required on every request (default $EXADIGIT_TOKEN; empty disables auth)")
		storeDir   = fs.String("store", "", "durable result-store directory: completed scenario results persist here and survive restarts (empty = memory-only)")
		leaseTTL   = fs.Duration("lease-ttl", 0, "cross-node single-flight: lease each store key this long before computing it, so nodes sharing -store never duplicate a run; size for worst-case scenario compute (0 disables; ignored in coordinator mode)")
		quarTTL    = fs.Duration("quarantine-ttl", 0, "delete *.corrupt quarantine files older than this from -store at startup (0 keeps them forever)")
		shardStall = fs.Duration("shard-stall", 2*time.Minute, "coordinator mode: one shard's submit+stream bound on one worker before it is re-dispatched elsewhere (0 = no per-worker bound)")
		scenTO     = fs.Duration("scenario-timeout", 0, "per-scenario attempt deadline (0 = none); overrunning attempts are retried")
		attempts   = fs.Int("max-attempts", 3, "simulation attempts per scenario before its failure is permanent")
		maxPending = fs.Int("max-pending", 4096, "queued+running scenario bound; beyond it submissions get 429 + Retry-After")
		drain      = fs.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight sweeps before cancelling them")
		resume     = fs.Bool("resume", true, "re-adopt journaled sweeps from -store at startup: finished sweeps stay queryable, interrupted sweeps resume where the previous process died (needs -store)")
		traceFile  = fs.String("trace", "", "append every scenario lifecycle span to FILE as NDJSON (the /api/sweeps/trace ring persisted)")
		logEvery   = fs.Duration("metrics-log-every", time.Minute, "period of the metrics heartbeat log line (0 disables; final flush still happens at shutdown)")
		pprofOn    = fs.Bool("pprof", true, "mount /debug/pprof profiling endpoints (behind the bearer token when one is set)")
	)
	_ = fs.Parse(args)
	if *token == "" {
		// Read the env fallback after parsing rather than as the flag
		// default, so usage/error output never prints the secret.
		*token = os.Getenv("EXADIGIT_TOKEN")
	}

	// -workers dual-parses: an integer keeps the historical meaning
	// (local simulation pool size); anything else is a comma-separated
	// worker URL list that switches this instance into coordinator mode.
	localWorkers := 0
	var workerURLs []string
	if n, err := strconv.Atoi(strings.TrimSpace(*workers)); err == nil {
		localWorkers = n
	} else {
		for _, u := range strings.Split(*workers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				workerURLs = append(workerURLs, u)
			}
		}
		if len(workerURLs) == 0 {
			log.Fatalf("-workers %q: not an integer and no worker URLs", *workers)
		}
	}

	if *presets != "" {
		names, err := exadigit.RegisterCoolingPresetsFromFile(*presets)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("registered cooling presets from %s: %v", *presets, names)
	}

	spec := exadigit.FrontierSpec()
	if *specPath != "" {
		loaded, err := exadigit.LoadSpec(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		spec = *loaded
	}
	tw, err := exadigit.NewTwin(spec)
	if err != nil {
		log.Fatal(err)
	}
	if *warm > 0 {
		log.Printf("warming dashboard twin with a %v synthetic scenario...", *warm)
		if _, err := tw.Run(exadigit.Scenario{
			Workload:   exadigit.WorkloadSynthetic,
			HorizonSec: warm.Seconds(),
			TickSec:    15,
		}); err != nil {
			log.Fatal(err)
		}
	}

	var resultStore *exadigit.ResultStore
	if *storeDir != "" {
		var err error
		resultStore, err = exadigit.OpenResultStoreOptions(*storeDir,
			exadigit.ResultStoreOptions{QuarantineTTL: *quarTTL})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("durable result store at %s (%d entries indexed)", *storeDir, resultStore.Len())
	}

	// One registry serves every subsystem: the sweep service, the
	// coordinator pool (when present), the dashboard stack, the live
	// twin's gauges, and the Go runtime.
	reg := exadigit.NewMetricsRegistry()

	svcOpts := exadigit.SweepServiceOptions{
		Workers: localWorkers, CacheCap: *cacheCap, CacheMaxBytes: *cacheBytes,
		Store: resultStore, ScenarioTimeout: *scenTO,
		MaxAttempts: *attempts, MaxPending: *maxPending,
		LeaseTTL: *leaseTTL, Registry: reg,
	}
	if len(workerURLs) > 0 {
		pool, err := exadigit.NewClusterPool(exadigit.ClusterOptions{
			Workers: workerURLs, Token: *token, Registry: reg,
			Store: resultStore, StallTimeout: *shardStall, Logf: log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		svcOpts.Runner = pool
		if localWorkers == 0 {
			// Dispatch slots only wait on worker HTTP, so size the pool
			// well past the CPU count: keep every worker's queue fed.
			svcOpts.Workers = 8 * len(workerURLs)
		}
		log.Printf("coordinator mode: dispatching to %d worker(s) %v (shard stall bound %v)",
			len(workerURLs), workerURLs, *shardStall)
	}
	svc := exadigit.NewSweepService(svcOpts)
	svc.SetLogf(log.Printf)
	if *resume && resultStore != nil {
		// Recovery must precede serving: a request for a journaled sweep
		// id races the re-adoption otherwise.
		stats, err := svc.Recover()
		if err != nil {
			log.Printf("sweep recovery: %v (continuing without)", err)
		} else if stats.Adopted+stats.Finished > 0 {
			log.Printf("sweep recovery: resumed %d interrupted sweep(s) (%d scenarios restored terminal, %d re-enqueued), re-registered %d finished",
				stats.Adopted, stats.Terminal, stats.Requeued, stats.Finished)
		}
	}
	dash := exadigit.NewDashboardServer(tw)
	dash.SetLogf(log.Printf)
	dash.RegisterMetrics(reg)
	exadigit.RegisterTwinMetrics(reg, tw)
	exadigit.RegisterGoMetrics(reg)

	var traceSink *os.File
	if *traceFile != "" {
		var err error
		traceSink, err = os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		svc.Tracer().SetSink(traceSink)
		log.Printf("appending scenario lifecycle spans to %s", *traceFile)
	}

	mux := http.NewServeMux()
	sweepAPI := svc.Handler()
	mux.Handle("/api/sweeps", sweepAPI)
	mux.Handle("/api/sweeps/", sweepAPI)
	mux.Handle("/api/optimize", sweepAPI)
	mux.Handle("/api/optimize/", sweepAPI)
	mux.Handle("GET /metrics", reg.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.Handle("/", dash.Handler())
	handler := exadigit.RequireBearerToken(*token, mux)
	if *token != "" {
		log.Printf("bearer-token auth enabled (every request needs Authorization: Bearer <token>)")
	}

	// Periodic metrics heartbeat: the counters appear in the log on a
	// cadence, not only at shutdown, so a wedged or killed -9 process
	// still leaves recent accounting behind.
	heartbeatDone := make(chan struct{})
	if *logEvery > 0 {
		go func() {
			t := time.NewTicker(*logEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					log.Printf("metrics: sweeps %s | http %s", svc.Summary(), svc.Metrics().Summary())
				case <-heartbeatDone:
					return
				}
			}
		}()
	}

	log.Printf("serving twin-as-a-service on %s (%d workers, cache %d entries / %d MiB)",
		*addr, svc.Workers(), *cacheCap, *cacheBytes>>20)
	log.Printf("  POST /api/sweeps               — submit a scenario sweep (per-scenario cooling_spec mixes plants)")
	log.Printf("  GET  /api/sweeps               — list sweeps + cache stats")
	log.Printf("  GET  /api/sweeps/{id}          — sweep status")
	log.Printf("  GET  /api/sweeps/{id}/results  — completed results")
	log.Printf("  GET  /api/sweeps/{id}/stream   — NDJSON results as they complete")
	log.Printf("  POST /api/sweeps/{id}/cancel   — cancel queued and in-flight work (aborts mid-day)")
	log.Printf("  GET  /api/sweeps/metrics       — JSON metrics snapshot (http/cache/failures/store)")
	log.Printf("  GET  /api/sweeps/trace         — NDJSON scenario lifecycle spans (?limit=N)")
	log.Printf("  POST /api/optimize             — submit a co-design study (surrogate-screened search)")
	log.Printf("  GET  /api/optimize/{id}/stream — NDJSON per-generation progress, then the result")
	log.Printf("  GET  /metrics                  — Prometheus text exposition")
	if *pprofOn {
		log.Printf("  GET  /debug/pprof/             — runtime profiling (heap, cpu, goroutines)")
	}
	log.Printf("  (dashboard endpoints /api/status, /api/series, /api/cooling, /api/run remain mounted)")

	server := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		return
	case sig := <-sigc:
		log.Printf("received %v; draining in-flight sweeps (up to %v, signal again to cancel them)", sig, *drain)
	}

	// Shutdown sequence: stop admitting sweeps (refused submissions get
	// a Retry-After derived from the drain window), drain what's running
	// (a second signal cancels instead of waiting), then shut the
	// listener down and flush the final metrics so the process's
	// accounting isn't lost with it.
	svc.CloseDraining(*drain)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drain)
	go func() {
		<-sigc
		log.Printf("second signal: cancelling in-flight sweeps")
		svc.CancelAll()
	}()
	if err := svc.Drain(drainCtx); err != nil {
		log.Printf("drain incomplete (%v); cancelling remaining sweeps", err)
		svc.CancelAll()
		fallback, cancelFallback := context.WithTimeout(context.Background(), 5*time.Second)
		_ = svc.Drain(fallback)
		cancelFallback()
	}
	cancelDrain()

	shutCtx, cancelShut := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelShut()
	if err := server.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}

	close(heartbeatDone)
	log.Printf("sweep http: %s", svc.Metrics().Summary())
	log.Printf("dashboard http: %s", dash.Metrics().Summary())
	log.Printf("sweeps: %s", svc.Summary())
	if traceSink != nil {
		if err := svc.Tracer().SinkErr(); err != nil {
			log.Printf("trace sink detached after write error: %v", err)
		}
		_ = traceSink.Close()
	}
	hits, misses, entries := svc.CacheStats()
	log.Printf("result cache: hits=%d misses=%d entries=%d", hits, misses, entries)
	fm := svc.FailureMetricsSnapshot()
	log.Printf("failures: retries=%d panics_recovered=%d timeouts=%d queue_rejections=%d",
		fm.Retries, fm.PanicsRecovered, fm.Timeouts, fm.QueueRejections)
	if sm, ok := svc.StoreMetricsSnapshot(); ok {
		log.Printf("store: hits=%d misses=%d puts=%d put_errors=%d corrupt=%d entries=%d bytes=%d",
			sm.Hits, sm.Misses, sm.Puts, sm.PutErrors, sm.CorruptQuarantined, sm.Entries, sm.Bytes)
	}
	log.Printf("shutdown complete")
}

// metricsExposition wires the full serve-mode registry (sweep service,
// dashboard stack, twin gauges, Go runtime), exercises it with one tiny
// sweep and a couple of requests so the labeled families carry series,
// and either prints the exposition (dump=true) or runs the strict
// format validator plus the naming-convention lint over it — the engine
// behind scripts/metrics_lint.sh and `make check`.
func metricsExposition(dump bool) {
	tw, err := exadigit.NewFrontierTwin()
	if err != nil {
		log.Fatal(err)
	}
	svc := exadigit.NewSweepService(exadigit.SweepServiceOptions{Workers: 2})
	reg := svc.Registry()
	dash := exadigit.NewDashboardServer(tw)
	dash.RegisterMetrics(reg)
	exadigit.RegisterTwinMetrics(reg, tw)
	exadigit.RegisterGoMetrics(reg)

	sw, err := svc.Submit(exadigit.FrontierSpec(), []exadigit.Scenario{
		{Workload: exadigit.WorkloadSynthetic, HorizonSec: 60, TickSec: 15, NoExport: true, NoHistory: true},
	}, exadigit.SweepOptions{Name: "metrics-lint"})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := sw.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	for _, target := range []struct {
		h    http.Handler
		path string
	}{
		{svc.Handler(), "/api/sweeps"},
		{svc.Handler(), "/api/sweeps/" + sw.ID()},
		{dash.Handler(), "/api/status"},
	} {
		rec := httptest.NewRecorder()
		target.h.ServeHTTP(rec, httptest.NewRequest("GET", target.path, nil))
	}

	// Coordinator families: run one shard through an in-process worker
	// so the exadigit_cluster_* series exist and get linted too.
	wsvc := exadigit.NewSweepService(exadigit.SweepServiceOptions{Workers: 1})
	wsrv := httptest.NewServer(wsvc.Handler())
	defer wsrv.Close()
	pool, err := exadigit.NewClusterPool(exadigit.ClusterOptions{Workers: []string{wsrv.URL}, Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	coord := exadigit.NewSweepService(exadigit.SweepServiceOptions{Workers: 2, Runner: pool})
	csw, err := coord.Submit(exadigit.FrontierSpec(), []exadigit.Scenario{
		{Workload: exadigit.WorkloadIdle, HorizonSec: 60, TickSec: 15, NoExport: true, NoHistory: true},
	}, exadigit.SweepOptions{Name: "metrics-lint-cluster"})
	if err != nil {
		log.Fatal(err)
	}
	if err := csw.Wait(ctx); err != nil {
		log.Fatal(err)
	}

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.Bytes()
	if dump {
		os.Stdout.Write(body)
		return
	}
	e, err := exadigit.ParseMetricsExposition(body)
	if err != nil {
		log.Fatalf("metrics-lint: exposition invalid: %v", err)
	}
	if err := exadigit.ValidateMetricsConventions(e, "exadigit_"); err != nil {
		log.Fatalf("metrics-lint: naming conventions violated: %v", err)
	}
	fmt.Printf("metrics-lint ok: %d families, %d series, %d bytes\n",
		len(e.FamilyNames()), len(e.Series()), len(body))
}
