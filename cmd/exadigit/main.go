// Command exadigit runs the integrated digital twin and serves the
// dashboard REST API (the paper's web-dashboard backend, §III-B6/III-D):
// it simulates a scenario on the Frontier twin and then exposes
// /api/status, /api/series, /api/cooling, /api/run and /api/experiments
// over HTTP, so what-if experiments can be launched and recalled exactly
// as through the paper's Kubernetes-hosted dashboard.
//
// Usage:
//
//	exadigit [-addr :8080] [-workload synthetic] [-horizon 2h]
//	         [-cooling] [-once]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"exadigit"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("exadigit: ")

	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		workload = flag.String("workload", "synthetic", "initial scenario workload")
		horizon  = flag.Duration("horizon", 2*time.Hour, "initial scenario duration")
		cool     = flag.Bool("cooling", true, "couple the cooling model")
		once     = flag.Bool("once", false, "run the scenario, print status, and exit (no server)")
	)
	flag.Parse()

	tw, err := exadigit.NewFrontierTwin()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("running initial %s scenario (%v)...", *workload, *horizon)
	res, err := tw.Run(exadigit.Scenario{
		Workload:   exadigit.WorkloadKind(*workload),
		HorizonSec: horizon.Seconds(),
		TickSec:    15,
		Cooling:    *cool,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("scenario done: %.2f MW avg, %d jobs, PUE %.3f",
		res.Report.AvgPowerMW, res.Report.JobsCompleted, res.Report.AvgPUE)
	fmt.Print(exadigit.RenderStatus(tw))

	if *once {
		return
	}
	log.Printf("serving dashboard API on %s", *addr)
	log.Printf("  GET  /api/status       — live status")
	log.Printf("  GET  /api/series       — power/PUE/utilization history")
	log.Printf("  GET  /api/cooling      — the 317 cooling-model channels")
	log.Printf("  POST /api/run          — launch a what-if (workload=, mode=, horizon_sec=, cooling=)")
	log.Printf("  GET  /api/experiments  — recall stored what-if results")
	if err := http.ListenAndServe(*addr, exadigit.DashboardHandler(tw)); err != nil {
		log.Fatal(err)
	}
}
