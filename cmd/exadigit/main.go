// Command exadigit runs the integrated digital twin and serves the
// dashboard REST API (the paper's web-dashboard backend, §III-B6/III-D):
// it simulates a scenario on the Frontier twin and then exposes
// /api/status, /api/series, /api/cooling, /api/run and /api/experiments
// over HTTP, so what-if experiments can be launched and recalled exactly
// as through the paper's Kubernetes-hosted dashboard.
//
// The serve subcommand starts the twin-as-a-service backend instead: the
// concurrent scenario-sweep API (submit/status/cancel, content-addressed
// result cache, NDJSON result streaming) mounted alongside the dashboard
// endpoints.
//
// Usage:
//
//	exadigit [-addr :8080] [-workload synthetic] [-horizon 2h]
//	         [-cooling] [-once]
//	exadigit serve [-addr :8080] [-workers N] [-cache 1024]
//	               [-cache-bytes 268435456] [-spec spec.json] [-warm 15m]
//	               [-presets plants.json] [-token SECRET]
//	               [-store DIR] [-scenario-timeout 0] [-max-attempts 3]
//	               [-max-pending 4096] [-drain 30s]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"exadigit"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("exadigit: ")

	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serve(os.Args[2:])
		return
	}

	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		workload = flag.String("workload", "synthetic", "initial scenario workload")
		horizon  = flag.Duration("horizon", 2*time.Hour, "initial scenario duration")
		cool     = flag.Bool("cooling", true, "couple the cooling model")
		once     = flag.Bool("once", false, "run the scenario, print status, and exit (no server)")
	)
	flag.Parse()

	tw, err := exadigit.NewFrontierTwin()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("running initial %s scenario (%v)...", *workload, *horizon)
	res, err := tw.Run(exadigit.Scenario{
		Workload:   exadigit.WorkloadKind(*workload),
		HorizonSec: horizon.Seconds(),
		TickSec:    15,
		Cooling:    *cool,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("scenario done: %.2f MW avg, %d jobs, PUE %.3f",
		res.Report.AvgPowerMW, res.Report.JobsCompleted, res.Report.AvgPUE)
	fmt.Print(exadigit.RenderStatus(tw))

	if *once {
		return
	}
	dash := exadigit.NewDashboardServer(tw)
	dash.SetLogf(log.Printf)
	log.Printf("serving dashboard API on %s", *addr)
	log.Printf("  GET  /api/status       — live status")
	log.Printf("  GET  /api/series       — power/PUE/utilization history")
	log.Printf("  GET  /api/cooling      — the compiled plant's output channels")
	log.Printf("  POST /api/run          — launch a what-if (workload=, mode=, horizon_sec=, cooling=)")
	log.Printf("  GET  /api/experiments  — recall stored what-if results")
	log.Printf("  GET  /api/metrics      — HTTP middleware counters")
	if err := http.ListenAndServe(*addr, dash.Handler()); err != nil {
		log.Fatal(err)
	}
}

// serve runs the twin-as-a-service mode: the sweep API plus the
// dashboard endpoints on one listener.
func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":8080", "HTTP listen address")
		workers    = fs.Int("workers", 0, "concurrent simulations across all sweeps (0 = all CPUs)")
		cacheCap   = fs.Int("cache", 1024, "result-cache capacity (scenario results)")
		cacheBytes = fs.Int64("cache-bytes", 256<<20, "result-cache byte bound (approximate resident size)")
		specPath   = fs.String("spec", "", "system spec JSON for the dashboard twin (default: built-in Frontier)")
		warm       = fs.Duration("warm", 15*time.Minute, "warm-up scenario horizon for the dashboard twin (0 skips)")
		presets    = fs.String("presets", "", "cooling preset registry JSON ({\"name\": {plant config}}), resolved before built-ins")
		token      = fs.String("token", "", "bearer token required on every request (default $EXADIGIT_TOKEN; empty disables auth)")
		storeDir   = fs.String("store", "", "durable result-store directory: completed scenario results persist here and survive restarts (empty = memory-only)")
		scenTO     = fs.Duration("scenario-timeout", 0, "per-scenario attempt deadline (0 = none); overrunning attempts are retried")
		attempts   = fs.Int("max-attempts", 3, "simulation attempts per scenario before its failure is permanent")
		maxPending = fs.Int("max-pending", 4096, "queued+running scenario bound; beyond it submissions get 429 + Retry-After")
		drain      = fs.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight sweeps before cancelling them")
	)
	_ = fs.Parse(args)
	if *token == "" {
		// Read the env fallback after parsing rather than as the flag
		// default, so usage/error output never prints the secret.
		*token = os.Getenv("EXADIGIT_TOKEN")
	}

	if *presets != "" {
		names, err := exadigit.RegisterCoolingPresetsFromFile(*presets)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("registered cooling presets from %s: %v", *presets, names)
	}

	spec := exadigit.FrontierSpec()
	if *specPath != "" {
		loaded, err := exadigit.LoadSpec(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		spec = *loaded
	}
	tw, err := exadigit.NewTwin(spec)
	if err != nil {
		log.Fatal(err)
	}
	if *warm > 0 {
		log.Printf("warming dashboard twin with a %v synthetic scenario...", *warm)
		if _, err := tw.Run(exadigit.Scenario{
			Workload:   exadigit.WorkloadSynthetic,
			HorizonSec: warm.Seconds(),
			TickSec:    15,
		}); err != nil {
			log.Fatal(err)
		}
	}

	var resultStore *exadigit.ResultStore
	if *storeDir != "" {
		var err error
		if resultStore, err = exadigit.OpenResultStore(*storeDir); err != nil {
			log.Fatal(err)
		}
		log.Printf("durable result store at %s (%d entries indexed)", *storeDir, resultStore.Len())
	}
	svc := exadigit.NewSweepService(exadigit.SweepServiceOptions{
		Workers: *workers, CacheCap: *cacheCap, CacheMaxBytes: *cacheBytes,
		Store: resultStore, ScenarioTimeout: *scenTO,
		MaxAttempts: *attempts, MaxPending: *maxPending,
	})
	svc.SetLogf(log.Printf)
	dash := exadigit.NewDashboardServer(tw)
	dash.SetLogf(log.Printf)
	mux := http.NewServeMux()
	sweepAPI := svc.Handler()
	mux.Handle("/api/sweeps", sweepAPI)
	mux.Handle("/api/sweeps/", sweepAPI)
	mux.Handle("/", dash.Handler())
	handler := exadigit.RequireBearerToken(*token, mux)
	if *token != "" {
		log.Printf("bearer-token auth enabled (every request needs Authorization: Bearer <token>)")
	}

	log.Printf("serving twin-as-a-service on %s (%d workers, cache %d entries / %d MiB)",
		*addr, svc.Workers(), *cacheCap, *cacheBytes>>20)
	log.Printf("  POST /api/sweeps               — submit a scenario sweep (per-scenario cooling_spec mixes plants)")
	log.Printf("  GET  /api/sweeps               — list sweeps + cache stats")
	log.Printf("  GET  /api/sweeps/{id}          — sweep status")
	log.Printf("  GET  /api/sweeps/{id}/results  — completed results")
	log.Printf("  GET  /api/sweeps/{id}/stream   — NDJSON results as they complete")
	log.Printf("  POST /api/sweeps/{id}/cancel   — cancel queued and in-flight work (aborts mid-day)")
	log.Printf("  GET  /api/sweeps/metrics       — HTTP middleware counters")
	log.Printf("  (dashboard endpoints /api/status, /api/series, /api/cooling, /api/run remain mounted)")

	server := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		return
	case sig := <-sigc:
		log.Printf("received %v; draining in-flight sweeps (up to %v, signal again to cancel them)", sig, *drain)
	}

	// Shutdown sequence: stop admitting sweeps, drain what's running
	// (a second signal cancels instead of waiting), then shut the
	// listener down and flush the final metrics so the process's
	// accounting isn't lost with it.
	svc.Close()
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drain)
	go func() {
		<-sigc
		log.Printf("second signal: cancelling in-flight sweeps")
		svc.CancelAll()
	}()
	if err := svc.Drain(drainCtx); err != nil {
		log.Printf("drain incomplete (%v); cancelling remaining sweeps", err)
		svc.CancelAll()
		fallback, cancelFallback := context.WithTimeout(context.Background(), 5*time.Second)
		_ = svc.Drain(fallback)
		cancelFallback()
	}
	cancelDrain()

	shutCtx, cancelShut := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelShut()
	if err := server.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}

	log.Printf("sweep http: %s", svc.Metrics().Summary())
	log.Printf("dashboard http: %s", dash.Metrics().Summary())
	hits, misses, entries := svc.CacheStats()
	log.Printf("result cache: hits=%d misses=%d entries=%d", hits, misses, entries)
	fm := svc.FailureMetricsSnapshot()
	log.Printf("failures: retries=%d panics_recovered=%d timeouts=%d queue_rejections=%d",
		fm.Retries, fm.PanicsRecovered, fm.Timeouts, fm.QueueRejections)
	if sm, ok := svc.StoreMetricsSnapshot(); ok {
		log.Printf("store: hits=%d misses=%d puts=%d put_errors=%d corrupt=%d entries=%d bytes=%d",
			sm.Hits, sm.Misses, sm.Puts, sm.PutErrors, sm.CorruptQuarantined, sm.Entries, sm.Bytes)
	}
	log.Printf("shutdown complete")
}
