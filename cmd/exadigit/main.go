// Command exadigit runs the integrated digital twin and serves the
// dashboard REST API (the paper's web-dashboard backend, §III-B6/III-D):
// it simulates a scenario on the Frontier twin and then exposes
// /api/status, /api/series, /api/cooling, /api/run and /api/experiments
// over HTTP, so what-if experiments can be launched and recalled exactly
// as through the paper's Kubernetes-hosted dashboard.
//
// The serve subcommand starts the twin-as-a-service backend instead: the
// concurrent scenario-sweep API (submit/status/cancel, content-addressed
// result cache, NDJSON result streaming) mounted alongside the dashboard
// endpoints.
//
// Usage:
//
//	exadigit [-addr :8080] [-workload synthetic] [-horizon 2h]
//	         [-cooling] [-once]
//	exadigit serve [-addr :8080] [-workers N] [-cache 1024]
//	               [-cache-bytes 268435456] [-spec spec.json] [-warm 15m]
//	               [-presets plants.json] [-token SECRET]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"exadigit"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("exadigit: ")

	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serve(os.Args[2:])
		return
	}

	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		workload = flag.String("workload", "synthetic", "initial scenario workload")
		horizon  = flag.Duration("horizon", 2*time.Hour, "initial scenario duration")
		cool     = flag.Bool("cooling", true, "couple the cooling model")
		once     = flag.Bool("once", false, "run the scenario, print status, and exit (no server)")
	)
	flag.Parse()

	tw, err := exadigit.NewFrontierTwin()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("running initial %s scenario (%v)...", *workload, *horizon)
	res, err := tw.Run(exadigit.Scenario{
		Workload:   exadigit.WorkloadKind(*workload),
		HorizonSec: horizon.Seconds(),
		TickSec:    15,
		Cooling:    *cool,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("scenario done: %.2f MW avg, %d jobs, PUE %.3f",
		res.Report.AvgPowerMW, res.Report.JobsCompleted, res.Report.AvgPUE)
	fmt.Print(exadigit.RenderStatus(tw))

	if *once {
		return
	}
	dash := exadigit.NewDashboardServer(tw)
	dash.SetLogf(log.Printf)
	log.Printf("serving dashboard API on %s", *addr)
	log.Printf("  GET  /api/status       — live status")
	log.Printf("  GET  /api/series       — power/PUE/utilization history")
	log.Printf("  GET  /api/cooling      — the compiled plant's output channels")
	log.Printf("  POST /api/run          — launch a what-if (workload=, mode=, horizon_sec=, cooling=)")
	log.Printf("  GET  /api/experiments  — recall stored what-if results")
	log.Printf("  GET  /api/metrics      — HTTP middleware counters")
	if err := http.ListenAndServe(*addr, dash.Handler()); err != nil {
		log.Fatal(err)
	}
}

// serve runs the twin-as-a-service mode: the sweep API plus the
// dashboard endpoints on one listener.
func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":8080", "HTTP listen address")
		workers    = fs.Int("workers", 0, "concurrent simulations across all sweeps (0 = all CPUs)")
		cacheCap   = fs.Int("cache", 1024, "result-cache capacity (scenario results)")
		cacheBytes = fs.Int64("cache-bytes", 256<<20, "result-cache byte bound (approximate resident size)")
		specPath   = fs.String("spec", "", "system spec JSON for the dashboard twin (default: built-in Frontier)")
		warm       = fs.Duration("warm", 15*time.Minute, "warm-up scenario horizon for the dashboard twin (0 skips)")
		presets    = fs.String("presets", "", "cooling preset registry JSON ({\"name\": {plant config}}), resolved before built-ins")
		token      = fs.String("token", "", "bearer token required on every request (default $EXADIGIT_TOKEN; empty disables auth)")
	)
	_ = fs.Parse(args)
	if *token == "" {
		// Read the env fallback after parsing rather than as the flag
		// default, so usage/error output never prints the secret.
		*token = os.Getenv("EXADIGIT_TOKEN")
	}

	if *presets != "" {
		names, err := exadigit.RegisterCoolingPresetsFromFile(*presets)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("registered cooling presets from %s: %v", *presets, names)
	}

	spec := exadigit.FrontierSpec()
	if *specPath != "" {
		loaded, err := exadigit.LoadSpec(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		spec = *loaded
	}
	tw, err := exadigit.NewTwin(spec)
	if err != nil {
		log.Fatal(err)
	}
	if *warm > 0 {
		log.Printf("warming dashboard twin with a %v synthetic scenario...", *warm)
		if _, err := tw.Run(exadigit.Scenario{
			Workload:   exadigit.WorkloadSynthetic,
			HorizonSec: warm.Seconds(),
			TickSec:    15,
		}); err != nil {
			log.Fatal(err)
		}
	}

	svc := exadigit.NewSweepService(exadigit.SweepServiceOptions{
		Workers: *workers, CacheCap: *cacheCap, CacheMaxBytes: *cacheBytes,
	})
	svc.SetLogf(log.Printf)
	dash := exadigit.NewDashboardServer(tw)
	dash.SetLogf(log.Printf)
	mux := http.NewServeMux()
	sweepAPI := svc.Handler()
	mux.Handle("/api/sweeps", sweepAPI)
	mux.Handle("/api/sweeps/", sweepAPI)
	mux.Handle("/", dash.Handler())
	handler := exadigit.RequireBearerToken(*token, mux)
	if *token != "" {
		log.Printf("bearer-token auth enabled (every request needs Authorization: Bearer <token>)")
	}

	log.Printf("serving twin-as-a-service on %s (%d workers, cache %d entries / %d MiB)",
		*addr, svc.Workers(), *cacheCap, *cacheBytes>>20)
	log.Printf("  POST /api/sweeps               — submit a scenario sweep (per-scenario cooling_spec mixes plants)")
	log.Printf("  GET  /api/sweeps               — list sweeps + cache stats")
	log.Printf("  GET  /api/sweeps/{id}          — sweep status")
	log.Printf("  GET  /api/sweeps/{id}/results  — completed results")
	log.Printf("  GET  /api/sweeps/{id}/stream   — NDJSON results as they complete")
	log.Printf("  POST /api/sweeps/{id}/cancel   — cancel queued and in-flight work (aborts mid-day)")
	log.Printf("  GET  /api/sweeps/metrics       — HTTP middleware counters")
	log.Printf("  (dashboard endpoints /api/status, /api/series, /api/cooling, /api/run remain mounted)")
	if err := http.ListenAndServe(*addr, handler); err != nil {
		log.Fatal(err)
	}
}
