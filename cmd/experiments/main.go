// Command experiments regenerates every table and figure of the paper's
// evaluation (§IV): Tables I-IV, Figs. 4 and 7-9, and the two §IV-3
// what-if studies. Each experiment prints in the paper's format;
// EXPERIMENTS.md records a full run next to the published values.
//
// Usage:
//
//	experiments [-run all|tableI,tableII,tableIII,tableIV,fig4,fig7,fig8,fig9,smartrect,dc380]
//	            [-days 183] [-seed 42] [-fig7-hours 24] [-fig9-hours 24]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"exadigit/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		run        = flag.String("run", "all", "comma-separated experiment ids (tableI..tableIV, fig4, fig7, fig8, fig9, smartrect, dc380, expansion, weather, ablation, engine) or 'all'")
		days       = flag.Int("days", 183, "days for the Table IV / what-if studies")
		seed       = flag.Int64("seed", 42, "study random seed")
		fig7Hours  = flag.Float64("fig7-hours", 24, "Fig. 7 validation window")
		fig9Hours  = flag.Float64("fig9-hours", 24, "Fig. 9 replay window")
		whatIfDays = flag.Int("whatif-days", 14, "days for the what-if studies")
		workers    = flag.Int("workers", 0, "parallel day simulations (0 = all CPUs)")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := want["all"]
	selected := func(id string) bool { return all || want[id] }

	runOne := func(id string, f func() error) {
		if !selected(id) {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	runOne("tablei", func() error {
		fmt.Println(exp.TableI())
		return nil
	})
	runOne("tableii", func() error {
		t, err := exp.TableII()
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	runOne("tableiii", func() error {
		t, _, err := exp.TableIII()
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	runOne("tableiv", func() error {
		t, _, err := exp.TableIV(exp.DailyConfig{Days: *days, Seed: *seed, Workers: *workers})
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	runOne("fig4", func() error {
		t, _ := exp.Fig4()
		fmt.Println(t)
		return nil
	})
	runOne("fig7", func() error {
		t, _, err := exp.Fig7(exp.Fig7Config{HorizonSec: *fig7Hours * 3600, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	runOne("fig8", func() error {
		t, _, err := exp.Fig8(3600)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	runOne("fig9", func() error {
		t, _, err := exp.Fig9(exp.Fig9Config{Seed: *seed, HorizonSec: *fig9Hours * 3600})
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	runOne("smartrect", func() error {
		t, _, err := exp.SmartRectifier(*whatIfDays, *seed)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	runOne("dc380", func() error {
		t, _, err := exp.DC380(*whatIfDays, *seed)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	runOne("expansion", func() error {
		t, _, err := exp.VirtualExpansion(8, nil, 33.0)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	runOne("weather", func() error {
		t, _, err := exp.WeatherCorrelation(3, *seed)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	runOne("engine", func() error {
		t, _, err := exp.EngineComparison(*seed)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	runOne("ablation", func() error {
		t1, err := exp.AblationControlDt(nil)
		if err != nil {
			return err
		}
		fmt.Println(t1)
		t2, _, err := exp.AblationTick(0, *seed)
		if err != nil {
			return err
		}
		fmt.Println(t2)
		t3, _, err := exp.AblationCoolingCost(0, *seed)
		if err != nil {
			return err
		}
		fmt.Println(t3)
		t4, _, err := exp.AblationSchedulers(0, *seed)
		if err != nil {
			return err
		}
		fmt.Println(t4)
		return nil
	})
}
