// Command raps runs the Resource Allocator and Power Simulator from the
// terminal — the paper's primary console interface (§III-B, Fig. 6
// top-right). It simulates synthetic or benchmark workloads on the
// Frontier twin, optionally coupled to the cooling model, and prints the
// §III-B5 statistics report.
//
// Usage:
//
//	raps [-workload synthetic|idle|peak|hpl|openmxp|replay]
//	     [-horizon 24h] [-tick 15s] [-policy fcfs|sjf|easy]
//	     [-cooling] [-mode ac-baseline|smart-rectifier|dc380]
//	     [-replay-dir DIR] [-export-dir DIR] [-seed N] [-spec FILE]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"exadigit"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("raps: ")

	var (
		workload  = flag.String("workload", "synthetic", "workload kind: synthetic, idle, peak, hpl, openmxp, replay")
		horizon   = flag.Duration("horizon", 24*time.Hour, "simulated duration")
		tick      = flag.Duration("tick", 15*time.Second, "simulation tick")
		policy    = flag.String("policy", "fcfs", "scheduling policy: fcfs, sjf, easy")
		cool      = flag.Bool("cooling", false, "couple the thermo-fluid cooling model")
		mode      = flag.String("mode", "", "power architecture: ac-baseline, smart-rectifier, dc380")
		replayDir = flag.String("replay-dir", "", "telemetry dataset directory to replay")
		exportDir = flag.String("export-dir", "", "write the run's telemetry dataset here")
		seed      = flag.Int64("seed", 1, "workload random seed")
		specFile  = flag.String("spec", "", "system spec JSON (default: built-in Frontier)")
		dashboard = flag.Bool("dashboard", false, "print a terminal dashboard frame at the end")
	)
	flag.Parse()

	spec := exadigit.FrontierSpec()
	if *specFile != "" {
		s, err := exadigit.LoadSpec(*specFile)
		if err != nil {
			log.Fatal(err)
		}
		spec = *s
	}
	tw, err := exadigit.NewTwin(spec)
	if err != nil {
		log.Fatal(err)
	}

	gen := exadigit.DefaultGeneratorConfig()
	gen.Seed = *seed
	sc := exadigit.Scenario{
		Workload:   exadigit.WorkloadKind(*workload),
		HorizonSec: horizon.Seconds(),
		TickSec:    tick.Seconds(),
		Policy:     *policy,
		Cooling:    *cool,
		PowerMode:  *mode,
		Generator:  gen,
	}
	if *replayDir != "" {
		ds, err := exadigit.LoadTelemetry(*replayDir)
		if err != nil {
			log.Fatal(err)
		}
		sc.Workload = exadigit.WorkloadReplay
		sc.Dataset = ds
	}

	start := time.Now()
	res, err := tw.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	printReport(res.Report, time.Since(start))

	if *exportDir != "" {
		if err := res.Dataset.Save(*exportDir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry written to %s (%d jobs, %d samples)\n",
			*exportDir, len(res.Dataset.Jobs), len(res.Dataset.Series))
	}
	if *dashboard {
		fmt.Println()
		fmt.Print(exadigit.RenderStatus(tw))
	}
}

func printReport(r *exadigit.Report, wall time.Duration) {
	w := os.Stdout
	fmt.Fprintf(w, "simulated %.0f s in %v\n\n", r.SimSeconds, wall.Round(time.Millisecond))
	fmt.Fprintf(w, "jobs completed        %d\n", r.JobsCompleted)
	fmt.Fprintf(w, "throughput            %.1f jobs/hr\n", r.ThroughputPerHr)
	fmt.Fprintf(w, "avg power             %.2f MW (min %.2f, max %.2f)\n", r.AvgPowerMW, r.MinPowerMW, r.MaxPowerMW)
	fmt.Fprintf(w, "total energy          %.1f MW-hr\n", r.EnergyMWh)
	fmt.Fprintf(w, "conversion losses     %.2f MW avg, %.2f MW max (%.2f %%)\n", r.AvgLossMW, r.MaxLossMW, r.LossPercent)
	fmt.Fprintf(w, "eta_system            %.3f\n", r.EtaSystem)
	fmt.Fprintf(w, "CO2 emissions         %.1f metric tons\n", r.CO2Tons)
	fmt.Fprintf(w, "energy cost           $%.0f\n", r.CostUSD)
	fmt.Fprintf(w, "avg utilization       %.1f %%\n", 100*r.AvgUtilization)
	if r.AvgPUE > 0 {
		fmt.Fprintf(w, "avg PUE               %.3f\n", r.AvgPUE)
	}
}
