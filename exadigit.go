// Package exadigit is a Go reproduction of ExaDigiT — the open-source
// digital-twin framework for liquid-cooled supercomputers presented in
// "A Digital Twin Framework for Liquid-cooled Supercomputers as
// Demonstrated at Exascale" (SC 2024) — demonstrated, as in the paper, on
// a full-scale model of the Frontier exascale system.
//
// The twin couples three subsystems:
//
//   - RAPS, the Resource Allocator and Power Simulator: job scheduling
//     (FCFS/SJF/EASY-backfill), per-node dynamic power from CPU/GPU
//     utilization traces, and the AC→DC rectification / DC-DC SIVOC
//     conversion-loss chain;
//   - a transient thermo-fluid model of the cooling plant (25 CDU loops,
//     the primary high-temperature-water loop, and the cooling-tower
//     loop with its PID + staging control system), wrapped behind an
//     FMI-style co-simulation interface and stepped every 15 s;
//   - telemetry and visual analytics: Table II-schema datasets for
//     replay-based verification and validation, an ASCII dashboard, and
//     an HTTP/JSON API.
//
// Quick start:
//
//	tw, err := exadigit.NewFrontierTwin()
//	if err != nil { ... }
//	res, err := tw.Run(exadigit.Scenario{
//		Workload:   exadigit.WorkloadSynthetic,
//		HorizonSec: 4 * 3600,
//		TickSec:    15,
//		Cooling:    true,
//	})
//	fmt.Printf("avg power %.1f MW, PUE %.3f\n",
//		res.Report.AvgPowerMW, res.Report.AvgPUE)
//
// Every table and figure of the paper's evaluation can be regenerated
// with cmd/experiments; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package exadigit

import (
	"net/http"

	"exadigit/internal/anomaly"
	"exadigit/internal/autocsm"
	"exadigit/internal/cluster"
	"exadigit/internal/config"
	"exadigit/internal/cooling"
	"exadigit/internal/core"
	"exadigit/internal/fmu"
	"exadigit/internal/httpmw"
	"exadigit/internal/job"
	"exadigit/internal/obs"
	"exadigit/internal/optimize"
	"exadigit/internal/raps"
	"exadigit/internal/service"
	"exadigit/internal/store"
	"exadigit/internal/surrogate"
	"exadigit/internal/telemetry"
	"exadigit/internal/uq"
	"exadigit/internal/viz"
)

// Core twin types.
type (
	// Twin is a live digital twin of one system (Fig. 1's architecture).
	Twin = core.Twin
	// Scenario describes one simulation or what-if run.
	Scenario = core.Scenario
	// PartitionScenario configures one partition's workload in a
	// multi-partition scenario (Scenario.Partitions) — the §V
	// heterogeneous-system axis.
	PartitionScenario = core.PartitionScenario
	// Result carries a scenario's report, history, and telemetry export.
	Result = core.Result
	// WorkloadKind selects how a scenario's jobs are produced.
	WorkloadKind = core.WorkloadKind
	// Report is the §III-B5 end-of-run summary.
	Report = raps.Report
	// PartitionReport is one partition's share of a multi-partition
	// run's report (Report.Partitions).
	PartitionReport = raps.PartitionReport
	// Sample is one recorded history point (Fig. 9's series).
	Sample = raps.Sample
)

// Configuration types (§V's JSON generalization).
type (
	// SystemSpec is the machine description consumed from JSON.
	SystemSpec = config.SystemSpec
	// PartitionSpec describes one scheduling partition.
	PartitionSpec = config.PartitionSpec
	// CoolingSpec is the AutoCSM input.
	CoolingSpec = config.CoolingSpec
	// CoolingConfig is a fully sized cooling-plant model.
	CoolingConfig = cooling.Config
	// CoolingSolverStats is the plant thermal-solver work accounting
	// (adaptive step counts, control updates, quiescent time); read it
	// from Twin.Simulation().CoolingSolverStats() after a cooled run.
	CoolingSolverStats = cooling.SolverStats
	// SpecFieldError is the structured validation/feasibility error
	// (field, violated constraint, suggested fix) that spec compilation
	// and the sweep service surface for malformed or unsizable plants.
	SpecFieldError = config.FieldError
)

// Telemetry and workload types (Table II, §III-B).
type (
	// Dataset is a replayable telemetry capture.
	Dataset = telemetry.Dataset
	// JobRecord is the Table II job schema with 15 s power traces.
	JobRecord = telemetry.JobRecord
	// GeneratorConfig tunes the synthetic workload generator.
	GeneratorConfig = job.GeneratorConfig
	// Job is one schedulable unit of work with utilization traces.
	Job = job.Job
)

// NewJob constructs a pending job; fill its traces with FlatTrace or a
// fingerprint before running.
func NewJob(id int, name string, nodes int, wallSec, submit float64) *Job {
	return job.New(id, name, nodes, wallSec, submit)
}

// FlatTrace builds a constant-utilization trace covering wallSec.
func FlatTrace(util, wallSec float64) []float64 { return job.FlatTrace(util, wallSec) }

// FMU co-simulation types (§III-C6).
type (
	// FMU is the cooling model behind the FMI-style interface.
	FMU = fmu.Instance
	// ValueRef identifies an FMU variable.
	ValueRef = fmu.ValueRef
)

// Workload kinds.
const (
	WorkloadIdle      = core.WorkloadIdle
	WorkloadPeak      = core.WorkloadPeak
	WorkloadHPL       = core.WorkloadHPL
	WorkloadOpenMxP   = core.WorkloadOpenMxP
	WorkloadSynthetic = core.WorkloadSynthetic
	WorkloadReplay    = core.WorkloadReplay
)

// NewFrontierTwin builds a digital twin of Frontier with the published
// Table I configuration.
func NewFrontierTwin() (*Twin, error) { return core.NewFrontier() }

// RunBatch executes a battery of scenarios against one machine
// specification across a worker pool (runtime.NumCPU() when workers ≤ 0)
// — the fan-out behind multi-day replays and what-if sweeps. Results are
// indexed like the input scenarios.
func RunBatch(spec SystemSpec, scenarios []Scenario, workers int) ([]*Result, error) {
	return core.RunBatch(spec, scenarios, workers)
}

// NewTwin builds a twin from a machine specification.
func NewTwin(spec SystemSpec) (*Twin, error) { return core.NewFromSpec(spec) }

// Twin-as-a-service types (§III-B6): the long-running scenario-sweep
// backend with a shared worker pool, per-spec compiled state, and a
// content-addressed result cache.
type (
	// SweepService is the concurrent scenario-sweep server.
	SweepService = service.Service
	// SweepServiceOptions sizes the worker pool and result cache.
	SweepServiceOptions = service.Options
	// Sweep is one submitted battery of scenarios.
	Sweep = service.Sweep
	// SweepOptions parameterizes one submission.
	SweepOptions = service.SweepOptions
	// SweepStatus is a point-in-time sweep snapshot.
	SweepStatus = service.SweepStatus
	// SweepRecoverStats summarizes a SweepService.Recover pass: the
	// durable sweep journal (written into the result store's directory)
	// lets a restarted service re-adopt interrupted sweeps instead of
	// losing them — `exadigit serve -store DIR -resume`.
	SweepRecoverStats = service.RecoverStats
	// CompiledSpec shares per-spec power models and the cooling FMU
	// design read-only across scenario runs.
	CompiledSpec = core.CompiledSpec
	// ResultStore is the durable content-addressed result store layered
	// under the sweep service's in-memory cache: completed scenario
	// results persist to disk keyed by (spec hash, scenario hash) and
	// survive process restarts (`exadigit serve -store DIR`).
	ResultStore = store.Store
	// ResultStoreMetrics is the store's observability snapshot (hits,
	// misses, puts, quarantined-corrupt entries, resident bytes).
	ResultStoreMetrics = store.Metrics
)

// OpenResultStore opens (or creates) a durable result store rooted at
// dir, rebuilding its index by scanning existing entries. Truncated or
// unreadable entries are quarantined, never served. Pass the store to
// SweepServiceOptions.Store to make a sweep service crash-safe.
func OpenResultStore(dir string) (*ResultStore, error) { return store.Open(dir) }

// ResultStoreOptions tunes OpenResultStoreOptions: QuarantineTTL ages
// out *.corrupt quarantine files at open.
type ResultStoreOptions = store.Options

// OpenResultStoreOptions is OpenResultStore with maintenance options —
// `exadigit serve -quarantine-ttl` routes here so corrupt-entry
// forensics don't accumulate forever on long-lived nodes.
func OpenResultStoreOptions(dir string, opts ResultStoreOptions) (*ResultStore, error) {
	return store.OpenOptions(dir, opts)
}

// Distributed sweep fabric (the coordinator side): a ClusterPool fans a
// sweep's scenarios out to remote worker `exadigit serve` instances over
// the same /api/sweeps API and streams results back. Install one as
// SweepServiceOptions.Runner to turn a sweep service into a coordinator;
// exactly-once compute across nodes comes from the shared store's leases
// (SweepServiceOptions.LeaseTTL on the workers), not from the pool.
type (
	// ClusterPool is the coordinator's worker client pool; it implements
	// the sweep service's ScenarioRunner dispatch seam.
	ClusterPool = cluster.Pool
	// ClusterOptions configures a ClusterPool (worker URLs, bearer
	// token, health probing, backpressure bounds).
	ClusterOptions = cluster.Options
)

// NewClusterPool builds the coordinator's worker client pool from the
// worker base URLs in opts. At least one worker is required.
func NewClusterPool(opts ClusterOptions) (*ClusterPool, error) { return cluster.New(opts) }

// NewSweepService builds the scenario-sweep server. Mount its Handler()
// under /api/sweeps (see cmd/exadigit serve) or drive it directly with
// Submit.
func NewSweepService(opts SweepServiceOptions) *SweepService { return service.New(opts) }

// CompileSpec validates a spec and precompiles its shared artifacts —
// power models and cooling FMU design — for reuse across every scenario
// run against it (CompiledSpec.RunBatch, CompiledSpec.Twin).
func CompileSpec(spec SystemSpec) (*CompiledSpec, error) { return core.Compile(spec) }

// HashScenario returns a scenario's canonical content hash — the
// scenario half of the sweep service's (spec, scenario) cache key.
func HashScenario(sc Scenario) (string, error) { return service.HashScenario(sc) }

// FrontierSpec returns the built-in Frontier system specification.
func FrontierSpec() SystemSpec { return config.Frontier() }

// SetonixLikeSpec returns a two-partition (CPU + GPU) machine in the
// style of Pawsey's Setonix, demonstrating the §V generalization.
func SetonixLikeSpec() SystemSpec { return config.SetonixLike() }

// LoadSpec reads a system specification from a JSON file.
func LoadSpec(path string) (*SystemSpec, error) { return config.LoadFile(path) }

// LoadTelemetry reads a telemetry dataset directory written by
// Dataset.Save.
func LoadTelemetry(dir string) (*Dataset, error) { return telemetry.Load(dir) }

// DefaultGeneratorConfig returns the Table IV-calibrated synthetic
// workload parameters.
func DefaultGeneratorConfig() GeneratorConfig { return job.DefaultGeneratorConfig() }

// GenerateCoolingModel sizes a complete cooling plant from a high-level
// specification (the paper's AutoCSM, §V).
func GenerateCoolingModel(spec CoolingSpec) (CoolingConfig, error) { return autocsm.Generate(spec) }

// CompileCoolingSpec resolves a CoolingSpec the way the twin's cooling
// pipeline does: a preset name yields its hand-calibrated plant
// verbatim, anything else is synthesized by AutoCSM. This is the
// function behind CompiledSpec.CoolingDesign and per-scenario cooling
// overrides.
func CompileCoolingSpec(spec CoolingSpec) (CoolingConfig, error) { return autocsm.Compile(spec) }

// FrontierCoolingModel returns the hand-calibrated Frontier plant (the
// "frontier" cooling preset).
func FrontierCoolingModel() CoolingConfig { return cooling.Frontier() }

// RegisterCoolingPreset installs a named plant configuration in the
// runtime preset registry, resolved by the spec pipeline before the
// built-in presets — calibrated plants ship as data, not rebuilds.
func RegisterCoolingPreset(name string, cfg CoolingConfig) error {
	return cooling.RegisterPreset(name, cfg)
}

// RegisterCoolingPresetsFromJSON registers every plant in a
// {"name": {plant config}} JSON document, returning the names.
func RegisterCoolingPresetsFromJSON(data []byte) ([]string, error) {
	return cooling.RegisterPresetsFromJSON(data)
}

// RegisterCoolingPresetsFromFile loads a preset registry JSON file (see
// RegisterCoolingPresetsFromJSON); `exadigit serve -presets` calls this
// at startup.
func RegisterCoolingPresetsFromFile(path string) ([]string, error) {
	return cooling.RegisterPresetsFromFile(path)
}

// Observability types: the unified metric registry behind the
// Prometheus-format /metrics exposition and the per-scenario lifecycle
// tracer behind /api/sweeps/trace (`exadigit serve` wires both).
type (
	// MetricsRegistry is the dependency-free metric registry. The sweep
	// service reports into one (SweepServiceOptions.Registry, or a
	// private one reachable via SweepService.Registry()); mount its
	// Handler() as /metrics.
	MetricsRegistry = obs.Registry
	// ScenarioTracer is the bounded ring buffer of scenario lifecycle
	// spans (SweepService.Tracer()); SetSink attaches an NDJSON file.
	ScenarioTracer = obs.Tracer
	// ScenarioSpan is one scenario's recorded lifecycle: queue wait,
	// per-attempt wait/run/outcome, cache tier, and terminal state.
	ScenarioSpan = obs.Span
	// MetricsExposition is a parsed Prometheus text exposition — the
	// strict validator behind scripts/metrics_lint.sh.
	MetricsExposition = obs.Exposition
)

// NewMetricsRegistry builds an empty metric registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// RegisterGoMetrics attaches Go runtime series (goroutines, heap/stack
// bytes, GC cycles and pause time) to the registry.
func RegisterGoMetrics(reg *MetricsRegistry) { obs.RegisterGoCollector(reg) }

// RegisterTwinMetrics attaches the live twin's last-run gauges (power,
// per-partition power, PUE, utilization, queue depth, cooling-solver
// work) to the registry — collected at scrape time, zero cost on the
// simulation tick path.
func RegisterTwinMetrics(reg *MetricsRegistry, tw *Twin) { core.RegisterTwinMetrics(reg, tw) }

// ParseMetricsExposition runs the strict text-exposition validator:
// HELP/TYPE discipline, family contiguity, duplicate-series and
// counter-monotonicity checks, histogram bucket invariants.
func ParseMetricsExposition(data []byte) (*MetricsExposition, error) {
	return obs.ParseExposition(data)
}

// ValidateMetricsConventions enforces the repo's metric naming rules on
// a parsed exposition: every family carries the prefix, counters end in
// _total, histograms in _seconds or _bytes.
func ValidateMetricsConventions(e *MetricsExposition, prefix string) error {
	return obs.ValidateConventions(e, prefix)
}

// RequireBearerToken wraps an HTTP handler with bearer-token auth
// (httpmw.RequireBearer): every request must carry
// "Authorization: Bearer <token>" or is rejected with a 401. An empty
// token disables enforcement — the opt-in knob behind
// `exadigit serve -token` / EXADIGIT_TOKEN.
func RequireBearerToken(token string, h http.Handler) http.Handler {
	return httpmw.RequireBearer(token, h)
}

// NewCoolingFMU instantiates the cooling model behind the FMI-style
// co-simulation interface (SetReal / DoStep / GetReal).
func NewCoolingFMU(cfg CoolingConfig) (*FMU, error) { return fmu.Instantiate(cfg) }

// DashboardServer is the viz REST backend; expose it (rather than just
// its Handler) to enable request logging or read the middleware metrics.
type DashboardServer = viz.Server

// NewDashboardServer builds the dashboard REST backend over the twin.
// Its Handler serves /api/status, /api/series, /api/cooling, /api/run,
// /api/experiments, and /api/metrics behind the shared middleware stack
// (panic recovery, request metrics, optional logging via SetLogf).
func NewDashboardServer(tw *Twin) *DashboardServer {
	return viz.NewServer(tw, tw.ExperimentRunner())
}

// DashboardHandler returns the HTTP handler serving the twin's REST API
// (/api/status, /api/series, /api/cooling, /api/run, /api/experiments) —
// the data source the paper's web dashboard consumes.
func DashboardHandler(tw *Twin) http.Handler {
	return NewDashboardServer(tw).Handler()
}

// RenderStatus draws a terminal dashboard frame for the twin's most
// recent run.
func RenderStatus(tw *Twin) string {
	st := tw.Status()
	panel := viz.StatusPanel{
		TimeSec:     st.TimeSec,
		PowerMW:     st.PowerMW,
		LossMW:      st.LossMW,
		Utilization: st.Utilization,
		PUE:         st.PUE,
		JobsRunning: st.JobsRunning,
		JobsPending: st.JobsPending,
	}
	for _, p := range tw.Series() {
		panel.PowerSeriesMW = append(panel.PowerSeriesMW, p.PowerMW)
	}
	if sim := tw.Simulation(); sim != nil {
		for _, w := range sim.PerRackPowerW() {
			panel.RackPowerKW = append(panel.RackPowerKW, w/1e3)
		}
		if plant := sim.CoolingPlant(); plant != nil {
			o := plant.Snapshot()
			panel.HTWSupplyC = o.FacilitySupplyC
			panel.HTWReturnC = o.FacilityReturnC
			panel.CellsStaged = o.NumCellsStaged
			panel.TotalCells = len(o.FanPowerW)
		}
	}
	return panel.Render()
}

// Diagnostics, uncertainty quantification, and higher twin levels.

// AnomalyDetector evaluates the rule-based health monitors of §III-A
// (blockage, thermal-throttle risk, sustained temperature excursions,
// PUE degradation) against cooling snapshots.
type AnomalyDetector = anomaly.Detector

// AnomalyAlarm is one detected condition.
type AnomalyAlarm = anomaly.Alarm

// NewAnomalyDetector builds a detector with Frontier-appropriate
// thresholds.
func NewAnomalyDetector() *AnomalyDetector { return anomaly.NewDetector(anomaly.DefaultConfig()) }

// UQConfig parameterizes an uncertainty-quantification ensemble (§IV's
// VVUQ requirement).
type UQConfig = uq.Config

// UQResult carries ensemble confidence intervals on power, energy,
// losses, efficiency, and carbon.
type UQResult = uq.Result

// RunUQ executes an ensemble of perturbed-model simulations over the
// same workload; jobsFactory may be nil for an idle study.
func RunUQ(cfg UQConfig, jobsFactory func() []*job.Job) (*UQResult, error) {
	return uq.Run(cfg, jobsFactory)
}

// PUESurrogate is the L3 data-driven model trained on L4 simulation
// sweeps (Fig. 2's predictive-twin level).
type PUESurrogate = surrogate.PUESurrogate

// TrainPUESurrogate sweeps the cooling plant over the given heat-load and
// wet-bulb grids and fits a real-time PUE/aux-power surrogate.
func TrainPUESurrogate(cfg CoolingConfig, heatsMW, wetBulbsC []float64) (*PUESurrogate, error) {
	return surrogate.TrainPUESurrogate(cfg, heatsMW, wetBulbsC)
}

// SetpointStudy parameterizes the L5 autonomous setpoint optimization
// (Fig. 2's autonomous-twin level).
type SetpointStudy = optimize.Config

// SetpointResult reports the optimization outcome.
type SetpointResult = optimize.Result

// OptimizeSetpoints scores candidate plant setpoints on the simulated
// plant and returns the feasible minimum-auxiliary-power configuration.
func OptimizeSetpoints(plantCfg CoolingConfig, study SetpointStudy) (*SetpointResult, error) {
	return optimize.Run(plantCfg, study)
}

// Closed-loop co-design optimizer (the L5 autonomous level run against
// the full twin): a multi-objective search over design and control
// knobs whose outer loop evaluates candidates as sweep-service
// scenarios and whose inner loop screens them on an online-trained,
// conformal-gated surrogate. Submit studies programmatically via
// SweepService.SubmitStudy or over HTTP at POST /api/optimize.
type (
	// OptimizeKnob is one search dimension (see OptimizeKnobNames).
	OptimizeKnob = optimize.Knob
	// OptimizeObjective is one report metric to minimize or maximize.
	OptimizeObjective = optimize.Objective
	// OptimizeConstraint bounds a report metric for feasibility.
	OptimizeConstraint = optimize.Constraint
	// OptimizeStudySpec configures a study: knobs, objectives,
	// constraints, population, generations, surrogate/UQ settings.
	OptimizeStudySpec = optimize.StudySpec
	// OptimizeCandidate is one twin-evaluated design point.
	OptimizeCandidate = optimize.Candidate
	// OptimizeStudyResult is the completed study: baseline, best,
	// twin-exact Pareto frontier, and evaluation accounting.
	OptimizeStudyResult = optimize.StudyResult
	// OptimizeProgress is one generation's cumulative study snapshot.
	OptimizeProgress = optimize.Progress
	// Study is a running or finished study handle (SweepService.SubmitStudy).
	Study = service.Study
	// StudyOptions names a study and opts into surrogate warm-starting.
	StudyOptions = service.StudyOptions
	// StudyStatus is a study's observable snapshot.
	StudyStatus = service.StudyStatus
)

// OptimizeKnobNames lists every knob the co-design search space
// supports: plant setpoints, AutoCSM design quantities, solver choice,
// scenario timing/weather, and workload mix.
func OptimizeKnobNames() []string {
	return optimize.KnobNames()
}
