package exadigit

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	tw, err := NewFrontierTwin()
	if err != nil {
		t.Fatal(err)
	}
	res, err := tw.Run(Scenario{
		Workload:   WorkloadSynthetic,
		HorizonSec: 1800,
		TickSec:    15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.AvgPowerMW < 7 {
		t.Errorf("avg power = %v MW", res.Report.AvgPowerMW)
	}
	out := RenderStatus(tw)
	if !strings.Contains(out, "ExaDigiT") {
		t.Errorf("dashboard frame malformed:\n%s", out)
	}
}

func TestFacadeSpecRoundTrip(t *testing.T) {
	spec := FrontierSpec()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := spec.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := NewTwin(*loaded)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Run(Scenario{Workload: WorkloadIdle, HorizonSec: 60, TickSec: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSetonixSpec(t *testing.T) {
	tw, err := NewTwin(SetonixLikeSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tw.Run(Scenario{Workload: WorkloadPeak, HorizonSec: 60, TickSec: 15})
	if err != nil {
		t.Fatal(err)
	}
	// Partition 0 (CPU-only, 1592 nodes) peak power ≈ 1.3 MW: far
	// smaller than Frontier.
	if res.Report.MaxPowerMW > 5 {
		t.Errorf("setonix CPU partition peak = %v MW", res.Report.MaxPowerMW)
	}
}

func TestFacadeAutoCSM(t *testing.T) {
	cfg, err := GenerateCoolingModel(FrontierSpec().Cooling)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewCoolingFMU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.SetupExperiment(0); err != nil {
		t.Fatal(err)
	}
	// FMU over the generated plant honours the 317-output contract.
	if got := len(inst.Description().OutputRefs()); got != 317 {
		t.Errorf("outputs = %d", got)
	}
	if _, err := NewCoolingFMU(FrontierCoolingModel()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDashboardHandler(t *testing.T) {
	tw, err := NewFrontierTwin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Run(Scenario{Workload: WorkloadIdle, HorizonSec: 120, TickSec: 15}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(DashboardHandler(tw))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/api/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		PowerMW float64 `json:"power_mw"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.PowerMW < 7 || st.PowerMW > 8 {
		t.Errorf("idle power over HTTP = %v MW", st.PowerMW)
	}
}

func TestFacadeTelemetryRoundTrip(t *testing.T) {
	tw, err := NewFrontierTwin()
	if err != nil {
		t.Fatal(err)
	}
	res, err := tw.Run(Scenario{Workload: WorkloadSynthetic, HorizonSec: 1800, TickSec: 15})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "day")
	if err := res.Dataset.Save(dir); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadTelemetry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Jobs) != len(res.Dataset.Jobs) {
		t.Errorf("telemetry round trip lost jobs: %d vs %d", len(ds.Jobs), len(res.Dataset.Jobs))
	}
	// And it replays.
	if _, err := tw.Run(Scenario{
		Workload: WorkloadReplay, Dataset: ds, HorizonSec: 1800, TickSec: 15,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultGeneratorConfigCalibration(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	if cfg.ArrivalMeanSec != 138 || cfg.NodesMean != 268 {
		t.Errorf("generator defaults drifted from Table IV: %+v", cfg)
	}
}

func TestFacadeDiagnosticsAndLevels(t *testing.T) {
	// UQ ensemble through the facade.
	res, err := RunUQ(UQConfig{Members: 6, Seed: 2, HorizonSec: 120, TickSec: 15}, func() []*Job {
		j := NewJob(1, "load", 2000, 600, 0)
		j.CPUTrace = FlatTrace(0.7, 600)
		j.GPUTrace = FlatTrace(0.7, 600)
		return []*Job{j}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PowerMW.Mean < 8 || res.PowerMW.Std <= 0 {
		t.Errorf("UQ power = %+v", res.PowerMW)
	}
	// Anomaly detector over a fresh FMU snapshot.
	det := NewAnomalyDetector()
	inst, err := NewCoolingFMU(FrontierCoolingModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.SetupExperiment(0); err != nil {
		t.Fatal(err)
	}
	d := inst.Description()
	refs := make([]ValueRef, 0, 27)
	vals := make([]float64, 0, 27)
	for i := 1; i <= 25; i++ {
		r, err := d.RefByName(fmt.Sprintf("cdu[%d].heat_w", i))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
		vals = append(vals, 16e6/25)
	}
	wb, _ := d.RefByName("wetbulb_temp_c")
	it, _ := d.RefByName("it_power_w")
	refs = append(refs, wb, it)
	vals = append(vals, 20, 16.9e6)
	if err := inst.SetReal(refs, vals); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := inst.DoStep(15); err != nil {
			t.Fatal(err)
		}
	}
	alarms := det.CheckCooling(inst.Plant().Snapshot(), inst.Time())
	if len(alarms) != 0 {
		t.Errorf("healthy plant alarmed via facade: %v", alarms)
	}
}
