// Cooling-model validation (§IV-1, Fig. 7): drive both a "physical twin"
// (parameter-perturbed plant + sensor noise standing in for telemetry)
// and the nominal model with the same day of CDU heat loads and weather,
// then compare CDU flow, return temperature, HTW pressure, and PUE —
// printing RMSE/MAE and ASCII overlays of the series.
package main

import (
	"fmt"
	"log"

	"exadigit/internal/exp"
	"exadigit/internal/viz"
)

func main() {
	log.SetFlags(0)

	fmt.Println("running 6 h cooling-model validation (model vs synthetic telemetry)...")
	tbl, data, err := exp.Fig7(exp.Fig7Config{HorizonSec: 6 * 3600, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl)

	for _, ch := range data.Channels {
		fmt.Printf("%s [%s]\n", ch.Name, ch.Unit)
		fmt.Printf("  model:     %s\n", viz.Sparkline(ch.Predicted, 64))
		fmt.Printf("  telemetry: %s\n", viz.Sparkline(ch.Measured, 64))
	}
	fmt.Println("\npaper: PUE predicted within 1.4 % of telemetry; RMSE/MAE within reasonable bounds")
}
