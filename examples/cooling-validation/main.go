// Cooling-model validation and spec-driven plant sweeps.
//
// Part 1 (§IV-1, Fig. 7): drive both a "physical twin"
// (parameter-perturbed plant + sensor noise standing in for telemetry)
// and the nominal model with the same day of CDU heat loads and weather,
// then compare CDU flow, return temperature, HTW pressure, and PUE —
// printing RMSE/MAE and ASCII overlays of the series.
//
// Part 2 (§V AutoCSM): the cooling pipeline is spec-driven, so a sweep
// can mix plant designs. A single POST /api/sweeps through the `exadigit
// serve` API runs the same HPL block against three plants — the
// hand-calibrated Frontier preset, the AutoCSM synthesis of the same
// design quantities, and a re-sized AutoCSM variant — each compiled into
// its own cooling design.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"exadigit"
	"exadigit/internal/exp"
	"exadigit/internal/service"
	"exadigit/internal/viz"
)

func main() {
	log.SetFlags(0)

	fmt.Println("running 6 h cooling-model validation (model vs synthetic telemetry)...")
	tbl, data, err := exp.Fig7(exp.Fig7Config{HorizonSec: 6 * 3600, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl)

	for _, ch := range data.Channels {
		fmt.Printf("%s [%s]\n", ch.Name, ch.Unit)
		fmt.Printf("  model:     %s\n", viz.Sparkline(ch.Predicted, 64))
		fmt.Printf("  telemetry: %s\n", viz.Sparkline(ch.Measured, 64))
	}
	fmt.Println("\npaper: PUE predicted within 1.4 % of telemetry; RMSE/MAE within reasonable bounds")

	plantSweep()
}

// plantSweep submits one sweep mixing three cooling plants through the
// same HTTP API `exadigit serve` exposes.
func plantSweep() {
	fmt.Println("\n=== spec-driven plant sweep (one POST /api/sweeps, three plants) ===")

	svc := exadigit.NewSweepService(exadigit.SweepServiceOptions{Workers: 3})
	srv := httptest.NewServer(svc.Handler()) // stands in for `exadigit serve -addr ...`
	defer srv.Close()

	preset := exadigit.FrontierSpec().Cooling // resolves to the hand-calibrated plant
	auto := preset
	auto.Preset = "" // same design quantities, AutoCSM-synthesized
	resized := auto
	resized.NumTowers = 4
	resized.TowerFlowGPM = 7500
	resized.PrimaryFlowGPM = 6000

	req := service.SubmitRequest{Name: "plant-whatif"}
	for _, v := range []struct {
		name string
		spec exadigit.CoolingSpec
	}{{"frontier-preset", preset}, {"autocsm-frontier", auto}, {"autocsm-resized", resized}} {
		spec := v.spec
		req.Scenarios = append(req.Scenarios, service.ScenarioRequest{
			Name: v.name, Workload: "hpl", BenchmarkWallSec: 3 * 3600,
			HorizonSec: 2 * 3600, TickSec: 15, WetBulbC: 19,
			CoolingSpec: &spec, // implies cooling; validated at the boundary
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/api/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var ack service.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted %s (%d scenarios, distinct hashes per plant)\n", ack.ID, len(ack.ScenarioHashes))

	// Tail the NDJSON stream until every scenario lands.
	stream, err := http.Get(srv.URL + "/api/sweeps/" + ack.ID + "/stream")
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Body.Close()
	dec := json.NewDecoder(stream.Body)
	fmt.Printf("%-18s %-8s %10s %10s\n", "plant", "state", "avg MW", "PUE")
	for dec.More() {
		var e service.ResultEntry
		if err := dec.Decode(&e); err != nil {
			log.Fatal(err)
		}
		if e.Report != nil {
			fmt.Printf("%-18s %-8s %10.2f %10.4f\n", e.Name, e.State, e.Report.AvgPowerMW, e.Report.AvgPUE)
		} else {
			fmt.Printf("%-18s %-8s %10s %10s (%s)\n", e.Name, e.State, "-", "-", e.Error)
		}
	}
	fmt.Println("each scenario cooled by its own compiled plant; the preset row is")
	fmt.Println("bit-identical to the hand-calibrated Frontier model (pinned by test)")

	solverStats()
}

// solverStats runs the same cooled stretch under the fixed-step
// reference and the adaptive solver (cooling spec `"solver":
// "adaptive"`), printing the solver work accounting — accepted/rejected
// error-controlled steps, controller updates simulated, and the
// fraction of simulated time fast-forwarded through equilibrium holds.
func solverStats() {
	fmt.Println("\n=== adaptive plant solver (fixed-step reference vs \"solver\": \"adaptive\") ===")
	for _, solver := range []string{"rk4", "adaptive"} {
		spec := exadigit.FrontierSpec()
		spec.Cooling.Solver = solver
		tw, err := exadigit.NewTwin(spec)
		if err != nil {
			log.Fatal(err)
		}
		res, err := tw.Run(exadigit.Scenario{
			Workload: "hpl", BenchmarkWallSec: 3 * 3600,
			HorizonSec: 2 * 3600, TickSec: 15,
			Cooling: true, WetBulbC: 19, NoExport: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		st := tw.Simulation().CoolingSolverStats()
		fmt.Printf("%-9s wall %6.2f s  PUE %.4f  control steps %6d  ode steps %d/%d accepted/rejected  quiescent %4.1f%%\n",
			solver, res.WallSec, res.Report.AvgPUE, st.ControlSteps,
			st.Accepted, st.Rejected, 100*st.QuiescentFraction())
	}
	fmt.Println("fixed-step stays bit-reproducible for validation goldens; adaptive")
	fmt.Println("holds the plant through quiet stretches (see README: solver & accuracy)")
}
