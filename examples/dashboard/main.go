// Dashboard: serve the twin's REST API and poke it like the paper's web
// dashboard does (§III-B6): read live status, pull the power series, and
// launch a what-if run over HTTP, then recall the stored result.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"

	"exadigit"
)

func main() {
	log.SetFlags(0)

	tw, err := exadigit.NewFrontierTwin()
	if err != nil {
		log.Fatal(err)
	}
	// Prime the twin with a short cooled HPL run.
	if _, err := tw.Run(exadigit.Scenario{
		Workload:         exadigit.WorkloadHPL,
		HorizonSec:       1800,
		TickSec:          15,
		Cooling:          true,
		BenchmarkWallSec: 3600,
	}); err != nil {
		log.Fatal(err)
	}

	srv := httptest.NewServer(exadigit.DashboardHandler(tw))
	defer srv.Close()
	fmt.Printf("dashboard API serving at %s\n\n", srv.URL)

	get := func(path string) []byte {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			log.Fatal(err)
		}
		return body
	}

	fmt.Printf("GET /api/status →\n  %s\n", get("/api/status"))

	var series []map[string]float64
	if err := json.Unmarshal(get("/api/series"), &series); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET /api/series → %d samples (last power %.2f MW)\n",
		len(series), series[len(series)-1]["power_mw"])

	var coolingOut []map[string]float64
	if err := json.Unmarshal(get("/api/cooling"), &coolingOut); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET /api/cooling → %d channels\n", len(coolingOut))

	// Launch a what-if over HTTP: a 10-minute idle run under 380 V DC.
	resp, err := http.PostForm(srv.URL+"/api/run", url.Values{
		"workload":    {"idle"},
		"mode":        {"dc380"},
		"horizon_sec": {"600"},
	})
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POST /api/run (dc380 idle what-if) →\n  %s\n", body)
	fmt.Printf("GET /api/experiments → %s\n", get("/api/experiments"))
}
