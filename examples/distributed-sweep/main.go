// Distributed sweep: the cluster coordinator from README "Distributed
// sweeps", run as three worker serve instances plus one coordinator in
// a single process. The workers share one result-store directory with
// cross-node leases; the coordinator shards a 24-scenario sweep across
// them by rendezvous hash, streams results back, and the example then
// proves the two fabric claims — resubmission computes nothing, and
// every scenario was persisted exactly once cluster-wide.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"time"

	"exadigit"
)

func main() {
	log.SetFlags(0)

	// Shared store directory — in production an NFS mount every node
	// sees; leases on its keys give the cluster exactly-once compute.
	dir, err := os.MkdirTemp("", "exadigit-cluster-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Three workers: ordinary `exadigit serve -store DIR -lease-ttl 2m`
	// instances, here in-process behind test listeners.
	var urls []string
	var stores []*exadigit.ResultStore
	for i := 0; i < 3; i++ {
		st, err := exadigit.OpenResultStore(dir)
		if err != nil {
			log.Fatal(err)
		}
		wsvc := exadigit.NewSweepService(exadigit.SweepServiceOptions{
			Workers:  2,
			Store:    st,
			LeaseTTL: 2 * time.Minute,
		})
		srv := httptest.NewServer(wsvc.Handler())
		defer srv.Close()
		defer wsvc.CancelAll()
		urls = append(urls, srv.URL)
		stores = append(stores, st)
		fmt.Printf("worker %d serving at %s\n", i+1, srv.URL)
	}

	// The coordinator: `exadigit serve -workers url,url,url`. Its pool
	// implements the sweep service's compute seam, so everything else —
	// admission, cache, single-flight, retries, streaming — is the
	// stock service.
	pool, err := exadigit.NewClusterPool(exadigit.ClusterOptions{
		Workers:      urls,
		StallTimeout: 30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	coord := exadigit.NewSweepService(exadigit.SweepServiceOptions{
		Workers: 12,
		Runner:  pool,
	})
	defer coord.CancelAll()
	fmt.Printf("coordinator dispatching to %d workers\n\n", len(pool.Workers()))

	// A 24-scenario what-if sweep, submitted exactly as to a single
	// node; clients cannot tell a coordinator from a worker.
	scenarios := make([]exadigit.Scenario, 24)
	for i := range scenarios {
		gen := exadigit.DefaultGeneratorConfig()
		gen.Seed = int64(1 + i)
		scenarios[i] = exadigit.Scenario{
			Name:       fmt.Sprintf("whatif-%02d", i),
			Workload:   exadigit.WorkloadSynthetic,
			HorizonSec: 3600,
			TickSec:    15,
			Generator:  gen,
			NoExport:   true,
			NoHistory:  true,
		}
	}
	start := time.Now()
	sw, err := coord.Submit(exadigit.FrontierSpec(), scenarios, exadigit.SweepOptions{Name: "distributed"})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := sw.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	st := sw.Status()
	fmt.Printf("cold sweep: %d done / %d failed in %.2fs across %d workers\n",
		st.Done, st.Failed, time.Since(start).Seconds(), pool.HealthyWorkers())

	// Exactly-once persistence: the workers share one directory, so the
	// sum of their Put counters is the cluster-wide compute count.
	var puts uint64
	for i, s := range stores {
		m := s.Stats()
		fmt.Printf("  worker %d: %d results persisted\n", i+1, m.Puts)
		puts += m.Puts
	}
	fmt.Printf("cluster-wide persists: %d (scenarios: %d)\n\n", puts, len(scenarios))

	// Resubmit: the coordinator's cache answers; nothing is dispatched.
	start = time.Now()
	sw2, err := coord.Submit(exadigit.FrontierSpec(), scenarios, exadigit.SweepOptions{Name: "replay"})
	if err != nil {
		log.Fatal(err)
	}
	if err := sw2.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	st2 := sw2.Status()
	fmt.Printf("warm resubmit: %d cached in %.0f ms — no worker touched\n",
		st2.Cached, float64(time.Since(start).Microseconds())/1000)
}
