// Forensic diagnostics (§III-A): the operational use cases the twin was
// built for — per-job energy attribution, coolant-blockage detection via
// failure injection, blade-level thermal-throttle early warning, and an
// uncertainty-quantified power prediction.
package main

import (
	"fmt"
	"log"

	"exadigit"
	"exadigit/internal/anomaly"
	"exadigit/internal/cooling"
	"exadigit/internal/job"
	"exadigit/internal/power"
	"exadigit/internal/raps"
)

func main() {
	log.SetFlags(0)

	// --- Use case 1: per-job energy attribution -----------------------
	fmt.Println("— per-job energy attribution —")
	gen := job.NewGenerator(job.DefaultGeneratorConfig())
	jobs := gen.GenerateHorizon(2 * 3600)
	rcfg := raps.DefaultConfig()
	rcfg.TickSec = 15
	sim, err := raps.New(rcfg, power.NewFrontierModel(), jobs)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(3 * 3600); err != nil {
		log.Fatal(err)
	}
	for _, je := range sim.TopConsumers(5) {
		fmt.Printf("  job %-6d %-14s %5d nodes  %7.3f MWh facility  %6.3f t CO2  $%.0f\n",
			je.JobID, je.Name, je.NodeCount, je.FacilityEnergyMWh, je.CO2Tons, je.CostUSD)
	}

	// --- Use case 2: blockage injection + detection -------------------
	fmt.Println("\n— coolant blockage detection (water-quality use case) —")
	plant, err := cooling.New(cooling.Frontier())
	if err != nil {
		log.Fatal(err)
	}
	heat := make([]float64, 25)
	for i := range heat {
		heat[i] = 16e6 / 25
	}
	in := cooling.Inputs{CDUHeatW: heat, WetBulbC: 20, ITPowerW: 16.9e6}
	if err := plant.SettleToSteadyState(in, 2*3600); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  injecting 2.5x fouling into CDU 12's blade loops...")
	if err := plant.InjectSecondaryFouling(11, 2.5); err != nil {
		log.Fatal(err)
	}
	if err := plant.Step(600, in); err != nil {
		log.Fatal(err)
	}
	det := anomaly.NewDetector(anomaly.DefaultConfig())
	for _, a := range det.CheckCooling(plant.Snapshot(), plant.Time()) {
		fmt.Printf("  ALARM %s\n", a)
	}

	// --- Use case 3: thermal-throttle early warning -------------------
	fmt.Println("\n— thermal-throttle early detection —")
	o := plant.Snapshot()
	blocked := o.CDUs[11]
	perDevice := 1.2e-5 * (blocked.SecondaryFlowM3s / o.CDUs[0].SecondaryFlowM3s) * 0.12
	if a, hit := det.CheckThrottle("cdu[12]/worst-blade/gpu", 560, blocked.SecSupplyTempC, perDevice, plant.Time()); hit {
		fmt.Printf("  ALARM %s\n", a)
	} else {
		fmt.Println("  no throttle risk at current load")
	}

	// --- Use case 4: uncertainty-quantified prediction ----------------
	fmt.Println("\n— UQ ensemble on the power prediction (VVUQ, §IV) —")
	res, err := exadigit.RunUQ(exadigit.UQConfig{
		Members: 16, Seed: 4, HorizonSec: 900, TickSec: 15,
	}, func() []*exadigit.Job {
		j := exadigit.NewJob(1, "steady", 7000, 900, 0)
		j.CPUTrace = exadigit.FlatTrace(0.8, 900)
		j.GPUTrace = exadigit.FlatTrace(0.8, 900)
		return []*exadigit.Job{j}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  power  %6.2f MW  [%6.2f, %6.2f] 5-95%%\n",
		res.PowerMW.Mean, res.PowerMW.P05, res.PowerMW.P95)
	fmt.Printf("  eta    %6.4f     [%6.4f, %6.4f]\n",
		res.EtaSystem.Mean, res.EtaSystem.P05, res.EtaSystem.P95)
	fmt.Printf("  CO2    %6.2f t   [%6.2f, %6.2f]\n",
		res.CO2Tons.Mean, res.CO2Tons.P05, res.CO2Tons.P95)
}
