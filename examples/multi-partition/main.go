// Multi-partition generalization (§V): simulate a full day of a
// Setonix-like system — a CPU-only partition and a GPU partition,
// scheduled and powered independently, rejecting their heat into one
// shared AutoCSM-sized cooling plant — and report per-partition energy
// alongside the shared-plant PUE.
package main

import (
	"fmt"
	"log"

	"exadigit"
)

func main() {
	log.SetFlags(0)

	spec := exadigit.SetonixLikeSpec()
	fmt.Printf("system %q with %d partitions sharing one cooling plant\n",
		spec.Name, len(spec.Partitions))

	tw, err := exadigit.NewTwin(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Heterogeneous day: synthetic jobs on the CPU partition, an HPL-like
	// peak stretch on the GPU partition. One simulated day drives both
	// partitions against the shared plant.
	gen := exadigit.DefaultGeneratorConfig()
	gen.Seed = 2024
	res, err := tw.Run(exadigit.Scenario{
		Name:       "setonix-day",
		HorizonSec: 24 * 3600,
		TickSec:    15,
		Cooling:    true,
		WetBulbC:   21,
		Partitions: []exadigit.PartitionScenario{
			{Workload: exadigit.WorkloadSynthetic, Generator: gen},
			{Workload: exadigit.WorkloadPeak},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	rep := res.Report
	fmt.Printf("\nsimulated day: %.2f MW avg, %.1f MWh, %d jobs completed\n",
		rep.AvgPowerMW, rep.EnergyMWh, rep.JobsCompleted)
	for _, p := range rep.Partitions {
		fmt.Printf("  partition %-4s %7.2f MWh (avg %.2f MW, peak %.2f MW, util %.0f %%, %d jobs)\n",
			p.Name, p.EnergyMWh, p.AvgPowerMW, p.MaxPowerMW, 100*p.AvgUtilization, p.JobsCompleted)
	}
	fmt.Printf("shared plant: PUE %.3f (both partitions' heat through one CEP)\n", rep.AvgPUE)

	// The per-partition split is also a telemetry channel: the last
	// recorded sample carries each partition's instantaneous power.
	if n := len(res.History); n > 0 {
		last := res.History[n-1]
		fmt.Printf("last sample t=%.0fs: total %.2f MW = ", last.TimeSec, last.PowerW/1e6)
		for i, w := range last.PartPowerW {
			if i > 0 {
				fmt.Print(" + ")
			}
			fmt.Printf("%.2f MW (%s)", w/1e6, spec.Partitions[i].Name)
		}
		fmt.Println()
	}
}
