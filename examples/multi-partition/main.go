// Multi-partition generalization (§V): model a Setonix-like system with
// separate CPU-only and CPU+GPU partitions from a JSON specification,
// generate its cooling plant with AutoCSM, and compare the partitions'
// power envelopes.
package main

import (
	"fmt"
	"log"

	"exadigit"
	"exadigit/internal/cooling"
	"exadigit/internal/units"
)

func main() {
	log.SetFlags(0)

	spec := exadigit.SetonixLikeSpec()
	fmt.Printf("system %q with %d partitions\n", spec.Name, len(spec.Partitions))

	models, err := spec.BuildModels()
	if err != nil {
		log.Fatal(err)
	}
	for i, m := range models {
		idle := m.Spec.NodeIdle() * float64(m.Topo.NodesTotal) / 1e6
		peak := m.Spec.NodePeak() * float64(m.Topo.NodesTotal) / 1e6
		fmt.Printf("  partition %-4s %5d nodes, node envelope %.0f-%.0f W (≈%.2f-%.2f MW at the plug)\n",
			spec.Partitions[i].Name, m.Topo.NodesTotal,
			m.Spec.NodeIdle(), m.Spec.NodePeak(), idle/0.94, peak/0.94)
	}

	// AutoCSM sizes the shared cooling plant for the combined design heat.
	cfg, err := exadigit.GenerateCoolingModel(spec.Cooling)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAutoCSM plant: %d CDUs, %d towers × %d cells, CDU HEX UA %.0f W/degC\n",
		cfg.NumCDUs, cfg.NumTowers, cfg.CellsPerTower, cfg.CDUHex.UANominal)

	plant, err := cooling.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	heat := make([]float64, cfg.NumCDUs)
	for i := range heat {
		heat[i] = spec.Cooling.DesignHeatMW * 1e6 / float64(cfg.NumCDUs)
	}
	in := cooling.Inputs{
		CDUHeatW: heat,
		WetBulbC: spec.Cooling.DesignWetBulbC,
		ITPowerW: spec.Cooling.DesignHeatMW * 1e6 / 0.945,
	}
	if err := plant.SettleToSteadyState(in, 4*3600); err != nil {
		log.Fatal(err)
	}
	o := plant.Snapshot()
	fmt.Printf("steady state: rejecting %.2f of %.2f MW, primary %.0f gpm, PUE %.3f\n",
		plant.TowerRejectionW()/1e6, spec.Cooling.DesignHeatMW,
		o.HTWFlowM3s*units.M3sToGPM, o.PUE)
}
