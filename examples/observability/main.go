// Observability: the unified metrics and tracing layer end to end.
//
// The sweep service, the live twin, and the Go runtime all report into
// one metric registry; this example runs a small sweep with duplicate
// scenarios (so the cache tiers show up in the traces), then:
//
//  1. scrapes /metrics and prints the Prometheus exposition highlights,
//  2. re-validates the scrape under the strict format parser and the
//     exadigit_ naming conventions — the same gate `make check` runs,
//  3. pulls the per-scenario lifecycle traces from /api/sweeps/trace
//     and prints each scenario's attempt timeline (queue wait, run
//     time, outcome, cache tier), showing the memory-tier hits of the
//     duplicate scenarios,
//  4. cross-checks the JSON snapshot endpoint against the exposition —
//     both read the same counters, so the values must match exactly.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net/http/httptest"
	"sort"
	"strings"

	"exadigit"
)

func main() {
	log.SetFlags(0)

	svc := exadigit.NewSweepService(exadigit.SweepServiceOptions{Workers: 4})
	reg := svc.Registry()
	exadigit.RegisterGoMetrics(reg)

	tw, err := exadigit.NewFrontierTwin()
	if err != nil {
		log.Fatal(err)
	}
	exadigit.RegisterTwinMetrics(reg, tw)

	// A 6-scenario sweep: four distinct runs, one duplicated twice (the
	// duplicates resolve from the in-memory cache tier).
	var scenarios []exadigit.Scenario
	for _, seed := range []int64{1, 2, 3, 4, 1, 1} {
		gen := exadigit.DefaultGeneratorConfig()
		gen.Seed = seed
		scenarios = append(scenarios, exadigit.Scenario{
			Name: fmt.Sprintf("obs-%d", seed), Workload: exadigit.WorkloadSynthetic,
			HorizonSec: 3 * 3600, TickSec: 15, Generator: gen,
			NoExport: true, NoHistory: true,
		})
	}

	fmt.Println("running a 6-scenario sweep (4 unique + 2 cache-hit duplicates)...")
	sw, err := svc.Submit(exadigit.FrontierSpec(), scenarios, exadigit.SweepOptions{Name: "observability"})
	if err != nil {
		log.Fatal(err)
	}
	<-sw.Done()
	st := sw.Status()
	fmt.Printf("sweep finished: done=%d cached=%d failed=%d\n\n", st.Done, st.Cached, st.Failed)

	// --- 1. Scrape /metrics -------------------------------------------
	handler := svc.Handler()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	scrape := rec.Body.Bytes()

	// --- 2. Strict validation — the `make check` gate -----------------
	expo, err := exadigit.ParseMetricsExposition(scrape)
	if err != nil {
		log.Fatalf("exposition failed strict validation: %v", err)
	}
	if err := exadigit.ValidateMetricsConventions(expo, "exadigit_"); err != nil {
		log.Fatalf("exposition violates naming conventions: %v", err)
	}
	fmt.Printf("scraped /metrics: %d bytes, %d families, strict-validated\n",
		len(scrape), len(expo.FamilyNames()))
	fmt.Println("exposition highlights:")
	series := expo.Series()
	var ids []string
	for id := range series {
		if strings.HasPrefix(id, "exadigit_cache_") || strings.HasPrefix(id, "exadigit_sweep_") {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("  %-45s %g\n", id, series[id])
	}
	fmt.Println()

	// --- 3. Per-scenario lifecycle traces -----------------------------
	fmt.Println("lifecycle traces (/api/sweeps/trace):")
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/api/sweeps/trace", nil))
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var span exadigit.ScenarioSpan
		if err := json.Unmarshal(sc.Bytes(), &span); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  [%d] %-6s tier=%-7s queue=%.3fs total=%.3fs",
			span.Index, span.State, span.CacheTier, span.QueueSec, span.TotalSec)
		for _, a := range span.Attempts {
			fmt.Printf("  attempt%d{run=%.3fs %s}", a.Attempt, a.RunSec, a.Outcome)
		}
		fmt.Println()
	}
	fmt.Println()

	// --- 4. JSON snapshot == exposition -------------------------------
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/api/sweeps/metrics", nil))
	var snap struct {
		Cache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		log.Fatal(err)
	}
	hits := series[`exadigit_cache_hits_total{}`]
	misses := series[`exadigit_cache_misses_total{}`]
	fmt.Printf("single source of truth: JSON hits=%d misses=%d, exposition hits=%g misses=%g\n",
		snap.Cache.Hits, snap.Cache.Misses, hits, misses)
	if float64(snap.Cache.Hits) != hits || float64(snap.Cache.Misses) != misses {
		log.Fatal("JSON snapshot and exposition disagree")
	}
	fmt.Println("JSON snapshot and Prometheus exposition reconcile exactly")
}
