// Optimization: run a closed-loop co-design study over the twin the
// way the paper frames system design questions ("what does changing
// the cooling setpoints or the workload mix do to energy and PUE?").
// Submit a two-knob, two-objective study over HTTP, tail the NDJSON
// progress stream generation by generation, and print the twin-exact
// Pareto frontier — every reported objective was simulated, never
// predicted, even though most candidates were screened on the
// conformal-gated surrogate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"exadigit"
)

func main() {
	log.SetFlags(0)

	// The same service that backs `exadigit serve`: the optimizer's
	// outer loop evaluates candidates through it, so candidate
	// evaluations inherit the result cache, single-flight, and retries.
	svc := exadigit.NewSweepService(exadigit.SweepServiceOptions{Workers: 4})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	fmt.Printf("optimize API serving at %s\n\n", srv.URL)

	// Co-design across layers: the cooling-tower supply setpoint (plant
	// control) against the workload arrival rate (scheduler pressure) —
	// minimize PUE while maximizing scheduler throughput.
	submit := map[string]any{
		"name":      "setpoint-co-design",
		"spec_name": "frontier",
		"base": map[string]any{
			"name": "co-design", "workload": "synthetic",
			"horizon_sec": 1800, "tick_sec": 15, "cooling": true,
		},
		"study": map[string]any{
			"knobs": []map[string]any{
				{"name": "cooling.ct_supply_set_c", "min": 18, "max": 30, "step": 0.5},
				{"name": "workload.arrival_mean_sec", "min": 60, "max": 600, "step": 5},
			},
			"objectives": []map[string]any{
				{"metric": "avg_pue"},
				{"metric": "throughput_per_hr", "maximize": true},
			},
			"population":  48,
			"generations": 4,
			"seed":        42,
		},
	}
	body, _ := json.Marshal(submit)
	resp, err := http.Post(srv.URL+"/api/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var ack struct {
		ID       string `json:"id"`
		SpecHash string `json:"spec_hash"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("POST /api/optimize → id %s (spec %s…)\n\n", ack.ID, ack.SpecHash[:12])

	// The stream emits one progress line per generation, then a terminal
	// line carrying the final state and result.
	start := time.Now()
	stream, err := http.Get(srv.URL + "/api/optimize/" + ack.ID + "/stream")
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Body.Close()
	type entry struct {
		Progress *exadigit.OptimizeProgress    `json:"progress"`
		State    string                        `json:"state"`
		Error    string                        `json:"error"`
		Result   *exadigit.OptimizeStudyResult `json:"result"`
	}
	var final entry
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var e entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			log.Fatal(err)
		}
		if e.Progress != nil {
			p := e.Progress
			fmt.Printf("  gen %d: %3d twin evals (%d cached)  %4d screened on surrogate  %2d UQ fallbacks  best %.3f\n",
				p.Generation, p.TwinEvals, p.CachedEvals, p.Screened, p.Fallbacks, p.BestScalar)
		}
		if e.State != "" {
			final = e
		}
	}
	if final.State != "done" || final.Result == nil {
		log.Fatalf("study ended %s: %s", final.State, final.Error)
	}
	res := final.Result
	fmt.Printf("\nstudy done in %v: %d twin evals settled %d candidates (%d screened without simulating)\n",
		time.Since(start).Round(time.Millisecond), res.TwinEvals, res.TwinEvals+res.Screened, res.Screened)
	fmt.Printf("baseline: PUE %.4f at %.2f jobs/hr\n\n",
		res.BaselineObjectives["avg_pue"], res.BaselineObjectives["throughput_per_hr"])

	// The Pareto frontier — every member twin-exact.
	fmt.Println("twin-exact Pareto frontier (PUE vs throughput):")
	for _, c := range res.Frontier {
		fmt.Printf("  ct_supply %.1f °C  arrival %5.1f s → PUE %.4f  %5.2f jobs/hr\n",
			c.Params["cooling.ct_supply_set_c"], c.Params["workload.arrival_mean_sec"],
			c.Objectives["avg_pue"], c.Objectives["throughput_per_hr"])
	}
	best := res.Best
	fmt.Printf("\nbest: %v → PUE %.4f (baseline %.4f)\n",
		best.Params, best.Objectives["avg_pue"], res.BaselineObjectives["avg_pue"])
}
