// Quickstart: build a digital twin of Frontier, simulate two hours of
// synthetic workload with the cooling model coupled, and print the
// end-of-run report and a terminal dashboard frame.
package main

import (
	"fmt"
	"log"

	"exadigit"
)

func main() {
	log.SetFlags(0)

	tw, err := exadigit.NewFrontierTwin()
	if err != nil {
		log.Fatal(err)
	}

	res, err := tw.Run(exadigit.Scenario{
		Workload:   exadigit.WorkloadSynthetic,
		HorizonSec: 2 * 3600,
		TickSec:    15,
		Cooling:    true,
	})
	if err != nil {
		log.Fatal(err)
	}

	r := res.Report
	fmt.Printf("jobs completed: %d (%.0f jobs/hr)\n", r.JobsCompleted, r.ThroughputPerHr)
	fmt.Printf("average power:  %.2f MW (peak %.2f MW)\n", r.AvgPowerMW, r.MaxPowerMW)
	fmt.Printf("losses:         %.2f MW (%.1f %%), eta_system %.3f\n", r.AvgLossMW, r.LossPercent, r.EtaSystem)
	fmt.Printf("energy:         %.1f MW-hr → %.1f t CO2, $%.0f\n", r.EnergyMWh, r.CO2Tons, r.CostUSD)
	fmt.Printf("PUE:            %.3f\n\n", r.AvgPUE)
	fmt.Print(exadigit.RenderStatus(tw))
}
