// Sweep service: drive the twin-as-a-service API the way the paper's
// REST backend runs what-if experiments (§III-B6). Submit a 12-scenario
// what-if sweep over HTTP, tail the NDJSON stream as results complete,
// re-submit the identical sweep to watch the content-addressed result
// cache serve it instantly, and stream one scenario's full telemetry
// as NDJSON.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"exadigit"
)

func main() {
	log.SetFlags(0)

	// The long-running service: worker pool + compiled specs + cache.
	// `exadigit serve` mounts exactly this handler on a real listener.
	svc := exadigit.NewSweepService(exadigit.SweepServiceOptions{Workers: 4})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	fmt.Printf("sweep API serving at %s\n\n", srv.URL)

	// A 12-scenario what-if sweep: four seeded synthetic days under each
	// of the three conversion architectures.
	submit := map[string]any{
		"name":      "conversion-whatif",
		"spec_name": "frontier",
		"scenarios": []map[string]any{},
	}
	var scenarios []map[string]any
	for _, mode := range []string{"ac-baseline", "smart-rectifier", "dc380"} {
		for seed := 1; seed <= 4; seed++ {
			scenarios = append(scenarios, map[string]any{
				"name":        fmt.Sprintf("%s-day%d", mode, seed),
				"workload":    "synthetic",
				"horizon_sec": 6 * 3600,
				"tick_sec":    15,
				"power_mode":  mode,
				"generator":   map[string]any{"arrival_mean_sec": 138, "nodes_mean": 268, "nodes_std": 626, "max_nodes": 9472, "wall_mean_sec": 2340, "wall_std_sec": 840, "wall_min_sec": 60, "wall_max_sec": 21600, "cpu_util_mean": 0.45, "cpu_util_std": 0.25, "gpu_util_mean": 0.7, "gpu_util_std": 0.25, "util_jitter": 0.05, "single_node_fraction": 0.32, "seed": seed},
			})
		}
	}
	submit["scenarios"] = scenarios

	body, _ := json.Marshal(submit)
	post := func() (id string) {
		resp, err := http.Post(srv.URL+"/api/sweeps", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var ack struct {
			ID       string `json:"id"`
			SpecHash string `json:"spec_hash"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("POST /api/sweeps → id %s (spec %s…)\n", ack.ID, ack.SpecHash[:12])
		return ack.ID
	}

	// Cold submission: every scenario simulates through the pool. Tail
	// the stream endpoint — one NDJSON line per result as it lands.
	start := time.Now()
	id := post()
	resp, err := http.Get(srv.URL + "/api/sweeps/" + id + "/stream")
	if err != nil {
		log.Fatal(err)
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		var e struct {
			Name    string  `json:"name"`
			State   string  `json:"state"`
			WallSec float64 `json:"wall_sec"`
			Report  struct {
				AvgPowerMW float64 `json:"AvgPowerMW"`
				EnergyMWh  float64 `json:"EnergyMWh"`
			} `json:"report"`
		}
		if err := json.Unmarshal(scanner.Bytes(), &e); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  stream: %-24s %-6s %6.2f MW  %7.1f MWh  (%.2fs)\n",
			e.Name, e.State, e.Report.AvgPowerMW, e.Report.EnergyMWh, e.WallSec)
	}
	resp.Body.Close()
	fmt.Printf("cold sweep: %d scenarios in %v\n\n", len(scenarios), time.Since(start).Round(time.Millisecond))

	// Warm re-submission: identical content hashes → served from cache.
	start = time.Now()
	id2 := post()
	sw, _ := svc.Sweep(id2)
	if err := sw.Wait(context.Background()); err != nil {
		log.Fatal(err)
	}
	st := sw.Status()
	fmt.Printf("warm sweep: %d cached of %d in %v\n\n", st.Cached, st.Total, time.Since(start).Round(time.Millisecond))

	// Streaming telemetry: run one scenario with an NDJSON sink attached;
	// samples leave incrementally during the run instead of materializing
	// the dense export.
	tw, err := exadigit.NewFrontierTwin()
	if err != nil {
		log.Fatal(err)
	}
	var stream bytes.Buffer
	if _, err := tw.Run(exadigit.Scenario{
		Workload: exadigit.WorkloadSynthetic, HorizonSec: 2 * 3600, TickSec: 15,
		WetBulbC: 20, NoExport: true, TelemetryTo: &stream,
	}); err != nil {
		log.Fatal(err)
	}
	lines := bytes.Count(stream.Bytes(), []byte("\n"))
	fmt.Printf("streamed telemetry: %d NDJSON lines, %d bytes (first line: %s)\n",
		lines, stream.Len(), bytes.SplitN(stream.Bytes(), []byte("\n"), 2)[0])
}
