// Telemetry replay: the paper's central V&V workflow (§IV, Finding 8) —
// capture a day of system telemetry, persist it in the Table II schema,
// load it back, and replay it through the digital twin, comparing the
// twin's power prediction against the measured channel.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"exadigit"
)

func main() {
	log.SetFlags(0)

	tw, err := exadigit.NewFrontierTwin()
	if err != nil {
		log.Fatal(err)
	}

	// 1. "Capture" a day: run synthetic workload and export its
	//    telemetry (our substitute for Frontier's production telemetry).
	gen := exadigit.DefaultGeneratorConfig()
	gen.Seed = 2024
	captured, err := tw.Run(exadigit.Scenario{
		Workload:   exadigit.WorkloadSynthetic,
		Generator:  gen,
		HorizonSec: 6 * 3600,
		TickSec:    15,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured: %d jobs, %.2f MW avg\n",
		captured.Report.JobsCompleted, captured.Report.AvgPowerMW)

	// 2. Persist and reload the dataset (jobs.jsonl + series.csv).
	dir := filepath.Join(os.TempDir(), "exadigit-replay-demo")
	if err := captured.Dataset.Save(dir); err != nil {
		log.Fatal(err)
	}
	ds, err := exadigit.LoadTelemetry(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted to %s and reloaded: %d job records, %d series samples\n",
		dir, len(ds.Jobs), len(ds.Series))

	// 3. Replay through the twin with pinned start times.
	replayed, err := tw.Run(exadigit.Scenario{
		Workload:   exadigit.WorkloadReplay,
		Dataset:    ds,
		HorizonSec: 6 * 3600,
		TickSec:    15,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compare predicted vs captured power.
	diff := math.Abs(replayed.Report.AvgPowerMW - captured.Report.AvgPowerMW)
	fmt.Printf("replayed: %d jobs, %.2f MW avg (Δ %.3f MW vs capture, %.2f %%)\n",
		replayed.Report.JobsCompleted, replayed.Report.AvgPowerMW,
		diff, 100*diff/captured.Report.AvgPowerMW)
}
