// What-if studies (§IV-3): virtually modify Frontier's power
// architecture — smart load-sharing rectifiers and direct 380 V DC
// distribution — and measure the efficiency, cost, and carbon impact
// against the AC baseline over the same replayed days.
package main

import (
	"fmt"
	"log"

	"exadigit/internal/exp"
)

func main() {
	log.SetFlags(0)

	const days = 4
	fmt.Printf("replaying %d synthetic days per variant...\n\n", days)

	smartTbl, smart, err := exp.SmartRectifier(days, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(smartTbl)

	dcTbl, dc, err := exp.DC380(days, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dcTbl)

	fmt.Printf("summary: DC380 saves %.0f kW on average (%.1f×"+
		" the smart-rectifier saving), cutting carbon %.1f %%\n",
		dc.SavingMW*1e3, dc.SavingMW/smart.SavingMW, dc.CarbonReductionPct)
	fmt.Println("paper: η 93.3 % → 97.3 %, ≈$542k/yr vs ≈$120k/yr, carbon −8.2 %")
}
