module exadigit

go 1.24
