// Package anomaly implements rule-based health monitoring for the
// digital twin, covering the §III-A forensic/diagnostic use cases:
// detecting blade-level coolant blockage from biological growth (flow
// deviation across CDU peers), early detection of thermal throttling
// (cold-plate device-temperature estimates), and sustained
// temperature-setpoint violations. The rule-based style follows the
// tier-0 HPC anomaly detection the paper cites for Marconi100.
package anomaly

import (
	"fmt"
	"sort"

	"exadigit/internal/cooling"
	"exadigit/internal/thermal"
)

// Kind classifies an alarm.
type Kind string

// Alarm kinds.
const (
	// KindFlowLow flags a CDU whose secondary flow has fallen below its
	// peers — the blockage signature (§III-A: "blockage to specific
	// nodes ... can these types of blockages be detected?").
	KindFlowLow Kind = "secondary-flow-low"
	// KindSupplyTempHigh flags a sustained secondary-supply excursion
	// above setpoint.
	KindSupplyTempHigh Kind = "secondary-supply-high"
	// KindThrottleRisk flags device temperatures near the throttling
	// limit (§III-A: "early detection of thermal throttling").
	KindThrottleRisk Kind = "thermal-throttle-risk"
	// KindPUEHigh flags facility-efficiency degradation.
	KindPUEHigh Kind = "pue-high"
)

// Alarm is one detected condition.
type Alarm struct {
	Kind      Kind
	Subject   string // e.g. "cdu[7]"
	Value     float64
	Threshold float64
	TimeSec   float64
}

// String renders the alarm for logs.
func (a Alarm) String() string {
	return fmt.Sprintf("[%s] %s: %.3f (threshold %.3f) at t=%.0fs",
		a.Kind, a.Subject, a.Value, a.Threshold, a.TimeSec)
}

// Config holds the detector thresholds.
type Config struct {
	// FlowDeviationFrac flags a CDU whose secondary flow is below
	// (1 − frac) × the peer median (default 0.15).
	FlowDeviationFrac float64
	// SupplyTempMarginC above setpoint that trips the temperature rule
	// (default 2 °C) after SupplyTempHoldSteps consecutive violations.
	SupplyTempMarginC   float64
	SupplyTempHoldSteps int
	// SupplySetpointC is the secondary supply setpoint (32 °C).
	SupplySetpointC float64
	// PUELimit trips the facility-efficiency rule (default 1.10).
	PUELimit float64
	// ThrottleLimitC is the device junction limit (default 95 °C) and
	// ThrottleMarginC the early-warning margin below it (default 5 °C).
	ThrottleLimitC  float64
	ThrottleMarginC float64
	// Plate is the cold-plate conduction model used for device-
	// temperature estimates.
	Plate thermal.ColdPlate
	// PlateFlowM3s is the per-device coolant allocation at design.
	PlateFlowM3s float64
}

// DefaultConfig returns Frontier-appropriate thresholds.
func DefaultConfig() Config {
	return Config{
		FlowDeviationFrac:   0.15,
		SupplyTempMarginC:   2.0,
		SupplyTempHoldSteps: 8, // 2 min at the 15 s step
		SupplySetpointC:     32,
		PUELimit:            1.10,
		ThrottleLimitC:      95,
		ThrottleMarginC:     5,
		Plate:               thermal.ColdPlate{RConduction: 0.010, RConvNom: 0.012, QNominal: 1.2e-5},
		PlateFlowM3s:        1.2e-5,
	}
}

// Detector evaluates the rules over successive cooling snapshots.
type Detector struct {
	cfg       Config
	tempHolds []int // consecutive over-temperature steps per CDU
}

// NewDetector builds a detector with the given thresholds.
func NewDetector(cfg Config) *Detector {
	if cfg.FlowDeviationFrac <= 0 {
		cfg.FlowDeviationFrac = 0.15
	}
	if cfg.SupplyTempHoldSteps <= 0 {
		cfg.SupplyTempHoldSteps = 8
	}
	return &Detector{cfg: cfg}
}

// CheckCooling evaluates the flow, temperature, and PUE rules against one
// cooling snapshot taken at simulation time tSec.
func (d *Detector) CheckCooling(o *cooling.Outputs, tSec float64) []Alarm {
	var alarms []Alarm
	n := len(o.CDUs)
	if d.tempHolds == nil {
		d.tempHolds = make([]int, n)
	}

	// Rule 1 — flow deviation from the peer median (blockage signature):
	// under identical pump-speed control every healthy CDU settles at
	// nearly the same secondary flow.
	flows := make([]float64, n)
	for i := range o.CDUs {
		flows[i] = o.CDUs[i].SecondaryFlowM3s
	}
	med := median(flows)
	if med > 0 {
		for i, q := range flows {
			limit := med * (1 - d.cfg.FlowDeviationFrac)
			if q < limit {
				alarms = append(alarms, Alarm{
					Kind: KindFlowLow, Subject: fmt.Sprintf("cdu[%d]", i+1),
					Value: q, Threshold: limit, TimeSec: tSec,
				})
			}
		}
	}

	// Rule 2 — sustained secondary-supply temperature excursion.
	for i := range o.CDUs {
		if o.CDUs[i].SecSupplyTempC > d.cfg.SupplySetpointC+d.cfg.SupplyTempMarginC {
			d.tempHolds[i]++
		} else {
			d.tempHolds[i] = 0
		}
		if d.tempHolds[i] == d.cfg.SupplyTempHoldSteps {
			alarms = append(alarms, Alarm{
				Kind: KindSupplyTempHigh, Subject: fmt.Sprintf("cdu[%d]", i+1),
				Value:     o.CDUs[i].SecSupplyTempC,
				Threshold: d.cfg.SupplySetpointC + d.cfg.SupplyTempMarginC,
				TimeSec:   tSec,
			})
		}
	}

	// Rule 3 — facility efficiency.
	if o.PUE > d.cfg.PUELimit {
		alarms = append(alarms, Alarm{
			Kind: KindPUEHigh, Subject: "facility",
			Value: o.PUE, Threshold: d.cfg.PUELimit, TimeSec: tSec,
		})
	}
	return alarms
}

// CheckThrottle estimates the device temperature of a component drawing
// powerW cooled by coolant at coolantC with per-device flow flowM3s
// (≤0 uses the design allocation) and flags throttle risk.
func (d *Detector) CheckThrottle(subject string, powerW, coolantC, flowM3s, tSec float64) (Alarm, bool) {
	if flowM3s <= 0 {
		flowM3s = d.cfg.PlateFlowM3s
	}
	tDev := d.cfg.Plate.DeviceTemp(powerW, coolantC, flowM3s)
	warn := d.cfg.ThrottleLimitC - d.cfg.ThrottleMarginC
	if tDev >= warn {
		return Alarm{
			Kind: KindThrottleRisk, Subject: subject,
			Value: tDev, Threshold: warn, TimeSec: tSec,
		}, true
	}
	return Alarm{}, false
}

func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return 0.5 * (sorted[mid-1] + sorted[mid])
}
