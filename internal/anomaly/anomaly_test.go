package anomaly

import (
	"strings"
	"testing"

	"exadigit/internal/cooling"
)

func typicalInputs() cooling.Inputs {
	heat := make([]float64, 25)
	for i := range heat {
		heat[i] = 16e6 / 25
	}
	return cooling.Inputs{CDUHeatW: heat, WetBulbC: 20, ITPowerW: 16.9e6}
}

func settledPlant(t *testing.T) *cooling.Plant {
	t.Helper()
	p, err := cooling.New(cooling.Frontier())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SettleToSteadyState(typicalInputs(), 2*3600); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestHealthyPlantRaisesNoAlarms(t *testing.T) {
	p := settledPlant(t)
	d := NewDetector(DefaultConfig())
	for i := 0; i < 20; i++ {
		if err := p.Step(15, typicalInputs()); err != nil {
			t.Fatal(err)
		}
		if alarms := d.CheckCooling(p.Snapshot(), p.Time()); len(alarms) != 0 {
			t.Fatalf("healthy plant alarmed: %v", alarms)
		}
	}
}

// TestBlockageDetection is the §III-A failure-injection scenario: fouling
// one CDU's blade loops must trip the flow-deviation rule on exactly that
// CDU.
func TestBlockageDetection(t *testing.T) {
	p := settledPlant(t)
	// 2.5× loop resistance ≈ heavy biological growth; flow drops ≈37 %
	// even after the pump PID pushes back.
	if err := p.InjectSecondaryFouling(7, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := p.Step(600, typicalInputs()); err != nil {
		t.Fatal(err)
	}
	d := NewDetector(DefaultConfig())
	alarms := d.CheckCooling(p.Snapshot(), p.Time())
	var flowAlarms []Alarm
	for _, a := range alarms {
		if a.Kind == KindFlowLow {
			flowAlarms = append(flowAlarms, a)
		}
	}
	if len(flowAlarms) != 1 {
		t.Fatalf("want exactly 1 flow alarm, got %v", alarms)
	}
	if flowAlarms[0].Subject != "cdu[8]" { // CDU index 7 → 1-based name
		t.Errorf("alarm on %s, want cdu[8]", flowAlarms[0].Subject)
	}
	if !strings.Contains(flowAlarms[0].String(), "secondary-flow-low") {
		t.Errorf("alarm string: %s", flowAlarms[0])
	}
}

func TestFoulingValidation(t *testing.T) {
	p := settledPlant(t)
	if err := p.InjectSecondaryFouling(99, 2); err == nil {
		t.Error("out-of-range CDU should fail")
	}
	if err := p.InjectSecondaryFouling(0, 0.5); err == nil {
		t.Error("factor < 1 should fail")
	}
}

// TestBlockageThermalConsequences: a fouled CDU under heavy load holds
// its supply setpoint (the control valve compensates) but runs a much
// hotter secondary return, and its blades — starved of flow — cross the
// throttle early-warning line. This is the full §III-A diagnostic chain.
func TestBlockageThermalConsequences(t *testing.T) {
	p := settledPlant(t)
	cleanFlow := p.Snapshot().CDUs[3].SecondaryFlowM3s
	if err := p.InjectSecondaryFouling(3, 6); err != nil {
		t.Fatal(err)
	}
	in := typicalInputs()
	in.CDUHeatW[3] = 1.3e6 // hot CDU with blocked loops
	if err := p.Step(3600, in); err != nil {
		t.Fatal(err)
	}
	o := p.Snapshot()
	blocked := o.CDUs[3]
	peer := o.CDUs[10]
	// The control valve keeps the supply near setpoint...
	if blocked.SecSupplyTempC > 36 {
		t.Errorf("supply temp = %v, valve should mostly compensate", blocked.SecSupplyTempC)
	}
	// ...but the return runs far hotter than the peers'.
	if blocked.SecReturnTempC < peer.SecReturnTempC+8 {
		t.Errorf("blocked return %v °C should far exceed peer %v °C",
			blocked.SecReturnTempC, peer.SecReturnTempC)
	}
	// Blade-level: per-device flow scales with the CDU flow ratio; the
	// starved blades trip the throttle early warning at full GPU power.
	d := NewDetector(DefaultConfig())
	flowRatio := blocked.SecondaryFlowM3s / cleanFlow
	if flowRatio > 0.6 {
		t.Fatalf("fouling barely reduced flow: ratio %v", flowRatio)
	}
	// Blockage concentrates in specific blades (§III-A: "blockage to
	// specific nodes"); the worst blade sees a small fraction of the
	// already-reduced CDU flow.
	perDevice := d.cfg.PlateFlowM3s * flowRatio * 0.12
	a, hit := d.CheckThrottle("cdu[4]/blade[12]/gpu[2]", 560, blocked.SecSupplyTempC, perDevice, p.Time())
	if !hit {
		t.Errorf("starved blade should be at throttle risk (flow ratio %v)", flowRatio)
	} else if a.Value <= d.cfg.ThrottleLimitC-d.cfg.ThrottleMarginC {
		t.Errorf("alarm value %v below warning line", a.Value)
	}
}

func TestSupplyTempRuleRequiresPersistence(t *testing.T) {
	d := NewDetector(DefaultConfig())
	o := &cooling.Outputs{CDUs: make([]cooling.CDUOutputs, 2)}
	for i := range o.CDUs {
		o.CDUs[i].SecondaryFlowM3s = 0.029
		o.CDUs[i].SecSupplyTempC = 32
	}
	// A short spike (< hold steps) must not alarm.
	o.CDUs[0].SecSupplyTempC = 36
	for i := 0; i < 3; i++ {
		for _, a := range d.CheckCooling(o, float64(i*15)) {
			if a.Kind == KindSupplyTempHigh {
				t.Fatal("alarmed before hold elapsed")
			}
		}
	}
	o.CDUs[0].SecSupplyTempC = 32 // recovers: counter resets
	d.CheckCooling(o, 60)
	o.CDUs[0].SecSupplyTempC = 36
	count := 0
	for i := 0; i < 12; i++ {
		for _, a := range d.CheckCooling(o, float64(100+i*15)) {
			if a.Kind == KindSupplyTempHigh {
				count++
			}
		}
	}
	if count != 1 {
		t.Errorf("sustained excursion should alarm exactly once, got %d", count)
	}
}

func TestPUERule(t *testing.T) {
	d := NewDetector(DefaultConfig())
	o := &cooling.Outputs{CDUs: make([]cooling.CDUOutputs, 1), PUE: 1.15}
	o.CDUs[0].SecondaryFlowM3s = 0.029
	o.CDUs[0].SecSupplyTempC = 32
	found := false
	for _, a := range d.CheckCooling(o, 0) {
		if a.Kind == KindPUEHigh {
			found = true
		}
	}
	if !found {
		t.Error("PUE 1.15 should alarm at limit 1.10")
	}
}

func TestThrottleDetection(t *testing.T) {
	d := NewDetector(DefaultConfig())
	// Nominal GPU: 560 W at 32 °C coolant, design flow → no risk.
	if _, hit := d.CheckThrottle("gpu[0]", 560, 32, 0, 0); hit {
		t.Error("nominal GPU should not be at risk")
	}
	// Same GPU behind a badly blocked plate (~1/17 flow): device temp
	// blows past the early-warning line.
	a, hit := d.CheckThrottle("gpu[0]", 560, 32, 0.07e-5, 100)
	if !hit {
		t.Fatal("blocked plate should trip throttle risk")
	}
	if a.Kind != KindThrottleRisk || a.Value < 90 {
		t.Errorf("alarm = %+v", a)
	}
	// Hot coolant alone can also trip it.
	if _, hit := d.CheckThrottle("gpu[1]", 560, 78, 0, 0); !hit {
		t.Error("hot coolant should trip the early warning")
	}
}

func TestMedianHelpers(t *testing.T) {
	if median(nil) != 0 {
		t.Error("empty median")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
}
