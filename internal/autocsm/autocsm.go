// Package autocsm implements the Automated Cooling System Model generator
// (§V): from a high-level JSON cooling specification (loop counts, design
// heat, design flows and temperatures) it synthesizes a complete, sized
// cooling.Config — pump curves from design head/flow, heat-exchanger UA
// values by inverting the counterflow ε-NTU relation at the design point,
// and tower effectiveness from the design approach. It can also emit the
// generated model as Modelica source text, mirroring the paper's AutoCSM
// which "outputs Modelica code" compiled into an FMU.
package autocsm

import (
	"fmt"
	"io"
	"math"

	"exadigit/internal/config"
	"exadigit/internal/cooling"
	"exadigit/internal/hydro"
	"exadigit/internal/thermal"
	"exadigit/internal/units"
)

// Design constants shared by the sizing rules. These encode the same
// engineering practice used for the hand-built Frontier model.
const (
	secondaryDTc     = 5.3   // design secondary temperature rise, °C
	secDPSetPa       = 180e3 // CDU loop differential-pressure setpoint
	htwHeaderDPPa    = 140e3 // primary header dp at design
	pumpShutoffRatio = 1.5   // shutoff head / design head
	pumpEta          = 0.78
)

// Compile resolves a config.CoolingSpec to a full plant configuration —
// the single entry point the twin's cooling pipeline routes every spec
// through. A preset name resolves to its hand-calibrated plant verbatim
// (the default Frontier spec stays bit-identical to the paper-validated
// model); otherwise the plant is synthesized from the design quantities
// by Generate.
func Compile(spec config.CoolingSpec) (cooling.Config, error) {
	if spec.Preset != "" {
		cfg, ok := cooling.Preset(spec.Preset)
		if !ok {
			return cooling.Config{}, fmt.Errorf("autocsm: %w", &config.FieldError{
				Field:      "preset",
				Constraint: fmt.Sprintf("unknown cooling preset %q", spec.Preset),
				Suggestion: fmt.Sprintf("use one of %v, or clear preset and supply design quantities", cooling.PresetNames()),
			})
		}
		applySolver(&cfg, spec)
		applySetpoints(&cfg, spec)
		return cfg, nil
	}
	cfg, err := Generate(spec)
	if err != nil {
		return cfg, err
	}
	applySolver(&cfg, spec)
	applySetpoints(&cfg, spec)
	return cfg, nil
}

// applySolver overlays the spec's solver selection onto a resolved plant
// configuration. Empty fields leave the plant untouched, so a preset
// without a solver override stays bit-identical to its hand-calibrated
// Config.
func applySolver(cfg *cooling.Config, spec config.CoolingSpec) {
	if spec.Solver != "" {
		cfg.Solver = spec.Solver
	}
	if spec.SolverRelTol > 0 {
		cfg.RelTol = spec.SolverRelTol
	}
	if spec.SolverAbsTol > 0 {
		cfg.AbsTol = spec.SolverAbsTol
	}
}

// applySetpoints overlays the spec's control-setpoint overrides — the
// tower leaving-water target and the primary header ΔP target, the L5
// co-design knobs — onto a resolved plant. Zero fields leave the plant
// untouched, so presets without overrides stay bit-identical to their
// hand-calibrated Config.
func applySetpoints(cfg *cooling.Config, spec config.CoolingSpec) {
	if spec.CTSupplySetC > 0 {
		cfg.CTSupplySetC = spec.CTSupplySetC
	}
	if spec.HTWHeaderSetPa > 0 {
		cfg.HTWHeaderSetPa = spec.HTWHeaderSetPa
	}
}

// Generate sizes a full cooling plant from the spec.
func Generate(spec config.CoolingSpec) (cooling.Config, error) {
	var cfg cooling.Config
	if spec.NumCDUs <= 0 || spec.DesignHeatMW <= 0 {
		return cfg, fmt.Errorf("autocsm: num_cdus and design_heat_mw must be positive")
	}
	if spec.SecSupplyC <= spec.CTSupplyC {
		return cfg, fmt.Errorf("autocsm: secondary supply %v must exceed CT supply %v",
			spec.SecSupplyC, spec.CTSupplyC)
	}
	if spec.CTSupplyC <= spec.DesignWetBulbC {
		return cfg, fmt.Errorf("autocsm: CT supply %v must exceed design wet bulb %v",
			spec.CTSupplyC, spec.DesignWetBulbC)
	}
	if spec.PrimaryFlowGPM <= 0 || spec.TowerFlowGPM <= 0 {
		return cfg, fmt.Errorf("autocsm: design flows must be positive")
	}
	if spec.NumHTWPs <= 0 || spec.NumCTWPs <= 0 || spec.NumEHX <= 0 ||
		spec.NumTowers <= 0 || spec.CellsPerTower <= 0 {
		return cfg, fmt.Errorf("autocsm: equipment counts must be positive")
	}

	heatW := spec.DesignHeatMW * 1e6
	heatPerCDU := heatW / float64(spec.NumCDUs)
	qPrimTotal := spec.PrimaryFlowGPM * units.GPMToM3s
	qCTWTotal := spec.TowerFlowGPM * units.GPMToM3s
	rho := units.WaterDensity(spec.SecSupplyC)
	cp := units.WaterSpecificHeat(spec.SecSupplyC)

	// Secondary loop: flow carries the per-CDU heat across secondaryDTc.
	qSec := units.FlowForHeat(heatPerCDU, secondaryDTc, spec.SecSupplyC)
	secLoopK := secDPSetPa / (qSec * qSec)
	secHead := secDPSetPa / 0.83 // design point ≈83 % of setpoint curve
	cfg.SecPump = hydro.PumpCurve{
		H0:     secHead * pumpShutoffRatio,
		H2:     secHead * (pumpShutoffRatio - 1) / (qSec * qSec),
		QRated: qSec, Eta: 0.75,
		PIdle: 3000,
	}
	cfg.SecLoopK = secLoopK
	cfg.SecDPSetPa = secDPSetPa
	cfg.SecVolumeKg = math.Max(200, 600*heatPerCDU/640e3)

	// Temperatures at the design point.
	mdotPrimPerCDU := rho * qPrimTotal / float64(spec.NumCDUs)
	mdotSec := rho * qSec
	dtPrim := heatW / (rho * qPrimTotal * cp)
	secReturnC := spec.SecSupplyC + secondaryDTc
	// HTW supply sits one EHX approach above the CT supply.
	htwSupplyC := spec.CTSupplyC + 3.0
	htwReturnC := htwSupplyC + dtPrim
	if htwReturnC >= secReturnC {
		return cfg, fmt.Errorf("autocsm: %w", &config.FieldError{
			Field: "primary_flow_gpm",
			Constraint: fmt.Sprintf("infeasible sizing: HTW return %.1f °C would not stay below the secondary return %.1f °C",
				htwReturnC, secReturnC),
			Suggestion: "increase primary_flow_gpm (or reduce design_heat_mw) so the primary loop carries the heat at a lower temperature rise",
		})
	}

	// CDU HEX: invert ε-NTU at (secondary hot side, primary cold side).
	ua, err := sizeCounterflowUA(heatPerCDU,
		secReturnC, mdotSec,
		htwSupplyC, mdotPrimPerCDU, cp)
	if err != nil {
		return cfg, fmt.Errorf("autocsm: %w", &config.FieldError{
			Field:      "primary_flow_gpm",
			Constraint: fmt.Sprintf("CDU heat exchanger cannot be sized: %v", err),
			Suggestion: "increase primary_flow_gpm or widen the secondary-to-CT temperature gap",
		})
	}
	cfg.CDUHex = thermal.HeatExchanger{UANominal: ua, MdotHotN: mdotSec, MdotColdN: mdotPrimPerCDU}

	// Primary valve: oversized so ~75 % open passes the design flow.
	qBranch := qPrimTotal / float64(spec.NumCDUs)
	cfg.PrimBranchQ = qBranch
	cfg.PrimValveDPPa = 19e3
	cfg.PrimValveRange = 40

	// HTWP bank: per-pump design flow at header + piping drop.
	qPerHTWP := qPrimTotal / float64(spec.NumHTWPs)
	htwPipeK := 0.35 * htwHeaderDPPa / (qPrimTotal * qPrimTotal)
	htwHead := htwHeaderDPPa + htwPipeK*qPrimTotal*qPrimTotal
	cfg.HTWPump = hydro.NewPumpCurve(htwHead*pumpShutoffRatio, qPerHTWP, htwHead, pumpEta)
	cfg.HTWHeaderSetPa = htwHeaderDPPa
	cfg.HTWLoopK = htwPipeK
	cfg.HTWVolumeKg = math.Max(5000, 25000*spec.DesignHeatMW/16)

	// EHX bank: HTW return (hot) against CTW supply (cold).
	mdotHTWPerEHX := rho * qPrimTotal / float64(spec.NumEHX)
	mdotCTWPerEHX := rho * qCTWTotal / float64(spec.NumEHX)
	uaEHX, err := sizeCounterflowUA(heatW/float64(spec.NumEHX),
		htwReturnC, mdotHTWPerEHX,
		spec.CTSupplyC, mdotCTWPerEHX, cp)
	if err != nil {
		return cfg, fmt.Errorf("autocsm: %w", &config.FieldError{
			Field:      "tower_flow_gpm",
			Constraint: fmt.Sprintf("intermediate heat exchanger cannot be sized: %v", err),
			Suggestion: "increase tower_flow_gpm or lower ct_supply_c to widen the EHX temperature gap",
		})
	}
	cfg.EHX = thermal.HeatExchanger{UANominal: uaEHX, MdotHotN: mdotHTWPerEHX, MdotColdN: mdotCTWPerEHX}

	// CTWP bank: Frontier-like 260 kPa design head.
	qPerCTWP := qCTWTotal / float64(spec.NumCTWPs)
	const ctwHead = 260e3
	cfg.CTWPump = hydro.NewPumpCurve(ctwHead*pumpShutoffRatio, qPerCTWP, ctwHead, pumpEta)
	cfg.CTWLoopK = 0.78 * ctwHead / (qCTWTotal * qCTWTotal)
	cfg.CTWHeaderSetPa = 170e3 + 0.85*ctwHead
	cfg.CTWVolumeKg = math.Max(10000, 60000*spec.DesignHeatMW/16)

	// Tower cells: effectiveness from the design approach at 90 % fan.
	cells := spec.NumTowers * spec.CellsPerTower
	mdotPerCell := rho * qCTWTotal / float64(cells)
	dtCTW := heatW / (rho * qCTWTotal * cp)
	ctReturnC := spec.CTSupplyC + dtCTW
	epsDesign := dtCTW / (ctReturnC - spec.DesignWetBulbC)
	if epsDesign >= 0.95 {
		return cfg, fmt.Errorf("autocsm: %w", &config.FieldError{
			Field:      "tower_flow_gpm",
			Constraint: fmt.Sprintf("required tower effectiveness %.2f is infeasible (≥ 0.95)", epsDesign),
			Suggestion: "raise tower_flow_gpm or ct_supply_c so each cell rejects heat across a wider approach",
		})
	}
	cfg.Tower = thermal.CoolingTower{
		EpsNominal:  math.Min(0.95, epsDesign/math.Pow(0.9, 0.4)*1.05),
		MdotNominal: mdotPerCell,
		FanExp:      0.4,
		LoadExp:     0.35,
		FanPowerMax: 30e3 * (mdotPerCell / 30),
	}
	cfg.CTSupplySetC = spec.CTSupplyC
	cfg.StaticPressPa = 170e3

	cfg.NumCDUs = spec.NumCDUs
	cfg.NumTowers = spec.NumTowers
	cfg.CellsPerTower = spec.CellsPerTower
	cfg.NumFanChannels = spec.NumFanChannels
	if cfg.NumFanChannels <= 0 || cfg.NumFanChannels > cells {
		cfg.NumFanChannels = cells
	}
	cfg.NumHTWPs = spec.NumHTWPs
	cfg.NumCTWPs = spec.NumCTWPs
	cfg.NumEHX = spec.NumEHX
	cfg.SecSupplySetC = spec.SecSupplyC

	cfg.StageUpSpeed = 0.92
	cfg.StageDownSpeed = 0.42
	cfg.StageUpDwellS = 120
	cfg.StageDownDwellS = 600
	cfg.CTHTWSGradient = 0.002
	cfg.LoopDelayS = 120
	cfg.ControlDtS = 1

	return cfg, cfg.Validate()
}

// sizeCounterflowUA returns the UA (W/°C) a counterflow exchanger needs to
// move dutyW from a hot stream (tHotIn, mdotHot) to a cold stream
// (tColdIn, mdotCold).
func sizeCounterflowUA(dutyW, tHotIn, mdotHot, tColdIn, mdotCold, cp float64) (float64, error) {
	if tHotIn <= tColdIn {
		return 0, fmt.Errorf("hot inlet %.2f °C not above cold inlet %.2f °C", tHotIn, tColdIn)
	}
	cHot := mdotHot * cp
	cCold := mdotCold * cp
	cMin, cMax := cHot, cCold
	if cCold < cHot {
		cMin, cMax = cCold, cHot
	}
	eps := dutyW / (cMin * (tHotIn - tColdIn))
	if eps >= 0.98 {
		return 0, fmt.Errorf("required effectiveness %.3f infeasible — increase flows or temperature gap", eps)
	}
	if eps <= 0 {
		return 0, fmt.Errorf("non-positive duty")
	}
	ntu, err := ntuFromEffectiveness(eps, cMin/cMax)
	if err != nil {
		return 0, err
	}
	return ntu * cMin, nil
}

// ntuFromEffectiveness inverts the counterflow ε-NTU relation.
func ntuFromEffectiveness(eps, cr float64) (float64, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("effectiveness %v out of (0,1)", eps)
	}
	if math.Abs(cr-1) < 1e-9 {
		return eps / (1 - eps), nil
	}
	// From ε = (1−E)/(1−cr·E) with E = exp(−NTU(1−cr)):
	// E = (1−ε)/(1−ε·cr), NTU = ln(1/E)/(1−cr).
	x := (1 - eps*cr) / (1 - eps)
	if x <= 0 {
		return 0, fmt.Errorf("no NTU solution for eps=%v cr=%v", eps, cr)
	}
	return math.Log(x) / (1 - cr), nil
}

// EmitModelica writes the generated plant as Modelica source text, the
// output format of the paper's AutoCSM. The emitted model is documentary
// (this repository solves the plant natively); it demonstrates that the
// sizing pipeline carries everything a Modelica backend would need.
func EmitModelica(w io.Writer, name string, cfg cooling.Config) error {
	p := func(format string, args ...any) {
		fmt.Fprintf(w, format+"\n", args...)
	}
	p("// Generated by ExaDigiT-Go AutoCSM — do not edit.")
	p("model %s \"Auto-generated cooling system model\"", name)
	p("  import Modelica.Units.SI;")
	p("  parameter Integer nCDUs = %d;", cfg.NumCDUs)
	p("  parameter Integer nTowers = %d;", cfg.NumTowers)
	p("  parameter Integer nCellsPerTower = %d;", cfg.CellsPerTower)
	p("  parameter Integer nHTWPs = %d;", cfg.NumHTWPs)
	p("  parameter Integer nCTWPs = %d;", cfg.NumCTWPs)
	p("  parameter Integer nEHX = %d;", cfg.NumEHX)
	p("  parameter SI.Temperature TSecSupplySet = %.2f \"degC\";", cfg.SecSupplySetC)
	p("  parameter SI.Temperature TCTSupplySet = %.2f \"degC\";", cfg.CTSupplySetC)
	p("  parameter SI.PressureDifference dpSecSet = %.0f;", cfg.SecDPSetPa)
	p("  parameter SI.PressureDifference dpHTWHeaderSet = %.0f;", cfg.HTWHeaderSetPa)
	p("  Modelica.Blocks.Interfaces.RealInput Q_cdu[nCDUs] \"CDU heat loads (W)\";")
	p("  Modelica.Blocks.Interfaces.RealInput T_wetbulb \"Outdoor wet bulb (degC)\";")
	p("  // Secondary (CDU) loops")
	p("  ExaDigiT.Components.PumpCurve secPump(H0=%.0f, H2=%.3g, QRated=%.4f, eta=%.2f);",
		cfg.SecPump.H0, cfg.SecPump.H2, cfg.SecPump.QRated, cfg.SecPump.Eta)
	p("  ExaDigiT.Components.Resistance secLoop(K=%.4g);", cfg.SecLoopK)
	p("  ExaDigiT.Components.CounterflowHX cduHex(UA=%.4g, mHotN=%.2f, mColdN=%.2f);",
		cfg.CDUHex.UANominal, cfg.CDUHex.MdotHotN, cfg.CDUHex.MdotColdN)
	p("  // Primary (HTW) loop")
	p("  ExaDigiT.Components.PumpCurve htwPump(H0=%.0f, H2=%.3g, QRated=%.4f, eta=%.2f);",
		cfg.HTWPump.H0, cfg.HTWPump.H2, cfg.HTWPump.QRated, cfg.HTWPump.Eta)
	p("  ExaDigiT.Components.CounterflowHX ehx(UA=%.4g, mHotN=%.2f, mColdN=%.2f);",
		cfg.EHX.UANominal, cfg.EHX.MdotHotN, cfg.EHX.MdotColdN)
	p("  // Cooling-tower (CTW) loop")
	p("  ExaDigiT.Components.PumpCurve ctwPump(H0=%.0f, H2=%.3g, QRated=%.4f, eta=%.2f);",
		cfg.CTWPump.H0, cfg.CTWPump.H2, cfg.CTWPump.QRated, cfg.CTWPump.Eta)
	p("  ExaDigiT.Components.CoolingTowerCell cell(epsNominal=%.3f, mdotNominal=%.2f, fanPowerMax=%.0f);",
		cfg.Tower.EpsNominal, cfg.Tower.MdotNominal, cfg.Tower.FanPowerMax)
	p("  // Control system")
	p("  ExaDigiT.Controls.PID cduPumpPID(setpoint=dpSecSet);")
	p("  ExaDigiT.Controls.PID cduValvePID(setpoint=TSecSupplySet, directAction=true);")
	p("  ExaDigiT.Controls.PID htwpPID(setpoint=dpHTWHeaderSet);")
	p("  ExaDigiT.Controls.PID fanPID(setpoint=TCTSupplySet, directAction=true);")
	p("  ExaDigiT.Controls.Stager htwpStager(min=2, max=nHTWPs, up=%.2f, down=%.2f);",
		cfg.StageUpSpeed, cfg.StageDownSpeed)
	p("  ExaDigiT.Controls.Stager cellStager(min=4, max=nTowers*nCellsPerTower);")
	p("equation")
	p("  // Acausal connections omitted: generated for documentation parity")
	p("  // with the paper's AutoCSM; this repository solves the identical")
	p("  // component network natively in Go.")
	p("end %s;", name)
	return nil
}
