package autocsm

import (
	"math"
	"strings"
	"testing"

	"exadigit/internal/config"
	"exadigit/internal/cooling"
	"exadigit/internal/thermal"
	"exadigit/internal/units"
)

func TestNTUInversionRoundTrip(t *testing.T) {
	for _, cr := range []float64{0, 0.3, 0.6, 0.9, 1.0} {
		for _, ntu := range []float64{0.5, 1, 2, 4} {
			eps := thermal.Effectiveness(ntu, cr)
			back, err := ntuFromEffectiveness(eps, cr)
			if err != nil {
				t.Fatalf("cr=%v ntu=%v: %v", cr, ntu, err)
			}
			if math.Abs(back-ntu) > 1e-9 {
				t.Errorf("cr=%v: NTU %v → ε %v → %v", cr, ntu, eps, back)
			}
		}
	}
	if _, err := ntuFromEffectiveness(1.2, 0.5); err == nil {
		t.Error("ε > 1 should fail")
	}
	if _, err := ntuFromEffectiveness(0, 0.5); err == nil {
		t.Error("ε = 0 should fail")
	}
}

func TestGenerateFrontierSpecProducesWorkingPlant(t *testing.T) {
	cfg, err := Generate(config.Frontier().Cooling)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	plant, err := cooling.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Run the generated plant at its design heat load; it must settle
	// with the energy balanced, just like the hand-built model.
	heat := make([]float64, cfg.NumCDUs)
	for i := range heat {
		heat[i] = 16e6 / float64(cfg.NumCDUs)
	}
	in := cooling.Inputs{CDUHeatW: heat, WetBulbC: 20, ITPowerW: 16.9e6}
	if err := plant.SettleToSteadyState(in, 4*3600); err != nil {
		t.Fatal(err)
	}
	rej := plant.TowerRejectionW()
	if math.Abs(rej-16e6)/16e6 > 0.08 {
		t.Errorf("generated plant rejects %v MW of 16 MW", rej/1e6)
	}
	o := plant.Snapshot()
	if math.Abs(o.CDUs[0].SecSupplyTempC-32) > 3 {
		t.Errorf("secondary supply = %v", o.CDUs[0].SecSupplyTempC)
	}
	pue := plant.PUE()
	if pue < 1.01 || pue > 1.12 {
		t.Errorf("PUE = %v", pue)
	}
}

func TestGenerateSetonixSpec(t *testing.T) {
	spec := config.SetonixLike().Cooling
	cfg, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumCDUs != 7 || cfg.NumTowers != 2 {
		t.Errorf("counts: %d CDUs, %d towers", cfg.NumCDUs, cfg.NumTowers)
	}
	plant, err := cooling.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	heat := make([]float64, cfg.NumCDUs)
	for i := range heat {
		heat[i] = 3e6 / float64(cfg.NumCDUs)
	}
	in := cooling.Inputs{CDUHeatW: heat, WetBulbC: 21, ITPowerW: 3.2e6}
	if err := plant.SettleToSteadyState(in, 4*3600); err != nil {
		t.Fatal(err)
	}
	if rej := plant.TowerRejectionW(); math.Abs(rej-3e6)/3e6 > 0.10 {
		t.Errorf("setonix-like plant rejects %v MW of 3 MW", rej/1e6)
	}
}

func TestGeneratedFlowsNearSpec(t *testing.T) {
	spec := config.Frontier().Cooling
	cfg, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	plant, err := cooling.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	heat := make([]float64, cfg.NumCDUs)
	for i := range heat {
		heat[i] = spec.DesignHeatMW * 1e6 / float64(cfg.NumCDUs)
	}
	in := cooling.Inputs{CDUHeatW: heat, WetBulbC: spec.DesignWetBulbC, ITPowerW: spec.DesignHeatMW * 1e6 / 0.945}
	if err := plant.SettleToSteadyState(in, 4*3600); err != nil {
		t.Fatal(err)
	}
	o := plant.Snapshot()
	htwGPM := o.HTWFlowM3s * units.M3sToGPM
	if htwGPM < spec.PrimaryFlowGPM*0.5 || htwGPM > spec.PrimaryFlowGPM*1.6 {
		t.Errorf("primary flow %v gpm vs spec %v", htwGPM, spec.PrimaryFlowGPM)
	}
	ctwGPM := o.CTWFlowM3s * units.M3sToGPM
	if ctwGPM < spec.TowerFlowGPM*0.5 || ctwGPM > spec.TowerFlowGPM*1.6 {
		t.Errorf("tower flow %v gpm vs spec %v", ctwGPM, spec.TowerFlowGPM)
	}
}

func TestGenerateRejectsInfeasibleSpecs(t *testing.T) {
	base := config.Frontier().Cooling
	cases := map[string]func(*config.CoolingSpec){
		"zero cdus":       func(s *config.CoolingSpec) { s.NumCDUs = 0 },
		"zero heat":       func(s *config.CoolingSpec) { s.DesignHeatMW = 0 },
		"temp order":      func(s *config.CoolingSpec) { s.SecSupplyC = s.CTSupplyC - 1 },
		"wetbulb order":   func(s *config.CoolingSpec) { s.CTSupplyC = s.DesignWetBulbC },
		"zero flow":       func(s *config.CoolingSpec) { s.PrimaryFlowGPM = 0 },
		"zero pumps":      func(s *config.CoolingSpec) { s.NumHTWPs = 0 },
		"starved primary": func(s *config.CoolingSpec) { s.PrimaryFlowGPM = 800 },
		"starved towers":  func(s *config.CoolingSpec) { s.TowerFlowGPM = 1500 },
	}
	for name, mutate := range cases {
		spec := base
		mutate(&spec)
		if _, err := Generate(spec); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestEmitModelica(t *testing.T) {
	cfg, err := Generate(config.Frontier().Cooling)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := EmitModelica(&sb, "FrontierCooling", cfg); err != nil {
		t.Fatal(err)
	}
	src := sb.String()
	for _, want := range []string{
		"model FrontierCooling",
		"end FrontierCooling;",
		"parameter Integer nCDUs = 25",
		"CounterflowHX cduHex",
		"CoolingTowerCell cell",
		"Controls.PID cduValvePID",
		"RealInput Q_cdu[nCDUs]",
		"RealInput T_wetbulb",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("emitted Modelica missing %q", want)
		}
	}
}
