package cluster

// Multi-node chaos suite (`make chaos`): kill a worker mid-sweep and
// prove the fabric's two load-bearing claims — the sweep still finishes
// with exact counts, and no (spec, scenario) key is computed twice
// anywhere in the cluster. Duplicate-compute is asserted the only way
// that cannot lie: the sum of Put counters across every node's store
// view (each key persists exactly once) plus config.ModelBuilds deltas
// (a resubmit after the chaos compiles and simulates nothing).

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/obs"
	"exadigit/internal/service"
	"exadigit/internal/store"
)

// slowInjector makes every scenario attempt take at least d of wall
// time (respecting the attempt deadline), so a mid-sweep kill lands
// while work is genuinely in flight.
func slowInjector(d time.Duration) *service.FaultInjector {
	return &service.FaultInjector{BeforeRun: func(ctx context.Context, f service.Fault) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}}
}

// counterSum adds up every series of one counter family.
func counterSum(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var sum float64
	for _, s := range exposition(t, reg, name) {
		sum += s.Value
	}
	return sum
}

func exposition(t *testing.T, reg *obs.Registry, name string) []obs.ExpoSeries {
	t.Helper()
	var sb strings.Builder
	if err := reg.Write(&sb); err != nil {
		t.Fatal(err)
	}
	expo, err := obs.ParseExposition([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	fam, ok := expo.Families[name]
	if !ok {
		return nil
	}
	return fam.Series
}

// TestChaosWorkerDeathMidSweepNoDuplicateCompute is the cluster kill
// test: three workers share one store directory, a coordinator fans a
// sweep across them, and one worker is killed mid-sweep (connections
// severed, in-flight work cancelled, admission closed). The sweep must
// finish with every scenario accounted for, the dead worker's shards
// must have been re-dispatched, and — the exactly-once claim — the sum
// of store Puts across all nodes must equal the scenario count: every
// key computed and persisted exactly once despite the re-dispatch.
func TestChaosWorkerDeathMidSweepNoDuplicateCompute(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node chaos test")
	}
	const n = 36
	dir := t.TempDir()

	var (
		workers []*service.Service
		stores  []*store.Store
		urls    []string
		severs  []func()
	)
	for i := 0; i < 3; i++ {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		wsvc, srv := newWorker(t, service.Options{
			Workers:        2,
			Store:          st,
			LeaseTTL:       2 * time.Second,
			MaxAttempts:    3,
			RetryBaseDelay: 10 * time.Millisecond,
			RetryMaxDelay:  50 * time.Millisecond,
		})
		wsvc.SetFaultInjector(slowInjector(25 * time.Millisecond))
		workers = append(workers, wsvc)
		stores = append(stores, st)
		urls = append(urls, srv.URL)
		severs = append(severs, srv.CloseClientConnections)
	}

	cst, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	pool, err := New(Options{
		Workers:      urls,
		Registry:     reg,
		Store:        cst,
		ProbeAfter:   200 * time.Millisecond,
		StallTimeout: 30 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord := service.New(service.Options{
		Workers:        12,
		Runner:         pool,
		MaxAttempts:    8,
		RetryBaseDelay: 10 * time.Millisecond,
		RetryMaxDelay:  100 * time.Millisecond,
	})
	t.Cleanup(coord.CancelAll)

	scenarios := make([]core.Scenario, n)
	for i := range scenarios {
		scenarios[i] = synthScenario(int64(1000+i), 60)
	}
	sw, err := coord.Submit(config.Frontier(), scenarios, service.SweepOptions{Name: "chaos-kill"})
	if err != nil {
		t.Fatal(err)
	}

	// Let the sweep get properly under way, then kill worker 1: sever
	// its client connections (breaks in-flight submits and result
	// streams), cancel everything it is computing, and close admission
	// so re-probes keep failing.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := sw.Status()
		if st.Done+st.Cached >= 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never got under way: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	severs[1]()
	workers[1].CancelAll()
	workers[1].Close()
	t.Logf("killed worker 1 (%s) mid-sweep", urls[1])

	st := waitSweep(t, sw)
	if st.Failed != 0 || st.Cancelled != 0 || st.Done+st.Cached != n {
		t.Fatalf("sweep counts after worker death: %+v", st)
	}
	if got := counterSum(t, reg, "exadigit_cluster_redispatched_total"); got < 1 {
		t.Fatalf("worker died mid-sweep but redispatched=%v, want >= 1", got)
	}

	// Exactly-once compute: every one of the n distinct keys was
	// persisted exactly once somewhere in the cluster, and the
	// coordinator itself never wrote (workers own persistence).
	var puts uint64
	for i, s := range stores {
		m := s.Stats()
		t.Logf("worker %d store: puts=%d hits=%d lease_waits=%d lease_steals=%d",
			i, m.Puts, m.Hits, m.LeaseWaits, m.LeaseSteals)
		puts += m.Puts
	}
	if cm := cst.Stats(); cm.Puts != 0 {
		t.Fatalf("coordinator store wrote %d entries; runner mode must not Put", cm.Puts)
	}
	if puts != n {
		t.Fatalf("cluster-wide store puts = %d, want exactly %d (duplicate or lost compute)", puts, n)
	}

	// Resubmitting the identical sweep must touch nothing: every result
	// comes from the coordinator's memory cache — no model builds, no
	// dispatches, no store writes.
	builds0 := config.ModelBuilds()
	dispatched0 := counterSum(t, reg, "exadigit_cluster_dispatched_total")
	sw2, err := coord.Submit(config.Frontier(), scenarios, service.SweepOptions{Name: "chaos-kill-replay"})
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitSweep(t, sw2)
	if st2.Cached != n || st2.Failed != 0 {
		t.Fatalf("resubmit not fully cached: %+v", st2)
	}
	if d := config.ModelBuilds() - builds0; d != 0 {
		t.Fatalf("resubmit rebuilt %d power models, want 0", d)
	}
	if d := counterSum(t, reg, "exadigit_cluster_dispatched_total") - dispatched0; d != 0 {
		t.Fatalf("resubmit dispatched %v shards, want 0", d)
	}
	var puts2 uint64
	for _, s := range stores {
		puts2 += s.Stats().Puts
	}
	if puts2 != puts {
		t.Fatalf("resubmit grew store puts %d -> %d", puts, puts2)
	}
}

// TestChaosLeaseSingleFlightAcrossNodes pins the cross-node dedup
// primitive in isolation: two independent services (separate Store
// instances, one shared directory, no cluster in between) are handed
// the same scenario at the same moment. The store lease must elect one
// computer; the other waits and serves the holder's Put from disk —
// exactly one Put across both nodes.
func TestChaosLeaseSingleFlightAcrossNodes(t *testing.T) {
	dir := t.TempDir()
	mk := func() (*service.Service, *store.Store) {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		svc := service.New(service.Options{
			Workers:  1,
			Store:    st,
			LeaseTTL: 5 * time.Second,
		})
		svc.SetFaultInjector(slowInjector(300 * time.Millisecond))
		t.Cleanup(svc.CancelAll)
		return svc, st
	}
	a, ast := mk()
	b, bst := mk()

	// Pre-warm both services with distinct scenarios so the contested
	// submission below isn't skewed by first-compile latency.
	for i, svc := range []*service.Service{a, b} {
		sw, err := svc.Submit(config.Frontier(),
			[]core.Scenario{synthScenario(int64(50+i), 60)}, service.SweepOptions{})
		if err != nil {
			t.Fatal(err)
		}
		waitSweep(t, sw)
	}
	putsWarm := ast.Stats().Puts + bst.Stats().Puts

	contested := synthScenario(99, 60)
	start := make(chan struct{})
	var wg sync.WaitGroup
	sweeps := make([]*service.Sweep, 2)
	for i, svc := range []*service.Service{a, b} {
		wg.Add(1)
		go func(i int, svc *service.Service) {
			defer wg.Done()
			<-start
			sw, err := svc.Submit(config.Frontier(), []core.Scenario{contested}, service.SweepOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			sweeps[i] = sw
		}(i, svc)
	}
	close(start)
	wg.Wait()
	for _, sw := range sweeps {
		if sw == nil {
			t.Fatal("submit failed")
		}
		if st := waitSweep(t, sw); st.Done+st.Cached != 1 || st.Failed != 0 {
			t.Fatalf("contested scenario did not complete cleanly: %+v", st)
		}
	}

	am, bm := ast.Stats(), bst.Stats()
	if d := am.Puts + bm.Puts - putsWarm; d != 1 {
		t.Fatalf("contested key persisted %d times across nodes, want exactly 1 (a: %+v, b: %+v)",
			d, am, bm)
	}
	if am.LeaseWaits+bm.LeaseWaits == 0 {
		t.Fatalf("no node ever waited on the other's lease — single-flight never engaged (a: %+v, b: %+v)",
			am, bm)
	}
}

// TestChaosCoordinatorKillRestartResumesSweep closes the coordinator
// SPOF: a coordinator fanning a keyed 32-scenario sweep across two
// workers is killed mid-sweep (journal severed exactly as kill -9 would
// leave it, all dispatches cancelled) and a brand-new coordinator over
// the same store directory re-adopts the sweep from the durable journal
// and finishes it. Exactly-once is asserted the way that cannot lie:
// journal-terminal scenarios are restored without recompute, the sum of
// worker store Puts equals the scenario count, the coordinator never
// Puts, the resumed remainder rebuilds zero power models (the workers
// outlived the coordinator with their compiled specs warm), and a
// resubmission with the original idempotency key returns the original
// sweep id.
func TestChaosCoordinatorKillRestartResumesSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node chaos test")
	}
	const n = 32
	dir := t.TempDir()

	var (
		stores []*store.Store
		urls   []string
	)
	for i := 0; i < 2; i++ {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		wsvc, srv := newWorker(t, service.Options{
			Workers:        2,
			Store:          st,
			MaxAttempts:    3,
			RetryBaseDelay: 10 * time.Millisecond,
			RetryMaxDelay:  50 * time.Millisecond,
		})
		wsvc.SetFaultInjector(slowInjector(10 * time.Millisecond))
		stores = append(stores, st)
		urls = append(urls, srv.URL)
	}
	newCoordinator := func() (*service.Service, *store.Store, *obs.Registry) {
		cst, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		pool, err := New(Options{
			Workers:      urls,
			Registry:     reg,
			Store:        cst,
			ProbeAfter:   200 * time.Millisecond,
			StallTimeout: 30 * time.Second,
			Logf:         t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		coord := service.New(service.Options{
			Workers:        8,
			Store:          cst,
			Runner:         pool,
			MaxAttempts:    4,
			RetryBaseDelay: 10 * time.Millisecond,
			RetryMaxDelay:  100 * time.Millisecond,
		})
		t.Cleanup(coord.CancelAll)
		return coord, cst, reg
	}

	coord1, cst1, _ := newCoordinator()
	scenarios := make([]core.Scenario, n)
	for i := range scenarios {
		scenarios[i] = synthScenario(int64(3000+i), 60)
	}
	sw, err := coord1.Submit(config.Frontier(), scenarios, service.SweepOptions{
		Name: "kill-restart", Key: "coord-kill-key",
	})
	if err != nil {
		t.Fatal(err)
	}

	// Let the sweep get under way on both workers — at least 6 terminal
	// scenarios durably journaled and each worker warmed (its model
	// built, shards persisted) — then kill the coordinator: sever the
	// journal exactly as kill -9 would and cancel every dispatch.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if cst1.Stats().JournalAppends >= 6 &&
			stores[0].Stats().Puts >= 1 && stores[1].Stats().Puts >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never got under way: journal appends %d, worker puts %d/%d",
				cst1.Stats().JournalAppends, stores[0].Stats().Puts, stores[1].Stats().Puts)
		}
		time.Sleep(5 * time.Millisecond)
	}
	sw.DetachJournal()
	coord1.CancelAll()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	_ = sw.Wait(ctx)
	cancel()
	// Give the workers a beat to abort the cancelled shards (the cancel
	// fan-out is fire-and-forget HTTP) before the successor redispatches.
	time.Sleep(250 * time.Millisecond)
	t.Logf("killed coordinator with %d scenarios journaled", cst1.Stats().JournalAppends)

	builds0 := config.ModelBuilds()
	coord2, cst2, _ := newCoordinator()
	stats, err := coord2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Adopted != 1 || stats.Finished != 0 {
		t.Fatalf("recover stats %+v, want exactly 1 adopted sweep", stats)
	}
	if stats.Terminal < 6 || stats.Terminal+stats.Requeued != n {
		t.Fatalf("recover stats %+v, want terminal+requeued == %d with >= 6 terminal", stats, n)
	}
	got, ok := coord2.Sweep(sw.ID())
	if !ok {
		t.Fatalf("restarted coordinator does not serve sweep %s", sw.ID())
	}
	final := waitSweep(t, got)
	if !final.Recovered || final.Done+final.Cached != n || final.Failed != 0 || final.Cancelled != 0 {
		t.Fatalf("resumed sweep final status %+v", final)
	}

	// Exactly-once across the kill: every key persisted exactly once by
	// a worker, never by either coordinator, and the resumed remainder
	// rebuilt nothing (the workers' compiled specs stayed warm).
	var puts uint64
	for i, s := range stores {
		m := s.Stats()
		t.Logf("worker %d store: puts=%d hits=%d", i, m.Puts, m.Hits)
		puts += m.Puts
	}
	if puts != n {
		t.Fatalf("cluster-wide store puts = %d, want exactly %d (duplicate or lost compute)", puts, n)
	}
	if cst1.Stats().Puts != 0 || cst2.Stats().Puts != 0 {
		t.Fatalf("coordinator stores wrote %d/%d entries; runner mode must not Put",
			cst1.Stats().Puts, cst2.Stats().Puts)
	}
	if d := config.ModelBuilds() - builds0; d != 0 {
		t.Fatalf("resumed sweep rebuilt %d power models, want 0", d)
	}
	if rec := counterSum(t, coord2.Registry(), "exadigit_sweep_recovered_total"); rec != 1 {
		t.Fatalf("exadigit_sweep_recovered_total = %v, want 1", rec)
	}
	if rq := counterSum(t, coord2.Registry(), "exadigit_sweep_requeued_scenarios_total"); int(rq) != stats.Requeued {
		t.Fatalf("exadigit_sweep_requeued_scenarios_total = %v, want %d", rq, stats.Requeued)
	}

	// Same-key resubmission against the restarted coordinator returns
	// the original sweep, not a recompute.
	dup, existing, err := coord2.SubmitIdempotent(config.Frontier(), scenarios, service.SweepOptions{Key: "coord-kill-key"})
	if err != nil {
		t.Fatal(err)
	}
	if !existing || dup.ID() != sw.ID() {
		t.Fatalf("same-key resubmission: existing=%v id=%s, want %s", existing, dup.ID(), sw.ID())
	}
	if st := dup.Status(); !st.Recovered {
		t.Fatal("deduped sweep lost its recovered flag")
	}
}
