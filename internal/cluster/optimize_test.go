package cluster

import (
	"context"
	"testing"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/obs"
	"exadigit/internal/optimize"
	"exadigit/internal/service"
)

// TestCoordinatorStudy: an optimization study submitted to a coordinator
// service completes with every candidate evaluation dispatched across
// real remote workers — the optimizer's outer loop rides the same fabric
// as hand-submitted sweeps.
func TestCoordinatorStudy(t *testing.T) {
	_, srvA := newWorker(t, service.Options{})
	_, srvB := newWorker(t, service.Options{})
	reg := obs.NewRegistry()
	pool, err := New(Options{Workers: []string{srvA.URL, srvB.URL}, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	coord := service.New(service.Options{Workers: 8, Runner: pool})

	study := optimize.StudySpec{
		Knobs: []optimize.Knob{
			{Name: "scenario.tick_sec", Min: 15, Max: 45, Step: 15},
			{Name: "scenario.wetbulb_c", Min: 1, Max: 10, Step: 1},
		},
		Objectives:  []optimize.Objective{{Metric: "energy_mwh"}},
		Population:  8,
		Generations: 2,
		PromoteTopK: 2,
		Seed:        11,
	}
	st, err := coord.SubmitStudy(config.Frontier(), synthScenario(50, 900), study, service.StudyOptions{Name: "fabric-study"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	if err := st.Wait(ctx); err != nil {
		t.Fatalf("study did not finish: %v", err)
	}
	status := st.Status()
	if status.State != service.StudyDone {
		t.Fatalf("study state %s (%s)", status.State, status.Error)
	}
	res := st.Result()
	if res == nil || res.Best == nil || res.TwinEvals == 0 {
		t.Fatalf("study result: %+v", res)
	}
	var dispatched float64
	for _, url := range pool.Workers() {
		dispatched += counterValue(t, reg, "exadigit_cluster_dispatched_total", "worker", url)
	}
	if int(dispatched) == 0 {
		t.Fatal("no candidate evaluations were dispatched to workers")
	}
}
