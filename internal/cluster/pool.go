// Package cluster is the coordinator side of the distributed sweep
// fabric: a client pool that fans a sweep's scenarios out to remote
// worker `exadigit serve` instances over the exact same /api/sweeps
// HTTP API a human client uses, and streams the results back.
//
// The Pool implements service.ScenarioRunner, so a coordinator is just
// a Service with Options.Runner set — admission control, the memory
// cache, single-flight, retries, spans, and streaming all keep working
// unchanged while the simulation happens on another node. Scenarios
// shard to workers by rendezvous hash of their content hash (stable
// affinity → warm worker-local caches), dead or slow workers are marked
// unhealthy and their shards re-dispatched to survivors, and worker
// backpressure (429 + Retry-After) is honored with the server-derived
// delay instead of a client-side guess.
//
// Exactly-once compute across the cluster does NOT come from this pool
// — it comes from the shared store's leases (store.AcquireLease): each
// worker leases a key before simulating it, so two workers handed the
// same key by racing coordinators compute it once. The pool only
// provides at-least-once dispatch.
package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/obs"
	"exadigit/internal/service"
	"exadigit/internal/store"
)

// Options configures a Pool.
type Options struct {
	// Workers are the worker base URLs (e.g. "http://host:8080"); at
	// least one is required.
	Workers []string
	// Token is the bearer token the workers require, if any.
	Token string
	// Client is the HTTP client used for submits and result streams.
	// nil → a default client with no overall timeout (streams are
	// long-lived; per-shard bounds come from StallTimeout).
	Client *http.Client
	// Registry receives the coordinator metric families
	// (exadigit_cluster_*). nil → a private registry.
	Registry *obs.Registry
	// Store is the shared result store, when the coordinator can reach
	// the same directory as its workers. It is used to re-read a
	// completed shard's full-fidelity result (history, telemetry) —
	// the NDJSON stream carries only the report. nil → streamed reports
	// only.
	Store *store.Store
	// StallTimeout bounds one shard's submit+stream wall time on one
	// worker; past it the worker is marked unhealthy and the shard
	// re-dispatched (0 → no per-worker bound; the sweep's scenario
	// timeout still applies end to end).
	StallTimeout time.Duration
	// ProbeAfter is how long an unhealthy worker sits out before the
	// pool risks a shard on it again (0 → 5s).
	ProbeAfter time.Duration
	// MaxThrottleWaits bounds how many 429 Retry-After waits the pool
	// spends on one worker per shard before moving to the next
	// candidate (0 → 4).
	MaxThrottleWaits int
	// MaxRetryAfter caps a single honored Retry-After delay, so one
	// overloaded worker cannot stall a shard for a minute when a
	// sibling is idle (0 → 10s).
	MaxRetryAfter time.Duration
	// Logf receives dispatch diagnostics (log.Printf-shaped; nil → off).
	Logf func(format string, args ...any)
}

// worker is one remote serve instance and its health state.
type worker struct {
	url      string // base URL, no trailing slash
	healthy  atomic.Bool
	lastFail atomic.Int64 // UnixNano of the most recent failure
}

// available reports whether the pool should offer this worker a shard:
// healthy, or unhealthy but past the probe cooldown (every cooldown
// expiry risks exactly the one probing shard, not the whole sweep).
func (w *worker) available(now time.Time, probeAfter time.Duration) bool {
	return w.healthy.Load() || now.Sub(time.Unix(0, w.lastFail.Load())) >= probeAfter
}

func (w *worker) markHealthy() { w.healthy.Store(true) }

func (w *worker) markUnhealthy(now time.Time) {
	w.healthy.Store(false)
	w.lastFail.Store(now.UnixNano())
}

// Pool is the coordinator's worker client pool. It is safe for
// concurrent use by every sweep goroutine of the coordinating Service.
type Pool struct {
	workers          []*worker
	client           *http.Client
	token            string
	store            *store.Store
	stallTimeout     time.Duration
	probeAfter       time.Duration
	maxThrottleWaits int
	maxRetryAfter    time.Duration
	logf             func(string, ...any)

	specMu    sync.Mutex
	specJSON  map[string]json.RawMessage // spec hash → marshaled spec
	specOrder []string

	dispatched   *obs.CounterVec
	redispatched *obs.CounterVec
	throttled    *obs.CounterVec
	shardSec     *obs.Histogram
}

// maxCachedSpecs bounds the marshaled-spec cache like the service's
// compiled-spec cache: arbitrary inline specs must not pin JSON forever.
const maxCachedSpecs = 64

// New builds a Pool over the given workers.
func New(opts Options) (*Pool, error) {
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("cluster: at least one worker URL required")
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.ProbeAfter <= 0 {
		opts.ProbeAfter = 5 * time.Second
	}
	if opts.MaxThrottleWaits <= 0 {
		opts.MaxThrottleWaits = 4
	}
	if opts.MaxRetryAfter <= 0 {
		opts.MaxRetryAfter = 10 * time.Second
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	p := &Pool{
		client:           opts.Client,
		token:            opts.Token,
		store:            opts.Store,
		stallTimeout:     opts.StallTimeout,
		probeAfter:       opts.ProbeAfter,
		maxThrottleWaits: opts.MaxThrottleWaits,
		maxRetryAfter:    opts.MaxRetryAfter,
		logf:             opts.Logf,
		specJSON:         make(map[string]json.RawMessage),
	}
	seen := make(map[string]bool)
	for _, u := range opts.Workers {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		w := &worker{url: u}
		w.healthy.Store(true)
		p.workers = append(p.workers, w)
	}
	if len(p.workers) == 0 {
		return nil, fmt.Errorf("cluster: no usable worker URLs in %v", opts.Workers)
	}
	p.registerMetrics(reg)
	return p, nil
}

func (p *Pool) registerMetrics(reg *obs.Registry) {
	p.dispatched = reg.CounterVec("exadigit_cluster_dispatched_total",
		"Scenario shards successfully completed per worker.", "worker")
	p.redispatched = reg.CounterVec("exadigit_cluster_redispatched_total",
		"Scenario shards moved off a worker after a failure or stall.", "worker")
	p.throttled = reg.CounterVec("exadigit_cluster_throttled_total",
		"Worker 429 backpressure responses honored (Retry-After waits).", "worker")
	p.shardSec = reg.Histogram("exadigit_cluster_shard_seconds",
		"Wall time of one completed scenario shard (submit through final stream line).", nil)
	reg.GaugeFunc("exadigit_cluster_workers",
		"Configured worker count.",
		func() float64 { return float64(len(p.workers)) })
	reg.VecFunc(obs.KindGauge, "exadigit_cluster_worker_healthy",
		"1 when the worker is accepting shards, 0 while it sits out a failure cooldown.",
		[]string{"worker"},
		func(emit func([]string, float64)) {
			for _, w := range p.workers {
				v := 0.0
				if w.healthy.Load() {
					v = 1.0
				}
				emit([]string{w.url}, v)
			}
		})
}

// Workers returns the configured worker URLs.
func (p *Pool) Workers() []string {
	out := make([]string, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.url
	}
	return out
}

// HealthyWorkers returns how many workers are currently accepting shards.
func (p *Pool) HealthyWorkers() int {
	n := 0
	for _, w := range p.workers {
		if w.healthy.Load() {
			n++
		}
	}
	return n
}

// specBody returns (caching) the marshaled spec for specHash.
func (p *Pool) specBody(specHash string, spec config.SystemSpec) (json.RawMessage, error) {
	p.specMu.Lock()
	defer p.specMu.Unlock()
	if raw, ok := p.specJSON[specHash]; ok {
		return raw, nil
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("cluster: marshal spec: %w", err)
	}
	p.specJSON[specHash] = raw
	p.specOrder = append(p.specOrder, specHash)
	for len(p.specOrder) > maxCachedSpecs {
		delete(p.specJSON, p.specOrder[0])
		p.specOrder = p.specOrder[1:]
	}
	return raw, nil
}

// submitEnvelope is the wire body of a single-scenario shard submission
// — field-compatible with service.SubmitRequest, with the spec held as
// pre-marshaled JSON so a 10k-scenario sweep encodes the spec once, not
// 10k times.
type submitEnvelope struct {
	Name      string                    `json:"name,omitempty"`
	Spec      json.RawMessage           `json:"spec"`
	Scenarios []service.ScenarioRequest `json:"scenarios"`
	// Ephemeral keeps shard sweeps out of the worker's durable sweep
	// journal: a shard is the coordinator's re-dispatchable work, and the
	// coordinator's own journal is what survives a crash. A worker that
	// re-adopted half-done shards would race the coordinator's
	// re-dispatch of the same scenarios.
	Ephemeral bool `json:"ephemeral,omitempty"`
}

// candidates orders the workers for a scenario hash: rendezvous
// (highest-random-weight) hashing gives each key a stable worker
// affinity — re-dispatches of one scenario land on the same worker,
// whose memory cache is warm — with the remaining workers as a
// deterministic failover order. Available workers sort ahead of ones
// sitting out a failure cooldown.
func (p *Pool) candidates(scenHash string, now time.Time) []*worker {
	type scored struct {
		w     *worker
		score uint64
		avail bool
	}
	list := make([]scored, len(p.workers))
	for i, w := range p.workers {
		h := fnv.New64a()
		io.WriteString(h, w.url)
		io.WriteString(h, "\x00")
		io.WriteString(h, scenHash)
		list[i] = scored{w: w, score: h.Sum64(), avail: w.available(now, p.probeAfter)}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].avail != list[j].avail {
			return list[i].avail
		}
		return list[i].score > list[j].score
	})
	out := make([]*worker, len(list))
	for i, s := range list {
		out[i] = s.w
	}
	return out
}

// errShardFailed marks a worker-side terminal scenario failure — the
// worker is fine, the scenario failed; re-dispatching it to a sibling
// would just fail again, so the error goes back to the coordinating
// service's own retry budget.
type errShardFailed struct{ msg string }

func (e *errShardFailed) Error() string { return e.msg }

// RunScenario dispatches one scenario to the cluster: submit it as a
// single-scenario sweep on its affinity worker, stream the result back,
// and re-dispatch to the next candidate when the worker is dead, slow,
// or saturated past patience. It implements service.ScenarioRunner; a
// returned error re-enters the coordinating sweep's retry/backoff loop.
func (p *Pool) RunScenario(ctx context.Context, req service.RunRequest) (*core.Result, error) {
	wire, err := service.ScenarioRequestFrom(req.Scenario)
	if err != nil {
		return nil, err
	}
	specRaw, err := p.specBody(req.SpecHash, req.Spec)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(submitEnvelope{
		Name:      fmt.Sprintf("shard-%.12s", req.ScenarioHash),
		Spec:      specRaw,
		Scenarios: []service.ScenarioRequest{wire},
		Ephemeral: true,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: marshal shard: %w", err)
	}
	var errs []error
	for _, w := range p.candidates(req.ScenarioHash, time.Now()) {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		res, rerr := p.runOn(ctx, w, req, body)
		if rerr == nil {
			return res, nil
		}
		var terminal *errShardFailed
		if errors.As(rerr, &terminal) || errors.Is(rerr, context.Canceled) {
			return nil, rerr
		}
		// Worker-side trouble: count the move and try the next candidate.
		p.redispatched.With(w.url).Inc()
		if p.logf != nil {
			p.logf("cluster: %s: shard %.12s re-dispatched: %v", w.url, req.ScenarioHash, rerr)
		}
		errs = append(errs, fmt.Errorf("%s: %w", w.url, rerr))
	}
	return nil, fmt.Errorf("cluster: shard %.12s failed on every worker: %w",
		req.ScenarioHash, errors.Join(errs...))
}

// runOn runs one shard on one worker: submit (honoring 429 backpressure
// with the server-derived Retry-After), then stream the terminal result
// line. Any transport failure, 5xx, or stall marks the worker unhealthy
// and returns a retriable error; scenario-level failures come back as
// *errShardFailed.
func (p *Pool) runOn(ctx context.Context, w *worker, req service.RunRequest, body []byte) (*core.Result, error) {
	if p.stallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.stallTimeout)
		defer cancel()
	}
	start := time.Now()
	sub, err := p.submit(ctx, w, req, body)
	if err != nil {
		return nil, err
	}
	res, err := p.streamResult(ctx, w, req, sub.ID)
	if err != nil {
		// The worker may still be grinding on the shard; a best-effort
		// cancel keeps an abandoned submission from occupying its pool.
		p.cancelShard(w, sub.ID)
		return nil, err
	}
	w.markHealthy()
	p.dispatched.With(w.url).Inc()
	p.shardSec.Observe(time.Since(start).Seconds())
	return res, nil
}

// submit POSTs the shard, waiting out 429 backpressure up to the
// patience bound.
func (p *Pool) submit(ctx context.Context, w *worker, req service.RunRequest, body []byte) (*service.SubmitResponse, error) {
	throttles := 0
	for {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
			w.url+"/api/sweeps", strings.NewReader(string(body)))
		if err != nil {
			return nil, fmt.Errorf("cluster: build submit: %w", err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		if p.token != "" {
			hreq.Header.Set("Authorization", "Bearer "+p.token)
		}
		resp, err := p.client.Do(hreq)
		if err != nil {
			w.markUnhealthy(time.Now())
			return nil, fmt.Errorf("cluster: submit: %w", err)
		}
		switch {
		case resp.StatusCode == http.StatusAccepted:
			var sub service.SubmitResponse
			err := json.NewDecoder(resp.Body).Decode(&sub)
			resp.Body.Close()
			if err != nil {
				w.markUnhealthy(time.Now())
				return nil, fmt.Errorf("cluster: decode submit response: %w", err)
			}
			// The worker hashed the wire-form scenario independently; a
			// mismatch means the round trip was lossy and the shared
			// store would dedup against the wrong key. Fail loudly — this
			// is a protocol bug, not a worker fault.
			if len(sub.ScenarioHashes) != 1 || sub.ScenarioHashes[0] != req.ScenarioHash {
				return nil, &errShardFailed{msg: fmt.Sprintf(
					"cluster: %s derived scenario hash %v, coordinator has %s (lossy wire round trip)",
					w.url, sub.ScenarioHashes, req.ScenarioHash)}
			}
			if sub.SpecHash != req.SpecHash {
				return nil, &errShardFailed{msg: fmt.Sprintf(
					"cluster: %s derived spec hash %s, coordinator has %s (spec drift)",
					w.url, sub.SpecHash, req.SpecHash)}
			}
			return &sub, nil
		case resp.StatusCode == http.StatusTooManyRequests:
			// Backpressure, not failure: the worker is alive and telling
			// us when its queue should drain. Honor the hint (capped, with
			// a little client-side jitter on top) and resubmit; past the
			// patience bound, let a less-loaded candidate take the shard.
			drainBody(resp)
			throttles++
			p.throttled.With(w.url).Inc()
			if throttles > p.maxThrottleWaits {
				return nil, fmt.Errorf("cluster: %s still saturated after %d Retry-After waits", w.url, throttles-1)
			}
			if err := sleepCtx(ctx, p.retryDelay(resp)); err != nil {
				return nil, err
			}
		case resp.StatusCode >= 500:
			drainBody(resp)
			w.markUnhealthy(time.Now())
			return nil, fmt.Errorf("cluster: submit: %s returned %s", w.url, resp.Status)
		default:
			// 400/401/...: every worker would answer the same — surface it
			// as terminal instead of burning the candidate list.
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			return nil, &errShardFailed{msg: fmt.Sprintf(
				"cluster: submit rejected by %s: %s: %s", w.url, resp.Status, strings.TrimSpace(string(msg)))}
		}
	}
}

// retryDelay extracts the worker's Retry-After hint, caps it, and adds
// ±20% client jitter so coordinator goroutines throttled together do
// not resubmit together.
func (p *Pool) retryDelay(resp *http.Response) time.Duration {
	d := time.Second
	if s := resp.Header.Get("Retry-After"); s != "" {
		if sec, err := strconv.Atoi(s); err == nil && sec > 0 {
			d = time.Duration(sec) * time.Second
		}
	}
	if d > p.maxRetryAfter {
		d = p.maxRetryAfter
	}
	return time.Duration((0.8 + 0.4*rand.Float64()) * float64(d))
}

// streamResult tails the shard's NDJSON stream and converts its single
// terminal line into a result. When the shared store is reachable it
// re-reads the full-fidelity result the worker persisted (the stream
// carries only the report).
func (p *Pool) streamResult(ctx context.Context, w *worker, req service.RunRequest, sweepID string) (*core.Result, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		w.url+"/api/sweeps/"+sweepID+"/stream", nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: build stream: %w", err)
	}
	if p.token != "" {
		hreq.Header.Set("Authorization", "Bearer "+p.token)
	}
	resp, err := p.client.Do(hreq)
	if err != nil {
		w.markUnhealthy(time.Now())
		return nil, fmt.Errorf("cluster: stream: %w", err)
	}
	defer drainBody(resp)
	if resp.StatusCode != http.StatusOK {
		w.markUnhealthy(time.Now())
		return nil, fmt.Errorf("cluster: stream: %s returned %s", w.url, resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var entry service.ResultEntry
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			w.markUnhealthy(time.Now())
			return nil, fmt.Errorf("cluster: stream: bad line from %s: %w", w.url, err)
		}
		switch entry.State {
		case service.StateDone, service.StateCached:
			return p.materialize(req, entry), nil
		case service.StateFailed:
			return nil, &errShardFailed{msg: fmt.Sprintf(
				"cluster: scenario failed on %s: %s", w.url, entry.Error)}
		case service.StateCancelled:
			// The worker died mid-drain or an operator cancelled it —
			// either way the shard should run elsewhere.
			w.markUnhealthy(time.Now())
			return nil, fmt.Errorf("cluster: shard cancelled on %s", w.url)
		}
	}
	if err := sc.Err(); err != nil {
		w.markUnhealthy(time.Now())
		return nil, fmt.Errorf("cluster: stream from %s broke: %w", w.url, err)
	}
	if ctx.Err() != nil {
		w.markUnhealthy(time.Now())
		return nil, fmt.Errorf("cluster: shard on %s stalled: %w", w.url, ctx.Err())
	}
	w.markUnhealthy(time.Now())
	return nil, fmt.Errorf("cluster: stream from %s ended without a terminal result", w.url)
}

// materialize converts a completed shard's stream entry into the
// coordinator-side result, preferring the full-fidelity store entry the
// worker persisted over the report-only stream line.
func (p *Pool) materialize(req service.RunRequest, entry service.ResultEntry) *core.Result {
	if p.store != nil {
		if res, err := p.store.Get(req.SpecHash, req.ScenarioHash); err == nil {
			return res
		}
	}
	return &core.Result{
		Scenario: req.Scenario,
		Report:   entry.Report,
		WallSec:  entry.WallSec,
	}
}

// cancelShard best-effort cancels an abandoned worker-side sweep so a
// re-dispatched shard does not keep burning the old worker's pool.
func (p *Pool) cancelShard(w *worker, sweepID string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.url+"/api/sweeps/"+sweepID+"/cancel", nil)
	if err != nil {
		return
	}
	if p.token != "" {
		hreq.Header.Set("Authorization", "Bearer "+p.token)
	}
	if resp, err := p.client.Do(hreq); err == nil {
		drainBody(resp)
	}
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// drainBody discards and closes a response body so the transport can
// reuse the connection.
func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
