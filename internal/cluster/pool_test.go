package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/job"
	"exadigit/internal/obs"
	"exadigit/internal/service"
)

func synthScenario(seed int64, horizon float64) core.Scenario {
	gen := job.DefaultGeneratorConfig()
	gen.Seed = seed
	return core.Scenario{
		Name:       "synth",
		Workload:   core.WorkloadSynthetic,
		HorizonSec: horizon,
		TickSec:    15,
		Generator:  gen,
		NoExport:   true,
		NoHistory:  true,
	}
}

// newWorker spins up one worker serve instance behind an HTTP test
// server, closed at test end.
func newWorker(t *testing.T, opts service.Options) (*service.Service, *httptest.Server) {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	svc := service.New(opts)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		svc.CancelAll()
		srv.Close()
	})
	return svc, srv
}

func waitSweep(t *testing.T, sw *service.Sweep) service.SweepStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := sw.Wait(ctx); err != nil {
		t.Fatalf("sweep %s did not finish: %v", sw.ID(), err)
	}
	return sw.Status()
}

// TestWireRoundTripPreservesHash pins the invariant the whole fabric
// rests on: converting a scenario to its wire form and back must not
// change its content hash, or the shared store's cluster-wide dedup key
// would silently diverge between coordinator and worker.
func TestWireRoundTripPreservesHash(t *testing.T) {
	gen := job.DefaultGeneratorConfig()
	gen.Seed = 7
	auto := &config.CoolingSpec{Preset: "frontier"}
	cases := []core.Scenario{
		synthScenario(1, 3600),
		{Name: "idle", Workload: core.WorkloadIdle, HorizonSec: 600, TickSec: 15},
		{Name: "bench", Workload: core.WorkloadHPL, HorizonSec: 7200, TickSec: 15,
			BenchmarkWallSec: 1800, Policy: "sjf", PowerMode: "dc380", Engine: "dense"},
		{Name: "cooled", Workload: core.WorkloadSynthetic, HorizonSec: 3600, TickSec: 15,
			Cooling: true, Generator: gen, WetBulbC: 21.5},
		{Name: "plant-override", Workload: core.WorkloadSynthetic, HorizonSec: 3600, TickSec: 15,
			CoolingSpec: auto, Generator: gen,
			WeatherStart: time.Date(2024, 7, 1, 0, 0, 0, 0, time.UTC), WeatherSeed: 42},
		{Name: "per-partition", HorizonSec: 1800, TickSec: 15,
			Partitions: []core.PartitionScenario{
				{Workload: core.WorkloadSynthetic, Generator: gen},
				{Workload: core.WorkloadIdle},
			}},
		{Name: "export", Workload: core.WorkloadSynthetic, HorizonSec: 900, TickSec: 15,
			Generator: gen, NoExport: false, NoHistory: false},
	}
	for _, sc := range cases {
		want, err := service.HashScenario(sc)
		if err != nil {
			t.Fatalf("%s: hash: %v", sc.Name, err)
		}
		wire, err := ScenarioRequestFromForTest(sc)
		if err != nil {
			t.Fatalf("%s: to wire: %v", sc.Name, err)
		}
		got, err := service.HashScenario(wire.Scenario())
		if err != nil {
			t.Fatalf("%s: hash after round trip: %v", sc.Name, err)
		}
		if got != want {
			t.Errorf("%s: wire round trip changed hash: %s -> %s", sc.Name, want, got)
		}
	}
}

// ScenarioRequestFromForTest keeps the test readable; the conversion
// under test lives in the service package next to its inverse.
func ScenarioRequestFromForTest(sc core.Scenario) (service.ScenarioRequest, error) {
	return service.ScenarioRequestFrom(sc)
}

// TestWireRejectsReplayAndWriters: scenarios that cannot cross the wire
// are refused at conversion, not shipped broken.
func TestWireRejectsReplayAndWriters(t *testing.T) {
	if _, err := service.ScenarioRequestFrom(core.Scenario{Workload: core.WorkloadReplay}); err == nil {
		t.Error("replay scenario crossed the wire")
	}
	if _, err := service.ScenarioRequestFrom(core.Scenario{
		Workload: core.WorkloadIdle, TelemetryTo: &strings.Builder{},
	}); err == nil {
		t.Error("telemetry-writer scenario crossed the wire")
	}
}

// TestCoordinatorSweepAcrossWorkers is the basic fabric test: a
// coordinator Service with the Pool as its runner completes a sweep
// across two real worker serve instances, every result carries a
// report, and the dispatch accounting adds up.
func TestCoordinatorSweepAcrossWorkers(t *testing.T) {
	_, srvA := newWorker(t, service.Options{})
	_, srvB := newWorker(t, service.Options{})
	reg := obs.NewRegistry()
	pool, err := New(Options{
		Workers:  []string{srvA.URL, srvB.URL},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord := service.New(service.Options{Workers: 8, Runner: pool})
	const n = 8
	scens := make([]core.Scenario, n)
	for i := range scens {
		scens[i] = synthScenario(int64(100+i), 1800)
	}
	sw, err := coord.Submit(config.Frontier(), scens, service.SweepOptions{Name: "fabric"})
	if err != nil {
		t.Fatal(err)
	}
	st := waitSweep(t, sw)
	if st.Done != n {
		t.Fatalf("coordinator sweep: %+v", st)
	}
	for i, res := range sw.Results() {
		if res == nil || res.Report == nil {
			t.Fatalf("scenario %d has no report", i)
		}
		if res.Report.JobsCompleted == 0 && res.Report.EnergyMWh == 0 {
			t.Fatalf("scenario %d report is empty: %+v", i, res.Report)
		}
	}
	var dispatched float64
	for _, url := range pool.Workers() {
		dispatched += counterValue(t, reg, "exadigit_cluster_dispatched_total", "worker", url)
	}
	if int(dispatched) != n {
		t.Fatalf("dispatched %v shards, want %d", dispatched, n)
	}
	if h := pool.HealthyWorkers(); h != 2 {
		t.Fatalf("healthy workers = %d, want 2", h)
	}
}

// TestDuplicateScenariosDispatchOnce: the coordinator's own
// single-flight still collapses identical scenarios before they reach
// the wire, so N copies of one scenario cost one remote shard.
func TestDuplicateScenariosDispatchOnce(t *testing.T) {
	_, srv := newWorker(t, service.Options{})
	reg := obs.NewRegistry()
	pool, err := New(Options{Workers: []string{srv.URL}, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	coord := service.New(service.Options{Workers: 4, Runner: pool})
	scens := []core.Scenario{synthScenario(1, 1800), synthScenario(1, 1800), synthScenario(1, 1800)}
	sw, err := coord.Submit(config.Frontier(), scens, service.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := waitSweep(t, sw)
	if st.Done+st.Cached != 3 || st.Failed != 0 {
		t.Fatalf("dedup sweep: %+v", st)
	}
	if got := counterValue(t, reg, "exadigit_cluster_dispatched_total", "worker", srv.URL); got != 1 {
		t.Fatalf("dispatched %v shards for 3 identical scenarios, want 1", got)
	}
}

// TestRedispatchFromDeadWorker: a worker that is down from the start
// (connection refused) loses its shards to the survivor and is marked
// unhealthy; the sweep still completes exactly.
func TestRedispatchFromDeadWorker(t *testing.T) {
	_, live := newWorker(t, service.Options{Workers: 4})
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // connection refused from the first dial

	reg := obs.NewRegistry()
	pool, err := New(Options{
		Workers:    []string{live.URL, deadURL},
		Registry:   reg,
		ProbeAfter: time.Hour, // stay dead for the whole test
	})
	if err != nil {
		t.Fatal(err)
	}
	coord := service.New(service.Options{Workers: 8, Runner: pool})
	const n = 16
	scens := make([]core.Scenario, n)
	for i := range scens {
		scens[i] = synthScenario(int64(500+i), 1800)
	}
	sw, err := coord.Submit(config.Frontier(), scens, service.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := waitSweep(t, sw)
	if st.Done != n || st.Failed != 0 {
		t.Fatalf("dead-worker sweep: %+v", st)
	}
	if got := counterValue(t, reg, "exadigit_cluster_dispatched_total", "worker", live.URL); got != n {
		t.Fatalf("live worker completed %v shards, want %d", got, n)
	}
	// With 16 scenarios rendezvous-sharded over 2 workers, the odds that
	// none had dead-worker affinity are 2^-16; at least one re-dispatch
	// must have been counted and the dead worker marked unhealthy.
	if got := counterValue(t, reg, "exadigit_cluster_redispatched_total", "worker", deadURL); got < 1 {
		t.Fatalf("redispatched from dead worker = %v, want >= 1", got)
	}
	if h := pool.HealthyWorkers(); h != 1 {
		t.Fatalf("healthy workers = %d, want 1", h)
	}
}

// TestPoolHonorsRetryAfter: a worker that answers 429 with an explicit
// Retry-After before accepting makes the pool wait (throttled counter)
// rather than fail or hammer; the shard then completes.
func TestPoolHonorsRetryAfter(t *testing.T) {
	_, worker := newWorker(t, service.Options{})
	var rejected atomic.Int64
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/api/sweeps") && rejected.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
			return
		}
		// Proxy everything else straight to the real worker.
		req, _ := http.NewRequestWithContext(r.Context(), r.Method, worker.URL+r.URL.Path, r.Body)
		req.Header = r.Header
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32<<10)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return
				}
				if f, ok := w.(http.Flusher); ok {
					f.Flush()
				}
			}
			if rerr != nil {
				return
			}
		}
	}))
	defer gate.Close()

	reg := obs.NewRegistry()
	pool, err := New(Options{Workers: []string{gate.URL}, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	coord := service.New(service.Options{Workers: 2, Runner: pool})
	start := time.Now()
	sw, err := coord.Submit(config.Frontier(), []core.Scenario{synthScenario(9, 1800)}, service.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := waitSweep(t, sw)
	if st.Done != 1 {
		t.Fatalf("throttled sweep: %+v", st)
	}
	if got := counterValue(t, reg, "exadigit_cluster_throttled_total", "worker", gate.URL); got != 2 {
		t.Fatalf("throttled = %v, want 2", got)
	}
	// Two honored 1s Retry-After hints with ±20% jitter: at least ~1.6s
	// must have elapsed if the hints were actually waited out.
	if elapsed := time.Since(start); elapsed < 1500*time.Millisecond {
		t.Fatalf("sweep finished in %v; Retry-After hints were not honored", elapsed)
	}
}

// TestShardFailureIsTerminalNotRedispatched: a scenario the worker
// rejects as a scenario-level failure must not burn the candidate list
// or mark workers unhealthy — the failure belongs to the scenario.
func TestShardFailureIsTerminalNotRedispatched(t *testing.T) {
	wsvc, srv := newWorker(t, service.Options{MaxAttempts: 1, RetryBaseDelay: time.Millisecond})
	wsvc.SetFaultInjector(&service.FaultInjector{
		BeforeRun: func(ctx context.Context, f service.Fault) error {
			return context.DeadlineExceeded // any persistent per-run error
		},
	})
	reg := obs.NewRegistry()
	pool, err := New(Options{Workers: []string{srv.URL}, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	coord := service.New(service.Options{Workers: 2, Runner: pool, MaxAttempts: 1, RetryBaseDelay: time.Millisecond})
	sw, err := coord.Submit(config.Frontier(), []core.Scenario{synthScenario(3, 1800)}, service.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := waitSweep(t, sw)
	if st.Failed != 1 {
		t.Fatalf("want 1 failed scenario, got %+v", st)
	}
	if got := counterValue(t, reg, "exadigit_cluster_redispatched_total", "worker", srv.URL); got != 0 {
		t.Fatalf("scenario failure was re-dispatched %v times", got)
	}
	if h := pool.HealthyWorkers(); h != 1 {
		t.Fatal("scenario failure marked the worker unhealthy")
	}
}

// counterValue scrapes one labeled counter out of the registry's text
// exposition — the same path an operator reads.
func counterValue(t *testing.T, reg *obs.Registry, name, label, value string) float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.Write(&sb); err != nil {
		t.Fatal(err)
	}
	expo, err := obs.ParseExposition([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	fam, ok := expo.Families[name]
	if !ok {
		return 0
	}
	for _, s := range fam.Series {
		if s.Labels[label] == value {
			return s.Value
		}
	}
	return 0
}
