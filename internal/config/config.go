// Package config implements the JSON input specification that
// generalizes ExaDigiT beyond Frontier (§V): "the generalized version of
// RAPS inputs configuration files describing the system architecture, the
// cooling system, the scheduler, and the power system". A SystemSpec
// fully describes a machine — including multi-partition systems such as
// Setonix with separate CPU-only and CPU+GPU partitions — and builds the
// corresponding power models and cooling configuration.
package config

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"exadigit/internal/cooling"
	"exadigit/internal/power"
)

// SystemSpec is the top-level machine description.
type SystemSpec struct {
	Name string `json:"name"`
	// Partitions lists the machine's scheduling partitions; Frontier has
	// one, Setonix-style systems several (§V).
	Partitions []PartitionSpec `json:"partitions"`
	Cooling    CoolingSpec     `json:"cooling"`
	Scheduler  SchedulerSpec   `json:"scheduler"`
}

// PartitionSpec describes one partition's topology and component powers.
type PartitionSpec struct {
	Name string `json:"name"`

	NodesTotal      int `json:"nodes_total"`
	NodesPerRack    int `json:"nodes_per_rack"`
	NodesPerChassis int `json:"nodes_per_chassis"`
	ChassisPerRack  int `json:"chassis_per_rack"`
	SwitchesPerRack int `json:"switches_per_rack"`
	RacksPerCDU     int `json:"racks_per_cdu"`
	NumCDUs         int `json:"num_cdus"`

	CPUIdleW float64 `json:"cpu_idle_w"`
	CPUMaxW  float64 `json:"cpu_max_w"`
	GPUIdleW float64 `json:"gpu_idle_w"`
	GPUMaxW  float64 `json:"gpu_max_w"`
	RAMW     float64 `json:"ram_w"`
	NVMeW    float64 `json:"nvme_w"`
	NICW     float64 `json:"nic_w"`
	SwitchW  float64 `json:"switch_w"`
	CDUPumpW float64 `json:"cdu_pump_w"`

	GPUsPerNode int `json:"gpus_per_node"`
	NICsPerNode int `json:"nics_per_node"`
	NVMePerNode int `json:"nvme_per_node"`

	Power PowerSpec `json:"power"`
}

// PowerSpec describes the conversion chain (§III-B1).
type PowerSpec struct {
	RectEtaMax     float64 `json:"rect_eta_max"`
	RectLowDroop   float64 `json:"rect_low_droop"`
	RectHighDroop  float64 `json:"rect_high_droop"`
	RectPOptW      float64 `json:"rect_p_opt_w"`
	RectPMaxW      float64 `json:"rect_p_max_w"`
	SivocEta       float64 `json:"sivoc_eta"`
	DCDistEta      float64 `json:"dc_dist_eta"`
	RectPerChassis int     `json:"rect_per_chassis"`
	// Mode: "ac-baseline", "smart-rectifier", or "dc380".
	Mode string `json:"mode"`
	// CoolingEfficiency converts electrical input to liquid heat (0.945).
	CoolingEfficiency float64 `json:"cooling_efficiency"`
}

// CoolingSpec is the AutoCSM input (§V): high-level design quantities
// from which a full plant model is synthesized. Setting Preset instead
// names a hand-calibrated plant (cooling.Preset) that is used verbatim —
// the default Frontier spec resolves to the "frontier" preset so its
// cooled runs stay bit-identical to the paper-validated plant. The
// design quantities may still be carried alongside a preset (they
// document the machine and take over if the preset name is cleared).
type CoolingSpec struct {
	Preset         string  `json:"preset,omitempty"`
	NumCDUs        int     `json:"num_cdus"`
	NumTowers      int     `json:"num_towers"`
	CellsPerTower  int     `json:"cells_per_tower"`
	NumFanChannels int     `json:"num_fan_channels"`
	NumHTWPs       int     `json:"num_htwps"`
	NumCTWPs       int     `json:"num_ctwps"`
	NumEHX         int     `json:"num_ehx"`
	DesignHeatMW   float64 `json:"design_heat_mw"`
	DesignWetBulbC float64 `json:"design_wetbulb_c"`
	SecSupplyC     float64 `json:"secondary_supply_c"`
	CTSupplyC      float64 `json:"ct_supply_c"`
	PrimaryFlowGPM float64 `json:"primary_flow_gpm"`
	TowerFlowGPM   float64 `json:"tower_flow_gpm"`

	// CTSupplySetC and HTWHeaderSetPa override the resolved plant's
	// control setpoints — the tower leaving-water temperature target and
	// the primary header differential-pressure target — after preset
	// resolution or AutoCSM sizing. They are the L5 co-design knobs: the
	// optimizer sweeps them per candidate without re-sizing the plant.
	// Zero leaves the resolved plant untouched (omitempty keeps every
	// pre-existing spec hash stable).
	CTSupplySetC   float64 `json:"ct_supply_set_c,omitempty"`
	HTWHeaderSetPa float64 `json:"htw_header_set_pa,omitempty"`

	// Solver selects the plant's thermal integration scheme: "" or "rk4"
	// keeps the fixed-step bit-reproducible reference, "adaptive" enables
	// the error-controlled stepper with the quiescence fast path. Applied
	// on top of presets too, so {"preset":"frontier","solver":"adaptive"}
	// runs the hand-calibrated plant under the adaptive solver.
	Solver string `json:"solver,omitempty"`
	// SolverRelTol and SolverAbsTol override the adaptive error
	// tolerances; zero keeps the solver defaults (1e-4, 1e-3 °C).
	SolverRelTol float64 `json:"solver_rel_tol,omitempty"`
	SolverAbsTol float64 `json:"solver_abs_tol,omitempty"`
}

// FieldError is a structured spec validation or feasibility error: the
// offending field (its JSON name), the constraint it violated, and a
// suggested fix. The sweep service and the dashboard render it as
// structured JSON on HTTP 400s instead of leaking sizing internals as a
// free-text message; errors.As-unwrap it from any spec-compilation
// error path.
type FieldError struct {
	Field      string `json:"field"`
	Constraint string `json:"constraint"`
	Suggestion string `json:"suggestion,omitempty"`
}

// Error implements error.
func (e *FieldError) Error() string {
	if e.Suggestion != "" {
		return fmt.Sprintf("%s: %s — %s", e.Field, e.Constraint, e.Suggestion)
	}
	return fmt.Sprintf("%s: %s", e.Field, e.Constraint)
}

// SchedulerSpec selects the scheduling policy.
type SchedulerSpec struct {
	Policy string `json:"policy"`
}

// Frontier returns the built-in Frontier specification matching Table I
// and §III-C1.
func Frontier() SystemSpec {
	return SystemSpec{
		Name: "frontier",
		Partitions: []PartitionSpec{{
			Name:            "compute",
			NodesTotal:      9472,
			NodesPerRack:    128,
			NodesPerChassis: 16,
			ChassisPerRack:  8,
			SwitchesPerRack: 32,
			RacksPerCDU:     3,
			NumCDUs:         25,
			CPUIdleW:        90, CPUMaxW: 280,
			GPUIdleW: 88, GPUMaxW: 560,
			RAMW: 74, NVMeW: 15, NICW: 20,
			SwitchW: 250, CDUPumpW: 8700,
			GPUsPerNode: 4, NICsPerNode: 4, NVMePerNode: 2,
			Power: PowerSpec{
				RectEtaMax: 0.963, RectLowDroop: 0.0506, RectHighDroop: 0.0405,
				RectPOptW: 7500, RectPMaxW: 15000,
				SivocEta: 0.98, DCDistEta: 0.993, RectPerChassis: 4,
				Mode: "ac-baseline", CoolingEfficiency: 0.945,
			},
		}},
		Cooling: CoolingSpec{
			Preset:  "frontier",
			NumCDUs: 25, NumTowers: 5, CellsPerTower: 4, NumFanChannels: 16,
			NumHTWPs: 4, NumCTWPs: 4, NumEHX: 5,
			DesignHeatMW: 16, DesignWetBulbC: 20,
			SecSupplyC: 32, CTSupplyC: 22,
			PrimaryFlowGPM: 5200, TowerFlowGPM: 9500,
		},
		Scheduler: SchedulerSpec{Policy: "fcfs"},
	}
}

// SetonixLike returns a two-partition machine in the style of Pawsey's
// Setonix (§V's generalization target): a CPU-only partition plus a
// GPU partition, with HPE EX-class components.
func SetonixLike() SystemSpec {
	s := SystemSpec{
		Name: "setonix-like",
		Partitions: []PartitionSpec{
			{
				Name:            "cpu",
				NodesTotal:      1592,
				NodesPerRack:    128,
				NodesPerChassis: 16,
				ChassisPerRack:  8,
				SwitchesPerRack: 32,
				RacksPerCDU:     3,
				NumCDUs:         5,
				CPUIdleW:        100, CPUMaxW: 360, // dual-socket Milan
				GPUIdleW: 0, GPUMaxW: 0,
				RAMW: 60, NVMeW: 10, NICW: 20,
				SwitchW: 250, CDUPumpW: 8700,
				GPUsPerNode: 0, NICsPerNode: 2, NVMePerNode: 1,
				Power: PowerSpec{
					RectEtaMax: 0.963, RectLowDroop: 0.0506, RectHighDroop: 0.0405,
					RectPOptW: 7500, RectPMaxW: 15000,
					SivocEta: 0.98, DCDistEta: 0.993, RectPerChassis: 4,
					Mode: "ac-baseline", CoolingEfficiency: 0.945,
				},
			},
			{
				Name:            "gpu",
				NodesTotal:      768,
				NodesPerRack:    128,
				NodesPerChassis: 16,
				ChassisPerRack:  8,
				SwitchesPerRack: 32,
				RacksPerCDU:     3,
				NumCDUs:         2,
				CPUIdleW:        90, CPUMaxW: 280,
				GPUIdleW: 88, GPUMaxW: 560, // MI250X
				RAMW: 74, NVMeW: 15, NICW: 20,
				SwitchW: 250, CDUPumpW: 8700,
				GPUsPerNode: 4, NICsPerNode: 4, NVMePerNode: 2,
				Power: PowerSpec{
					RectEtaMax: 0.963, RectLowDroop: 0.0506, RectHighDroop: 0.0405,
					RectPOptW: 7500, RectPMaxW: 15000,
					SivocEta: 0.98, DCDistEta: 0.993, RectPerChassis: 4,
					Mode: "ac-baseline", CoolingEfficiency: 0.945,
				},
			},
		},
		Cooling: CoolingSpec{
			NumCDUs: 7, NumTowers: 2, CellsPerTower: 4, NumFanChannels: 8,
			NumHTWPs: 3, NumCTWPs: 3, NumEHX: 2,
			DesignHeatMW: 3.0, DesignWetBulbC: 21,
			SecSupplyC: 32, CTSupplyC: 24,
			PrimaryFlowGPM: 1400, TowerFlowGPM: 1800,
		},
		Scheduler: SchedulerSpec{Policy: "fcfs"},
	}
	return s
}

// Validate checks the spec for structural consistency.
func (s *SystemSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("config: system name required")
	}
	if len(s.Partitions) == 0 {
		return fmt.Errorf("config: at least one partition required")
	}
	for i := range s.Partitions {
		p := &s.Partitions[i]
		if p.Name == "" {
			return fmt.Errorf("config: partition %d needs a name", i)
		}
		if _, err := p.Topology(); err != nil {
			return fmt.Errorf("config: partition %q: %w", p.Name, err)
		}
		if p.Power.SivocEta <= 0 || p.Power.SivocEta > 1 {
			return fmt.Errorf("config: partition %q: sivoc_eta %v out of (0,1]", p.Name, p.Power.SivocEta)
		}
		if _, err := modeByName(p.Power.Mode); err != nil {
			return fmt.Errorf("config: partition %q: %w", p.Name, err)
		}
		if p.Power.CoolingEfficiency <= 0 || p.Power.CoolingEfficiency > 1 {
			return fmt.Errorf("config: partition %q: cooling_efficiency out of (0,1]", p.Name)
		}
	}
	return s.Cooling.Validate()
}

// Validate checks the cooling spec for structural consistency — the same
// checks the sweep service applies at its HTTP boundary, so malformed
// plants (non-positive flows, CDU counts, inverted temperature ladders)
// are rejected with a 400 instead of failing deep inside a worker. A
// preset spec only needs a known preset name; the design quantities are
// checked when AutoCSM will synthesize the plant from them.
func (c *CoolingSpec) Validate() error {
	if err := c.validateSolver(); err != nil {
		return err
	}
	if err := c.validateSetpoints(); err != nil {
		return err
	}
	if c.Preset != "" {
		if _, ok := cooling.Preset(c.Preset); !ok {
			return fmt.Errorf("config: %w", &FieldError{
				Field:      "preset",
				Constraint: fmt.Sprintf("unknown cooling preset %q", c.Preset),
				Suggestion: fmt.Sprintf("use one of %v, or clear preset and supply design quantities", cooling.PresetNames()),
			})
		}
		return nil
	}
	if c.NumCDUs <= 0 {
		return fmt.Errorf("config: %w", &FieldError{
			Field: "num_cdus", Constraint: "must be positive",
			Suggestion: "set num_cdus to the number of CDU loops (Frontier: 25)",
		})
	}
	if c.NumTowers <= 0 || c.CellsPerTower <= 0 {
		return fmt.Errorf("config: %w", &FieldError{
			Field: "num_towers", Constraint: "tower counts must be positive",
			Suggestion: "set num_towers and cells_per_tower ≥ 1",
		})
	}
	if c.NumHTWPs <= 0 || c.NumCTWPs <= 0 || c.NumEHX <= 0 {
		return fmt.Errorf("config: %w", &FieldError{
			Field: "num_htwps", Constraint: "pump/EHX counts must be positive",
			Suggestion: "set num_htwps, num_ctwps, and num_ehx ≥ 1",
		})
	}
	if c.DesignHeatMW <= 0 {
		return fmt.Errorf("config: %w", &FieldError{
			Field: "design_heat_mw", Constraint: "must be positive",
			Suggestion: "set design_heat_mw to the plant's rated heat load",
		})
	}
	if c.PrimaryFlowGPM <= 0 || c.TowerFlowGPM <= 0 {
		return fmt.Errorf("config: %w", &FieldError{
			Field: "primary_flow_gpm", Constraint: "design flows must be positive",
			Suggestion: "set primary_flow_gpm and tower_flow_gpm to the design loop flows",
		})
	}
	if c.SecSupplyC <= c.CTSupplyC {
		return fmt.Errorf("config: %w", &FieldError{
			Field:      "secondary_supply_c",
			Constraint: fmt.Sprintf("secondary supply %v °C must exceed CT supply %v °C", c.SecSupplyC, c.CTSupplyC),
			Suggestion: "raise secondary_supply_c or lower ct_supply_c",
		})
	}
	if c.CTSupplyC <= c.DesignWetBulbC {
		return fmt.Errorf("config: %w", &FieldError{
			Field:      "ct_supply_c",
			Constraint: fmt.Sprintf("CT supply %v °C must exceed design wet bulb %v °C", c.CTSupplyC, c.DesignWetBulbC),
			Suggestion: "raise ct_supply_c or lower design_wetbulb_c",
		})
	}
	return nil
}

// validateSetpoints checks the control-setpoint overrides. They apply
// to presets and generated plants alike, so the checks are physical
// sanity bounds rather than design-ladder relations (the resolved plant
// enforces those at run time).
func (c *CoolingSpec) validateSetpoints() error {
	if c.CTSupplySetC < 0 {
		return fmt.Errorf("config: %w", &FieldError{
			Field: "ct_supply_set_c", Constraint: "must be non-negative",
			Suggestion: "omit it to keep the resolved plant's tower setpoint",
		})
	}
	if c.CTSupplySetC > 0 && c.Preset == "" && c.CTSupplySetC <= c.DesignWetBulbC {
		return fmt.Errorf("config: %w", &FieldError{
			Field:      "ct_supply_set_c",
			Constraint: fmt.Sprintf("setpoint %v °C must exceed the design wet bulb %v °C (a tower cannot cool below it)", c.CTSupplySetC, c.DesignWetBulbC),
			Suggestion: "raise ct_supply_set_c above design_wetbulb_c",
		})
	}
	if c.HTWHeaderSetPa < 0 {
		return fmt.Errorf("config: %w", &FieldError{
			Field: "htw_header_set_pa", Constraint: "must be non-negative",
			Suggestion: "omit it to keep the resolved plant's header ΔP setpoint",
		})
	}
	return nil
}

func (c *CoolingSpec) validateSolver() error {
	switch c.Solver {
	case "", cooling.SolverRK4, cooling.SolverAdaptive:
	default:
		return fmt.Errorf("config: %w", &FieldError{
			Field:      "solver",
			Constraint: fmt.Sprintf("unknown solver %q", c.Solver),
			Suggestion: fmt.Sprintf("use %q (fixed-step, bit-reproducible) or %q (fast path)", cooling.SolverRK4, cooling.SolverAdaptive),
		})
	}
	if c.SolverRelTol < 0 {
		return fmt.Errorf("config: %w", &FieldError{
			Field: "solver_rel_tol", Constraint: "must be non-negative",
			Suggestion: "use 0 for the default (1e-4 relative)",
		})
	}
	if c.SolverAbsTol < 0 {
		return fmt.Errorf("config: %w", &FieldError{
			Field: "solver_abs_tol", Constraint: "must be non-negative",
			Suggestion: "use 0 for the default (1e-3 °C absolute)",
		})
	}
	return nil
}

// Hash returns the canonical content hash of the cooling spec alone —
// the key under which compiled plant designs are cached and shared when
// scenarios override the system's plant. A preset name resolved from
// the runtime registry folds the registered plant's content in, so
// re-registering a preset under the same name yields a different hash
// (built-in presets are compile-time constants and hash by name alone,
// keeping pre-registry hashes stable).
func (c *CoolingSpec) Hash() (string, error) {
	data, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("config: cooling hash: %w", err)
	}
	h := sha256.New()
	h.Write(data)
	if err := writeRegisteredPreset(h, c.Preset); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// writeRegisteredPreset appends the registered plant content for a
// preset name to a hash, if the name is in the runtime registry; absent
// or built-in names append nothing (hash-stable).
func writeRegisteredPreset(h io.Writer, preset string) error {
	if preset == "" {
		return nil
	}
	cfg, ok := cooling.RegisteredPreset(preset)
	if !ok {
		return nil
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		return fmt.Errorf("config: preset hash: %w", err)
	}
	_, err = h.Write(data)
	return err
}

// Topology converts the partition counts to a power.Topology.
func (p *PartitionSpec) Topology() (power.Topology, error) {
	t := power.Topology{
		NodesTotal:      p.NodesTotal,
		NodesPerRack:    p.NodesPerRack,
		NodesPerChassis: p.NodesPerChassis,
		ChassisPerRack:  p.ChassisPerRack,
		SwitchesPerRack: p.SwitchesPerRack,
		RacksPerCDU:     p.RacksPerCDU,
		NumCDUs:         p.NumCDUs,
	}
	return t, t.Validate()
}

// modelBuilds counts BuildModel calls process-wide. It exists so sweep
// tests can assert the per-spec power model is built once and shared
// across scenarios, not rebuilt per worker.
var modelBuilds atomic.Uint64

// ModelBuilds returns how many partition power models have been
// assembled since process start (build-sharing instrumentation).
func ModelBuilds() uint64 { return modelBuilds.Load() }

// BuildModel assembles the power model for one partition. The returned
// model is never mutated by simulations, so callers may share it
// read-only across concurrent runs.
func (p *PartitionSpec) BuildModel() (*power.Model, error) {
	modelBuilds.Add(1)
	topo, err := p.Topology()
	if err != nil {
		return nil, err
	}
	mode, err := modeByName(p.Power.Mode)
	if err != nil {
		return nil, err
	}
	return &power.Model{
		Spec: power.ComponentSpec{
			CPUIdle: p.CPUIdleW, CPUMax: p.CPUMaxW,
			GPUIdle: p.GPUIdleW, GPUMax: p.GPUMaxW,
			RAM: p.RAMW, NVMe: p.NVMeW, NIC: p.NICW,
			Switch: p.SwitchW, CDUPump: p.CDUPumpW,
			GPUsPerNode: p.GPUsPerNode, NICsPerNode: p.NICsPerNode, NVMePerNode: p.NVMePerNode,
		},
		Chain: power.ConversionChain{
			Rect: power.RectifierCurve{
				EtaMax: p.Power.RectEtaMax, LowDroop: p.Power.RectLowDroop,
				HighDroop: p.Power.RectHighDroop, POptW: p.Power.RectPOptW,
				PMaxW: p.Power.RectPMaxW,
			},
			EtaSIVOC:          p.Power.SivocEta,
			EtaDCDistribution: p.Power.DCDistEta,
			RectPerChassis:    p.Power.RectPerChassis,
			Mode:              mode,
		},
		Topo:       topo,
		CoolingEff: p.Power.CoolingEfficiency,
	}, nil
}

// BuildModels assembles every partition's power model.
func (s *SystemSpec) BuildModels() ([]*power.Model, error) {
	models := make([]*power.Model, 0, len(s.Partitions))
	for i := range s.Partitions {
		m, err := s.Partitions[i].BuildModel()
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	return models, nil
}

func modeByName(name string) (power.Mode, error) {
	switch name {
	case "ac-baseline", "":
		return power.ACBaseline, nil
	case "smart-rectifier":
		return power.SmartRectifier, nil
	case "dc380":
		return power.DC380, nil
	default:
		return 0, fmt.Errorf("config: unknown power mode %q", name)
	}
}

// Hash returns the canonical content hash of the spec: the hex SHA-256
// of its JSON encoding, with the content of a runtime-registered cooling
// preset folded in (see CoolingSpec.Hash). Two specs hash equal iff
// every field — and the plant a registered preset name resolves to —
// matches, so the hash keys shared compiled state and content-addressed
// result caches across sweep submissions.
func (s *SystemSpec) Hash() (string, error) {
	data, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("config: hash: %w", err)
	}
	h := sha256.New()
	h.Write(data)
	if err := writeRegisteredPreset(h, s.Cooling.Preset); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Parse decodes and validates a SystemSpec from JSON.
func Parse(data []byte) (*SystemSpec, error) {
	var s SystemSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads a SystemSpec from a JSON file.
func LoadFile(path string) (*SystemSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Save writes the spec as indented JSON.
func (s *SystemSpec) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
