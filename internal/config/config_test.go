package config

import (
	"math"
	"path/filepath"
	"testing"

	"exadigit/internal/cooling"
	"exadigit/internal/power"
)

func TestFrontierSpecValidatesAndMatchesBuiltIn(t *testing.T) {
	s := Frontier()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	models, err := s.BuildModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 {
		t.Fatalf("%d models", len(models))
	}
	// The config-built model must agree with the hand-built one.
	ref := power.NewFrontierModel()
	var got, want power.SystemPower
	models[0].ComputeUniform(1, 1, 9472, &got)
	ref.ComputeUniform(1, 1, 9472, &want)
	if math.Abs(got.TotalW-want.TotalW) > 1 {
		t.Errorf("config model %v W vs built-in %v W", got.TotalW, want.TotalW)
	}
	models[0].ComputeUniform(0, 0, 9472, &got)
	ref.ComputeUniform(0, 0, 9472, &want)
	if math.Abs(got.TotalW-want.TotalW) > 1 {
		t.Errorf("idle: config %v vs built-in %v", got.TotalW, want.TotalW)
	}
}

func TestSetonixLikeMultiPartition(t *testing.T) {
	s := SetonixLike()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	models, err := s.BuildModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("%d partitions, want 2", len(models))
	}
	// CPU partition has no GPUs; its peak node power is CPU-dominated.
	var cpuSP, gpuSP power.SystemPower
	models[0].ComputeUniform(1, 1, models[0].Topo.NodesTotal, &cpuSP)
	models[1].ComputeUniform(1, 1, models[1].Topo.NodesTotal, &gpuSP)
	if cpuSP.Breakdown.GPU != 0 {
		t.Errorf("CPU partition reports GPU power %v", cpuSP.Breakdown.GPU)
	}
	if gpuSP.Breakdown.GPU <= 0 {
		t.Error("GPU partition should draw GPU power")
	}
	// Total system power is the sum over partitions — per-node GPU
	// partition power dominates.
	perNodeCPU := cpuSP.TotalW / float64(models[0].Topo.NodesTotal)
	perNodeGPU := gpuSP.TotalW / float64(models[1].Topo.NodesTotal)
	if perNodeGPU <= perNodeCPU {
		t.Errorf("GPU nodes should draw more: %v vs %v", perNodeGPU, perNodeCPU)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "frontier.json")
	orig := Frontier()
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != "frontier" || len(loaded.Partitions) != 1 {
		t.Errorf("loaded = %+v", loaded)
	}
	if loaded.Partitions[0].NodesTotal != 9472 {
		t.Errorf("nodes = %d", loaded.Partitions[0].NodesTotal)
	}
	if loaded.Cooling.NumCDUs != 25 {
		t.Errorf("cooling CDUs = %d", loaded.Cooling.NumCDUs)
	}
	if loaded.Partitions[0].Power.Mode != "ac-baseline" {
		t.Errorf("mode = %q", loaded.Partitions[0].Power.Mode)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	cases := map[string]func(*SystemSpec){
		"no name":        func(s *SystemSpec) { s.Name = "" },
		"no partitions":  func(s *SystemSpec) { s.Partitions = nil },
		"unnamed part":   func(s *SystemSpec) { s.Partitions[0].Name = "" },
		"bad topology":   func(s *SystemSpec) { s.Partitions[0].ChassisPerRack = 3 },
		"bad sivoc":      func(s *SystemSpec) { s.Partitions[0].Power.SivocEta = 1.5 },
		"bad mode":       func(s *SystemSpec) { s.Partitions[0].Power.Mode = "nuclear" },
		"bad coolingeff": func(s *SystemSpec) { s.Partitions[0].Power.CoolingEfficiency = 0 },
		// The cooling cases clear the preset: a preset spec resolves to
		// its hand-calibrated plant and skips the AutoCSM design checks.
		"no cdus":       func(s *SystemSpec) { s.Cooling.Preset = ""; s.Cooling.NumCDUs = 0 },
		"no heat":       func(s *SystemSpec) { s.Cooling.Preset = ""; s.Cooling.DesignHeatMW = 0 },
		"temp order":    func(s *SystemSpec) { s.Cooling.Preset = ""; s.Cooling.SecSupplyC = s.Cooling.CTSupplyC },
		"wetbulb order": func(s *SystemSpec) { s.Cooling.Preset = ""; s.Cooling.CTSupplyC = s.Cooling.DesignWetBulbC - 1 },
		"no flow":       func(s *SystemSpec) { s.Cooling.Preset = ""; s.Cooling.PrimaryFlowGPM = 0 },
		"no tower flow": func(s *SystemSpec) { s.Cooling.Preset = ""; s.Cooling.TowerFlowGPM = -1 },
		"no towers":     func(s *SystemSpec) { s.Cooling.Preset = ""; s.Cooling.NumTowers = 0 },
		"no pumps":      func(s *SystemSpec) { s.Cooling.Preset = ""; s.Cooling.NumHTWPs = 0 },
		"bad preset":    func(s *SystemSpec) { s.Cooling.Preset = "chiller-9000" },
	}
	for name, mutate := range cases {
		s := Frontier()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
	if _, err := Parse([]byte("{nope")); err == nil {
		t.Error("bad JSON should fail")
	}
	if _, err := Parse([]byte(`{"name":"x"}`)); err == nil {
		t.Error("incomplete spec should fail validation")
	}
}

func TestModeMapping(t *testing.T) {
	s := Frontier()
	s.Partitions[0].Power.Mode = "dc380"
	m, err := s.Partitions[0].BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	if m.Chain.Mode != power.DC380 {
		t.Errorf("mode = %v", m.Chain.Mode)
	}
	s.Partitions[0].Power.Mode = "smart-rectifier"
	m, err = s.Partitions[0].BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	if m.Chain.Mode != power.SmartRectifier {
		t.Errorf("mode = %v", m.Chain.Mode)
	}
	// Empty mode defaults to the baseline.
	s.Partitions[0].Power.Mode = ""
	m, err = s.Partitions[0].BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	if m.Chain.Mode != power.ACBaseline {
		t.Errorf("default mode = %v", m.Chain.Mode)
	}
}

// TestHashFoldsRegisteredPresetContent pins the cache-invalidation
// contract of the runtime preset registry: registering (or replacing) a
// plant under a name a spec references changes the spec's hash, the
// cooling spec's hash, and therefore every cache keyed on them —
// re-registration cannot silently serve stale compiled designs or
// cached results. Built-in preset names keep their pre-registry hashes.
func TestHashFoldsRegisteredPresetContent(t *testing.T) {
	spec := Frontier()
	spec.Cooling.Preset = "hash-probe"

	h0, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	ch0, err := spec.Cooling.Hash()
	if err != nil {
		t.Fatal(err)
	}

	cfgA := cooling.Frontier()
	if err := cooling.RegisterPreset("hash-probe", cfgA); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cooling.UnregisterPreset("hash-probe") })
	h1, _ := spec.Hash()
	ch1, _ := spec.Cooling.Hash()
	if h1 == h0 || ch1 == ch0 {
		t.Fatal("registering a preset did not change the hashes of specs naming it")
	}

	cfgB := cfgA
	cfgB.CTSupplySetC = 23.5
	if err := cooling.RegisterPreset("hash-probe", cfgB); err != nil {
		t.Fatal(err)
	}
	h2, _ := spec.Hash()
	ch2, _ := spec.Cooling.Hash()
	if h2 == h1 || ch2 == ch1 {
		t.Fatal("re-registering a preset did not change the hashes — caches would serve the stale plant")
	}

	// A built-in preset (not in the registry) hashes by name alone, so
	// the default Frontier spec's hash is stable across this test.
	fr := Frontier()
	fh1, _ := fr.Hash()
	fh2, _ := fr.Hash()
	if fh1 != fh2 {
		t.Fatal("built-in preset hash unstable")
	}
}
