// Package control implements the control-system blocks that the paper's
// cooling model reproduces from Frontier's physical plant (§III-C5):
// PID regulators for CDU pump speed and control valves, first-order lags
// and transport delays (the "delay transfer function" coupling the
// primary-pump and cooling-tower loops), hysteresis comparators, rate
// limiters, and the stage-up/stage-down controllers that sequence pumps,
// heat exchangers, and cooling towers.
package control

import "math"

// PID is a proportional-integral-derivative controller with output
// clamping and integrator anti-windup (back-calculation). The derivative
// acts on the measurement, not the error, to avoid setpoint kicks — the
// standard form for plant controllers such as those on Frontier's CDUs.
type PID struct {
	Kp, Ki, Kd   float64
	OutMin       float64
	OutMax       float64
	Tt           float64 // anti-windup tracking time constant; 0 disables
	DirectAction bool    // true: output increases when measurement exceeds setpoint

	integ    float64
	prevMeas float64
	hasPrev  bool
	out      float64
}

// NewPID builds a PID with the given gains and output limits.
func NewPID(kp, ki, kd, outMin, outMax float64) *PID {
	return &PID{Kp: kp, Ki: ki, Kd: kd, OutMin: outMin, OutMax: outMax, Tt: 1}
}

// Reset clears the controller state and presets the output.
func (p *PID) Reset(output float64) {
	p.integ = clamp(output, p.OutMin, p.OutMax)
	p.hasPrev = false
	p.out = p.integ
}

// Output returns the last computed output.
func (p *PID) Output() float64 { return p.out }

// Update advances the controller by dt seconds given the setpoint and the
// measured process variable, returning the clamped output.
func (p *PID) Update(setpoint, measurement, dt float64) float64 {
	if dt <= 0 {
		return p.out
	}
	err := setpoint - measurement
	if p.DirectAction {
		err = -err
	}
	deriv := 0.0
	if p.hasPrev && p.Kd != 0 {
		dm := (measurement - p.prevMeas) / dt
		if p.DirectAction {
			deriv = p.Kd * dm
		} else {
			deriv = -p.Kd * dm
		}
	}
	p.prevMeas = measurement
	p.hasPrev = true

	p.integ += p.Ki * err * dt
	raw := p.Kp*err + p.integ + deriv
	out := clamp(raw, p.OutMin, p.OutMax)
	// Back-calculation anti-windup: bleed the integrator toward the
	// value consistent with the saturated output.
	if p.Tt > 0 && raw != out {
		p.integ += (out - raw) * dt / p.Tt
	}
	p.out = out
	return out
}

// FirstOrderLag is the transfer function 1/(τs+1), discretized with the
// exact exponential step. A zero value passes the input through (τ=0).
type FirstOrderLag struct {
	Tau float64

	y       float64
	started bool
}

// Reset sets the internal state to y.
func (f *FirstOrderLag) Reset(y float64) {
	f.y = y
	f.started = true
}

// Value returns the current filter output without advancing time.
func (f *FirstOrderLag) Value() float64 { return f.y }

// Update advances the lag by dt seconds toward input u and returns the
// filtered value.
func (f *FirstOrderLag) Update(u, dt float64) float64 {
	if !f.started {
		f.y = u
		f.started = true
		return f.y
	}
	if f.Tau <= 0 || dt <= 0 {
		f.y = u
		return f.y
	}
	a := math.Exp(-dt / f.Tau)
	f.y = a*f.y + (1-a)*u
	return f.y
}

// TransportDelay delays its input by a fixed time using a ring buffer
// sampled at a fixed period. It models pipe transport lag between loops.
type TransportDelay struct {
	buf  []float64
	idx  int
	init bool
}

// NewTransportDelay creates a delay of delaySec seconds sampled every
// dtSec seconds (at least one sample).
func NewTransportDelay(delaySec, dtSec float64) *TransportDelay {
	n := int(math.Round(delaySec / dtSec))
	if n < 1 {
		n = 1
	}
	return &TransportDelay{buf: make([]float64, n)}
}

// Update pushes u and returns the value from delaySec ago. Before the
// buffer has filled at least once it returns the first pushed value.
func (d *TransportDelay) Update(u float64) float64 {
	return d.UpdateN(u, 1)
}

// UpdateN pushes u n times — one sample per design sampling period — and
// returns the delayed value after the final push. Callers advancing the
// plant with a coarser step than the delay's design period use it to
// keep the delay line on its design time base (n = step/period) without
// n separate calls; n ≥ len(buf) degenerates to filling the line with u.
func (d *TransportDelay) UpdateN(u float64, n int) float64 {
	if !d.init {
		for i := range d.buf {
			d.buf[i] = u
		}
		d.init = true
	}
	if n < 1 {
		n = 1
	}
	if n >= len(d.buf) {
		var out float64
		if n == len(d.buf) {
			// The oldest retained sample is exactly the one about to be
			// overwritten last; idx is unchanged modulo the buffer.
			out = d.buf[(d.idx+n-1)%len(d.buf)]
		} else {
			out = u
		}
		for i := range d.buf {
			d.buf[i] = u
		}
		d.idx = (d.idx + n) % len(d.buf)
		return out
	}
	var out float64
	for i := 0; i < n; i++ {
		out = d.buf[d.idx]
		d.buf[d.idx] = u
		d.idx = (d.idx + 1) % len(d.buf)
	}
	return out
}

// RateLimiter bounds the slew rate of a signal (units per second), as a
// soft-start on pump speed commands.
type RateLimiter struct {
	RisePerSec float64
	FallPerSec float64

	y       float64
	started bool
}

// Reset presets the limiter state.
func (r *RateLimiter) Reset(y float64) {
	r.y = y
	r.started = true
}

// Update moves the output toward u at most at the configured rates.
func (r *RateLimiter) Update(u, dt float64) float64 {
	if !r.started {
		r.y = u
		r.started = true
		return r.y
	}
	if dt <= 0 {
		return r.y
	}
	delta := u - r.y
	maxRise := r.RisePerSec * dt
	maxFall := r.FallPerSec * dt
	switch {
	case r.RisePerSec > 0 && delta > maxRise:
		r.y += maxRise
	case r.FallPerSec > 0 && delta < -maxFall:
		r.y -= maxFall
	default:
		r.y = u
	}
	return r.y
}

// Value returns the limiter's current output.
func (r *RateLimiter) Value() float64 { return r.y }

// Hysteresis is a two-threshold comparator: output turns on above High
// and off below Low, holding its state in between.
type Hysteresis struct {
	Low, High float64
	on        bool
}

// Update evaluates the comparator for input v.
func (h *Hysteresis) Update(v float64) bool {
	if v >= h.High {
		h.on = true
	} else if v <= h.Low {
		h.on = false
	}
	return h.on
}

// On reports the current comparator state.
func (h *Hysteresis) On() bool { return h.on }

// Stager sequences discrete equipment (pumps, cooling-tower cells, heat
// exchangers) up and down based on a continuous loading signal, with
// minimum dwell times to prevent short-cycling — mirroring Frontier's CEP
// staging logic (§III-C5: "HTWPs are staged up/down depending on the
// relative percent pump speeds of the running pumps").
type Stager struct {
	Min, Max      int     // stage count bounds (Min ≥ 1 for always-on duty)
	UpThreshold   float64 // stage up when signal > UpThreshold for UpDwell
	DownThreshold float64 // stage down when signal < DownThreshold for DownDwell
	UpDwell       float64 // seconds the condition must hold
	DownDwell     float64

	count     int
	upTimer   float64
	downTimer float64
}

// NewStager builds a stager with an initial stage count clamped to bounds.
func NewStager(min, max, initial int, upThr, downThr, upDwell, downDwell float64) *Stager {
	s := &Stager{
		Min: min, Max: max,
		UpThreshold: upThr, DownThreshold: downThr,
		UpDwell: upDwell, DownDwell: downDwell,
	}
	s.count = clampInt(initial, min, max)
	return s
}

// Count returns the current stage count.
func (s *Stager) Count() int { return s.count }

// Update advances the stager by dt seconds given the loading signal and
// returns the (possibly changed) stage count.
func (s *Stager) Update(signal, dt float64) int {
	if signal > s.UpThreshold && s.count < s.Max {
		s.upTimer += dt
		s.downTimer = 0
		if s.upTimer >= s.UpDwell {
			s.count++
			s.upTimer = 0
		}
	} else if signal < s.DownThreshold && s.count > s.Min {
		s.downTimer += dt
		s.upTimer = 0
		if s.downTimer >= s.DownDwell {
			s.count--
			s.downTimer = 0
		}
	} else {
		s.upTimer = 0
		s.downTimer = 0
	}
	return s.count
}

// Pending reports whether a stage change is being dwelled toward: the
// loading signal has been beyond a threshold for part of its dwell time.
// A quiescent plant must not freeze a stager mid-dwell — under a held
// (constant) signal the dwell would elapse and the stage count change.
func (s *Stager) Pending() bool { return s.upTimer > 0 || s.downTimer > 0 }

// Force sets the stage count directly (clamped), clearing dwell timers.
func (s *Stager) Force(n int) {
	s.count = clampInt(n, s.Min, s.Max)
	s.upTimer = 0
	s.downTimer = 0
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
