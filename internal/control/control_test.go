package control

import (
	"math"
	"testing"
	"testing/quick"
)

// firstOrderPlant integrates y' = (u - y)/tau, a generic thermal plant.
type firstOrderPlant struct {
	y, tau float64
}

func (p *firstOrderPlant) step(u, dt float64) float64 {
	p.y += dt * (u - p.y) / p.tau
	return p.y
}

func TestPIDConvergesOnFirstOrderPlant(t *testing.T) {
	pid := NewPID(2.0, 0.5, 0.0, 0, 100)
	plant := &firstOrderPlant{y: 0, tau: 5}
	dt := 0.1
	var u float64
	for i := 0; i < 5000; i++ {
		u = pid.Update(32, plant.y, dt)
		plant.step(u, dt)
	}
	if math.Abs(plant.y-32) > 0.05 {
		t.Errorf("plant settled at %v, want 32", plant.y)
	}
	if u < 0 || u > 100 {
		t.Errorf("output %v outside limits", u)
	}
}

func TestPIDOutputClamped(t *testing.T) {
	pid := NewPID(100, 10, 0, 0, 1)
	out := pid.Update(1000, 0, 1)
	if out != 1 {
		t.Errorf("output %v, want clamped to 1", out)
	}
	out = pid.Update(-1000, 0, 1)
	if out != 0 {
		t.Errorf("output %v, want clamped to 0", out)
	}
}

func TestPIDAntiWindup(t *testing.T) {
	// Drive into saturation, then reverse; anti-windup recovers quickly.
	mk := func(tt float64) int {
		pid := NewPID(1, 1, 0, -1, 1)
		pid.Tt = tt
		for i := 0; i < 100; i++ {
			pid.Update(10, 0, 0.1) // saturated high for 10 s
		}
		// Now ask for the opposite extreme and count steps to reach it.
		for i := 0; i < 10000; i++ {
			if pid.Update(-10, 0, 0.1) <= -1+1e-9 {
				return i
			}
		}
		return 10000
	}
	with := mk(0.5)
	without := mk(0) // anti-windup disabled: integrator must unwind
	if with >= without {
		t.Errorf("anti-windup (%d steps) should recover faster than windup (%d steps)", with, without)
	}
}

func TestPIDDerivativeOnMeasurement(t *testing.T) {
	pid := NewPID(0, 0, 1, -100, 100)
	pid.Update(0, 0, 1)
	// A setpoint jump with constant measurement must produce no derivative kick.
	out := pid.Update(50, 0, 1)
	if out != 0 {
		t.Errorf("derivative kick on setpoint change: %v", out)
	}
	// A measurement ramp of +2/s produces -Kd*2.
	out = pid.Update(50, 2, 1)
	if math.Abs(out-(-2)) > 1e-12 {
		t.Errorf("derivative on measurement = %v, want -2", out)
	}
}

func TestPIDDirectAction(t *testing.T) {
	// Direct action: measurement above setpoint raises the output
	// (e.g. hotter water → faster fan).
	pid := NewPID(1, 0, 0, -10, 10)
	pid.DirectAction = true
	out := pid.Update(20, 25, 1)
	if out <= 0 {
		t.Errorf("direct-acting output = %v, want positive", out)
	}
}

func TestPIDResetAndNoTimeStep(t *testing.T) {
	pid := NewPID(1, 1, 0, 0, 10)
	pid.Update(5, 0, 1)
	before := pid.Output()
	if got := pid.Update(5, 0, 0); got != before {
		t.Errorf("zero dt must hold output: %v != %v", got, before)
	}
	pid.Reset(3)
	if pid.Output() != 3 {
		t.Errorf("Reset output = %v", pid.Output())
	}
	pid.Reset(99) // clamped to OutMax
	if pid.Output() != 10 {
		t.Errorf("Reset should clamp: %v", pid.Output())
	}
}

func TestFirstOrderLagStepResponse(t *testing.T) {
	lag := &FirstOrderLag{Tau: 10}
	lag.Reset(0)
	var y float64
	for i := 0; i < 100; i++ { // 10 s = one time constant at dt=0.1
		y = lag.Update(1, 0.1)
	}
	want := 1 - math.Exp(-1)
	if math.Abs(y-want) > 1e-9 {
		t.Errorf("lag after 1τ = %v, want %v", y, want)
	}
}

func TestFirstOrderLagPassThrough(t *testing.T) {
	lag := &FirstOrderLag{Tau: 0}
	lag.Reset(5)
	if got := lag.Update(42, 1); got != 42 {
		t.Errorf("zero tau should pass through, got %v", got)
	}
	fresh := &FirstOrderLag{Tau: 100}
	if got := fresh.Update(7, 1); got != 7 {
		t.Errorf("first sample should initialize to input, got %v", got)
	}
	if fresh.Value() != 7 {
		t.Errorf("Value = %v", fresh.Value())
	}
}

func TestTransportDelayExact(t *testing.T) {
	d := NewTransportDelay(3, 1) // 3-sample delay
	inputs := []float64{10, 20, 30, 40, 50, 60}
	want := []float64{10, 10, 10, 10, 20, 30}
	for i, u := range inputs {
		if got := d.Update(u); got != want[i] {
			t.Errorf("step %d: got %v, want %v", i, got, want[i])
		}
	}
}

func TestTransportDelayMinimumOneSample(t *testing.T) {
	d := NewTransportDelay(0, 1)
	d.Update(1)
	if got := d.Update(2); got != 1 {
		t.Errorf("minimum delay should be one sample, got %v", got)
	}
}

func TestRateLimiter(t *testing.T) {
	r := &RateLimiter{RisePerSec: 10, FallPerSec: 5}
	r.Reset(0)
	if got := r.Update(100, 1); got != 10 {
		t.Errorf("rise limited to 10, got %v", got)
	}
	if got := r.Update(-100, 1); got != 5 {
		t.Errorf("fall limited to 5/s from 10, got %v", got)
	}
	if got := r.Update(5.5, 1); got != 5.5 {
		t.Errorf("within slew limits should track input, got %v", got)
	}
	if r.Value() != 5.5 {
		t.Errorf("Value = %v", r.Value())
	}
	fresh := &RateLimiter{RisePerSec: 1}
	if got := fresh.Update(50, 1); got != 50 {
		t.Errorf("first sample initializes, got %v", got)
	}
}

func TestHysteresis(t *testing.T) {
	h := &Hysteresis{Low: 10, High: 20}
	if h.Update(15) {
		t.Error("should start off in the dead band")
	}
	if !h.Update(25) {
		t.Error("should turn on above High")
	}
	if !h.Update(15) {
		t.Error("should hold on inside the band")
	}
	if h.Update(5) {
		t.Error("should turn off below Low")
	}
	if h.On() {
		t.Error("On() should report false")
	}
}

func TestStagerUpDownWithDwell(t *testing.T) {
	s := NewStager(1, 4, 1, 0.9, 0.4, 5, 10)
	// Signal above the up-threshold must persist for 5 s before staging.
	for i := 0; i < 4; i++ {
		s.Update(0.95, 1)
	}
	if s.Count() != 1 {
		t.Errorf("staged up before dwell elapsed: %d", s.Count())
	}
	s.Update(0.95, 1)
	if s.Count() != 2 {
		t.Errorf("should stage up after 5 s, got %d", s.Count())
	}
	// A dip below threshold resets the timer.
	for i := 0; i < 4; i++ {
		s.Update(0.95, 1)
	}
	s.Update(0.5, 1) // inside dead band: timers reset
	for i := 0; i < 4; i++ {
		s.Update(0.95, 1)
	}
	if s.Count() != 2 {
		t.Errorf("dwell should have reset, got %d", s.Count())
	}
	// Stage down requires 10 s below 0.4.
	for i := 0; i < 10; i++ {
		s.Update(0.2, 1)
	}
	if s.Count() != 1 {
		t.Errorf("should stage down after 10 s, got %d", s.Count())
	}
}

func TestStagerBounds(t *testing.T) {
	s := NewStager(1, 3, 99, 0.9, 0.4, 0, 0)
	if s.Count() != 3 {
		t.Errorf("initial clamped to max, got %d", s.Count())
	}
	for i := 0; i < 100; i++ {
		s.Update(1.0, 1)
	}
	if s.Count() != 3 {
		t.Errorf("must not exceed max, got %d", s.Count())
	}
	for i := 0; i < 100; i++ {
		s.Update(0.0, 1)
	}
	if s.Count() != 1 {
		t.Errorf("must not fall below min, got %d", s.Count())
	}
	s.Force(2)
	if s.Count() != 2 {
		t.Errorf("Force failed, got %d", s.Count())
	}
	s.Force(-5)
	if s.Count() != 1 {
		t.Errorf("Force should clamp, got %d", s.Count())
	}
}

func TestStagerZeroDwellImmediate(t *testing.T) {
	s := NewStager(1, 4, 1, 0.9, 0.4, 0, 0)
	s.Update(0.95, 1)
	if s.Count() != 2 {
		t.Errorf("zero dwell should stage immediately, got %d", s.Count())
	}
}

func TestPIDOutputAlwaysBoundedProperty(t *testing.T) {
	// Whatever the setpoint/measurement sequence, the output never
	// leaves [OutMin, OutMax] — the actuator-safety invariant every
	// plant controller relies on.
	f := func(setpoints, measurements []float64) bool {
		pid := NewPID(3, 0.7, 0.2, -10, 10)
		n := len(setpoints)
		if len(measurements) < n {
			n = len(measurements)
		}
		for i := 0; i < n; i++ {
			sp := setpoints[i]
			pv := measurements[i]
			if math.IsNaN(sp) || math.IsInf(sp, 0) || math.IsNaN(pv) || math.IsInf(pv, 0) {
				continue
			}
			out := pid.Update(math.Mod(sp, 1e6), math.Mod(pv, 1e6), 0.5)
			if out < -10-1e-12 || out > 10+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStagerCountAlwaysInBoundsProperty(t *testing.T) {
	f := func(signals []float64) bool {
		s := NewStager(2, 7, 3, 0.9, 0.3, 2, 2)
		for _, sig := range signals {
			if math.IsNaN(sig) {
				continue
			}
			c := s.Update(math.Mod(sig, 2), 1)
			if c < 2 || c > 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransportDelayUpdateNMatchesRepeatedUpdate(t *testing.T) {
	for _, n := range []int{1, 2, 5, 11, 12, 13, 40} {
		a := NewTransportDelay(12, 1)
		b := NewTransportDelay(12, 1)
		// Establish some history first.
		for i := 0; i < 7; i++ {
			a.Update(float64(i))
			b.Update(float64(i))
		}
		var want float64
		for i := 0; i < n; i++ {
			want = a.Update(99)
		}
		if got := b.UpdateN(99, n); got != want {
			t.Errorf("n=%d: UpdateN = %v, %d×Update = %v", n, got, n, want)
		}
	}
}

func TestTransportDelayUpdateNClampsNonPositive(t *testing.T) {
	d := NewTransportDelay(5, 1)
	d.Update(1)
	if got := d.UpdateN(2, 0); got != 1 {
		t.Errorf("UpdateN(_, 0) = %v, want one-sample push behavior", got)
	}
}

func TestStagerPending(t *testing.T) {
	s := NewStager(1, 4, 2, 0.9, 0.3, 10, 10)
	if s.Pending() {
		t.Error("fresh stager should not be pending")
	}
	s.Update(0.95, 1) // start dwelling toward a stage-up
	if !s.Pending() {
		t.Error("mid-dwell stager must report pending")
	}
	s.Update(0.5, 1) // back inside the deadband: timers reset
	if s.Pending() {
		t.Error("deadband signal should clear pending")
	}
	s.Update(0.1, 4)
	if !s.Pending() {
		t.Error("dwelling toward stage-down must report pending")
	}
	s.Update(0.1, 10) // dwell elapses, stage change fires, timer resets
	if s.Pending() {
		t.Error("timer should reset after the stage change")
	}
}
