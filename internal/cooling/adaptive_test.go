package cooling

import (
	"math"
	"testing"
)

func adaptiveFrontier() Config {
	cfg := Frontier()
	cfg.Solver = SolverAdaptive
	return cfg
}

func TestSolverValidation(t *testing.T) {
	bad := Frontier()
	bad.Solver = "bogus"
	if bad.Validate() == nil {
		t.Error("unknown solver must fail validation")
	}
	bad = Frontier()
	bad.Solver = SolverAdaptive
	bad.RelTol = -1
	if bad.Validate() == nil {
		t.Error("negative tolerance must fail validation")
	}
	good := adaptiveFrontier()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveMatchesFixedSteadyState pins the adaptive solver's
// accuracy on the settle-then-run trajectory: both solvers driven by the
// same constant inputs land on the same steady state.
func TestAdaptiveMatchesFixedSteadyState(t *testing.T) {
	in := typicalInputs()
	fixed := settledPlant(t, in)

	ap, err := New(adaptiveFrontier())
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.SettleToSteadyState(in, 4*3600); err != nil {
		t.Fatal(err)
	}

	pairs := [][2]float64{
		{fixed.htwSupply.T, ap.htwSupply.T},
		{fixed.htwReturn.T, ap.htwReturn.T},
		{fixed.ctwSupply.T, ap.ctwSupply.T},
		{fixed.ctwReturn.T, ap.ctwReturn.T},
	}
	for i, pr := range pairs {
		if math.Abs(pr[0]-pr[1]) > 0.1 {
			t.Errorf("loop temperature %d: fixed %.3f °C vs adaptive %.3f °C", i, pr[0], pr[1])
		}
	}
	if f, a := fixed.PUE(), ap.PUE(); math.Abs(f-a) > 0.005 {
		t.Errorf("PUE: fixed %.4f vs adaptive %.4f", f, a)
	}
}

// TestQuiescentHold pins the fast path: a settled plant under unchanged
// inputs fast-forwards (holds) instead of integrating, and the held
// state does not move.
func TestQuiescentHold(t *testing.T) {
	in := typicalInputs()
	cfg := adaptiveFrontier()
	// A large budget so no re-sync interrupts the observed hold chain.
	cfg.MaxHoldS = 4 * 3600
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SettleToSteadyState(in, 6*3600); err != nil {
		t.Fatal(err)
	}
	// Drive repeated 15 s coupling steps at the settled point until the
	// quiescence detector arms, then require holds.
	for i := 0; i < 80 && !p.Quiescent(); i++ {
		if err := p.Step(15, in); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Quiescent() {
		t.Fatal("plant did not settle under constant inputs")
	}
	before := p.SolverStats()
	tBefore := p.Time()
	supply := p.htwSupply.T
	for i := 0; i < 10; i++ {
		if err := p.Step(15, in); err != nil {
			t.Fatal(err)
		}
	}
	after := p.SolverStats()
	if after.Holds-before.Holds < 8 {
		t.Errorf("expected ≥8 holds over 10 settled steps, got %d", after.Holds-before.Holds)
	}
	if after.QuiescentSec <= before.QuiescentSec {
		t.Error("quiescent seconds did not advance")
	}
	if p.htwSupply.T != supply {
		t.Errorf("held state moved: %.6f → %.6f", supply, p.htwSupply.T)
	}
	if p.Time()-tBefore != 150 {
		t.Errorf("held plant time advanced %.1f s, want 150", p.Time()-tBefore)
	}
	if f := after.QuiescentFraction(); f <= 0 || f >= 1 {
		t.Errorf("quiescent fraction %v out of (0,1)", f)
	}
}

// TestHoldBreaksOnInputStep pins re-entry into integration: a heat step
// beyond the hold tolerance ends the hold chain and the plant responds.
func TestHoldBreaksOnInputStep(t *testing.T) {
	in := typicalInputs()
	p, err := New(adaptiveFrontier())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SettleToSteadyState(in, 6*3600); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80 && !p.Quiescent(); i++ {
		if err := p.Step(15, in); err != nil {
			t.Fatal(err)
		}
	}
	if !p.CanCoast(in.CDUHeatW) {
		t.Fatal("settled plant should report coastable under unchanged heat")
	}
	if p.CoastWindowS() <= 0 {
		t.Error("adaptive plant must expose a positive coast window")
	}

	bumped := typicalInputs()
	for i := range bumped.CDUHeatW {
		bumped.CDUHeatW[i] *= 1.15
	}
	if p.CanCoast(bumped.CDUHeatW) {
		t.Error("15 % heat step must not be coastable")
	}
	before := p.SolverStats()
	supply := p.htwReturn.T
	for i := 0; i < 40; i++ {
		if err := p.Step(15, bumped); err != nil {
			t.Fatal(err)
		}
	}
	after := p.SolverStats()
	if after.ControlSteps == before.ControlSteps {
		t.Error("heat step did not trigger real integration")
	}
	if math.Abs(p.htwReturn.T-supply) < 0.2 {
		t.Errorf("return temperature did not respond to a 15%% heat step (Δ=%.3f)", p.htwReturn.T-supply)
	}
}

// TestHoldBudgetForcesResync pins the drift bound: holds cannot chain
// past MaxHoldS without a real integration in between.
func TestHoldBudgetForcesResync(t *testing.T) {
	cfg := adaptiveFrontier()
	cfg.MaxHoldS = 60
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := typicalInputs()
	if err := p.SettleToSteadyState(in, 6*3600); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80 && !p.Quiescent(); i++ {
		if err := p.Step(15, in); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Quiescent() {
		t.Fatal("plant did not settle")
	}
	before := p.SolverStats()
	for i := 0; i < 20; i++ {
		if err := p.Step(15, in); err != nil {
			t.Fatal(err)
		}
	}
	after := p.SolverStats()
	// 20 steps × 15 s = 300 s with a 60 s budget: at least 4 re-syncs.
	if after.IntegratedSec-before.IntegratedSec < 4*15 {
		t.Errorf("hold budget not enforced: only %.0f s integrated over 300 s",
			after.IntegratedSec-before.IntegratedSec)
	}
	if after.Holds == before.Holds {
		t.Error("expected holds between re-syncs")
	}
}

// TestFixedSolverReportsNoQuiescence pins the reference mode: the
// fixed-step solver never holds or coasts.
func TestFixedSolverReportsNoQuiescence(t *testing.T) {
	in := typicalInputs()
	p := settledPlant(t, in)
	for i := 0; i < 5; i++ {
		if err := p.Step(15, in); err != nil {
			t.Fatal(err)
		}
	}
	st := p.SolverStats()
	if st.Holds != 0 || st.QuiescentSec != 0 || st.Accepted != 0 {
		t.Errorf("fixed solver reported adaptive work: %+v", st)
	}
	if st.ControlSteps == 0 || st.IntegratedSec == 0 {
		t.Errorf("fixed solver must account control steps: %+v", st)
	}
	if p.Quiescent() || p.CanCoast(in.CDUHeatW) || p.CoastWindowS() != 0 {
		t.Error("fixed solver must never report quiescence or coastability")
	}
}
