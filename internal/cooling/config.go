// Package cooling implements the transient thermo-fluid model of
// Frontier's liquid cooling system and Central Energy Plant (§III-C,
// Fig. 5): 25 CDU-rack secondary loops, the primary high-temperature-
// water (HTW) loop with four HTWPs and five intermediate heat exchangers
// (EHX1-5), and the cooling-tower water (CTW) loop with four CTWPs and
// five towers of four cells each. The paper builds this model in
// Modelica/Dymola and exports it as an FMU; here the same lumped
// component network (volumes, quadratic resistances, pump curves, ε-NTU
// exchangers, PID + staging control) is solved natively in Go on the
// internal/ode, internal/hydro, and internal/thermal substrates.
//
// Inputs per 15 s step: heat extracted per CDU plus the outdoor wet-bulb
// temperature; outputs: exactly 317 values (§III-C4), mirroring the
// paper's FMU contract.
package cooling

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"exadigit/internal/hydro"
	"exadigit/internal/thermal"
)

// Config holds every plant design parameter. The Frontier values are
// engineering estimates consistent with the quantities the paper reports
// (CT loop ≈9000-10000 gpm, primary loop ≈5000-6000 gpm, CDU pump
// ≈8.7 kW) — the real HPE/ORNL datasheets are not public.
type Config struct {
	NumCDUs int
	// NumFanChannels is the number of per-fan output channels in the
	// FMU contract (§III-C4 lists "the 16 CT fans" among the outputs).
	NumFanChannels int
	NumTowers      int // 5 towers...
	CellsPerTower  int // ...of 4 cells each (20 independent cells)
	NumHTWPs       int
	NumCTWPs       int
	NumEHX         int

	// Secondary (CDU-rack) loop.
	SecSupplySetC  float64 // secondary supply temperature setpoint, °C
	SecDPSetPa     float64 // CDU loop differential-pressure setpoint, Pa
	SecPump        hydro.PumpCurve
	SecLoopK       float64 // rack-loop resistance, Pa/(m³/s)²
	SecVolumeKg    float64 // water mass per secondary volume (two per CDU)
	CDUHex         thermal.HeatExchanger
	PrimValveDPPa  float64 // design drop across a CDU primary valve
	PrimBranchQ    float64 // design primary flow per CDU, m³/s
	PrimValveRange float64 // valve rangeability

	// Primary (HTW) loop.
	HTWPump        hydro.PumpCurve
	HTWHeaderSetPa float64 // header differential-pressure setpoint
	HTWLoopK       float64 // fixed piping resistance, Pa/(m³/s)²
	HTWVolumeKg    float64 // water mass per primary volume
	EHX            thermal.HeatExchanger

	// Cooling-tower (CTW) loop.
	CTWPump        hydro.PumpCurve
	CTWHeaderSetPa float64 // CT supply header pressure setpoint (gauge)
	CTWLoopK       float64
	CTWVolumeKg    float64
	Tower          thermal.CoolingTower
	CTSupplySetC   float64 // tower leaving-water temperature setpoint
	StaticPressPa  float64 // loop static fill pressure (gauge)

	// Staging thresholds (fractions of pump speed / fan speed).
	StageUpSpeed    float64
	StageDownSpeed  float64
	StageUpDwellS   float64
	StageDownDwellS float64
	// CTHTWSGradient is the |dT/dt| of HTW supply (°C/s) above which the
	// tower staging signal is boosted (§III-C5: CTs staged on header
	// pressure and the HTWS temperature gradient).
	CTHTWSGradient float64
	// LoopDelayS is the transport delay of the delay transfer function
	// coupling the primary-pump and cooling-tower loops.
	LoopDelayS float64

	// ControlDtS is the controller/hydraulics update period; the thermal
	// ODE is integrated with RK4 between updates.
	ControlDtS float64

	// Solver selects the thermal integration scheme between controller
	// updates: "" or SolverRK4 keeps the fixed-step classic RK4 reference
	// (bit-reproducible run to run); SolverAdaptive switches to the
	// error-controlled Dormand–Prince stepper with the quiescence fast
	// path (equilibrium holds and tiered control periods).
	Solver string
	// RelTol and AbsTol are the adaptive stepper's mixed error
	// tolerances; zero keeps the defaults (1e-4 relative, 1e-3 °C
	// absolute). Ignored under the fixed-step solver.
	RelTol float64
	AbsTol float64
	// QuiesceRateCps is the maximum state movement rate (°C/s for the
	// thermal states, actuator fraction/s for pump and fan commands)
	// below which the plant counts as settled (default 2e-3 — above the
	// control system's intrinsic millikelvin limit cycle, well below any
	// genuine load transient). Ignored under the fixed-step solver.
	QuiesceRateCps float64
	// HeatTolFrac is the per-CDU heat-input relative drift tolerated
	// during an equilibrium hold, measured against the inputs at the last
	// real integration so drift cannot compound (default 0.01).
	HeatTolFrac float64
	// WetBulbTolC is the wet-bulb drift tolerated during a hold
	// (default 0.25 °C).
	WetBulbTolC float64
	// MaxHoldS bounds how long the plant may fast-forward before a real
	// integration re-synchronizes it — also the window the simulation
	// layer may coast across cooling boundaries (default 900 s).
	MaxHoldS float64
}

// Solver names accepted by Config.Solver and config.CoolingSpec.Solver.
const (
	// SolverRK4 is the fixed-step classic RK4 reference ("" selects it
	// too): every control period costs the same work and repeated runs
	// are bit-identical — the mode validation goldens pin.
	SolverRK4 = "rk4"
	// SolverAdaptive is the error-controlled Dormand–Prince stepper with
	// steady-state detection: quiet stretches fast-forward instead of
	// integrating, making cooled days nearly as cheap as uncooled ones.
	SolverAdaptive = "adaptive"
)

// presets names the built-in hand-calibrated plant configurations. A
// preset is the escape hatch from AutoCSM synthesis: a
// config.CoolingSpec naming one resolves to the calibrated Config
// verbatim, so the default Frontier spec cools with exactly the plant
// the paper's validation was run against (bit-identical, not
// AutoCSM-approximated).
var presets = map[string]func() Config{
	"frontier": Frontier,
}

// registered holds presets installed at runtime (RegisterPreset,
// RegisterPresetsFromJSON). Registered presets are resolved BEFORE the
// built-ins, so a deployment can ship a recalibrated "frontier" plant as
// data without a rebuild.
var (
	registeredMu sync.RWMutex
	registered   = map[string]Config{}
)

// RegisterPreset installs (or replaces) a named plant configuration in
// the runtime preset registry. The config is validated first; a
// registered name shadows a built-in of the same name.
func RegisterPreset(name string, cfg Config) error {
	if name == "" {
		return fmt.Errorf("cooling: preset name required")
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("cooling: preset %q: %w", name, err)
	}
	registeredMu.Lock()
	registered[name] = cfg
	registeredMu.Unlock()
	return nil
}

// RegisterPresetsFromJSON parses a {"name": {...Config...}} document and
// registers every plant in it, returning the registered names (sorted).
// This is the deployment path for calibrated plants: ship the JSON next
// to the binary and load it at startup (exadigit serve -presets), no
// rebuild required. Each config is validated; the first invalid entry
// aborts the whole load with nothing registered.
func RegisterPresetsFromJSON(data []byte) ([]string, error) {
	var doc map[string]Config
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("cooling: preset JSON: %w", err)
	}
	names := make([]string, 0, len(doc))
	for name, cfg := range doc {
		if name == "" {
			return nil, fmt.Errorf("cooling: preset JSON: empty preset name")
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("cooling: preset %q: %w", name, err)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	registeredMu.Lock()
	for name, cfg := range doc {
		registered[name] = cfg
	}
	registeredMu.Unlock()
	return names, nil
}

// RegisterPresetsFromFile loads a preset registry JSON file (see
// RegisterPresetsFromJSON).
func RegisterPresetsFromFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cooling: preset file: %w", err)
	}
	return RegisterPresetsFromJSON(data)
}

// UnregisterPreset removes a runtime-registered preset; built-in
// presets are unaffected (a shadowed built-in becomes visible again).
func UnregisterPreset(name string) {
	registeredMu.Lock()
	delete(registered, name)
	registeredMu.Unlock()
}

// RegisteredPreset resolves a name from the runtime registry only
// (built-ins excluded). Spec hashing folds the registered content into
// preset-name hashes, so re-registering a plant under the same name
// invalidates every cache keyed on a spec that names it.
func RegisteredPreset(name string) (Config, bool) {
	registeredMu.RLock()
	defer registeredMu.RUnlock()
	cfg, ok := registered[name]
	return cfg, ok
}

// Preset resolves a plant configuration by name: runtime-registered
// presets first (the JSON-loadable registry), then the built-in
// hand-calibrated plants.
func Preset(name string) (Config, bool) {
	registeredMu.RLock()
	cfg, ok := registered[name]
	registeredMu.RUnlock()
	if ok {
		return cfg, true
	}
	if f, ok := presets[name]; ok {
		return f(), true
	}
	return Config{}, false
}

// PresetNames lists the known plant names — built-ins plus the runtime
// registry — sorted and deduplicated.
func PresetNames() []string {
	seen := map[string]bool{}
	var names []string
	registeredMu.RLock()
	for n := range registered {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	registeredMu.RUnlock()
	for n := range presets {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Frontier returns the full-scale plant configuration.
func Frontier() Config {
	return Config{
		NumCDUs:        25,
		NumFanChannels: 16,
		NumTowers:      5,
		CellsPerTower:  4,
		NumHTWPs:       4,
		NumCTWPs:       4,
		NumEHX:         5,

		SecSupplySetC: 32.0,
		SecDPSetPa:    180e3,
		// CDU pump pair (modeled as one unit): ≈8.7 kW at ≈0.029 m³/s
		// (460 gpm) and ≈225 kPa (Table I: CDU avg 8.7 kW).
		SecPump: hydro.PumpCurve{
			H0: 340e3, H2: (340e3 - 225e3) / (0.029 * 0.029),
			QRated: 0.029, Eta: 0.75, PIdle: 3000,
		},
		SecLoopK:       180e3 / (0.029 * 0.029),
		SecVolumeKg:    600,
		CDUHex:         thermal.HeatExchanger{UANominal: 200e3, MdotHotN: 29, MdotColdN: 16},
		PrimValveDPPa:  19e3, // oversized valve: full-open drop at design flow
		PrimBranchQ:    0.016,
		PrimValveRange: 40,

		// HTWP: ~0.097 m³/s (1540 gpm) each at ~320 kPa; the staged bank
		// delivers ≈5700-6300 gpm total at the design point.
		HTWPump:        hydro.NewPumpCurve(480e3, 0.097, 320e3, 0.80),
		HTWHeaderSetPa: 140e3,
		HTWLoopK:       4.9e5,
		HTWVolumeKg:    25000,
		EHX:            thermal.HeatExchanger{UANominal: 900e3, MdotHotN: 71, MdotColdN: 119},

		// CTWP: ~0.16 m³/s (2540 gpm) each at ~260 kPa; four staged give
		// the paper's 9000-10000 gpm tower-loop flow.
		CTWPump:        hydro.NewPumpCurve(390e3, 0.16, 260e3, 0.80),
		CTWHeaderSetPa: 340e3,
		CTWLoopK:       5.6e5,
		CTWVolumeKg:    60000,
		Tower: thermal.CoolingTower{
			EpsNominal:  0.82,
			MdotNominal: 30, // per cell at design (≈480 gpm)
			FanExp:      0.4,
			LoadExp:     0.35,
			FanPowerMax: 30e3,
		},
		CTSupplySetC:  22.0,
		StaticPressPa: 170e3,

		StageUpSpeed:    0.92,
		StageDownSpeed:  0.42,
		StageUpDwellS:   120,
		StageDownDwellS: 600,
		CTHTWSGradient:  0.002,
		LoopDelayS:      120,

		ControlDtS: 1.0,
	}
}

// Validate checks structural consistency.
func (c Config) Validate() error {
	if c.NumCDUs <= 0 {
		return fmt.Errorf("cooling: NumCDUs must be positive")
	}
	if c.NumTowers <= 0 || c.CellsPerTower <= 0 {
		return fmt.Errorf("cooling: tower counts must be positive")
	}
	if c.NumFanChannels > c.NumTowers*c.CellsPerTower {
		return fmt.Errorf("cooling: %d fan channels exceed %d cells",
			c.NumFanChannels, c.NumTowers*c.CellsPerTower)
	}
	if c.NumHTWPs <= 0 || c.NumCTWPs <= 0 || c.NumEHX <= 0 {
		return fmt.Errorf("cooling: pump/EHX counts must be positive")
	}
	if c.ControlDtS <= 0 {
		return fmt.Errorf("cooling: ControlDtS must be positive")
	}
	if c.SecVolumeKg <= 0 || c.HTWVolumeKg <= 0 || c.CTWVolumeKg <= 0 {
		return fmt.Errorf("cooling: volumes must be positive")
	}
	switch c.Solver {
	case "", SolverRK4, SolverAdaptive:
	default:
		return fmt.Errorf("cooling: unknown solver %q (want %q or %q)",
			c.Solver, SolverRK4, SolverAdaptive)
	}
	if c.RelTol < 0 || c.AbsTol < 0 || c.QuiesceRateCps < 0 ||
		c.HeatTolFrac < 0 || c.WetBulbTolC < 0 || c.MaxHoldS < 0 {
		return fmt.Errorf("cooling: solver tolerances must be non-negative")
	}
	return nil
}

// TotalCells returns the number of independent tower cells.
func (c Config) TotalCells() int { return c.NumTowers * c.CellsPerTower }
