package cooling

import (
	"math"
	"testing"

	"exadigit/internal/units"
)

// typicalInputs returns a 17 MW-ish operating point: the Table IV average
// power (16.9 MW) × 0.945 cooling efficiency spread over 25 CDUs.
func typicalInputs() Inputs {
	heat := make([]float64, 25)
	for i := range heat {
		heat[i] = 16.0e6 / 25
	}
	return Inputs{CDUHeatW: heat, WetBulbC: 20, ITPowerW: 16.9e6}
}

func settledPlant(t *testing.T, in Inputs) *Plant {
	t.Helper()
	p, err := New(Frontier())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SettleToSteadyState(in, 4*3600); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	if err := Frontier().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Frontier()
	bad.NumCDUs = 0
	if bad.Validate() == nil {
		t.Error("zero CDUs should fail")
	}
	bad = Frontier()
	bad.NumFanChannels = 99
	if bad.Validate() == nil {
		t.Error("more fan channels than cells should fail")
	}
	bad = Frontier()
	bad.ControlDtS = 0
	if bad.Validate() == nil {
		t.Error("zero control period should fail")
	}
	bad = Frontier()
	bad.HTWVolumeKg = -1
	if bad.Validate() == nil {
		t.Error("negative volume should fail")
	}
	if _, err := New(bad); err == nil {
		t.Error("New must reject invalid config")
	}
}

func TestStepInputValidation(t *testing.T) {
	p, err := New(Frontier())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Step(15, Inputs{CDUHeatW: make([]float64, 3)}); err == nil {
		t.Error("wrong CDU count should fail")
	}
	heat := make([]float64, 25)
	heat[3] = -5
	if err := p.Step(15, Inputs{CDUHeatW: heat}); err == nil {
		t.Error("negative heat should fail")
	}
	heat[3] = math.NaN()
	if err := p.Step(15, Inputs{CDUHeatW: heat}); err == nil {
		t.Error("NaN heat should fail")
	}
}

func TestSteadyStateEnergyBalance(t *testing.T) {
	in := typicalInputs()
	p := settledPlant(t, in)
	heatIn := p.TotalHeatInW()
	rejected := p.TowerRejectionW()
	if math.Abs(rejected-heatIn)/heatIn > 0.05 {
		t.Errorf("towers reject %v MW of %v MW injected (>5%% imbalance)",
			rejected/1e6, heatIn/1e6)
	}
}

func TestSteadyStateTemperaturesSane(t *testing.T) {
	in := typicalInputs()
	p := settledPlant(t, in)
	o := p.Snapshot()
	// Secondary supply should be held near the 32 °C setpoint.
	for i, c := range o.CDUs {
		if math.Abs(c.SecSupplyTempC-32) > 2.5 {
			t.Errorf("CDU %d secondary supply %v °C, setpoint 32", i, c.SecSupplyTempC)
		}
		if c.SecReturnTempC <= c.SecSupplyTempC {
			t.Errorf("CDU %d return %v must exceed supply %v", i, c.SecReturnTempC, c.SecSupplyTempC)
		}
		if c.PrimaryReturnTempC <= c.PrimarySupplyTempC {
			t.Errorf("CDU %d primary return %v must exceed supply %v",
				i, c.PrimaryReturnTempC, c.PrimarySupplyTempC)
		}
	}
	// Temperature ordering across loops: wet bulb < CTW supply <
	// HTW supply < HTW return.
	if !(in.WetBulbC < p.ctwSupply.T && p.ctwSupply.T < p.htwSupply.T && p.htwSupply.T < p.htwReturn.T) {
		t.Errorf("loop temperature ordering violated: wb=%v ctw=%v htws=%v htwr=%v",
			in.WetBulbC, p.ctwSupply.T, p.htwSupply.T, p.htwReturn.T)
	}
}

func TestSteadyStateFlowsMatchPaperRanges(t *testing.T) {
	in := typicalInputs()
	p := settledPlant(t, in)
	o := p.Snapshot()
	htwGPM := o.HTWFlowM3s * units.M3sToGPM
	ctwGPM := o.CTWFlowM3s * units.M3sToGPM
	// §III-C1: HTWPs ≈5000-6000 gpm, CTWPs ≈9000-10000 gpm. Allow slack
	// since staging varies with load.
	if htwGPM < 3500 || htwGPM > 7500 {
		t.Errorf("HTW flow = %v gpm, want ≈5000-6000", htwGPM)
	}
	if ctwGPM < 6000 || ctwGPM > 12000 {
		t.Errorf("CTW flow = %v gpm, want ≈9000-10000", ctwGPM)
	}
}

func TestPUETypicalRange(t *testing.T) {
	in := typicalInputs()
	p := settledPlant(t, in)
	pue := p.PUE()
	if pue < 1.01 || pue > 1.10 {
		t.Errorf("PUE = %v, want ≈1.03-1.06 for a liquid-cooled plant", pue)
	}
	// CDU pump power should be ≈8.7 kW each (Table I).
	o := p.Snapshot()
	for i, c := range o.CDUs {
		if c.PumpPowerW < 5e3 || c.PumpPowerW > 12e3 {
			t.Errorf("CDU %d pump power %v W, want ≈8.7 kW", i, c.PumpPowerW)
		}
	}
}

func TestPUEWithoutITPower(t *testing.T) {
	p, err := New(Frontier())
	if err != nil {
		t.Fatal(err)
	}
	in := typicalInputs()
	in.ITPowerW = 0
	if err := p.Step(15, in); err != nil {
		t.Fatal(err)
	}
	if p.PUE() != 0 {
		t.Error("PUE without IT power should be 0")
	}
}

func TestLoadStepTransientResponse(t *testing.T) {
	// Fig. 8 behaviour: a power surge raises the primary return
	// temperature over minutes, then the plant re-stabilizes.
	in := typicalInputs()
	p := settledPlant(t, in)
	beforeReturn := p.htwReturn.T

	// HPL-like surge: +60 % heat.
	surge := typicalInputs()
	for i := range surge.CDUHeatW {
		surge.CDUHeatW[i] *= 1.6
	}
	if err := p.Step(300, surge); err != nil {
		t.Fatal(err)
	}
	after5min := p.htwReturn.T
	if after5min <= beforeReturn+0.3 {
		t.Errorf("return temp should rise after surge: %v → %v", beforeReturn, after5min)
	}
	// Continue: system must remain bounded (controllers hold).
	if err := p.Step(3600, surge); err != nil {
		t.Fatal(err)
	}
	if p.htwReturn.T > 70 || p.htwSupply.T > 60 {
		t.Errorf("plant ran away: supply %v return %v", p.htwSupply.T, p.htwReturn.T)
	}
	// Heat balance restored at the new level.
	if math.Abs(p.TowerRejectionW()-p.TotalHeatInW())/p.TotalHeatInW() > 0.08 {
		t.Errorf("post-surge imbalance: rej %v in %v", p.TowerRejectionW(), p.TotalHeatInW())
	}
}

func TestWetBulbSensitivity(t *testing.T) {
	// Warmer outdoor air must raise the CTW supply temperature (the
	// weather-correlation use case of §III-A).
	cool := typicalInputs()
	cool.WetBulbC = 5
	pCool := settledPlant(t, cool)

	warm := typicalInputs()
	warm.WetBulbC = 26
	pWarm := settledPlant(t, warm)

	if pWarm.ctwSupply.T <= pCool.ctwSupply.T {
		t.Errorf("CTW supply should track wet bulb: %v (warm) vs %v (cool)",
			pWarm.ctwSupply.T, pCool.ctwSupply.T)
	}
	// Fans must work harder in warm weather.
	if pWarm.fanSpeed <= pCool.fanSpeed {
		t.Errorf("fan speed should rise with wet bulb: %v vs %v",
			pWarm.fanSpeed, pCool.fanSpeed)
	}
}

func TestStagingRespondsToLoad(t *testing.T) {
	// A lightly loaded plant should stage down equipment relative to a
	// heavily loaded one.
	light := typicalInputs()
	for i := range light.CDUHeatW {
		light.CDUHeatW[i] = 3e6 / 25
	}
	light.ITPowerW = 3.2e6
	pLight := settledPlant(t, light)

	heavy := typicalInputs()
	for i := range heavy.CDUHeatW {
		heavy.CDUHeatW[i] = 26e6 / 25
	}
	heavy.ITPowerW = 27.5e6
	pHeavy := settledPlant(t, heavy)

	oL, oH := pLight.Snapshot(), pHeavy.Snapshot()
	if oL.NumCellsStaged > oH.NumCellsStaged {
		t.Errorf("light load staged %d cells > heavy load %d", oL.NumCellsStaged, oH.NumCellsStaged)
	}
	if oL.NumEHXStaged > oH.NumEHXStaged {
		t.Errorf("light load staged %d EHX > heavy %d", oL.NumEHXStaged, oH.NumEHXStaged)
	}
	// Heavy load must reject more heat and draw more aux power.
	if pHeavy.AuxPowerW() <= pLight.AuxPowerW() {
		t.Errorf("aux power should grow with load: %v vs %v",
			pHeavy.AuxPowerW(), pLight.AuxPowerW())
	}
}

func TestSnapshotVector317(t *testing.T) {
	p, err := New(Frontier())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Step(15, typicalInputs()); err != nil {
		t.Fatal(err)
	}
	v := p.Snapshot().Vector()
	if len(v) != NumOutputs {
		t.Fatalf("vector length = %d, want %d (§III-C4)", len(v), NumOutputs)
	}
	names := OutputNames(Frontier())
	if len(names) != NumOutputs {
		t.Fatalf("names length = %d, want %d", len(names), NumOutputs)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate output name %q", n)
		}
		seen[n] = true
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Errorf("output %d (%s) is not finite: %v", i, names[i], x)
		}
	}
}

func TestOutputVectorOrderingSpotChecks(t *testing.T) {
	in := typicalInputs()
	p := settledPlant(t, in)
	o := p.Snapshot()
	v := o.Vector()
	names := OutputNames(Frontier())
	idx := func(name string) int {
		for i, n := range names {
			if n == name {
				return i
			}
		}
		t.Fatalf("name %q missing", name)
		return -1
	}
	if v[idx("pue")] != o.PUE {
		t.Error("pue misplaced")
	}
	if v[idx("cdu[1].pump_power_w")] != o.CDUs[0].PumpPowerW {
		t.Error("cdu[1].pump_power_w misplaced")
	}
	if v[idx("cdu[25].secondary_return_pressure_pa")] != o.CDUs[24].SecReturnPa {
		t.Error("cdu[25] pressure misplaced")
	}
	if v[idx("primary.num_htwp_staged")] != float64(o.NumHTWPStaged) {
		t.Error("htwp staged misplaced")
	}
	if v[idx("facility.htw_flow_m3s")] != o.HTWFlowM3s {
		t.Error("facility flow misplaced")
	}
	if v[idx("ct.fan[1].power_w")] != o.FanPowerW[0] {
		t.Error("fan power misplaced")
	}
}

func TestStationEnumeration(t *testing.T) {
	// Fig. 5 enumerates 15 stations; all must have distinct names.
	seen := map[string]bool{}
	for s := StationCTBasin; s <= StationCDURackReturn; s++ {
		name := s.String()
		if seen[name] {
			t.Errorf("duplicate station name %q", name)
		}
		seen[name] = true
	}
	if len(seen) != 15 {
		t.Errorf("%d stations, want 15", len(seen))
	}
	if Station(99).String() == "" {
		t.Error("unknown station should have a fallback name")
	}
}

func TestZeroLoadPlantStable(t *testing.T) {
	p, err := New(Frontier())
	if err != nil {
		t.Fatal(err)
	}
	in := Inputs{CDUHeatW: make([]float64, 25), WetBulbC: 15}
	if err := p.Step(1800, in); err != nil {
		t.Fatal(err)
	}
	// With no heat, loop temperatures must drift toward the wet bulb but
	// never below it.
	if p.ctwSupply.T < in.WetBulbC-0.5 {
		t.Errorf("CTW supply %v fell below wet bulb %v", p.ctwSupply.T, in.WetBulbC)
	}
	v := p.Snapshot().Vector()
	for i, x := range v {
		if math.IsNaN(x) {
			t.Fatalf("output %d NaN at zero load", i)
		}
	}
}

func TestHeatDistributionAsymmetry(t *testing.T) {
	// One hot CDU among idle ones: its valve should open wider and its
	// primary flow exceed the others'.
	in := typicalInputs()
	for i := range in.CDUHeatW {
		in.CDUHeatW[i] = 100e3
	}
	in.CDUHeatW[7] = 1.2e6
	p := settledPlant(t, in)
	o := p.Snapshot()
	hot := o.CDUs[7].PrimaryFlowM3s
	cold := o.CDUs[3].PrimaryFlowM3s
	if hot <= cold {
		t.Errorf("hot CDU primary flow %v should exceed idle CDU %v", hot, cold)
	}
	if o.CDUs[7].SecReturnTempC <= o.CDUs[3].SecReturnTempC {
		t.Error("hot CDU should run a hotter secondary return")
	}
}

func BenchmarkPlantStep15s(b *testing.B) {
	p, err := New(Frontier())
	if err != nil {
		b.Fatal(err)
	}
	in := typicalInputs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Step(15, in); err != nil {
			b.Fatal(err)
		}
	}
}
