package cooling

import "fmt"

// NumOutputs is the size of the output vector the paper's FMU exposes per
// 15 s step (§III-C4: "The model produces a total of 317 outputs for each
// timestep"). The breakdown mirrors the paper: 11 values for each of the
// 25 CDUs, 10 for the primary pump loop, 25 for the cooling-tower loop,
// 6 facility-level values, and the PUE.
const NumOutputs = 317

// Station identifies the measurement locations enumerated in Fig. 5.
type Station int

// Fig. 5 stations, numbered from the cooling towers toward the racks.
const (
	StationCTBasin        Station = 1  // cooling-tower basin outlet
	StationCTWPSuction    Station = 2  // CTWP suction header
	StationCTWPDischarge  Station = 3  // CTWP discharge header
	StationEHXColdIn      Station = 4  // EHX cold-side inlet (CTW)
	StationEHXColdOut     Station = 5  // EHX cold-side outlet (CTW)
	StationCTReturnHeader Station = 6  // warm water back to the towers
	StationEHXHotIn       Station = 7  // EHX hot-side inlet (HTW return)
	StationEHXHotOut      Station = 8  // EHX hot-side outlet (HTW supply)
	StationHTWPSuction    Station = 9  // HTWP suction header
	StationHTWSupply      Station = 10 // HTW supply header (Fig. 7c)
	StationHTWReturn      Station = 11 // HTW return header
	StationCDUPrimarySup  Station = 12 // CDU primary supply (Fig. 7a/b)
	StationCDUPrimaryRet  Station = 13 // CDU primary return
	StationCDUSecondary   Station = 14 // CDU secondary supply (pump)
	StationCDURackReturn  Station = 15 // rack outlet / secondary return
)

// String names the station.
func (s Station) String() string {
	names := map[Station]string{
		StationCTBasin: "ct-basin", StationCTWPSuction: "ctwp-suction",
		StationCTWPDischarge: "ctwp-discharge", StationEHXColdIn: "ehx-cold-in",
		StationEHXColdOut: "ehx-cold-out", StationCTReturnHeader: "ct-return-header",
		StationEHXHotIn: "ehx-hot-in", StationEHXHotOut: "ehx-hot-out",
		StationHTWPSuction: "htwp-suction", StationHTWSupply: "htw-supply",
		StationHTWReturn: "htw-return", StationCDUPrimarySup: "cdu-primary-supply",
		StationCDUPrimaryRet: "cdu-primary-return", StationCDUSecondary: "cdu-secondary-supply",
		StationCDURackReturn: "cdu-rack-return",
	}
	if n, ok := names[s]; ok {
		return n
	}
	return fmt.Sprintf("station(%d)", int(s))
}

// CDUOutputs are the 11 per-CDU channels (§III-C4: pump work, primary and
// secondary flow rates, supply and return temperatures and pressures at
// stations 12-15).
type CDUOutputs struct {
	PumpPowerW         float64
	PrimaryFlowM3s     float64
	SecondaryFlowM3s   float64
	PrimarySupplyTempC float64
	PrimaryReturnTempC float64
	SecSupplyTempC     float64
	SecReturnTempC     float64
	PrimarySupplyPa    float64
	PrimaryReturnPa    float64
	SecSupplyPa        float64
	SecReturnPa        float64
}

// Outputs is the full decoded output record for one step.
type Outputs struct {
	CDUs []CDUOutputs

	// Primary pump loop (10 channels).
	NumHTWPStaged int
	NumEHXStaged  int
	HTWPPowerW    [4]float64
	HTWPSpeed     [4]float64

	// Cooling-tower loop (25 channels).
	NumCellsStaged int
	CTWPPowerW     [4]float64
	CTWPSpeed      [4]float64
	FanPowerW      []float64 // NumFanChannels entries

	// Facility level (6 channels).
	HTWFlowM3s       float64
	CTWFlowM3s       float64
	FacilitySupplyC  float64
	FacilityReturnC  float64
	FacilitySupplyPa float64
	FacilityReturnPa float64

	// PUE (1 channel).
	PUE float64
}

// Snapshot decodes the plant's current condition into a fresh Outputs
// record. The simulation hot loop uses SnapshotInto instead to reuse one
// record across steps.
func (p *Plant) Snapshot() *Outputs {
	out := &Outputs{}
	p.SnapshotInto(out)
	return out
}

// SnapshotInto decodes the plant's current condition into out, reusing
// its slices when they have capacity — the allocation-free variant of
// Snapshot for the 15 s FMU coupling loop.
func (p *Plant) SnapshotInto(out *Outputs) {
	cfg := p.cfg
	if cap(out.CDUs) < len(p.cdus) {
		out.CDUs = make([]CDUOutputs, len(p.cdus))
	}
	out.CDUs = out.CDUs[:len(p.cdus)]
	if cap(out.FanPowerW) < cfg.NumFanChannels {
		out.FanPowerW = make([]float64, cfg.NumFanChannels)
	}
	out.FanPowerW = out.FanPowerW[:cfg.NumFanChannels]
	for i := range out.FanPowerW {
		out.FanPowerW[i] = 0
	}
	out.HTWPPowerW, out.HTWPSpeed = [4]float64{}, [4]float64{}
	out.CTWPPowerW, out.CTWPSpeed = [4]float64{}, [4]float64{}
	for i := range p.cdus {
		c := &p.cdus[i]
		secHead := cfg.SecLoopK * c.qSec * c.qSec
		primSup := cfg.StaticPressPa + p.htwHeadPa - 0.5*cfg.HTWLoopK*p.qHTW*p.qHTW
		out.CDUs[i] = CDUOutputs{
			PumpPowerW:         c.pumpPower,
			PrimaryFlowM3s:     c.qPrim,
			SecondaryFlowM3s:   c.qSec,
			PrimarySupplyTempC: p.htwSupply.T,
			PrimaryReturnTempC: c.primOutT,
			SecSupplyTempC:     c.secCold.T,
			SecReturnTempC:     c.secHot.T,
			PrimarySupplyPa:    primSup,
			PrimaryReturnPa:    primSup - p.headerDPPa,
			SecSupplyPa:        cfg.StaticPressPa + 0.85*secHead,
			SecReturnPa:        cfg.StaticPressPa + 0.10*secHead,
		}
	}

	out.NumHTWPStaged = p.htwpStager.Count()
	out.NumEHXStaged = p.ehxStaged
	for i := 0; i < 4; i++ {
		if i < out.NumHTWPStaged {
			out.HTWPPowerW[i] = p.htwpPowerW / float64(out.NumHTWPStaged)
			out.HTWPSpeed[i] = p.htwpSpeed
		}
	}

	out.NumCellsStaged = p.cellStager.Count()
	nCTWP := p.ctwpStager.Count()
	for i := 0; i < 4; i++ {
		if i < nCTWP {
			out.CTWPPowerW[i] = p.ctwpPowerW / float64(nCTWP)
			out.CTWPSpeed[i] = p.ctwpSpeed
		}
	}
	perCell := 0.0
	if out.NumCellsStaged > 0 {
		perCell = p.fanPowerW / float64(out.NumCellsStaged)
	}
	for i := range out.FanPowerW {
		if i < out.NumCellsStaged {
			out.FanPowerW[i] = perCell
		}
	}

	out.HTWFlowM3s = p.qHTW
	out.CTWFlowM3s = p.qCTW
	out.FacilitySupplyC = p.htwSupply.T
	out.FacilityReturnC = p.htwReturn.T
	out.FacilitySupplyPa = cfg.StaticPressPa + p.htwHeadPa
	out.FacilityReturnPa = cfg.StaticPressPa + 0.1*p.htwHeadPa
	out.PUE = p.PUE()
}

// Vector flattens the outputs into the FMU-ordered 317-element slice.
// Layout: per CDU ×11, then primary loop ×10, CT loop ×25, facility ×6,
// PUE.
func (o *Outputs) Vector() []float64 {
	return o.VectorInto(nil)
}

// VectorInto flattens the outputs into v (reused when it has capacity)
// and returns it — the allocation-free variant of Vector.
func (o *Outputs) VectorInto(v []float64) []float64 {
	if cap(v) < NumOutputs {
		v = make([]float64, 0, NumOutputs)
	}
	v = v[:0]
	for i := range o.CDUs {
		c := &o.CDUs[i]
		v = append(v,
			c.PumpPowerW, c.PrimaryFlowM3s, c.SecondaryFlowM3s,
			c.PrimarySupplyTempC, c.PrimaryReturnTempC,
			c.SecSupplyTempC, c.SecReturnTempC,
			c.PrimarySupplyPa, c.PrimaryReturnPa,
			c.SecSupplyPa, c.SecReturnPa,
		)
	}
	v = append(v, float64(o.NumHTWPStaged), float64(o.NumEHXStaged))
	v = append(v, o.HTWPPowerW[:]...)
	v = append(v, o.HTWPSpeed[:]...)
	v = append(v, float64(o.NumCellsStaged))
	v = append(v, o.CTWPPowerW[:]...)
	v = append(v, o.CTWPSpeed[:]...)
	v = append(v, o.FanPowerW...)
	v = append(v,
		o.HTWFlowM3s, o.CTWFlowM3s,
		o.FacilitySupplyC, o.FacilityReturnC,
		o.FacilitySupplyPa, o.FacilityReturnPa,
		o.PUE,
	)
	return v
}

// OutputNames returns the channel names in Vector order for a plant with
// the given config.
func OutputNames(cfg Config) []string {
	names := make([]string, 0, NumOutputs)
	for i := 1; i <= cfg.NumCDUs; i++ {
		for _, f := range []string{
			"pump_power_w", "primary_flow_m3s", "secondary_flow_m3s",
			"primary_supply_temp_c", "primary_return_temp_c",
			"secondary_supply_temp_c", "secondary_return_temp_c",
			"primary_supply_pressure_pa", "primary_return_pressure_pa",
			"secondary_supply_pressure_pa", "secondary_return_pressure_pa",
		} {
			names = append(names, fmt.Sprintf("cdu[%d].%s", i, f))
		}
	}
	names = append(names, "primary.num_htwp_staged", "primary.num_ehx_staged")
	for i := 1; i <= 4; i++ {
		names = append(names, fmt.Sprintf("primary.htwp[%d].power_w", i))
	}
	for i := 1; i <= 4; i++ {
		names = append(names, fmt.Sprintf("primary.htwp[%d].speed", i))
	}
	names = append(names, "ct.num_cells_staged")
	for i := 1; i <= 4; i++ {
		names = append(names, fmt.Sprintf("ct.ctwp[%d].power_w", i))
	}
	for i := 1; i <= 4; i++ {
		names = append(names, fmt.Sprintf("ct.ctwp[%d].speed", i))
	}
	for i := 1; i <= cfg.NumFanChannels; i++ {
		names = append(names, fmt.Sprintf("ct.fan[%d].power_w", i))
	}
	names = append(names,
		"facility.htw_flow_m3s", "facility.ctw_flow_m3s",
		"facility.supply_temp_c", "facility.return_temp_c",
		"facility.supply_pressure_pa", "facility.return_pressure_pa",
		"pue",
	)
	return names
}
