package cooling

import (
	"fmt"
	"math"

	"exadigit/internal/control"
	"exadigit/internal/hydro"
	"exadigit/internal/ode"
	"exadigit/internal/thermal"
	"exadigit/internal/units"
)

// Inputs drives one plant step (§III-C4: "The model takes as inputs
// wet-bulb (outdoor) temperature and heat extracted in watts for each of
// the 25 CDUs").
type Inputs struct {
	// CDUHeatW is the heat load per CDU in watts (already scaled by the
	// RAPS cooling efficiency of 0.945).
	CDUHeatW []float64
	// WetBulbC is the outdoor wet-bulb temperature.
	WetBulbC float64
	// ITPowerW is the electrical power of the computing load, used only
	// for the PUE output. Zero disables the PUE calculation (PUE = 0).
	ITPowerW float64
}

// cduState is the per-CDU dynamic state and controllers.
type cduState struct {
	secHot  thermal.Volume // rack-outlet (secondary return) volume
	secCold thermal.Volume // HEX-outlet (secondary supply) volume

	pumpPID  *control.PID // holds loop differential pressure
	valvePID *control.PID // holds secondary supply temperature
	valve    *hydro.Valve

	// Last hydraulic solution.
	qSec      float64 // secondary flow, m³/s
	qPrim     float64 // primary flow, m³/s
	pumpSpeed float64
	pumpPower float64
	hexDuty   float64 // last heat transferred secondary→primary, W
	primOutT  float64 // last primary-side outlet temperature
}

// Plant is the assembled cooling system. Create with New, advance with
// Step, read with Snapshot.
type Plant struct {
	cfg Config

	cdus []cduState

	htwSupply thermal.Volume // cooled HTW leaving the EHXs toward the CDUs
	htwReturn thermal.Volume // heated HTW collected from the CDU HEXs
	ctwSupply thermal.Volume // cold CTW leaving the towers
	ctwReturn thermal.Volume // warmed CTW leaving the EHXs

	htwpPID    *control.PID
	htwpRate   *control.RateLimiter
	htwpStager *control.Stager
	ctwpPID    *control.PID
	ctwpRate   *control.RateLimiter
	ctwpStager *control.Stager
	fanPID     *control.PID
	cellStager *control.Stager

	// Delay transfer function between the primary-pump loop and the
	// cooling-tower loop (§III-C5).
	htwsDelayed *control.TransportDelay
	htwsGradF   *control.FirstOrderLag

	// Last hydraulic/electrical solution.
	qHTW       float64
	qCTW       float64
	htwpSpeed  float64
	ctwpSpeed  float64
	fanSpeed   float64
	htwHeadPa  float64
	ctwHeadPa  float64
	headerDPPa float64
	htwpPowerW float64 // total across staged pumps
	ctwpPowerW float64
	fanPowerW  float64 // total across staged cells
	ehxStaged  int
	ehxDutyW   float64
	towerRejW  float64

	// secFouling multiplies each CDU's secondary-loop resistance to model
	// blockage from biological growth (§III-A's water-quality use case);
	// 1.0 everywhere when clean.
	secFouling []float64

	lastIn Inputs
	simT   float64

	// scratch state vector for the ODE integrator
	state []float64
	// stepper and thermalIn persist across Step calls so the RK4 stage
	// buffers are allocated once per plant, not once per control period
	// (the bulk of the old ~156 allocs per cooled tick).
	stepper   *ode.FixedStepper
	thermalIn Inputs
	// hydraulic scratch reused across solveHydraulics calls
	branchKs  []float64
	primFlows []float64

	// Adaptive-solver state (nil/zero under the fixed-step reference).
	adaptive *ode.AdaptiveStepper
	solv     solverParams
	stats    SolverStats
	// refHeat/refWB are the inputs at the last real integration —
	// equilibrium holds tolerate drift against these, never against the
	// previous (possibly already held) step, so drift cannot compound.
	refHeat  []float64
	refWB    float64
	refValid bool
	settled  bool
	heldS    float64 // consecutive held seconds since the last integration
	lastRate float64 // max state movement rate over the last integration
	// prevState/prevAct are rate-measurement scratch.
	prevState []float64
	prevAct   []float64
	act       []float64
	// Frozen transfer coefficients: UA and tower effectiveness depend
	// only on the hydraulic solution (flows, fan speed), which is fixed
	// across a control period — the adaptive path evaluates them once per
	// period instead of per ODE stage (two Pow calls each, the dominant
	// derivative-sweep cost).
	frozenUA bool
	cduUA    []float64
	ehxUA    float64
	towerEps float64
}

// solverParams are the resolved adaptive-solver knobs (Config fields
// with defaults applied at New).
type solverParams struct {
	adaptive    bool
	quiesceRate float64
	heatTolFrac float64
	wbTol       float64
	maxHold     float64
}

// SolverStats reports the work the plant's thermal solver performed:
// adaptive ODE step accounting, the controller/hydraulics updates
// actually simulated, and the simulated time fast-forwarded through
// equilibrium holds. Zero-valued under the fixed-step reference solver
// except ControlSteps and IntegratedSec.
type SolverStats struct {
	// Accepted and Rejected count adaptive ODE steps.
	Accepted int
	Rejected int
	// ControlSteps counts controller/hydraulics updates simulated.
	ControlSteps int
	// Holds counts equilibrium-hold intervals; QuiescentSec is the
	// simulated time they covered. IntegratedSec is the simulated time
	// advanced by real integration.
	Holds         int
	QuiescentSec  float64
	IntegratedSec float64
}

// QuiescentFraction returns the share of simulated time fast-forwarded
// through equilibrium holds.
func (st SolverStats) QuiescentFraction() float64 {
	total := st.QuiescentSec + st.IntegratedSec
	if total <= 0 {
		return 0
	}
	return st.QuiescentSec / total
}

// Config returns the plant's design configuration.
func (p *Plant) Config() Config { return p.cfg }

// New builds a plant in a warm-started condition near its typical
// operating point.
func New(cfg Config) (*Plant, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Plant{cfg: cfg}
	p.cdus = make([]cduState, cfg.NumCDUs)
	for i := range p.cdus {
		c := &p.cdus[i]
		c.secHot = thermal.Volume{Mass: cfg.SecVolumeKg, T: 36}
		c.secCold = thermal.Volume{Mass: cfg.SecVolumeKg, T: cfg.SecSupplySetC}
		c.pumpPID = control.NewPID(4e-7, 8e-8, 0, 0.3, 1.1)
		c.pumpPID.Reset(0.9)
		c.valvePID = control.NewPID(0.08, 0.004, 0, 0.05, 1.0)
		c.valvePID.DirectAction = true // hotter supply → open valve
		c.valvePID.Reset(0.6)
		c.valve = hydro.NewValve(cfg.PrimValveDPPa, cfg.PrimBranchQ, cfg.PrimValveRange)
		c.valve.SetPosition(0.6)
		c.pumpSpeed = 0.9
	}
	p.htwSupply = thermal.Volume{Mass: cfg.HTWVolumeKg, T: 27}
	p.htwReturn = thermal.Volume{Mass: cfg.HTWVolumeKg, T: 34}
	p.ctwSupply = thermal.Volume{Mass: cfg.CTWVolumeKg, T: cfg.CTSupplySetC}
	p.ctwReturn = thermal.Volume{Mass: cfg.CTWVolumeKg, T: cfg.CTSupplySetC + 6}

	p.htwpPID = control.NewPID(5e-7, 8e-8, 0, 0.35, 1.05)
	p.htwpPID.Reset(0.85)
	p.htwpRate = &control.RateLimiter{RisePerSec: 0.02, FallPerSec: 0.02}
	p.htwpRate.Reset(0.85)
	p.htwpStager = control.NewStager(2, cfg.NumHTWPs, 3,
		cfg.StageUpSpeed, cfg.StageDownSpeed, cfg.StageUpDwellS, cfg.StageDownDwellS)
	p.ctwpPID = control.NewPID(5e-7, 8e-8, 0, 0.35, 1.05)
	p.ctwpPID.Reset(0.85)
	p.ctwpRate = &control.RateLimiter{RisePerSec: 0.02, FallPerSec: 0.02}
	p.ctwpRate.Reset(0.85)
	p.ctwpStager = control.NewStager(2, cfg.NumCTWPs, 3,
		cfg.StageUpSpeed, cfg.StageDownSpeed, cfg.StageUpDwellS, cfg.StageDownDwellS)
	p.fanPID = control.NewPID(0.25, 0.004, 0, 0.10, 1.0)
	p.fanPID.DirectAction = true // warmer basin → faster fans
	p.fanPID.Reset(0.6)
	p.cellStager = control.NewStager(4, cfg.TotalCells(), 12,
		0.9, 0.35, cfg.StageUpDwellS, cfg.StageDownDwellS)
	p.htwsDelayed = control.NewTransportDelay(cfg.LoopDelayS, cfg.ControlDtS)
	p.htwsGradF = &control.FirstOrderLag{Tau: 60}
	p.htwsGradF.Reset(0)

	p.htwpSpeed, p.ctwpSpeed, p.fanSpeed = 0.85, 0.85, 0.6
	p.ehxStaged = 3
	p.secFouling = make([]float64, cfg.NumCDUs)
	for i := range p.secFouling {
		p.secFouling[i] = 1
	}
	p.state = make([]float64, p.Dim())
	p.stepper = ode.NewFixedStepper(thermalSystem{p: p}, ode.RK4)
	p.branchKs = make([]float64, cfg.NumCDUs)
	p.primFlows = make([]float64, cfg.NumCDUs)
	if cfg.Solver == SolverAdaptive {
		p.solv = solverParams{
			adaptive:    true,
			quiesceRate: defaultNZ(cfg.QuiesceRateCps, 2e-3),
			heatTolFrac: defaultNZ(cfg.HeatTolFrac, 0.01),
			wbTol:       defaultNZ(cfg.WetBulbTolC, 0.25),
			maxHold:     defaultNZ(cfg.MaxHoldS, 900),
		}
		p.adaptive = ode.NewAdaptiveStepper(thermalSystem{p: p}, ode.DOPRI5, ode.AdaptiveConfig{
			RelTol: defaultNZ(cfg.RelTol, 1e-4),
			AbsTol: defaultNZ(cfg.AbsTol, 1e-3),
		})
		p.refHeat = make([]float64, cfg.NumCDUs)
		p.prevState = make([]float64, p.Dim())
		p.prevAct = make([]float64, p.actDim())
		p.act = make([]float64, p.actDim())
		p.cduUA = make([]float64, cfg.NumCDUs)
	}
	return p, nil
}

func defaultNZ(v, def float64) float64 {
	if v > 0 {
		return v
	}
	return def
}

// Dim implements ode.System: two temperatures per CDU plus the four loop
// volumes.
func (p *Plant) Dim() int { return 2*len(p.cdus) + 4 }

// Time returns the plant's internal simulation time in seconds.
func (p *Plant) Time() float64 { return p.simT }

// Step advances the plant by dt seconds under the given inputs,
// subdividing into ControlDtS control periods. Under the adaptive solver
// the control period widens (and integration is skipped entirely) as the
// plant approaches steady state; see stepAdaptive. It returns an error
// only for malformed inputs.
func (p *Plant) Step(dt float64, in Inputs) error {
	if len(in.CDUHeatW) != len(p.cdus) {
		return fmt.Errorf("cooling: got %d CDU heat loads, plant has %d CDUs",
			len(in.CDUHeatW), len(p.cdus))
	}
	for i, h := range in.CDUHeatW {
		if h < 0 || math.IsNaN(h) {
			return fmt.Errorf("cooling: CDU %d heat %v invalid", i, h)
		}
	}
	if p.solv.adaptive {
		return p.stepAdaptive(dt, in)
	}
	p.lastIn = in
	steps := int(math.Ceil(dt / p.cfg.ControlDtS))
	if steps < 1 {
		steps = 1
	}
	h := dt / float64(steps)
	for s := 0; s < steps; s++ {
		p.updateControls(h)
		p.solveHydraulics()
		p.integrateThermal(h, in)
		p.simT += h
		p.stats.ControlSteps++
	}
	p.stats.IntegratedSec += dt
	return nil
}

// stepAdaptive is Step under the adaptive solver. Three regimes, chosen
// per call from the last integration's state movement and the input
// drift since then:
//
//   - equilibrium hold: the plant is settled, no stager is mid-dwell,
//     and the inputs are within tolerance of those it settled under —
//     fast-forward without touching controls, hydraulics, or thermal
//     state (the cooling-side analogue of RAPS's tick-gap skipping);
//   - coarse/fine integration: otherwise the control period widens from
//     ControlDtS up to 5× as activity dies down (pickControlDt), with
//     the thermal network advanced by the error-controlled
//     Dormand–Prince stepper (warm-started across periods) instead of
//     fixed RK4.
func (p *Plant) stepAdaptive(dt float64, in Inputs) error {
	if p.canHold(in, dt) {
		p.lastIn = in
		p.simT += dt
		p.heldS += dt
		p.stats.Holds++
		p.stats.QuiescentSec += dt
		// Keep the cross-loop delay line on its time base; at a held
		// state the supply temperature is constant, so this is exact.
		p.htwsDelayed.UpdateN(p.htwSupply.T, delaySteps(dt, p.cfg.ControlDtS))
		return nil
	}
	h := p.pickControlDt(dt, in)
	p.heldS = 0
	p.refHeat = p.refHeat[:0]
	p.refHeat = append(p.refHeat, in.CDUHeatW...)
	p.refWB = in.WetBulbC
	p.refValid = true
	p.lastIn = in

	steps := int(math.Ceil(dt/h - 1e-9))
	if steps < 1 {
		steps = 1
	}
	h = dt / float64(steps)
	p.packState(p.prevState)
	p.packActuators(p.prevAct)
	for s := 0; s < steps; s++ {
		p.updateControls(h)
		p.solveHydraulics()
		p.freezeTransferCoeffs()
		p.integrateThermalAdaptive(h, in)
		p.simT += h
		p.stats.ControlSteps++
	}
	p.frozenUA = false
	p.stats.IntegratedSec += dt

	// Post-step quiescence detection: how fast did the thermal states and
	// actuator commands move across this interval?
	p.packState(p.state)
	p.packActuators(p.act)
	rate := maxAbsRate(p.state, p.prevState, dt)
	actRate := maxAbsRate(p.act, p.prevAct, dt)
	p.lastRate = math.Max(rate, actRate)
	p.settled = p.lastRate < p.solv.quiesceRate && p.stagersIdle()
	return nil
}

// freezeTransferCoeffs evaluates the flow-dependent transfer
// coefficients — per-CDU HEX UA, intermediate-EHX UA, and tower-cell
// effectiveness — once for the control period about to be integrated,
// from the period-start temperatures. The hydraulic solution they
// depend on is held fixed across the period anyway; their residual
// temperature sensitivity (through water density) is ~0.1 %.
func (p *Plant) freezeTransferCoeffs() {
	cfg := p.cfg
	rho := units.WaterDensity(p.htwSupply.T)
	for i := range p.cdus {
		c := &p.cdus[i]
		mdotSec := units.WaterDensity(c.secCold.T) * c.qSec
		p.cduUA[i] = cfg.CDUHex.UA(mdotSec, rho*c.qPrim)
	}
	mdotHTW := rho * p.qHTW
	mdotCTW := units.WaterDensity(p.ctwSupply.T) * p.qCTW
	nEHX := float64(p.ehxStaged)
	p.ehxUA = cfg.EHX.UA(mdotHTW/nEHX, mdotCTW/nEHX)
	cells := float64(p.cellStager.Count())
	p.towerEps = cfg.Tower.Effectiveness(p.fanSpeed, mdotCTW/cells)
	p.frozenUA = true
}

// canHold reports whether the plant may fast-forward the next dt
// seconds: settled, no staging action pending, the hold budget covers
// the whole interval (so the time between real integrations never
// exceeds MaxHoldS even when a coasted gap arrives as one large dt),
// and inputs within tolerance of those at the last real integration.
func (p *Plant) canHold(in Inputs, dt float64) bool {
	if !p.settled || !p.refValid {
		return false
	}
	if p.solv.maxHold > 0 && p.heldS+dt > p.solv.maxHold {
		return false
	}
	return p.inputsNearRef(in)
}

func (p *Plant) inputsNearRef(in Inputs) bool {
	if !p.refValid || math.Abs(in.WetBulbC-p.refWB) > p.solv.wbTol {
		return false
	}
	return p.heatNearRef(in.CDUHeatW)
}

// heatNearRef reports whether the per-CDU heat loads are within the
// hold tolerance of those at the last real integration — the single
// drift check shared by the hold decision and the coast decision, with
// a 1 kW floor so near-idle loops do not pin the tolerance at zero.
func (p *Plant) heatNearRef(cduHeatW []float64) bool {
	if len(cduHeatW) > len(p.refHeat) {
		return false
	}
	for i, h := range cduHeatW {
		ref := p.refHeat[i]
		if math.Abs(h-ref) > p.solv.heatTolFrac*ref+1e3 {
			return false
		}
	}
	return true
}

// pickControlDt widens the controller/hydraulics period as activity
// dies down: a sharp input step or fast state movement gets the design
// period; everything else — routine load jitter, settling tails,
// near-quiescent drift — gets 5×, capped at the coupling step. The
// thermal ODE remains error-controlled inside every period; this trades
// only controller sampling, the Finding-6 fidelity-vs-cost knob the
// ControlDt ablation measures.
func (p *Plant) pickControlDt(dt float64, in Inputs) float64 {
	base := p.cfg.ControlDtS
	if !p.refValid {
		return math.Min(base, dt)
	}
	move := p.inputMoveFrac(in)
	rate := p.lastRate
	if move >= 0.25 || rate >= 25*p.solv.quiesceRate {
		// A sharp step (a large job landing, an HPL ramp): resolve the
		// control response at the design period.
		return math.Min(base, dt)
	}
	// Routine load jitter, settling tails, and near-quiescent drift: 5×
	// keeps every control loop (including the fan/tower loop, whose
	// sampled-data stability margin sits near 10–15× on Frontier-scale
	// volumes and tighter on smaller AutoCSM plants) well inside its
	// stable region; the truly settled case is covered by holds.
	return math.Min(5*base, dt)
}

// inputMoveFrac measures how far the inputs have moved since the last
// real integration, as a relative heat change (with wet-bulb drift
// folded in on the hold-tolerance scale).
func (p *Plant) inputMoveFrac(in Inputs) float64 {
	m := math.Abs(in.WetBulbC-p.refWB) / p.solv.wbTol * p.solv.heatTolFrac
	for i, h := range in.CDUHeatW {
		if i >= len(p.refHeat) {
			break
		}
		d := math.Abs(h-p.refHeat[i]) / math.Max(p.refHeat[i], 1e5)
		if d > m {
			m = d
		}
	}
	return m
}

// stagersIdle reports that no discrete staging action is being dwelled
// toward — holds must not freeze a pending stage change.
func (p *Plant) stagersIdle() bool {
	return !p.htwpStager.Pending() && !p.ctwpStager.Pending() && !p.cellStager.Pending()
}

// packState writes the thermal state vector into dst (len Dim()).
func (p *Plant) packState(dst []float64) {
	n := len(p.cdus)
	for i := range p.cdus {
		dst[2*i] = p.cdus[i].secHot.T
		dst[2*i+1] = p.cdus[i].secCold.T
	}
	dst[2*n] = p.htwSupply.T
	dst[2*n+1] = p.htwReturn.T
	dst[2*n+2] = p.ctwSupply.T
	dst[2*n+3] = p.ctwReturn.T
}

// actDim is the actuator vector length: per-CDU pump speed and valve
// position plus the three loop-level commands.
func (p *Plant) actDim() int { return 2*len(p.cdus) + 3 }

// packActuators writes the continuous actuator commands into dst — the
// signals whose slew (PID convergence, rate-limited pump ramps) must
// also die out before the plant counts as settled.
func (p *Plant) packActuators(dst []float64) {
	for i := range p.cdus {
		dst[2*i] = p.cdus[i].pumpSpeed
		dst[2*i+1] = p.cdus[i].valve.Position()
	}
	n := 2 * len(p.cdus)
	dst[n] = p.htwpSpeed
	dst[n+1] = p.ctwpSpeed
	dst[n+2] = p.fanSpeed
}

func maxAbsRate(a, b []float64, dt float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m / dt
}

func delaySteps(dt, controlDt float64) int {
	n := int(math.Round(dt / controlDt))
	if n < 1 {
		n = 1
	}
	return n
}

// SolverStats returns the plant's solver work accounting since New.
func (p *Plant) SolverStats() SolverStats {
	st := p.stats
	if p.adaptive != nil {
		a := p.adaptive.Stats()
		st.Accepted, st.Rejected = a.Accepted, a.Rejected
	}
	return st
}

// Quiescent reports whether the plant is currently settled at an
// equilibrium (adaptive solver only; always false under fixed-step).
func (p *Plant) Quiescent() bool { return p.settled }

// CanCoast reports whether the simulation layer may skip upcoming
// coupling boundaries entirely: the plant is settled with no staging
// pending and would hold under the given per-CDU heat loads. Wet-bulb
// drift is not predictable here; CoastWindowS bounds how long a coast
// may defer re-checking it.
func (p *Plant) CanCoast(cduHeatW []float64) bool {
	return p.solv.adaptive && p.settled && p.refValid && p.heatNearRef(cduHeatW)
}

// CoastWindowS is the longest stretch the simulation layer may coast
// across cooling boundaries before stepping the plant again (0 under the
// fixed-step solver: every boundary must be stepped).
func (p *Plant) CoastWindowS() float64 {
	if !p.solv.adaptive {
		return 0
	}
	return p.solv.maxHold
}

// updateControls advances every PID and stager one control period.
func (p *Plant) updateControls(dt float64) {
	cfg := p.cfg
	for i := range p.cdus {
		c := &p.cdus[i]
		dpMeas := cfg.SecLoopK * p.secFouling[i] * c.qSec * c.qSec
		c.pumpSpeed = c.pumpPID.Update(cfg.SecDPSetPa, dpMeas, dt)
		pos := c.valvePID.Update(cfg.SecSupplySetC, c.secCold.T, dt)
		c.valve.SetPosition(pos)
	}

	p.htwpSpeed = p.htwpRate.Update(p.htwpPID.Update(cfg.HTWHeaderSetPa, p.headerDPPa, dt), dt)
	p.htwpStager.Update(p.htwpSpeed, dt)

	ctwHeader := cfg.StaticPressPa + 0.85*p.ctwHeadPa
	p.ctwpSpeed = p.ctwpRate.Update(p.ctwpPID.Update(cfg.CTWHeaderSetPa, ctwHeader, dt), dt)
	p.ctwpStager.Update(p.ctwpSpeed, dt)

	p.fanSpeed = p.fanPID.Update(cfg.CTSupplySetC, p.ctwSupply.T, dt)

	// Tower staging: fan loading plus the delayed HTW-supply temperature
	// gradient (§III-C5's cross-loop delay transfer function). The delay
	// line is sampled on its ControlDtS design period; coarse adaptive
	// control periods push one sample per design period to keep the delay
	// duration invariant.
	delayed := p.htwsDelayed.UpdateN(p.htwSupply.T, delaySteps(dt, cfg.ControlDtS))
	grad := p.htwsGradF.Update((p.htwSupply.T-delayed)/math.Max(cfg.LoopDelayS, 1), dt)
	signal := p.fanSpeed
	if math.Abs(grad) > cfg.CTHTWSGradient {
		signal = math.Max(signal, 0.95)
	}
	p.cellStager.Update(signal, dt)

	// EHXs are staged from the number of towers in operation (§III-C5).
	towers := (p.cellStager.Count() + cfg.CellsPerTower - 1) / cfg.CellsPerTower
	p.ehxStaged = clampInt(towers, 1, cfg.NumEHX)
}

// solveHydraulics computes loop flows from the current pump speeds,
// staging, and valve positions. Every loop's system curve is purely
// quadratic in the loop flow (fixed piping, fouling-scaled rack loops,
// and the parallel valve+HEX branch network all compose to K·Q²), so the
// operating points come from hydro.SolveQuadLoop's closed form rather
// than bracketing/bisection — this runs 27× per control period and used
// to be a third of the cooled-day cost.
func (p *Plant) solveHydraulics() {
	cfg := p.cfg

	// Secondary loops: each CDU pump against its rack-loop curve, with
	// any injected fouling raising the loop resistance.
	for i := range p.cdus {
		c := &p.cdus[i]
		loopK := cfg.SecLoopK * p.secFouling[i]
		bank := hydro.PumpBank{Curve: cfg.SecPump, N: 1, Speed: c.pumpSpeed}
		q, _ := hydro.SolveQuadLoop(bank, loopK)
		c.qSec = q
		c.pumpPower = cfg.SecPump.Power(q, c.pumpSpeed)
	}

	// Primary loop: staged HTWPs against fixed piping plus the parallel
	// CDU branch network (valve + HEX primary side per branch).
	hexK := 20e3 / (cfg.PrimBranchQ * cfg.PrimBranchQ)
	branchKs := p.branchKs
	for i := range p.cdus {
		branchKs[i] = p.cdus[i].valve.Resistance().K + hexK
	}
	eqBranch := hydro.ParallelK(branchKs)
	htwBank := hydro.PumpBank{Curve: cfg.HTWPump, N: p.htwpStager.Count(), Speed: p.htwpSpeed}
	qHTW, htwHead := hydro.SolveQuadLoop(htwBank, cfg.HTWLoopK+eqBranch.K)
	p.qHTW, p.htwHeadPa = qHTW, htwHead
	headerDP := hydro.SplitParallelInto(qHTW, branchKs, p.primFlows)
	p.headerDPPa = headerDP
	for i := range p.cdus {
		p.cdus[i].qPrim = p.primFlows[i]
	}
	p.htwpPowerW = htwBank.Power(htwHead)

	// Cooling-tower loop: staged CTWPs against the fixed tower circuit.
	ctwBank := hydro.PumpBank{Curve: cfg.CTWPump, N: p.ctwpStager.Count(), Speed: p.ctwpSpeed}
	qCTW, ctwHead := hydro.SolveQuadLoop(ctwBank, cfg.CTWLoopK)
	p.qCTW, p.ctwHeadPa = qCTW, ctwHead
	p.ctwpPowerW = ctwBank.Power(ctwHead)

	cells := p.cellStager.Count()
	p.fanPowerW = float64(cells) * cfg.Tower.FanPower(p.fanSpeed)
}

// thermalSystem adapts the plant's energy balance to ode.System with the
// hydraulic solution held fixed over the step. The step inputs are read
// from p.thermalIn so one stepper (and its RK4 stage buffers) serves
// every integrateThermal call.
type thermalSystem struct {
	p *Plant
}

// Dim implements ode.System.
func (s thermalSystem) Dim() int { return s.p.Dim() }

// Derivatives implements ode.System over the packed state
// [secHot0, secCold0, ..., htwSupply, htwReturn, ctwSupply, ctwReturn].
func (s thermalSystem) Derivatives(t float64, y, dydt []float64) {
	p := s.p
	in := &p.thermalIn
	cfg := p.cfg
	n := len(p.cdus)

	htwSupplyT := y[2*n]
	htwReturnT := y[2*n+1]
	ctwSupplyT := y[2*n+2]
	ctwReturnT := y[2*n+3]

	rho := units.WaterDensity(htwSupplyT)
	mdotHTW := rho * p.qHTW
	mdotCTW := units.WaterDensity(ctwSupplyT) * p.qCTW

	// CDU loops and their HEX coupling to the primary loop.
	var mixNum, mixDen float64
	for i := range p.cdus {
		c := &p.cdus[i]
		secHotT := y[2*i]
		secColdT := y[2*i+1]
		mdotSec := units.WaterDensity(secColdT) * c.qSec
		mdotPrim := rho * c.qPrim

		// Rack pass: the secondary stream picks up the CDU heat load.
		hot := thermal.Volume{Mass: cfg.SecVolumeKg, T: secHotT}
		dydt[2*i] = hot.DTdt(mdotSec, secColdT, in.CDUHeatW[i])

		// HEX-1600: secondary (hot) → primary (cold).
		var q, secOutT, primOutT float64
		if p.frozenUA {
			q, secOutT, primOutT = cfg.CDUHex.TransferUA(p.cduUA[i], secHotT, mdotSec, htwSupplyT, mdotPrim)
		} else {
			q, secOutT, primOutT = cfg.CDUHex.Transfer(secHotT, mdotSec, htwSupplyT, mdotPrim)
		}
		cold := thermal.Volume{Mass: cfg.SecVolumeKg, T: secColdT}
		dydt[2*i+1] = cold.DTdt(mdotSec, secOutT, 0)

		c.hexDuty = q
		c.primOutT = primOutT
		mixNum += mdotPrim * primOutT
		mixDen += mdotPrim
	}
	mixT := htwReturnT
	if mixDen > 0 {
		mixT = mixNum / mixDen
	}

	// Intermediate EHX bank: HTW return (hot) → CTW (cold), per unit.
	nEHX := float64(p.ehxStaged)
	var qEHX, htwOutT, ctwOutT float64
	if p.frozenUA {
		qEHX, htwOutT, ctwOutT = cfg.EHX.TransferUA(p.ehxUA,
			htwReturnT, mdotHTW/nEHX, ctwSupplyT, mdotCTW/nEHX)
	} else {
		qEHX, htwOutT, ctwOutT = cfg.EHX.Transfer(
			htwReturnT, mdotHTW/nEHX, ctwSupplyT, mdotCTW/nEHX)
	}
	p.ehxDutyW = qEHX * nEHX

	// Cooling-tower cells reject to the wet bulb.
	cells := p.cellStager.Count()
	perCell := mdotCTW / float64(cells)
	var cellOutT float64
	if p.frozenUA {
		cellOutT = cfg.Tower.OutletEff(p.towerEps, ctwReturnT, in.WetBulbC)
	} else {
		cellOutT = cfg.Tower.Outlet(ctwReturnT, in.WetBulbC, p.fanSpeed, perCell)
	}
	p.towerRejW = mdotCTW * units.WaterSpecificHeat(ctwReturnT) * (ctwReturnT - cellOutT)

	hs := thermal.Volume{Mass: cfg.HTWVolumeKg, T: htwSupplyT}
	dydt[2*n] = hs.DTdt(mdotHTW, htwOutT, 0)
	hr := thermal.Volume{Mass: cfg.HTWVolumeKg, T: htwReturnT}
	dydt[2*n+1] = hr.DTdt(mdotHTW, mixT, 0)
	cs := thermal.Volume{Mass: cfg.CTWVolumeKg, T: ctwSupplyT}
	dydt[2*n+2] = cs.DTdt(mdotCTW, cellOutT, 0)
	cr := thermal.Volume{Mass: cfg.CTWVolumeKg, T: ctwReturnT}
	dydt[2*n+3] = cr.DTdt(mdotCTW, ctwOutT, 0)
}

func (p *Plant) integrateThermal(dt float64, in Inputs) {
	y := p.state
	p.packState(y)
	p.thermalIn = in
	p.stepper.Integrate(0, dt, y, dt)
	p.unpackState(y)
}

// integrateThermalAdaptive advances the thermal network by dt with the
// persistent Dormand–Prince stepper (warm-started step size, shared
// stage buffers). A step failure — which the mildly stiff network should
// never produce at sane tolerances — falls back to the fixed RK4
// reference for the period rather than aborting the run.
func (p *Plant) integrateThermalAdaptive(dt float64, in Inputs) {
	y := p.state
	p.packState(y)
	p.thermalIn = in
	if _, err := p.adaptive.Integrate(0, dt, y); err != nil {
		p.packState(y)
		p.stepper.Integrate(0, dt, y, p.cfg.ControlDtS)
	}
	p.unpackState(y)
}

// unpackState writes the packed state vector back into the volumes.
func (p *Plant) unpackState(y []float64) {
	n := len(p.cdus)
	for i := range p.cdus {
		p.cdus[i].secHot.T = y[2*i]
		p.cdus[i].secCold.T = y[2*i+1]
	}
	p.htwSupply.T = y[2*n]
	p.htwReturn.T = y[2*n+1]
	p.ctwSupply.T = y[2*n+2]
	p.ctwReturn.T = y[2*n+3]
}

// AuxPowerW returns the total auxiliary (cooling) electrical power: CDU
// pumps + HTWPs + CTWPs + CT fans — the PUE numerator's non-IT share
// (§IV-1).
func (p *Plant) AuxPowerW() float64 {
	aux := p.htwpPowerW + p.ctwpPowerW + p.fanPowerW
	for i := range p.cdus {
		aux += p.cdus[i].pumpPower
	}
	return aux
}

// PUE returns the power usage effectiveness for the last step's IT power,
// or 0 when no IT power was supplied.
func (p *Plant) PUE() float64 {
	if p.lastIn.ITPowerW <= 0 {
		return 0
	}
	return (p.lastIn.ITPowerW + p.AuxPowerW()) / p.lastIn.ITPowerW
}

// TotalHeatInW returns the heat currently injected by the compute load.
func (p *Plant) TotalHeatInW() float64 {
	sum := 0.0
	for _, h := range p.lastIn.CDUHeatW {
		sum += h
	}
	return sum
}

// TowerRejectionW returns the heat rejected by the tower cells during the
// last step.
func (p *Plant) TowerRejectionW() float64 { return p.towerRejW }

// SettleToSteadyState runs the plant under constant inputs until the loop
// temperatures stop moving (or maxSeconds elapses). Used by tests and by
// experiment warm-up.
func (p *Plant) SettleToSteadyState(in Inputs, maxSeconds float64) error {
	const window = 120.0
	prevR, prevCS, prevCR := p.htwReturn.T, p.ctwSupply.T, p.ctwReturn.T
	for t := 0.0; t < maxSeconds; t += window {
		if err := p.Step(window, in); err != nil {
			return err
		}
		moved := math.Max(math.Abs(p.htwReturn.T-prevR),
			math.Max(math.Abs(p.ctwSupply.T-prevCS), math.Abs(p.ctwReturn.T-prevCR)))
		if moved < 0.004 && t > 1800 {
			return nil
		}
		prevR, prevCS, prevCR = p.htwReturn.T, p.ctwSupply.T, p.ctwReturn.T
	}
	return nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// HeatFlows reports the instantaneous heat-flow accounting along the
// rejection path: total CDU HEX duty, total intermediate-EHX duty, and
// cooling-tower rejection, all in watts. At steady state the three agree
// with the injected CDU heat.
func (p *Plant) HeatFlows() (cduHexW, ehxW, towerW float64) {
	for i := range p.cdus {
		cduHexW += p.cdus[i].hexDuty
	}
	return cduHexW, p.ehxDutyW, p.towerRejW
}

// ControlState reports the key actuator commands for dashboards and
// tests: the first CDU's valve position, the HTWP/CTWP common speeds, the
// header differential pressure, and the common tower fan speed.
func (p *Plant) ControlState() (valvePos, htwpSpeed, headerDPPa, ctwpSpeed, fanSpeed float64) {
	return p.cdus[0].valve.Position(), p.htwpSpeed, p.headerDPPa,
		p.ctwpSpeed, p.fanSpeed
}

// InjectSecondaryFouling multiplies CDU cdu's secondary-loop resistance
// by factor (≥1), modelling blade-level blockage from biological growth —
// the §III-A water-quality use case. Factor 1 restores the clean loop.
func (p *Plant) InjectSecondaryFouling(cdu int, factor float64) error {
	if cdu < 0 || cdu >= len(p.secFouling) {
		return fmt.Errorf("cooling: CDU %d out of range", cdu)
	}
	if factor < 1 {
		return fmt.Errorf("cooling: fouling factor %v must be ≥ 1", factor)
	}
	p.secFouling[cdu] = factor
	return nil
}
