package cooling

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// cleanupRegistry removes test entries so preset state does not leak
// across tests in the package.
func cleanupRegistry(t *testing.T, names ...string) {
	t.Cleanup(func() {
		registeredMu.Lock()
		for _, n := range names {
			delete(registered, n)
		}
		registeredMu.Unlock()
	})
}

// TestPresetJSONRoundTripFrontier is the registry's fidelity guarantee:
// the hand-calibrated Frontier plant survives a JSON round trip through
// the registry bit-for-bit, so deployments can ship calibrated plants as
// data without a rebuild.
func TestPresetJSONRoundTripFrontier(t *testing.T) {
	data, err := json.Marshal(map[string]Config{"frontier-json": Frontier()})
	if err != nil {
		t.Fatal(err)
	}
	names, err := RegisterPresetsFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	cleanupRegistry(t, "frontier-json")
	if len(names) != 1 || names[0] != "frontier-json" {
		t.Fatalf("registered names = %v", names)
	}
	got, ok := Preset("frontier-json")
	if !ok {
		t.Fatal("registered preset not resolvable")
	}
	if got != Frontier() {
		t.Fatalf("JSON round trip changed the plant:\ngot  %+v\nwant %+v", got, Frontier())
	}
}

// TestRegisteredPresetShadowsBuiltin pins the resolution order the spec
// pipeline relies on: a registered plant wins over a built-in of the
// same name, so a deployment can recalibrate "frontier" as data.
func TestRegisteredPresetShadowsBuiltin(t *testing.T) {
	cfg := Frontier()
	cfg.CTSupplySetC = 23.5
	if err := RegisterPreset("frontier", cfg); err != nil {
		t.Fatal(err)
	}
	cleanupRegistry(t, "frontier")
	got, ok := Preset("frontier")
	if !ok {
		t.Fatal("preset vanished")
	}
	if got.CTSupplySetC != 23.5 {
		t.Fatalf("registered preset did not shadow the built-in: CTSupplySetC = %v", got.CTSupplySetC)
	}
}

// TestRegisterPresetsFromFileAndValidation covers the file loader and
// the all-or-nothing validation: one invalid plant aborts the load with
// nothing registered.
func TestRegisterPresetsFromFileAndValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "presets.json")
	data, err := json.Marshal(map[string]Config{"site-a": Frontier()})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	names, err := RegisterPresetsFromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cleanupRegistry(t, "site-a")
	if len(names) != 1 || names[0] != "site-a" {
		t.Fatalf("names = %v", names)
	}

	bad := Frontier()
	bad.NumCDUs = 0
	data, err = json.Marshal(map[string]Config{"ok": Frontier(), "broken": bad})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RegisterPresetsFromJSON(data); err == nil {
		t.Fatal("invalid preset accepted")
	}
	if _, ok := Preset("ok"); ok {
		t.Fatal("partial load registered the valid half of an invalid document")
	}
}
