package core

import (
	"fmt"
	"runtime"
	"sync"

	"exadigit/internal/config"
)

// RunBatch executes a battery of scenarios against the same machine
// specification across a pool of workers, saturating the host the way
// the paper runs "the different days in parallel" for its 183-day
// replay study. Each scenario gets its own Twin (simulations share no
// mutable state), results come back indexed like the input, and the
// first scenario error aborts the batch. workers ≤ 0 uses
// runtime.NumCPU().
//
// This is the generalized fan-out behind exp.RunDays and the what-if
// sweeps: any mix of workloads, power modes, schedulers, and seeds can
// ride the same pool.
func RunBatch(spec config.SystemSpec, scenarios []Scenario, workers int) ([]*Result, error) {
	if len(scenarios) == 0 {
		return nil, nil
	}
	cs, err := Compile(spec)
	if err != nil {
		return nil, err
	}
	return cs.RunBatch(scenarios, workers)
}

// RunBatch executes the scenarios against the compiled spec, sharing its
// power models and cooling design across every worker — the per-scenario
// setup cost is paid once per spec, not once per run. See RunBatch (the
// package function) for semantics.
func (cs *CompiledSpec) RunBatch(scenarios []Scenario, workers int) ([]*Result, error) {
	if len(scenarios) == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}

	results := make([]*Result, len(scenarios))
	errs := make([]error, len(scenarios))
	var wg sync.WaitGroup
	idxCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tw := cs.Twin()
			for i := range idxCh {
				results[i], errs[i] = tw.Run(scenarios[i])
			}
		}()
	}
	for i := range scenarios {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			name := scenarios[i].Name
			if name == "" {
				name = string(scenarios[i].Workload)
			}
			return nil, fmt.Errorf("core: batch scenario %d (%s): %w", i, name, err)
		}
	}
	return results, nil
}
