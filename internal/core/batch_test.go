package core

import (
	"math"
	"runtime"
	"testing"

	"exadigit/internal/config"
	"exadigit/internal/job"
)

func batchScenarios(n int, horizon float64) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		gen := job.DefaultGeneratorConfig()
		gen.Seed = int64(1000 + i)
		gen.MaxNodes = 9472
		out[i] = Scenario{
			Name:       "seed-" + string(rune('a'+i)),
			Workload:   WorkloadSynthetic,
			HorizonSec: horizon,
			TickSec:    15,
			Generator:  gen,
			NoExport:   true,
		}
	}
	return out
}

// TestRunBatchMatchesSerial: the parallel batch must produce exactly the
// reports a serial loop over Twin.Run produces — worker scheduling must
// not leak into results.
func TestRunBatchMatchesSerial(t *testing.T) {
	spec := config.Frontier()
	scenarios := batchScenarios(4, 1800)

	batch, err := RunBatch(spec, scenarios, runtime.NumCPU())
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(scenarios) {
		t.Fatalf("batch returned %d results for %d scenarios", len(batch), len(scenarios))
	}
	for i, sc := range scenarios {
		tw, err := NewFromSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := tw.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		b := batch[i]
		if b == nil || b.Report == nil {
			t.Fatalf("scenario %d: missing result", i)
		}
		if b.Report.JobsCompleted != serial.Report.JobsCompleted {
			t.Errorf("scenario %d jobs: batch %d vs serial %d",
				i, b.Report.JobsCompleted, serial.Report.JobsCompleted)
		}
		if math.Abs(b.Report.EnergyMWh-serial.Report.EnergyMWh) > 1e-12 {
			t.Errorf("scenario %d energy: batch %v vs serial %v",
				i, b.Report.EnergyMWh, serial.Report.EnergyMWh)
		}
		if b.Dataset != nil {
			t.Errorf("scenario %d: NoExport should suppress the dataset", i)
		}
	}
}

func TestRunBatchSingleWorker(t *testing.T) {
	res, err := RunBatch(config.Frontier(), batchScenarios(3, 900), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r == nil || r.Report.EnergyMWh <= 0 {
			t.Fatalf("scenario %d: bad result %+v", i, r)
		}
	}
}

func TestRunBatchErrorsPropagate(t *testing.T) {
	bad := batchScenarios(2, 900)
	bad[1].HorizonSec = -5
	if _, err := RunBatch(config.Frontier(), bad, 0); err == nil {
		t.Error("negative horizon should fail the batch")
	}
	bad[1].HorizonSec = 900
	bad[0].Engine = "warp-drive"
	if _, err := RunBatch(config.Frontier(), bad, 0); err == nil {
		t.Error("unknown engine should fail the batch")
	}
}

func TestRunBatchEmpty(t *testing.T) {
	res, err := RunBatch(config.Frontier(), nil, 4)
	if err != nil || res != nil {
		t.Errorf("empty batch: %v, %v", res, err)
	}
}

// TestScenarioEngineSelection: "dense" runs the reference engine and
// matches the default event engine.
func TestScenarioEngineSelection(t *testing.T) {
	gen := job.DefaultGeneratorConfig()
	gen.Seed = 31
	base := Scenario{
		Workload: WorkloadSynthetic, HorizonSec: 1800, TickSec: 15,
		Generator: gen, NoExport: true,
	}
	dense := base
	dense.Engine = "dense"
	event := base
	event.Engine = "event"
	res, err := RunBatch(config.Frontier(), []Scenario{dense, event}, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, e := res[0].Report, res[1].Report
	if d.JobsCompleted != e.JobsCompleted {
		t.Errorf("jobs: dense %d vs event %d", d.JobsCompleted, e.JobsCompleted)
	}
	if rel := math.Abs(d.EnergyMWh-e.EnergyMWh) / d.EnergyMWh; rel > 1e-9 {
		t.Errorf("energy diverges %v rel", rel)
	}
}

func BenchmarkRunBatch(b *testing.B) {
	spec := config.Frontier()
	scenarios := batchScenarios(runtime.NumCPU(), 3600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunBatch(spec, scenarios, 0); err != nil {
			b.Fatal(err)
		}
	}
}
