package core

import (
	"fmt"
	"sync"

	"exadigit/internal/autocsm"
	"exadigit/internal/config"
	"exadigit/internal/fmu"
	"exadigit/internal/power"
)

// CompiledSpec is a validated SystemSpec with its expensive derived
// artifacts — the per-mode power models and the cooling FMU design —
// built once and shared read-only by every scenario run against it. A
// RunBatch worker or service sweep that rebuilds these per scenario pays
// the full 9472-node model assembly and 300+-variable FMU description
// walk each time; compiling once amortizes that across the whole sweep.
//
// All methods are safe for concurrent use; the cached artifacts are
// immutable once built (simulations read them but never write).
type CompiledSpec struct {
	spec config.SystemSpec
	hash string

	mu     sync.Mutex
	models map[string]*power.Model

	coolMu      sync.Mutex
	coolDesigns map[string]*fmu.Design // cooling-spec hash → compiled design
	coolOrder   []string               // design keys, oldest first, for eviction
}

// maxCoolingDesigns bounds the per-spec design cache: scenarios may
// carry arbitrary per-scenario cooling overrides over HTTP, so distinct
// plants must not pin designs forever. Evicted designs keep working for
// running simulations; a re-submission recompiles.
const maxCoolingDesigns = 32

// Compile validates the spec and wraps it for shared use. Power models
// and the cooling design are built lazily, on first demand per power
// mode, and cached for the lifetime of the CompiledSpec.
func Compile(spec config.SystemSpec) (*CompiledSpec, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	return &CompiledSpec{
		spec:        spec,
		hash:        hash,
		models:      make(map[string]*power.Model),
		coolDesigns: make(map[string]*fmu.Design),
	}, nil
}

// Spec returns a copy of the underlying system specification.
func (cs *CompiledSpec) Spec() config.SystemSpec { return cs.spec }

// Hash returns the spec's canonical content hash — the spec half of the
// (spec, scenario) result-cache key.
func (cs *CompiledSpec) Hash() string { return cs.hash }

// Model returns the partition-0 power model with the given power mode
// applied ("" keeps the spec's own mode), building it on first use and
// serving the shared instance afterwards.
func (cs *CompiledSpec) Model(mode string) (*power.Model, error) {
	key := mode
	if key == "" {
		key = cs.spec.Partitions[0].Power.Mode
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if m, ok := cs.models[key]; ok {
		return m, nil
	}
	part := cs.spec.Partitions[0]
	if mode != "" {
		part.Power.Mode = mode
	}
	m, err := part.BuildModel()
	if err != nil {
		return nil, err
	}
	cs.models[key] = m
	return m, nil
}

// CoolingDesign returns the shared FMU design for the spec's own cooling
// plant, compiling it on first use. SystemSpec.Cooling is the single
// source of truth: a preset name resolves to its hand-calibrated plant
// (the default Frontier spec is bit-identical to the paper-validated
// model), anything else is synthesized by AutoCSM from the spec's design
// quantities.
func (cs *CompiledSpec) CoolingDesign() (*fmu.Design, error) {
	return cs.CoolingDesignFor(cs.spec.Cooling)
}

// CoolingDesignFor returns the shared FMU design for an arbitrary
// cooling spec — the path scenarios take when they override the system's
// plant, letting one sweep mix cooling variants against the same compute
// spec. Designs are compiled once per distinct cooling spec and served
// from a bounded cache.
func (cs *CompiledSpec) CoolingDesignFor(spec config.CoolingSpec) (*fmu.Design, error) {
	key, err := spec.Hash()
	if err != nil {
		return nil, fmt.Errorf("core: cooling design: %w", err)
	}
	cs.coolMu.Lock()
	defer cs.coolMu.Unlock()
	if d, ok := cs.coolDesigns[key]; ok {
		return d, nil
	}
	cfg, err := autocsm.Compile(spec)
	if err != nil {
		return nil, fmt.Errorf("core: cooling design: %w", err)
	}
	// The simulation couples one heat input per topology CDU, so the
	// plant must expose at least that many loops; catching it here gives
	// submitters a clear error instead of a missing-FMU-variable failure
	// deep inside a worker.
	if topo := cs.spec.Partitions[0].NumCDUs; cfg.NumCDUs < topo {
		return nil, fmt.Errorf("core: cooling design: plant has %d CDU loops but partition %q couples %d",
			cfg.NumCDUs, cs.spec.Partitions[0].Name, topo)
	}
	d, err := fmu.NewDesign(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: cooling design: %w", err)
	}
	cs.coolDesigns[key] = d
	cs.coolOrder = append(cs.coolOrder, key)
	for len(cs.coolOrder) > maxCoolingDesigns {
		delete(cs.coolDesigns, cs.coolOrder[0])
		cs.coolOrder = cs.coolOrder[1:]
	}
	return d, nil
}

// Twin returns a fresh Twin bound to the compiled spec. Twins are cheap
// (all heavy state is shared through the CompiledSpec) but not safe for
// concurrent use themselves — create one per worker.
func (cs *CompiledSpec) Twin() *Twin {
	return &Twin{Spec: cs.spec, compiled: cs}
}
