package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"exadigit/internal/autocsm"
	"exadigit/internal/config"
	"exadigit/internal/fmu"
	"exadigit/internal/power"
)

// CompiledSpec is a validated SystemSpec with its expensive derived
// artifacts — the per-mode power models and the cooling FMU design —
// built once and shared read-only by every scenario run against it. A
// RunBatch worker or service sweep that rebuilds these per scenario pays
// the full 9472-node model assembly and 300+-variable FMU description
// walk each time; compiling once amortizes that across the whole sweep.
//
// All methods are safe for concurrent use; the cached artifacts are
// immutable once built (simulations read them but never write).
type CompiledSpec struct {
	spec config.SystemSpec
	hash string

	mu     sync.Mutex
	models map[string][]*power.Model // power-mode key → per-partition models

	coolMu      sync.Mutex
	coolDesigns map[string]*fmu.Design // resolved-plant content hash → compiled design
	coolOrder   []string               // design keys, oldest first, for eviction
}

// maxCoolingDesigns bounds the per-spec design cache: scenarios may
// carry arbitrary per-scenario cooling overrides over HTTP, so distinct
// plants must not pin designs forever. Evicted designs keep working for
// running simulations; a re-submission recompiles.
const maxCoolingDesigns = 32

// Compile validates the spec and wraps it for shared use. Power models
// and the cooling design are built lazily, on first demand per power
// mode, and cached for the lifetime of the CompiledSpec.
func Compile(spec config.SystemSpec) (*CompiledSpec, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	return &CompiledSpec{
		spec:        spec,
		hash:        hash,
		models:      make(map[string][]*power.Model),
		coolDesigns: make(map[string]*fmu.Design),
	}, nil
}

// Spec returns a copy of the underlying system specification.
func (cs *CompiledSpec) Spec() config.SystemSpec { return cs.spec }

// Hash returns the spec's canonical content hash — the spec half of the
// (spec, scenario) result-cache key.
func (cs *CompiledSpec) Hash() string { return cs.hash }

// Models returns every partition's power model with the given power mode
// applied ("" keeps each partition's own mode), building them on first
// use and serving the shared instances afterwards. The returned slice is
// indexed like the spec's partitions and must be treated as read-only.
func (cs *CompiledSpec) Models(mode string) ([]*power.Model, error) {
	key := mode
	if key != "" {
		// An explicit mode that matches every partition's own mode is the
		// spec's default spelled out — share the default build.
		same := true
		for i := range cs.spec.Partitions {
			if cs.spec.Partitions[i].Power.Mode != mode {
				same = false
				break
			}
		}
		if same {
			key = ""
		}
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if ms, ok := cs.models[key]; ok {
		return ms, nil
	}
	ms := make([]*power.Model, len(cs.spec.Partitions))
	for i := range cs.spec.Partitions {
		part := cs.spec.Partitions[i]
		if mode != "" {
			part.Power.Mode = mode
		}
		m, err := part.BuildModel()
		if err != nil {
			return nil, err
		}
		ms[i] = m
	}
	cs.models[key] = ms
	return ms, nil
}

// CoolingDesign returns the shared FMU design for the spec's own cooling
// plant, compiling it on first use. SystemSpec.Cooling is the single
// source of truth: a preset name resolves to its hand-calibrated plant
// (the default Frontier spec is bit-identical to the paper-validated
// model), anything else is synthesized by AutoCSM from the spec's design
// quantities.
func (cs *CompiledSpec) CoolingDesign() (*fmu.Design, error) {
	return cs.CoolingDesignFor(cs.spec.Cooling)
}

// CoolingDesignFor returns the shared FMU design for an arbitrary
// cooling spec — the path scenarios take when they override the system's
// plant, letting one sweep mix cooling variants against the same compute
// spec. The spec is resolved to a concrete plant first (one registry
// read) and the cache keyed by the resolved content, so a preset
// re-registered concurrently can never cache a design under another
// plant's hash; designs are compiled once per distinct plant and served
// from a bounded cache.
func (cs *CompiledSpec) CoolingDesignFor(spec config.CoolingSpec) (*fmu.Design, error) {
	cfg, err := autocsm.Compile(spec)
	if err != nil {
		return nil, fmt.Errorf("core: cooling design: %w", err)
	}
	raw, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: cooling design: %w", err)
	}
	sum := sha256.Sum256(raw)
	key := hex.EncodeToString(sum[:])
	cs.coolMu.Lock()
	defer cs.coolMu.Unlock()
	if d, ok := cs.coolDesigns[key]; ok {
		return d, nil
	}
	// The simulation couples one heat input per topology CDU across all
	// partitions (each partition claims a contiguous loop range of the
	// shared plant), so the plant must expose at least the summed count;
	// catching it here gives submitters a clear error instead of a
	// missing-FMU-variable failure deep inside a worker.
	topo := 0
	for i := range cs.spec.Partitions {
		topo += cs.spec.Partitions[i].NumCDUs
	}
	if cfg.NumCDUs < topo {
		return nil, fmt.Errorf("core: cooling design: plant has %d CDU loops but the spec's %d partition(s) couple %d",
			cfg.NumCDUs, len(cs.spec.Partitions), topo)
	}
	d, err := fmu.NewDesign(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: cooling design: %w", err)
	}
	cs.coolDesigns[key] = d
	cs.coolOrder = append(cs.coolOrder, key)
	for len(cs.coolOrder) > maxCoolingDesigns {
		delete(cs.coolDesigns, cs.coolOrder[0])
		cs.coolOrder = cs.coolOrder[1:]
	}
	return d, nil
}

// Twin returns a fresh Twin bound to the compiled spec. Twins are cheap
// (all heavy state is shared through the CompiledSpec) but not safe for
// concurrent use themselves — create one per worker.
func (cs *CompiledSpec) Twin() *Twin {
	return &Twin{Spec: cs.spec, compiled: cs}
}
