package core

import (
	"fmt"
	"sync"

	"exadigit/internal/config"
	"exadigit/internal/cooling"
	"exadigit/internal/fmu"
	"exadigit/internal/power"
)

// CompiledSpec is a validated SystemSpec with its expensive derived
// artifacts — the per-mode power models and the cooling FMU design —
// built once and shared read-only by every scenario run against it. A
// RunBatch worker or service sweep that rebuilds these per scenario pays
// the full 9472-node model assembly and 300+-variable FMU description
// walk each time; compiling once amortizes that across the whole sweep.
//
// All methods are safe for concurrent use; the cached artifacts are
// immutable once built (simulations read them but never write).
type CompiledSpec struct {
	spec config.SystemSpec
	hash string

	mu     sync.Mutex
	models map[string]*power.Model

	coolOnce   sync.Once
	coolDesign *fmu.Design
	coolErr    error
}

// Compile validates the spec and wraps it for shared use. Power models
// and the cooling design are built lazily, on first demand per power
// mode, and cached for the lifetime of the CompiledSpec.
func Compile(spec config.SystemSpec) (*CompiledSpec, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	return &CompiledSpec{
		spec:   spec,
		hash:   hash,
		models: make(map[string]*power.Model),
	}, nil
}

// Spec returns a copy of the underlying system specification.
func (cs *CompiledSpec) Spec() config.SystemSpec { return cs.spec }

// Hash returns the spec's canonical content hash — the spec half of the
// (spec, scenario) result-cache key.
func (cs *CompiledSpec) Hash() string { return cs.hash }

// Model returns the partition-0 power model with the given power mode
// applied ("" keeps the spec's own mode), building it on first use and
// serving the shared instance afterwards.
func (cs *CompiledSpec) Model(mode string) (*power.Model, error) {
	key := mode
	if key == "" {
		key = cs.spec.Partitions[0].Power.Mode
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if m, ok := cs.models[key]; ok {
		return m, nil
	}
	part := cs.spec.Partitions[0]
	if mode != "" {
		part.Power.Mode = mode
	}
	m, err := part.BuildModel()
	if err != nil {
		return nil, err
	}
	cs.models[key] = m
	return m, nil
}

// CoolingDesign returns the shared FMU design for the spec's cooling
// plant, compiling it on first use. The plant itself is Frontier-shaped
// today (matching the pre-existing raps coupling and the hand-calibrated
// cooling.Frontier configuration); generalizing it to AutoCSM-synthesized
// plants is a ROADMAP follow-on.
func (cs *CompiledSpec) CoolingDesign() (*fmu.Design, error) {
	cs.coolOnce.Do(func() {
		cs.coolDesign, cs.coolErr = fmu.NewDesign(cooling.Frontier())
	})
	if cs.coolErr != nil {
		return nil, fmt.Errorf("core: cooling design: %w", cs.coolErr)
	}
	return cs.coolDesign, nil
}

// Twin returns a fresh Twin bound to the compiled spec. Twins are cheap
// (all heavy state is shared through the CompiledSpec) but not safe for
// concurrent use themselves — create one per worker.
func (cs *CompiledSpec) Twin() *Twin {
	return &Twin{Spec: cs.spec, compiled: cs}
}
