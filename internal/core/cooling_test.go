package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/cooling"
	"exadigit/internal/fmu"
	"exadigit/internal/job"
	"exadigit/internal/power"
	"exadigit/internal/raps"
)

// TestSpecDrivenFrontierCoolingGolden pins the refactor's bit-identity
// guarantee: the default Frontier spec, routed through the spec-driven
// pipeline (CoolingSpec → preset → CompiledSpec.CoolingDesign), produces
// exactly the cooled-day telemetry the pre-refactor hand-calibrated path
// produced (raps over fmu.NewDesign(cooling.Frontier()) directly).
func TestSpecDrivenFrontierCoolingGolden(t *testing.T) {
	const horizon = 2 * 3600
	const wetBulb = 18.0

	// Spec-driven path: the Frontier system spec is the source of truth.
	tw, err := NewFrontier()
	if err != nil {
		t.Fatal(err)
	}
	res, err := tw.Run(Scenario{
		Workload: WorkloadHPL, BenchmarkWallSec: 3 * 3600,
		HorizonSec: horizon, TickSec: 15,
		Cooling: true, WetBulbC: wetBulb,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-refactor path: hand-calibrated plant compiled directly,
	// bypassing config.SystemSpec.Cooling entirely.
	design, err := fmu.NewDesign(cooling.Frontier())
	if err != nil {
		t.Fatal(err)
	}
	rcfg := raps.DefaultConfig()
	rcfg.TickSec = 15
	rcfg.EnableCooling = true
	rcfg.CoolingDesign = design
	rcfg.WetBulbC = func(float64) float64 { return wetBulb }
	sim, err := raps.New(rcfg, power.NewFrontierModel(), []*job.Job{job.NewHPL(1, 0, 3*3600)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(horizon); err != nil {
		t.Fatal(err)
	}

	ref := sim.History()
	got := res.History
	if len(got) == 0 || len(got) != len(ref) {
		t.Fatalf("history lengths differ: %d vs %d", len(got), len(ref))
	}
	for i := range got {
		if got[i].PowerW != ref[i].PowerW || got[i].PUE != ref[i].PUE ||
			got[i].HTWSupplyC != ref[i].HTWSupplyC || got[i].HTWReturnC != ref[i].HTWReturnC ||
			got[i].SecSupplyMaxC != ref[i].SecSupplyMaxC || got[i].LossW != ref[i].LossW {
			t.Fatalf("sample %d diverged:\nspec-driven %+v\nhand-built  %+v", i, got[i], ref[i])
		}
	}
}

// TestCoolingDesignFollowsSpec pins that CompiledSpec.CoolingDesign
// compiles the spec's own cooling section: clearing the preset switches
// the default Frontier spec to an AutoCSM-synthesized plant, which is a
// different (but valid) design.
func TestCoolingDesignFollowsSpec(t *testing.T) {
	preset := config.Frontier()
	cs1, err := Compile(preset)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := cs1.CoolingDesign()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d1.Config(), cooling.Frontier(); got != want {
		t.Fatal("preset spec must resolve to the hand-calibrated plant verbatim")
	}

	auto := config.Frontier()
	auto.Cooling.Preset = ""
	cs2, err := Compile(auto)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := cs2.CoolingDesign()
	if err != nil {
		t.Fatal(err)
	}
	if d2.Config() == cooling.Frontier() {
		t.Fatal("AutoCSM path unexpectedly reproduced the hand-calibrated plant bit-for-bit")
	}
	if d2.Config().NumCDUs != 25 {
		t.Fatalf("AutoCSM plant CDUs = %d", d2.Config().NumCDUs)
	}
}

// TestScenarioCoolingOverride runs the same workload against three
// plants through per-scenario overrides and requires visibly distinct
// plant behavior.
func TestScenarioCoolingOverride(t *testing.T) {
	cs, err := Compile(config.Frontier())
	if err != nil {
		t.Fatal(err)
	}
	auto := config.Frontier().Cooling
	auto.Preset = ""
	undersized := auto
	undersized.NumTowers = 4
	undersized.TowerFlowGPM = 7500
	undersized.PrimaryFlowGPM = 6000

	base := Scenario{
		Workload: WorkloadHPL, BenchmarkWallSec: 2 * 3600,
		HorizonSec: 1800, TickSec: 15, Cooling: true, WetBulbC: 19,
	}
	variants := []*config.CoolingSpec{nil, &auto, &undersized}
	pues := make([]float64, len(variants))
	for i, v := range variants {
		sc := base
		sc.CoolingSpec = v
		res, err := cs.Twin().Run(sc)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		pues[i] = res.Report.AvgPUE
		if pues[i] <= 1.0 {
			t.Fatalf("variant %d: PUE = %v", i, pues[i])
		}
	}
	for i := 0; i < len(pues); i++ {
		for k := i + 1; k < len(pues); k++ {
			if pues[i] == pues[k] {
				t.Errorf("variants %d and %d cooled identically (PUE %v) — override not applied", i, k, pues[i])
			}
		}
	}
}

// TestCoolingOverrideTooFewCDUs pins the boundary error: a plant with
// fewer CDU loops than the topology couples is rejected at design
// compilation with a clear message, not a missing-FMU-variable failure.
func TestCoolingOverrideTooFewCDUs(t *testing.T) {
	cs, err := Compile(config.Frontier())
	if err != nil {
		t.Fatal(err)
	}
	small := config.Frontier().Cooling
	small.Preset = ""
	small.NumCDUs = 10
	_, err = cs.CoolingDesignFor(small)
	if err == nil || !strings.Contains(err.Error(), "CDU loops") {
		t.Fatalf("want CDU-count feasibility error, got %v", err)
	}
}

// TestCoolingOutputsFollowSpec pins the viz satellite: dashboard channel
// names come from the compiled design of the plant that actually ran —
// a Setonix-like spec exposes its own 7 AutoCSM-sized CDU loops, not
// Frontier's 25 hardcoded names.
func TestCoolingOutputsFollowSpec(t *testing.T) {
	tw, err := NewFromSpec(config.SetonixLike())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Run(Scenario{
		Workload: WorkloadPeak, HorizonSec: 300, TickSec: 15,
		Cooling: true, WetBulbC: 18,
	}); err != nil {
		t.Fatal(err)
	}
	out := tw.CoolingOutputs()
	if out == nil {
		t.Fatal("cooled run exposed no outputs")
	}
	if _, ok := out["cdu[7].pump_power_w"]; !ok {
		t.Error("7th CDU channel missing — names not from the compiled design")
	}
	if _, ok := out["cdu[8].pump_power_w"]; ok {
		t.Error("phantom 8th CDU channel — names still Frontier-shaped")
	}
	if _, ok := out["pue"]; !ok {
		t.Error("pue channel missing")
	}
	want := cooling.OutputNames(tw.Simulation().CoolingPlant().Config())
	if len(out) != len(want) {
		t.Errorf("channels = %d, want %d", len(out), len(want))
	}
}

// TestVizReadsDuringRunAreRaceFree exercises the dashboard pattern —
// /api/cooling and /api/status polling while /api/run drives a new run
// on the same Twin — so `go test -race` guards the shared run-artifact
// snapshot.
func TestVizReadsDuringRunAreRaceFree(t *testing.T) {
	tw, err := NewFrontier()
	if err != nil {
		t.Fatal(err)
	}
	// Seed a cooled run so readers have a plant to label.
	if _, err := tw.Run(Scenario{
		Workload: WorkloadIdle, HorizonSec: 120, TickSec: 15, Cooling: true, WetBulbC: 20,
	}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tw.CoolingOutputs()
				tw.Status()
				tw.Series()
			}
		}
	}()
	for i := 0; i < 3; i++ {
		if _, err := tw.Run(Scenario{
			Workload: WorkloadIdle, HorizonSec: 120, TickSec: 15, Cooling: true, WetBulbC: 20,
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestRunContextAbortsMidDay pins the context-aware abort: cancelling
// mid-run stops a cooled day at the next tick boundary instead of
// letting the horizon play out.
func TestRunContextAbortsMidDay(t *testing.T) {
	tw, err := NewFrontier()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Let the simulation get going, then pull the plug.
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = tw.RunContext(ctx, Scenario{
		Workload: WorkloadSynthetic, HorizonSec: 14 * 24 * 3600, TickSec: 1,
		Cooling: true, WetBulbC: 20,
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("abort took %v — cancellation did not reach the tick loop", wall)
	}
	sim := tw.Simulation()
	if sim == nil || sim.Now() >= 14*24*3600 {
		t.Fatal("simulation ran to completion despite cancel")
	}
}

// TestAdaptiveSolverMatchesFixedAcrossPlants is the accuracy property
// behind the quiescent-plant fast path: for several plant designs — the
// hand-calibrated Frontier preset, its AutoCSM synthesis, and a re-sized
// AutoCSM variant — the same cooled day under the adaptive solver stays
// within the configured tolerance of the fixed-step reference on energy
// (exactly: cooling does not feed back into power), average PUE, and the
// recorded loop temperatures.
func TestAdaptiveSolverMatchesFixedAcrossPlants(t *testing.T) {
	preset := config.Frontier().Cooling
	auto := preset
	auto.Preset = ""
	resized := auto
	resized.NumTowers = 4
	resized.TowerFlowGPM = 7500
	resized.PrimaryFlowGPM = 6000

	cs, err := Compile(config.Frontier())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		spec config.CoolingSpec
	}{
		{"frontier-preset", preset},
		{"autocsm-frontier", auto},
		{"autocsm-resized", resized},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(solver string) *Result {
				spec := tc.spec
				spec.Solver = solver
				gen := job.DefaultGeneratorConfig()
				gen.Seed = 77
				res, err := cs.Twin().Run(Scenario{
					Workload: WorkloadSynthetic, Generator: gen,
					HorizonSec: 3600, TickSec: 15, WetBulbC: 19,
					CoolingSpec: &spec, NoExport: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			fixed := run("rk4")
			adaptive := run("adaptive")
			if fixed.Report.EnergyMWh != adaptive.Report.EnergyMWh {
				t.Errorf("energy diverged: %v vs %v MWh",
					fixed.Report.EnergyMWh, adaptive.Report.EnergyMWh)
			}
			if d := math.Abs(fixed.Report.AvgPUE - adaptive.Report.AvgPUE); d > 0.005 {
				t.Errorf("PUE divergence %v > 0.005 (fixed %v, adaptive %v)",
					d, fixed.Report.AvgPUE, adaptive.Report.AvgPUE)
			}
			if len(fixed.History) != len(adaptive.History) {
				t.Fatalf("history lengths differ: %d vs %d", len(fixed.History), len(adaptive.History))
			}
			for i := range fixed.History {
				f, a := fixed.History[i], adaptive.History[i]
				if math.Abs(f.HTWSupplyC-a.HTWSupplyC) > 0.75 ||
					math.Abs(f.HTWReturnC-a.HTWReturnC) > 0.75 ||
					math.Abs(f.SecSupplyMaxC-a.SecSupplyMaxC) > 0.75 {
					t.Fatalf("sample %d loop temperatures diverged:\nfixed    %+v\nadaptive %+v", i, f, a)
				}
			}
		})
	}
}
