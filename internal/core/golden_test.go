package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// frontierCooledTelemetryGolden is the SHA-256 of the NDJSON telemetry
// stream of the deterministic Frontier scenario below, captured on the
// single-partition engine before the multi-partition refactor. The
// refactored pipeline must reproduce the stream byte for byte: the
// Frontier spec has one partition, so the partition dimension must be
// invisible in its telemetry.
const frontierCooledTelemetryGolden = "19a49abd8e88dda25d7fbd539599d2f05b3e518396e3bff811ea8c1fa7678207"

// TestFrontierCooledTelemetryBitGolden pins the Frontier single-partition
// telemetry bit-identical across the multi-partition refactor (ISSUE 5
// satellite): same spec, same scenario, same bytes.
func TestFrontierCooledTelemetryBitGolden(t *testing.T) {
	tw, err := NewFrontier()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tw.Run(Scenario{
		Workload: WorkloadHPL, BenchmarkWallSec: 3 * 3600,
		HorizonSec: 2 * 3600, TickSec: 15,
		Cooling: true, WetBulbC: 18,
		TelemetryTo: &buf, NoExport: true,
	}); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	if got := hex.EncodeToString(sum[:]); got != frontierCooledTelemetryGolden {
		t.Fatalf("Frontier cooled telemetry stream hash = %s, want %s (stream changed across refactor)",
			got, frontierCooledTelemetryGolden)
	}
}
