package core

import (
	"bytes"
	"math"
	"testing"

	"exadigit/internal/config"
	"exadigit/internal/job"
	"exadigit/internal/telemetry"
)

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	m := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1e-12)
	return d / m
}

// TestSetonixLikeTwoPartitionDay runs the §V generalization end to end:
// a Setonix-like two-partition spec simulates one cooled stretch through
// Twin.Run with heterogeneous per-partition workloads, producing a
// per-partition report, per-partition telemetry, and a shared-plant PUE.
func TestSetonixLikeTwoPartitionDay(t *testing.T) {
	tw, err := NewFromSpec(config.SetonixLike())
	if err != nil {
		t.Fatal(err)
	}
	gen := job.DefaultGeneratorConfig()
	gen.Seed = 11
	var buf bytes.Buffer
	res, err := tw.Run(Scenario{
		HorizonSec: 2 * 3600, TickSec: 15,
		Cooling: true, WetBulbC: 20,
		Partitions: []PartitionScenario{
			{Workload: WorkloadSynthetic, Generator: gen},
			{Workload: WorkloadPeak},
		},
		TelemetryTo: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if len(rep.Partitions) != 2 {
		t.Fatalf("report has %d partition entries, want 2", len(rep.Partitions))
	}
	if rep.Partitions[0].Name != "cpu" || rep.Partitions[1].Name != "gpu" {
		t.Fatalf("partition names = %q, %q", rep.Partitions[0].Name, rep.Partitions[1].Name)
	}
	var sum float64
	for _, p := range rep.Partitions {
		if p.EnergyMWh <= 0 {
			t.Fatalf("partition %q consumed no energy: %+v", p.Name, p)
		}
		sum += p.EnergyMWh
	}
	if relDiff(sum, rep.EnergyMWh) > 1e-9 {
		t.Errorf("partition energies sum to %v MWh, report says %v MWh", sum, rep.EnergyMWh)
	}
	// The GPU partition runs pinned at peak, so its utilization must sit
	// at 1 while the synthetic CPU partition fluctuates below.
	if rep.Partitions[1].AvgUtilization < 0.99 {
		t.Errorf("peak GPU partition utilization = %v", rep.Partitions[1].AvgUtilization)
	}
	if rep.AvgPUE <= 1 {
		t.Errorf("shared plant PUE = %v", rep.AvgPUE)
	}
	// History and the NDJSON stream both carry the per-partition split.
	if len(res.History) == 0 {
		t.Fatal("no history")
	}
	for _, smp := range res.History {
		if len(smp.PartPowerW) != 2 {
			t.Fatalf("sample t=%v lacks the partition split: %+v", smp.TimeSec, smp.PartPowerW)
		}
		if got := smp.PartPowerW[0] + smp.PartPowerW[1]; got != smp.PowerW {
			t.Fatalf("sample t=%v: partition powers sum to %v, total %v", smp.TimeSec, got, smp.PowerW)
		}
	}
	streamed, err := telemetry.ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed.Series) == 0 {
		t.Fatal("stream carried no series")
	}
	for _, p := range streamed.Series {
		if len(p.PartPowerW) != 2 {
			t.Fatalf("streamed point t=%v lacks part_power_w", p.TimeSec)
		}
	}
	// The dashboard series exposes the same split in MW.
	series := tw.Series()
	if len(series) == 0 || len(series[0].PartMW) != 2 {
		t.Fatal("viz series lacks the per-partition channel")
	}
	if st := tw.Status(); len(st.PartPowerMW) != 2 {
		t.Fatalf("viz status lacks the per-partition channel: %+v", st)
	}
}

// TestSetonixLikeRunBatch drives the two-partition spec through the
// parallel batch runner: heterogeneous scenarios share one CompiledSpec
// (per-partition models built once) and return per-partition reports.
func TestSetonixLikeRunBatch(t *testing.T) {
	gen := job.DefaultGeneratorConfig()
	gen.Seed = 3
	scenarios := []Scenario{
		{
			HorizonSec: 1800, TickSec: 15, Cooling: true, WetBulbC: 19,
			Partitions: []PartitionScenario{
				{Workload: WorkloadSynthetic, Generator: gen},
				{Workload: WorkloadIdle},
			},
		},
		{
			HorizonSec: 1800, TickSec: 15, Cooling: true, WetBulbC: 19,
			Partitions: []PartitionScenario{
				{Workload: WorkloadIdle},
				{Workload: WorkloadPeak},
			},
		},
	}
	results, err := RunBatch(config.SetonixLike(), scenarios, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if len(res.Report.Partitions) != 2 {
			t.Fatalf("scenario %d: %d partition entries", i, len(res.Report.Partitions))
		}
	}
	// Scenario 0 loads the CPU partition, scenario 1 the GPU partition.
	if !(results[0].Report.Partitions[0].AvgPowerMW > results[0].Report.Partitions[1].AvgPowerMW*0.2) {
		t.Errorf("scenario 0 partition powers: %+v", results[0].Report.Partitions)
	}
	if results[1].Report.Partitions[1].AvgUtilization < 0.99 {
		t.Errorf("scenario 1 GPU partition not at peak: %+v", results[1].Report.Partitions)
	}
}

// TestScenarioPartitionsValidation pins the failure modes: a partition
// list that does not cover the spec, and per-partition replay, are clear
// errors before any simulation runs.
func TestScenarioPartitionsValidation(t *testing.T) {
	tw, err := NewFromSpec(config.SetonixLike())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Run(Scenario{
		HorizonSec: 60, TickSec: 15,
		Partitions: []PartitionScenario{{Workload: WorkloadIdle}},
	}); err == nil {
		t.Error("short partition list accepted")
	}
	if _, err := tw.Run(Scenario{
		HorizonSec: 60, TickSec: 15,
		Partitions: []PartitionScenario{
			{Workload: WorkloadReplay}, {Workload: WorkloadIdle},
		},
	}); err == nil {
		t.Error("per-partition replay accepted")
	}
}

// TestDefaultWorkloadReplicatesAcrossPartitions pins the fallback: with
// no explicit partition list, the scenario-level workload runs on every
// partition (each sized to its own topology).
func TestDefaultWorkloadReplicatesAcrossPartitions(t *testing.T) {
	tw, err := NewFromSpec(config.SetonixLike())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tw.Run(Scenario{
		Workload: WorkloadPeak, HorizonSec: 600, TickSec: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Partitions) != 2 {
		t.Fatalf("%d partition entries", len(res.Report.Partitions))
	}
	for _, p := range res.Report.Partitions {
		if p.AvgUtilization < 0.99 {
			t.Errorf("partition %q not at peak: %+v", p.Name, p)
		}
	}
}
