package core

import "exadigit/internal/cooling"

// coolingOutputNamesFrontier caches the 317 channel names of the default
// Frontier-shaped plant.
var frontierCoolingNames = cooling.OutputNames(cooling.Frontier())

func coolingOutputNamesFrontier() []string { return frontierCoolingNames }
