package core

import (
	"strconv"

	"exadigit/internal/cooling"
	"exadigit/internal/obs"
)

// CoolingSolverStats returns the most recent run's plant thermal-solver
// accounting (zero before any run or when cooling was disabled) —
// shorthand for Simulation().CoolingSolverStats() that stays nil-safe.
func (tw *Twin) CoolingSolverStats() cooling.SolverStats {
	sim, _ := tw.currentRun()
	if sim == nil {
		return cooling.SolverStats{}
	}
	return sim.CoolingSolverStats()
}

// RegisterTwinMetrics attaches the live twin's last-run gauges to a
// metrics registry: facility power (total and per partition), PUE,
// utilization, scheduler queue depth, and the cooling solver's work
// accounting. Everything is collected at scrape time from the most
// recent run's final sample — registration adds zero work to the tick
// path, which is what keeps the /metrics overhead on a simulation run
// unmeasurable.
func RegisterTwinMetrics(reg *obs.Registry, tw *Twin) {
	reg.GaugeFunc("exadigit_twin_power_watts",
		"Facility power at the most recent run's last sample.",
		func() float64 { return tw.Status().PowerMW * 1e6 })
	reg.GaugeFunc("exadigit_twin_loss_watts",
		"Rectification/distribution losses at the most recent run's last sample.",
		func() float64 { return tw.Status().LossMW * 1e6 })
	reg.GaugeFunc("exadigit_twin_pue",
		"Power usage effectiveness at the most recent run's last sample.",
		func() float64 { return tw.Status().PUE })
	reg.GaugeFunc("exadigit_twin_utilization",
		"Node utilization at the most recent run's last sample.",
		func() float64 { return tw.Status().Utilization })
	reg.GaugeFunc("exadigit_twin_jobs_running",
		"Jobs running at the most recent run's last sample.",
		func() float64 { return float64(tw.Status().JobsRunning) })
	reg.GaugeFunc("exadigit_twin_jobs_pending",
		"Jobs pending at the most recent run's last sample.",
		func() float64 { return float64(tw.Status().JobsPending) })
	reg.VecFunc(obs.KindGauge, "exadigit_twin_partition_power_watts",
		"Per-partition power at the most recent run's last sample.",
		[]string{"partition"},
		func(emit func([]string, float64)) {
			for i, mw := range tw.Status().PartPowerMW {
				emit([]string{strconv.Itoa(i)}, mw*1e6)
			}
		})
	reg.GaugeFunc("exadigit_cooling_quiescent_fraction",
		"Share of the most recent cooled run fast-forwarded through equilibrium holds.",
		func() float64 { return tw.CoolingSolverStats().QuiescentFraction() })
	reg.VecFunc(obs.KindGauge, "exadigit_cooling_solver_steps",
		"Cooling thermal-solver work for the most recent run, by step kind.",
		[]string{"kind"},
		func(emit func([]string, float64)) {
			st := tw.CoolingSolverStats()
			emit([]string{"accepted"}, float64(st.Accepted))
			emit([]string{"rejected"}, float64(st.Rejected))
			emit([]string{"control"}, float64(st.ControlSteps))
			emit([]string{"holds"}, float64(st.Holds))
		})
}
