package core

import (
	"bytes"
	"reflect"
	"testing"

	"exadigit/internal/config"
	"exadigit/internal/job"
	"exadigit/internal/telemetry"
)

// TestStreamedTelemetryMatchesExport: the NDJSON stream written
// incrementally during a run must reassemble into exactly the dataset
// the in-memory ExportTelemetry materializes after it — bit-for-bit
// (JSON float64 encoding round-trips exactly).
func TestStreamedTelemetryMatchesExport(t *testing.T) {
	gen := job.DefaultGeneratorConfig()
	gen.Seed = 9
	var buf bytes.Buffer
	sc := Scenario{
		Name:       "stream-equiv",
		Workload:   WorkloadSynthetic,
		HorizonSec: 2 * 3600,
		TickSec:    15,
		Generator:  gen,
		// WetBulbC deliberately unset: the synthetic weather generator is
		// stateful (noise advances per query), the hardest case for
		// stream/export agreement — the export must reuse the streamed
		// points rather than re-sampling.
		WeatherSeed: 3,
		TelemetryTo: &buf,
	}
	tw, err := NewFromSpec(config.Frontier())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tw.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset == nil {
		t.Fatal("export missing (NoExport unset)")
	}
	if len(res.Dataset.Series) == 0 || len(res.Dataset.Jobs) == 0 {
		t.Fatal("export is empty; test needs real content")
	}

	streamed, err := telemetry.ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Epoch != res.Dataset.Epoch || streamed.SeriesDtSec != res.Dataset.SeriesDtSec {
		t.Errorf("meta diverges: %q/%v vs %q/%v",
			streamed.Epoch, streamed.SeriesDtSec, res.Dataset.Epoch, res.Dataset.SeriesDtSec)
	}
	if len(streamed.Jobs) != len(res.Dataset.Jobs) {
		t.Fatalf("streamed %d jobs, export has %d", len(streamed.Jobs), len(res.Dataset.Jobs))
	}
	for i := range streamed.Jobs {
		if !reflect.DeepEqual(streamed.Jobs[i], res.Dataset.Jobs[i]) {
			t.Fatalf("job record %d diverges:\nstream: %+v\nexport: %+v",
				i, streamed.Jobs[i], res.Dataset.Jobs[i])
		}
	}
	if len(streamed.Series) != len(res.Dataset.Series) {
		t.Fatalf("streamed %d series points, export has %d",
			len(streamed.Series), len(res.Dataset.Series))
	}
	for i := range streamed.Series {
		if !reflect.DeepEqual(streamed.Series[i], res.Dataset.Series[i]) {
			t.Fatalf("series point %d diverges: stream %+v vs export %+v",
				i, streamed.Series[i], res.Dataset.Series[i])
		}
	}
}

// TestTelemetrySinkDoesNotPerturbResults: attaching a streaming sink
// must be invisible to the simulation — in particular the sink must not
// advance the run's stateful wet-bulb source, which the cooling
// coupling samples (a shared closure would change PUE and the report).
func TestTelemetrySinkDoesNotPerturbResults(t *testing.T) {
	run := func(streamed bool) *Result {
		gen := job.DefaultGeneratorConfig()
		gen.Seed = 12
		sc := Scenario{
			Workload: WorkloadSynthetic, HorizonSec: 1800, TickSec: 15,
			Generator: gen, Cooling: true, WeatherSeed: 5,
			NoExport: true,
		}
		if streamed {
			sc.TelemetryTo = &bytes.Buffer{}
		}
		tw, err := NewFromSpec(config.Frontier())
		if err != nil {
			t.Fatal(err)
		}
		res, err := tw.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, streamed := run(false), run(true)
	if plain.Report.EnergyMWh != streamed.Report.EnergyMWh {
		t.Errorf("energy changed by attaching a sink: %v vs %v",
			plain.Report.EnergyMWh, streamed.Report.EnergyMWh)
	}
	if plain.Report.AvgPUE != streamed.Report.AvgPUE {
		t.Errorf("PUE changed by attaching a sink: %v vs %v",
			plain.Report.AvgPUE, streamed.Report.AvgPUE)
	}
}

// TestSyntheticJobBoundRejectsRunaway: a near-zero arrival mean (HTTP
// reachable through the sweep service) must be rejected, not generate
// horizon/mean jobs.
func TestSyntheticJobBoundRejectsRunaway(t *testing.T) {
	tw, err := NewFromSpec(config.Frontier())
	if err != nil {
		t.Fatal(err)
	}
	gen := job.DefaultGeneratorConfig()
	gen.ArrivalMeanSec = 1e-9
	if _, err := tw.Run(Scenario{
		Workload: WorkloadSynthetic, HorizonSec: 86400, TickSec: 15, Generator: gen,
	}); err == nil {
		t.Fatal("near-zero arrival mean must be rejected")
	}
	gen.ArrivalMeanSec = -1
	if _, err := tw.Run(Scenario{
		Workload: WorkloadSynthetic, HorizonSec: 3600, TickSec: 15, Generator: gen,
	}); err == nil {
		t.Fatal("negative arrival mean must be rejected")
	}
}

// TestNoHistoryLeanMode: NoHistory drops the in-memory series from the
// result while the report and any streaming sink stay intact.
func TestNoHistoryLeanMode(t *testing.T) {
	gen := job.DefaultGeneratorConfig()
	gen.Seed = 4
	var buf bytes.Buffer
	tw, err := NewFromSpec(config.Frontier())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tw.Run(Scenario{
		Workload: WorkloadSynthetic, HorizonSec: 1800, TickSec: 15,
		Generator: gen, WetBulbC: 20,
		NoExport: true, NoHistory: true, TelemetryTo: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 0 {
		t.Errorf("NoHistory run retained %d samples", len(res.History))
	}
	if res.Report == nil || res.Report.EnergyMWh <= 0 {
		t.Error("report missing under NoHistory")
	}
	streamed, err := telemetry.ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := int(1800 / 15); len(streamed.Series) != want {
		t.Errorf("stream carried %d series points under NoHistory, want %d",
			len(streamed.Series), want)
	}
}

// TestCompiledSpecSharesModelsAcrossModes: one compiled spec serves each
// power mode from cache and shares the instance across twins.
func TestCompiledSpecSharesModelsAcrossModes(t *testing.T) {
	cs, err := Compile(config.Frontier())
	if err != nil {
		t.Fatal(err)
	}
	base1, err := cs.Models("")
	if err != nil {
		t.Fatal(err)
	}
	base2, err := cs.Models("ac-baseline")
	if err != nil {
		t.Fatal(err)
	}
	if base1[0] != base2[0] {
		t.Error("default mode and explicit ac-baseline should share one model")
	}
	dc, err := cs.Models("dc380")
	if err != nil {
		t.Fatal(err)
	}
	if dc[0] == base1[0] {
		t.Error("dc380 must be a distinct model")
	}
	if dc2, _ := cs.Models("dc380"); dc2[0] != dc[0] {
		t.Error("dc380 model not cached")
	}
	if _, err := cs.Models("warp-drive"); err == nil {
		t.Error("unknown mode should fail")
	}
	d1, err := cs.CoolingDesign()
	if err != nil {
		t.Fatal(err)
	}
	if d2, _ := cs.CoolingDesign(); d2 != d1 {
		t.Error("cooling design not cached")
	}
	if len(cs.Hash()) != 64 {
		t.Errorf("bad spec hash %q", cs.Hash())
	}
}
