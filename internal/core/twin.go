// Package core assembles the ExaDigiT digital twin: the RAPS power and
// resource simulator, the cooling plant behind its FMU interface, the
// telemetry pipeline, and the visual-analytics data source. It is the
// integration layer the paper's Fig. 1 architecture diagram describes,
// exposed to downstream users through the root exadigit package.
package core

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/cooling"
	"exadigit/internal/fmu"
	"exadigit/internal/job"
	"exadigit/internal/power"
	"exadigit/internal/raps"
	"exadigit/internal/telemetry"
	"exadigit/internal/viz"
	"exadigit/internal/weather"
)

// WorkloadKind selects how a scenario's jobs are produced.
type WorkloadKind string

// Workload kinds.
const (
	// WorkloadIdle runs no jobs (Table III idle verification).
	WorkloadIdle WorkloadKind = "idle"
	// WorkloadPeak pins every node at 100 % (Table III peak).
	WorkloadPeak WorkloadKind = "peak"
	// WorkloadHPL runs the 9216-node HPL benchmark (Table III, Fig. 8).
	WorkloadHPL WorkloadKind = "hpl"
	// WorkloadOpenMxP runs the OpenMxP benchmark (Fig. 8).
	WorkloadOpenMxP WorkloadKind = "openmxp"
	// WorkloadSynthetic draws jobs from the Poisson generator (§III-B3).
	WorkloadSynthetic WorkloadKind = "synthetic"
	// WorkloadReplay replays a telemetry dataset (§IV).
	WorkloadReplay WorkloadKind = "replay"
)

// Scenario describes one what-if run.
type Scenario struct {
	Name     string
	Workload WorkloadKind
	// HorizonSec is the simulated duration.
	HorizonSec float64
	// TickSec overrides the simulation tick (default 1 s; 15 s is a
	// faithful speed-up).
	TickSec float64
	// Policy names the scheduler ("fcfs" default, "sjf", "easy").
	Policy string
	// Cooling couples the thermo-fluid plant.
	Cooling bool
	// CoolingSpec overrides the system spec's plant for this scenario —
	// compiled through AutoCSM (or resolved as a preset) exactly like
	// SystemSpec.Cooling — so a single sweep can mix cooling variants
	// against the same compute spec. nil cools with the spec's own
	// plant; implies Cooling when set.
	CoolingSpec *config.CoolingSpec
	// PowerMode selects the conversion architecture ("ac-baseline",
	// "smart-rectifier", "dc380").
	PowerMode string
	// Generator configures synthetic workloads (zero value → defaults).
	Generator job.GeneratorConfig
	// Dataset supplies jobs for replay scenarios.
	Dataset *telemetry.Dataset
	// BenchmarkWallSec is the duration of HPL/OpenMxP jobs (default 2 h).
	BenchmarkWallSec float64
	// WetBulbC fixes the outdoor wet bulb; 0 uses the seasonal weather
	// generator starting at WeatherStart.
	WetBulbC     float64
	WeatherStart time.Time
	WeatherSeed  int64
	// Engine selects the power-evaluation strategy: "" or "event" for
	// the event-driven incremental engine (the default), "dense" for the
	// reference per-tick sweep kept for verification and baselining.
	Engine string
	// NoExport skips the telemetry-dataset export in the Result — the
	// lean mode batch sweeps use when only the report matters.
	NoExport bool
	// NoHistory additionally skips storing the recorded series, so the
	// Result carries only the report — huge sweeps stop pinning ~0.6 MB
	// of samples per simulated day in result caches. Combine with
	// NoExport (an export after a NoHistory run has no series);
	// TelemetryTo still streams every sample.
	NoHistory bool
	// TelemetryTo, when non-nil, streams the run's telemetry as NDJSON
	// to the writer incrementally — series samples as they are recorded
	// during the run, job records at the end — instead of (or alongside)
	// materializing the Result.Dataset export. Combine with NoExport for
	// long replays that should never hold the dense export in memory.
	TelemetryTo io.Writer
}

// Result carries everything a scenario produced.
type Result struct {
	Scenario Scenario
	Report   *raps.Report
	History  []raps.Sample
	// Dataset is the exported telemetry of the run.
	Dataset *telemetry.Dataset
	// WallSec is the wall-clock cost of the run in seconds — the
	// per-scenario timing batch sweeps and ablations report.
	WallSec float64
}

// Twin is a live digital twin of one system.
type Twin struct {
	Spec config.SystemSpec

	compiled *CompiledSpec

	// mu guards the most-recent-run artifacts below: the dashboard's viz
	// endpoints read them from HTTP goroutines while /api/run drives a
	// new run on the same Twin, and the cooling names must stay paired
	// with the simulation they label.
	mu         sync.Mutex
	sim        *raps.Simulation
	lastModel  *power.Model
	lastDesign *fmu.Design // cooling design of the most recent cooled run
}

// setRun publishes a run's artifacts as one consistent snapshot. It is
// called once the simulation has stopped ticking (completed, failed, or
// aborted), so viz readers never observe a live simulation's mutating
// internals.
func (tw *Twin) setRun(sim *raps.Simulation, model *power.Model, design *fmu.Design) {
	tw.mu.Lock()
	tw.sim, tw.lastModel, tw.lastDesign = sim, model, design
	tw.mu.Unlock()
}

// currentRun returns the most recent run's simulation and cooling design
// as a consistent pair.
func (tw *Twin) currentRun() (*raps.Simulation, *fmu.Design) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.sim, tw.lastDesign
}

// NewFrontier builds a twin of Frontier.
func NewFrontier() (*Twin, error) { return NewFromSpec(config.Frontier()) }

// NewFromSpec builds a twin from a machine specification. The twin owns
// a private CompiledSpec, so repeated Run calls (including across power
// modes) reuse the same power models and cooling design; batch sweeps
// share one CompiledSpec across every worker instead.
func NewFromSpec(spec config.SystemSpec) (*Twin, error) {
	cs, err := Compile(spec)
	if err != nil {
		return nil, err
	}
	return cs.Twin(), nil
}

// buildModel returns the partition-0 power model with the scenario's
// power mode applied, served from the compiled spec's shared cache.
func (tw *Twin) buildModel(mode string) (*power.Model, error) {
	if tw.compiled == nil {
		// Twin built as a literal rather than through NewFromSpec /
		// CompiledSpec.Twin: compile its spec on first use.
		cs, err := Compile(tw.Spec)
		if err != nil {
			return nil, err
		}
		tw.compiled = cs
	}
	return tw.compiled.Model(mode)
}

// buildJobs realizes the scenario workload.
func (tw *Twin) buildJobs(sc *Scenario, model *power.Model) ([]*job.Job, error) {
	wall := sc.BenchmarkWallSec
	if wall <= 0 {
		wall = 2 * 3600
	}
	switch sc.Workload {
	case WorkloadIdle, "":
		return nil, nil
	case WorkloadPeak:
		j := job.New(1, "peak", model.Topo.NodesTotal, sc.HorizonSec+1, 0)
		if err := j.ApplyFingerprint(job.FPMax); err != nil {
			return nil, err
		}
		return []*job.Job{j}, nil
	case WorkloadHPL:
		return []*job.Job{job.NewHPL(1, 0, wall)}, nil
	case WorkloadOpenMxP:
		return []*job.Job{job.NewOpenMxP(1, 0, wall)}, nil
	case WorkloadSynthetic:
		cfg := sc.Generator
		if cfg.ArrivalMeanSec < 0 {
			// A non-positive mean would stall the Poisson clock; reject
			// rather than looping (this path is reachable from the sweep
			// service's HTTP submissions).
			return nil, fmt.Errorf("core: generator arrival_mean_sec must be positive")
		}
		if cfg.ArrivalMeanSec == 0 {
			cfg = job.DefaultGeneratorConfig()
			cfg.MaxNodes = model.Topo.NodesTotal
		}
		// Runaway bound, also HTTP-reachable: a near-zero mean would
		// generate horizon/mean jobs and exhaust memory in one request.
		const maxSyntheticJobs = 1_000_000
		if expected := sc.HorizonSec / cfg.ArrivalMeanSec; expected > maxSyntheticJobs {
			return nil, fmt.Errorf(
				"core: horizon %.0fs at arrival mean %.3gs implies ~%.2g jobs (cap %d); raise arrival_mean_sec",
				sc.HorizonSec, cfg.ArrivalMeanSec, expected, maxSyntheticJobs)
		}
		return job.NewGenerator(cfg).GenerateHorizon(sc.HorizonSec), nil
	case WorkloadReplay:
		if sc.Dataset == nil {
			return nil, fmt.Errorf("core: replay scenario needs a dataset")
		}
		return raps.JobsFromDataset(sc.Dataset, model.Spec), nil
	default:
		return nil, fmt.Errorf("core: unknown workload %q", sc.Workload)
	}
}

// Run executes a scenario to completion and returns its result.
func (tw *Twin) Run(sc Scenario) (*Result, error) {
	return tw.RunContext(context.Background(), sc)
}

// RunContext executes a scenario under a context: cancellation aborts
// the simulation at the next tick boundary (mid-day, not between
// scenarios) and returns the context's error. This is the run path the
// sweep service drives, so a cancelled sweep stops paying for its
// in-flight days.
func (tw *Twin) RunContext(ctx context.Context, sc Scenario) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if sc.HorizonSec <= 0 {
		return nil, fmt.Errorf("core: scenario horizon must be positive")
	}
	start := time.Now()
	model, err := tw.buildModel(sc.PowerMode)
	if err != nil {
		return nil, err
	}
	jobs, err := tw.buildJobs(&sc, model)
	if err != nil {
		return nil, err
	}
	rcfg := raps.DefaultConfig()
	if sc.TickSec > 0 {
		rcfg.TickSec = sc.TickSec
	}
	if sc.Policy != "" {
		rcfg.Policy = sc.Policy
	}
	switch sc.Engine {
	case "", "event":
		rcfg.Engine = raps.EngineEvent
	case "dense":
		rcfg.Engine = raps.EngineDense
	default:
		return nil, fmt.Errorf("core: unknown engine %q (want \"event\" or \"dense\")", sc.Engine)
	}
	rcfg.NoHistory = sc.NoHistory
	rcfg.EnableCooling = sc.Cooling || sc.CoolingSpec != nil
	if rcfg.EnableCooling {
		if sc.CoolingSpec != nil {
			rcfg.CoolingDesign, err = tw.compiled.CoolingDesignFor(*sc.CoolingSpec)
		} else {
			rcfg.CoolingDesign, err = tw.compiled.CoolingDesign()
		}
		if err != nil {
			return nil, err
		}
	}
	rcfg.WetBulbC = tw.wetBulbFunc(&sc)

	name := sc.Name
	if name == "" {
		name = string(sc.Workload)
	}
	// Streaming sink: series samples leave through the writer as the run
	// records them; job records follow once the run is over. The sink
	// samples its own wet-bulb closure — never the simulation's, whose
	// state the cooling coupling depends on (the synthetic weather
	// generator advances noise per query, so sharing it would make
	// attaching a sink change the run's results). The points are also
	// captured for the in-memory export (when requested), so stream and
	// export stay bit-for-bit identical.
	var stream *telemetry.StreamWriter
	var captured []telemetry.SeriesPoint
	if sc.TelemetryTo != nil {
		stream = telemetry.NewStreamWriter(sc.TelemetryTo, name, rcfg.HistoryDtSec)
		capture := !sc.NoExport
		streamWB := tw.wetBulbFunc(&sc)
		rcfg.OnSample = func(smp raps.Sample) {
			p := telemetry.SeriesPoint{
				TimeSec: smp.TimeSec, MeasuredPowerW: smp.PowerW, WetBulbC: streamWB(smp.TimeSec),
			}
			stream.Series(p)
			if capture {
				captured = append(captured, p)
			}
		}
	}

	sim, err := raps.New(rcfg, model, jobs)
	if err != nil {
		return nil, err
	}
	rep, err := sim.RunContext(ctx, sc.HorizonSec)
	// Publish after the tick loop stops (even on error/abort): the
	// dashboard serves the most recent settled run, and partial state of
	// an aborted run stays inspectable via Simulation().
	tw.setRun(sim, model, rcfg.CoolingDesign)
	if err != nil {
		return nil, err
	}
	if stream != nil {
		sim.ForEachJobRecord(func(r telemetry.JobRecord) { stream.Job(r) })
		if err := stream.Flush(); err != nil {
			return nil, fmt.Errorf("core: telemetry stream: %w", err)
		}
	}
	res := &Result{
		Scenario: sc,
		Report:   rep,
		History:  sim.History(),
	}
	if !sc.NoExport {
		if stream != nil {
			// Reuse the streamed points rather than re-querying the
			// wet-bulb source (see the capture comment above).
			d := &telemetry.Dataset{
				Epoch: name, SeriesDtSec: rcfg.HistoryDtSec, Series: captured,
			}
			sim.ForEachJobRecord(func(r telemetry.JobRecord) { d.Jobs = append(d.Jobs, r) })
			res.Dataset = d
		} else {
			res.Dataset = sim.ExportTelemetry(name)
		}
	}
	res.WallSec = time.Since(start).Seconds()
	return res, nil
}

func (tw *Twin) wetBulbFunc(sc *Scenario) func(float64) float64 {
	if sc.WetBulbC != 0 {
		wb := sc.WetBulbC
		return func(float64) float64 { return wb }
	}
	start := sc.WeatherStart
	if start.IsZero() {
		start = time.Date(2024, 4, 7, 0, 0, 0, 0, time.UTC)
	}
	wcfg := weather.DefaultConfig()
	if sc.WeatherSeed != 0 {
		wcfg.Seed = sc.WeatherSeed
	}
	gen := weather.NewGenerator(wcfg)
	lastT := 0.0
	return func(t float64) float64 {
		dt := t - lastT
		lastT = t
		return gen.At(start.Add(time.Duration(t*float64(time.Second))), dt)
	}
}

// Simulation exposes the most recent run's simulation (nil before any
// run), for white-box inspection by experiments.
func (tw *Twin) Simulation() *raps.Simulation {
	sim, _ := tw.currentRun()
	return sim
}

// Status implements viz.Source over the most recent run.
func (tw *Twin) Status() viz.Status {
	sim, _ := tw.currentRun()
	if sim == nil {
		return viz.Status{}
	}
	hist := sim.History()
	if len(hist) == 0 {
		return viz.Status{}
	}
	last := hist[len(hist)-1]
	return viz.Status{
		TimeSec:     last.TimeSec,
		PowerMW:     last.PowerW / 1e6,
		LossMW:      last.LossW / 1e6,
		Utilization: last.Utilization,
		PUE:         last.PUE,
		JobsRunning: last.JobsRunning,
		JobsPending: last.JobsPending,
	}
}

// Series implements viz.Source.
func (tw *Twin) Series() []viz.SeriesPoint {
	sim, _ := tw.currentRun()
	if sim == nil {
		return nil
	}
	hist := sim.History()
	out := make([]viz.SeriesPoint, len(hist))
	for i, smp := range hist {
		out[i] = viz.SeriesPoint{
			TimeSec: smp.TimeSec,
			PowerMW: smp.PowerW / 1e6,
			PUE:     smp.PUE,
			Util:    smp.Utilization,
		}
	}
	return out
}

// CoolingOutputs implements viz.Source: the named per-channel snapshot
// of the most recent cooled run's plant (317 channels on Frontier), or
// nil. Names come from the run's compiled design, so dashboard labels
// follow SystemSpec.Cooling (or the scenario's override) instead of
// assuming a Frontier-shaped plant.
func (tw *Twin) CoolingOutputs() map[string]float64 {
	sim, design := tw.currentRun()
	if sim == nil {
		return nil
	}
	plant := sim.CoolingPlant()
	if plant == nil {
		return nil
	}
	vec := plant.Snapshot().Vector()
	var names []string
	if design != nil {
		names = design.OutputNames()
	} else {
		// Literal-built twin running raps directly: fall back to the
		// plant the sim actually coupled via its config.
		names = cooling.OutputNames(plant.Config())
	}
	if len(names) != len(vec) {
		return nil
	}
	out := make(map[string]float64, len(vec))
	for i, n := range names {
		out[n] = vec[i]
	}
	return out
}

// ExperimentRunner returns a viz.ExperimentRunner that launches scenarios
// from HTTP parameters (workload, horizon_sec, mode, cooling). The
// request context is threaded into the run, so a client disconnect
// aborts the what-if at the next tick boundary.
func (tw *Twin) ExperimentRunner() viz.ExperimentRunner {
	return func(ctx context.Context, params map[string]string) (any, error) {
		sc := Scenario{
			Workload:   WorkloadKind(params["workload"]),
			HorizonSec: 900,
			TickSec:    15,
		}
		if sc.Workload == "" {
			sc.Workload = WorkloadSynthetic
		}
		if h := params["horizon_sec"]; h != "" {
			if _, err := fmt.Sscanf(h, "%f", &sc.HorizonSec); err != nil {
				return nil, fmt.Errorf("core: bad horizon_sec %q", h)
			}
		}
		sc.PowerMode = params["mode"]
		sc.Cooling = params["cooling"] == "true"
		res, err := tw.RunContext(ctx, sc)
		if err != nil {
			return nil, err
		}
		return res.Report, nil
	}
}
