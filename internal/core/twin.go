// Package core assembles the ExaDigiT digital twin: the RAPS power and
// resource simulator, the cooling plant behind its FMU interface, the
// telemetry pipeline, and the visual-analytics data source. It is the
// integration layer the paper's Fig. 1 architecture diagram describes,
// exposed to downstream users through the root exadigit package.
package core

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/cooling"
	"exadigit/internal/fmu"
	"exadigit/internal/job"
	"exadigit/internal/power"
	"exadigit/internal/raps"
	"exadigit/internal/telemetry"
	"exadigit/internal/viz"
	"exadigit/internal/weather"
)

// WorkloadKind selects how a scenario's jobs are produced.
type WorkloadKind string

// Workload kinds.
const (
	// WorkloadIdle runs no jobs (Table III idle verification).
	WorkloadIdle WorkloadKind = "idle"
	// WorkloadPeak pins every node at 100 % (Table III peak).
	WorkloadPeak WorkloadKind = "peak"
	// WorkloadHPL runs the 9216-node HPL benchmark (Table III, Fig. 8).
	WorkloadHPL WorkloadKind = "hpl"
	// WorkloadOpenMxP runs the OpenMxP benchmark (Fig. 8).
	WorkloadOpenMxP WorkloadKind = "openmxp"
	// WorkloadSynthetic draws jobs from the Poisson generator (§III-B3).
	WorkloadSynthetic WorkloadKind = "synthetic"
	// WorkloadReplay replays a telemetry dataset (§IV).
	WorkloadReplay WorkloadKind = "replay"
)

// PartitionScenario configures one partition's workload in a
// multi-partition scenario (§V's Setonix-style systems): which jobs the
// partition runs and how they are generated. The zero value (empty
// Workload) leaves the partition idle. JSON tags double as the HTTP wire
// schema and the canonical hash encoding.
type PartitionScenario struct {
	// Workload selects the partition's job source ("" = idle). Replay is
	// not valid per-partition (a dataset describes one machine).
	Workload WorkloadKind `json:"workload"`
	// Generator configures synthetic workloads (zero value → defaults
	// sized to the partition).
	Generator job.GeneratorConfig `json:"generator"`
	// BenchmarkWallSec is the duration of HPL/OpenMxP jobs (default 2 h).
	BenchmarkWallSec float64 `json:"benchmark_wall_sec,omitempty"`
	// MaxJobs caps the partition's job count (0 = unlimited) — the
	// per-partition job-count knob for heterogeneous sweeps.
	MaxJobs int `json:"max_jobs,omitempty"`
}

// Scenario describes one what-if run.
type Scenario struct {
	Name     string
	Workload WorkloadKind
	// HorizonSec is the simulated duration.
	HorizonSec float64
	// TickSec overrides the simulation tick (default 1 s; 15 s is a
	// faithful speed-up).
	TickSec float64
	// Policy names the scheduler ("fcfs" default, "sjf", "easy").
	Policy string
	// Cooling couples the thermo-fluid plant.
	Cooling bool
	// CoolingSpec overrides the system spec's plant for this scenario —
	// compiled through AutoCSM (or resolved as a preset) exactly like
	// SystemSpec.Cooling — so a single sweep can mix cooling variants
	// against the same compute spec. nil cools with the spec's own
	// plant; implies Cooling when set.
	CoolingSpec *config.CoolingSpec
	// PowerMode selects the conversion architecture ("ac-baseline",
	// "smart-rectifier", "dc380").
	PowerMode string
	// Generator configures synthetic workloads (zero value → defaults).
	Generator job.GeneratorConfig
	// Partitions configures each partition's workload individually,
	// indexed like the spec's partitions (all must be listed). When
	// empty, the scenario-level Workload/Generator/BenchmarkWallSec are
	// replicated onto every partition — on a single-partition spec that
	// is exactly the pre-partition behavior, and a replay workload runs
	// on the first partition only (a dataset describes one machine).
	Partitions []PartitionScenario
	// Dataset supplies jobs for replay scenarios.
	Dataset *telemetry.Dataset
	// BenchmarkWallSec is the duration of HPL/OpenMxP jobs (default 2 h).
	BenchmarkWallSec float64
	// WetBulbC fixes the outdoor wet bulb; 0 uses the seasonal weather
	// generator starting at WeatherStart.
	WetBulbC     float64
	WeatherStart time.Time
	WeatherSeed  int64
	// Engine selects the power-evaluation strategy: "" or "event" for
	// the event-driven incremental engine (the default), "dense" for the
	// reference per-tick sweep kept for verification and baselining.
	Engine string
	// NoExport skips the telemetry-dataset export in the Result — the
	// lean mode batch sweeps use when only the report matters.
	NoExport bool
	// NoHistory additionally skips storing the recorded series, so the
	// Result carries only the report — huge sweeps stop pinning ~0.6 MB
	// of samples per simulated day in result caches. Combine with
	// NoExport (an export after a NoHistory run has no series);
	// TelemetryTo still streams every sample.
	NoHistory bool
	// TelemetryTo, when non-nil, streams the run's telemetry as NDJSON
	// to the writer incrementally — series samples as they are recorded
	// during the run, job records at the end — instead of (or alongside)
	// materializing the Result.Dataset export. Combine with NoExport for
	// long replays that should never hold the dense export in memory.
	TelemetryTo io.Writer
}

// Result carries everything a scenario produced.
type Result struct {
	Scenario Scenario
	Report   *raps.Report
	History  []raps.Sample
	// Dataset is the exported telemetry of the run.
	Dataset *telemetry.Dataset
	// WallSec is the wall-clock cost of the run in seconds — the
	// per-scenario timing batch sweeps and ablations report.
	WallSec float64
}

// Twin is a live digital twin of one system.
type Twin struct {
	Spec config.SystemSpec

	compiled *CompiledSpec

	// mu guards the most-recent-run artifacts below: the dashboard's viz
	// endpoints read them from HTTP goroutines while /api/run drives a
	// new run on the same Twin, and the cooling names must stay paired
	// with the simulation they label.
	mu         sync.Mutex
	sim        *raps.Simulation
	lastDesign *fmu.Design // cooling design of the most recent cooled run
}

// setRun publishes a run's artifacts as one consistent snapshot. It is
// called once the simulation has stopped ticking (completed, failed, or
// aborted), so viz readers never observe a live simulation's mutating
// internals.
func (tw *Twin) setRun(sim *raps.Simulation, design *fmu.Design) {
	tw.mu.Lock()
	tw.sim, tw.lastDesign = sim, design
	tw.mu.Unlock()
}

// currentRun returns the most recent run's simulation and cooling design
// as a consistent pair.
func (tw *Twin) currentRun() (*raps.Simulation, *fmu.Design) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.sim, tw.lastDesign
}

// NewFrontier builds a twin of Frontier.
func NewFrontier() (*Twin, error) { return NewFromSpec(config.Frontier()) }

// NewFromSpec builds a twin from a machine specification. The twin owns
// a private CompiledSpec, so repeated Run calls (including across power
// modes) reuse the same power models and cooling design; batch sweeps
// share one CompiledSpec across every worker instead.
func NewFromSpec(spec config.SystemSpec) (*Twin, error) {
	cs, err := Compile(spec)
	if err != nil {
		return nil, err
	}
	return cs.Twin(), nil
}

// buildModels returns every partition's power model with the scenario's
// power mode applied, served from the compiled spec's shared cache.
func (tw *Twin) buildModels(mode string) ([]*power.Model, error) {
	if tw.compiled == nil {
		// Twin built as a literal rather than through NewFromSpec /
		// CompiledSpec.Twin: compile its spec on first use.
		cs, err := Compile(tw.Spec)
		if err != nil {
			return nil, err
		}
		tw.compiled = cs
	}
	return tw.compiled.Models(mode)
}

// partIDStride separates the job-ID namespaces of different partitions
// in merged telemetry: partition i's generated jobs are offset by
// i·partIDStride (partition 0 keeps its IDs, so single-partition runs
// are unchanged).
const partIDStride = 10_000_000

// partitionWorkloads resolves the scenario to one workload config per
// spec partition. An explicit Scenario.Partitions list must cover every
// partition; an empty list replicates the scenario-level workload onto
// all of them (replay runs on the first partition only — a dataset
// describes one machine's job stream).
func (tw *Twin) partitionWorkloads(sc *Scenario) ([]PartitionScenario, error) {
	n := len(tw.Spec.Partitions)
	if len(sc.Partitions) == 0 {
		ps := make([]PartitionScenario, n)
		for i := range ps {
			ps[i] = PartitionScenario{
				Workload:         sc.Workload,
				Generator:        sc.Generator,
				BenchmarkWallSec: sc.BenchmarkWallSec,
			}
			if sc.Workload == WorkloadReplay && i > 0 {
				ps[i].Workload = WorkloadIdle
			}
		}
		return ps, nil
	}
	if len(sc.Partitions) != n {
		return nil, fmt.Errorf("core: scenario lists %d partition workloads but spec %q has %d partitions",
			len(sc.Partitions), tw.Spec.Name, n)
	}
	for i := range sc.Partitions {
		if sc.Partitions[i].Workload == WorkloadReplay {
			return nil, fmt.Errorf("core: partition %d: replay is not a per-partition workload (set Scenario.Workload)", i)
		}
	}
	return sc.Partitions, nil
}

// buildJobs realizes one partition's workload.
func (tw *Twin) buildJobs(sc *Scenario, ps *PartitionScenario, model *power.Model) ([]*job.Job, error) {
	wall := ps.BenchmarkWallSec
	if wall <= 0 {
		wall = 2 * 3600
	}
	var jobs []*job.Job
	switch ps.Workload {
	case WorkloadIdle, "":
		return nil, nil
	case WorkloadPeak:
		j := job.New(1, "peak", model.Topo.NodesTotal, sc.HorizonSec+1, 0)
		if err := j.ApplyFingerprint(job.FPMax); err != nil {
			return nil, err
		}
		jobs = []*job.Job{j}
	case WorkloadHPL:
		jobs = []*job.Job{job.NewHPL(1, 0, wall)}
	case WorkloadOpenMxP:
		jobs = []*job.Job{job.NewOpenMxP(1, 0, wall)}
	case WorkloadSynthetic:
		cfg := ps.Generator
		if cfg.ArrivalMeanSec < 0 {
			// A non-positive mean would stall the Poisson clock; reject
			// rather than looping (this path is reachable from the sweep
			// service's HTTP submissions).
			return nil, fmt.Errorf("core: generator arrival_mean_sec must be positive")
		}
		if cfg.ArrivalMeanSec == 0 {
			cfg = job.DefaultGeneratorConfig()
		}
		// Clamp the node cap to the partition: an uncapped or
		// over-sized generator (MaxNodes 0 or above the partition's node
		// count — e.g. the Frontier-calibrated defaults against a small
		// partition) would emit jobs no scheduler can ever place, and
		// one infeasible job head-of-line blocks FCFS for the rest of
		// the run.
		if cfg.MaxNodes <= 0 || cfg.MaxNodes > model.Topo.NodesTotal {
			cfg.MaxNodes = model.Topo.NodesTotal
		}
		// Runaway bound, also HTTP-reachable: a near-zero mean would
		// generate horizon/mean jobs and exhaust memory in one request.
		const maxSyntheticJobs = 1_000_000
		if expected := sc.HorizonSec / cfg.ArrivalMeanSec; expected > maxSyntheticJobs {
			return nil, fmt.Errorf(
				"core: horizon %.0fs at arrival mean %.3gs implies ~%.2g jobs (cap %d); raise arrival_mean_sec",
				sc.HorizonSec, cfg.ArrivalMeanSec, expected, maxSyntheticJobs)
		}
		jobs = job.NewGenerator(cfg).GenerateHorizon(sc.HorizonSec)
	case WorkloadReplay:
		if sc.Dataset == nil {
			return nil, fmt.Errorf("core: replay scenario needs a dataset")
		}
		jobs = raps.JobsFromDataset(sc.Dataset, model.Spec)
	default:
		return nil, fmt.Errorf("core: unknown workload %q", ps.Workload)
	}
	if ps.MaxJobs > 0 && len(jobs) > ps.MaxJobs {
		jobs = jobs[:ps.MaxJobs]
	}
	return jobs, nil
}

// buildPartitions assembles the raps partitions for a scenario: one per
// spec partition, each with its own power model and realized job stream.
// Generated job IDs of partition i > 0 are offset into their own
// namespace so merged telemetry stays unambiguous.
func (tw *Twin) buildPartitions(sc *Scenario, models []*power.Model) ([]raps.Partition, error) {
	workloads, err := tw.partitionWorkloads(sc)
	if err != nil {
		return nil, err
	}
	parts := make([]raps.Partition, len(models))
	for i := range models {
		jobs, err := tw.buildJobs(sc, &workloads[i], models[i])
		if err != nil {
			return nil, fmt.Errorf("core: partition %q: %w", tw.Spec.Partitions[i].Name, err)
		}
		if i > 0 {
			for _, j := range jobs {
				j.ID += i * partIDStride
			}
		}
		parts[i] = raps.Partition{
			Name:  tw.Spec.Partitions[i].Name,
			Model: models[i],
			Jobs:  jobs,
		}
	}
	return parts, nil
}

// Run executes a scenario to completion and returns its result.
func (tw *Twin) Run(sc Scenario) (*Result, error) {
	return tw.RunContext(context.Background(), sc)
}

// RunContext executes a scenario under a context: cancellation aborts
// the simulation at the next tick boundary (mid-day, not between
// scenarios) and returns the context's error. This is the run path the
// sweep service drives, so a cancelled sweep stops paying for its
// in-flight days.
func (tw *Twin) RunContext(ctx context.Context, sc Scenario) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if sc.HorizonSec <= 0 {
		return nil, fmt.Errorf("core: scenario horizon must be positive")
	}
	start := time.Now()
	models, err := tw.buildModels(sc.PowerMode)
	if err != nil {
		return nil, err
	}
	parts, err := tw.buildPartitions(&sc, models)
	if err != nil {
		return nil, err
	}
	rcfg := raps.DefaultConfig()
	if sc.TickSec > 0 {
		rcfg.TickSec = sc.TickSec
	}
	if sc.Policy != "" {
		rcfg.Policy = sc.Policy
	}
	switch sc.Engine {
	case "", "event":
		rcfg.Engine = raps.EngineEvent
	case "dense":
		rcfg.Engine = raps.EngineDense
	default:
		return nil, fmt.Errorf("core: unknown engine %q (want \"event\" or \"dense\")", sc.Engine)
	}
	rcfg.NoHistory = sc.NoHistory
	rcfg.EnableCooling = sc.Cooling || sc.CoolingSpec != nil
	if rcfg.EnableCooling {
		if sc.CoolingSpec != nil {
			rcfg.CoolingDesign, err = tw.compiled.CoolingDesignFor(*sc.CoolingSpec)
		} else {
			rcfg.CoolingDesign, err = tw.compiled.CoolingDesign()
		}
		if err != nil {
			return nil, err
		}
	}
	rcfg.WetBulbC = tw.wetBulbFunc(&sc)

	name := sc.Name
	if name == "" {
		name = string(sc.Workload)
	}
	// Streaming sink: series samples leave through the writer as the run
	// records them; job records follow once the run is over. The sink
	// samples its own wet-bulb closure — never the simulation's, whose
	// state the cooling coupling depends on (the synthetic weather
	// generator advances noise per query, so sharing it would make
	// attaching a sink change the run's results). The points are also
	// captured for the in-memory export (when requested), so stream and
	// export stay bit-for-bit identical.
	var stream *telemetry.StreamWriter
	var captured []telemetry.SeriesPoint
	if sc.TelemetryTo != nil {
		stream = telemetry.NewStreamWriter(sc.TelemetryTo, name, rcfg.HistoryDtSec)
		capture := !sc.NoExport
		streamWB := tw.wetBulbFunc(&sc)
		rcfg.OnSample = func(smp raps.Sample) {
			p := telemetry.SeriesPoint{
				TimeSec: smp.TimeSec, MeasuredPowerW: smp.PowerW, WetBulbC: streamWB(smp.TimeSec),
				PartPowerW: smp.PartPowerW,
			}
			stream.Series(p)
			if capture {
				captured = append(captured, p)
			}
		}
	}

	sim, err := raps.NewMulti(rcfg, parts)
	if err != nil {
		return nil, err
	}
	rep, err := sim.RunContext(ctx, sc.HorizonSec)
	// Publish after the tick loop stops (even on error/abort): the
	// dashboard serves the most recent settled run, and partial state of
	// an aborted run stays inspectable via Simulation().
	tw.setRun(sim, rcfg.CoolingDesign)
	if err != nil {
		return nil, err
	}
	if stream != nil {
		sim.ForEachJobRecord(func(r telemetry.JobRecord) { stream.Job(r) })
		if err := stream.Flush(); err != nil {
			return nil, fmt.Errorf("core: telemetry stream: %w", err)
		}
	}
	res := &Result{
		Scenario: sc,
		Report:   rep,
		History:  sim.History(),
	}
	if !sc.NoExport {
		if stream != nil {
			// Reuse the streamed points rather than re-querying the
			// wet-bulb source (see the capture comment above).
			d := &telemetry.Dataset{
				Epoch: name, SeriesDtSec: rcfg.HistoryDtSec, Series: captured,
			}
			sim.ForEachJobRecord(func(r telemetry.JobRecord) { d.Jobs = append(d.Jobs, r) })
			res.Dataset = d
		} else {
			res.Dataset = sim.ExportTelemetry(name)
		}
	}
	res.WallSec = time.Since(start).Seconds()
	return res, nil
}

func (tw *Twin) wetBulbFunc(sc *Scenario) func(float64) float64 {
	if sc.WetBulbC != 0 {
		wb := sc.WetBulbC
		return func(float64) float64 { return wb }
	}
	start := sc.WeatherStart
	if start.IsZero() {
		start = time.Date(2024, 4, 7, 0, 0, 0, 0, time.UTC)
	}
	wcfg := weather.DefaultConfig()
	if sc.WeatherSeed != 0 {
		wcfg.Seed = sc.WeatherSeed
	}
	gen := weather.NewGenerator(wcfg)
	lastT := 0.0
	return func(t float64) float64 {
		dt := t - lastT
		lastT = t
		return gen.At(start.Add(time.Duration(t*float64(time.Second))), dt)
	}
}

// Simulation exposes the most recent run's simulation (nil before any
// run), for white-box inspection by experiments.
func (tw *Twin) Simulation() *raps.Simulation {
	sim, _ := tw.currentRun()
	return sim
}

// Status implements viz.Source over the most recent run.
func (tw *Twin) Status() viz.Status {
	sim, _ := tw.currentRun()
	if sim == nil {
		return viz.Status{}
	}
	hist := sim.History()
	if len(hist) == 0 {
		return viz.Status{}
	}
	last := hist[len(hist)-1]
	st := viz.Status{
		TimeSec:     last.TimeSec,
		PowerMW:     last.PowerW / 1e6,
		LossMW:      last.LossW / 1e6,
		Utilization: last.Utilization,
		PUE:         last.PUE,
		JobsRunning: last.JobsRunning,
		JobsPending: last.JobsPending,
	}
	st.PartPowerMW = partMW(last.PartPowerW)
	return st
}

// partMW converts a per-partition watt vector to MW (nil in → nil out,
// keeping single-partition JSON documents unchanged).
func partMW(partW []float64) []float64 {
	if len(partW) == 0 {
		return nil
	}
	out := make([]float64, len(partW))
	for i, w := range partW {
		out[i] = w / 1e6
	}
	return out
}

// Series implements viz.Source.
func (tw *Twin) Series() []viz.SeriesPoint {
	sim, _ := tw.currentRun()
	if sim == nil {
		return nil
	}
	hist := sim.History()
	out := make([]viz.SeriesPoint, len(hist))
	for i, smp := range hist {
		out[i] = viz.SeriesPoint{
			TimeSec: smp.TimeSec,
			PowerMW: smp.PowerW / 1e6,
			PUE:     smp.PUE,
			Util:    smp.Utilization,
			PartMW:  partMW(smp.PartPowerW),
		}
	}
	return out
}

// CoolingOutputs implements viz.Source: the named per-channel snapshot
// of the most recent cooled run's plant (317 channels on Frontier), or
// nil. Names come from the run's compiled design, so dashboard labels
// follow SystemSpec.Cooling (or the scenario's override) instead of
// assuming a Frontier-shaped plant.
func (tw *Twin) CoolingOutputs() map[string]float64 {
	sim, design := tw.currentRun()
	if sim == nil {
		return nil
	}
	plant := sim.CoolingPlant()
	if plant == nil {
		return nil
	}
	vec := plant.Snapshot().Vector()
	var names []string
	if design != nil {
		names = design.OutputNames()
	} else {
		// Literal-built twin running raps directly: fall back to the
		// plant the sim actually coupled via its config.
		names = cooling.OutputNames(plant.Config())
	}
	if len(names) != len(vec) {
		return nil
	}
	out := make(map[string]float64, len(vec))
	for i, n := range names {
		out[n] = vec[i]
	}
	return out
}

// ExperimentRunner returns a viz.ExperimentRunner that launches scenarios
// from HTTP parameters (workload, horizon_sec, mode, cooling). The
// request context is threaded into the run, so a client disconnect
// aborts the what-if at the next tick boundary.
func (tw *Twin) ExperimentRunner() viz.ExperimentRunner {
	return func(ctx context.Context, params map[string]string) (any, error) {
		sc := Scenario{
			Workload:   WorkloadKind(params["workload"]),
			HorizonSec: 900,
			TickSec:    15,
		}
		if sc.Workload == "" {
			sc.Workload = WorkloadSynthetic
		}
		if h := params["horizon_sec"]; h != "" {
			if _, err := fmt.Sscanf(h, "%f", &sc.HorizonSec); err != nil {
				return nil, fmt.Errorf("core: bad horizon_sec %q", h)
			}
		}
		sc.PowerMode = params["mode"]
		sc.Cooling = params["cooling"] == "true"
		res, err := tw.RunContext(ctx, sc)
		if err != nil {
			return nil, err
		}
		return res.Report, nil
	}
}
