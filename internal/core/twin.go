// Package core assembles the ExaDigiT digital twin: the RAPS power and
// resource simulator, the cooling plant behind its FMU interface, the
// telemetry pipeline, and the visual-analytics data source. It is the
// integration layer the paper's Fig. 1 architecture diagram describes,
// exposed to downstream users through the root exadigit package.
package core

import (
	"fmt"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/job"
	"exadigit/internal/power"
	"exadigit/internal/raps"
	"exadigit/internal/telemetry"
	"exadigit/internal/viz"
	"exadigit/internal/weather"
)

// WorkloadKind selects how a scenario's jobs are produced.
type WorkloadKind string

// Workload kinds.
const (
	// WorkloadIdle runs no jobs (Table III idle verification).
	WorkloadIdle WorkloadKind = "idle"
	// WorkloadPeak pins every node at 100 % (Table III peak).
	WorkloadPeak WorkloadKind = "peak"
	// WorkloadHPL runs the 9216-node HPL benchmark (Table III, Fig. 8).
	WorkloadHPL WorkloadKind = "hpl"
	// WorkloadOpenMxP runs the OpenMxP benchmark (Fig. 8).
	WorkloadOpenMxP WorkloadKind = "openmxp"
	// WorkloadSynthetic draws jobs from the Poisson generator (§III-B3).
	WorkloadSynthetic WorkloadKind = "synthetic"
	// WorkloadReplay replays a telemetry dataset (§IV).
	WorkloadReplay WorkloadKind = "replay"
)

// Scenario describes one what-if run.
type Scenario struct {
	Name     string
	Workload WorkloadKind
	// HorizonSec is the simulated duration.
	HorizonSec float64
	// TickSec overrides the simulation tick (default 1 s; 15 s is a
	// faithful speed-up).
	TickSec float64
	// Policy names the scheduler ("fcfs" default, "sjf", "easy").
	Policy string
	// Cooling couples the thermo-fluid plant.
	Cooling bool
	// PowerMode selects the conversion architecture ("ac-baseline",
	// "smart-rectifier", "dc380").
	PowerMode string
	// Generator configures synthetic workloads (zero value → defaults).
	Generator job.GeneratorConfig
	// Dataset supplies jobs for replay scenarios.
	Dataset *telemetry.Dataset
	// BenchmarkWallSec is the duration of HPL/OpenMxP jobs (default 2 h).
	BenchmarkWallSec float64
	// WetBulbC fixes the outdoor wet bulb; 0 uses the seasonal weather
	// generator starting at WeatherStart.
	WetBulbC     float64
	WeatherStart time.Time
	WeatherSeed  int64
	// Engine selects the power-evaluation strategy: "" or "event" for
	// the event-driven incremental engine (the default), "dense" for the
	// reference per-tick sweep kept for verification and baselining.
	Engine string
	// NoExport skips the telemetry-dataset export in the Result — the
	// lean mode batch sweeps use when only the report matters.
	NoExport bool
}

// Result carries everything a scenario produced.
type Result struct {
	Scenario Scenario
	Report   *raps.Report
	History  []raps.Sample
	// Dataset is the exported telemetry of the run.
	Dataset *telemetry.Dataset
}

// Twin is a live digital twin of one system.
type Twin struct {
	Spec config.SystemSpec

	sim       *raps.Simulation
	lastModel *power.Model
}

// NewFrontier builds a twin of Frontier.
func NewFrontier() (*Twin, error) { return NewFromSpec(config.Frontier()) }

// NewFromSpec builds a twin from a machine specification.
func NewFromSpec(spec config.SystemSpec) (*Twin, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Twin{Spec: spec}, nil
}

// buildModel constructs the partition-0 power model with the scenario's
// power mode applied.
func (tw *Twin) buildModel(mode string) (*power.Model, error) {
	part := tw.Spec.Partitions[0]
	if mode != "" {
		part.Power.Mode = mode
	}
	return part.BuildModel()
}

// buildJobs realizes the scenario workload.
func (tw *Twin) buildJobs(sc *Scenario, model *power.Model) ([]*job.Job, error) {
	wall := sc.BenchmarkWallSec
	if wall <= 0 {
		wall = 2 * 3600
	}
	switch sc.Workload {
	case WorkloadIdle, "":
		return nil, nil
	case WorkloadPeak:
		j := job.New(1, "peak", model.Topo.NodesTotal, sc.HorizonSec+1, 0)
		if err := j.ApplyFingerprint(job.FPMax); err != nil {
			return nil, err
		}
		return []*job.Job{j}, nil
	case WorkloadHPL:
		return []*job.Job{job.NewHPL(1, 0, wall)}, nil
	case WorkloadOpenMxP:
		return []*job.Job{job.NewOpenMxP(1, 0, wall)}, nil
	case WorkloadSynthetic:
		cfg := sc.Generator
		if cfg.ArrivalMeanSec == 0 {
			cfg = job.DefaultGeneratorConfig()
			cfg.MaxNodes = model.Topo.NodesTotal
		}
		return job.NewGenerator(cfg).GenerateHorizon(sc.HorizonSec), nil
	case WorkloadReplay:
		if sc.Dataset == nil {
			return nil, fmt.Errorf("core: replay scenario needs a dataset")
		}
		return raps.JobsFromDataset(sc.Dataset, model.Spec), nil
	default:
		return nil, fmt.Errorf("core: unknown workload %q", sc.Workload)
	}
}

// Run executes a scenario to completion and returns its result.
func (tw *Twin) Run(sc Scenario) (*Result, error) {
	if sc.HorizonSec <= 0 {
		return nil, fmt.Errorf("core: scenario horizon must be positive")
	}
	model, err := tw.buildModel(sc.PowerMode)
	if err != nil {
		return nil, err
	}
	jobs, err := tw.buildJobs(&sc, model)
	if err != nil {
		return nil, err
	}
	rcfg := raps.DefaultConfig()
	if sc.TickSec > 0 {
		rcfg.TickSec = sc.TickSec
	}
	if sc.Policy != "" {
		rcfg.Policy = sc.Policy
	}
	switch sc.Engine {
	case "", "event":
		rcfg.Engine = raps.EngineEvent
	case "dense":
		rcfg.Engine = raps.EngineDense
	default:
		return nil, fmt.Errorf("core: unknown engine %q (want \"event\" or \"dense\")", sc.Engine)
	}
	rcfg.EnableCooling = sc.Cooling
	rcfg.WetBulbC = tw.wetBulbFunc(&sc)

	sim, err := raps.New(rcfg, model, jobs)
	if err != nil {
		return nil, err
	}
	tw.sim = sim
	tw.lastModel = model
	rep, err := sim.Run(sc.HorizonSec)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Scenario: sc,
		Report:   rep,
		History:  sim.History(),
	}
	if !sc.NoExport {
		name := sc.Name
		if name == "" {
			name = string(sc.Workload)
		}
		res.Dataset = sim.ExportTelemetry(name)
	}
	return res, nil
}

func (tw *Twin) wetBulbFunc(sc *Scenario) func(float64) float64 {
	if sc.WetBulbC != 0 {
		wb := sc.WetBulbC
		return func(float64) float64 { return wb }
	}
	start := sc.WeatherStart
	if start.IsZero() {
		start = time.Date(2024, 4, 7, 0, 0, 0, 0, time.UTC)
	}
	wcfg := weather.DefaultConfig()
	if sc.WeatherSeed != 0 {
		wcfg.Seed = sc.WeatherSeed
	}
	gen := weather.NewGenerator(wcfg)
	lastT := 0.0
	return func(t float64) float64 {
		dt := t - lastT
		lastT = t
		return gen.At(start.Add(time.Duration(t*float64(time.Second))), dt)
	}
}

// Simulation exposes the most recent run's simulation (nil before any
// run), for white-box inspection by experiments.
func (tw *Twin) Simulation() *raps.Simulation { return tw.sim }

// Status implements viz.Source over the most recent run.
func (tw *Twin) Status() viz.Status {
	if tw.sim == nil {
		return viz.Status{}
	}
	hist := tw.sim.History()
	if len(hist) == 0 {
		return viz.Status{}
	}
	last := hist[len(hist)-1]
	return viz.Status{
		TimeSec:     last.TimeSec,
		PowerMW:     last.PowerW / 1e6,
		LossMW:      last.LossW / 1e6,
		Utilization: last.Utilization,
		PUE:         last.PUE,
		JobsRunning: last.JobsRunning,
		JobsPending: last.JobsPending,
	}
}

// Series implements viz.Source.
func (tw *Twin) Series() []viz.SeriesPoint {
	if tw.sim == nil {
		return nil
	}
	hist := tw.sim.History()
	out := make([]viz.SeriesPoint, len(hist))
	for i, smp := range hist {
		out[i] = viz.SeriesPoint{
			TimeSec: smp.TimeSec,
			PowerMW: smp.PowerW / 1e6,
			PUE:     smp.PUE,
			Util:    smp.Utilization,
		}
	}
	return out
}

// CoolingOutputs implements viz.Source: the named 317-channel snapshot of
// the most recent cooled run, or nil.
func (tw *Twin) CoolingOutputs() map[string]float64 {
	if tw.sim == nil {
		return nil
	}
	plant := tw.sim.CoolingPlant()
	if plant == nil {
		return nil
	}
	// Rebuild the cooling config from the spec is not needed here: names
	// depend only on CDU and fan counts, which the plant carries.
	vec := plant.Snapshot().Vector()
	names := tw.coolingNames()
	if len(names) != len(vec) {
		return nil
	}
	out := make(map[string]float64, len(vec))
	for i, n := range names {
		out[n] = vec[i]
	}
	return out
}

func (tw *Twin) coolingNames() []string {
	// The default plant is Frontier-shaped; name layout matches it.
	return coolingOutputNamesFrontier()
}

// ExperimentRunner returns a viz.ExperimentRunner that launches scenarios
// from HTTP parameters (workload, horizon_sec, mode, cooling).
func (tw *Twin) ExperimentRunner() viz.ExperimentRunner {
	return func(params map[string]string) (any, error) {
		sc := Scenario{
			Workload:   WorkloadKind(params["workload"]),
			HorizonSec: 900,
			TickSec:    15,
		}
		if sc.Workload == "" {
			sc.Workload = WorkloadSynthetic
		}
		if h := params["horizon_sec"]; h != "" {
			if _, err := fmt.Sscanf(h, "%f", &sc.HorizonSec); err != nil {
				return nil, fmt.Errorf("core: bad horizon_sec %q", h)
			}
		}
		sc.PowerMode = params["mode"]
		sc.Cooling = params["cooling"] == "true"
		res, err := tw.Run(sc)
		if err != nil {
			return nil, err
		}
		return res.Report, nil
	}
}
