package core

import (
	"context"
	"math"
	"testing"

	"exadigit/internal/config"
	"exadigit/internal/job"
)

func TestIdleScenarioMatchesTableIII(t *testing.T) {
	tw, err := NewFrontier()
	if err != nil {
		t.Fatal(err)
	}
	res, err := tw.Run(Scenario{Workload: WorkloadIdle, HorizonSec: 120, TickSec: 15})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Report.AvgPowerMW-7.24)/7.24 > 0.01 {
		t.Errorf("idle = %v MW", res.Report.AvgPowerMW)
	}
}

func TestPeakScenarioMatchesTableIII(t *testing.T) {
	tw, err := NewFrontier()
	if err != nil {
		t.Fatal(err)
	}
	res, err := tw.Run(Scenario{Workload: WorkloadPeak, HorizonSec: 120, TickSec: 15})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Report.MaxPowerMW-28.2)/28.2 > 0.01 {
		t.Errorf("peak = %v MW", res.Report.MaxPowerMW)
	}
}

func TestSyntheticScenarioProducesJobsAndTelemetry(t *testing.T) {
	tw, err := NewFrontier()
	if err != nil {
		t.Fatal(err)
	}
	gen := job.DefaultGeneratorConfig()
	gen.ArrivalMeanSec = 120
	gen.WallMeanSec = 600
	gen.WallStdSec = 120
	gen.WallMinSec = 120
	gen.WallMaxSec = 1200
	res, err := tw.Run(Scenario{
		Workload: WorkloadSynthetic, Generator: gen,
		HorizonSec: 2 * 3600, TickSec: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.JobsCompleted < 10 {
		t.Errorf("completed %d jobs", res.Report.JobsCompleted)
	}
	// The export covers every job that started: completed plus still
	// running at the horizon.
	if len(res.Dataset.Jobs) < res.Report.JobsCompleted {
		t.Errorf("telemetry jobs %d < completed %d", len(res.Dataset.Jobs), res.Report.JobsCompleted)
	}
	if len(res.History) == 0 || len(res.Dataset.Series) == 0 {
		t.Error("history/series missing")
	}
}

func TestReplayScenarioRoundTrip(t *testing.T) {
	tw, err := NewFrontier()
	if err != nil {
		t.Fatal(err)
	}
	gen := job.DefaultGeneratorConfig()
	gen.ArrivalMeanSec = 200
	gen.WallMeanSec = 600
	gen.WallStdSec = 100
	gen.WallMinSec = 120
	gen.WallMaxSec = 1200
	orig, err := tw.Run(Scenario{
		Workload: WorkloadSynthetic, Generator: gen,
		HorizonSec: 3600, TickSec: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	replay, err := tw.Run(Scenario{
		Workload: WorkloadReplay, Dataset: orig.Dataset,
		HorizonSec: 3600, TickSec: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(replay.Report.AvgPowerMW-orig.Report.AvgPowerMW)/orig.Report.AvgPowerMW > 0.02 {
		t.Errorf("replay %v MW vs original %v MW", replay.Report.AvgPowerMW, orig.Report.AvgPowerMW)
	}
}

func TestReplayWithoutDatasetFails(t *testing.T) {
	tw, err := NewFrontier()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Run(Scenario{Workload: WorkloadReplay, HorizonSec: 60}); err == nil {
		t.Error("replay without dataset must fail")
	}
}

func TestScenarioValidation(t *testing.T) {
	tw, err := NewFrontier()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Run(Scenario{Workload: WorkloadIdle}); err == nil {
		t.Error("zero horizon must fail")
	}
	if _, err := tw.Run(Scenario{Workload: "quantum", HorizonSec: 60}); err == nil {
		t.Error("unknown workload must fail")
	}
	if _, err := NewFromSpec(config.SystemSpec{}); err == nil {
		t.Error("invalid spec must fail")
	}
}

func TestDC380ModeReducesPower(t *testing.T) {
	tw, err := NewFrontier()
	if err != nil {
		t.Fatal(err)
	}
	base, err := tw.Run(Scenario{Workload: WorkloadPeak, HorizonSec: 60, TickSec: 15})
	if err != nil {
		t.Fatal(err)
	}
	dc, err := tw.Run(Scenario{Workload: WorkloadPeak, HorizonSec: 60, TickSec: 15, PowerMode: "dc380"})
	if err != nil {
		t.Fatal(err)
	}
	if dc.Report.AvgPowerMW >= base.Report.AvgPowerMW {
		t.Errorf("dc380 %v MW should beat baseline %v MW", dc.Report.AvgPowerMW, base.Report.AvgPowerMW)
	}
	if dc.Report.EtaSystem < 0.97 {
		t.Errorf("dc380 η = %v, want ≈0.973", dc.Report.EtaSystem)
	}
}

func TestVizSourceIntegration(t *testing.T) {
	tw, err := NewFrontier()
	if err != nil {
		t.Fatal(err)
	}
	// Before any run: empty but safe.
	if tw.Status().PowerMW != 0 || tw.Series() != nil || tw.CoolingOutputs() != nil {
		t.Error("fresh twin should report empty viz data")
	}
	if _, err := tw.Run(Scenario{
		Workload: WorkloadHPL, HorizonSec: 600, TickSec: 15,
		Cooling: true, BenchmarkWallSec: 1200,
	}); err != nil {
		t.Fatal(err)
	}
	st := tw.Status()
	if st.PowerMW < 15 || st.PowerMW > 25 {
		t.Errorf("status power = %v MW", st.PowerMW)
	}
	if st.PUE < 1.01 || st.PUE > 1.15 {
		t.Errorf("status PUE = %v", st.PUE)
	}
	series := tw.Series()
	if len(series) == 0 {
		t.Fatal("series empty")
	}
	cool := tw.CoolingOutputs()
	if len(cool) != 317 {
		t.Fatalf("cooling outputs = %d, want 317", len(cool))
	}
	if _, ok := cool["pue"]; !ok {
		t.Error("pue channel missing")
	}
}

func TestExperimentRunner(t *testing.T) {
	tw, err := NewFrontier()
	if err != nil {
		t.Fatal(err)
	}
	run := tw.ExperimentRunner()
	res, err := run(context.Background(), map[string]string{"workload": "idle", "horizon_sec": "60"})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil result")
	}
	if _, err := run(context.Background(), map[string]string{"workload": "bogus"}); err == nil {
		t.Error("bad workload should fail")
	}
	if _, err := run(context.Background(), map[string]string{"horizon_sec": "xyz"}); err == nil {
		t.Error("bad horizon should fail")
	}
}

func TestWeatherDrivenScenario(t *testing.T) {
	tw, err := NewFrontier()
	if err != nil {
		t.Fatal(err)
	}
	res, err := tw.Run(Scenario{
		Workload: WorkloadIdle, HorizonSec: 300, TickSec: 15,
		Cooling: true, WeatherSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.AvgPUE <= 1.0 {
		t.Errorf("PUE = %v", res.Report.AvgPUE)
	}
}
