// Package dist provides the random-variate distributions the synthetic
// workload generator draws from (§III-B3): exponentially distributed
// inter-arrival gaps (Eq. 5's Poisson process), log-normally distributed
// node counts (heavy-tailed job sizes), and truncated-normal runtimes and
// utilizations. Every draw goes through a caller-supplied *rand.Rand so
// multi-day studies stay reproducible and parallelizable.
package dist

import (
	"math"
	"math/rand"
)

// Exponential draws an exponentially distributed value with the given
// mean — the Eq. 5 inter-arrival gap. Non-positive means return 0.
func Exponential(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return rng.ExpFloat64() * mean
}

// LogNormal draws a log-normally distributed value parameterized by the
// distribution's own mean and standard deviation (the form Table IV
// quotes its statistics in), not the underlying normal's μ/σ. A
// non-positive std degenerates to the mean; a non-positive mean to 0.
func LogNormal(rng *rand.Rand, mean, std float64) float64 {
	if mean <= 0 {
		return 0
	}
	if std <= 0 {
		return mean
	}
	// mean = exp(μ + σ²/2), var = (exp(σ²) − 1)·exp(2μ + σ²)
	// ⇒ σ² = ln(1 + (std/mean)²), μ = ln(mean) − σ²/2.
	s2 := math.Log(1 + (std/mean)*(std/mean))
	mu := math.Log(mean) - s2/2
	return math.Exp(mu + math.Sqrt(s2)*rng.NormFloat64())
}

// TruncNormal draws a normal value with the given mean and std,
// resampling until it lands inside [lo, hi]. Swapped bounds are
// reordered; a non-positive std — or bounds so far in the tail that
// rejection keeps missing — clamps the mean into the interval instead.
func TruncNormal(rng *rand.Rand, mean, std, lo, hi float64) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	if std <= 0 {
		return clamp(mean, lo, hi)
	}
	for i := 0; i < 64; i++ {
		v := mean + std*rng.NormFloat64()
		if v >= lo && v <= hi {
			return v
		}
	}
	return clamp(mean, lo, hi)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
