package dist

import (
	"math"
	"math/rand"
	"testing"
)

const samples = 200000

func moments(draw func(*rand.Rand) float64) (mean, std float64) {
	rng := rand.New(rand.NewSource(7))
	var sum, sum2 float64
	for i := 0; i < samples; i++ {
		v := draw(rng)
		sum += v
		sum2 += v * v
	}
	mean = sum / samples
	std = math.Sqrt(sum2/samples - mean*mean)
	return mean, std
}

func TestExponentialMoments(t *testing.T) {
	mean, std := moments(func(r *rand.Rand) float64 { return Exponential(r, 138) })
	if math.Abs(mean-138)/138 > 0.02 {
		t.Errorf("mean = %v, want ≈138", mean)
	}
	// Exponential: std == mean.
	if math.Abs(std-138)/138 > 0.03 {
		t.Errorf("std = %v, want ≈138", std)
	}
	if Exponential(rand.New(rand.NewSource(1)), 0) != 0 {
		t.Error("non-positive mean should draw 0")
	}
}

func TestExponentialNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		if v := Exponential(rng, 50); v < 0 {
			t.Fatalf("negative draw %v", v)
		}
	}
}

func TestLogNormalMoments(t *testing.T) {
	// Parameterized directly by the distribution's mean/std (Table IV
	// form): the sample moments must reproduce them.
	mean, std := moments(func(r *rand.Rand) float64 { return LogNormal(r, 268, 400) })
	if math.Abs(mean-268)/268 > 0.03 {
		t.Errorf("mean = %v, want ≈268", mean)
	}
	if math.Abs(std-400)/400 > 0.06 {
		t.Errorf("std = %v, want ≈400", std)
	}
}

func TestLogNormalPositiveAndDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		if v := LogNormal(rng, 100, 300); v <= 0 {
			t.Fatalf("non-positive draw %v", v)
		}
	}
	if v := LogNormal(rng, 42, 0); v != 42 {
		t.Errorf("zero std should return the mean, got %v", v)
	}
	if v := LogNormal(rng, 0, 10); v != 0 {
		t.Errorf("zero mean should return 0, got %v", v)
	}
}

func TestTruncNormalBoundsAndMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		v := TruncNormal(rng, 39, 14, 17, 101)
		if v < 17 || v > 101 {
			t.Fatalf("draw %v outside [17,101]", v)
		}
	}
	// Mild truncation barely shifts the mean.
	mean, _ := moments(func(r *rand.Rand) float64 { return TruncNormal(r, 39, 14, 17, 101) })
	if math.Abs(mean-39) > 2 {
		t.Errorf("mean = %v, want ≈39", mean)
	}
}

func TestTruncNormalDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	if v := TruncNormal(rng, 5, 0, 0, 1); v != 1 {
		t.Errorf("zero std clamps the mean into bounds, got %v", v)
	}
	// Swapped bounds are reordered rather than rejected forever.
	if v := TruncNormal(rng, 0.5, 0.1, 1, 0); v < 0 || v > 1 {
		t.Errorf("swapped bounds draw %v outside [0,1]", v)
	}
	// Bounds unreachable by rejection fall back to a clamp.
	if v := TruncNormal(rng, 0, 0.001, 100, 200); v != 100 {
		t.Errorf("far-tail fallback = %v, want 100", v)
	}
}
