package exp

import (
	"fmt"
	"math"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/cooling"
	"exadigit/internal/core"
	"exadigit/internal/job"
	"exadigit/internal/raps"
)

// AblationControlDt studies Finding 6's fidelity/complexity balance on
// the cooling model: the plant's controller/hydraulics update period is
// swept and each variant's steady state and wall-clock cost are compared
// against the 1 s reference. Larger periods run proportionally faster;
// the experiment quantifies how much steady-state accuracy they give up.
// (This sweep stays below the twin layer — it drives the bare plant, not
// scenarios — so it is the one ablation that cannot ride RunBatch.)
func AblationControlDt(periods []float64) (*Table, error) {
	if len(periods) == 0 {
		periods = []float64{1, 3, 5, 15}
	}
	heat := make([]float64, 25)
	for i := range heat {
		heat[i] = 16e6 / 25
	}
	in := cooling.Inputs{CDUHeatW: heat, WetBulbC: 20, ITPowerW: 16.9e6}

	type outcome struct {
		dt     float64
		htwRet float64
		pue    float64
		wall   time.Duration
	}
	var outcomes []outcome
	for _, dt := range periods {
		cfg := cooling.Frontier()
		cfg.ControlDtS = dt
		plant, err := cooling.New(cfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := plant.SettleToSteadyState(in, 2*3600); err != nil {
			return nil, err
		}
		o := plant.Snapshot()
		outcomes = append(outcomes, outcome{
			dt: dt, htwRet: o.FacilityReturnC, pue: o.PUE, wall: time.Since(start),
		})
	}
	ref := outcomes[0]
	t := &Table{
		Title:   "Ablation — cooling-model control/integration period (Finding 6)",
		Columns: []string{"dt (s)", "HTW return (degC)", "|ΔT| vs ref", "PUE", "wall time"},
	}
	for _, o := range outcomes {
		t.AddRow(f1(o.dt), f2(o.htwRet), f3(math.Abs(o.htwRet-ref.htwRet)),
			f3(o.pue), o.wall.Round(time.Millisecond).String())
	}
	return t, nil
}

// ablationGen returns the seeded default workload the RAPS-level
// ablations share.
func ablationGen(seed int64) job.GeneratorConfig {
	gen := job.DefaultGeneratorConfig()
	gen.Seed = seed
	return gen
}

// runAblationBatch executes the scenarios through core.RunBatch with a
// single worker, so the per-scenario WallSec timings stay comparable
// (no co-scheduled runs competing for cores) while still sharing one
// compiled spec.
func runAblationBatch(scenarios []core.Scenario) ([]*core.Result, error) {
	return core.RunBatch(config.Frontier(), scenarios, 1)
}

func wallString(res *core.Result) string {
	return time.Duration(res.WallSec * float64(time.Second)).Round(time.Millisecond).String()
}

// AblationTick compares RAPS at the paper's 1 s tick against the 15 s
// fast path on the same workload: because utilization traces advance at
// 15 s quanta, the energy accounting should agree to a fraction of a
// percent while running ≈15× faster. Both variants ride core.RunBatch as
// scenarios of one spec.
func AblationTick(horizonSec float64, seed int64) (*Table, float64, error) {
	if horizonSec <= 0 {
		horizonSec = 2 * 3600
	}
	base := core.Scenario{
		Workload:   core.WorkloadSynthetic,
		HorizonSec: horizonSec,
		Generator:  ablationGen(seed),
		NoExport:   true,
	}
	fine := base
	fine.Name, fine.TickSec = "tick-1s", 1
	coarse := base
	coarse.Name, coarse.TickSec = "tick-15s", 15
	batch, err := runAblationBatch([]core.Scenario{fine, coarse})
	if err != nil {
		return nil, 0, err
	}
	fr, cr := batch[0].Report, batch[1].Report
	divergence := 100 * math.Abs(cr.EnergyMWh-fr.EnergyMWh) / fr.EnergyMWh
	t := &Table{
		Title:   "Ablation — simulation tick (1 s Algorithm 1 vs 15 s fast path)",
		Columns: []string{"Tick", "Energy (MWh)", "Jobs", "Wall time"},
		Notes: []string{
			fmt.Sprintf("energy divergence %.3f %% — traces advance at 15 s quanta, so the fast path is faithful", divergence),
		},
	}
	t.AddRow("1 s", f3(fr.EnergyMWh), fmt.Sprint(fr.JobsCompleted), wallString(batch[0]))
	t.AddRow("15 s", f3(cr.EnergyMWh), fmt.Sprint(cr.JobsCompleted), wallString(batch[1]))
	return t, divergence, nil
}

// AblationCoolingCost measures the simulation-cost ratio of coupling the
// cooling model (the paper: "about nine minutes to run with cooling, or
// just three minutes without" — a ≈3× ratio), as a two-scenario batch.
func AblationCoolingCost(horizonSec float64, seed int64) (*Table, float64, error) {
	if horizonSec <= 0 {
		horizonSec = 4 * 3600
	}
	base := core.Scenario{
		Workload:   core.WorkloadSynthetic,
		HorizonSec: horizonSec,
		TickSec:    15,
		Generator:  ablationGen(seed),
		WetBulbC:   20,
		NoExport:   true,
	}
	without := base
	without.Name = "raps-only"
	with := base
	with.Name, with.Cooling = "raps+cooling", true
	batch, err := runAblationBatch([]core.Scenario{without, with})
	if err != nil {
		return nil, 0, err
	}
	ratio := batch[1].WallSec / batch[0].WallSec
	t := &Table{
		Title:   "Ablation — cooling-model coupling cost (§IV-3's 9 min vs 3 min)",
		Columns: []string{"Configuration", "Wall time", "Ratio"},
	}
	t.AddRow("RAPS only", wallString(batch[0]), "1.0")
	t.AddRow("RAPS + cooling FMU", wallString(batch[1]), f1(ratio))
	return t, ratio, nil
}

// AblationSchedulers compares the three policies on an oversubscribed
// workload: EASY backfill should complete at least as many jobs as FCFS
// on the same trace (the paper's planned "more sophisticated algorithms"
// evaluation). One scenario per policy, fanned out through RunBatch.
func AblationSchedulers(horizonSec float64, seed int64) (*Table, map[string]*raps.Report, error) {
	if horizonSec <= 0 {
		horizonSec = 4 * 3600
	}
	gen := ablationGen(seed)
	// Oversubscribe hard so head-of-line blocking matters: frequent
	// arrivals of large, long jobs.
	gen.ArrivalMeanSec = 25
	gen.NodesMean = 900
	gen.NodesStd = 1800
	gen.WallMeanSec = 80 * 60
	gen.WallStdSec = 25 * 60
	policies := []string{"fcfs", "sjf", "easy"}
	scenarios := make([]core.Scenario, len(policies))
	for i, policy := range policies {
		scenarios[i] = core.Scenario{
			Name:       "sched-" + policy,
			Workload:   core.WorkloadSynthetic,
			HorizonSec: horizonSec,
			TickSec:    15,
			Policy:     policy,
			Generator:  gen,
			NoExport:   true,
		}
	}
	batch, err := core.RunBatch(config.Frontier(), scenarios, 0)
	if err != nil {
		return nil, nil, err
	}
	reports := map[string]*raps.Report{}
	t := &Table{
		Title:   "Ablation — scheduling policy on an oversubscribed day",
		Columns: []string{"Policy", "Jobs completed", "Avg utilization", "Avg power (MW)"},
	}
	for i, policy := range policies {
		rep := batch[i].Report
		reports[policy] = rep
		t.AddRow(policy, fmt.Sprint(rep.JobsCompleted), f3(rep.AvgUtilization), f2(rep.AvgPowerMW))
	}
	return t, reports, nil
}
