package exp

import (
	"fmt"
	"math"
	"time"

	"exadigit/internal/cooling"
	"exadigit/internal/job"
	"exadigit/internal/power"
	"exadigit/internal/raps"
)

// AblationControlDt studies Finding 6's fidelity/complexity balance on
// the cooling model: the plant's controller/hydraulics update period is
// swept and each variant's steady state and wall-clock cost are compared
// against the 1 s reference. Larger periods run proportionally faster;
// the experiment quantifies how much steady-state accuracy they give up.
func AblationControlDt(periods []float64) (*Table, error) {
	if len(periods) == 0 {
		periods = []float64{1, 3, 5, 15}
	}
	heat := make([]float64, 25)
	for i := range heat {
		heat[i] = 16e6 / 25
	}
	in := cooling.Inputs{CDUHeatW: heat, WetBulbC: 20, ITPowerW: 16.9e6}

	type outcome struct {
		dt     float64
		htwRet float64
		pue    float64
		wall   time.Duration
	}
	var outcomes []outcome
	for _, dt := range periods {
		cfg := cooling.Frontier()
		cfg.ControlDtS = dt
		plant, err := cooling.New(cfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := plant.SettleToSteadyState(in, 2*3600); err != nil {
			return nil, err
		}
		o := plant.Snapshot()
		outcomes = append(outcomes, outcome{
			dt: dt, htwRet: o.FacilityReturnC, pue: o.PUE, wall: time.Since(start),
		})
	}
	ref := outcomes[0]
	t := &Table{
		Title:   "Ablation — cooling-model control/integration period (Finding 6)",
		Columns: []string{"dt (s)", "HTW return (degC)", "|ΔT| vs ref", "PUE", "wall time"},
	}
	for _, o := range outcomes {
		t.AddRow(f1(o.dt), f2(o.htwRet), f3(math.Abs(o.htwRet-ref.htwRet)),
			f3(o.pue), o.wall.Round(time.Millisecond).String())
	}
	return t, nil
}

// AblationTick compares RAPS at the paper's 1 s tick against the 15 s
// fast path on the same workload: because utilization traces advance at
// 15 s quanta, the energy accounting should agree to a fraction of a
// percent while running ≈15× faster.
func AblationTick(horizonSec float64, seed int64) (*Table, float64, error) {
	if horizonSec <= 0 {
		horizonSec = 2 * 3600
	}
	gen := job.DefaultGeneratorConfig()
	gen.Seed = seed
	runAt := func(tick float64) (*raps.Report, time.Duration, error) {
		jobs := job.NewGenerator(gen).GenerateHorizon(horizonSec)
		cfg := raps.DefaultConfig()
		cfg.TickSec = tick
		sim, err := raps.New(cfg, power.NewFrontierModel(), jobs)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		rep, err := sim.Run(horizonSec)
		return rep, time.Since(start), err
	}
	fine, fineWall, err := runAt(1)
	if err != nil {
		return nil, 0, err
	}
	coarse, coarseWall, err := runAt(15)
	if err != nil {
		return nil, 0, err
	}
	divergence := 100 * math.Abs(coarse.EnergyMWh-fine.EnergyMWh) / fine.EnergyMWh
	t := &Table{
		Title:   "Ablation — simulation tick (1 s Algorithm 1 vs 15 s fast path)",
		Columns: []string{"Tick", "Energy (MWh)", "Jobs", "Wall time"},
		Notes: []string{
			fmt.Sprintf("energy divergence %.3f %% — traces advance at 15 s quanta, so the fast path is faithful", divergence),
		},
	}
	t.AddRow("1 s", f3(fine.EnergyMWh), fmt.Sprint(fine.JobsCompleted), fineWall.Round(time.Millisecond).String())
	t.AddRow("15 s", f3(coarse.EnergyMWh), fmt.Sprint(coarse.JobsCompleted), coarseWall.Round(time.Millisecond).String())
	return t, divergence, nil
}

// AblationCoolingCost measures the simulation-cost ratio of coupling the
// cooling model (the paper: "about nine minutes to run with cooling, or
// just three minutes without" — a ≈3× ratio).
func AblationCoolingCost(horizonSec float64, seed int64) (*Table, float64, error) {
	if horizonSec <= 0 {
		horizonSec = 4 * 3600
	}
	gen := job.DefaultGeneratorConfig()
	gen.Seed = seed
	runWith := func(coupled bool) (time.Duration, error) {
		jobs := job.NewGenerator(gen).GenerateHorizon(horizonSec)
		cfg := raps.DefaultConfig()
		cfg.TickSec = 15
		cfg.EnableCooling = coupled
		sim, err := raps.New(cfg, power.NewFrontierModel(), jobs)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		_, err = sim.Run(horizonSec)
		return time.Since(start), err
	}
	without, err := runWith(false)
	if err != nil {
		return nil, 0, err
	}
	with, err := runWith(true)
	if err != nil {
		return nil, 0, err
	}
	ratio := float64(with) / float64(without)
	t := &Table{
		Title:   "Ablation — cooling-model coupling cost (§IV-3's 9 min vs 3 min)",
		Columns: []string{"Configuration", "Wall time", "Ratio"},
	}
	t.AddRow("RAPS only", without.Round(time.Millisecond).String(), "1.0")
	t.AddRow("RAPS + cooling FMU", with.Round(time.Millisecond).String(), f1(ratio))
	return t, ratio, nil
}

// AblationSchedulers compares the three policies on an oversubscribed
// workload: EASY backfill should complete at least as many jobs as FCFS
// on the same trace (the paper's planned "more sophisticated algorithms"
// evaluation).
func AblationSchedulers(horizonSec float64, seed int64) (*Table, map[string]*raps.Report, error) {
	if horizonSec <= 0 {
		horizonSec = 4 * 3600
	}
	gen := job.DefaultGeneratorConfig()
	gen.Seed = seed
	// Oversubscribe hard so head-of-line blocking matters: frequent
	// arrivals of large, long jobs.
	gen.ArrivalMeanSec = 25
	gen.NodesMean = 900
	gen.NodesStd = 1800
	gen.WallMeanSec = 80 * 60
	gen.WallStdSec = 25 * 60
	reports := map[string]*raps.Report{}
	t := &Table{
		Title:   "Ablation — scheduling policy on an oversubscribed day",
		Columns: []string{"Policy", "Jobs completed", "Avg utilization", "Avg power (MW)"},
	}
	for _, policy := range []string{"fcfs", "sjf", "easy"} {
		jobs := job.NewGenerator(gen).GenerateHorizon(horizonSec)
		cfg := raps.DefaultConfig()
		cfg.TickSec = 15
		cfg.Policy = policy
		sim, err := raps.New(cfg, power.NewFrontierModel(), jobs)
		if err != nil {
			return nil, nil, err
		}
		rep, err := sim.Run(horizonSec)
		if err != nil {
			return nil, nil, err
		}
		reports[policy] = rep
		t.AddRow(policy, fmt.Sprint(rep.JobsCompleted), f3(rep.AvgUtilization), f2(rep.AvgPowerMW))
	}
	return t, reports, nil
}
