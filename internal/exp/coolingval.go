package exp

import (
	"fmt"
	"math/rand"
	"time"

	"exadigit/internal/cooling"
	"exadigit/internal/job"
	"exadigit/internal/power"
	"exadigit/internal/raps"
	"exadigit/internal/stats"
	"exadigit/internal/units"
	"exadigit/internal/weather"
)

// Fig7Config parameterizes the cooling-model validation study.
type Fig7Config struct {
	// HorizonSec is the validation window (the paper uses ~24 h of
	// 2024-04-07 telemetry).
	HorizonSec float64
	Seed       int64
	// SensorNoiseRel is the relative meter noise on the "physical"
	// channels (default 1 %).
	SensorNoiseRel float64
	// PlantMismatchRel perturbs the "physical twin" plant parameters
	// relative to the model (default 5 %), supplying the model-form
	// error the paper's validation exhibits.
	PlantMismatchRel float64
}

// Fig7Channel is one validated quantity with its error metrics.
type Fig7Channel struct {
	Name      string
	Unit      string
	Predicted []float64
	Measured  []float64
	RMSE      float64
	MAE       float64
	MAPE      float64
}

// Fig7Data carries the full validation result.
type Fig7Data struct {
	TimeSec  []float64
	Channels []Fig7Channel
}

// Fig7 reruns the §IV-1 cooling-model validation: a day of CDU heat loads
// and wet-bulb weather drives two plants — a parameter-perturbed
// "physical twin" whose noisy outputs stand in for telemetry, and the
// nominal model — and compares CDU primary flow, CDU return temperature,
// HTW supply pressure, and PUE.
func Fig7(cfg Fig7Config) (*Table, *Fig7Data, error) {
	if cfg.HorizonSec <= 0 {
		cfg.HorizonSec = 24 * 3600
	}
	if cfg.SensorNoiseRel == 0 {
		cfg.SensorNoiseRel = 0.01
	}
	if cfg.PlantMismatchRel == 0 {
		cfg.PlantMismatchRel = 0.05
	}

	// 1. A synthetic day of compute load → per-CDU heat series.
	gen := job.DefaultGeneratorConfig()
	gen.Seed = cfg.Seed + 1
	jobs := job.NewGenerator(gen).GenerateHorizon(cfg.HorizonSec)
	rcfg := raps.DefaultConfig()
	rcfg.TickSec = 15
	rcfg.RecordCDUHeat = true
	sim, err := raps.New(rcfg, power.NewFrontierModel(), jobs)
	if err != nil {
		return nil, nil, err
	}
	if _, err := sim.Run(cfg.HorizonSec); err != nil {
		return nil, nil, err
	}
	hist := sim.History()
	if len(hist) == 0 {
		return nil, nil, fmt.Errorf("exp: empty history")
	}

	// Wet-bulb series for the same day.
	wgen := weather.NewGenerator(weather.DefaultConfig())
	start := time.Date(2024, 4, 7, 0, 0, 0, 0, time.UTC)
	wb := wgen.Series(start, len(hist), 15)

	// 2. "Physical twin": perturbed plant; "model": nominal plant.
	physical, err := cooling.New(perturbPlant(cooling.Frontier(), cfg.PlantMismatchRel, cfg.Seed+2))
	if err != nil {
		return nil, nil, err
	}
	model, err := cooling.New(cooling.Frontier())
	if err != nil {
		return nil, nil, err
	}

	data := &Fig7Data{
		Channels: []Fig7Channel{
			{Name: "CDU primary flow (station 12)", Unit: "gpm"},
			{Name: "CDU primary return temp (station 12)", Unit: "degC"},
			{Name: "HTW supply pressure (station 10)", Unit: "kPa"},
			{Name: "PUE", Unit: "-"},
		},
	}
	noise := rand.New(rand.NewSource(cfg.Seed + 3))
	for i, smp := range hist {
		in := cooling.Inputs{CDUHeatW: smp.CDUHeatW, WetBulbC: wb[i], ITPowerW: smp.PowerW}
		if err := physical.Step(15, in); err != nil {
			return nil, nil, err
		}
		if err := model.Step(15, in); err != nil {
			return nil, nil, err
		}
		po := physical.Snapshot()
		mo := model.Snapshot()
		data.TimeSec = append(data.TimeSec, smp.TimeSec)
		push := func(ch int, pred, meas float64) {
			data.Channels[ch].Predicted = append(data.Channels[ch].Predicted, pred)
			data.Channels[ch].Measured = append(data.Channels[ch].Measured,
				meas*(1+cfg.SensorNoiseRel*noise.NormFloat64()))
		}
		// Aggregate CDU channels like Fig. 7: total primary flow and the
		// flow-weighted mean return temperature.
		push(0, totalPrimGPM(mo), totalPrimGPM(po))
		push(1, meanPrimReturn(mo), meanPrimReturn(po))
		push(2, mo.FacilitySupplyPa/1e3, po.FacilitySupplyPa/1e3)
		push(3, mo.PUE, po.PUE)
	}

	t := &Table{
		Title:   "Fig. 7 — Cooling model validation (model vs synthetic telemetry)",
		Columns: []string{"Channel", "Unit", "RMSE", "MAE", "MAPE %"},
		Notes: []string{
			"telemetry = parameter-perturbed plant + sensor noise (ORNL production telemetry is not public)",
			"paper reports PUE within 1.4 % of telemetry",
		},
	}
	for i := range data.Channels {
		ch := &data.Channels[i]
		if ch.RMSE, err = stats.RMSE(ch.Predicted, ch.Measured); err != nil {
			return nil, nil, err
		}
		if ch.MAE, err = stats.MAE(ch.Predicted, ch.Measured); err != nil {
			return nil, nil, err
		}
		if ch.MAPE, err = stats.MAPE(ch.Predicted, ch.Measured); err != nil {
			return nil, nil, err
		}
		t.AddRow(ch.Name, ch.Unit, f3(ch.RMSE), f3(ch.MAE), f2(ch.MAPE))
	}
	return t, data, nil
}

func totalPrimGPM(o *cooling.Outputs) float64 {
	return o.HTWFlowM3s * units.M3sToGPM
}

func meanPrimReturn(o *cooling.Outputs) float64 {
	var num, den float64
	for i := range o.CDUs {
		num += o.CDUs[i].PrimaryReturnTempC * o.CDUs[i].PrimaryFlowM3s
		den += o.CDUs[i].PrimaryFlowM3s
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// perturbPlant scales key physical parameters by ±rel to emulate the
// as-built/as-modeled gap.
func perturbPlant(cfg cooling.Config, rel float64, seed int64) cooling.Config {
	rng := rand.New(rand.NewSource(seed))
	p := func(v float64) float64 { return v * (1 + rel*(2*rng.Float64()-1)) }
	cfg.CDUHex.UANominal = p(cfg.CDUHex.UANominal)
	cfg.EHX.UANominal = p(cfg.EHX.UANominal)
	cfg.Tower.EpsNominal = clampF(p(cfg.Tower.EpsNominal), 0.4, 0.95)
	cfg.SecLoopK = p(cfg.SecLoopK)
	cfg.HTWLoopK = p(cfg.HTWLoopK)
	cfg.CTWLoopK = p(cfg.CTWLoopK)
	cfg.SecPump.H0 = p(cfg.SecPump.H0)
	cfg.HTWPump.H0 = p(cfg.HTWPump.H0)
	cfg.CTWPump.H0 = p(cfg.CTWPump.H0)
	return cfg
}

// Fig8Data is the synthetic benchmark transient (power + temperature).
type Fig8Data struct {
	TimeSec    []float64
	PowerMW    []float64
	HTWReturnC []float64
	// Phase boundaries for the table.
	IdlePowerMW     float64
	HPLPowerMW      float64
	OpenMxPPowerMW  float64
	TempRiseHPLC    float64
	BaselineReturnC float64
}

// Fig8 reruns the synthetic benchmark verification test: HPL followed by
// OpenMxP on 9216 nodes with the cooling model coupled, producing the
// system-power square wave and the transient primary-return-temperature
// response.
func Fig8(wallSec float64) (*Table, *Fig8Data, error) {
	if wallSec <= 0 {
		wallSec = 3600
	}
	gap := 900.0
	lead := 900.0
	jobs := []*job.Job{
		job.NewHPL(1, lead, wallSec),
		job.NewOpenMxP(2, lead+wallSec+gap, wallSec),
	}
	rcfg := raps.DefaultConfig()
	rcfg.TickSec = 15
	rcfg.EnableCooling = true
	sim, err := raps.New(rcfg, power.NewFrontierModel(), jobs)
	if err != nil {
		return nil, nil, err
	}
	horizon := lead + 2*wallSec + 2*gap
	if _, err := sim.Run(horizon); err != nil {
		return nil, nil, err
	}

	data := &Fig8Data{}
	var idleN, hplN, mxpN int
	for _, smp := range sim.History() {
		data.TimeSec = append(data.TimeSec, smp.TimeSec)
		data.PowerMW = append(data.PowerMW, smp.PowerW/1e6)
		data.HTWReturnC = append(data.HTWReturnC, smp.HTWReturnC)
		switch {
		case smp.TimeSec < lead:
			data.IdlePowerMW += smp.PowerW / 1e6
			data.BaselineReturnC += smp.HTWReturnC
			idleN++
		case smp.TimeSec > lead+0.3*wallSec && smp.TimeSec < lead+0.8*wallSec:
			data.HPLPowerMW += smp.PowerW / 1e6
			hplN++
		case smp.TimeSec > lead+wallSec+gap+0.3*wallSec && smp.TimeSec < lead+wallSec+gap+0.8*wallSec:
			data.OpenMxPPowerMW += smp.PowerW / 1e6
			mxpN++
		}
	}
	if idleN > 0 {
		data.IdlePowerMW /= float64(idleN)
		data.BaselineReturnC /= float64(idleN)
	}
	if hplN > 0 {
		data.HPLPowerMW /= float64(hplN)
	}
	if mxpN > 0 {
		data.OpenMxPPowerMW /= float64(mxpN)
	}
	// Peak return-temperature rise during the benchmarks.
	maxReturn := 0.0
	for _, v := range data.HTWReturnC {
		if v > maxReturn {
			maxReturn = v
		}
	}
	data.TempRiseHPLC = maxReturn - data.BaselineReturnC

	t := &Table{
		Title:   "Fig. 8 — Synthetic benchmark verification (HPL + OpenMxP with cooling)",
		Columns: []string{"Phase", "Avg power (MW)", "HTW return response"},
	}
	t.AddRow("Idle lead-in", f2(data.IdlePowerMW), fmt.Sprintf("baseline %.1f degC", data.BaselineReturnC))
	t.AddRow("HPL core", f2(data.HPLPowerMW), "-")
	t.AddRow("OpenMxP core", f2(data.OpenMxPPowerMW), "-")
	t.AddRow("Transient", "-", fmt.Sprintf("peak rise +%.1f degC", data.TempRiseHPLC))
	return t, data, nil
}
