package exp

import (
	"fmt"
	"math/rand"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/dist"
	"exadigit/internal/job"
	"exadigit/internal/power"
	"exadigit/internal/raps"
	"exadigit/internal/stats"
)

// DailyConfig parameterizes the Table IV multi-day replay study.
type DailyConfig struct {
	// Days is the number of simulated days (the paper replays 183).
	Days int
	// Seed makes the whole study reproducible.
	Seed int64
	// TickSec is the per-day simulation tick (15 s is faithful; see
	// raps.Config).
	TickSec float64
	// Mode selects the conversion architecture for what-if variants.
	Mode power.Mode
	// Workers bounds parallel day simulations (0 → NumCPU; the paper
	// likewise runs "the different days in parallel").
	Workers int
}

// DayResult is one day's report plus its drawn workload parameters.
type DayResult struct {
	Day    int
	Report *raps.Report
}

// DailySummary aggregates the per-day reports into Table IV rows.
type DailySummary struct {
	Days      []DayResult
	Arrival   stats.Summary // s
	NodesJob  stats.Summary
	Runtime   stats.Summary // min
	Jobs      stats.Summary
	Thru      stats.Summary // jobs/hr
	PowerMW   stats.Summary
	LossMW    stats.Summary
	LossPct   stats.Summary
	EnergyMWh stats.Summary
	CO2Tons   stats.Summary
}

// dayWorkload draws one day's workload statistics. Daily means vary with
// heavy tails, reproducing Table IV's spread (arrival 17–2988 s, nodes
// 39–5441, runtime 17–101 min across the 183 days).
func dayWorkload(rng *rand.Rand, nodesTotal int) job.GeneratorConfig {
	cfg := job.DefaultGeneratorConfig()
	cfg.Seed = rng.Int63()
	cfg.ArrivalMeanSec = clampF(dist.LogNormal(rng, 138, 280), 17, 2988)
	// The drawn mean applies to multi-node jobs; after the single-node
	// share dilutes it, the realized nodes-per-job lands near the
	// paper's 268 average.
	cfg.NodesMean = clampF(dist.LogNormal(rng, 400, 520), 39, 5441)
	cfg.NodesStd = cfg.NodesMean * 2.3
	cfg.MaxNodes = nodesTotal
	cfg.WallMeanSec = 60 * clampF(dist.TruncNormal(rng, 39, 14, 17, 101), 17, 101)
	cfg.WallStdSec = cfg.WallMeanSec * 0.35
	cfg.WallMinSec = 120
	cfg.WallMaxSec = 4 * 3600
	cfg.GPUUtilMean = clampF(dist.TruncNormal(rng, 0.70, 0.12, 0.3, 0.95), 0, 1)
	cfg.CPUUtilMean = clampF(dist.TruncNormal(rng, 0.45, 0.12, 0.1, 0.9), 0, 1)
	return cfg
}

// dayScenarios draws the study's per-day workloads from the master seed
// and returns one scenario per day — the shared construction behind
// RunDays and the what-if studies, so a baseline and a variant replay
// exactly the same days.
func dayScenarios(cfg DailyConfig) ([]core.Scenario, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("exp: Days must be positive")
	}
	if cfg.TickSec <= 0 {
		cfg.TickSec = 15
	}
	master := rand.New(rand.NewSource(cfg.Seed))
	topo := power.FrontierTopology()
	scenarios := make([]core.Scenario, cfg.Days)
	for d := range scenarios {
		scenarios[d] = core.Scenario{
			Name:       fmt.Sprintf("day-%d-%s", d, cfg.Mode),
			Workload:   core.WorkloadSynthetic,
			HorizonSec: 86400,
			TickSec:    cfg.TickSec,
			PowerMode:  cfg.Mode.String(),
			Generator:  dayWorkload(master, topo.NodesTotal),
			NoExport:   true,
			NoHistory:  true, // summaries read only the report
		}
	}
	return scenarios, nil
}

// summarizeBatch folds batch results (one per day, in day order) into
// the Table IV summary.
func summarizeBatch(batch []*core.Result) (*DailySummary, error) {
	results := make([]DayResult, len(batch))
	for d, res := range batch {
		results[d] = DayResult{Day: d, Report: res.Report}
	}
	return summarizeDays(results)
}

// RunDays simulates the requested number of synthetic telemetry days in
// parallel, each through a full RAPS replay (Table IV's functional
// test). The fan-out rides core.RunBatch — one scenario per day, drawn
// up front from the master seed so results are independent of worker
// scheduling.
func RunDays(cfg DailyConfig) (*DailySummary, error) {
	scenarios, err := dayScenarios(cfg)
	if err != nil {
		return nil, err
	}
	batch, err := core.RunBatch(config.Frontier(), scenarios, cfg.Workers)
	if err != nil {
		return nil, err
	}
	return summarizeBatch(batch)
}

func summarizeDays(days []DayResult) (*DailySummary, error) {
	pull := func(f func(*raps.Report) float64) []float64 {
		out := make([]float64, len(days))
		for i, d := range days {
			out[i] = f(d.Report)
		}
		return out
	}
	sum := &DailySummary{Days: days}
	var err error
	assign := func(dst *stats.Summary, vals []float64) {
		if err != nil {
			return
		}
		*dst, err = stats.Summarize(vals)
	}
	assign(&sum.Arrival, pull(func(r *raps.Report) float64 { return r.AvgArrivalSec }))
	assign(&sum.NodesJob, pull(func(r *raps.Report) float64 { return r.AvgNodesPerJob }))
	assign(&sum.Runtime, pull(func(r *raps.Report) float64 { return r.AvgRuntimeMin }))
	assign(&sum.Jobs, pull(func(r *raps.Report) float64 { return float64(r.JobsCompleted) }))
	assign(&sum.Thru, pull(func(r *raps.Report) float64 { return r.ThroughputPerHr }))
	assign(&sum.PowerMW, pull(func(r *raps.Report) float64 { return r.AvgPowerMW }))
	assign(&sum.LossMW, pull(func(r *raps.Report) float64 { return r.AvgLossMW }))
	assign(&sum.LossPct, pull(func(r *raps.Report) float64 { return r.LossPercent }))
	assign(&sum.EnergyMWh, pull(func(r *raps.Report) float64 { return r.EnergyMWh }))
	assign(&sum.CO2Tons, pull(func(r *raps.Report) float64 { return r.CO2Tons }))
	if err != nil {
		return nil, err
	}
	return sum, nil
}

// TableIV renders the daily statistics in the paper's format.
func TableIV(cfg DailyConfig) (*Table, *DailySummary, error) {
	sum, err := RunDays(cfg)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title: fmt.Sprintf(
			"Table IV — Daily statistics of DT from telemetry replay of %d days", cfg.Days),
		Columns: []string{"Parameter", "Min", "Avg", "Max", "Std"},
		Notes: []string{
			"paper (183 days): power 10.2/16.9/23.0 MW, loss 0.52/1.14/1.84 MW (6.74 % avg), energy 405 MWh avg, CO2 168 t avg",
		},
	}
	row := func(name string, s stats.Summary, fmtFn func(float64) string) {
		t.AddRow(name, fmtFn(s.Min), fmtFn(s.Mean), fmtFn(s.Max), fmtFn(s.Std))
	}
	row("Avg Arrival Rate (s)", sum.Arrival, d0)
	row("Avg Nodes per Job", sum.NodesJob, d0)
	row("Avg Runtime (m)", sum.Runtime, d0)
	row("Jobs Completed", sum.Jobs, d0)
	row("Throughput (jobs/hr)", sum.Thru, f1)
	row("Avg Power (MW)", sum.PowerMW, f1)
	row("Loss (MW)", sum.LossMW, f2)
	row("Loss (%)", sum.LossPct, f2)
	row("Total Energy (MW-hr)", sum.EnergyMWh, d0)
	row("Carbon Emissions (tons CO2)", sum.CO2Tons, d0)
	return t, sum, nil
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
