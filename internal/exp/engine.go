package exp

import (
	"fmt"
	"math"

	"exadigit/internal/core"
)

// EngineResult compares the event-driven incremental engine against the
// dense reference sweep on an identical synthetic day.
type EngineResult struct {
	DenseSec      float64
	EventSec      float64
	Speedup       float64
	EnergyDivPct  float64 // |event − dense| / dense × 100
	DenseMWh      float64
	EventMWh      float64
	JobsDense     int
	JobsEvent     int
	SimDaysPerMin float64 // event-engine replay rate, simulated days/min
}

// EngineComparison replays one seeded synthetic day (86400 s, 15 s tick)
// on both engines and reports wall time, speedup, and result divergence
// — the functional test behind the paper's "nine minutes ... or three
// minutes without cooling" throughput claim and this repo's event-driven
// rework of it. Like the ablations, both variants ride a single-worker
// core.RunBatch so Scenario.Engine selects the engine and Result.WallSec
// carries comparable timings.
func EngineComparison(seed int64) (*Table, *EngineResult, error) {
	base := core.Scenario{
		Workload:   core.WorkloadSynthetic,
		HorizonSec: 86400,
		TickSec:    15,
		Generator:  ablationGen(seed),
		NoExport:   true,
	}
	dense := base
	dense.Name, dense.Engine = "engine-dense", "dense"
	event := base
	event.Name, event.Engine = "engine-event", "event"
	batch, err := runAblationBatch([]core.Scenario{dense, event})
	if err != nil {
		return nil, nil, err
	}
	denseRep, eventRep := batch[0].Report, batch[1].Report
	denseSec, eventSec := batch[0].WallSec, batch[1].WallSec

	res := &EngineResult{
		DenseSec:     denseSec,
		EventSec:     eventSec,
		Speedup:      denseSec / math.Max(eventSec, 1e-9),
		EnergyDivPct: 100 * math.Abs(eventRep.EnergyMWh-denseRep.EnergyMWh) / denseRep.EnergyMWh,
		DenseMWh:     denseRep.EnergyMWh,
		EventMWh:     eventRep.EnergyMWh,
		JobsDense:    denseRep.JobsCompleted,
		JobsEvent:    eventRep.JobsCompleted,
	}
	res.SimDaysPerMin = 60 / math.Max(eventSec, 1e-9)

	t := &Table{
		Title:   "Engine comparison — dense per-tick sweep vs event-driven incremental (one synthetic day, 15 s tick)",
		Columns: []string{"Engine", "Wall (s)", "Energy (MWh)", "Jobs", "Days/min"},
		Notes: []string{
			fmt.Sprintf("speedup %.1f×, energy divergence %.2e %%", res.Speedup, res.EnergyDivPct),
			"paper: ~3 min per replayed day without cooling on one core",
		},
	}
	t.AddRow("dense", f2(denseSec), f2(denseRep.EnergyMWh), fmt.Sprintf("%d", denseRep.JobsCompleted), f1(60/math.Max(denseSec, 1e-9)))
	t.AddRow("event", f2(eventSec), f2(eventRep.EnergyMWh), fmt.Sprintf("%d", eventRep.JobsCompleted), f1(res.SimDaysPerMin))
	return t, res, nil
}
