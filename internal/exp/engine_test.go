package exp

import (
	"strings"
	"testing"
)

// TestEngineComparison pins the ISSUE 1 acceptance gates at the
// experiment level: the event engine beats the dense reference by ≥3×
// on a full synthetic day while diverging <0.01 % in energy.
func TestEngineComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("two full-day replays")
	}
	tbl, res, err := EngineComparison(42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 3 {
		t.Errorf("event engine speedup = %.2f×, want ≥3×", res.Speedup)
	}
	if res.EnergyDivPct > 0.01 {
		t.Errorf("energy divergence = %v %%, want <0.01", res.EnergyDivPct)
	}
	if res.JobsDense != res.JobsEvent {
		t.Errorf("jobs completed: dense %d vs event %d", res.JobsDense, res.JobsEvent)
	}
	if !strings.Contains(tbl.String(), "speedup") {
		t.Error("table missing speedup note")
	}
}
