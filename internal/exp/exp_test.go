package exp

import (
	"math"
	"strings"
	"testing"

	"exadigit/internal/job"
	"exadigit/internal/power"
	"exadigit/internal/raps"
	"exadigit/internal/stats"
	"exadigit/internal/telemetry"
)

func TestTableI(t *testing.T) {
	tbl := TableI()
	out := tbl.String()
	for _, want := range []string{"Nodes Total", "9472", "Number of CDUs", "25", "8700"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestTableII(t *testing.T) {
	tbl, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "317") {
		t.Error("Table II should document the 317-output contract")
	}
}

// TestTableIII verifies the headline verification result: all three
// operating points within a few percent of the paper's telemetry.
func TestTableIII(t *testing.T) {
	tbl, rows, err := TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Our model matches the paper's RAPS predictions closely...
		if math.Abs(r.RAPSMW-r.PaperRAPSMW)/r.PaperRAPSMW > 0.015 {
			t.Errorf("%s: ours %v MW vs paper's RAPS %v MW", r.Name, r.RAPSMW, r.PaperRAPSMW)
		}
		// ...and therefore sits within ~5 % of the paper's telemetry
		// (the paper's own errors are 2.1-4.7 %).
		if r.ErrPct > 6 {
			t.Errorf("%s: %v %% error vs telemetry", r.Name, r.ErrPct)
		}
	}
	if !strings.Contains(tbl.String(), "Idle power") {
		t.Error("table text malformed")
	}
}

// TestFig4Shape verifies the breakdown: GPUs dominate with ≈21.2 MW and
// contributors sum to the 28.2 MW total.
func TestFig4Shape(t *testing.T) {
	tbl, rows := Fig4()
	if rows[0].Component != "GPUs" {
		t.Fatalf("first row = %q", rows[0].Component)
	}
	if math.Abs(rows[0].MW-21.2) > 0.2 {
		t.Errorf("GPU MW = %v, want ≈21.2", rows[0].MW)
	}
	if rows[0].Percent < 70 {
		t.Errorf("GPUs %v %% should dominate", rows[0].Percent)
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.MW
	}
	if math.Abs(sum-28.2) > 0.3 {
		t.Errorf("breakdown sums to %v MW, want ≈28.2", sum)
	}
	if !strings.Contains(tbl.String(), "Total") {
		t.Error("table missing total row")
	}
}

// TestTableIVShape runs a reduced multi-day study and checks the Table IV
// shape: average power in the mid-teens MW, losses ≈6-8 %, carbon
// consistent with Eq. 6.
func TestTableIVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day study")
	}
	tbl, sum, err := TableIV(DailyConfig{Days: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if sum.PowerMW.Mean < 9 || sum.PowerMW.Mean > 24 {
		t.Errorf("avg power = %v MW, want Table IV's 10-23 band", sum.PowerMW.Mean)
	}
	if sum.LossPct.Mean < 5.5 || sum.LossPct.Mean > 8.5 {
		t.Errorf("loss %% = %v, want ≈6.7", sum.LossPct.Mean)
	}
	// Energy ≈ power × 24 h.
	if math.Abs(sum.EnergyMWh.Mean-sum.PowerMW.Mean*24)/sum.EnergyMWh.Mean > 0.01 {
		t.Errorf("energy %v MWh vs power %v MW", sum.EnergyMWh.Mean, sum.PowerMW.Mean)
	}
	// Carbon per Eq. 6 at η≈0.93: ≈0.414 t/MWh.
	ratio := sum.CO2Tons.Mean / sum.EnergyMWh.Mean
	if ratio < 0.39 || ratio < 0 || ratio > 0.43 {
		t.Errorf("CO2/energy = %v t/MWh, want ≈0.414", ratio)
	}
	// Daily variation present (min < max across days).
	if !(sum.PowerMW.Min < sum.PowerMW.Max) || sum.Jobs.Std == 0 {
		t.Error("daily statistics show no spread")
	}
	if !strings.Contains(tbl.String(), "Avg Power (MW)") {
		t.Error("table text malformed")
	}
}

func TestRunDaysValidation(t *testing.T) {
	if _, err := RunDays(DailyConfig{Days: 0}); err == nil {
		t.Error("zero days should fail")
	}
}

// TestFig7Shape: the validation errors should be small relative to the
// signal (the paper's "within reasonable bounds"; PUE within 1.4 %).
func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("day-long cooling validation")
	}
	tbl, data, err := Fig7(Fig7Config{HorizonSec: 6 * 3600, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Channels) != 4 {
		t.Fatalf("%d channels", len(data.Channels))
	}
	for _, ch := range data.Channels {
		if len(ch.Predicted) != len(data.TimeSec) {
			t.Fatalf("%s: series length mismatch", ch.Name)
		}
	}
	// PUE within a few percent (paper: 1.4 %).
	pue := data.Channels[3]
	if pue.MAPE > 4 {
		t.Errorf("PUE MAPE = %v %%, want < 4", pue.MAPE)
	}
	// Flow prediction within ~15 % of the perturbed "physical" plant.
	flow := data.Channels[0]
	if flow.MAPE > 15 {
		t.Errorf("flow MAPE = %v %%", flow.MAPE)
	}
	// Return temperature within ~2 °C MAE.
	temp := data.Channels[1]
	if temp.MAE > 2.5 {
		t.Errorf("return temp MAE = %v °C", temp.MAE)
	}
	if !strings.Contains(tbl.String(), "PUE") {
		t.Error("table malformed")
	}
}

// TestFig8Shape: the benchmark square wave and thermal transient.
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("cooled benchmark run")
	}
	tbl, data, err := Fig8(1800)
	if err != nil {
		t.Fatal(err)
	}
	// Idle ≈7.2 MW; HPL core ≈22.3 MW; OpenMxP slightly above HPL
	// (hotter GPUs).
	if math.Abs(data.IdlePowerMW-7.24) > 0.3 {
		t.Errorf("idle = %v MW", data.IdlePowerMW)
	}
	if math.Abs(data.HPLPowerMW-22.3) > 0.8 {
		t.Errorf("HPL core = %v MW", data.HPLPowerMW)
	}
	if data.OpenMxPPowerMW <= data.HPLPowerMW {
		t.Errorf("OpenMxP %v MW should exceed HPL %v MW", data.OpenMxPPowerMW, data.HPLPowerMW)
	}
	// The cooling loop feels the surge: return temperature rises by
	// multiple degrees and lags the power step.
	if data.TempRiseHPLC < 2 {
		t.Errorf("temp rise = %v °C, want > 2", data.TempRiseHPLC)
	}
	if !strings.Contains(tbl.String(), "HPL core") {
		t.Error("table malformed")
	}
}

// TestFig9Shape: the day contains the right workload mix and the
// prediction tracks the measured channel.
func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("24 h replay")
	}
	tbl, data, err := Fig9(Fig9Config{Seed: 7, HorizonSec: 6 * 3600})
	if err != nil {
		t.Fatal(err)
	}
	if data.TotalJobs < 100 {
		t.Errorf("only %d jobs in the window", data.TotalJobs)
	}
	frac := float64(data.SingleNode) / float64(data.TotalJobs)
	if frac < 0.2 || frac > 0.5 {
		t.Errorf("single-node fraction = %v, want ≈0.32", frac)
	}
	if data.HPLJobs != 4 {
		t.Errorf("HPL jobs = %d, want 4", data.HPLJobs)
	}
	// Prediction vs measured: only sensor noise separates them.
	if data.MAPEPercent > 2.5 {
		t.Errorf("MAPE = %v %%", data.MAPEPercent)
	}
	// η_cooling ≈ 0.93 and η_system ≈ 0.92-0.95 through the day.
	if m := stats.Mean(data.EtaCooling); m < 0.9 || m > 0.95 {
		t.Errorf("eta_cooling = %v", m)
	}
	if data.AvgEtaSystem < 0.92 || data.AvgEtaSystem > 0.95 {
		t.Errorf("eta_system = %v", data.AvgEtaSystem)
	}
	if !strings.Contains(tbl.String(), "HPL") {
		t.Error("table malformed")
	}
}

// TestWhatIfShapes: DC380 beats smart rectifiers by roughly the paper's
// factor (542k vs 120k ≈ 4.5×), efficiencies land near 97.3 % and the
// carbon drop is meaningful.
func TestWhatIfShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day what-if study")
	}
	_, smart, err := SmartRectifier(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	_, dc, err := DC380(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Both variants must save power.
	if smart.SavingMW <= 0 {
		t.Errorf("smart rectifier saving = %v MW", smart.SavingMW)
	}
	if dc.SavingMW <= smart.SavingMW {
		t.Errorf("DC380 (%v MW) should out-save smart staging (%v MW)", dc.SavingMW, smart.SavingMW)
	}
	// DC380 efficiency ≈97.3 %.
	if math.Abs(dc.VariantEta-0.973) > 0.004 {
		t.Errorf("DC380 η = %v", dc.VariantEta)
	}
	// Smart staging is a modest gain (paper: ≈0.1 %); ours is the same
	// order of magnitude.
	if smart.EtaGain <= 0 || smart.EtaGain > 0.02 {
		t.Errorf("smart η gain = %v", smart.EtaGain)
	}
	// Carbon: DC380 cuts ≈8 % (Eq. 6's 1/η amplification).
	if dc.CarbonReductionPct < 5 || dc.CarbonReductionPct > 11 {
		t.Errorf("DC380 carbon cut = %v %%, want ≈8.2", dc.CarbonReductionPct)
	}
	if dc.YearlySavingUSD <= 0 {
		t.Error("DC380 yearly saving should be positive")
	}
	// Who-wins factor: DC380 saving several times the smart-rectifier
	// saving (paper: ≈4.5×).
	if ratio := dc.YearlySavingUSD / math.Max(smart.YearlySavingUSD, 1); ratio < 2 {
		t.Errorf("DC380/smart saving ratio = %v, want ≳2", ratio)
	}
}

func TestReplayDatasetErrors(t *testing.T) {
	// A dataset without a series cannot be replayed against.
	if _, _, err := ReplayDataset(&telemetry.Dataset{}, 15); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestReplayDatasetRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("replay run")
	}
	// Build a short day, export, replay: MAPE should be tiny (no noise).
	gen := job.DefaultGeneratorConfig()
	gen.Seed = 3
	gen.ArrivalMeanSec = 200
	jobs := job.NewGenerator(gen).GenerateHorizon(1800)
	rcfg := raps.DefaultConfig()
	rcfg.TickSec = 15
	sim, err := raps.New(rcfg, power.NewFrontierModel(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(3600); err != nil {
		t.Fatal(err)
	}
	ds := sim.ExportTelemetry("short-day")
	rep, mape, err := ReplayDataset(ds, 15)
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsCompleted == 0 {
		t.Error("replay completed no jobs")
	}
	if mape > 1.5 {
		t.Errorf("noise-free replay MAPE = %v %%", mape)
	}
}

func TestAblationControlDt(t *testing.T) {
	if testing.Short() {
		t.Skip("plant sweep")
	}
	tbl, err := AblationControlDt([]float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if !strings.Contains(tbl.String(), "HTW return") {
		t.Error("table malformed")
	}
}

func TestAblationTickFaithful(t *testing.T) {
	if testing.Short() {
		t.Skip("two-tick comparison")
	}
	_, divergence, err := AblationTick(3600, 13)
	if err != nil {
		t.Fatal(err)
	}
	// The 15 s fast path must stay within 1 % of the 1 s reference.
	if divergence > 1.0 {
		t.Errorf("tick divergence = %v %%", divergence)
	}
}

func TestAblationCoolingCost(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled run")
	}
	_, ratio, err := AblationCoolingCost(3600, 13)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's ratio is ≈3× (9 min vs 3 min); ours must at least show
	// that coupling costs real time.
	if ratio < 1.5 {
		t.Errorf("cooling coupling ratio = %v, expected a clear cost", ratio)
	}
}

func TestAblationSchedulers(t *testing.T) {
	if testing.Short() {
		t.Skip("three policy runs")
	}
	_, reports, err := AblationSchedulers(2*3600, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("policies = %d", len(reports))
	}
	// Backfill must not complete fewer jobs than plain FCFS on an
	// oversubscribed trace.
	if reports["easy"].JobsCompleted < reports["fcfs"].JobsCompleted {
		t.Errorf("easy %d < fcfs %d completed jobs",
			reports["easy"].JobsCompleted, reports["fcfs"].JobsCompleted)
	}
	for p, r := range reports {
		if r.AvgUtilization <= 0 {
			t.Errorf("%s: zero utilization", p)
		}
	}
}

func TestVirtualExpansionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point plant study")
	}
	tbl, res, err := VirtualExpansion(8, []float64{0, 4, 10}, 33.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Monotone stress: more secondary load warms the shared HTW loop and
	// degrades PUE headroom of the existing system.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].HTWSupplyC < res.Points[i-1].HTWSupplyC-0.05 {
			t.Errorf("HTW supply should not fall as secondary load grows: %+v", res.Points)
		}
	}
	// Zero secondary load must be supportable.
	if !res.Points[0].WithinSpec {
		t.Error("zero secondary load must be within spec")
	}
	if !strings.Contains(tbl.String(), "max supportable") {
		t.Error("table malformed")
	}
}

func TestWeatherCorrelationStrong(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day cooled run")
	}
	tbl, rGPU, err := WeatherCorrelation(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Under constant load, outdoor wet bulb should strongly drive the
	// loop and device temperatures (the use case's hypothesis).
	if rGPU < 0.6 {
		t.Errorf("wet-bulb/GPU-temp correlation = %v, want strong positive", rGPU)
	}
	if !strings.Contains(tbl.String(), "Pearson") {
		t.Error("table malformed")
	}
}
