package exp

import (
	"fmt"
	"time"

	"exadigit/internal/cooling"
	"exadigit/internal/job"
	"exadigit/internal/power"
	"exadigit/internal/raps"
	"exadigit/internal/stats"
	"exadigit/internal/thermal"
	"exadigit/internal/weather"
)

// ExpansionResult reports the virtual-prototyping study of §III-A's
// second use case: "virtually extending the cooling system to support a
// secondary HPC system in the future, and evaluating its impact on
// cooling performance of the current system."
type ExpansionResult struct {
	SecondaryCDUs int
	// Loads evaluated (secondary system heat, MW) and the resulting
	// operating points.
	Points []ExpansionPoint
	// MaxSupportableMW is the largest evaluated secondary load that kept
	// the primary system's secondary-supply temperature within spec.
	MaxSupportableMW float64
}

// ExpansionPoint is one evaluated secondary-system load.
type ExpansionPoint struct {
	SecondaryMW float64
	HTWSupplyC  float64
	SecSupplyC  float64 // hottest CDU supply of the *existing* system
	PUE         float64
	CellsStaged int
	WithinSpec  bool
}

// VirtualExpansion attaches a secondary system (extra CDU loops sharing
// Frontier's Central Energy Plant — same pumps, EHXs, and towers) and
// sweeps its heat load while Frontier runs at its typical 16 MW. The
// study answers the stakeholder question directly: how much future load
// can the existing CEP absorb before the current machine's cooling spec
// breaks?
func VirtualExpansion(secondaryCDUs int, secondaryLoadsMW []float64, maxSecSupplyC float64) (*Table, *ExpansionResult, error) {
	if secondaryCDUs <= 0 {
		secondaryCDUs = 8
	}
	if len(secondaryLoadsMW) == 0 {
		secondaryLoadsMW = []float64{0, 2, 4, 6, 8}
	}
	if maxSecSupplyC <= 0 {
		maxSecSupplyC = 33.0
	}
	// Same CEP, more CDU branches: only the loop count grows.
	cfg := cooling.Frontier()
	base := cfg.NumCDUs
	cfg.NumCDUs = base + secondaryCDUs

	res := &ExpansionResult{SecondaryCDUs: secondaryCDUs}
	for _, sec := range secondaryLoadsMW {
		plant, err := cooling.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		heat := make([]float64, cfg.NumCDUs)
		for i := 0; i < base; i++ {
			heat[i] = 16e6 / float64(base)
		}
		for i := base; i < cfg.NumCDUs; i++ {
			heat[i] = sec * 1e6 / float64(secondaryCDUs)
		}
		in := cooling.Inputs{
			CDUHeatW: heat, WetBulbC: 20,
			ITPowerW: (16 + sec) * 1e6 / 0.945,
		}
		if err := plant.SettleToSteadyState(in, 3*3600); err != nil {
			return nil, nil, err
		}
		o := plant.Snapshot()
		pt := ExpansionPoint{SecondaryMW: sec, HTWSupplyC: o.FacilitySupplyC, PUE: o.PUE,
			CellsStaged: o.NumCellsStaged}
		for i := 0; i < base; i++ {
			if o.CDUs[i].SecSupplyTempC > pt.SecSupplyC {
				pt.SecSupplyC = o.CDUs[i].SecSupplyTempC
			}
		}
		pt.WithinSpec = pt.SecSupplyC <= maxSecSupplyC
		if pt.WithinSpec && sec > res.MaxSupportableMW {
			res.MaxSupportableMW = sec
		}
		res.Points = append(res.Points, pt)
	}

	t := &Table{
		Title: fmt.Sprintf(
			"Virtual prototyping — secondary system on Frontier's CEP (%d extra CDUs, §III-A)",
			secondaryCDUs),
		Columns: []string{"Secondary load (MW)", "HTW supply (degC)", "Frontier sec supply (degC)", "PUE", "Cells", "Within spec"},
		Notes: []string{
			fmt.Sprintf("max supportable secondary load at ≤%.1f degC supply: %.0f MW",
				maxSecSupplyC, res.MaxSupportableMW),
		},
	}
	for _, pt := range res.Points {
		t.AddRow(f1(pt.SecondaryMW), f2(pt.HTWSupplyC), f2(pt.SecSupplyC),
			f3(pt.PUE), fmt.Sprint(pt.CellsStaged), fmt.Sprint(pt.WithinSpec))
	}
	return t, res, nil
}

// WeatherCorrelation reruns §III-A's weather use case ("understanding
// how weather correlates to GPU temperatures on the system"): a multi-day
// constant workload under the seasonal weather generator, correlating the
// wet bulb against the cooling loop and estimated GPU temperatures.
func WeatherCorrelation(days int, seed int64) (*Table, float64, error) {
	if days <= 0 {
		days = 7
	}
	horizon := float64(days) * 86400

	// Heavy steady load so the CDU valves run near saturation and the
	// blade coolant genuinely feels the weather. The weather is
	// noise-free (pure seasonal + diurnal), making the provider a pure
	// function of time that can be re-evaluated for the correlation.
	j := job.New(1, "steady", 9000, horizon+1, 0)
	j.CPUTrace = job.FlatTrace(0.6, 3600)
	j.GPUTrace = job.FlatTrace(0.92, 3600)
	wcfg := weather.DefaultConfig()
	wcfg.Seed = seed
	wcfg.NoiseStdC = 0
	start := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	wb := func(t float64) float64 {
		return weather.NewGenerator(wcfg).At(start.Add(time.Duration(t*float64(time.Second))), 0)
	}

	rcfg := raps.DefaultConfig()
	rcfg.TickSec = 15
	rcfg.EnableCooling = true
	rcfg.WetBulbC = wb
	sim, err := raps.New(rcfg, power.NewFrontierModel(), []*job.Job{j})
	if err != nil {
		return nil, 0, err
	}
	if _, err := sim.Run(horizon); err != nil {
		return nil, 0, err
	}

	// Correlate hourly samples: wet bulb vs the primary supply (the CEP
	// channel weather drives directly) and vs the estimated GPU
	// temperature behind a cold plate fed by the hottest CDU's secondary
	// supply (which floats above setpoint when the valves saturate).
	plate := thermal.ColdPlate{RConduction: 0.010, RConvNom: 0.012, QNominal: 1.2e-5}
	gpuPower := 0.92*560 + 0.08*88
	var wbs, sups, gpus []float64
	for _, smp := range sim.History() {
		if int(smp.TimeSec)%3600 != 0 {
			continue
		}
		wbs = append(wbs, wb(smp.TimeSec))
		sups = append(sups, smp.HTWSupplyC)
		gpus = append(gpus, plate.DeviceTemp(gpuPower, smp.SecSupplyMaxC, 1.2e-5))
	}
	rSup, err := stats.Pearson(wbs, sups)
	if err != nil {
		return nil, 0, err
	}
	rGPU, err := stats.Pearson(wbs, gpus)
	if err != nil {
		return nil, 0, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Weather correlation over %d days (§III-A use case)", days),
		Columns: []string{"Pair", "Pearson r"},
	}
	t.AddRow("wet bulb vs HTW supply temp", f3(rSup))
	t.AddRow("wet bulb vs estimated GPU temp", f3(rGPU))
	return t, rGPU, nil
}
