package exp

import (
	"fmt"

	"exadigit/internal/job"
	"exadigit/internal/power"
	"exadigit/internal/raps"
	"exadigit/internal/stats"
	"exadigit/internal/telemetry"
)

// Fig9Config parameterizes the 24-hour replay validation.
type Fig9Config struct {
	Seed int64
	// HorizonSec is the replay window (24 h in the paper).
	HorizonSec float64
	// SensorNoiseRel is the meter noise applied to the synthetic
	// "measured" power channel (default 1 %).
	SensorNoiseRel float64
}

// Fig9Data carries the replayed day's series and comparison metrics.
type Fig9Data struct {
	TimeSec      []float64
	PredictedMW  []float64
	MeasuredMW   []float64
	EtaSystem    []float64
	EtaCooling   []float64
	Utilization  []float64
	TotalJobs    int
	SingleNode   int
	HPLJobs      int
	MAPEPercent  float64
	AvgPowerMW   float64
	MaxPowerMW   float64
	AvgEtaSystem float64
}

// Fig9 reruns the §IV-3 24-hour telemetry-replay validation: a day with
// ≈1238 jobs (≈400 single-node) including four back-to-back 9216-node HPL
// runs, replayed through RAPS; predicted power is compared against the
// noisy "measured" channel, alongside η_system, η_cooling, and
// utilization — the four series of Fig. 9.
func Fig9(cfg Fig9Config) (*Table, *Fig9Data, error) {
	if cfg.HorizonSec <= 0 {
		cfg.HorizonSec = 24 * 3600
	}
	if cfg.SensorNoiseRel == 0 {
		cfg.SensorNoiseRel = 0.01
	}

	// Build the day: Poisson background tuned for ≈1238 jobs/day with
	// the paper's single-node share, plus four HPL runs back-to-back.
	gen := job.DefaultGeneratorConfig()
	gen.Seed = cfg.Seed + 10
	gen.ArrivalMeanSec = cfg.HorizonSec / 1234
	gen.NodesMean = 180
	gen.NodesStd = 400
	gen.WallMeanSec = 39 * 60
	gen.WallStdSec = 14 * 60
	jobs := job.NewGenerator(gen).GenerateHorizon(cfg.HorizonSec)
	// Four HPL runs submitted together: FCFS drains the machine for the
	// first and then runs them back-to-back (consecutive IDs break the
	// submit-time tie), as the physical day did.
	hplWall := 0.045 * cfg.HorizonSec
	for i := 0; i < 4; i++ {
		jobs = append(jobs, job.NewHPL(100000+i, 0.3*cfg.HorizonSec, hplWall))
	}

	rcfg := raps.DefaultConfig()
	rcfg.TickSec = 15
	sim, err := raps.New(rcfg, power.NewFrontierModel(), jobs)
	if err != nil {
		return nil, nil, err
	}
	rep, err := sim.Run(cfg.HorizonSec)
	if err != nil {
		return nil, nil, err
	}

	// The "measured" channel: exported telemetry with sensor noise.
	ds := sim.ExportTelemetry("fig9-day")
	ds.AddSensorNoise(cfg.SensorNoiseRel, cfg.Seed+11)

	data := &Fig9Data{
		TotalJobs:    rep.JobsCompleted,
		AvgPowerMW:   rep.AvgPowerMW,
		MaxPowerMW:   rep.MaxPowerMW,
		AvgEtaSystem: rep.EtaSystem,
	}
	for _, j := range sim.History() {
		data.TimeSec = append(data.TimeSec, j.TimeSec)
		data.PredictedMW = append(data.PredictedMW, j.PowerW/1e6)
		data.EtaSystem = append(data.EtaSystem, j.EtaSystem)
		data.EtaCooling = append(data.EtaCooling, j.EtaCooling)
		data.Utilization = append(data.Utilization, j.Utilization)
	}
	for _, p := range ds.Series {
		data.MeasuredMW = append(data.MeasuredMW, p.MeasuredPowerW/1e6)
	}
	for _, jr := range ds.Jobs {
		if jr.NodeCount == 1 {
			data.SingleNode++
		}
		if jr.NodeCount == 9216 {
			data.HPLJobs++
		}
	}
	if data.MAPEPercent, err = stats.MAPE(data.PredictedMW, data.MeasuredMW); err != nil {
		return nil, nil, err
	}

	t := &Table{
		Title:   "Fig. 9 — Telemetry replay validation of a 24-hour period",
		Columns: []string{"Quantity", "Value"},
		Notes: []string{
			"paper's day: 1238 jobs, 400 single-node, four 9216-node HPL runs",
		},
	}
	t.AddRow("Jobs completed", fmt.Sprint(data.TotalJobs))
	t.AddRow("Single-node jobs", fmt.Sprint(data.SingleNode))
	t.AddRow("9216-node HPL jobs", fmt.Sprint(data.HPLJobs))
	t.AddRow("Avg power (MW)", f2(data.AvgPowerMW))
	t.AddRow("Max power (MW)", f2(data.MaxPowerMW))
	t.AddRow("Avg eta_system", f3(data.AvgEtaSystem))
	t.AddRow("Avg eta_cooling", f3(stats.Mean(data.EtaCooling)))
	t.AddRow("Avg utilization", f3(stats.Mean(data.Utilization)))
	t.AddRow("Pred vs measured MAPE (%)", f2(data.MAPEPercent))
	return t, data, nil
}

// ReplayDataset replays a stored telemetry dataset through RAPS and
// compares against its measured power channel — the general §IV "replay
// system telemetry at multiple levels" verb.
func ReplayDataset(ds *telemetry.Dataset, tickSec float64) (*raps.Report, float64, error) {
	if tickSec <= 0 {
		tickSec = 15
	}
	model := power.NewFrontierModel()
	jobs := raps.JobsFromDataset(ds, model.Spec)
	rcfg := raps.DefaultConfig()
	rcfg.TickSec = tickSec
	sim, err := raps.New(rcfg, model, jobs)
	if err != nil {
		return nil, 0, err
	}
	horizon := 0.0
	if n := len(ds.Series); n > 0 {
		horizon = ds.Series[n-1].TimeSec
	}
	if horizon <= 0 {
		return nil, 0, fmt.Errorf("exp: dataset has no series to replay against")
	}
	rep, err := sim.Run(horizon)
	if err != nil {
		return nil, 0, err
	}
	pred := make([]float64, 0, len(sim.History()))
	meas := make([]float64, 0, len(ds.Series))
	n := len(sim.History())
	if len(ds.Series) < n {
		n = len(ds.Series)
	}
	for i := 0; i < n; i++ {
		pred = append(pred, sim.History()[i].PowerW)
		meas = append(meas, ds.Series[i].MeasuredPowerW)
	}
	mape, err := stats.MAPE(pred, meas)
	if err != nil {
		return nil, 0, err
	}
	return rep, mape, nil
}
