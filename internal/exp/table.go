// Package exp regenerates every table and figure of the paper's
// evaluation (§IV): the Table III power verification, the Table IV
// 183-day replay statistics, the Fig. 4 power breakdown, the Fig. 7
// cooling-model validation, the Fig. 8 synthetic-benchmark transient, the
// Fig. 9 24-hour replay, and the two §IV-3 what-if studies (smart
// load-sharing rectifiers and 380 V DC distribution). Each experiment
// returns a Table that prints like the paper's artifact plus the raw
// series for further analysis; cmd/experiments drives them all and
// bench_test.go wraps each in a benchmark.
package exp

import (
	"fmt"
	"strings"
)

// Table is a printable experiment artifact.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", max(total-2, 4)))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func d0(v float64) string { return fmt.Sprintf("%.0f", v) }
