package exp

import (
	"fmt"

	"exadigit/internal/cooling"
	"exadigit/internal/core"
	"exadigit/internal/fmu"
	"exadigit/internal/power"
)

// TableI reproduces the paper's component overview of Frontier.
func TableI() *Table {
	s := power.FrontierComponents()
	topo := power.FrontierTopology()
	t := &Table{
		Title:   "Table I — Component overview of the Frontier supercomputer",
		Columns: []string{"Component", "Value"},
	}
	t.AddRow("Number of CDUs", fmt.Sprint(topo.NumCDUs))
	t.AddRow("Racks per CDU", fmt.Sprint(topo.RacksPerCDU))
	t.AddRow("Chassis per Rack", fmt.Sprint(topo.ChassisPerRack))
	t.AddRow("Rectifiers per Rack", fmt.Sprint(topo.ChassisPerRack*4))
	t.AddRow("Blades per Rack", fmt.Sprint(topo.NodesPerRack/2))
	t.AddRow("Nodes per Rack", fmt.Sprint(topo.NodesPerRack))
	t.AddRow("Switches per Rack", fmt.Sprint(topo.SwitchesPerRack))
	t.AddRow("Nodes Total", fmt.Sprint(topo.NodesTotal))
	t.AddRow("GPU (Idle / Max) W", fmt.Sprintf("%.0f / %.0f", s.GPUIdle, s.GPUMax))
	t.AddRow("CPU (Idle / Max) W", fmt.Sprintf("%.0f / %.0f", s.CPUIdle, s.CPUMax))
	t.AddRow("RAM (Avg) W", d0(s.RAM))
	t.AddRow("NVMe (Avg) W", d0(s.NVMe*float64(s.NVMePerNode)))
	t.AddRow("NIC (Avg) W", d0(s.NIC*float64(s.NICsPerNode)))
	t.AddRow("Switch (Avg) W", d0(s.Switch))
	t.AddRow("CDU (Avg) W", d0(s.CDUPump))
	return t
}

// TableIIIRow is one verification point.
type TableIIIRow struct {
	Name        string
	Nodes       int
	TelemetryMW float64 // the paper's telemetry reference
	RAPSMW      float64 // our model's prediction
	PaperRAPSMW float64 // the paper's RAPS prediction
	ErrPct      float64 // our prediction vs the paper's telemetry
}

// TableIII reruns the RAPS power verification tests: idle, HPL core
// phase, and peak (§IV-2, Table III).
func TableIII() (*Table, []TableIIIRow, error) {
	tw, err := core.NewFrontier()
	if err != nil {
		return nil, nil, err
	}
	cases := []struct {
		name      string
		workload  core.WorkloadKind
		nodes     int
		telemetry float64
		paperRAPS float64
		measure   func(r *core.Result) float64
	}{
		{"Idle power", core.WorkloadIdle, 9472, 7.4, 7.24,
			func(r *core.Result) float64 { return r.Report.AvgPowerMW }},
		{"HPL (core)", core.WorkloadHPL, 9216, 21.3, 22.3,
			func(r *core.Result) float64 {
				// Sample mid-run: the HPL core phase.
				for _, smp := range r.History {
					if smp.TimeSec >= 1800 {
						return smp.PowerW / 1e6
					}
				}
				return 0
			}},
		{"Peak power", core.WorkloadPeak, 9472, 27.4, 28.2,
			func(r *core.Result) float64 { return r.Report.MaxPowerMW }},
	}
	t := &Table{
		Title:   "Table III — RAPS power verification tests",
		Columns: []string{"Test", "Nodes", "Telemetry (MW)", "RAPS (MW)", "Paper RAPS (MW)", "% Error vs telemetry"},
		Notes: []string{
			"Telemetry column is the paper's published reference (not re-measured here).",
		},
	}
	var rows []TableIIIRow
	for _, c := range cases {
		res, err := tw.Run(core.Scenario{
			Workload: c.workload, HorizonSec: 3600, TickSec: 15, BenchmarkWallSec: 7200,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", c.name, err)
		}
		got := c.measure(res)
		row := TableIIIRow{
			Name: c.name, Nodes: c.nodes, TelemetryMW: c.telemetry,
			RAPSMW: got, PaperRAPSMW: c.paperRAPS,
			ErrPct: 100 * abs(got-c.telemetry) / c.telemetry,
		}
		rows = append(rows, row)
		t.AddRow(c.name, fmt.Sprint(c.nodes), f1(c.telemetry), f2(got), f2(c.paperRAPS), f1(row.ErrPct)+"%")
	}
	return t, rows, nil
}

// Fig4Row is one contributor of the peak-power breakdown.
type Fig4Row struct {
	Component string
	MW        float64
	Percent   float64
}

// Fig4 reproduces the peak power utilization breakdown.
func Fig4() (*Table, []Fig4Row) {
	m := power.NewFrontierModel()
	var sp power.SystemPower
	m.ComputeUniform(1, 1, m.Topo.NodesTotal, &sp)
	b := sp.Breakdown
	entries := []struct {
		name string
		w    float64
	}{
		{"GPUs", b.GPU},
		{"CPUs", b.CPU},
		{"Rectifier losses", b.RectLoss},
		{"SIVOC losses", b.SivocLoss},
		{"NICs", b.NIC},
		{"RAM", b.RAM},
		{"Switches", b.Switches},
		{"NVMe", b.NVMe},
		{"CDU pumps", b.CDUPumps},
	}
	t := &Table{
		Title:   "Fig. 4 — Frontier power utilization breakdown at peak (9472 nodes)",
		Columns: []string{"Component", "MW", "% of total"},
	}
	var rows []Fig4Row
	for _, e := range entries {
		row := Fig4Row{Component: e.name, MW: e.w / 1e6, Percent: 100 * e.w / sp.TotalW}
		rows = append(rows, row)
		t.AddRow(e.name, f2(row.MW), f1(row.Percent)+"%")
	}
	t.AddRow("Total", f2(sp.TotalW/1e6), "100.0%")
	return t, rows
}

// TableII verifies the telemetry/FMU interface contract: the cooling FMU
// must expose the §III-C4 variable set (25 heat inputs + wet bulb + IT
// power, 317 outputs).
func TableII() (*Table, error) {
	inst, err := fmu.Instantiate(cooling.Frontier())
	if err != nil {
		return nil, err
	}
	d := inst.Description()
	inputs, outputs := 0, 0
	for _, v := range d.Variables {
		switch v.Causality {
		case fmu.Input:
			inputs++
		case fmu.Output:
			outputs++
		}
	}
	t := &Table{
		Title:   "Table II — Model interface contract (telemetry schemas)",
		Columns: []string{"Interface", "Count"},
	}
	t.AddRow("Cooling FMU inputs (CDU heat + wet bulb + IT power)", fmt.Sprint(inputs))
	t.AddRow("Cooling FMU outputs (§III-C4)", fmt.Sprint(outputs))
	t.AddRow("Job record fields (Table II RAPS inputs)", "8")
	if outputs != cooling.NumOutputs {
		return t, fmt.Errorf("exp: FMU exposes %d outputs, want %d", outputs, cooling.NumOutputs)
	}
	return t, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
