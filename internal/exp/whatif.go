package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/power"
	"exadigit/internal/service"
	"exadigit/internal/units"
)

// WhatIfResult compares a conversion-architecture variant against the
// AC baseline over the same multi-day workload.
type WhatIfResult struct {
	Variant            power.Mode
	Days               int
	BaselinePowerMW    float64
	VariantPowerMW     float64
	BaselineEta        float64
	VariantEta         float64
	EtaGain            float64 // absolute efficiency gain
	SavingMW           float64
	YearlySavingUSD    float64
	BaselineCO2Tons    float64 // per study window
	VariantCO2Tons     float64
	CarbonReductionPct float64
}

// The what-if studies submit through a process-shared sweep service
// rather than ad-hoc loops: both §IV-3 studies replay the identical
// baseline days, so the second study's baseline half is served straight
// from the content-addressed result cache instead of being re-simulated.
var (
	sweeperOnce sync.Once
	sweeper     *service.Service
)

func whatIfService() *service.Service {
	sweeperOnce.Do(func() {
		// CacheCap bounds how many day results stay pinned between
		// studies (both halves of a 183-day study fit); MaxSweeps keeps
		// the registry from pinning summarized sweeps.
		sweeper = service.New(service.Options{
			Workers:   runtime.NumCPU(),
			CacheCap:  512,
			MaxSweeps: 4,
		})
	})
	return sweeper
}

// RunWhatIf replays the same synthetic workload days under the baseline
// and the variant conversion architecture (§IV-3's two studies) as one
// sweep through the shared service: baseline days and variant days ride
// the same worker pool and compiled spec, and repeated studies hit the
// result cache for any half they share.
func RunWhatIf(variant power.Mode, days int, seed int64, usdPerMWh float64) (*WhatIfResult, error) {
	if usdPerMWh <= 0 {
		usdPerMWh = 91.5
	}
	baseScs, err := dayScenarios(DailyConfig{Days: days, Seed: seed, Mode: power.ACBaseline})
	if err != nil {
		return nil, err
	}
	varScs, err := dayScenarios(DailyConfig{Days: days, Seed: seed, Mode: variant})
	if err != nil {
		return nil, err
	}
	sw, err := whatIfService().Submit(config.Frontier(),
		append(append([]core.Scenario{}, baseScs...), varScs...),
		service.SweepOptions{Name: fmt.Sprintf("whatif-%s-%dd", variant, days)})
	if err != nil {
		return nil, err
	}
	// The summaries only need the reports; once the sweep is done (Wait
	// below), drop its registry record on every return path so the
	// per-day results are pinned by the (bounded) result cache alone.
	defer func() { _ = whatIfService().Remove(sw.ID()) }()
	if err := sw.Wait(context.Background()); err != nil {
		return nil, err
	}
	for _, st := range sw.Status().Scenarios {
		if st.State == service.StateFailed || st.State == service.StateCancelled {
			return nil, fmt.Errorf("exp: what-if scenario %d (%s): %s %s",
				st.Index, st.Name, st.State, st.Error)
		}
	}
	batch := sw.Results()
	base, err := summarizeBatch(batch[:days])
	if err != nil {
		return nil, err
	}
	varnt, err := summarizeBatch(batch[days:])
	if err != nil {
		return nil, err
	}
	res := &WhatIfResult{
		Variant:         variant,
		Days:            days,
		BaselinePowerMW: base.PowerMW.Mean,
		VariantPowerMW:  varnt.PowerMW.Mean,
		BaselineCO2Tons: base.CO2Tons.Sum,
		VariantCO2Tons:  varnt.CO2Tons.Sum,
	}
	res.BaselineEta = etaFromDays(base)
	res.VariantEta = etaFromDays(varnt)
	res.EtaGain = res.VariantEta - res.BaselineEta
	res.SavingMW = res.BaselinePowerMW - res.VariantPowerMW
	res.YearlySavingUSD = res.SavingMW * units.HoursPerYear * usdPerMWh
	if res.BaselineCO2Tons > 0 {
		res.CarbonReductionPct = 100 * (res.BaselineCO2Tons - res.VariantCO2Tons) / res.BaselineCO2Tons
	}
	return res, nil
}

func etaFromDays(s *DailySummary) float64 {
	var sum float64
	for _, d := range s.Days {
		sum += d.Report.EtaSystem
	}
	if len(s.Days) == 0 {
		return 0
	}
	return sum / float64(len(s.Days))
}

// SmartRectifier reruns §IV-3's first what-if: dynamically staged
// rectifiers (paper: ≈0.1 % efficiency gain, ≈$120k/yr).
func SmartRectifier(days int, seed int64) (*Table, *WhatIfResult, error) {
	res, err := RunWhatIf(power.SmartRectifier, days, seed, 91.5)
	if err != nil {
		return nil, nil, err
	}
	t := whatIfTable("What-if 1 — Smart load-sharing rectifiers", res)
	t.Notes = append(t.Notes, "paper: ≈0.1 % efficiency gain, ≈$120k/yr over 183 replayed days")
	return t, res, nil
}

// DC380 reruns §IV-3's second what-if: direct 380 V DC distribution
// (paper: η 93.3 % → 97.3 %, ≈$542k/yr, −8.2 % carbon).
func DC380(days int, seed int64) (*Table, *WhatIfResult, error) {
	res, err := RunWhatIf(power.DC380, days, seed, 91.5)
	if err != nil {
		return nil, nil, err
	}
	t := whatIfTable("What-if 2 — Direct 380 V DC distribution", res)
	t.Notes = append(t.Notes, "paper: efficiency 93.3 % → 97.3 %, ≈$542k/yr, carbon −8.2 %")
	return t, res, nil
}

func whatIfTable(title string, res *WhatIfResult) *Table {
	t := &Table{
		Title:   fmt.Sprintf("%s (%d replayed days)", title, res.Days),
		Columns: []string{"Quantity", "Baseline", res.Variant.String()},
	}
	t.AddRow("Avg power (MW)", f2(res.BaselinePowerMW), f2(res.VariantPowerMW))
	t.AddRow("eta_system", f3(res.BaselineEta), f3(res.VariantEta))
	t.AddRow("Efficiency gain", "-", f3(res.EtaGain))
	t.AddRow("Avg saving (MW)", "-", f3(res.SavingMW))
	t.AddRow("Yearly saving (USD)", "-", d0(res.YearlySavingUSD))
	t.AddRow("CO2 (tons, window)", f1(res.BaselineCO2Tons), f1(res.VariantCO2Tons))
	t.AddRow("Carbon reduction (%)", "-", f2(res.CarbonReductionPct))
	return t
}
