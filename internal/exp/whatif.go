package exp

import (
	"fmt"

	"exadigit/internal/power"
	"exadigit/internal/units"
)

// WhatIfResult compares a conversion-architecture variant against the
// AC baseline over the same multi-day workload.
type WhatIfResult struct {
	Variant            power.Mode
	Days               int
	BaselinePowerMW    float64
	VariantPowerMW     float64
	BaselineEta        float64
	VariantEta         float64
	EtaGain            float64 // absolute efficiency gain
	SavingMW           float64
	YearlySavingUSD    float64
	BaselineCO2Tons    float64 // per study window
	VariantCO2Tons     float64
	CarbonReductionPct float64
}

// RunWhatIf replays the same synthetic workload days under the baseline
// and the variant conversion architecture (§IV-3's two studies).
func RunWhatIf(variant power.Mode, days int, seed int64, usdPerMWh float64) (*WhatIfResult, error) {
	if usdPerMWh <= 0 {
		usdPerMWh = 91.5
	}
	base, err := RunDays(DailyConfig{Days: days, Seed: seed, Mode: power.ACBaseline})
	if err != nil {
		return nil, err
	}
	varnt, err := RunDays(DailyConfig{Days: days, Seed: seed, Mode: variant})
	if err != nil {
		return nil, err
	}
	res := &WhatIfResult{
		Variant:         variant,
		Days:            days,
		BaselinePowerMW: base.PowerMW.Mean,
		VariantPowerMW:  varnt.PowerMW.Mean,
		BaselineCO2Tons: base.CO2Tons.Sum,
		VariantCO2Tons:  varnt.CO2Tons.Sum,
	}
	res.BaselineEta = etaFromDays(base)
	res.VariantEta = etaFromDays(varnt)
	res.EtaGain = res.VariantEta - res.BaselineEta
	res.SavingMW = res.BaselinePowerMW - res.VariantPowerMW
	res.YearlySavingUSD = res.SavingMW * units.HoursPerYear * usdPerMWh
	if res.BaselineCO2Tons > 0 {
		res.CarbonReductionPct = 100 * (res.BaselineCO2Tons - res.VariantCO2Tons) / res.BaselineCO2Tons
	}
	return res, nil
}

func etaFromDays(s *DailySummary) float64 {
	var sum float64
	for _, d := range s.Days {
		sum += d.Report.EtaSystem
	}
	if len(s.Days) == 0 {
		return 0
	}
	return sum / float64(len(s.Days))
}

// SmartRectifier reruns §IV-3's first what-if: dynamically staged
// rectifiers (paper: ≈0.1 % efficiency gain, ≈$120k/yr).
func SmartRectifier(days int, seed int64) (*Table, *WhatIfResult, error) {
	res, err := RunWhatIf(power.SmartRectifier, days, seed, 91.5)
	if err != nil {
		return nil, nil, err
	}
	t := whatIfTable("What-if 1 — Smart load-sharing rectifiers", res)
	t.Notes = append(t.Notes, "paper: ≈0.1 % efficiency gain, ≈$120k/yr over 183 replayed days")
	return t, res, nil
}

// DC380 reruns §IV-3's second what-if: direct 380 V DC distribution
// (paper: η 93.3 % → 97.3 %, ≈$542k/yr, −8.2 % carbon).
func DC380(days int, seed int64) (*Table, *WhatIfResult, error) {
	res, err := RunWhatIf(power.DC380, days, seed, 91.5)
	if err != nil {
		return nil, nil, err
	}
	t := whatIfTable("What-if 2 — Direct 380 V DC distribution", res)
	t.Notes = append(t.Notes, "paper: efficiency 93.3 % → 97.3 %, ≈$542k/yr, carbon −8.2 %")
	return t, res, nil
}

func whatIfTable(title string, res *WhatIfResult) *Table {
	t := &Table{
		Title:   fmt.Sprintf("%s (%d replayed days)", title, res.Days),
		Columns: []string{"Quantity", "Baseline", res.Variant.String()},
	}
	t.AddRow("Avg power (MW)", f2(res.BaselinePowerMW), f2(res.VariantPowerMW))
	t.AddRow("eta_system", f3(res.BaselineEta), f3(res.VariantEta))
	t.AddRow("Efficiency gain", "-", f3(res.EtaGain))
	t.AddRow("Avg saving (MW)", "-", f3(res.SavingMW))
	t.AddRow("Yearly saving (USD)", "-", d0(res.YearlySavingUSD))
	t.AddRow("CO2 (tons, window)", f1(res.BaselineCO2Tons), f1(res.VariantCO2Tons))
	t.AddRow("Carbon reduction (%)", "-", f2(res.CarbonReductionPct))
	return t
}
