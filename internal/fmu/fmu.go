// Package fmu provides a Functional Mock-up Interface (FMI 2.0
// co-simulation)–style wrapper around the cooling plant, standing in for
// the paper's Dymola-exported FMU consumed through FMPy (§III-C6). The
// same lifecycle applies: instantiate, set inputs by value reference,
// DoStep at the 15 s communication interval, and read the 317 outputs by
// value reference. Keeping this seam means RAPS is coupled to the cooling
// model exactly the way the paper's Python RAPS is — through an FMI-shaped
// boundary — so an actual Modelica FMU could be swapped in behind the
// same interface.
//
// The description of a model (its modelDescription.xml equivalent) is
// compiled once per cooling.Config into a Design and shared read-only by
// every Instance stamped from it, so scenario sweeps pay the 300+-variable
// enumeration once per spec instead of once per scenario.
package fmu

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"exadigit/internal/cooling"
)

// ValueRef identifies a model variable, mirroring FMI value references.
type ValueRef uint32

// Causality mirrors the FMI variable causality attribute.
type Causality int

// Causality values.
const (
	Input Causality = iota
	Output
	Parameter
)

// String names the causality.
func (c Causality) String() string {
	switch c {
	case Input:
		return "input"
	case Output:
		return "output"
	case Parameter:
		return "parameter"
	}
	return fmt.Sprintf("causality(%d)", int(c))
}

// ScalarVariable describes one model variable, as in an FMI
// modelDescription.xml.
type ScalarVariable struct {
	Name      string
	Ref       ValueRef
	Causality Causality
	Unit      string
}

// ModelDescription lists every variable the model exposes.
type ModelDescription struct {
	ModelName string
	Variables []ScalarVariable

	byName map[string]ValueRef
}

// RefByName resolves a variable name to its value reference.
func (d *ModelDescription) RefByName(name string) (ValueRef, error) {
	if ref, ok := d.byName[name]; ok {
		return ref, nil
	}
	return 0, fmt.Errorf("fmu: unknown variable %q", name)
}

// OutputRefs returns the refs of all output variables in declaration
// order.
func (d *ModelDescription) OutputRefs() []ValueRef {
	var refs []ValueRef
	for _, v := range d.Variables {
		if v.Causality == Output {
			refs = append(refs, v.Ref)
		}
	}
	return refs
}

// descriptionBuilds counts Design constructions process-wide. It exists
// so sweep tests can assert the description is compiled once per spec
// and shared, not rebuilt per scenario.
var descriptionBuilds atomic.Uint64

// DescriptionBuilds returns how many model descriptions have been
// compiled since process start (build-sharing instrumentation).
func DescriptionBuilds() uint64 { return descriptionBuilds.Load() }

// Design is the compiled, immutable description of the cooling-model FMU
// for one cooling.Config: the variable list plus the value-reference
// layout (per-CDU heat inputs, wet bulb, IT power, and the 317 outputs in
// declaration order). A Design is safe for concurrent use; Instantiate
// stamps out Instances that share it read-only while owning their own
// mutable plant state.
type Design struct {
	cfg  cooling.Config
	desc *ModelDescription

	heatRefs   []ValueRef
	wetBulbRef ValueRef
	itPowerRef ValueRef

	outRefs  []ValueRef
	outNames []string
	outIndex map[ValueRef]int
}

// NewDesign compiles the model description for cfg.
func NewDesign(cfg cooling.Config) (*Design, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dn := &Design{cfg: cfg}
	d := &ModelDescription{ModelName: "ExaDigiT.CoolingPlant", byName: make(map[string]ValueRef)}
	ref := ValueRef(1)
	add := func(name string, c Causality, unit string) ValueRef {
		d.Variables = append(d.Variables, ScalarVariable{Name: name, Ref: ref, Causality: c, Unit: unit})
		d.byName[name] = ref
		ref++
		return ref - 1
	}
	for i := 1; i <= cfg.NumCDUs; i++ {
		dn.heatRefs = append(dn.heatRefs, add(fmt.Sprintf("cdu[%d].heat_w", i), Input, "W"))
	}
	dn.wetBulbRef = add("wetbulb_temp_c", Input, "degC")
	dn.itPowerRef = add("it_power_w", Input, "W")

	dn.outIndex = make(map[ValueRef]int)
	dn.outNames = cooling.OutputNames(cfg)
	for i, name := range dn.outNames {
		unit := ""
		switch {
		case hasSuffix(name, "_w"):
			unit = "W"
		case hasSuffix(name, "_m3s"):
			unit = "m3/s"
		case hasSuffix(name, "_c"):
			unit = "degC"
		case hasSuffix(name, "_pa"):
			unit = "Pa"
		}
		r := add(name, Output, unit)
		dn.outRefs = append(dn.outRefs, r)
		dn.outIndex[r] = i
	}
	dn.desc = d
	descriptionBuilds.Add(1)
	return dn, nil
}

// Description returns the compiled model description.
func (dn *Design) Description() *ModelDescription { return dn.desc }

// Config returns the plant configuration the design was compiled from.
func (dn *Design) Config() cooling.Config { return dn.cfg }

// OutputNames returns the output channel names in value order — the
// labels a dashboard attaches to GetReal vectors. The slice is shared;
// callers must not mutate it.
func (dn *Design) OutputNames() []string { return dn.outNames }

// Instantiate builds a fresh Instance over a new cooling plant, sharing
// this design's description.
func (dn *Design) Instantiate() (*Instance, error) {
	plant, err := cooling.New(dn.cfg)
	if err != nil {
		return nil, err
	}
	inst := &Instance{
		design: dn,
		plant:  plant,
		state:  Instantiated,
		inputs: make(map[ValueRef]float64),
	}
	inst.stepIn.CDUHeatW = make([]float64, len(dn.heatRefs))
	return inst, nil
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// State tracks the FMI co-simulation lifecycle.
type State int

// Lifecycle states.
const (
	Instantiated State = iota
	Initialized
	Stepping
	Terminated
)

// ErrLifecycle is returned for calls in the wrong lifecycle state.
var ErrLifecycle = errors.New("fmu: invalid lifecycle state")

// Instance is an instantiated cooling-model FMU. The design (variable
// layout) is shared; plant state, input buffer, and outputs are owned.
type Instance struct {
	design *Design
	plant  *cooling.Plant
	state  State
	time   float64

	// input buffer, by value reference
	inputs map[ValueRef]float64

	// stepIn is the reusable cooling.Inputs scratch for DoStep.
	stepIn cooling.Inputs

	// last computed outputs, dense by output index; snap is the reusable
	// decode scratch behind it.
	snap    cooling.Outputs
	lastOut []float64
	haveOut bool
}

// Instantiate builds an FMU instance over a fresh cooling plant,
// compiling a private Design. Sweeps that share a spec should compile one
// Design and call its Instantiate instead.
func Instantiate(cfg cooling.Config) (*Instance, error) {
	dn, err := NewDesign(cfg)
	if err != nil {
		return nil, err
	}
	return dn.Instantiate()
}

// Design returns the shared design the instance was stamped from.
func (m *Instance) Design() *Design { return m.design }

// Description returns the model description.
func (m *Instance) Description() *ModelDescription { return m.design.desc }

// State returns the lifecycle state.
func (m *Instance) State() State { return m.state }

// Time returns the current communication-point time in seconds.
func (m *Instance) Time() float64 { return m.time }

// SetupExperiment transitions to Initialized at the given start time.
func (m *Instance) SetupExperiment(startTime float64) error {
	if m.state != Instantiated {
		return fmt.Errorf("%w: SetupExperiment in %v", ErrLifecycle, m.state)
	}
	m.time = startTime
	m.state = Initialized
	return nil
}

// SetReal assigns input variables by value reference. Only inputs may be
// written.
func (m *Instance) SetReal(refs []ValueRef, values []float64) error {
	if m.state == Terminated {
		return fmt.Errorf("%w: SetReal after Terminate", ErrLifecycle)
	}
	if len(refs) != len(values) {
		return fmt.Errorf("fmu: SetReal got %d refs, %d values", len(refs), len(values))
	}
	for i, r := range refs {
		v := m.varByRef(r)
		if v == nil {
			return fmt.Errorf("fmu: SetReal: unknown ref %d", r)
		}
		if v.Causality != Input {
			return fmt.Errorf("fmu: SetReal: %q is not an input", v.Name)
		}
		m.inputs[r] = values[i]
	}
	return nil
}

// GetReal reads variables by value reference: inputs echo their buffered
// values; outputs return the values from the last DoStep.
func (m *Instance) GetReal(refs []ValueRef, values []float64) error {
	if len(refs) != len(values) {
		return fmt.Errorf("fmu: GetReal got %d refs, %d values", len(refs), len(values))
	}
	for i, r := range refs {
		if idx, ok := m.design.outIndex[r]; ok {
			if !m.haveOut {
				return fmt.Errorf("fmu: GetReal before first DoStep")
			}
			values[i] = m.lastOut[idx]
			continue
		}
		if v := m.varByRef(r); v != nil && v.Causality == Input {
			values[i] = m.inputs[r]
			continue
		}
		return fmt.Errorf("fmu: GetReal: unknown ref %d", r)
	}
	return nil
}

// DoStep advances the model from the current communication point by
// stepSize seconds (the paper uses 15 s). The input and output scratch is
// reused across calls, so the cooled simulation hot loop does not
// allocate here.
func (m *Instance) DoStep(stepSize float64) error {
	switch m.state {
	case Initialized, Stepping:
	default:
		return fmt.Errorf("%w: DoStep in %v", ErrLifecycle, m.state)
	}
	if stepSize <= 0 {
		return fmt.Errorf("fmu: non-positive step %v", stepSize)
	}
	m.stepIn.WetBulbC = m.inputs[m.design.wetBulbRef]
	m.stepIn.ITPowerW = m.inputs[m.design.itPowerRef]
	for i, r := range m.design.heatRefs {
		m.stepIn.CDUHeatW[i] = m.inputs[r]
	}
	if err := m.plant.Step(stepSize, m.stepIn); err != nil {
		return err
	}
	m.plant.SnapshotInto(&m.snap)
	m.lastOut = m.snap.VectorInto(m.lastOut)
	m.haveOut = true
	m.time += stepSize
	m.state = Stepping
	return nil
}

// Terminate ends the co-simulation; further DoStep calls fail.
func (m *Instance) Terminate() {
	m.state = Terminated
}

// Reset re-instantiates the underlying plant, returning to Instantiated.
func (m *Instance) Reset() error {
	plant, err := cooling.New(m.design.cfg)
	if err != nil {
		return err
	}
	m.plant = plant
	m.state = Instantiated
	m.time = 0
	m.haveOut = false
	for r := range m.inputs {
		delete(m.inputs, r)
	}
	return nil
}

// Plant exposes the wrapped plant for white-box assertions in tests and
// experiments (not part of the FMI surface).
func (m *Instance) Plant() *cooling.Plant { return m.plant }

// SolverStats exposes the wrapped plant's thermal-solver accounting —
// adaptive step counts, control updates simulated, quiescent time —
// through the FMI-shaped boundary, so co-simulation drivers can report
// solver effectiveness without reaching into the plant.
func (m *Instance) SolverStats() cooling.SolverStats { return m.plant.SolverStats() }

func (m *Instance) varByRef(r ValueRef) *ScalarVariable {
	vars := m.design.desc.Variables
	idx := sort.Search(len(vars), func(i int) bool {
		return vars[i].Ref >= r
	})
	if idx < len(vars) && vars[idx].Ref == r {
		return &vars[idx]
	}
	return nil
}
