package fmu

import (
	"math"
	"testing"

	"exadigit/internal/cooling"
)

func newInstance(t *testing.T) *Instance {
	t.Helper()
	inst, err := Instantiate(cooling.Frontier())
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestModelDescriptionShape(t *testing.T) {
	inst := newInstance(t)
	d := inst.Description()
	if d.ModelName != "ExaDigiT.CoolingPlant" {
		t.Errorf("model name = %q", d.ModelName)
	}
	// 25 heat inputs + wet bulb + IT power + 317 outputs.
	wantVars := 25 + 2 + cooling.NumOutputs
	if len(d.Variables) != wantVars {
		t.Fatalf("variables = %d, want %d", len(d.Variables), wantVars)
	}
	if got := len(d.OutputRefs()); got != cooling.NumOutputs {
		t.Errorf("outputs = %d, want %d (§III-C4)", got, cooling.NumOutputs)
	}
	// Unique refs and names.
	refs := map[ValueRef]bool{}
	names := map[string]bool{}
	for _, v := range d.Variables {
		if refs[v.Ref] {
			t.Fatalf("duplicate ref %d", v.Ref)
		}
		if names[v.Name] {
			t.Fatalf("duplicate name %q", v.Name)
		}
		refs[v.Ref] = true
		names[v.Name] = true
	}
	// Units inferred from suffixes.
	ref, err := d.RefByName("pue")
	if err != nil {
		t.Fatal(err)
	}
	_ = ref
	if _, err := d.RefByName("no-such-variable"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestLifecycle(t *testing.T) {
	inst := newInstance(t)
	if inst.State() != Instantiated {
		t.Fatal("fresh instance state wrong")
	}
	if err := inst.DoStep(15); err == nil {
		t.Error("DoStep before SetupExperiment must fail")
	}
	if err := inst.SetupExperiment(0); err != nil {
		t.Fatal(err)
	}
	if err := inst.SetupExperiment(0); err == nil {
		t.Error("double SetupExperiment must fail")
	}
	setTypicalInputs(t, inst)
	if err := inst.DoStep(15); err != nil {
		t.Fatal(err)
	}
	if inst.State() != Stepping || inst.Time() != 15 {
		t.Errorf("state %v time %v after DoStep", inst.State(), inst.Time())
	}
	inst.Terminate()
	if err := inst.DoStep(15); err == nil {
		t.Error("DoStep after Terminate must fail")
	}
	if err := inst.Reset(); err != nil {
		t.Fatal(err)
	}
	if inst.State() != Instantiated || inst.Time() != 0 {
		t.Error("Reset should return to Instantiated at t=0")
	}
}

func setTypicalInputs(t *testing.T, inst *Instance) {
	t.Helper()
	d := inst.Description()
	refs := make([]ValueRef, 0, 27)
	vals := make([]float64, 0, 27)
	for i := 1; i <= 25; i++ {
		r, err := d.RefByName(nameOfCDUHeat(i))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
		vals = append(vals, 16e6/25)
	}
	wb, err := d.RefByName("wetbulb_temp_c")
	if err != nil {
		t.Fatal(err)
	}
	it, err := d.RefByName("it_power_w")
	if err != nil {
		t.Fatal(err)
	}
	refs = append(refs, wb, it)
	vals = append(vals, 20, 16.9e6)
	if err := inst.SetReal(refs, vals); err != nil {
		t.Fatal(err)
	}
}

func nameOfCDUHeat(i int) string {
	return "cdu[" + itoa(i) + "].heat_w"
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestSetRealValidation(t *testing.T) {
	inst := newInstance(t)
	d := inst.Description()
	pue, err := d.RefByName("pue")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.SetReal([]ValueRef{pue}, []float64{1}); err == nil {
		t.Error("writing an output must fail")
	}
	if err := inst.SetReal([]ValueRef{9999}, []float64{1}); err == nil {
		t.Error("unknown ref must fail")
	}
	if err := inst.SetReal([]ValueRef{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must fail")
	}
}

func TestGetRealBeforeStepFails(t *testing.T) {
	inst := newInstance(t)
	d := inst.Description()
	pue, _ := d.RefByName("pue")
	out := make([]float64, 1)
	if err := inst.GetReal([]ValueRef{pue}, out); err == nil {
		t.Error("reading outputs before DoStep must fail")
	}
	// Inputs are readable immediately (echo).
	wb, _ := d.RefByName("wetbulb_temp_c")
	if err := inst.SetReal([]ValueRef{wb}, []float64{21.5}); err != nil {
		t.Fatal(err)
	}
	if err := inst.GetReal([]ValueRef{wb}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 21.5 {
		t.Errorf("input echo = %v", out[0])
	}
}

func TestCoSimulationProducesPhysicalOutputs(t *testing.T) {
	inst := newInstance(t)
	if err := inst.SetupExperiment(0); err != nil {
		t.Fatal(err)
	}
	setTypicalInputs(t, inst)
	// Run 30 simulated minutes at the paper's 15 s communication step.
	for i := 0; i < 120; i++ {
		if err := inst.DoStep(15); err != nil {
			t.Fatal(err)
		}
	}
	d := inst.Description()
	get := func(name string) float64 {
		r, err := d.RefByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 1)
		if err := inst.GetReal([]ValueRef{r}, out); err != nil {
			t.Fatal(err)
		}
		return out[0]
	}
	pue := get("pue")
	if pue < 1.01 || pue > 1.10 {
		t.Errorf("PUE = %v", pue)
	}
	if temp := get("cdu[1].secondary_supply_temp_c"); math.Abs(temp-32) > 2.5 {
		t.Errorf("secondary supply = %v", temp)
	}
	if q := get("facility.htw_flow_m3s"); q <= 0 {
		t.Errorf("HTW flow = %v", q)
	}
	// Read the whole output vector at once.
	refs := d.OutputRefs()
	vals := make([]float64, len(refs))
	if err := inst.GetReal(refs, vals); err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if math.IsNaN(v) {
			t.Fatalf("output %d is NaN", i)
		}
	}
}

func TestDoStepRejectsBadStep(t *testing.T) {
	inst := newInstance(t)
	if err := inst.SetupExperiment(0); err != nil {
		t.Fatal(err)
	}
	setTypicalInputs(t, inst)
	if err := inst.DoStep(0); err == nil {
		t.Error("zero step must fail")
	}
	if err := inst.DoStep(-15); err == nil {
		t.Error("negative step must fail")
	}
}

func TestCausalityString(t *testing.T) {
	if Input.String() != "input" || Output.String() != "output" || Parameter.String() != "parameter" {
		t.Error("causality names")
	}
	if Causality(9).String() == "" {
		t.Error("unknown causality should have a name")
	}
}

// TestDoStepDoesNotAllocate pins the hot-loop allocation fix: the ODE
// stage buffers, hydraulic scratch, snapshot record, and output vector
// are all reused across DoStep calls (a cooled tick used to cost ~156
// allocations, all inside DoStep).
func TestDoStepDoesNotAllocate(t *testing.T) {
	inst := newInstance(t)
	if err := inst.SetupExperiment(0); err != nil {
		t.Fatal(err)
	}
	setTypicalInputs(t, inst)
	// Warm up: first steps size the reusable buffers.
	for i := 0; i < 4; i++ {
		if err := inst.DoStep(15); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := inst.DoStep(15); err != nil {
			t.Fatal(err)
		}
	})
	// Staging transients may allocate the odd time; steady state is 0.
	if allocs > 2 {
		t.Errorf("DoStep allocates %.0f objects/step; want ~0", allocs)
	}
}
