package httpmw

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok"))
	})
}

// TestRequireBearer covers the auth middleware's contract: empty token
// pass-through, 401 with a WWW-Authenticate challenge for missing/wrong
// credentials, 200 for the exact token.
func TestRequireBearer(t *testing.T) {
	open := httptest.NewServer(RequireBearer("", okHandler()))
	defer open.Close()
	resp, err := http.Get(open.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty token must disable auth, got %d", resp.StatusCode)
	}

	srv := httptest.NewServer(RequireBearer("s3cret", okHandler()))
	defer srv.Close()
	cases := []struct {
		name   string
		header string
		want   int
	}{
		{"missing", "", http.StatusUnauthorized},
		{"wrong scheme", "Basic s3cret", http.StatusUnauthorized},
		{"wrong token", "Bearer nope", http.StatusUnauthorized},
		{"prefix token", "Bearer s3cre", http.StatusUnauthorized},
		{"correct", "Bearer s3cret", http.StatusOK},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(http.MethodGet, srv.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		if tc.header != "" {
			req.Header.Set("Authorization", tc.header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		if tc.want == http.StatusUnauthorized && resp.Header.Get("WWW-Authenticate") == "" {
			t.Errorf("%s: 401 without WWW-Authenticate challenge", tc.name)
		}
	}
}
