// Package httpmw is the shared HTTP middleware layer for the twin's two
// servers — the viz dashboard API and the sweep service. Both previously
// hand-rolled their endpoints with no recovery or observability; this
// package gives them one stack: panic recovery (a crashing handler
// returns 500 instead of killing the connection), optional request
// logging, and request metrics (per-route status-class counters, an
// in-flight gauge, panics, and a request-duration histogram).
//
// The counters live in one place: Metrics is both the JSON snapshot
// the /api/metrics endpoints serve and — once attached to an
// obs.Registry via Register — the storage behind the Prometheus
// /metrics series, so the two views cannot drift.
package httpmw

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"exadigit/internal/obs"
)

// Logf is the logging hook (log.Printf-shaped). nil disables logging.
type Logf func(format string, args ...any)

// statusClasses are the response classes tracked per route.
var statusClasses = [4]string{"2xx", "3xx", "4xx", "5xx"}

// routeMetrics is one route's counters.
type routeMetrics struct {
	requests atomic.Uint64
	classes  [4]atomic.Uint64 // 2xx, 3xx, 4xx, 5xx
}

// maxRoutes bounds the per-route map so a path scan cannot grow it (and
// the exposition's cardinality) without bound; overflow lands in the
// "other" route.
const maxRoutes = 64

// Metrics holds the counters one middleware stack accumulates. All
// methods are safe for concurrent use; the zero value is ready.
type Metrics struct {
	inFlight atomic.Int64
	panics   atomic.Uint64

	latOnce sync.Once
	latency *obs.Histogram

	mu     sync.RWMutex
	routes map[string]*routeMetrics
}

// hist lazily initializes the request-duration histogram so the zero
// value stays usable.
func (m *Metrics) hist() *obs.Histogram {
	m.latOnce.Do(func() { m.latency = obs.NewHistogram(obs.DefBuckets) })
	return m.latency
}

// route returns (creating on first use) the counters for the
// normalized route of path.
func (m *Metrics) route(path string) *routeMetrics {
	key := RouteLabel(path)
	m.mu.RLock()
	rt := m.routes[key]
	m.mu.RUnlock()
	if rt != nil {
		return rt
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.routes == nil {
		m.routes = make(map[string]*routeMetrics)
	}
	if rt := m.routes[key]; rt != nil {
		return rt
	}
	if len(m.routes) >= maxRoutes {
		key = "other"
		if rt := m.routes[key]; rt != nil {
			return rt
		}
	}
	rt = &routeMetrics{}
	m.routes[key] = rt
	return rt
}

// RouteLabel normalizes a request path into a bounded-cardinality route
// label: sweep ids and content hashes become "{id}", so
// /api/sweeps/sw-12/results and /api/sweeps/sw-97/results are one
// route.
func RouteLabel(path string) string {
	if path == "" || path == "/" {
		return "/"
	}
	segs := strings.Split(path, "/")
	for i, s := range segs {
		if isIDSegment(s) {
			segs[i] = "{id}"
		}
	}
	return strings.Join(segs, "/")
}

// isIDSegment reports whether a path segment looks like a generated
// identifier: a sweep id ("sw-" + hex and dashes — both the historical
// counter form sw-12 and the collision-free sw-<hexnano>-<rand> form),
// a pure number, or a content hash (≥16 hex chars).
func isIDSegment(s string) bool {
	if rest, ok := strings.CutPrefix(s, "sw-"); ok && rest != "" && allHexDash(rest) {
		return true
	}
	if s != "" && allDigits(s) {
		return true
	}
	if len(s) >= 16 && allHex(s) {
		return true
	}
	return false
}

func allDigits(s string) bool {
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

func allHex(s string) bool {
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allHexDash(s string) bool {
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && c != '-' {
			return false
		}
	}
	return true
}

// RouteSnapshot is one route's JSON view.
type RouteSnapshot struct {
	Requests  uint64 `json:"requests"`
	Status2xx uint64 `json:"status_2xx"`
	Status3xx uint64 `json:"status_3xx"`
	Status4xx uint64 `json:"status_4xx"`
	Status5xx uint64 `json:"status_5xx"`
}

// MetricsSnapshot is the JSON-serializable view of the counters.
type MetricsSnapshot struct {
	Requests  uint64  `json:"requests"`
	InFlight  int64   `json:"in_flight"`
	Panics    uint64  `json:"panics"`
	Status2xx uint64  `json:"status_2xx"`
	Status3xx uint64  `json:"status_3xx"`
	Status4xx uint64  `json:"status_4xx"`
	Status5xx uint64  `json:"status_5xx"`
	AvgMs     float64 `json:"avg_ms"`
	// Routes breaks the totals down by normalized route.
	Routes map[string]RouteSnapshot `json:"routes,omitempty"`
}

// Snapshot returns a point-in-time copy of the counters. Totals are the
// sums over routes, so the JSON view and the per-route registry series
// always reconcile.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		InFlight: m.inFlight.Load(),
		Panics:   m.panics.Load(),
	}
	m.mu.RLock()
	if len(m.routes) > 0 {
		s.Routes = make(map[string]RouteSnapshot, len(m.routes))
	}
	for route, rt := range m.routes {
		rs := RouteSnapshot{
			Requests:  rt.requests.Load(),
			Status2xx: rt.classes[0].Load(),
			Status3xx: rt.classes[1].Load(),
			Status4xx: rt.classes[2].Load(),
			Status5xx: rt.classes[3].Load(),
		}
		s.Routes[route] = rs
		s.Requests += rs.Requests
		s.Status2xx += rs.Status2xx
		s.Status3xx += rs.Status3xx
		s.Status4xx += rs.Status4xx
		s.Status5xx += rs.Status5xx
	}
	m.mu.RUnlock()
	h := m.hist().Snapshot()
	if h.Count > 0 {
		s.AvgMs = h.Sum / float64(h.Count) * 1e3
	}
	return s
}

// Register attaches the stack's counters to a metrics registry under
// the given server label (e.g. "sweeps", "dashboard"). The registry
// reads the same storage Snapshot does — registration adds a view, not
// a second set of counters. Several stacks may share one registry; each
// contributes its own server="..." series to the shared families.
func (m *Metrics) Register(reg *obs.Registry, server string) {
	reg.VecFunc(obs.KindCounter, "exadigit_http_requests_total",
		"HTTP requests completed, by server, normalized route, and status class.",
		[]string{"server", "route", "code"},
		func(emit func([]string, float64)) {
			m.mu.RLock()
			defer m.mu.RUnlock()
			for route, rt := range m.routes {
				for i, class := range statusClasses {
					emit([]string{server, route, class}, float64(rt.classes[i].Load()))
				}
			}
		})
	reg.VecFunc(obs.KindGauge, "exadigit_http_in_flight_requests",
		"HTTP requests currently being handled.",
		[]string{"server"},
		func(emit func([]string, float64)) {
			emit([]string{server}, float64(m.inFlight.Load()))
		})
	reg.VecFunc(obs.KindCounter, "exadigit_http_panics_total",
		"Handler panics recovered by the middleware.",
		[]string{"server"},
		func(emit func([]string, float64)) {
			emit([]string{server}, float64(m.panics.Load()))
		})
	reg.HistogramFunc("exadigit_http_request_duration_seconds",
		"HTTP request handling time.",
		[]string{"server"}, obs.DefBuckets,
		func(emit func([]string, obs.HistogramSnapshot)) {
			emit([]string{server}, m.hist().Snapshot())
		})
}

// Summary renders the snapshot as one log line — the periodic metrics
// heartbeat and the final flush a graceful shutdown emits so a server's
// request accounting is not lost with the process.
func (m *Metrics) Summary() string {
	s := m.Snapshot()
	return fmt.Sprintf("requests=%d in_flight=%d 2xx=%d 3xx=%d 4xx=%d 5xx=%d panics=%d avg_ms=%.2f",
		s.Requests, s.InFlight, s.Status2xx, s.Status3xx, s.Status4xx, s.Status5xx, s.Panics, s.AvgMs)
}

// Handler serves the snapshot as JSON — mount it as the stack's
// /api/metrics endpoint.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(m.Snapshot())
	})
}

// RequireBearer enforces an Authorization: Bearer token in front of h —
// the opt-in auth layer for twin deployments exposed beyond localhost
// (enable with `exadigit serve -token` or EXADIGIT_TOKEN). An empty
// token disables enforcement and returns h unchanged, so unauthenticated
// development setups keep working. Comparison is constant-time; a
// missing or wrong token is a 401 JSON envelope with a WWW-Authenticate
// challenge.
func RequireBearer(token string, h http.Handler) http.Handler {
	if token == "" {
		return h
	}
	want := []byte(token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="exadigit"`)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnauthorized)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "unauthorized"})
			return
		}
		h.ServeHTTP(w, r)
	})
}

// statusRecorder captures the response code (and whether the handler
// wrote one) without disturbing streaming: Flush is forwarded when the
// underlying writer supports it, which the sweep service's NDJSON
// endpoints rely on.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.code = code
		sr.wrote = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if !sr.wrote {
		sr.code = http.StatusOK
		sr.wrote = true
	}
	return sr.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer, preserving http.Flusher for
// streaming handlers.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// classIndex maps a status code to its class counter slot.
func classIndex(code int) int {
	switch {
	case code >= 500:
		return 3
	case code >= 400:
		return 2
	case code >= 300:
		return 1
	default:
		return 0
	}
}

// Wrap layers panic recovery, metrics accounting, and (when logf is
// non-nil) request logging around h. m may be nil to skip metrics.
func Wrap(h http.Handler, logf Logf, m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}
		var rt *routeMetrics
		if m != nil {
			rt = m.route(r.URL.Path)
			rt.requests.Add(1)
			m.inFlight.Add(1)
		}
		defer func() {
			if m != nil {
				m.inFlight.Add(-1)
				m.hist().Observe(time.Since(start).Seconds())
			}
			if rec := recover(); rec != nil {
				if m != nil {
					m.panics.Add(1)
					rt.classes[3].Add(1)
				}
				if !sr.wrote {
					http.Error(w, "internal server error", http.StatusInternalServerError)
				}
				if logf != nil {
					logf("http: panic in %s %s: %v", r.Method, r.URL.Path, rec)
				}
				return
			}
			code := sr.code
			if !sr.wrote {
				code = http.StatusOK
			}
			if m != nil {
				rt.classes[classIndex(code)].Add(1)
			}
			if logf != nil {
				logf("http: %s %s -> %d (%s)", r.Method, r.URL.Path, code,
					time.Since(start).Round(time.Microsecond))
			}
		}()
		h.ServeHTTP(sr, r)
	})
}
