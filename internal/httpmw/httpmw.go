// Package httpmw is the shared HTTP middleware layer for the twin's two
// servers — the viz dashboard API and the sweep service. Both previously
// hand-rolled their endpoints with no recovery or observability; this
// package gives them one stack: panic recovery (a crashing handler
// returns 500 instead of killing the connection), optional request
// logging, and basic request metrics (totals, in-flight, status classes,
// panics, cumulative handler time).
package httpmw

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Logf is the logging hook (log.Printf-shaped). nil disables logging.
type Logf func(format string, args ...any)

// Metrics holds the counters one middleware stack accumulates. All
// methods are safe for concurrent use.
type Metrics struct {
	requests atomic.Uint64
	inFlight atomic.Int64
	panics   atomic.Uint64
	status2x atomic.Uint64
	status3x atomic.Uint64
	status4x atomic.Uint64
	status5x atomic.Uint64
	// totalNs accumulates handler wall time for a cheap mean latency.
	totalNs atomic.Int64
}

// MetricsSnapshot is the JSON-serializable view of the counters.
type MetricsSnapshot struct {
	Requests  uint64  `json:"requests"`
	InFlight  int64   `json:"in_flight"`
	Panics    uint64  `json:"panics"`
	Status2xx uint64  `json:"status_2xx"`
	Status3xx uint64  `json:"status_3xx"`
	Status4xx uint64  `json:"status_4xx"`
	Status5xx uint64  `json:"status_5xx"`
	AvgMs     float64 `json:"avg_ms"`
}

// Snapshot returns a point-in-time copy of the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Requests:  m.requests.Load(),
		InFlight:  m.inFlight.Load(),
		Panics:    m.panics.Load(),
		Status2xx: m.status2x.Load(),
		Status3xx: m.status3x.Load(),
		Status4xx: m.status4x.Load(),
		Status5xx: m.status5x.Load(),
	}
	if s.Requests > 0 {
		s.AvgMs = float64(m.totalNs.Load()) / float64(s.Requests) / 1e6
	}
	return s
}

// Summary renders the snapshot as one log line — the final metrics
// flush a graceful shutdown emits so a server's request accounting is
// not lost with the process (`exadigit serve` logs it after draining).
func (m *Metrics) Summary() string {
	s := m.Snapshot()
	return fmt.Sprintf("requests=%d in_flight=%d 2xx=%d 3xx=%d 4xx=%d 5xx=%d panics=%d avg_ms=%.2f",
		s.Requests, s.InFlight, s.Status2xx, s.Status3xx, s.Status4xx, s.Status5xx, s.Panics, s.AvgMs)
}

// Handler serves the snapshot as JSON — mount it as the stack's
// /api/metrics endpoint.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(m.Snapshot())
	})
}

// RequireBearer enforces an Authorization: Bearer token in front of h —
// the opt-in auth layer for twin deployments exposed beyond localhost
// (enable with `exadigit serve -token` or EXADIGIT_TOKEN). An empty
// token disables enforcement and returns h unchanged, so unauthenticated
// development setups keep working. Comparison is constant-time; a
// missing or wrong token is a 401 JSON envelope with a WWW-Authenticate
// challenge.
func RequireBearer(token string, h http.Handler) http.Handler {
	if token == "" {
		return h
	}
	want := []byte(token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="exadigit"`)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnauthorized)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "unauthorized"})
			return
		}
		h.ServeHTTP(w, r)
	})
}

// statusRecorder captures the response code (and whether the handler
// wrote one) without disturbing streaming: Flush is forwarded when the
// underlying writer supports it, which the sweep service's NDJSON
// endpoints rely on.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.code = code
		sr.wrote = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if !sr.wrote {
		sr.code = http.StatusOK
		sr.wrote = true
	}
	return sr.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer, preserving http.Flusher for
// streaming handlers.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Wrap layers panic recovery, metrics accounting, and (when logf is
// non-nil) request logging around h. m may be nil to skip metrics.
func Wrap(h http.Handler, logf Logf, m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}
		if m != nil {
			m.requests.Add(1)
			m.inFlight.Add(1)
		}
		defer func() {
			if m != nil {
				m.inFlight.Add(-1)
				m.totalNs.Add(int64(time.Since(start)))
			}
			if rec := recover(); rec != nil {
				if m != nil {
					m.panics.Add(1)
					m.status5x.Add(1)
				}
				if !sr.wrote {
					http.Error(w, "internal server error", http.StatusInternalServerError)
				}
				if logf != nil {
					logf("http: panic in %s %s: %v", r.Method, r.URL.Path, rec)
				}
				return
			}
			code := sr.code
			if !sr.wrote {
				code = http.StatusOK
			}
			if m != nil {
				switch {
				case code >= 500:
					m.status5x.Add(1)
				case code >= 400:
					m.status4x.Add(1)
				case code >= 300:
					m.status3x.Add(1)
				default:
					m.status2x.Add(1)
				}
			}
			if logf != nil {
				logf("http: %s %s -> %d (%s)", r.Method, r.URL.Path, code,
					time.Since(start).Round(time.Microsecond))
			}
		}()
		h.ServeHTTP(sr, r)
	})
}
