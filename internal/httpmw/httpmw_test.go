package httpmw

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"exadigit/internal/obs"
)

func TestWrapRecoversPanicsAndCounts(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	mux.HandleFunc("/missing", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	})
	mux.HandleFunc("/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})

	var logged []string
	m := &Metrics{}
	srv := httptest.NewServer(Wrap(mux, func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}, m))
	defer srv.Close()

	get := func(path string) int {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/ok"); code != http.StatusOK {
		t.Fatalf("/ok = %d", code)
	}
	if code := get("/missing"); code != http.StatusNotFound {
		t.Fatalf("/missing = %d", code)
	}
	// A panicking handler returns 500 to the client instead of killing
	// the connection.
	if code := get("/boom"); code != http.StatusInternalServerError {
		t.Fatalf("/boom = %d", code)
	}

	s := m.Snapshot()
	if s.Requests != 3 || s.Status2xx != 1 || s.Status4xx != 1 || s.Status5xx != 1 || s.Panics != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.InFlight != 0 {
		t.Fatalf("in-flight = %d after requests drained", s.InFlight)
	}
	if len(logged) != 3 {
		t.Fatalf("logged %d lines: %v", len(logged), logged)
	}
	foundPanic := false
	for _, line := range logged {
		if strings.Contains(line, "panic") && strings.Contains(line, "kaboom") {
			foundPanic = true
		}
	}
	if !foundPanic {
		t.Fatalf("panic not logged: %v", logged)
	}
}

func TestMetricsHandler(t *testing.T) {
	m := &Metrics{}
	h := Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}), nil, m)
	srv := httptest.NewServer(h)
	defer srv.Close()
	if _, err := srv.Client().Get(srv.URL + "/"); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/metrics", nil))
	var snap MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests != 1 || snap.Status2xx != 1 {
		t.Fatalf("snapshot over HTTP = %+v", snap)
	}
}

func TestWrapPreservesFlusher(t *testing.T) {
	h := Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := w.(http.Flusher); !ok {
			t.Error("middleware dropped http.Flusher — streaming endpoints would stall")
		}
	}), nil, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()
	if _, err := srv.Client().Get(srv.URL); err != nil {
		t.Fatal(err)
	}
}

// TestSummaryLine: the shutdown flush line carries the counters a server
// would otherwise lose at exit.
func TestSummaryLine(t *testing.T) {
	m := &Metrics{}
	h := Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.NotFound(w, r)
		}
	}), nil, m)
	srv := httptest.NewServer(h)
	defer srv.Close()
	for _, p := range []string{"/", "/missing"} {
		if _, err := srv.Client().Get(srv.URL + p); err != nil {
			t.Fatal(err)
		}
	}
	sum := m.Summary()
	for _, want := range []string{"requests=2", "2xx=1", "4xx=1", "panics=0"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary %q missing %q", sum, want)
		}
	}
}

// TestRouteLabel pins the cardinality-bounding normalization: generated
// identifiers collapse to {id}, everything else passes through.
func TestRouteLabel(t *testing.T) {
	cases := map[string]string{
		"":                          "/",
		"/":                         "/",
		"/api/sweeps":               "/api/sweeps",
		"/api/sweeps/sw-12":         "/api/sweeps/{id}",
		"/api/sweeps/sw-97/results": "/api/sweeps/{id}/results",
		"/api/sweeps/sw-/results":   "/api/sweeps/sw-/results", // not an id
		// Durable time-prefixed ids: sw-<hex nanos>-<hex suffix>.
		"/api/sweeps/sw-18f3a2b4c5d6e7f8-9abc":        "/api/sweeps/{id}",
		"/api/sweeps/sw-18f3a2b4c5d6e7f8-9abc/stream": "/api/sweeps/{id}/stream",
		"/api/sweeps/sw-NOPE/results":                 "/api/sweeps/sw-NOPE/results", // uppercase: not an id
		"/api/experiments/42":       "/api/experiments/{id}",
		"/api/run/deadbeefdeadbeef": "/api/run/{id}",     // 16 hex chars
		"/api/run/deadbeef":         "/api/run/deadbeef", // too short for a hash
		"/metrics":                  "/metrics",
	}
	for path, want := range cases {
		if got := RouteLabel(path); got != want {
			t.Errorf("RouteLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestPerRouteSnapshot: the snapshot breaks totals down by normalized
// route and the totals are exactly the per-route sums.
func TestPerRouteSnapshot(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {})
	mux.HandleFunc("GET /api/sweeps", func(w http.ResponseWriter, r *http.Request) {})
	m := &Metrics{}
	srv := httptest.NewServer(Wrap(mux, nil, m))
	defer srv.Close()

	for _, p := range []string{"/api/sweeps/sw-1", "/api/sweeps/sw-2", "/api/sweeps", "/nope"} {
		resp, err := srv.Client().Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	s := m.Snapshot()
	if s.Requests != 4 || s.Status2xx != 3 || s.Status4xx != 1 {
		t.Fatalf("snapshot totals = %+v", s)
	}
	if rt := s.Routes["/api/sweeps/{id}"]; rt.Requests != 2 || rt.Status2xx != 2 {
		t.Fatalf("/api/sweeps/{id} route = %+v", rt)
	}
	if rt := s.Routes["/api/sweeps"]; rt.Requests != 1 {
		t.Fatalf("/api/sweeps route = %+v", rt)
	}
	if rt := s.Routes["/nope"]; rt.Status4xx != 1 {
		t.Fatalf("/nope route = %+v", rt)
	}
	var sum uint64
	for _, rt := range s.Routes {
		sum += rt.Requests
	}
	if sum != s.Requests {
		t.Fatalf("route sum %d != total %d", sum, s.Requests)
	}
}

// TestRouteOverflowLandsInOther: the per-route map is bounded; a path
// scan past the cap accumulates under "other" instead of growing the
// exposition's cardinality without bound.
func TestRouteOverflowLandsInOther(t *testing.T) {
	m := &Metrics{}
	h := Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}), nil, m)
	for i := 0; i < maxRoutes+10; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/scan/path-%c%d", 'a'+i%26, i), nil))
	}
	s := m.Snapshot()
	if len(s.Routes) > maxRoutes+1 {
		t.Fatalf("route map grew to %d entries (cap %d + other)", len(s.Routes), maxRoutes)
	}
	other, ok := s.Routes["other"]
	if !ok || other.Requests == 0 {
		t.Fatalf("overflow routes not folded into other: %+v", s.Routes["other"])
	}
	if s.Requests != maxRoutes+10 {
		t.Fatalf("total %d, want %d", s.Requests, maxRoutes+10)
	}
}

// TestRegisterExposesSeries: Register is a view over the same storage
// Snapshot reads — the exposition's per-route series sum to the JSON
// totals, and two stacks share one family under distinct server labels.
func TestRegisterExposesSeries(t *testing.T) {
	reg := obs.NewRegistry()
	ma, mb := &Metrics{}, &Metrics{}
	ma.Register(reg, "sweeps")
	mb.Register(reg, "dashboard")

	ha := Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}), nil, ma)
	hb := Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	}), nil, mb)
	for i := 0; i < 3; i++ {
		ha.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/api/sweeps", nil))
	}
	hb.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/api/status", nil))

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	e, err := obs.ParseExposition(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	series := e.Series()
	get := func(name string, labels map[string]string) float64 {
		return series[obs.ExpoSeries{Name: name, Labels: labels}.ID()]
	}
	if got := get("exadigit_http_requests_total",
		map[string]string{"server": "sweeps", "route": "/api/sweeps", "code": "2xx"}); got != 3 {
		t.Errorf("sweeps 2xx series = %v, want 3", got)
	}
	if got := get("exadigit_http_requests_total",
		map[string]string{"server": "dashboard", "route": "/api/status", "code": "4xx"}); got != 1 {
		t.Errorf("dashboard 4xx series = %v, want 1", got)
	}
	if got := get("exadigit_http_request_duration_seconds_count",
		map[string]string{"server": "sweeps"}); got != 3 {
		t.Errorf("sweeps duration count = %v, want 3", got)
	}
	if got := get("exadigit_http_in_flight_requests",
		map[string]string{"server": "dashboard"}); got != 0 {
		t.Errorf("dashboard in-flight = %v, want 0", got)
	}
}
