package httpmw

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWrapRecoversPanicsAndCounts(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	mux.HandleFunc("/missing", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	})
	mux.HandleFunc("/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})

	var logged []string
	m := &Metrics{}
	srv := httptest.NewServer(Wrap(mux, func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}, m))
	defer srv.Close()

	get := func(path string) int {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/ok"); code != http.StatusOK {
		t.Fatalf("/ok = %d", code)
	}
	if code := get("/missing"); code != http.StatusNotFound {
		t.Fatalf("/missing = %d", code)
	}
	// A panicking handler returns 500 to the client instead of killing
	// the connection.
	if code := get("/boom"); code != http.StatusInternalServerError {
		t.Fatalf("/boom = %d", code)
	}

	s := m.Snapshot()
	if s.Requests != 3 || s.Status2xx != 1 || s.Status4xx != 1 || s.Status5xx != 1 || s.Panics != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.InFlight != 0 {
		t.Fatalf("in-flight = %d after requests drained", s.InFlight)
	}
	if len(logged) != 3 {
		t.Fatalf("logged %d lines: %v", len(logged), logged)
	}
	foundPanic := false
	for _, line := range logged {
		if strings.Contains(line, "panic") && strings.Contains(line, "kaboom") {
			foundPanic = true
		}
	}
	if !foundPanic {
		t.Fatalf("panic not logged: %v", logged)
	}
}

func TestMetricsHandler(t *testing.T) {
	m := &Metrics{}
	h := Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}), nil, m)
	srv := httptest.NewServer(h)
	defer srv.Close()
	if _, err := srv.Client().Get(srv.URL + "/"); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/metrics", nil))
	var snap MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests != 1 || snap.Status2xx != 1 {
		t.Fatalf("snapshot over HTTP = %+v", snap)
	}
}

func TestWrapPreservesFlusher(t *testing.T) {
	h := Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := w.(http.Flusher); !ok {
			t.Error("middleware dropped http.Flusher — streaming endpoints would stall")
		}
	}), nil, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()
	if _, err := srv.Client().Get(srv.URL); err != nil {
		t.Fatal(err)
	}
}

// TestSummaryLine: the shutdown flush line carries the counters a server
// would otherwise lose at exit.
func TestSummaryLine(t *testing.T) {
	m := &Metrics{}
	h := Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.NotFound(w, r)
		}
	}), nil, m)
	srv := httptest.NewServer(h)
	defer srv.Close()
	for _, p := range []string{"/", "/missing"} {
		if _, err := srv.Client().Get(srv.URL + p); err != nil {
			t.Fatal(err)
		}
	}
	sum := m.Summary()
	for _, want := range []string{"requests=2", "2xx=1", "4xx=1", "panics=0"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary %q missing %q", sum, want)
		}
	}
}
