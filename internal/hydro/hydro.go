// Package hydro implements the quasi-steady hydraulic network used by the
// cooling model (§III-C4). Like the paper's Modelica model, flows are
// computed from pump curves, quadratic pipe resistances, and valve
// positions; unlike the thermal states, hydraulic states settle in
// milliseconds, so each plant time step solves the network algebraically
// (pump curve ∩ system curve) rather than integrating momentum ODEs.
//
// Conventions: flow Q in m³/s, pressure rise/drop in Pa, pump speed as a
// fraction of rated speed in [0, ~1.2].
package hydro

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoSolution is returned when a loop operating point cannot be bracketed.
var ErrNoSolution = errors.New("hydro: no operating point")

// PumpCurve is a quadratic centrifugal pump characteristic
//
//	head(Q, s) = H0·s² − H2·Q²   [Pa]
//
// which obeys the affinity laws exactly for a quadratic curve. H0 is the
// shutoff head at rated speed; H2 sets the head roll-off with flow.
type PumpCurve struct {
	H0 float64 // shutoff head at rated speed, Pa
	H2 float64 // quadratic coefficient, Pa/(m³/s)²
	// QRated and Eta describe the best-efficiency point for power calc.
	QRated float64 // rated flow, m³/s
	Eta    float64 // hydraulic efficiency at the BEP (0..1)
	PIdle  float64 // parasitic (seal/bearing/VFD) power when spinning, W
}

// NewPumpCurve builds a curve from two rated-point values: head at zero
// flow (shutoff, Pa) and the operating point (qRated m³/s at hRated Pa).
func NewPumpCurve(shutoffPa, qRated, hRatedPa, eta float64) PumpCurve {
	h2 := (shutoffPa - hRatedPa) / (qRated * qRated)
	return PumpCurve{H0: shutoffPa, H2: h2, QRated: qRated, Eta: eta}
}

// Head returns the pressure rise at flow q and speed fraction s.
func (p PumpCurve) Head(q, s float64) float64 {
	return p.H0*s*s - p.H2*q*q
}

// FlowAtHead inverts the curve: the flow delivered against head h at speed
// s, or 0 if the pump cannot reach that head.
func (p PumpCurve) FlowAtHead(h, s float64) float64 {
	num := p.H0*s*s - h
	if num <= 0 || p.H2 <= 0 {
		return 0
	}
	return math.Sqrt(num / p.H2)
}

// MaxHead returns the shutoff head at speed s.
func (p PumpCurve) MaxHead(s float64) float64 { return p.H0 * s * s }

// Power returns the electrical power (W) drawn at flow q and the
// corresponding head, using hydraulic power / efficiency plus parasitics.
func (p PumpCurve) Power(q, s float64) float64 {
	if s <= 0 {
		return 0
	}
	h := p.Head(q, s)
	if h < 0 {
		h = 0
	}
	eta := p.Eta
	if eta <= 0 {
		eta = 0.7
	}
	return h*q/eta + p.PIdle
}

// Resistance is a quadratic hydraulic resistance ΔP = K·Q·|Q|.
type Resistance struct {
	K float64 // Pa/(m³/s)²
}

// NewResistanceFromPoint builds a resistance passing qRated at dpRated.
func NewResistanceFromPoint(dpRatedPa, qRated float64) Resistance {
	return Resistance{K: dpRatedPa / (qRated * qRated)}
}

// Drop returns the pressure drop at flow q (signed).
func (r Resistance) Drop(q float64) float64 { return r.K * q * math.Abs(q) }

// FlowAtDrop inverts the resistance for a non-negative drop.
func (r Resistance) FlowAtDrop(dp float64) float64 {
	if dp <= 0 || r.K <= 0 {
		return 0
	}
	return math.Sqrt(dp / r.K)
}

// Series combines resistances in series (K adds).
func Series(rs ...Resistance) Resistance {
	var k float64
	for _, r := range rs {
		k += r.K
	}
	return Resistance{K: k}
}

// Parallel combines resistances in parallel
// (1/√K_total = Σ 1/√K_i for quadratic resistances).
func Parallel(rs ...Resistance) Resistance {
	var s float64
	for _, r := range rs {
		if r.K > 0 {
			s += 1 / math.Sqrt(r.K)
		}
	}
	if s == 0 {
		return Resistance{K: math.Inf(1)}
	}
	return Resistance{K: 1 / (s * s)}
}

// ParallelK combines quadratic resistances given as raw K coefficients in
// parallel — the allocation-free form of Parallel for hot loops that
// already carry a K slice.
func ParallelK(ks []float64) Resistance {
	var s float64
	for _, k := range ks {
		if k > 0 {
			s += 1 / math.Sqrt(k)
		}
	}
	if s == 0 {
		return Resistance{K: math.Inf(1)}
	}
	return Resistance{K: 1 / (s * s)}
}

// Valve is an equal-percentage control valve. Position 1 is fully open
// with resistance KOpen; closing multiplies the resistance by
// Rangeability^(2·(1−pos)), with a leakage floor at KMax.
type Valve struct {
	KOpen        float64 // resistance fully open, Pa/(m³/s)²
	Rangeability float64 // typically 30–50; <=1 makes the valve linear-off
	KMax         float64 // leakage-limited resistance when closed

	pos float64
}

// NewValve builds an equal-percentage valve sized to pass qRated at
// dpRated when fully open, with the given rangeability.
func NewValve(dpRatedPa, qRated, rangeability float64) *Valve {
	k := dpRatedPa / (qRated * qRated)
	return &Valve{KOpen: k, Rangeability: rangeability, KMax: k * math.Pow(rangeability, 2), pos: 1}
}

// SetPosition commands the valve to pos ∈ [0, 1].
func (v *Valve) SetPosition(pos float64) {
	if pos < 0 {
		pos = 0
	}
	if pos > 1 {
		pos = 1
	}
	v.pos = pos
}

// Position returns the current valve position.
func (v *Valve) Position() float64 { return v.pos }

// Resistance returns the valve's current hydraulic resistance.
func (v *Valve) Resistance() Resistance {
	r := v.Rangeability
	if r <= 1 {
		r = 1
	}
	k := v.KOpen * math.Pow(r, 2*(1-v.pos))
	if v.KMax > 0 && k > v.KMax {
		k = v.KMax
	}
	return Resistance{K: k}
}

// PumpBank is n identical pumps in parallel on a common header, all
// running at the same speed (how Frontier stages its CTWPs/HTWPs).
type PumpBank struct {
	Curve PumpCurve
	N     int     // pumps currently staged on
	Speed float64 // common speed fraction
}

// Flow returns the total delivered flow against head h.
func (b PumpBank) Flow(h float64) float64 {
	if b.N <= 0 || b.Speed <= 0 {
		return 0
	}
	return float64(b.N) * b.Curve.FlowAtHead(h, b.Speed)
}

// Power returns total electrical power at head h.
func (b PumpBank) Power(h float64) float64 {
	if b.N <= 0 || b.Speed <= 0 {
		return 0
	}
	q := b.Curve.FlowAtHead(h, b.Speed)
	return float64(b.N) * b.Curve.Power(q, b.Speed)
}

// PerPumpFlow returns the flow through each staged pump at head h.
func (b PumpBank) PerPumpFlow(h float64) float64 {
	if b.N <= 0 {
		return 0
	}
	return b.Flow(h) / float64(b.N)
}

// SolveLoop finds the operating point of a pump bank pushing flow around a
// closed loop whose total pressure drop is given by systemDrop(Q). It
// returns the loop flow and the matching head. systemDrop must be
// non-decreasing in Q (true for any series/parallel combination of
// quadratic resistances).
func SolveLoop(bank PumpBank, systemDrop func(q float64) float64) (q, head float64, err error) {
	if bank.N <= 0 || bank.Speed <= 0 {
		return 0, 0, nil
	}
	maxHead := bank.Curve.MaxHead(bank.Speed)
	// Residual(h) = bankFlow(h) − systemFlowAt(h); we instead root-find on
	// flow: f(Q) = bankHeadAt(Q) − systemDrop(Q), monotone decreasing.
	headAt := func(qTot float64) float64 {
		per := qTot / float64(bank.N)
		return bank.Curve.Head(per, bank.Speed)
	}
	f := func(qTot float64) float64 { return headAt(qTot) - systemDrop(qTot) }
	lo := 0.0
	if f(lo) <= 0 {
		// System drop at zero flow exceeds shutoff head (e.g. static head):
		// pump is dead-headed.
		return 0, maxHead, nil
	}
	// Bracket: expand hi until f(hi) < 0.
	hi := bank.Curve.QRated * float64(bank.N) * bank.Speed
	if hi <= 0 {
		hi = 1e-3
	}
	for i := 0; f(hi) > 0; i++ {
		hi *= 2
		if i > 60 {
			return 0, 0, fmt.Errorf("%w: cannot bracket (hi=%g)", ErrNoSolution, hi)
		}
	}
	// Bisection: robust against the kinks valves introduce.
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	q = (lo + hi) / 2
	return q, systemDrop(q), nil
}

// SolveQuadLoop returns the operating point of a pump bank pushing flow
// around a closed loop whose total drop is purely quadratic, ΔP = K·Q².
// The intersection with the (affinity-law) quadratic pump curve has a
// closed form, so the plant's fixed-resistance loops — every loop it
// solves per control period — skip SolveLoop's bracketing and bisection
// entirely in the simulation hot path. Agrees with SolveLoop to solver
// precision on the same inputs.
func SolveQuadLoop(bank PumpBank, K float64) (q, head float64) {
	if bank.N <= 0 || bank.Speed <= 0 {
		return 0, 0
	}
	n := float64(bank.N)
	denom := K + bank.Curve.H2/(n*n)
	num := bank.Curve.H0 * bank.Speed * bank.Speed
	if denom <= 0 || num <= 0 {
		return 0, 0
	}
	q = math.Sqrt(num / denom)
	return q, K * q * q
}

// SplitParallel distributes total flow qTot across parallel branches with
// resistances ks, returning per-branch flows and the common pressure drop.
// Branches with non-positive K take no flow unless all are non-positive,
// in which case the flow is split evenly.
func SplitParallel(qTot float64, ks []float64) (flows []float64, dp float64) {
	flows = make([]float64, len(ks))
	dp = SplitParallelInto(qTot, ks, flows)
	return flows, dp
}

// SplitParallelInto is the allocation-free variant of SplitParallel:
// per-branch flows are written into flows (len(flows) must equal
// len(ks)) and the common pressure drop is returned.
func SplitParallelInto(qTot float64, ks, flows []float64) (dp float64) {
	for i := range flows {
		flows[i] = 0
	}
	if qTot <= 0 || len(ks) == 0 {
		return 0
	}
	var s float64
	for _, k := range ks {
		if k > 0 {
			s += 1 / math.Sqrt(k)
		}
	}
	if s == 0 {
		for i := range flows {
			flows[i] = qTot / float64(len(ks))
		}
		return 0
	}
	// Common dp from equivalent parallel resistance.
	kEq := 1 / (s * s)
	dp = kEq * qTot * qTot
	for i, k := range ks {
		if k > 0 {
			flows[i] = math.Sqrt(dp / k)
		}
	}
	return dp
}
