package hydro

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPumpCurveBasics(t *testing.T) {
	// Rated: 0.35 m³/s at 300 kPa, shutoff 450 kPa.
	p := NewPumpCurve(450e3, 0.35, 300e3, 0.78)
	if got := p.Head(0, 1); got != 450e3 {
		t.Errorf("shutoff head = %v", got)
	}
	if got := p.Head(0.35, 1); math.Abs(got-300e3) > 1 {
		t.Errorf("rated head = %v", got)
	}
	// Affinity: at half speed, head at zero flow is quarter.
	if got := p.Head(0, 0.5); math.Abs(got-112.5e3) > 1 {
		t.Errorf("affinity shutoff = %v", got)
	}
}

func TestPumpFlowHeadRoundTrip(t *testing.T) {
	p := NewPumpCurve(450e3, 0.35, 300e3, 0.78)
	f := func(qRaw, sRaw float64) bool {
		s := 0.3 + math.Mod(math.Abs(sRaw), 0.9)
		q := math.Mod(math.Abs(qRaw), p.QRated*s)
		h := p.Head(q, s)
		back := p.FlowAtHead(h, s)
		return math.Abs(back-q) < 1e-9*math.Max(1, q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPumpFlowAtExcessiveHead(t *testing.T) {
	p := NewPumpCurve(450e3, 0.35, 300e3, 0.78)
	if got := p.FlowAtHead(500e3, 1); got != 0 {
		t.Errorf("flow above shutoff = %v, want 0", got)
	}
}

func TestPumpPower(t *testing.T) {
	p := NewPumpCurve(450e3, 0.35, 300e3, 0.75)
	p.PIdle = 500
	// Hydraulic power at the BEP: 300e3 * 0.35 = 105 kW; /0.75 = 140 kW.
	got := p.Power(0.35, 1)
	if math.Abs(got-(140e3+500)) > 1 {
		t.Errorf("power = %v, want 140500", got)
	}
	if p.Power(0.35, 0) != 0 {
		t.Error("stopped pump should draw nothing")
	}
	// Default efficiency path.
	pNoEta := PumpCurve{H0: 100e3, H2: 1e6, QRated: 0.1}
	if pNoEta.Power(0.05, 1) <= 0 {
		t.Error("power with default eta should be positive")
	}
}

func TestResistance(t *testing.T) {
	r := NewResistanceFromPoint(200e3, 0.4)
	if got := r.Drop(0.4); math.Abs(got-200e3) > 1e-6 {
		t.Errorf("rated drop = %v", got)
	}
	if got := r.Drop(-0.4); math.Abs(got+200e3) > 1e-6 {
		t.Errorf("reverse drop should be negative: %v", got)
	}
	if got := r.FlowAtDrop(200e3); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("inverse = %v", got)
	}
	if r.FlowAtDrop(-5) != 0 {
		t.Error("negative drop yields zero flow")
	}
}

func TestSeriesParallelComposition(t *testing.T) {
	a := Resistance{K: 100}
	b := Resistance{K: 100}
	s := Series(a, b)
	if s.K != 200 {
		t.Errorf("series K = %v", s.K)
	}
	p := Parallel(a, b)
	// Two equal branches: total flow doubles at same dp → K/4.
	if math.Abs(p.K-25) > 1e-9 {
		t.Errorf("parallel K = %v, want 25", p.K)
	}
	empty := Parallel()
	if !math.IsInf(empty.K, 1) {
		t.Errorf("empty parallel should block flow")
	}
}

func TestValveCharacteristic(t *testing.T) {
	v := NewValve(50e3, 0.3, 50)
	v.SetPosition(1)
	kOpen := v.Resistance().K
	v.SetPosition(0.5)
	kHalf := v.Resistance().K
	v.SetPosition(0)
	kClosed := v.Resistance().K
	if !(kOpen < kHalf && kHalf < kClosed) {
		t.Errorf("resistance must grow as the valve closes: %v %v %v", kOpen, kHalf, kClosed)
	}
	// Equal percentage: half position multiplies K by R^1 = 50.
	if math.Abs(kHalf/kOpen-50) > 1e-6 {
		t.Errorf("kHalf/kOpen = %v, want 50", kHalf/kOpen)
	}
	// Leakage floor.
	if kClosed > v.KMax+1e-9 {
		t.Errorf("closed K %v should cap at KMax %v", kClosed, v.KMax)
	}
	v.SetPosition(2)
	if v.Position() != 1 {
		t.Errorf("position must clamp to 1, got %v", v.Position())
	}
	v.SetPosition(-1)
	if v.Position() != 0 {
		t.Errorf("position must clamp to 0, got %v", v.Position())
	}
}

func TestSolveLoopOperatingPoint(t *testing.T) {
	// One pump against a single resistance: closed form
	// H0 s² − H2 q² = K q² → q = s·sqrt(H0/(H2+K)).
	curve := NewPumpCurve(450e3, 0.35, 300e3, 0.78)
	r := Resistance{K: 2e6}
	bank := PumpBank{Curve: curve, N: 1, Speed: 1}
	q, h, err := SolveLoop(bank, func(q float64) float64 { return r.Drop(q) })
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(450e3 / (curve.H2 + 2e6))
	if math.Abs(q-want) > 1e-6 {
		t.Errorf("q = %v, want %v", q, want)
	}
	if math.Abs(h-r.Drop(q)) > 1 {
		t.Errorf("head mismatch: %v vs %v", h, r.Drop(q))
	}
}

func TestSolveLoopParallelPumpsIncreaseFlow(t *testing.T) {
	curve := NewPumpCurve(450e3, 0.35, 300e3, 0.78)
	r := Resistance{K: 2e6}
	drop := func(q float64) float64 { return r.Drop(q) }
	q1, _, err := SolveLoop(PumpBank{Curve: curve, N: 1, Speed: 1}, drop)
	if err != nil {
		t.Fatal(err)
	}
	q2, _, err := SolveLoop(PumpBank{Curve: curve, N: 2, Speed: 1}, drop)
	if err != nil {
		t.Fatal(err)
	}
	q4, _, err := SolveLoop(PumpBank{Curve: curve, N: 4, Speed: 1}, drop)
	if err != nil {
		t.Fatal(err)
	}
	if !(q2 > q1 && q4 > q2) {
		t.Errorf("staging pumps must increase flow: %v %v %v", q1, q2, q4)
	}
	if q2 >= 2*q1 {
		t.Errorf("parallel pumps on a shared loop gain sub-linearly: q1=%v q2=%v", q1, q2)
	}
}

func TestSolveLoopSpeedScaling(t *testing.T) {
	// Pure quadratic system: flow scales linearly with speed (affinity).
	curve := NewPumpCurve(450e3, 0.35, 300e3, 0.78)
	r := Resistance{K: 2e6}
	drop := func(q float64) float64 { return r.Drop(q) }
	qFull, _, _ := SolveLoop(PumpBank{Curve: curve, N: 1, Speed: 1.0}, drop)
	qHalf, _, _ := SolveLoop(PumpBank{Curve: curve, N: 1, Speed: 0.5}, drop)
	if math.Abs(qHalf-qFull/2) > 1e-9 {
		t.Errorf("affinity violated: %v vs %v/2", qHalf, qFull)
	}
}

func TestSolveLoopDegenerate(t *testing.T) {
	curve := NewPumpCurve(450e3, 0.35, 300e3, 0.78)
	q, _, err := SolveLoop(PumpBank{Curve: curve, N: 0, Speed: 1}, func(q float64) float64 { return q })
	if err != nil || q != 0 {
		t.Errorf("no pumps should give zero flow, got %v err %v", q, err)
	}
	// Static head above shutoff: dead-headed.
	q, h, err := SolveLoop(PumpBank{Curve: curve, N: 1, Speed: 0.2},
		func(q float64) float64 { return 1e6 + q*q })
	if err != nil {
		t.Fatal(err)
	}
	if q != 0 {
		t.Errorf("dead-headed pump should deliver zero flow, got %v", q)
	}
	if h <= 0 {
		t.Errorf("dead-head pressure should be shutoff head, got %v", h)
	}
}

func TestSplitParallelConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(25)
		ks := make([]float64, n)
		for i := range ks {
			ks[i] = 1e5 * (0.2 + rng.Float64())
		}
		qTot := 0.05 + rng.Float64()
		flows, dp := SplitParallel(qTot, ks)
		var sum float64
		for i, q := range flows {
			sum += q
			// Each branch must see the same pressure drop.
			if math.Abs(ks[i]*q*q-dp) > 1e-6*dp {
				t.Fatalf("branch %d drop %v != header %v", i, ks[i]*q*q, dp)
			}
		}
		if math.Abs(sum-qTot) > 1e-9*qTot {
			t.Fatalf("mass not conserved: %v vs %v", sum, qTot)
		}
	}
}

func TestSplitParallelEdge(t *testing.T) {
	flows, dp := SplitParallel(0, []float64{1, 2})
	if dp != 0 || flows[0] != 0 || flows[1] != 0 {
		t.Error("zero flow should split to zeros")
	}
	flows, dp = SplitParallel(1, []float64{0, 0})
	if dp != 0 || flows[0] != 0.5 || flows[1] != 0.5 {
		t.Errorf("degenerate Ks should split evenly: %v", flows)
	}
	flows, _ = SplitParallel(1, []float64{0, 1e5})
	if flows[0] != 0 {
		t.Error("non-positive-K branch should take no flow when others exist")
	}
}

func TestPumpBankHelpers(t *testing.T) {
	curve := NewPumpCurve(450e3, 0.35, 300e3, 0.78)
	b := PumpBank{Curve: curve, N: 3, Speed: 1}
	h := 300e3
	if got := b.PerPumpFlow(h); math.Abs(got-b.Flow(h)/3) > 1e-12 {
		t.Errorf("per-pump flow = %v", got)
	}
	if b.Power(h) <= 0 {
		t.Error("bank power should be positive")
	}
	off := PumpBank{Curve: curve, N: 0, Speed: 1}
	if off.Flow(h) != 0 || off.Power(h) != 0 || off.PerPumpFlow(h) != 0 {
		t.Error("empty bank should be inert")
	}
}

func BenchmarkSolveLoop(b *testing.B) {
	curve := NewPumpCurve(450e3, 0.35, 300e3, 0.78)
	bank := PumpBank{Curve: curve, N: 4, Speed: 0.85}
	r := Resistance{K: 5e5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveLoop(bank, func(q float64) float64 { return r.Drop(q) }); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSolveQuadLoopMatchesSolveLoop(t *testing.T) {
	curve := NewPumpCurve(480e3, 0.097, 320e3, 0.80)
	for _, tc := range []struct {
		n     int
		speed float64
		k     float64
	}{
		{1, 0.9, 180e3 / (0.029 * 0.029)},
		{3, 0.85, 4.9e5},
		{4, 1.05, 5.6e5},
		{2, 0.4, 1e6},
	} {
		bank := PumpBank{Curve: curve, N: tc.n, Speed: tc.speed}
		qRef, headRef, err := SolveLoop(bank, func(q float64) float64 {
			return tc.k * q * q
		})
		if err != nil {
			t.Fatal(err)
		}
		q, head := SolveQuadLoop(bank, tc.k)
		if math.Abs(q-qRef) > 1e-9*(1+qRef) || math.Abs(head-headRef) > 1e-6*(1+headRef) {
			t.Errorf("n=%d s=%v k=%g: closed form (%v, %v) vs bisection (%v, %v)",
				tc.n, tc.speed, tc.k, q, head, qRef, headRef)
		}
	}
	if q, head := SolveQuadLoop(PumpBank{Curve: curve, N: 0, Speed: 1}, 1e5); q != 0 || head != 0 {
		t.Error("unstaged bank must return zero flow")
	}
}
