// Package job models HPC jobs the way RAPS consumes them (§III-B,
// Table II): each job carries a node count, a wall time, and CPU/GPU
// utilization traces sampled at the trace quanta (15 s, chosen to match
// Frontier's telemetry cadence). Jobs are either replayed from telemetry
// or generated synthetically from a Poisson arrival process (Eq. 5) with
// distributions fitted to the Table IV daily statistics. The package also
// provides application fingerprints — canned utilization profiles for
// HPL and OpenMxP used in the paper's verification runs (§IV-2, Fig. 8).
package job

import (
	"fmt"
	"math/rand"

	"exadigit/internal/dist"
)

// TraceQuantaSec is the utilization-trace sampling period (§III-B: "set
// to 15s in this work to correspond with system telemetry data").
const TraceQuantaSec = 15.0

// State tracks a job through the scheduler.
type State int

const (
	// Pending jobs are queued awaiting nodes.
	Pending State = iota
	// Running jobs hold nodes.
	Running
	// Completed jobs have finished and released their nodes.
	Completed
)

// String names the state.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Completed:
		return "completed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Job is one schedulable unit of work.
type Job struct {
	ID        int
	Name      string
	NodeCount int
	// WallTimeSec is the job's actual duration once started.
	WallTimeSec float64
	// SubmitTime is the simulation time (s) the job enters the queue.
	SubmitTime float64
	// CPUTrace and GPUTrace are utilizations in [0,1] per TraceQuantaSec.
	// A job past the end of its trace holds the last sample.
	CPUTrace []float64
	GPUTrace []float64

	// ReplayStart, when ≥ 0, pins the start time for telemetry replay
	// (using "the physical twin's scheduling policy", §III-B).
	ReplayStart float64

	// Scheduler-managed fields.
	State     State
	StartTime float64
	EndTime   float64
	Nodes     []int
}

// New constructs a pending job with sane defaults.
func New(id int, name string, nodes int, wallSec, submit float64) *Job {
	return &Job{
		ID: id, Name: name, NodeCount: nodes,
		WallTimeSec: wallSec, SubmitTime: submit,
		ReplayStart: -1,
	}
}

// UtilAt returns the CPU and GPU utilization at tSinceStart seconds into
// the job. Before the first sample it returns the first; past the end it
// holds the last. Empty traces read as zero.
func (j *Job) UtilAt(tSinceStart float64) (cpu, gpu float64) {
	idx := int(tSinceStart / TraceQuantaSec)
	cpu = sampleTrace(j.CPUTrace, idx)
	gpu = sampleTrace(j.GPUTrace, idx)
	return cpu, gpu
}

func sampleTrace(tr []float64, idx int) float64 {
	if len(tr) == 0 {
		return 0
	}
	if idx < 0 {
		return tr[0]
	}
	if idx >= len(tr) {
		return tr[len(tr)-1]
	}
	return tr[idx]
}

// TraceFrozenAt reports whether the job's utilization can no longer
// change once the trace index has reached idx: both traces are at (or
// past) their final sample, which UtilAt holds constant thereafter. The
// event-driven simulation loop uses this to stop scheduling trace-quantum
// events for jobs whose utilization is frozen.
func (j *Job) TraceFrozenAt(idx int) bool {
	return idx >= len(j.CPUTrace)-1 && idx >= len(j.GPUTrace)-1
}

// TraceConstSuffix returns the first trace index of the constant suffix:
// the smallest c such that every sample of both traces at index ≥ c
// equals the sample at c (with UtilAt's hold-last semantics). A
// FlatTrace job returns 0; a replay trace that plateaus returns the
// plateau's start. Once a running job's index reaches this point its
// utilization is pinned, so the event engine freezes it early and
// tick-gap skipping stays enabled across the remainder of the job.
func (j *Job) TraceConstSuffix() int {
	c := constSuffix(j.CPUTrace)
	if g := constSuffix(j.GPUTrace); g > c {
		c = g
	}
	return c
}

// constSuffix returns the first index from which every later sample
// equals tr[i]; 0 for empty or all-equal traces.
func constSuffix(tr []float64) int {
	i := len(tr) - 1
	if i < 0 {
		return 0
	}
	for i > 0 && tr[i-1] == tr[i] {
		i--
	}
	return i
}

// TraceLen returns the number of trace quanta covering the wall time.
func TraceLen(wallSec float64) int {
	n := int(wallSec/TraceQuantaSec) + 1
	if n < 1 {
		n = 1
	}
	return n
}

// FlatTrace builds a constant-utilization trace covering wallSec.
func FlatTrace(util float64, wallSec float64) []float64 {
	tr := make([]float64, TraceLen(wallSec))
	for i := range tr {
		tr[i] = util
	}
	return tr
}

// Fingerprint names a canned application utilization profile.
type Fingerprint string

// Fingerprints used in the paper's verification and synthetic tests.
const (
	// FPIdle is an idle allocation (zero utilization).
	FPIdle Fingerprint = "idle"
	// FPHPL is High-Performance Linpack: ramp, a long core phase at
	// GPU 79 % / CPU 33 % (inferred from telemetry, §IV-2), and a
	// panel-broadcast tail.
	FPHPL Fingerprint = "hpl"
	// FPOpenMxP is the mixed-precision OpenMxP benchmark — GPU-bound,
	// slightly hotter than HPL on the GPUs with a lighter CPU load.
	FPOpenMxP Fingerprint = "openmxp"
	// FPMax pins both CPU and GPU at 100 % (peak-power verification).
	FPMax Fingerprint = "max"
)

// ApplyFingerprint fills the job's traces from the named profile.
func (j *Job) ApplyFingerprint(fp Fingerprint) error {
	n := TraceLen(j.WallTimeSec)
	cpu := make([]float64, n)
	gpu := make([]float64, n)
	switch fp {
	case FPIdle:
		// zeros
	case FPMax:
		for i := range cpu {
			cpu[i], gpu[i] = 1, 1
		}
	case FPHPL:
		fillPhases(cpu, gpu, []phase{
			{frac: 0.05, cpu: 0.50, gpu: 0.20}, // setup / panel factorization start
			{frac: 0.85, cpu: 0.33, gpu: 0.79}, // core phase (§IV-2)
			{frac: 0.10, cpu: 0.45, gpu: 0.15}, // backsolve + verification tail
		})
	case FPOpenMxP:
		fillPhases(cpu, gpu, []phase{
			{frac: 0.05, cpu: 0.40, gpu: 0.25},
			{frac: 0.88, cpu: 0.25, gpu: 0.92},
			{frac: 0.07, cpu: 0.40, gpu: 0.20},
		})
	default:
		return fmt.Errorf("job: unknown fingerprint %q", fp)
	}
	j.CPUTrace, j.GPUTrace = cpu, gpu
	j.Name = string(fp)
	return nil
}

type phase struct {
	frac     float64
	cpu, gpu float64
}

func fillPhases(cpu, gpu []float64, phases []phase) {
	n := len(cpu)
	pos := 0
	for pi, p := range phases {
		count := int(p.frac*float64(n) + 0.5)
		if pi == len(phases)-1 {
			count = n - pos
		}
		for i := 0; i < count && pos < n; i++ {
			cpu[pos], gpu[pos] = p.cpu, p.gpu
			pos++
		}
	}
	for ; pos < n; pos++ {
		cpu[pos], gpu[pos] = phases[len(phases)-1].cpu, phases[len(phases)-1].gpu
	}
}

// GeneratorConfig parameterizes the synthetic workload generator with the
// telemetry-derived statistics of §III-B3 (defaults from Table IV). The
// JSON tags define the sweep-service wire format for submitting
// synthetic scenarios over HTTP.
type GeneratorConfig struct {
	ArrivalMeanSec float64 `json:"arrival_mean_sec"` // mean inter-arrival time t_avg (Table IV avg: 138 s)
	NodesMean      float64 `json:"nodes_mean"`       // mean nodes per job (268)
	NodesStd       float64 `json:"nodes_std"`        // std of nodes per job (626)
	MaxNodes       int     `json:"max_nodes"`        // system size cap
	WallMeanSec    float64 `json:"wall_mean_sec"`    // mean runtime (39 min)
	WallStdSec     float64 `json:"wall_std_sec"`     // std of runtime (14 min)
	WallMinSec     float64 `json:"wall_min_sec"`
	WallMaxSec     float64 `json:"wall_max_sec"`
	// Utilization means/stds for the randomly distributed per-job
	// average utilizations (§III-B3).
	CPUUtilMean float64 `json:"cpu_util_mean"`
	CPUUtilStd  float64 `json:"cpu_util_std"`
	GPUUtilMean float64 `json:"gpu_util_mean"`
	GPUUtilStd  float64 `json:"gpu_util_std"`
	// UtilJitter adds small per-quanta variation around the job mean.
	UtilJitter float64 `json:"util_jitter"`
	// SingleNodeFraction forces this share of jobs to one node (Fig. 9:
	// 400 of 1238 jobs in the replayed day were single-node).
	SingleNodeFraction float64 `json:"single_node_fraction"`
	Seed               int64   `json:"seed"`
}

// DefaultGeneratorConfig returns Table IV-calibrated parameters for a
// Frontier-sized system.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		ArrivalMeanSec: 138,
		NodesMean:      268, NodesStd: 626, MaxNodes: 9472,
		WallMeanSec: 39 * 60, WallStdSec: 14 * 60,
		WallMinSec: 60, WallMaxSec: 6 * 3600,
		CPUUtilMean: 0.45, CPUUtilStd: 0.25,
		GPUUtilMean: 0.70, GPUUtilStd: 0.25,
		UtilJitter:         0.05,
		SingleNodeFraction: 0.32,
		Seed:               1,
	}
}

// Generator produces synthetic jobs via the Eq. 5 Poisson process.
type Generator struct {
	cfg    GeneratorConfig
	rng    *rand.Rand
	nextID int
	clock  float64
}

// NewGenerator builds a generator from cfg.
func NewGenerator(cfg GeneratorConfig) *Generator {
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), nextID: 1}
}

// Next draws the next job; successive calls advance the arrival clock by
// exponentially distributed gaps (Eq. 5).
func (g *Generator) Next() *Job {
	g.clock += dist.Exponential(g.rng, g.cfg.ArrivalMeanSec)
	j := g.buildJob(g.clock)
	return j
}

// GenerateHorizon returns every job arriving in [0, horizonSec). A
// non-positive arrival mean yields no jobs (the exponential gap would
// never advance the clock).
func (g *Generator) GenerateHorizon(horizonSec float64) []*Job {
	if g.cfg.ArrivalMeanSec <= 0 {
		return nil
	}
	var jobs []*Job
	for {
		gap := dist.Exponential(g.rng, g.cfg.ArrivalMeanSec)
		if g.clock+gap >= horizonSec {
			// Leave the clock untouched so further calls continue the stream.
			return jobs
		}
		g.clock += gap
		jobs = append(jobs, g.buildJob(g.clock))
	}
}

func (g *Generator) buildJob(submit float64) *Job {
	cfg := g.cfg
	nodes := 1
	if g.rng.Float64() >= cfg.SingleNodeFraction {
		nodes = int(dist.LogNormal(g.rng, cfg.NodesMean, cfg.NodesStd))
		if nodes < 1 {
			nodes = 1
		}
		if cfg.MaxNodes > 0 && nodes > cfg.MaxNodes {
			nodes = cfg.MaxNodes
		}
	}
	wall := dist.TruncNormal(g.rng, cfg.WallMeanSec, cfg.WallStdSec, cfg.WallMinSec, cfg.WallMaxSec)
	j := New(g.nextID, fmt.Sprintf("synthetic-%d", g.nextID), nodes, wall, submit)
	g.nextID++

	cpuMean := dist.TruncNormal(g.rng, cfg.CPUUtilMean, cfg.CPUUtilStd, 0, 1)
	gpuMean := dist.TruncNormal(g.rng, cfg.GPUUtilMean, cfg.GPUUtilStd, 0, 1)
	n := TraceLen(wall)
	j.CPUTrace = make([]float64, n)
	j.GPUTrace = make([]float64, n)
	for i := 0; i < n; i++ {
		j.CPUTrace[i] = clamp01(cpuMean + cfg.UtilJitter*g.rng.NormFloat64())
		j.GPUTrace[i] = clamp01(gpuMean + cfg.UtilJitter*g.rng.NormFloat64())
	}
	return j
}

// NewHPL builds the 9216-node HPL benchmark job used in Table III and
// Figs. 8–9.
func NewHPL(id int, submit, wallSec float64) *Job {
	j := New(id, "hpl", 9216, wallSec, submit)
	if err := j.ApplyFingerprint(FPHPL); err != nil {
		panic(err) // FPHPL is a known fingerprint
	}
	return j
}

// NewOpenMxP builds the OpenMxP benchmark job of Fig. 8.
func NewOpenMxP(id int, submit, wallSec float64) *Job {
	j := New(id, "openmxp", 9216, wallSec, submit)
	if err := j.ApplyFingerprint(FPOpenMxP); err != nil {
		panic(err)
	}
	return j
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
