package job

import (
	"math"
	"testing"
)

func TestUtilAtTraceIndexing(t *testing.T) {
	j := New(1, "t", 4, 60, 0)
	j.CPUTrace = []float64{0.1, 0.2, 0.3}
	j.GPUTrace = []float64{0.5, 0.6, 0.7}
	cpu, gpu := j.UtilAt(0)
	if cpu != 0.1 || gpu != 0.5 {
		t.Errorf("t=0: %v/%v", cpu, gpu)
	}
	cpu, gpu = j.UtilAt(16) // second quantum
	if cpu != 0.2 || gpu != 0.6 {
		t.Errorf("t=16: %v/%v", cpu, gpu)
	}
	cpu, gpu = j.UtilAt(1e6) // past the end holds last
	if cpu != 0.3 || gpu != 0.7 {
		t.Errorf("past end: %v/%v", cpu, gpu)
	}
	cpu, gpu = j.UtilAt(-5)
	if cpu != 0.1 || gpu != 0.5 {
		t.Errorf("before start: %v/%v", cpu, gpu)
	}
}

func TestUtilAtEmptyTrace(t *testing.T) {
	j := New(1, "t", 4, 60, 0)
	cpu, gpu := j.UtilAt(10)
	if cpu != 0 || gpu != 0 {
		t.Error("empty trace should read zero")
	}
}

func TestTraceLen(t *testing.T) {
	if TraceLen(0) != 1 {
		t.Errorf("zero wall = %d quanta", TraceLen(0))
	}
	if TraceLen(15) != 2 {
		t.Errorf("15 s = %d quanta", TraceLen(15))
	}
	if TraceLen(3600) != 241 {
		t.Errorf("1 h = %d quanta, want 241", TraceLen(3600))
	}
}

func TestFlatTrace(t *testing.T) {
	tr := FlatTrace(0.42, 120)
	if len(tr) != TraceLen(120) {
		t.Fatalf("len = %d", len(tr))
	}
	for _, v := range tr {
		if v != 0.42 {
			t.Fatal("trace not flat")
		}
	}
}

func TestFingerprintHPLPhases(t *testing.T) {
	j := New(1, "x", 9216, 3600, 0)
	if err := j.ApplyFingerprint(FPHPL); err != nil {
		t.Fatal(err)
	}
	if j.Name != "hpl" {
		t.Errorf("name = %q", j.Name)
	}
	// Mid-run must be in the core phase at the §IV-2 utilizations.
	cpu, gpu := j.UtilAt(1800)
	if cpu != 0.33 || gpu != 0.79 {
		t.Errorf("core phase = %v/%v, want 0.33/0.79", cpu, gpu)
	}
	// The start is not the core phase.
	cpu0, gpu0 := j.UtilAt(0)
	if cpu0 == 0.33 && gpu0 == 0.79 {
		t.Error("ramp phase missing")
	}
	// The tail drops GPU utilization.
	_, gpuEnd := j.UtilAt(3595)
	if gpuEnd >= 0.79 {
		t.Errorf("tail GPU = %v, want < core", gpuEnd)
	}
}

func TestFingerprintOpenMxPHotterGPU(t *testing.T) {
	hpl := New(1, "", 9216, 3600, 0)
	if err := hpl.ApplyFingerprint(FPHPL); err != nil {
		t.Fatal(err)
	}
	mxp := New(2, "", 9216, 3600, 0)
	if err := mxp.ApplyFingerprint(FPOpenMxP); err != nil {
		t.Fatal(err)
	}
	_, gHPL := hpl.UtilAt(1800)
	_, gMxP := mxp.UtilAt(1800)
	if gMxP <= gHPL {
		t.Errorf("OpenMxP core GPU %v should exceed HPL %v", gMxP, gHPL)
	}
}

func TestFingerprintIdleMaxUnknown(t *testing.T) {
	j := New(1, "", 8, 300, 0)
	if err := j.ApplyFingerprint(FPIdle); err != nil {
		t.Fatal(err)
	}
	if c, g := j.UtilAt(100); c != 0 || g != 0 {
		t.Error("idle fingerprint not zero")
	}
	if err := j.ApplyFingerprint(FPMax); err != nil {
		t.Fatal(err)
	}
	if c, g := j.UtilAt(100); c != 1 || g != 1 {
		t.Error("max fingerprint not one")
	}
	if err := j.ApplyFingerprint(Fingerprint("nope")); err == nil {
		t.Error("unknown fingerprint should error")
	}
}

func TestGeneratorArrivalStatistics(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	g := NewGenerator(cfg)
	jobs := g.GenerateHorizon(7 * 86400)
	if len(jobs) < 3000 {
		t.Fatalf("only %d jobs in a week", len(jobs))
	}
	// Mean inter-arrival ≈ 138 s.
	var gaps []float64
	for i := 1; i < len(jobs); i++ {
		d := jobs[i].SubmitTime - jobs[i-1].SubmitTime
		if d < 0 {
			t.Fatal("submit times must be non-decreasing")
		}
		gaps = append(gaps, d)
	}
	mean := 0.0
	for _, d := range gaps {
		mean += d
	}
	mean /= float64(len(gaps))
	if math.Abs(mean-138)/138 > 0.1 {
		t.Errorf("mean inter-arrival = %v, want ≈138", mean)
	}
}

func TestGeneratorJobShapes(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	g := NewGenerator(cfg)
	jobs := g.GenerateHorizon(3 * 86400)
	singles := 0
	for _, j := range jobs {
		if j.NodeCount < 1 || j.NodeCount > cfg.MaxNodes {
			t.Fatalf("job %d nodes = %d", j.ID, j.NodeCount)
		}
		if j.WallTimeSec < cfg.WallMinSec || j.WallTimeSec > cfg.WallMaxSec {
			t.Fatalf("job %d wall = %v", j.ID, j.WallTimeSec)
		}
		if len(j.CPUTrace) != TraceLen(j.WallTimeSec) {
			t.Fatalf("job %d trace len %d != %d", j.ID, len(j.CPUTrace), TraceLen(j.WallTimeSec))
		}
		for k := range j.CPUTrace {
			if j.CPUTrace[k] < 0 || j.CPUTrace[k] > 1 || j.GPUTrace[k] < 0 || j.GPUTrace[k] > 1 {
				t.Fatalf("job %d utilization outside [0,1]", j.ID)
			}
		}
		if j.NodeCount == 1 {
			singles++
		}
	}
	frac := float64(singles) / float64(len(jobs))
	if frac < 0.25 || frac > 0.45 {
		t.Errorf("single-node fraction = %v, want ≈0.32 (Fig. 9)", frac)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(DefaultGeneratorConfig()).GenerateHorizon(86400)
	b := NewGenerator(DefaultGeneratorConfig()).GenerateHorizon(86400)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].SubmitTime != b[i].SubmitTime || a[i].NodeCount != b[i].NodeCount {
			t.Fatal("same seed must reproduce the stream")
		}
	}
}

func TestGeneratorNextContinuesClock(t *testing.T) {
	g := NewGenerator(DefaultGeneratorConfig())
	j1 := g.Next()
	j2 := g.Next()
	if j2.SubmitTime <= j1.SubmitTime {
		t.Error("Next must advance the arrival clock")
	}
	if j1.ID == j2.ID {
		t.Error("IDs must be unique")
	}
}

func TestNewHPLAndOpenMxP(t *testing.T) {
	h := NewHPL(7, 100, 5400)
	if h.NodeCount != 9216 || h.Name != "hpl" || h.SubmitTime != 100 {
		t.Errorf("HPL job = %+v", h)
	}
	m := NewOpenMxP(8, 0, 3600)
	if m.NodeCount != 9216 || m.Name != "openmxp" {
		t.Errorf("OpenMxP job = %+v", m)
	}
}

func TestStateString(t *testing.T) {
	if Pending.String() != "pending" || Running.String() != "running" || Completed.String() != "completed" {
		t.Error("state names")
	}
	if State(42).String() == "" {
		t.Error("unknown state should have a name")
	}
}

func TestReplayStartDefault(t *testing.T) {
	j := New(1, "x", 2, 10, 0)
	if j.ReplayStart >= 0 {
		t.Error("fresh jobs must not be pinned to a replay start")
	}
}

func TestTraceConstSuffix(t *testing.T) {
	j := New(1, "t", 4, 120, 0)
	// Empty traces: trivially constant.
	if got := j.TraceConstSuffix(); got != 0 {
		t.Errorf("empty traces: suffix %d, want 0", got)
	}
	// Flat traces: constant from the start.
	j.CPUTrace = FlatTrace(0.5, 120)
	j.GPUTrace = FlatTrace(0.8, 120)
	if got := j.TraceConstSuffix(); got != 0 {
		t.Errorf("flat traces: suffix %d, want 0", got)
	}
	// Plateau: varies for 3 quanta, then constant.
	j.CPUTrace = []float64{0.1, 0.2, 0.3, 0.7, 0.7, 0.7, 0.7}
	j.GPUTrace = FlatTrace(0.9, 120)[:7]
	if got := j.TraceConstSuffix(); got != 3 {
		t.Errorf("plateau: suffix %d, want 3", got)
	}
	// The later-varying trace dominates.
	j.GPUTrace = []float64{0.9, 0.9, 0.9, 0.9, 0.9, 0.4, 0.4}
	if got := j.TraceConstSuffix(); got != 5 {
		t.Errorf("mixed: suffix %d, want 5", got)
	}
	// Fully varying: suffix is the final sample.
	j.CPUTrace = []float64{0.1, 0.2, 0.3}
	j.GPUTrace = []float64{0.4, 0.5, 0.6}
	if got := j.TraceConstSuffix(); got != 2 {
		t.Errorf("varying: suffix %d, want 2", got)
	}
	// Consistency with TraceFrozenAt: frozen implies inside the suffix.
	for idx := 0; idx < 5; idx++ {
		if j.TraceFrozenAt(idx) && idx < j.TraceConstSuffix() {
			t.Errorf("idx %d frozen but before const suffix %d", idx, j.TraceConstSuffix())
		}
	}
}
