// Package la implements the small dense linear-algebra kernels needed by
// the ODE integrators and the hydraulic network solver: LU factorization
// with partial pivoting, tridiagonal (Thomas) solves, and basic vector
// operations. Systems in this codebase are tiny (tens of unknowns), so the
// implementation favours clarity and numerical robustness over blocking or
// parallelism.
package la

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("la: singular matrix")

// Matrix is a dense row-major n×m matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("la: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets all elements to zero, retaining the allocation.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes y = M·x. y must have length Rows and x length Cols.
func (m *Matrix) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("la: MulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, xv := range x {
			s += row[j] * xv
		}
		y[i] = s
	}
}

// LU holds an LU factorization with partial pivoting (PA = LU).
type LU struct {
	n    int
	lu   []float64 // packed L (unit diagonal implied) and U
	piv  []int
	sign int
}

// Factorize computes the LU decomposition of square matrix a with partial
// pivoting. The input matrix is not modified.
func Factorize(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("la: Factorize requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, a.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Pivot: largest magnitude in column k at or below the diagonal.
		p, maxAbs := k, math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(f.lu[i*n+k]); v > maxAbs {
				p, maxAbs = i, v
			}
		}
		if maxAbs == 0 || math.IsNaN(maxAbs) {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				f.lu[p*n+j], f.lu[k*n+j] = f.lu[k*n+j], f.lu[p*n+j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivot := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := f.lu[i*n+k] / pivot
			f.lu[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				f.lu[i*n+j] -= l * f.lu[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b using the factorization. b is not modified; the
// solution is written into x (which may alias b).
func (f *LU) Solve(b, x []float64) error {
	n := f.n
	if len(b) != n || len(x) != n {
		return fmt.Errorf("la: Solve dimension mismatch (n=%d, len(b)=%d, len(x)=%d)", n, len(b), len(x))
	}
	// Apply permutation into a scratch copy to allow x aliasing b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		s := y[i]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * y[j]
		}
		y[i] = s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * y[j]
		}
		d := f.lu[i*n+i]
		if d == 0 {
			return ErrSingular
		}
		y[i] = s / d
	}
	copy(x, y)
	return nil
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveDense is a convenience wrapper: factorize a and solve a·x = b.
func SolveDense(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	if err := f.Solve(b, x); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveTridiag solves a tridiagonal system using the Thomas algorithm.
// sub, diag, sup are the sub-, main and super-diagonals (len(sub) and
// len(sup) are n-1). The right-hand side b and solution share length n.
// Inputs are not modified.
func SolveTridiag(sub, diag, sup, b []float64) ([]float64, error) {
	n := len(diag)
	if len(b) != n || len(sub) != n-1 || len(sup) != n-1 {
		return nil, fmt.Errorf("la: SolveTridiag dimension mismatch")
	}
	c := make([]float64, n-1)
	d := make([]float64, n)
	if diag[0] == 0 {
		return nil, ErrSingular
	}
	c[0] = sup[0] / diag[0]
	d[0] = b[0] / diag[0]
	for i := 1; i < n; i++ {
		den := diag[i] - sub[i-1]*c[i-1]
		if den == 0 || math.IsNaN(den) {
			return nil, ErrSingular
		}
		if i < n-1 {
			c[i] = sup[i] / den
		}
		d[i] = (b[i] - sub[i-1]*d[i-1]) / den
	}
	x := make([]float64, n)
	x[n-1] = d[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = d[i] - c[i]*x[i+1]
	}
	return x, nil
}

// Vector helpers.

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("la: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum-magnitude norm of v.
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AXPY computes y ← a·x + y element-wise.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("la: AXPY length mismatch")
	}
	for i, xv := range x {
		y[i] += a * xv
	}
}

// Scale multiplies every element of v by a in place.
func Scale(a float64, v []float64) {
	for i := range v {
		v[i] *= a
	}
}
