package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnown(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	x, err := SolveDense(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestLUResidualRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal boost keeps the matrix comfortably non-singular.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveDense(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		r := make([]float64, n)
		a.MulVec(x, r)
		for i := range r {
			r[i] -= b[i]
		}
		if NormInf(r) > 1e-9 {
			t.Errorf("trial %d (n=%d): residual %v too large", trial, n, NormInf(r))
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Factorize(a); err == nil {
		t.Error("expected ErrSingular for rank-deficient matrix")
	}
}

func TestLUDet(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 8)
	a.Set(1, 0, 4)
	a.Set(1, 1, 6)
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-(-14)) > 1e-12 {
		t.Errorf("det = %v, want -14", d)
	}
}

func TestLUPivotingRequired(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveDense(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [7 3]", x)
	}
}

func TestSolveAliasing(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(1, 1, 2)
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{8, 6}
	if err := f.Solve(b, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 2 || b[1] != 3 {
		t.Errorf("aliased solve = %v, want [2 3]", b)
	}
}

func TestTridiagKnown(t *testing.T) {
	// [2 1 0; 1 2 1; 0 1 2] x = [4 8 8] → x = [1 2 3]
	x, err := SolveTridiag([]float64{1, 1}, []float64{2, 2, 2}, []float64{1, 1}, []float64{4, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestTridiagMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(30)
		sub := make([]float64, n-1)
		sup := make([]float64, n-1)
		diag := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			diag[i] = 4 + rng.Float64()
			b[i] = rng.NormFloat64()
			if i < n-1 {
				sub[i] = rng.NormFloat64()
				sup[i] = rng.NormFloat64()
			}
		}
		xt, err := SolveTridiag(sub, diag, sup, b)
		if err != nil {
			t.Fatal(err)
		}
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, diag[i])
			if i < n-1 {
				a.Set(i+1, i, sub[i])
				a.Set(i, i+1, sup[i])
			}
		}
		xd, err := SolveDense(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xt {
			if math.Abs(xt[i]-xd[i]) > 1e-9 {
				t.Fatalf("trial %d: tridiag %v vs dense %v at %d", trial, xt[i], xd[i], i)
			}
		}
	}
}

func TestTridiagSingular(t *testing.T) {
	if _, err := SolveTridiag([]float64{0}, []float64{0, 1}, []float64{0}, []float64{1, 1}); err == nil {
		t.Error("expected singular error")
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Errorf("Dot = %v", Dot(a, b))
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-15 {
		t.Errorf("Norm2 = %v", Norm2([]float64{3, 4}))
	}
	if NormInf([]float64{-7, 2}) != 7 {
		t.Errorf("NormInf = %v", NormInf([]float64{-7, 2}))
	}
	y := []float64{1, 1, 1}
	AXPY(2, a, y)
	if y[0] != 3 || y[1] != 5 || y[2] != 7 {
		t.Errorf("AXPY = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 1.5 || y[1] != 2.5 || y[2] != 3.5 {
		t.Errorf("Scale = %v", y)
	}
}

func TestMulVecIdentityProperty(t *testing.T) {
	f := func(raw []float64) bool {
		n := len(raw)
		if n == 0 || n > 32 {
			return true
		}
		id := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			id.Set(i, i, 1)
		}
		y := make([]float64, n)
		id.MulVec(raw, y)
		for i := range raw {
			if math.IsNaN(raw[i]) {
				return true
			}
			if y[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	c := a.Clone()
	c.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
	a.Zero()
	if a.At(0, 0) != 0 {
		t.Error("Zero failed")
	}
}
