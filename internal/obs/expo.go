package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry in Prometheus text exposition format
// 0.0.4: per family one # HELP and one # TYPE line followed by its
// series in sorted label order, with label values escaped and float
// values in shortest-round-trip form. The strict validator in lint.go
// parses exactly what this writer produces — the format tests run the
// two against each other.

// expoSample is one rendered series line's worth of data.
type expoSample struct {
	labelValues []string
	value       float64
	hist        *HistogramSnapshot
}

// Write renders the full exposition. Families are emitted in name
// order; series within a family in label-value order. Collector funcs
// run inside the family lock, so a collector must not re-enter the
// registry.
func (r *Registry) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		samples := f.gather()
		if len(samples) == 0 {
			continue
		}
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for i := range samples {
			if f.kind == KindHistogram {
				writeHistogram(bw, f, &samples[i])
			} else {
				writeSeries(bw, f.name, f.labelNames, samples[i].labelValues, "", samples[i].value)
			}
		}
	}
	return bw.Flush()
}

// gather snapshots the family's series — instrument-backed first, then
// collector emissions — sorted by label values for a stable exposition.
func (f *family) gather() []expoSample {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []expoSample
	for _, s := range f.series {
		smp := expoSample{labelValues: s.labelValues}
		switch {
		case s.counter != nil:
			smp.value = s.counter.sampleValue()
		case s.gauge != nil:
			smp.value = s.gauge.sampleValue()
		case s.hist != nil:
			h := s.hist.Snapshot()
			smp.hist = &h
		}
		out = append(out, smp)
	}
	for _, collect := range f.collectors {
		collect(func(labelValues []string, v float64) {
			out = append(out, expoSample{labelValues: append([]string(nil), labelValues...), value: v})
		})
	}
	for _, collect := range f.histCols {
		collect(func(labelValues []string, h HistogramSnapshot) {
			hc := h
			out = append(out, expoSample{labelValues: append([]string(nil), labelValues...), hist: &hc})
		})
	}
	sort.Slice(out, func(i, j int) bool {
		return seriesKey(out[i].labelValues) < seriesKey(out[j].labelValues)
	})
	return out
}

// writeSeries renders one sample line:
// name{label="value",...,extraName="extraValue"} 42
func writeSeries(bw *bufio.Writer, name string, labelNames, labelValues []string, extra string, v float64) {
	bw.WriteString(name)
	if len(labelNames) > 0 || extra != "" {
		bw.WriteByte('{')
		for i, ln := range labelNames {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(ln)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(labelValues[i]))
			bw.WriteByte('"')
		}
		if extra != "" {
			if len(labelNames) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(extra)
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatValue(v))
	bw.WriteByte('\n')
}

// writeHistogram renders the _bucket/_sum/_count triplet for one
// histogram series.
func writeHistogram(bw *bufio.Writer, f *family, s *expoSample) {
	h := s.hist
	for i, b := range h.Bounds {
		writeSeries(bw, f.name+"_bucket", f.labelNames, s.labelValues,
			`le="`+formatValue(b)+`"`, float64(h.Counts[i]))
	}
	writeSeries(bw, f.name+"_bucket", f.labelNames, s.labelValues, `le="+Inf"`, float64(h.Count))
	writeSeries(bw, f.name+"_sum", f.labelNames, s.labelValues, "", h.Sum)
	writeSeries(bw, f.name+"_count", f.labelNames, s.labelValues, "", float64(h.Count))
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip decimal, with the special values spelled +Inf/-Inf/NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// escapeHelp escapes a HELP text per the exposition format.
func escapeHelp(v string) string { return helpEscaper.Replace(v) }
