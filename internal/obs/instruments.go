package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; writes are a single atomic add.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) sampleValue() float64 { return float64(c.v.Load()) }

// Gauge is a float64 gauge. The zero value is ready to use; Set is one
// atomic store, Add a CAS loop.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc and Dec adjust the gauge by ±1 (in-flight style gauges).
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) sampleValue() float64 { return g.Value() }

// DefBuckets are the default duration buckets (seconds), spanning the
// sub-millisecond cache-hit path through multi-second cold simulations.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a bounded-bucket histogram: a fixed set of upper bounds
// decided at construction, per-bucket atomic counters, and an atomic
// sum. Observe is lock-free — one binary search plus two atomic ops.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	n      atomic.Uint64
}

// NewHistogram builds a histogram over the given sorted upper bounds
// (nil → DefBuckets). The +Inf bucket is implicit.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.bounds) {
		h.counts[lo].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram: bucket
// upper bounds with cumulative counts, the total count, and the sum of
// observed values.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, ascending, +Inf excluded
	Counts []uint64  // cumulative count ≤ each bound
	Count  uint64    // total observations (the +Inf cumulative count)
	Sum    float64
}

// Snapshot copies the histogram's current state with cumulative bucket
// counts (the exposition form). Concurrent observers may land between
// bucket and count loads; the skew is at most the handful of in-flight
// observations, never an inconsistency a scraper can detect as
// non-monotonic.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.bounds)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Counts[i] = cum
	}
	s.Count = cum + h.inf.Load()
	return s
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	s := v.f.seriesFor(labelValues, func(s *series) { s.counter = &Counter{} })
	return s.counter
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	s := v.f.seriesFor(labelValues, func(s *series) { s.gauge = &Gauge{} })
	return s.gauge
}
