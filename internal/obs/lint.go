package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the strict exposition validator: a line-format parser
// for the Prometheus text format that rejects anything a picky scraper
// could choke on — HELP/TYPE ordering violations, interleaved families,
// duplicate series, malformed label escaping, non-cumulative histogram
// buckets — plus the repo's naming conventions (exadigit_ prefix,
// _total/_seconds/_bytes suffixes). The exposition tests run every
// scrape through it, and scripts/metrics_lint.sh runs it against the
// fully wired registry via `exadigit metrics-lint`.

// ExpoSeries is one parsed sample line.
type ExpoSeries struct {
	Name   string            // full sample name (may carry _bucket/_sum/_count)
	Labels map[string]string // parsed label set
	Value  float64
}

// ID renders the canonical series identity (name plus sorted labels) —
// the key duplicate detection and cross-scrape comparison use.
func (s ExpoSeries) ID() string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// ExpoFamily is one parsed metric family.
type ExpoFamily struct {
	Name   string
	Help   string
	Type   string
	Series []ExpoSeries
}

// Exposition is a fully parsed and format-validated scrape.
type Exposition struct {
	Families map[string]*ExpoFamily
	order    []string
}

// FamilyNames returns the family names in exposition order.
func (e *Exposition) FamilyNames() []string { return append([]string(nil), e.order...) }

// Series returns a flat map of every sample keyed by ID — the shape the
// monotonicity test diffs across two scrapes.
func (e *Exposition) Series() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range e.Families {
		for _, s := range f.Series {
			out[s.ID()] = s.Value
		}
	}
	return out
}

// baseName strips a histogram sample suffix back to its family name.
func baseName(sample string, families map[string]*ExpoFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if b, ok := strings.CutSuffix(sample, suf); ok {
			if f, exists := families[b]; exists && f.Type == "histogram" {
				return b
			}
		}
	}
	return sample
}

// ParseExposition parses and strictly validates a text-format scrape.
// Beyond being parseable, it requires: every family introduced by a
// HELP line immediately followed by its TYPE line, each family's
// samples contiguous, no duplicate series, histogram buckets cumulative
// with a terminal +Inf equal to _count, and counter values finite and
// non-negative.
func ParseExposition(data []byte) (*Exposition, error) {
	e := &Exposition{Families: make(map[string]*ExpoFamily)}
	var cur *ExpoFamily
	var pendingHelp string
	havePendingHelp := false
	closed := make(map[string]bool) // families whose sample block ended
	seen := make(map[string]bool)   // duplicate-series detection

	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if havePendingHelp {
				return nil, fmt.Errorf("line %d: HELP not followed by TYPE", lineNo)
			}
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("line %d: malformed HELP line", lineNo)
			}
			pendingHelp = name
			havePendingHelp = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: malformed TYPE line", lineNo)
			}
			if !havePendingHelp || pendingHelp != name {
				return nil, fmt.Errorf("line %d: TYPE %s without immediately preceding HELP", lineNo, name)
			}
			havePendingHelp = false
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q for %s", lineNo, typ, name)
			}
			if _, dup := e.Families[name]; dup {
				return nil, fmt.Errorf("line %d: family %s declared twice", lineNo, name)
			}
			cur = &ExpoFamily{Name: name, Type: typ}
			e.Families[name] = cur
			e.order = append(e.order, name)
		case strings.HasPrefix(line, "#"):
			return nil, fmt.Errorf("line %d: unexpected comment %q", lineNo, line)
		default:
			if havePendingHelp {
				return nil, fmt.Errorf("line %d: HELP not followed by TYPE", lineNo)
			}
			s, err := parseSample(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			fam := baseName(s.Name, e.Families)
			f, ok := e.Families[fam]
			if !ok {
				return nil, fmt.Errorf("line %d: sample %s has no TYPE declaration", lineNo, s.Name)
			}
			if cur == nil || cur.Name != fam {
				// The sample belongs to an earlier family: interleaving.
				if closed[fam] {
					return nil, fmt.Errorf("line %d: samples for %s are not contiguous", lineNo, fam)
				}
				return nil, fmt.Errorf("line %d: sample %s under family %s block", lineNo, s.Name, familyName(cur))
			}
			if id := s.ID(); seen[id] {
				return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, id)
			} else {
				seen[id] = true
			}
			if f.Type == "counter" && (s.Value < 0 || math.IsNaN(s.Value) || math.IsInf(s.Value, 0)) {
				return nil, fmt.Errorf("line %d: counter %s has invalid value %v", lineNo, s.Name, s.Value)
			}
			f.Series = append(f.Series, s)
		}
		// A family's sample block closes when the next family opens.
		if cur != nil && len(e.order) > 1 {
			for _, n := range e.order[:len(e.order)-1] {
				closed[n] = true
			}
		}
	}
	if havePendingHelp {
		return nil, fmt.Errorf("trailing HELP %s without TYPE", pendingHelp)
	}
	for _, f := range e.Families {
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}

func familyName(f *ExpoFamily) string {
	if f == nil {
		return "(none)"
	}
	return f.Name
}

// validateHistogram checks each label set's buckets are cumulative in
// ascending le order, terminated by +Inf, and consistent with _count.
func validateHistogram(f *ExpoFamily) error {
	type group struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
	}
	groups := make(map[string]*group)
	keyOf := func(s ExpoSeries) string {
		labels := make(map[string]string, len(s.Labels))
		for k, v := range s.Labels {
			if k != "le" {
				labels[k] = v
			}
		}
		return ExpoSeries{Name: f.Name, Labels: labels}.ID()
	}
	for _, s := range f.Series {
		g := groups[keyOf(s)]
		if g == nil {
			g = &group{}
			groups[keyOf(s)] = g
		}
		switch s.Name {
		case f.Name + "_bucket":
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("obs: %s_bucket without le label", f.Name)
			}
			le, err := parseLe(leStr)
			if err != nil {
				return fmt.Errorf("obs: %s: %w", f.Name, err)
			}
			g.les = append(g.les, le)
			g.counts = append(g.counts, s.Value)
		case f.Name + "_sum":
		case f.Name + "_count":
			g.count, g.hasCnt = s.Value, true
		default:
			return fmt.Errorf("obs: unexpected sample %s in histogram %s", s.Name, f.Name)
		}
	}
	for key, g := range groups {
		if len(g.les) == 0 {
			return fmt.Errorf("obs: histogram series %s has no buckets", key)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("obs: histogram %s buckets not in ascending le order", key)
			}
			if g.counts[i] < g.counts[i-1] {
				return fmt.Errorf("obs: histogram %s buckets not cumulative", key)
			}
		}
		if !math.IsInf(g.les[len(g.les)-1], 1) {
			return fmt.Errorf("obs: histogram %s missing le=\"+Inf\" bucket", key)
		}
		if !g.hasCnt {
			return fmt.Errorf("obs: histogram %s missing _count", key)
		}
		if g.counts[len(g.counts)-1] != g.count {
			return fmt.Errorf("obs: histogram %s +Inf bucket %v != count %v",
				key, g.counts[len(g.counts)-1], g.count)
		}
	}
	return nil
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le %q", s)
	}
	return v, nil
}

// parseSample parses `name{label="value",...} 1.5` with full label
// unescaping.
func parseSample(line string) (ExpoSeries, error) {
	s := ExpoSeries{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i]) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i >= len(line) {
				return s, fmt.Errorf("unterminated label set in %q", line)
			}
			if line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && isNameChar(line[j]) {
				j++
			}
			if j == i || j >= len(line) || line[j] != '=' || j+1 >= len(line) || line[j+1] != '"' {
				return s, fmt.Errorf("malformed label in %q", line)
			}
			name := line[i:j]
			val, next, err := parseQuoted(line, j+1)
			if err != nil {
				return s, err
			}
			if _, dup := s.Labels[name]; dup {
				return s, fmt.Errorf("duplicate label %s in %q", name, line)
			}
			s.Labels[name] = val
			i = next
			if i < len(line) && line[i] == ',' {
				i++
			}
		}
	}
	if i >= len(line) || line[i] != ' ' {
		return s, fmt.Errorf("missing value in %q", line)
	}
	valStr := strings.TrimSpace(line[i+1:])
	switch valStr {
	case "+Inf":
		s.Value = math.Inf(1)
	case "-Inf":
		s.Value = math.Inf(-1)
	case "NaN":
		s.Value = math.NaN()
	default:
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return s, fmt.Errorf("bad value %q in %q", valStr, line)
		}
		s.Value = v
	}
	return s, nil
}

// parseQuoted parses a double-quoted, backslash-escaped label value
// starting at the opening quote line[start]; it returns the unescaped
// value and the index just past the closing quote.
func parseQuoted(line string, start int) (string, int, error) {
	var b strings.Builder
	i := start + 1
	for i < len(line) {
		switch line[i] {
		case '\\':
			if i+1 >= len(line) {
				return "", 0, fmt.Errorf("dangling escape in %q", line)
			}
			switch line[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("invalid escape \\%c in %q", line[i+1], line)
			}
			i += 2
		case '"':
			return b.String(), i + 1, nil
		default:
			b.WriteByte(line[i])
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated label value in %q", line)
}

func isNameChar(c byte) bool {
	return c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// ValidateConventions enforces the repo's naming rules over a parsed
// exposition: every family name carries the prefix and the kind's unit
// suffix (CheckName's rules).
func ValidateConventions(e *Exposition, prefix string) error {
	for _, name := range e.order {
		f := e.Families[name]
		if !strings.HasPrefix(name, prefix) {
			return fmt.Errorf("obs: metric %s lacks the %s prefix", name, prefix)
		}
		var kind Kind
		switch f.Type {
		case "counter":
			kind = KindCounter
		case "gauge":
			kind = KindGauge
		case "histogram":
			kind = KindHistogram
		}
		if err := CheckName(kind, name); err != nil {
			return err
		}
	}
	return nil
}
