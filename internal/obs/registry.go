// Package obs is the twin's unified observability layer: a
// dependency-free metric registry (counters, gauges, bounded-bucket
// histograms — all atomic and race-clean) with a Prometheus
// text-exposition /metrics handler, plus the per-scenario lifecycle
// tracer the sweep service emits NDJSON span records into.
//
// Every counter the service previously kept in an ad-hoc snapshot
// struct (httpmw request accounting, sweep failure/cache counters,
// store counters, solver stats) is either an obs instrument or a
// func-backed series read from its owner at scrape time, so the JSON
// snapshot endpoints and the /metrics exposition cannot drift: both
// views read the same storage.
//
// Two registration styles coexist:
//
//   - instruments (Counter, Gauge, Histogram, and their labeled *Vec
//     forms) own their storage — writers call Inc/Set/Observe on the
//     hot path, lock-free;
//   - func-backed series (CounterFunc, GaugeFunc, VecFunc,
//     HistogramFunc) are collected at scrape time from state owned
//     elsewhere — Go runtime stats, the durable store's mutex-guarded
//     counters, the live twin's last-run gauges.
//
// Metric names are validated at registration: lowercase snake case,
// counters end in _total, histograms in _seconds or _bytes. A
// malformed name is a programmer error and panics immediately rather
// than producing an unscrapable exposition.
package obs

import (
	"fmt"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Kind is a metric family's type.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

var nameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// CheckName validates a metric family name against the repo's naming
// conventions (scripts/metrics_lint.sh enforces the same rules on the
// live exposition): lowercase snake case, counters end in _total,
// histograms in _seconds or _bytes, and nothing else ends in _total.
func CheckName(kind Kind, name string) error {
	if !nameRe.MatchString(name) {
		return fmt.Errorf("obs: metric name %q is not lowercase snake case", name)
	}
	isTotal := strings.HasSuffix(name, "_total")
	switch kind {
	case KindCounter:
		if !isTotal {
			return fmt.Errorf("obs: counter %q must end in _total", name)
		}
	case KindHistogram:
		if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
			return fmt.Errorf("obs: histogram %q must end in _seconds or _bytes", name)
		}
	default:
		if isTotal {
			return fmt.Errorf("obs: non-counter %q must not end in _total", name)
		}
	}
	return nil
}

// family is one metric name: its metadata plus instrument-backed series
// and/or scrape-time collectors. A family may accumulate several
// collectors — e.g. two HTTP middleware stacks each emitting their own
// server="..." series into one shared family.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histogram families only

	mu         sync.Mutex
	series     map[string]*series // label-values key → series
	collectors []func(emit func(labelValues []string, v float64))
	histCols   []func(emit func(labelValues []string, h HistogramSnapshot))
}

// series is one instrument-backed (labelValues, storage) pair.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use; the
// instruments it hands out are lock-free on the write path.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyFor returns the family for name, creating it on first
// registration. Re-registering with an identical schema returns the
// existing family (two subsystems may share one family, each
// contributing differently labeled series); a schema mismatch panics —
// it means two call sites disagree about what the metric is.
func (r *Registry) familyFor(kind Kind, name, help string, buckets []float64, labelNames []string) *family {
	if err := CheckName(kind, name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labelNames, labelNames) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		kind:       kind,
		labelNames: labelNames,
		buckets:    buckets,
		series:     make(map[string]*series),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seriesKey joins label values into a map key. The separator cannot
// appear unescaped ambiguity-wise because it is only an internal key;
// exposition re-renders from the stored values.
func seriesKey(values []string) string { return strings.Join(values, "\x1f") }

// seriesFor returns (creating if needed) the instrument-backed series
// for the given label values. mk builds the storage on first use.
func (f *family) seriesFor(values []string, mk func(*series)) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q expects %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), values...)}
	mk(s)
	f.series[key] = s
	return s
}

// Counter registers (or returns the already-registered) unlabeled
// counter named name.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.familyFor(KindCounter, name, help, nil, nil)
	s := f.seriesFor(nil, func(s *series) { s.counter = &Counter{} })
	return s.counter
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	f := r.familyFor(KindCounter, name, help, nil, labelNames)
	return &CounterVec{f: f}
}

// Gauge registers (or returns the already-registered) unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.familyFor(KindGauge, name, help, nil, nil)
	s := f.seriesFor(nil, func(s *series) { s.gauge = &Gauge{} })
	return s.gauge
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	f := r.familyFor(KindGauge, name, help, nil, labelNames)
	return &GaugeVec{f: f}
}

// Histogram registers an unlabeled histogram with the given bucket
// upper bounds (nil → DefBuckets). The +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.familyFor(KindHistogram, name, help, buckets, nil)
	s := f.seriesFor(nil, func(s *series) { s.hist = NewHistogram(buckets) })
	return s.hist
}

// CounterFunc registers a scrape-time collected counter series: fn is
// called per scrape and must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.familyFor(KindCounter, name, help, nil, nil)
	f.mu.Lock()
	f.collectors = append(f.collectors, func(emit func([]string, float64)) { emit(nil, fn()) })
	f.mu.Unlock()
}

// GaugeFunc registers a scrape-time collected gauge series.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.familyFor(KindGauge, name, help, nil, nil)
	f.mu.Lock()
	f.collectors = append(f.collectors, func(emit func([]string, float64)) { emit(nil, fn()) })
	f.mu.Unlock()
}

// VecFunc registers a scrape-time collected labeled family of the given
// kind (counter or gauge): collect is called per scrape and emits any
// number of (labelValues, value) series. Several collectors may attach
// to one family as long as the schemas match — each typically owns a
// disjoint slice of the label space.
func (r *Registry) VecFunc(kind Kind, name, help string, labelNames []string, collect func(emit func(labelValues []string, v float64))) {
	if kind == KindHistogram {
		panic("obs: VecFunc does not accept histograms; use HistogramFunc")
	}
	f := r.familyFor(kind, name, help, nil, labelNames)
	f.mu.Lock()
	f.collectors = append(f.collectors, collect)
	f.mu.Unlock()
}

// HistogramFunc registers a scrape-time collected labeled histogram
// family: collect emits (labelValues, snapshot) pairs, letting an
// instrument owned elsewhere (e.g. the HTTP middleware's latency
// histogram) appear in the exposition without double bookkeeping.
func (r *Registry) HistogramFunc(name, help string, labelNames []string, buckets []float64, collect func(emit func(labelValues []string, h HistogramSnapshot))) {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.familyFor(KindHistogram, name, help, buckets, labelNames)
	f.mu.Lock()
	f.histCols = append(f.histCols, collect)
	f.mu.Unlock()
}

// Handler serves the exposition at GET — mount as /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Write(w)
	})
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
