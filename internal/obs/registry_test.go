package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func mustWrite(t *testing.T, r *Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustParse(t *testing.T, data []byte) *Exposition {
	t.Helper()
	e, err := ParseExposition(data)
	if err != nil {
		t.Fatalf("exposition failed strict validation: %v\n%s", err, data)
	}
	return e
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("exadigit_test_events_total", "Test events.")
	c.Add(3)
	g := r.Gauge("exadigit_test_depth", "Test depth.")
	g.Set(2.5)
	cv := r.CounterVec("exadigit_test_routed_total", "Routed.", "route", "code")
	cv.With("/api/sweeps", "2xx").Add(7)
	cv.With("/api/sweeps", "5xx").Inc()

	e := mustParse(t, mustWrite(t, r))
	series := e.Series()
	checks := map[string]float64{
		`exadigit_test_events_total{}`: 3,
		`exadigit_test_depth{}`:        2.5,
		`exadigit_test_routed_total{code="2xx",route="/api/sweeps"}`: 7,
		`exadigit_test_routed_total{code="5xx",route="/api/sweeps"}`: 1,
	}
	for id, want := range checks {
		if got, ok := series[id]; !ok || got != want {
			t.Errorf("series %s = %v (present=%v), want %v", id, got, ok, want)
		}
	}
	if err := ValidateConventions(e, "exadigit_"); err != nil {
		t.Errorf("conventions: %v", err)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("exadigit_test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	e := mustParse(t, mustWrite(t, r))
	s := e.Series()
	wants := map[string]float64{
		`exadigit_test_latency_seconds_bucket{le="0.1"}`:  1,
		`exadigit_test_latency_seconds_bucket{le="1"}`:    3,
		`exadigit_test_latency_seconds_bucket{le="10"}`:   4,
		`exadigit_test_latency_seconds_bucket{le="+Inf"}`: 5,
		`exadigit_test_latency_seconds_count{}`:           5,
	}
	for id, want := range wants {
		if s[id] != want {
			t.Errorf("%s = %v, want %v", id, s[id], want)
		}
	}
	if got, want := s[`exadigit_test_latency_seconds_sum{}`], 56.05; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d", h.Count())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("exadigit_test_weird", "Weird labels.", "path")
	gv.With("a\"b\\c\nd").Set(1)
	e := mustParse(t, mustWrite(t, r))
	f := e.Families["exadigit_test_weird"]
	if f == nil || len(f.Series) != 1 {
		t.Fatalf("family missing: %+v", e.Families)
	}
	if got := f.Series[0].Labels["path"]; got != "a\"b\\c\nd" {
		t.Errorf("round-tripped label = %q", got)
	}
}

func TestFuncBackedSeries(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.CounterFunc("exadigit_test_pulls_total", "Pulls.", func() float64 { n++; return n })
	r.VecFunc(KindGauge, "exadigit_test_power_watts", "Power.", []string{"partition"},
		func(emit func([]string, float64)) {
			emit([]string{"0"}, 10e6)
			emit([]string{"1"}, 5e6)
		})
	e := mustParse(t, mustWrite(t, r))
	s := e.Series()
	if s[`exadigit_test_pulls_total{}`] != 42 {
		t.Errorf("func counter = %v", s[`exadigit_test_pulls_total{}`])
	}
	if s[`exadigit_test_power_watts{partition="1"}`] != 5e6 {
		t.Errorf("vec func = %v", s[`exadigit_test_power_watts{partition="1"}`])
	}
}

func TestSharedFamilyAcrossRegistrations(t *testing.T) {
	r := NewRegistry()
	// Two subsystems each attach a collector to the same family — the
	// dashboard and sweep middleware stacks sharing one registry.
	for _, server := range []string{"dashboard", "sweeps"} {
		srv := server
		r.VecFunc(KindCounter, "exadigit_test_http_requests_total", "Requests.",
			[]string{"server"},
			func(emit func([]string, float64)) { emit([]string{srv}, 1) })
	}
	e := mustParse(t, mustWrite(t, r))
	f := e.Families["exadigit_test_http_requests_total"]
	if f == nil || len(f.Series) != 2 {
		t.Fatalf("expected one family with 2 series, got %+v", f)
	}
}

func TestNamingEnforcedAtRegistration(t *testing.T) {
	r := NewRegistry()
	for _, tc := range []func(){
		func() { r.Counter("exadigit_bad_counter", "no _total") },
		func() { r.Gauge("exadigit_bad_gauge_total", "gauge with _total") },
		func() { r.Histogram("exadigit_bad_hist", "no unit", nil) },
		func() { r.Counter("Exadigit_Caps_total", "caps") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad name registration did not panic")
				}
			}()
			tc()
		}()
	}
	// Schema mismatch on re-registration panics too.
	r.Counter("exadigit_ok_total", "ok")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("schema mismatch did not panic")
			}
		}()
		r.Gauge("exadigit_ok_total", "now a gauge")
	}()
}

func TestValidatorRejectsMalformed(t *testing.T) {
	bad := map[string]string{
		"duplicate series": `# HELP exadigit_x_total X.
# TYPE exadigit_x_total counter
exadigit_x_total 1
exadigit_x_total 2
`,
		"type without help": `# TYPE exadigit_x_total counter
exadigit_x_total 1
`,
		"sample without type": `exadigit_x_total 1
`,
		"interleaved families": `# HELP exadigit_a A.
# TYPE exadigit_a gauge
exadigit_a 1
# HELP exadigit_b B.
# TYPE exadigit_b gauge
exadigit_a 2
`,
		"negative counter": `# HELP exadigit_x_total X.
# TYPE exadigit_x_total counter
exadigit_x_total -1
`,
		"non-cumulative histogram": `# HELP exadigit_h_seconds H.
# TYPE exadigit_h_seconds histogram
exadigit_h_seconds_bucket{le="1"} 5
exadigit_h_seconds_bucket{le="2"} 3
exadigit_h_seconds_bucket{le="+Inf"} 5
exadigit_h_seconds_sum 1
exadigit_h_seconds_count 5
`,
		"histogram without inf": `# HELP exadigit_h_seconds H.
# TYPE exadigit_h_seconds histogram
exadigit_h_seconds_bucket{le="1"} 5
exadigit_h_seconds_sum 1
exadigit_h_seconds_count 5
`,
	}
	for name, text := range bad {
		if _, err := ParseExposition([]byte(text)); err == nil {
			t.Errorf("%s: validator accepted malformed exposition", name)
		}
	}
}

func TestConventionViolationsCaught(t *testing.T) {
	text := `# HELP other_metric X.
# TYPE other_metric gauge
other_metric 1
`
	e := mustParse(t, []byte(text))
	if err := ValidateConventions(e, "exadigit_"); err == nil {
		t.Error("missing prefix not caught")
	}
}

func TestConcurrentInstrumentsRaceClean(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("exadigit_race_total", "race")
	g := r.Gauge("exadigit_race_depth", "race")
	h := r.Histogram("exadigit_race_lat_seconds", "race", nil)
	cv := r.CounterVec("exadigit_race_routed_total", "race", "route")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j) / 100)
				cv.With("/r").Inc()
			}
		}(i)
	}
	// Scrape concurrently with the writers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			for j := 0; j < 20; j++ {
				buf.Reset()
				if err := r.Write(&buf); err != nil {
					t.Error(err)
				}
				if _, err := ParseExposition(buf.Bytes()); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v", g.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d", h.Count())
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("exadigit_test_x", "multi\nline \\help")
	out := string(mustWrite(t, r))
	if !strings.Contains(out, `multi\nline \\help`) {
		t.Errorf("help not escaped: %s", out)
	}
	mustParse(t, []byte(out))
}
