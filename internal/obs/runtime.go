package obs

import "runtime"

// RegisterGoCollector registers the Go runtime gauges — goroutine
// count, heap sizes, GC cycle and pause accounting — read at scrape
// time. One runtime.ReadMemStats per scrape (the collectors share a
// single read via the emit closure), which is negligible at scrape
// cadence.
func RegisterGoCollector(r *Registry) {
	r.GaugeFunc("exadigit_go_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.VecFunc(KindGauge, "exadigit_go_memstats_bytes",
		"Go runtime memory accounting by area (heap_alloc, heap_sys, stack_sys).",
		[]string{"area"},
		func(emit func([]string, float64)) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			emit([]string{"heap_alloc"}, float64(ms.HeapAlloc))
			emit([]string{"heap_sys"}, float64(ms.HeapSys))
			emit([]string{"stack_sys"}, float64(ms.StackSys))
		})
	r.CounterFunc("exadigit_go_gc_cycles_total",
		"Completed GC cycles since process start.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
	r.CounterFunc("exadigit_go_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
}
