package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Per-scenario lifecycle tracing: every scenario a sweep works through
// emits one Span when it reaches a terminal state —
// submit → queue-wait → attempt[n]{wait, run} with durations, the cache
// tier that served it, and the terminal status. Spans land in a ring
// buffer served as NDJSON at /api/sweeps/trace and, when the server
// runs with -trace FILE, in an append-only NDJSON sink, so a chaos
// run's retry/timeout timeline is reconstructable after the fact.

// AttemptSpan is one simulation attempt inside a scenario span.
type AttemptSpan struct {
	// Attempt is 1-based.
	Attempt int `json:"attempt"`
	// WaitSec is the time this attempt spent waiting for a worker slot.
	WaitSec float64 `json:"wait_sec"`
	// RunSec is the simulation wall time of this attempt.
	RunSec float64 `json:"run_sec"`
	// Outcome is "ok", "error", "panic", "timeout", or "cancelled".
	Outcome string `json:"outcome"`
	// Error carries the attempt's failure message for non-ok outcomes.
	Error string `json:"error,omitempty"`
}

// Span is one scenario's recorded lifecycle.
type Span struct {
	// Time is when the scenario reached its terminal state.
	Time time.Time `json:"time"`
	// Sweep and Index identify the scenario within its sweep; the
	// content hashes identify it globally.
	Sweep        string `json:"sweep"`
	Index        int    `json:"index"`
	Scenario     string `json:"scenario,omitempty"`
	SpecHash     string `json:"spec_hash"`
	ScenarioHash string `json:"scenario_hash"`
	// State is the terminal ScenarioState (done/cached/failed/cancelled).
	State string `json:"state"`
	// CacheTier is which tier resolved the scenario: "memory" (waiter on
	// an in-memory entry), "disk" (durable store hit), "compute" (a
	// simulation ran), or "none" (failed or cancelled before resolution).
	CacheTier string `json:"cache_tier"`
	Error     string `json:"error,omitempty"`
	// Recovered marks spans emitted by a sweep that was re-adopted from
	// the durable journal after a restart (tier "journal" for scenarios
	// whose terminal state was restored rather than recomputed).
	Recovered bool `json:"recovered,omitempty"`
	// CompileSec is the sweep's spec-compile time (zero when the compiled
	// spec was shared from a previous sweep); QueueSec the wait from
	// submission to the first attempt's worker slot (or to the terminal
	// state when no attempt ran); TotalSec submission to terminal.
	CompileSec float64 `json:"compile_sec,omitempty"`
	QueueSec   float64 `json:"queue_sec"`
	TotalSec   float64 `json:"total_sec"`
	// StoreWriteSec is the durable-store persist time (leader scenarios
	// with a store configured only).
	StoreWriteSec float64 `json:"store_write_sec,omitempty"`
	// Attempts lists each simulation attempt; empty for scenarios served
	// from a cache tier or cancelled before dispatch.
	Attempts []AttemptSpan `json:"attempts,omitempty"`
}

// Tracer is the bounded span store: a fixed-capacity ring buffer plus
// an optional NDJSON sink. Emit is cheap (one lock, one slice write; a
// sink write when configured) and safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	ring    []Span
	next    int
	full    bool
	total   uint64
	sink    io.Writer
	sinkErr error
}

// NewTracer builds a tracer retaining the last capacity spans
// (capacity ≤ 0 → 1024).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// SetSink attaches an NDJSON writer that receives every span as one
// JSON line (nil detaches). The tracer serializes writes; the writer
// does not need to be concurrency-safe. The first write error detaches
// the sink (readable via SinkErr) rather than failing span emission.
func (t *Tracer) SetSink(w io.Writer) {
	t.mu.Lock()
	t.sink, t.sinkErr = w, nil
	t.mu.Unlock()
}

// SinkErr returns the write error that detached the sink, if any.
func (t *Tracer) SinkErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

// Emit records one span.
func (t *Tracer) Emit(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next, t.full = 0, true
	}
	t.total++
	if t.sink != nil {
		b, err := json.Marshal(s)
		if err == nil {
			b = append(b, '\n')
			_, err = t.sink.Write(b)
		}
		if err != nil {
			t.sinkErr, t.sink = err, nil
		}
	}
}

// Total returns how many spans have been emitted since start (including
// those the ring has since overwritten).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained spans, oldest first.
func (t *Tracer) Snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Span(nil), t.ring[:t.next]...)
	}
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Handler serves the retained spans as NDJSON, oldest first. ?limit=N
// restricts the response to the most recent N spans.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		spans := t.Snapshot()
		if s := r.URL.Query().Get("limit"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(spans) {
				spans = spans[len(spans)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for i := range spans {
			if err := enc.Encode(&spans[i]); err != nil {
				return
			}
		}
	})
}
