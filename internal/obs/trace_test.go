package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func span(i int) Span {
	return Span{
		Time:         time.Unix(int64(i), 0).UTC(),
		Sweep:        "sw-1",
		Index:        i,
		ScenarioHash: fmt.Sprintf("%04x", i),
		State:        "done",
		CacheTier:    "compute",
		TotalSec:     float64(i),
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(span(i))
	}
	got := tr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d spans, want 4", len(got))
	}
	for i, s := range got {
		if s.Index != 6+i {
			t.Errorf("span %d has index %d, want %d (oldest-first order)", i, s.Index, 6+i)
		}
	}
	if tr.Total() != 10 {
		t.Errorf("total = %d", tr.Total())
	}
}

func TestTracerSinkNDJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(2)
	tr.SetSink(&buf)
	for i := 0; i < 5; i++ {
		tr.Emit(span(i))
	}
	// Every span reaches the sink even though the ring only holds 2.
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("sink line %d: %v", n, err)
		}
		if s.Index != n {
			t.Errorf("sink line %d has index %d", n, s.Index)
		}
		n++
	}
	if n != 5 {
		t.Errorf("sink received %d lines, want 5", n)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestTracerSinkErrorDetaches(t *testing.T) {
	tr := NewTracer(2)
	tr.SetSink(failWriter{})
	tr.Emit(span(0))
	if tr.SinkErr() == nil {
		t.Fatal("sink error not recorded")
	}
	// Emission keeps working without the sink.
	tr.Emit(span(1))
	if len(tr.Snapshot()) != 2 {
		t.Error("emission stopped after sink failure")
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 6; i++ {
		tr.Emit(span(i))
	}
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "?limit=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []Span
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, s)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d spans, want 3", len(lines))
	}
	if lines[0].Index != 3 || lines[2].Index != 5 {
		t.Errorf("limit did not keep the most recent spans: %+v", lines)
	}
}
