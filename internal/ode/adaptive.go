package ode

import (
	"fmt"
	"math"

	"exadigit/internal/la"
)

// AdaptiveMethod names an embedded Runge–Kutta pair.
type AdaptiveMethod int

const (
	// DOPRI5 is the Dormand–Prince 5(4) pair (7 stages; ode45's method).
	DOPRI5 AdaptiveMethod = iota
	// RKF45 is Fehlberg's classic 4(5) pair (6 stages).
	RKF45
)

// String returns the method name.
func (m AdaptiveMethod) String() string {
	switch m {
	case DOPRI5:
		return "dopri5"
	case RKF45:
		return "rkf45"
	}
	return fmt.Sprintf("adaptive(%d)", int(m))
}

// rkPair is one embedded pair's Butcher tableau in slice form: the
// higher-order weights propagate the solution, the lower-order weights
// supply the error estimate.
type rkPair struct {
	stages     int
	a          []float64
	b          [][]float64
	cHigh, cLo []float64
}

var (
	pairRKF45 = &rkPair{
		stages: 6,
		a:      rkfA[:],
		b: [][]float64{
			rkfB[0][:], rkfB[1][:], rkfB[2][:],
			rkfB[3][:], rkfB[4][:], rkfB[5][:],
		},
		cHigh: rkfC5[:],
		cLo:   rkfC4[:],
	}
	pairDOPRI5 = &rkPair{
		stages: 7,
		a:      dpA[:],
		b: [][]float64{
			dpB[0][:], dpB[1][:], dpB[2][:], dpB[3][:],
			dpB[4][:], dpB[5][:], dpB[6][:],
		},
		cHigh: dpC5[:],
		cLo:   dpC4[:],
	}
)

func pairFor(m AdaptiveMethod) *rkPair {
	if m == RKF45 {
		return pairRKF45
	}
	return pairDOPRI5
}

// AdaptiveStepper advances a System with an embedded Runge–Kutta pair
// under mixed absolute/relative error control. Unlike the standalone
// IntegrateAdaptive/IntegrateDormandPrince entry points, the stepper is
// persistent: its stage buffers are allocated once at construction and
// the accepted step size is carried (warm-started) across Integrate
// calls, so a hot loop that repeatedly integrates short spans — the
// cooling plant's control periods — performs no per-call allocation and
// no per-call step-size rediscovery.
type AdaptiveStepper struct {
	sys  System
	pair *rkPair
	cfg  AdaptiveConfig

	// stage and state scratch, sized to sys.Dim() at construction
	k          [][]float64
	ytmp       []float64
	yhi, ylo   []float64
	h          float64 // warm-started step suggestion; 0 until first use
	cumulative AdaptiveStats
}

// NewAdaptiveStepper builds a persistent stepper for sys. The config's
// zero fields are defaulted per Integrate call relative to that call's
// span, exactly as the standalone entry points default them.
func NewAdaptiveStepper(sys System, method AdaptiveMethod, cfg AdaptiveConfig) *AdaptiveStepper {
	n := sys.Dim()
	p := pairFor(method)
	s := &AdaptiveStepper{
		sys: sys, pair: p, cfg: cfg,
		k:    make([][]float64, p.stages),
		ytmp: make([]float64, n),
		yhi:  make([]float64, n),
		ylo:  make([]float64, n),
	}
	for i := range s.k {
		s.k[i] = make([]float64, n)
	}
	return s
}

// Stats returns the cumulative step accounting across every Integrate
// call since construction (or the last Reset).
func (s *AdaptiveStepper) Stats() AdaptiveStats { return s.cumulative }

// Reset clears the warm-started step size and the cumulative stats.
func (s *AdaptiveStepper) Reset() {
	s.h = 0
	s.cumulative = AdaptiveStats{}
}

// Integrate advances y in place from t0 to t1 and returns this call's
// step accounting. The accepted step size is retained as the warm start
// for the next call.
func (s *AdaptiveStepper) Integrate(t0, t1 float64, y []float64) (AdaptiveStats, error) {
	var st AdaptiveStats
	if t1 <= t0 {
		return st, nil
	}
	cfg := s.cfg
	cfg.defaults(t1 - t0)
	n := s.sys.Dim()
	if len(y) != n {
		return st, fmt.Errorf("ode: state length %d != dim %d", len(y), n)
	}
	hSug := s.h
	if hSug <= 0 {
		hSug = math.Min(cfg.HInit, cfg.HMax)
	}
	hSug = math.Max(cfg.HMin, math.Min(hSug, cfg.HMax))

	p := s.pair
	t := t0
	for t < t1 {
		if st.Accepted+st.Rejected > cfg.MaxSteps {
			s.accumulate(st)
			return st, fmt.Errorf("%w: exceeded %d steps", ErrStepFailed, cfg.MaxSteps)
		}
		h := hSug
		if t+h > t1 {
			h = t1 - t
		}
		for stage := 0; stage < p.stages; stage++ {
			copy(s.ytmp, y)
			for j := 0; j < stage; j++ {
				la.AXPY(h*p.b[stage][j], s.k[j], s.ytmp)
			}
			s.sys.Derivatives(t+p.a[stage]*h, s.ytmp, s.k[stage])
		}
		copy(s.yhi, y)
		copy(s.ylo, y)
		for stage := 0; stage < p.stages; stage++ {
			la.AXPY(h*p.cHigh[stage], s.k[stage], s.yhi)
			la.AXPY(h*p.cLo[stage], s.k[stage], s.ylo)
		}
		// Error estimate scaled by mixed absolute/relative tolerance.
		errNorm := 0.0
		for i := 0; i < n; i++ {
			sc := cfg.AbsTol + cfg.RelTol*math.Max(math.Abs(y[i]), math.Abs(s.yhi[i]))
			e := math.Abs(s.yhi[i]-s.ylo[i]) / sc
			if e > errNorm {
				errNorm = e
			}
		}
		if errNorm <= 1 || h <= cfg.HMin {
			t += h
			copy(y, s.yhi)
			st.Accepted++
			st.LastStep = h
		} else {
			st.Rejected++
		}
		// Classic step-size update with safety factor.
		if errNorm == 0 {
			hSug = cfg.HMax
		} else {
			hSug = h * 0.9 * math.Pow(errNorm, -0.2)
		}
		hSug = math.Max(cfg.HMin, math.Min(hSug, cfg.HMax))
		if math.IsNaN(errNorm) || math.IsInf(errNorm, 0) {
			s.accumulate(st)
			return st, fmt.Errorf("%w: non-finite error estimate at t=%g", ErrStepFailed, t)
		}
	}
	s.h = hSug
	s.accumulate(st)
	return st, nil
}

func (s *AdaptiveStepper) accumulate(st AdaptiveStats) {
	s.cumulative.Accepted += st.Accepted
	s.cumulative.Rejected += st.Rejected
	if st.LastStep > 0 {
		s.cumulative.LastStep = st.LastStep
	}
}
