package ode

import (
	"math"
	"testing"
)

// stiffLinear is y' = -200(y - sin t) + cos t with exact solution
// y(t) = sin t + (y0 − sin 0)·e^{−200t}: a stiff linear test problem
// whose transient dies in ~25 ms and whose smooth tail tracks sin t.
var stiffLinear = Func{N: 1, F: func(t float64, y, dydt []float64) {
	dydt[0] = -200*(y[0]-math.Sin(t)) + math.Cos(t)
}}

func TestAdaptiveStepperMatchesStandalone(t *testing.T) {
	cfg := AdaptiveConfig{RelTol: 1e-9, AbsTol: 1e-12}
	for _, m := range []AdaptiveMethod{RKF45, DOPRI5} {
		y := []float64{1}
		s := NewAdaptiveStepper(decay, m, cfg)
		if _, err := s.Integrate(0, 5, y); err != nil {
			t.Fatal(err)
		}
		if math.Abs(y[0]-math.Exp(-5)) > 1e-8 {
			t.Errorf("%v: y(5) = %v, want %v", m, y[0], math.Exp(-5))
		}
	}
}

// TestAdaptiveConvergenceWithTolerance pins error control: tightening
// the tolerance by 10³ must tighten the achieved global error by at
// least ~10² on an analytic linear system.
func TestAdaptiveConvergenceWithTolerance(t *testing.T) {
	sys := Func{N: 2, F: func(t float64, y, dydt []float64) {
		dydt[0] = -2*y[0] + y[1]
		dydt[1] = y[0] - 2*y[1]
	}}
	exact := func() (float64, float64) {
		return 0.5*math.Exp(-1) + 0.5*math.Exp(-3), 0.5*math.Exp(-1) - 0.5*math.Exp(-3)
	}
	w0, w1 := exact()
	run := func(tol float64) float64 {
		y := []float64{1, 0}
		st, err := IntegrateDormandPrince(sys, 0, 1, y, AdaptiveConfig{RelTol: tol, AbsTol: tol * 1e-2})
		if err != nil {
			t.Fatal(err)
		}
		if st.Accepted == 0 {
			t.Fatal("no accepted steps")
		}
		return math.Max(math.Abs(y[0]-w0), math.Abs(y[1]-w1))
	}
	loose := run(1e-4)
	tight := run(1e-7)
	if tight*100 > loose && loose > 1e-12 {
		t.Errorf("error did not contract with tolerance: loose %v, tight %v", loose, tight)
	}
}

// TestAdaptiveStiffAccounting pins the step-rejection accounting on a
// stiff problem driven from a too-large initial step: rejections must be
// counted and the solution must still land on the analytic answer.
func TestAdaptiveStiffAccounting(t *testing.T) {
	y := []float64{2}
	s := NewAdaptiveStepper(stiffLinear, DOPRI5, AdaptiveConfig{RelTol: 1e-7, AbsTol: 1e-9, HInit: 0.5})
	st, err := s.Integrate(0, 1, y)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected == 0 {
		t.Error("stiff transient with HInit=0.5 should reject at least one step")
	}
	want := math.Sin(1) + 2*math.Exp(-200)
	if math.Abs(y[0]-want) > 1e-5 {
		t.Errorf("y(1) = %v, want %v", y[0], want)
	}
	total := s.Stats()
	if total.Accepted != st.Accepted || total.Rejected != st.Rejected {
		t.Errorf("cumulative stats %+v != call stats %+v", total, st)
	}
}

// TestAdaptiveStepperWarmStart pins the carried step size: on a smooth
// problem, a second identical span needs no step-size rediscovery, so it
// takes no more accepted steps than the first and starts from the
// previously accepted step.
func TestAdaptiveStepperWarmStart(t *testing.T) {
	s := NewAdaptiveStepper(oscillator, DOPRI5, AdaptiveConfig{RelTol: 1e-6, AbsTol: 1e-9})
	y := []float64{1, 0}
	first, err := s.Integrate(0, 1, y)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Integrate(1, 2, y)
	if err != nil {
		t.Fatal(err)
	}
	if second.Accepted > first.Accepted {
		t.Errorf("warm start regressed: %d accepted steps then %d", first.Accepted, second.Accepted)
	}
	s.Reset()
	if st := s.Stats(); st.Accepted != 0 || st.Rejected != 0 {
		t.Errorf("Reset left stats %+v", st)
	}
}

// TestAdaptiveStepperDoesNotAllocate pins the persistent stepper's
// allocation-freedom across Integrate calls — the property the cooling
// hot path depends on (the standalone entry points allocate their stage
// vectors per call).
func TestAdaptiveStepperDoesNotAllocate(t *testing.T) {
	sys := Func{N: 8, F: func(t float64, y, dydt []float64) {
		for i := range y {
			dydt[i] = -0.1 * (y[i] - 20)
		}
	}}
	s := NewAdaptiveStepper(sys, DOPRI5, AdaptiveConfig{RelTol: 1e-6, AbsTol: 1e-8})
	y := make([]float64, 8)
	for i := range y {
		y[i] = 30
	}
	if _, err := s.Integrate(0, 1, y); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.Integrate(0, 1, y); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Integrate allocates %.0f objects/call; want 0", allocs)
	}
}

func TestAdaptiveStepperValidation(t *testing.T) {
	s := NewAdaptiveStepper(decay, RKF45, AdaptiveConfig{})
	y := []float64{1}
	if _, err := s.Integrate(3, 3, y); err != nil || y[0] != 1 {
		t.Error("zero span should no-op")
	}
	if _, err := s.Integrate(0, 1, []float64{1, 2}); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestAdaptiveMethodString(t *testing.T) {
	if DOPRI5.String() != "dopri5" || RKF45.String() != "rkf45" {
		t.Error("method names wrong")
	}
	if AdaptiveMethod(9).String() == "" {
		t.Error("unknown method should still produce a name")
	}
}
