package ode

import (
	"fmt"
	"math"

	"exadigit/internal/la"
)

// Dormand–Prince 5(4) coefficients (the RK45 pair behind MATLAB's ode45
// and SciPy's default solver). Seven stages; the 5th-order solution
// propagates, the embedded 4th-order solution provides the error
// estimate.
var (
	dpA = [7]float64{0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1, 1}
	dpB = [7][6]float64{
		{},
		{1.0 / 5},
		{3.0 / 40, 9.0 / 40},
		{44.0 / 45, -56.0 / 15, 32.0 / 9},
		{19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
		{9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
		{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
	}
	dpC5 = [7]float64{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84, 0}
	dpC4 = [7]float64{5179.0 / 57600, 0, 7571.0 / 16695, 393.0 / 640, -92097.0 / 339200, 187.0 / 2100, 1.0 / 40}
)

// IntegrateDormandPrince advances y from t0 to t1 with the Dormand–Prince
// 5(4) embedded pair under the same tolerance control as
// IntegrateAdaptive. It is one order higher than RKF45 per step and is
// provided for accuracy cross-checks of the cooling model's transients.
func IntegrateDormandPrince(sys System, t0, t1 float64, y []float64, cfg AdaptiveConfig) (AdaptiveStats, error) {
	var st AdaptiveStats
	if t1 <= t0 {
		return st, nil
	}
	cfg.defaults(t1 - t0)
	n := sys.Dim()
	if len(y) != n {
		return st, fmt.Errorf("ode: state length %d != dim %d", len(y), n)
	}
	k := make([][]float64, 7)
	for i := range k {
		k[i] = make([]float64, n)
	}
	ytmp := make([]float64, n)
	y5 := make([]float64, n)
	y4 := make([]float64, n)

	t := t0
	h := math.Min(cfg.HInit, cfg.HMax)
	for t < t1 {
		if st.Accepted+st.Rejected > cfg.MaxSteps {
			return st, fmt.Errorf("%w: exceeded %d steps", ErrStepFailed, cfg.MaxSteps)
		}
		if t+h > t1 {
			h = t1 - t
		}
		for stage := 0; stage < 7; stage++ {
			copy(ytmp, y)
			for j := 0; j < stage; j++ {
				la.AXPY(h*dpB[stage][j], k[j], ytmp)
			}
			sys.Derivatives(t+dpA[stage]*h, ytmp, k[stage])
		}
		copy(y5, y)
		copy(y4, y)
		for stage := 0; stage < 7; stage++ {
			la.AXPY(h*dpC5[stage], k[stage], y5)
			la.AXPY(h*dpC4[stage], k[stage], y4)
		}
		errNorm := 0.0
		for i := 0; i < n; i++ {
			sc := cfg.AbsTol + cfg.RelTol*math.Max(math.Abs(y[i]), math.Abs(y5[i]))
			e := math.Abs(y5[i]-y4[i]) / sc
			if e > errNorm {
				errNorm = e
			}
		}
		if errNorm <= 1 || h <= cfg.HMin {
			t += h
			copy(y, y5)
			st.Accepted++
			st.LastStep = h
		} else {
			st.Rejected++
		}
		if errNorm == 0 {
			h = cfg.HMax
		} else {
			h *= 0.9 * math.Pow(errNorm, -0.2)
		}
		h = math.Max(cfg.HMin, math.Min(h, cfg.HMax))
		if math.IsNaN(errNorm) || math.IsInf(errNorm, 0) {
			return st, fmt.Errorf("%w: non-finite error estimate at t=%g", ErrStepFailed, t)
		}
	}
	return st, nil
}
