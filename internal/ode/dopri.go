package ode

// Dormand–Prince 5(4) coefficients (the RK45 pair behind MATLAB's ode45
// and SciPy's default solver). Seven stages; the 5th-order solution
// propagates, the embedded 4th-order solution provides the error
// estimate.
var (
	dpA = [7]float64{0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1, 1}
	dpB = [7][6]float64{
		{},
		{1.0 / 5},
		{3.0 / 40, 9.0 / 40},
		{44.0 / 45, -56.0 / 15, 32.0 / 9},
		{19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
		{9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
		{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
	}
	dpC5 = [7]float64{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84, 0}
	dpC4 = [7]float64{5179.0 / 57600, 0, 7571.0 / 16695, 393.0 / 640, -92097.0 / 339200, 187.0 / 2100, 1.0 / 40}
)

// IntegrateDormandPrince advances y from t0 to t1 with the Dormand–Prince
// 5(4) embedded pair under the same tolerance control as
// IntegrateAdaptive. It is one order higher than RKF45 per step and is
// provided for accuracy cross-checks of the cooling model's transients.
// It is a convenience wrapper over a one-shot AdaptiveStepper; hot loops
// that integrate repeatedly should hold a persistent stepper instead.
func IntegrateDormandPrince(sys System, t0, t1 float64, y []float64, cfg AdaptiveConfig) (AdaptiveStats, error) {
	return NewAdaptiveStepper(sys, DOPRI5, cfg).Integrate(t0, t1, y)
}
