// Package ode implements the ordinary-differential-equation integrators
// that substitute for the Modelica/Dymola solver stack used by the paper's
// cooling model. The thermo-fluid network is a small (tens of states),
// mildly stiff lumped-parameter system, so we provide:
//
//   - explicit fixed-step methods (Euler, Heun, classic RK4) for fast,
//     predictable stepping at the 1 s plant time step;
//   - an adaptive embedded Runge–Kutta-Fehlberg 4(5) method for accuracy
//     studies and for components with fast local dynamics;
//   - an implicit (backward) Euler method with a damped Newton iteration
//     and finite-difference Jacobians for stiff configurations.
//
// All integrators operate on the System interface and never retain caller
// slices across calls, so a single System may be advanced by different
// integrators in sequence (e.g. implicit start-up transient, explicit
// steady operation).
package ode

import (
	"errors"
	"fmt"
	"math"

	"exadigit/internal/la"
)

// System is a first-order ODE system y' = f(t, y).
type System interface {
	// Dim returns the number of state variables.
	Dim() int
	// Derivatives writes f(t, y) into dydt. Implementations must not
	// retain y or dydt.
	Derivatives(t float64, y, dydt []float64)
}

// Func adapts a plain function to the System interface.
type Func struct {
	N int
	F func(t float64, y, dydt []float64)
}

// Dim implements System.
func (f Func) Dim() int { return f.N }

// Derivatives implements System.
func (f Func) Derivatives(t float64, y, dydt []float64) { f.F(t, y, dydt) }

// ErrStepFailed is returned when an integrator cannot complete a step
// (e.g. Newton divergence or step-size underflow).
var ErrStepFailed = errors.New("ode: step failed")

// Method names a fixed-step explicit scheme.
type Method int

const (
	// Euler is the 1st-order forward Euler method.
	Euler Method = iota
	// Heun is the 2nd-order explicit trapezoidal (Heun) method.
	Heun
	// RK4 is the classic 4th-order Runge–Kutta method.
	RK4
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case Euler:
		return "euler"
	case Heun:
		return "heun"
	case RK4:
		return "rk4"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// FixedStepper advances a System with a fixed-step explicit method.
// The zero value is not usable; call NewFixedStepper.
type FixedStepper struct {
	sys    System
	method Method
	// scratch buffers sized to sys.Dim(), reused across steps to avoid
	// per-step allocation in the simulation hot loop.
	k1, k2, k3, k4, tmp []float64
}

// NewFixedStepper builds a stepper for sys using the given method.
func NewFixedStepper(sys System, method Method) *FixedStepper {
	n := sys.Dim()
	return &FixedStepper{
		sys: sys, method: method,
		k1: make([]float64, n), k2: make([]float64, n),
		k3: make([]float64, n), k4: make([]float64, n),
		tmp: make([]float64, n),
	}
}

// Step advances y in place from t by h and returns t+h.
func (s *FixedStepper) Step(t float64, y []float64, h float64) float64 {
	n := s.sys.Dim()
	if len(y) != n {
		panic("ode: state length mismatch")
	}
	switch s.method {
	case Euler:
		s.sys.Derivatives(t, y, s.k1)
		la.AXPY(h, s.k1, y)
	case Heun:
		s.sys.Derivatives(t, y, s.k1)
		copy(s.tmp, y)
		la.AXPY(h, s.k1, s.tmp)
		s.sys.Derivatives(t+h, s.tmp, s.k2)
		for i := 0; i < n; i++ {
			y[i] += h * 0.5 * (s.k1[i] + s.k2[i])
		}
	case RK4:
		s.sys.Derivatives(t, y, s.k1)
		copy(s.tmp, y)
		la.AXPY(h/2, s.k1, s.tmp)
		s.sys.Derivatives(t+h/2, s.tmp, s.k2)
		copy(s.tmp, y)
		la.AXPY(h/2, s.k2, s.tmp)
		s.sys.Derivatives(t+h/2, s.tmp, s.k3)
		copy(s.tmp, y)
		la.AXPY(h, s.k3, s.tmp)
		s.sys.Derivatives(t+h, s.tmp, s.k4)
		for i := 0; i < n; i++ {
			y[i] += h / 6 * (s.k1[i] + 2*s.k2[i] + 2*s.k3[i] + s.k4[i])
		}
	default:
		panic("ode: unknown method " + s.method.String())
	}
	return t + h
}

// Integrate advances y from t0 to t1 in equal steps no larger than hMax
// and returns t1.
func (s *FixedStepper) Integrate(t0, t1 float64, y []float64, hMax float64) float64 {
	if t1 <= t0 || hMax <= 0 {
		return t0
	}
	steps := int(math.Ceil((t1 - t0) / hMax))
	h := (t1 - t0) / float64(steps)
	t := t0
	for i := 0; i < steps; i++ {
		t = s.Step(t, y, h)
	}
	return t1
}

// AdaptiveConfig configures the adaptive RKF45 integrator.
type AdaptiveConfig struct {
	RelTol   float64 // relative tolerance (default 1e-6)
	AbsTol   float64 // absolute tolerance (default 1e-8)
	HInit    float64 // initial step (default: span/100)
	HMin     float64 // smallest permitted step (default: span*1e-12)
	HMax     float64 // largest permitted step (default: span)
	MaxSteps int     // safety cap on accepted+rejected steps (default 1e6)
}

func (c *AdaptiveConfig) defaults(span float64) {
	if c.RelTol <= 0 {
		c.RelTol = 1e-6
	}
	if c.AbsTol <= 0 {
		c.AbsTol = 1e-8
	}
	if c.HInit <= 0 {
		c.HInit = span / 100
	}
	if c.HMin <= 0 {
		c.HMin = span * 1e-12
	}
	if c.HMax <= 0 {
		c.HMax = span
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 1_000_000
	}
}

// AdaptiveStats reports the work performed by an adaptive integration.
type AdaptiveStats struct {
	Accepted int
	Rejected int
	LastStep float64
}

// RKF45 coefficients (Fehlberg's classic embedded 4(5) pair).
var (
	rkfA = [6]float64{0, 1.0 / 4, 3.0 / 8, 12.0 / 13, 1, 1.0 / 2}
	rkfB = [6][5]float64{
		{},
		{1.0 / 4},
		{3.0 / 32, 9.0 / 32},
		{1932.0 / 2197, -7200.0 / 2197, 7296.0 / 2197},
		{439.0 / 216, -8, 3680.0 / 513, -845.0 / 4104},
		{-8.0 / 27, 2, -3544.0 / 2565, 1859.0 / 4104, -11.0 / 40},
	}
	rkfC4 = [6]float64{25.0 / 216, 0, 1408.0 / 2565, 2197.0 / 4104, -1.0 / 5, 0}
	rkfC5 = [6]float64{16.0 / 135, 0, 6656.0 / 12825, 28561.0 / 56430, -9.0 / 50, 2.0 / 55}
)

// IntegrateAdaptive advances y from t0 to t1 with the RKF45 embedded pair,
// controlling local error against cfg tolerances. y is updated in place.
// It is a convenience wrapper over a one-shot AdaptiveStepper; hot loops
// that integrate repeatedly should hold a persistent stepper instead.
func IntegrateAdaptive(sys System, t0, t1 float64, y []float64, cfg AdaptiveConfig) (AdaptiveStats, error) {
	return NewAdaptiveStepper(sys, RKF45, cfg).Integrate(t0, t1, y)
}

// ImplicitStepper advances a System with backward Euler, solving the
// per-step nonlinear system with a damped Newton iteration and a
// finite-difference Jacobian. Suitable for stiff loops (e.g. small
// thermal masses coupled to large flows).
type ImplicitStepper struct {
	sys     System
	MaxIter int     // Newton iterations per step (default 25)
	Tol     float64 // convergence tolerance on the Newton update (default 1e-10)

	f, fp, res, dy, ypred []float64
	jac                   *la.Matrix
}

// NewImplicitStepper builds a backward-Euler stepper for sys.
func NewImplicitStepper(sys System) *ImplicitStepper {
	n := sys.Dim()
	return &ImplicitStepper{
		sys: sys, MaxIter: 25, Tol: 1e-10,
		f: make([]float64, n), fp: make([]float64, n),
		res: make([]float64, n), dy: make([]float64, n),
		ypred: make([]float64, n),
		jac:   la.NewMatrix(n, n),
	}
}

// Step advances y in place from t by h with backward Euler. Returns the
// new time or an error if Newton fails to converge.
func (s *ImplicitStepper) Step(t float64, y []float64, h float64) (float64, error) {
	n := s.sys.Dim()
	if len(y) != n {
		return t, fmt.Errorf("ode: state length %d != dim %d", len(y), n)
	}
	// Predictor: forward Euler.
	s.sys.Derivatives(t, y, s.f)
	copy(s.ypred, y)
	la.AXPY(h, s.f, s.ypred)

	tn := t + h
	for iter := 0; iter < s.MaxIter; iter++ {
		// Residual g(x) = x - y - h f(tn, x).
		s.sys.Derivatives(tn, s.ypred, s.f)
		for i := 0; i < n; i++ {
			s.res[i] = s.ypred[i] - y[i] - h*s.f[i]
		}
		if la.NormInf(s.res) < s.Tol*(1+la.NormInf(s.ypred)) {
			copy(y, s.ypred)
			return tn, nil
		}
		// Finite-difference Jacobian of g: I - h ∂f/∂x.
		for j := 0; j < n; j++ {
			eps := 1e-7 * math.Max(1, math.Abs(s.ypred[j]))
			orig := s.ypred[j]
			s.ypred[j] = orig + eps
			s.sys.Derivatives(tn, s.ypred, s.fp)
			s.ypred[j] = orig
			for i := 0; i < n; i++ {
				v := -h * (s.fp[i] - s.f[i]) / eps
				if i == j {
					v += 1
				}
				s.jac.Set(i, j, v)
			}
		}
		fct, err := la.Factorize(s.jac)
		if err != nil {
			return t, fmt.Errorf("%w: %v", ErrStepFailed, err)
		}
		if err := fct.Solve(s.res, s.dy); err != nil {
			return t, fmt.Errorf("%w: %v", ErrStepFailed, err)
		}
		// Damped update: halve until the residual is finite.
		lambda := 1.0
		for k := 0; k < 8; k++ {
			ok := true
			for i := 0; i < n; i++ {
				v := s.ypred[i] - lambda*s.dy[i]
				if math.IsNaN(v) || math.IsInf(v, 0) {
					ok = false
					break
				}
			}
			if ok {
				break
			}
			lambda /= 2
		}
		for i := 0; i < n; i++ {
			s.ypred[i] -= lambda * s.dy[i]
		}
		if la.NormInf(s.dy)*lambda < s.Tol*(1+la.NormInf(s.ypred)) {
			copy(y, s.ypred)
			return tn, nil
		}
	}
	return t, fmt.Errorf("%w: Newton did not converge in %d iterations", ErrStepFailed, s.MaxIter)
}

// Integrate advances y from t0 to t1 in equal implicit steps no larger
// than hMax.
func (s *ImplicitStepper) Integrate(t0, t1 float64, y []float64, hMax float64) (float64, error) {
	if t1 <= t0 || hMax <= 0 {
		return t0, nil
	}
	steps := int(math.Ceil((t1 - t0) / hMax))
	h := (t1 - t0) / float64(steps)
	t := t0
	for i := 0; i < steps; i++ {
		var err error
		t, err = s.Step(t, y, h)
		if err != nil {
			return t, err
		}
	}
	return t1, nil
}
