package ode

import (
	"math"
	"testing"
)

// decay is y' = -y, y(0)=1 → y(t) = e^{-t}.
var decay = Func{N: 1, F: func(t float64, y, dydt []float64) { dydt[0] = -y[0] }}

// oscillator is y” = -y expressed as a 2-state system; energy is conserved.
var oscillator = Func{N: 2, F: func(t float64, y, dydt []float64) {
	dydt[0] = y[1]
	dydt[1] = -y[0]
}}

func integrateFixed(m Method, h float64) float64 {
	y := []float64{1}
	s := NewFixedStepper(decay, m)
	s.Integrate(0, 1, y, h)
	return y[0]
}

func TestFixedStepAccuracy(t *testing.T) {
	exact := math.Exp(-1)
	cases := []struct {
		m   Method
		h   float64
		tol float64
	}{
		{Euler, 1e-3, 2e-4},
		{Heun, 1e-2, 1e-5},
		{RK4, 1e-1, 1e-6},
	}
	for _, tc := range cases {
		got := integrateFixed(tc.m, tc.h)
		if math.Abs(got-exact) > tc.tol {
			t.Errorf("%v h=%v: |%v - %v| > %v", tc.m, tc.h, got, exact, tc.tol)
		}
	}
}

// TestConvergenceOrders halves the step and verifies error reduction
// ratios near 2^p for each method's order p.
func TestConvergenceOrders(t *testing.T) {
	exact := math.Exp(-1)
	orders := []struct {
		m    Method
		p    float64
		hTop float64
	}{
		{Euler, 1, 1.0 / 64},
		{Heun, 2, 1.0 / 16},
		{RK4, 4, 1.0 / 4},
	}
	for _, tc := range orders {
		e1 := math.Abs(integrateFixed(tc.m, tc.hTop) - exact)
		e2 := math.Abs(integrateFixed(tc.m, tc.hTop/2) - exact)
		ratio := e1 / e2
		want := math.Pow(2, tc.p)
		if ratio < want*0.7 || ratio > want*1.4 {
			t.Errorf("%v: error ratio %v, want ≈%v", tc.m, ratio, want)
		}
	}
}

func TestRK4EnergyConservation(t *testing.T) {
	y := []float64{1, 0}
	s := NewFixedStepper(oscillator, RK4)
	s.Integrate(0, 2*math.Pi*10, y, 0.01)
	energy := y[0]*y[0] + y[1]*y[1]
	if math.Abs(energy-1) > 1e-6 {
		t.Errorf("energy drifted to %v after 10 periods", energy)
	}
	if math.Abs(y[0]-1) > 1e-5 || math.Abs(y[1]) > 1e-5 {
		t.Errorf("state after 10 periods = %v, want [1 0]", y)
	}
}

func TestAdaptiveDecay(t *testing.T) {
	y := []float64{1}
	st, err := IntegrateAdaptive(decay, 0, 5, y, AdaptiveConfig{RelTol: 1e-9, AbsTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-math.Exp(-5)) > 1e-8 {
		t.Errorf("y(5) = %v, want %v", y[0], math.Exp(-5))
	}
	if st.Accepted == 0 {
		t.Error("no steps accepted")
	}
}

func TestAdaptiveOscillatorLongRun(t *testing.T) {
	y := []float64{0, 1}
	_, err := IntegrateAdaptive(oscillator, 0, 2*math.Pi*20, y, AdaptiveConfig{RelTol: 1e-8, AbsTol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]) > 1e-4 || math.Abs(y[1]-1) > 1e-4 {
		t.Errorf("state after 20 periods = %v, want [0 1]", y)
	}
}

func TestAdaptiveStepRejection(t *testing.T) {
	// A sharp transient forces at least one rejection with a large HInit.
	sharp := Func{N: 1, F: func(t float64, y, dydt []float64) {
		dydt[0] = -50 * (y[0] - math.Cos(t))
	}}
	y := []float64{0}
	st, err := IntegrateAdaptive(sharp, 0, 3, y, AdaptiveConfig{RelTol: 1e-8, AbsTol: 1e-10, HInit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected == 0 {
		t.Error("expected at least one rejected step")
	}
}

func TestAdaptiveZeroSpan(t *testing.T) {
	y := []float64{1}
	if _, err := IntegrateAdaptive(decay, 1, 1, y, AdaptiveConfig{}); err != nil {
		t.Fatal(err)
	}
	if y[0] != 1 {
		t.Error("zero-span integration modified state")
	}
}

func TestImplicitStiffDecay(t *testing.T) {
	// y' = -1000(y - cos t): stiff; explicit Euler at h=0.01 would explode.
	stiff := Func{N: 1, F: func(t float64, y, dydt []float64) {
		dydt[0] = -1000 * (y[0] - math.Cos(t))
	}}
	y := []float64{0}
	s := NewImplicitStepper(stiff)
	if _, err := s.Integrate(0, 2, y, 0.01); err != nil {
		t.Fatal(err)
	}
	// Quasi-steady solution tracks cos(t) closely.
	if math.Abs(y[0]-math.Cos(2)) > 5e-3 {
		t.Errorf("y(2) = %v, want ≈%v", y[0], math.Cos(2))
	}
}

func TestImplicitMatchesExplicitNonStiff(t *testing.T) {
	yi := []float64{1}
	ye := []float64{1}
	si := NewImplicitStepper(decay)
	if _, err := si.Integrate(0, 1, yi, 1e-3); err != nil {
		t.Fatal(err)
	}
	NewFixedStepper(decay, RK4).Integrate(0, 1, ye, 1e-3)
	if math.Abs(yi[0]-ye[0]) > 1e-3 {
		t.Errorf("implicit %v vs explicit %v", yi[0], ye[0])
	}
}

func TestImplicitLinearSystem(t *testing.T) {
	// Coupled linear system with known exponential solution:
	// y1' = -2 y1 + y2; y2' = y1 - 2 y2. Eigenvalues -1, -3.
	sys := Func{N: 2, F: func(t float64, y, dydt []float64) {
		dydt[0] = -2*y[0] + y[1]
		dydt[1] = y[0] - 2*y[1]
	}}
	y := []float64{1, 0}
	s := NewImplicitStepper(sys)
	if _, err := s.Integrate(0, 1, y, 1e-3); err != nil {
		t.Fatal(err)
	}
	want0 := 0.5*math.Exp(-1) + 0.5*math.Exp(-3)
	want1 := 0.5*math.Exp(-1) - 0.5*math.Exp(-3)
	if math.Abs(y[0]-want0) > 1e-3 || math.Abs(y[1]-want1) > 1e-3 {
		t.Errorf("y = %v, want [%v %v]", y, want0, want1)
	}
}

func TestMethodString(t *testing.T) {
	if Euler.String() != "euler" || Heun.String() != "heun" || RK4.String() != "rk4" {
		t.Error("method names wrong")
	}
	if Method(99).String() == "" {
		t.Error("unknown method should still produce a name")
	}
}

func TestFixedIntegrateNoOp(t *testing.T) {
	y := []float64{1}
	s := NewFixedStepper(decay, RK4)
	if got := s.Integrate(5, 5, y, 0.1); got != 5 {
		t.Errorf("Integrate over empty span returned %v", got)
	}
	if y[0] != 1 {
		t.Error("state modified on empty span")
	}
}

func BenchmarkRK4Oscillator(b *testing.B) {
	s := NewFixedStepper(oscillator, RK4)
	y := []float64{1, 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(0, y, 0.01)
	}
}

func BenchmarkImplicitStiff(b *testing.B) {
	stiff := Func{N: 1, F: func(t float64, y, dydt []float64) {
		dydt[0] = -1000 * (y[0] - 1)
	}}
	s := NewImplicitStepper(stiff)
	y := []float64{0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(0, y, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDormandPrinceDecay(t *testing.T) {
	y := []float64{1}
	st, err := IntegrateDormandPrince(decay, 0, 5, y, AdaptiveConfig{RelTol: 1e-10, AbsTol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-math.Exp(-5)) > 1e-9 {
		t.Errorf("y(5) = %v, want %v", y[0], math.Exp(-5))
	}
	if st.Accepted == 0 {
		t.Error("no steps accepted")
	}
}

func TestDormandPrinceBeatsRKF45PerStep(t *testing.T) {
	// At equal tolerance the higher-order pair needs fewer accepted
	// steps on a smooth problem.
	cfg := AdaptiveConfig{RelTol: 1e-9, AbsTol: 1e-12}
	yA := []float64{0, 1}
	stA, err := IntegrateAdaptive(oscillator, 0, 2*math.Pi*5, yA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	yB := []float64{0, 1}
	stB, err := IntegrateDormandPrince(oscillator, 0, 2*math.Pi*5, yB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stB.Accepted >= stA.Accepted {
		t.Errorf("DP54 used %d steps, RKF45 %d — expected fewer", stB.Accepted, stA.Accepted)
	}
	if math.Abs(yB[0]) > 1e-5 || math.Abs(yB[1]-1) > 1e-5 {
		t.Errorf("DP54 state after 5 periods = %v", yB)
	}
}

func TestDormandPrinceAgreesWithRK4OnPlantLikeSystem(t *testing.T) {
	// A small thermal-network-like linear system: both integrators land
	// on the same trajectory.
	sys := Func{N: 3, F: func(t float64, y, dydt []float64) {
		dydt[0] = 0.05 * (y[1] - y[0])
		dydt[1] = 0.03*(y[2]-y[1]) + 0.01*(y[0]-y[1])
		dydt[2] = 0.02 * (20 - y[2])
	}}
	yd := []float64{30, 28, 26}
	if _, err := IntegrateDormandPrince(sys, 0, 600, yd, AdaptiveConfig{RelTol: 1e-9, AbsTol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	yr := []float64{30, 28, 26}
	NewFixedStepper(sys, RK4).Integrate(0, 600, yr, 0.5)
	for i := range yd {
		if math.Abs(yd[i]-yr[i]) > 1e-5 {
			t.Errorf("state %d: DP %v vs RK4 %v", i, yd[i], yr[i])
		}
	}
}

func TestDormandPrinceZeroSpanAndValidation(t *testing.T) {
	y := []float64{1}
	if _, err := IntegrateDormandPrince(decay, 2, 2, y, AdaptiveConfig{}); err != nil || y[0] != 1 {
		t.Error("zero span should no-op")
	}
	if _, err := IntegrateDormandPrince(decay, 0, 1, []float64{1, 2}, AdaptiveConfig{}); err == nil {
		t.Error("dimension mismatch should fail")
	}
}
