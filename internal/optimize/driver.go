package optimize

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/raps"
	"exadigit/internal/surrogate"
	"exadigit/internal/uq"
)

// This file is the closed-loop co-design driver — the L5 layer run for
// real: a seeded multi-objective evolutionary search over the knob
// space whose outer loop evaluates candidates as scenarios through an
// Evaluator (the sweep service in production, so evaluations inherit
// caching, single-flight, retries, journaling, and -workers
// distribution), and whose inner loop screens candidates on an
// online-trained ridge surrogate with split-conformal UQ gating:
// candidates whose predicted-error interval is too wide or straddles a
// constraint boundary — plus every candidate the surrogate predicts
// onto the Pareto frontier — fall back to a full-twin evaluation, so
// every reported objective is exact.
//
// Everything is deterministic for a fixed StudySpec: seeded sampling
// and mutation, deterministic ridge fits, no map-ordered iteration in
// any decision path. A warm re-run therefore reproduces the exact same
// twin-evaluation set and rides the result cache end to end.

// StudySpec configures one co-design study.
type StudySpec struct {
	// Knobs spans the search space (see KnobNames).
	Knobs []Knob `json:"knobs"`
	// Objectives to minimize/maximize (default: minimize energy_mwh).
	Objectives []Objective `json:"objectives,omitempty"`
	// Constraints gate feasibility.
	Constraints []Constraint `json:"constraints,omitempty"`
	// Population is the candidates drawn per generation (default 32).
	Population int `json:"population,omitempty"`
	// Generations is the outer-loop count (default 6).
	Generations int `json:"generations,omitempty"`
	// InitSample bounds how many candidates are twin-evaluated blind
	// before the surrogate first trains (default: the surrogate's
	// minimum training size; capped at Population).
	InitSample int `json:"init_sample,omitempty"`
	// PromoteTopK is how many surrogate-screened candidates are promoted
	// to full-twin evaluation per generation on predicted rank, on top
	// of predicted-frontier members and UQ fallbacks (default 4).
	PromoteTopK int `json:"promote_top_k,omitempty"`
	// MaxTwinEvals bounds the study's total full-twin evaluations
	// (0 → unbounded); the study stops early when exhausted.
	MaxTwinEvals int `json:"max_twin_evals,omitempty"`
	// Seed drives sampling and mutation (same seed → same study).
	Seed int64 `json:"seed,omitempty"`
	// DisableSurrogate forces every candidate to a full-twin evaluation
	// — the baseline arm of the screening-throughput benchmark.
	DisableSurrogate bool `json:"disable_surrogate,omitempty"`
	// Confidence is the conformal coverage level of the UQ gate
	// (default 0.9).
	Confidence float64 `json:"confidence,omitempty"`
	// GateRelWidth is the trust predicate: the surrogate may screen only
	// while every target's conformal interval radius stays below
	// GateRelWidth × that target's observed spread (default 0.2).
	GateRelWidth float64 `json:"gate_rel_width,omitempty"`
	// MinCalib is the residual count before the gate can open
	// (default 8; raised automatically until the conformal rank lands
	// inside the sample at the configured confidence).
	MinCalib int `json:"min_calib,omitempty"`
	// Lambda is the surrogate's ridge regularization (default 1e-6).
	Lambda float64 `json:"lambda,omitempty"`
}

func (sp *StudySpec) withDefaults() StudySpec {
	out := *sp
	if out.Population <= 0 {
		out.Population = 32
	}
	if out.Generations <= 0 {
		out.Generations = 6
	}
	if out.PromoteTopK <= 0 {
		out.PromoteTopK = 4
	}
	if out.Confidence <= 0 || out.Confidence >= 1 {
		out.Confidence = 0.9
	}
	if out.GateRelWidth <= 0 {
		out.GateRelWidth = 0.2
	}
	if out.MinCalib <= 0 {
		out.MinCalib = 8
	}
	if out.Lambda <= 0 {
		out.Lambda = 1e-6
	}
	return out
}

// Outcome is one candidate's full-twin evaluation result.
type Outcome struct {
	Report   *raps.Report
	CacheHit bool
	// Err marks a failed evaluation (the candidate becomes infeasible;
	// the study continues).
	Err string
}

// Evaluator runs candidate scenarios on the full twin. The service
// implements it by submitting each batch as one sweep; tests implement
// it analytically. Returned outcomes align with the scenarios; the
// call returns an error only for study-fatal conditions (cancellation,
// service shutdown).
type Evaluator interface {
	Evaluate(ctx context.Context, generation int, scenarios []core.Scenario) ([]Outcome, error)
}

// EvaluatorFunc adapts a function to Evaluator.
type EvaluatorFunc func(ctx context.Context, generation int, scenarios []core.Scenario) ([]Outcome, error)

// Evaluate implements Evaluator.
func (f EvaluatorFunc) Evaluate(ctx context.Context, gen int, scs []core.Scenario) ([]Outcome, error) {
	return f(ctx, gen, scs)
}

// Hooks observes the driver for metrics and progress streaming. All
// fields are optional.
type Hooks struct {
	// OnTwinEval fires per full-twin evaluation (cached tells whether
	// the sweep service served it from a cache tier).
	OnTwinEval func(cached bool)
	// OnScreened fires per candidate settled on the surrogate alone.
	OnScreened func()
	// OnFallback fires per UQ-gate fallback — a candidate the surrogate
	// wanted to screen but could not be trusted with (calibration
	// bootstrap, wide interval, or a constraint decision inside the
	// interval).
	OnFallback func()
	// OnGeneration fires as each generation completes.
	OnGeneration func()
	// OnProgress streams per-generation progress snapshots.
	OnProgress func(Progress)
}

// Progress is one generation's cumulative study snapshot.
type Progress struct {
	Generation   int     `json:"generation"`
	TwinEvals    int     `json:"twin_evals"`
	CachedEvals  int     `json:"cached_evals"`
	Screened     int     `json:"screened"`
	Fallbacks    int     `json:"fallbacks"`
	FrontierSize int     `json:"frontier_size"`
	BestScalar   float64 `json:"best_scalar"`
	// Best is the incumbent (nil until a feasible candidate exists).
	Best *Candidate `json:"best,omitempty"`
}

// StudyResult is the completed study.
type StudyResult struct {
	// BaselineObjectives are the base scenario's twin-exact metrics.
	BaselineObjectives map[string]float64 `json:"baseline_objectives,omitempty"`
	BaselineFeasible   bool               `json:"baseline_feasible"`
	BaselineError      string             `json:"baseline_error,omitempty"`
	// Best is the feasible candidate with the lowest scalar (nil if
	// nothing feasible was found).
	Best *Candidate `json:"best,omitempty"`
	// Frontier is the non-dominated feasible set, best scalar first.
	// Every member was evaluated on the full twin.
	Frontier []Candidate `json:"frontier"`
	// Evaluated is every twin-evaluated candidate, in evaluation order.
	Evaluated []Candidate `json:"evaluated,omitempty"`
	// Accounting.
	Generations int `json:"generations"`
	TwinEvals   int `json:"twin_evals"`
	CachedEvals int `json:"cached_evals"`
	Screened    int `json:"screened"`
	Fallbacks   int `json:"fallbacks"`
	// Model is the trained surrogate (nil when disabled or never
	// trained) — the service persists it to the durable store.
	Model *surrogate.Model `json:"model,omitempty"`
}

// trustChunk is the trust loop's promotion batch size: enough twin
// outcomes per iteration to move the windowed calibrators, small enough
// that the gate opening mid-generation saves most of the population.
const trustChunk = 8

// pendingCand is a deduplicated candidate on its way to a decision:
// screened on the surrogate or promoted to the twin. pred carries the
// surrogate prediction made before the candidate joined the training
// set — the residual source for the conformal calibrators.
type pendingCand struct {
	vec  []float64
	key  string
	pred []float64
}

// Driver runs one study.
type Driver struct {
	spec      StudySpec
	space     *Space
	objs      *objectiveSet
	base      core.Scenario
	basePlant config.CoolingSpec
	eval      Evaluator
	hooks     Hooks
	rng       *rand.Rand

	model  *surrogate.Model
	calibs []*uq.Calibrator // per target, aligned with objs.targets
	// spread tracks each target's observed [min,max] over twin
	// evaluations — the scale the gate's relative width is against.
	spreadLo, spreadHi []float64

	trainX [][]float64
	trainY [][]float64

	memo      map[string]*Candidate // snapped-vector key → twin outcome
	evaluated []Candidate

	twinEvals, cachedEvals, screened, fallbacks int
}

// NewDriver validates the study against the base scenario and plant.
// basePlant is the plant candidates mutate: the base scenario's
// CoolingSpec override when set, else the system spec's plant. model,
// when non-nil, warm-starts the surrogate from a persisted fit (its
// dimensionality and targets must match the study).
func NewDriver(spec StudySpec, base core.Scenario, basePlant config.CoolingSpec, eval Evaluator, hooks Hooks, model *surrogate.Model) (*Driver, error) {
	if eval == nil {
		return nil, fmt.Errorf("optimize: driver needs an evaluator")
	}
	sp := spec.withDefaults()
	if base.CoolingSpec != nil {
		basePlant = *base.CoolingSpec
	}
	space, err := NewSpace(sp.Knobs, basePlant)
	if err != nil {
		return nil, err
	}
	objs, err := newObjectiveSet(sp.Objectives, sp.Constraints)
	if err != nil {
		return nil, err
	}
	d := &Driver{
		spec: sp, space: space, objs: objs,
		base: base, basePlant: basePlant,
		eval: eval, hooks: hooks,
		rng:  rand.New(rand.NewSource(sp.Seed)),
		memo: make(map[string]*Candidate),
	}
	if !sp.DisableSurrogate {
		if model != nil {
			if model.Dims() != space.Dims() {
				return nil, fmt.Errorf("optimize: warm-start model has %d dims, space has %d", model.Dims(), space.Dims())
			}
			got := model.Targets()
			match := len(got) == len(objs.targets)
			for i := 0; match && i < len(got); i++ {
				match = got[i] == objs.targets[i]
			}
			if !match {
				return nil, fmt.Errorf("optimize: warm-start model targets %v, study wants %v", got, objs.targets)
			}
			d.model = model
		} else {
			lo, hi := space.Bounds()
			m, err := surrogate.NewModel(lo, hi, objs.targets, sp.Lambda)
			if err != nil {
				return nil, err
			}
			d.model = m
		}
		// Sliding-window calibrators: the surrogate improves every
		// retrain, so residuals from early, weaker fits must age out or
		// the gate would judge today's model by yesterday's errors. The
		// window is a few multiples of the minimum sample so the
		// conformal rank always lands inside it.
		win := 4 * d.calibNeed()
		d.calibs = make([]*uq.Calibrator, len(objs.targets))
		for i := range d.calibs {
			c, err := uq.NewCalibrator(sp.Confidence, sp.MinCalib, win)
			if err != nil {
				return nil, err
			}
			d.calibs[i] = c
		}
		d.spreadLo = make([]float64, len(objs.targets))
		d.spreadHi = make([]float64, len(objs.targets))
		for i := range d.spreadLo {
			d.spreadLo[i] = math.Inf(1)
			d.spreadHi[i] = math.Inf(-1)
		}
	}
	if d.spec.InitSample <= 0 {
		d.spec.InitSample = 0
		if d.model != nil {
			d.spec.InitSample = d.model.MinTrainRows()
		}
	}
	if d.spec.InitSample > d.spec.Population {
		d.spec.InitSample = d.spec.Population
	}
	return d, nil
}

// Targets returns the surrogate's target metrics, in training order.
func (d *Driver) Targets() []string { return append([]string(nil), d.objs.targets...) }

// Run executes the study. The context cancels it between batches (the
// Evaluator is expected to honor ctx inside a batch too).
func (d *Driver) Run(ctx context.Context) (*StudyResult, error) {
	res := &StudyResult{}

	// Baseline: the base scenario itself, twin-evaluated — the exact
	// operating point the study's winners are compared against.
	outs, err := d.eval.Evaluate(ctx, -1, []core.Scenario{d.base})
	if err != nil {
		return nil, fmt.Errorf("optimize: baseline: %w", err)
	}
	if len(outs) != 1 {
		return nil, fmt.Errorf("optimize: baseline: evaluator returned %d outcomes", len(outs))
	}
	if outs[0].Err != "" || outs[0].Report == nil {
		res.BaselineError = outs[0].Err
		if res.BaselineError == "" {
			res.BaselineError = "no report"
		}
	} else {
		vals, verr := d.objs.values(func(m string) (float64, error) { return metricValue(outs[0].Report, m) })
		if verr != nil {
			return nil, verr
		}
		res.BaselineObjectives = vals
		res.BaselineFeasible, _ = d.objs.feasible(vals)
	}

	pop := d.samplePopulation()
	for gen := 0; gen < d.spec.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := d.runGeneration(ctx, gen, pop); err != nil {
			return nil, err
		}
		if d.hooks.OnGeneration != nil {
			d.hooks.OnGeneration()
		}
		res.Generations = gen + 1
		d.emitProgress(gen)
		if d.budgetExhausted() {
			break
		}
		if gen+1 < d.spec.Generations {
			pop = d.nextPopulation()
		}
	}

	res.Evaluated = append([]Candidate(nil), d.evaluated...)
	res.Frontier = d.objs.frontier(d.evaluated)
	if len(res.Frontier) > 0 {
		best := res.Frontier[0]
		res.Best = &best
	}
	res.TwinEvals = d.twinEvals
	res.CachedEvals = d.cachedEvals
	res.Screened = d.screened
	res.Fallbacks = d.fallbacks
	if d.model != nil && d.model.Trained() {
		res.Model = d.model
	}
	return res, nil
}

// samplePopulation draws the initial generation: stratified per-knob
// sampling (a Latin-hypercube-style spread without coordinate
// correlation) snapped onto the grid.
func (d *Driver) samplePopulation() [][]float64 {
	n := d.spec.Population
	dims := d.space.Dims()
	knobs := d.space.Knobs()
	cols := make([][]float64, dims)
	for k := 0; k < dims; k++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			// Stratum i, jittered.
			frac := (float64(i) + d.rng.Float64()) / float64(n)
			col[i] = knobs[k].Min + frac*(knobs[k].Max-knobs[k].Min)
		}
		d.rng.Shuffle(n, func(a, b int) { col[a], col[b] = col[b], col[a] })
		cols[k] = col
	}
	pop := make([][]float64, n)
	for i := 0; i < n; i++ {
		vec := make([]float64, dims)
		for k := 0; k < dims; k++ {
			vec[k] = cols[k][i]
		}
		pop[i] = d.space.Snap(vec)
	}
	return pop
}

// nextPopulation breeds the next generation from the twin-evaluated
// archive: mutated elites (feasible, best scalar first), elite
// crossover, and a fresh-immigrant share to keep exploring.
func (d *Driver) nextPopulation() [][]float64 {
	elites := d.elites()
	n := d.spec.Population
	knobs := d.space.Knobs()
	dims := d.space.Dims()
	pop := make([][]float64, 0, n)
	immigrants := n / 4
	if len(elites) == 0 {
		immigrants = n
	}
	for len(pop) < n-immigrants {
		p := elites[d.rng.Intn(len(elites))]
		vec := make([]float64, dims)
		copy(vec, p.Vector)
		if len(elites) > 1 && d.rng.Float64() < 0.5 {
			q := elites[d.rng.Intn(len(elites))]
			for k := range vec {
				if d.rng.Float64() < 0.5 {
					vec[k] = q.Vector[k]
				}
			}
		}
		for k := range vec {
			// Gaussian mutation at 15 % of the knob range.
			vec[k] += d.rng.NormFloat64() * 0.15 * (knobs[k].Max - knobs[k].Min)
		}
		pop = append(pop, d.space.Snap(vec))
	}
	for len(pop) < n {
		vec := make([]float64, dims)
		for k := range vec {
			vec[k] = knobs[k].Min + d.rng.Float64()*(knobs[k].Max-knobs[k].Min)
		}
		pop = append(pop, d.space.Snap(vec))
	}
	return pop
}

// elites returns the archive's feasible members, best scalar first,
// capped at half the population.
func (d *Driver) elites() []Candidate {
	var out []Candidate
	for _, c := range d.evaluated {
		if c.Feasible {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Scalar < out[j].Scalar })
	if limit := d.spec.Population / 2; len(out) > limit && limit > 0 {
		out = out[:limit]
	}
	return out
}

// runGeneration screens and evaluates one population.
func (d *Driver) runGeneration(ctx context.Context, gen int, pop [][]float64) error {
	// Deduplicate against the memo: re-encountered grid points are
	// settled candidates and cost nothing.
	var fresh []pendingCand
	seen := make(map[string]bool)
	for _, vec := range pop {
		key := d.space.Key(vec)
		if seen[key] || d.memo[key] != nil {
			continue
		}
		seen[key] = true
		fresh = append(fresh, pendingCand{vec: vec, key: key})
	}
	if len(fresh) == 0 {
		return nil
	}

	// Surrogate disabled: everything runs on the twin.
	if d.model == nil {
		return d.evaluateBatch(ctx, gen, fresh, false)
	}

	// Blind phase: until the model first trains, twin-evaluate up to
	// InitSample candidates with no prediction attached.
	if !d.model.Trained() {
		blind := len(fresh)
		if d.spec.InitSample > 0 && blind > d.spec.InitSample {
			blind = d.spec.InitSample
		}
		if err := d.evaluateBatch(ctx, gen, fresh[:blind], false); err != nil {
			return err
		}
		fresh = fresh[blind:]
		if len(fresh) == 0 || d.budgetExhausted() {
			return nil
		}
		if !d.model.Trained() {
			// Still too little data (InitSample below the training
			// minimum): the rest of the generation runs blind too, and
			// training catches up as batches accumulate.
			return d.evaluateBatch(ctx, gen, fresh, false)
		}
	}

	// Predict everything up front. Predictions are made before any of
	// these candidates join the training set, so the residuals observed
	// on the promoted ones are honestly held-out.
	for i := range fresh {
		pred, err := d.model.Predict(fresh[i].vec)
		if err != nil {
			return err
		}
		fresh[i].pred = pred
	}

	// Trust loop: while the gate is closed — calibrators still
	// bootstrapping, or the conformal interval too wide relative to the
	// observed spread — promote candidates in predicted-rank order as UQ
	// fallbacks. Each chunk's twin outcomes feed the calibrators and
	// retrain the model, and the remainder is re-predicted on the
	// improved fit (still honestly held out: none of those candidates
	// has joined the training set), so both the promotion ranking and
	// the next gate check reflect the current model, not the one that
	// existed when the generation started. The windowed calibrators let
	// early large residuals age out, so trust earned mid-generation
	// opens the gate for the generation's remainder instead of writing
	// the whole population off.
	for !d.gateUsable() {
		if len(fresh) == 0 {
			return nil
		}
		d.sortByPredictedRank(fresh)
		chunk := d.calibNeed() - d.calibCount()
		if chunk < trustChunk {
			chunk = trustChunk
		}
		if chunk > len(fresh) {
			chunk = len(fresh)
		}
		if err := d.evaluateBatch(ctx, gen, fresh[:chunk], true); err != nil {
			return err
		}
		fresh = fresh[chunk:]
		if d.budgetExhausted() {
			return nil
		}
		for i := range fresh {
			pred, err := d.model.Predict(fresh[i].vec)
			if err != nil {
				return err
			}
			fresh[i].pred = pred
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	return d.screenAndPromote(ctx, gen, fresh)
}

// screenAndPromote settles a calibrated generation: candidates whose
// constraint decisions sit inside the conformal interval fall back,
// predicted-frontier members and the predicted top K promote, and the
// rest are screened out on the surrogate alone.
func (d *Driver) screenAndPromote(ctx context.Context, gen int, fresh []pendingCand) error {
	type screenedCand struct {
		scalar    float64
		feasible  bool
		uncertain bool
		vals      map[string]float64
	}
	pool := make([]screenedCand, len(fresh))
	for i := range fresh {
		vals := make(map[string]float64, len(d.objs.targets))
		for t, name := range d.objs.targets {
			vals[name] = fresh[i].pred[t]
		}
		feas, _ := d.objs.feasible(vals)
		pool[i] = screenedCand{
			scalar:    d.objs.scalar(vals),
			feasible:  feas,
			uncertain: d.constraintUncertain(vals),
			vals:      vals,
		}
	}

	promote := make(map[int]bool)  // index → promote to twin
	fallback := make(map[int]bool) // index → promoted because of UQ
	for i := range pool {
		if pool[i].uncertain {
			promote[i], fallback[i] = true, true
		}
	}
	// Predicted Pareto frontier members always promote: the frontier is
	// the study's product and must be twin-exact, so the surrogate is
	// never allowed to discard a potential member silently.
	for i := range pool {
		if !pool[i].feasible {
			continue
		}
		dominated := false
		for j := range pool {
			if i == j || !pool[j].feasible {
				continue
			}
			if d.objs.dominates(pool[j].vals, pool[i].vals) {
				dominated = true
				break
			}
		}
		if !dominated {
			promote[i] = true
		}
	}
	// Top K by predicted scalar (feasible first).
	order := make([]int, len(pool))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := pool[order[a]], pool[order[b]]
		if pa.feasible != pb.feasible {
			return pa.feasible
		}
		return pa.scalar < pb.scalar
	})
	for k := 0; k < d.spec.PromoteTopK && k < len(order); k++ {
		promote[order[k]] = true
	}

	var twin, uqFall []pendingCand
	for i := range pool {
		switch {
		case fallback[i]:
			uqFall = append(uqFall, fresh[i])
		case promote[i]:
			twin = append(twin, fresh[i])
		default:
			d.screened++
			if d.hooks.OnScreened != nil {
				d.hooks.OnScreened()
			}
		}
	}
	if err := d.evaluateBatch(ctx, gen, twin, false); err != nil {
		return err
	}
	return d.evaluateBatch(ctx, gen, uqFall, true)
}

// constraintUncertain reports whether any constraint decision for the
// predicted values flips within the conformal interval — the surrogate
// cannot safely decide feasibility, so the candidate must run on the
// twin.
func (d *Driver) constraintUncertain(vals map[string]float64) bool {
	for _, c := range d.objs.constraints {
		r := d.radiusFor(c.Metric)
		v := vals[c.Metric]
		if c.Max != nil && math.Abs(v-*c.Max) <= r {
			return true
		}
		if c.Min != nil && math.Abs(v-*c.Min) <= r {
			return true
		}
	}
	return false
}

func (d *Driver) radiusFor(metric string) float64 {
	for i, t := range d.objs.targets {
		if t == metric {
			return d.calibs[i].Radius()
		}
	}
	return math.Inf(1)
}

// sortByPredictedRank orders candidates by predicted scalar, predicted-
// feasible first — the order trust-loop promotions are taken in, so
// the calibration twin evaluations double as useful search progress.
// Ranks are precomputed once; the comparator must not allocate (it runs
// O(n log n) times over populations of hundreds).
func (d *Driver) sortByPredictedRank(cands []pendingCand) {
	type rank struct {
		feasible bool
		scalar   float64
	}
	ranks := make([]rank, len(cands))
	vals := make(map[string]float64, len(d.objs.targets))
	for i := range cands {
		for t, name := range d.objs.targets {
			vals[name] = cands[i].pred[t]
		}
		feas, _ := d.objs.feasible(vals)
		ranks[i] = rank{feasible: feas, scalar: d.objs.scalar(vals)}
	}
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := ranks[order[a]], ranks[order[b]]
		if ra.feasible != rb.feasible {
			return ra.feasible
		}
		return ra.scalar < rb.scalar
	})
	sorted := make([]pendingCand, len(cands))
	for i, idx := range order {
		sorted[i] = cands[idx]
	}
	copy(cands, sorted)
}

// calibsReady reports whether every target's calibrator has enough
// residuals for an honest radius.
func (d *Driver) calibsReady() bool {
	for _, c := range d.calibs {
		if !c.Ready() {
			return false
		}
	}
	return true
}

// calibCount is the smallest residual count across targets (every
// promoted candidate feeds all calibrators, so counts only diverge via
// failed evaluations).
func (d *Driver) calibCount() int {
	n := -1
	for _, c := range d.calibs {
		if n < 0 || c.Len() < n {
			n = c.Len()
		}
	}
	if n < 0 {
		return 0
	}
	return n
}

// calibNeed is the smallest residual count at which the conformal rank
// lands inside the sample: min n ≥ MinCalib with ⌈(n+1)·conf⌉ ≤ n.
func (d *Driver) calibNeed() int {
	n := d.spec.MinCalib
	for {
		k := int(math.Ceil(float64(n+1) * d.spec.Confidence))
		if k <= n {
			return n
		}
		n++
	}
}

// gateUsable reports whether the surrogate + UQ gate may screen
// candidates: the model is trained, every calibrator is ready, and
// every target's conformal radius is within the configured relative
// width of that target's observed spread.
func (d *Driver) gateUsable() bool {
	if d.model == nil || !d.model.Trained() || !d.calibsReady() {
		return false
	}
	for i := range d.calibs {
		spread := d.spreadHi[i] - d.spreadLo[i]
		if spread <= 0 || math.IsInf(spread, 0) {
			return false
		}
		if d.calibs[i].Radius() > d.spec.GateRelWidth*spread {
			return false
		}
	}
	return true
}

// evaluateBatch promotes a batch to the full twin, folds the outcomes
// into the archive, and retrains the surrogate. asFallback marks the
// batch as UQ fallbacks for accounting.
func (d *Driver) evaluateBatch(ctx context.Context, gen int, batch []pendingCand, asFallback bool) error {
	if len(batch) == 0 {
		return nil
	}
	if d.spec.MaxTwinEvals > 0 && d.twinEvals+len(batch) > d.spec.MaxTwinEvals {
		batch = batch[:d.spec.MaxTwinEvals-d.twinEvals]
		if len(batch) == 0 {
			return nil
		}
	}
	scenarios := make([]core.Scenario, len(batch))
	for i, p := range batch {
		sc, err := d.space.Apply(d.base, d.basePlant, p.vec)
		if err != nil {
			return err
		}
		scenarios[i] = sc
	}
	outs, err := d.eval.Evaluate(ctx, gen, scenarios)
	if err != nil {
		return err
	}
	if len(outs) != len(batch) {
		return fmt.Errorf("optimize: evaluator returned %d outcomes for %d scenarios", len(outs), len(batch))
	}
	for i, p := range batch {
		cand := Candidate{
			Params:     d.space.Params(p.vec),
			Vector:     append([]float64(nil), p.vec...),
			Generation: gen,
			CacheHit:   outs[i].CacheHit,
		}
		d.twinEvals++
		if outs[i].CacheHit {
			d.cachedEvals++
		}
		if d.hooks.OnTwinEval != nil {
			d.hooks.OnTwinEval(outs[i].CacheHit)
		}
		if asFallback {
			d.fallbacks++
			if d.hooks.OnFallback != nil {
				d.hooks.OnFallback()
			}
		}
		if outs[i].Err != "" || outs[i].Report == nil {
			cand.Feasible = false
			cand.Infeasible = outs[i].Err
			if cand.Infeasible == "" {
				cand.Infeasible = "no report"
			}
		} else {
			vals, verr := d.objs.values(func(m string) (float64, error) { return metricValue(outs[i].Report, m) })
			if verr != nil {
				return verr
			}
			cand.Objectives = vals
			cand.Scalar = d.objs.scalar(vals)
			cand.Feasible, cand.Infeasible = d.objs.feasible(vals)
			d.observe(p.vec, p.pred, vals)
		}
		d.memo[p.key] = &cand
		d.evaluated = append(d.evaluated, cand)
	}
	d.retrain()
	return nil
}

// observe folds one twin outcome into the surrogate training set, the
// per-target spread, and — when the candidate carried a pre-promotion
// prediction — the conformal calibrators.
func (d *Driver) observe(vec, pred []float64, vals map[string]float64) {
	if d.model == nil {
		return
	}
	y := make([]float64, len(d.objs.targets))
	for i, t := range d.objs.targets {
		v := vals[t]
		y[i] = v
		if v < d.spreadLo[i] {
			d.spreadLo[i] = v
		}
		if v > d.spreadHi[i] {
			d.spreadHi[i] = v
		}
		if pred != nil {
			d.calibs[i].Observe(pred[i] - v)
		}
	}
	d.trainX = append(d.trainX, append([]float64(nil), vec...))
	d.trainY = append(d.trainY, y)
}

// retrain refits the surrogate on everything observed so far. A
// singular fit (degenerate sample) is not fatal: the gate simply stays
// closed until more data arrives.
func (d *Driver) retrain() {
	if d.model == nil || len(d.trainX) < d.model.MinTrainRows() {
		return
	}
	_ = d.model.Fit(d.trainX, d.trainY)
}

func (d *Driver) budgetExhausted() bool {
	return d.spec.MaxTwinEvals > 0 && d.twinEvals >= d.spec.MaxTwinEvals
}

func (d *Driver) emitProgress(gen int) {
	if d.hooks.OnProgress == nil {
		return
	}
	front := d.objs.frontier(d.evaluated)
	p := Progress{
		Generation:   gen,
		TwinEvals:    d.twinEvals,
		CachedEvals:  d.cachedEvals,
		Screened:     d.screened,
		Fallbacks:    d.fallbacks,
		FrontierSize: len(front),
	}
	if len(front) > 0 {
		best := front[0]
		p.Best = &best
		p.BestScalar = best.Scalar
	}
	d.hooks.OnProgress(p)
}
