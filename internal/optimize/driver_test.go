package optimize

import (
	"context"
	"fmt"
	"math"
	"testing"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/raps"
)

// synthEval is an analytic stand-in for the twin: objectives are smooth
// functions of the scenario knobs the study mutates, so surrogate
// behavior (exact quadratic fit, gate opening, screening) is testable
// without plant simulation. It records every evaluation for call-count
// and determinism assertions.
type synthEval struct {
	calls  int
	seq    []string
	counts map[string]int
	fail   func(sc core.Scenario) bool
}

func newSynthEval() *synthEval {
	return &synthEval{counts: make(map[string]int)}
}

// Truth functions over the two knobs the tests search:
// x = scenario.wetbulb_c, y = scenario.tick_sec.
func synthEnergy(x, y float64) float64 {
	return 10 + 0.25*(x-6)*(x-6) + (y-2)*(y-2)
}

func synthThroughput(x, y float64) float64 {
	return 50 - 0.5*(x-3)*(x-3) - 0.1*y
}

func (e *synthEval) Evaluate(_ context.Context, _ int, scs []core.Scenario) ([]Outcome, error) {
	outs := make([]Outcome, len(scs))
	for i, sc := range scs {
		key := fmt.Sprintf("%g|%g", sc.WetBulbC, sc.TickSec)
		e.calls++
		e.seq = append(e.seq, key)
		e.counts[key]++
		if e.fail != nil && e.fail(sc) {
			outs[i] = Outcome{Err: "synthetic failure"}
			continue
		}
		outs[i] = Outcome{Report: &raps.Report{
			EnergyMWh:       synthEnergy(sc.WetBulbC, sc.TickSec),
			ThroughputPerHr: synthThroughput(sc.WetBulbC, sc.TickSec),
			AvgPowerMW:      20,
			AvgPUE:          1.1,
		}}
	}
	return outs, nil
}

func synthBase() core.Scenario {
	return core.Scenario{Name: "base", WetBulbC: 5, TickSec: 2}
}

func synthKnobs() []Knob {
	return []Knob{
		{Name: "scenario.wetbulb_c", Min: 0.5, Max: 10, Step: 0.25},
		{Name: "scenario.tick_sec", Min: 1, Max: 5, Step: 0.125},
	}
}

func runSynthStudy(t *testing.T, spec StudySpec) (*StudyResult, *synthEval) {
	t.Helper()
	eval := newSynthEval()
	d, err := NewDriver(spec, synthBase(), config.CoolingSpec{}, eval, Hooks{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res, eval
}

func TestDriverDeterminism(t *testing.T) {
	spec := StudySpec{
		Knobs:       synthKnobs(),
		Population:  24,
		Generations: 3,
		Seed:        7,
	}
	res1, eval1 := runSynthStudy(t, spec)
	res2, eval2 := runSynthStudy(t, spec)
	if len(eval1.seq) != len(eval2.seq) {
		t.Fatalf("evaluation counts differ: %d vs %d", len(eval1.seq), len(eval2.seq))
	}
	for i := range eval1.seq {
		if eval1.seq[i] != eval2.seq[i] {
			t.Fatalf("evaluation %d differs: %q vs %q", i, eval1.seq[i], eval2.seq[i])
		}
	}
	if res1.TwinEvals != res2.TwinEvals || res1.Screened != res2.Screened || res1.Fallbacks != res2.Fallbacks {
		t.Fatalf("accounting differs: %+v vs %+v", res1, res2)
	}
	if res1.Best == nil || res2.Best == nil {
		t.Fatal("both runs should find a best")
	}
	if res1.Best.Scalar != res2.Best.Scalar {
		t.Fatalf("best scalar differs: %v vs %v", res1.Best.Scalar, res2.Best.Scalar)
	}
}

func TestDriverMemoNeverReevaluates(t *testing.T) {
	_, eval := runSynthStudy(t, StudySpec{
		Knobs:       synthKnobs(),
		Population:  32,
		Generations: 4,
		Seed:        3,
	})
	for key, n := range eval.counts {
		if n > 1 {
			t.Errorf("candidate %s evaluated %d times; the memo must dedupe", key, n)
		}
	}
}

func TestDriverSurrogateReducesTwinEvals(t *testing.T) {
	spec := StudySpec{
		Knobs:       synthKnobs(),
		Population:  64,
		Generations: 4,
		PromoteTopK: 2,
		Seed:        11,
	}
	full := spec
	full.DisableSurrogate = true
	fullRes, fullEval := runSynthStudy(t, full)
	surrRes, surrEval := runSynthStudy(t, spec)

	if fullRes.Screened != 0 || fullRes.Fallbacks != 0 {
		t.Fatalf("disabled arm must not screen: %+v", fullRes)
	}
	if surrRes.Screened == 0 {
		t.Fatal("surrogate arm screened nothing — the gate never opened")
	}
	if surrEval.calls*3 > fullEval.calls {
		t.Fatalf("surrogate arm used %d twin evals vs %d full — expected at least 3x reduction",
			surrEval.calls, fullEval.calls)
	}
	if surrRes.Model == nil {
		t.Fatal("surrogate arm should return a trained model")
	}

	// Both arms should land near the true optimum (x=6 snapped, y=2):
	// the surrogate screening must not wreck search quality on a smooth
	// objective it can represent exactly.
	trueBest := synthEnergy(6, 2)
	for name, res := range map[string]*StudyResult{"full": fullRes, "surrogate": surrRes} {
		if res.Best == nil {
			t.Fatalf("%s arm found no best", name)
		}
		if res.Best.Objectives["energy_mwh"] > trueBest+0.5 {
			t.Errorf("%s arm best energy %v, optimum is %v", name, res.Best.Objectives["energy_mwh"], trueBest)
		}
	}
}

func TestDriverFrontierIsTwinExact(t *testing.T) {
	res, _ := runSynthStudy(t, StudySpec{
		Knobs: synthKnobs(),
		Objectives: []Objective{
			{Metric: "energy_mwh"},
			{Metric: "throughput_per_hr", Maximize: true},
		},
		Population:  48,
		Generations: 3,
		Seed:        5,
	})
	if len(res.Frontier) == 0 {
		t.Fatal("expected a non-empty frontier")
	}
	for _, c := range res.Frontier {
		x := c.Params["scenario.wetbulb_c"]
		y := c.Params["scenario.tick_sec"]
		if got, want := c.Objectives["energy_mwh"], synthEnergy(x, y); math.Abs(got-want) > 1e-12 {
			t.Errorf("frontier candidate (%v,%v): energy %v, twin truth %v — frontier must be twin-exact", x, y, got, want)
		}
		if got, want := c.Objectives["throughput_per_hr"], synthThroughput(x, y); math.Abs(got-want) > 1e-12 {
			t.Errorf("frontier candidate (%v,%v): throughput %v, twin truth %v", x, y, got, want)
		}
	}
	// Frontier members must not dominate each other.
	for i := range res.Frontier {
		for j := range res.Frontier {
			if i == j {
				continue
			}
			a, b := res.Frontier[i].Objectives, res.Frontier[j].Objectives
			if a["energy_mwh"] <= b["energy_mwh"] && a["throughput_per_hr"] >= b["throughput_per_hr"] &&
				(a["energy_mwh"] < b["energy_mwh"] || a["throughput_per_hr"] > b["throughput_per_hr"]) {
				t.Fatalf("frontier member %d dominates member %d", i, j)
			}
		}
	}
}

func TestDriverConstraints(t *testing.T) {
	maxEnergy := 13.0
	res, _ := runSynthStudy(t, StudySpec{
		Knobs: synthKnobs(),
		Objectives: []Objective{
			{Metric: "throughput_per_hr", Maximize: true},
		},
		Constraints: []Constraint{{Metric: "energy_mwh", Max: &maxEnergy}},
		Population:  48,
		Generations: 3,
		Seed:        19,
	})
	if res.Best == nil {
		t.Fatal("a feasible best exists inside the constraint")
	}
	for _, c := range res.Frontier {
		if c.Objectives["energy_mwh"] > maxEnergy {
			t.Errorf("frontier member violates the energy constraint: %v", c.Objectives["energy_mwh"])
		}
	}
	sawInfeasible := false
	for _, c := range res.Evaluated {
		if !c.Feasible && c.Infeasible != "" {
			sawInfeasible = true
		}
		if c.Feasible && c.Objectives["energy_mwh"] > maxEnergy {
			t.Errorf("candidate marked feasible above the bound: %v", c.Objectives["energy_mwh"])
		}
	}
	if !sawInfeasible {
		t.Log("no infeasible twin evaluation observed (constraint screening kept them out) — acceptable")
	}
}

func TestDriverFailedEvaluationsBecomeInfeasible(t *testing.T) {
	eval := newSynthEval()
	// Everything in the hot half of the range fails "in the twin".
	eval.fail = func(sc core.Scenario) bool { return sc.WetBulbC > 7 }
	d, err := NewDriver(StudySpec{
		Knobs:       synthKnobs(),
		Population:  24,
		Generations: 2,
		Seed:        23,
	}, synthBase(), config.CoolingSpec{}, eval, Hooks{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("the surviving half of the space should yield a best")
	}
	if res.Best.Params["scenario.wetbulb_c"] > 7 {
		t.Fatalf("best landed in the failing region: %v", res.Best.Params)
	}
	failSeen := false
	for _, c := range res.Evaluated {
		if c.Infeasible == "synthetic failure" {
			failSeen = true
			if c.Feasible {
				t.Fatal("failed evaluation marked feasible")
			}
		}
	}
	if !failSeen {
		t.Fatal("no failed evaluation was archived")
	}
}

func TestDriverMaxTwinEvalsBudget(t *testing.T) {
	res, eval := runSynthStudy(t, StudySpec{
		Knobs:        synthKnobs(),
		Population:   48,
		Generations:  6,
		MaxTwinEvals: 15,
		Seed:         29,
	})
	// Baseline (gen −1) is outside the candidate budget.
	if got := eval.calls - 1; got > 15 {
		t.Fatalf("budget of 15 twin evals exceeded: %d", got)
	}
	if res.TwinEvals > 15 {
		t.Fatalf("accounting exceeded the budget: %d", res.TwinEvals)
	}
}

func TestDriverHooksFire(t *testing.T) {
	var twin, cached, screened, fallbacks, gens, progress int
	hooks := Hooks{
		OnTwinEval: func(c bool) {
			twin++
			if c {
				cached++
			}
		},
		OnScreened:   func() { screened++ },
		OnFallback:   func() { fallbacks++ },
		OnGeneration: func() { gens++ },
		OnProgress:   func(Progress) { progress++ },
	}
	eval := newSynthEval()
	d, err := NewDriver(StudySpec{
		Knobs:       synthKnobs(),
		Population:  48,
		Generations: 3,
		Seed:        31,
	}, synthBase(), config.CoolingSpec{}, eval, hooks, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if twin != res.TwinEvals || screened != res.Screened || fallbacks != res.Fallbacks {
		t.Fatalf("hook counts (%d,%d,%d) disagree with result (%d,%d,%d)",
			twin, screened, fallbacks, res.TwinEvals, res.Screened, res.Fallbacks)
	}
	if gens != res.Generations || progress != res.Generations {
		t.Fatalf("generation hooks: gens=%d progress=%d, want %d", gens, progress, res.Generations)
	}
	if res.Fallbacks == 0 {
		t.Fatal("calibration bootstrap should register fallbacks")
	}
}

func TestDriverWarmStartValidation(t *testing.T) {
	// Train a 1-dim model and try to warm-start a 2-dim study with it.
	spec1 := StudySpec{
		Knobs:       []Knob{{Name: "scenario.wetbulb_c", Min: 0.5, Max: 10, Step: 0.25}},
		Population:  16,
		Generations: 2,
		Seed:        37,
	}
	eval := newSynthEval()
	d, err := NewDriver(spec1, synthBase(), config.CoolingSpec{}, eval, Hooks{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil {
		t.Fatal("1-dim study should train a model")
	}
	if _, err := NewDriver(StudySpec{Knobs: synthKnobs()}, synthBase(), config.CoolingSpec{}, eval, Hooks{}, res.Model); err == nil {
		t.Fatal("dimension mismatch must be rejected")
	}

	// Matching study warm-starts cleanly and reuses the fit.
	d2, err := NewDriver(spec1, synthBase(), config.CoolingSpec{}, eval, Hooks{}, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestDriverRejectsBadStudies(t *testing.T) {
	base := synthBase()
	cases := []StudySpec{
		{}, // no knobs
		{Knobs: []Knob{{Name: "nope", Min: 0, Max: 1}}},              // unknown knob
		{Knobs: []Knob{{Name: "scenario.tick_sec", Min: 5, Max: 1}}}, // inverted range
		{Knobs: synthKnobs(), Objectives: []Objective{{Metric: "bogus"}}},
		{Knobs: synthKnobs(), Constraints: []Constraint{{Metric: "energy_mwh"}}}, // no bound
	}
	for i, spec := range cases {
		if _, err := NewDriver(spec, base, config.CoolingSpec{}, newSynthEval(), Hooks{}, nil); err == nil {
			t.Errorf("case %d: expected an error", i)
		}
	}
	if _, err := NewDriver(StudySpec{Knobs: synthKnobs()}, base, config.CoolingSpec{}, nil, Hooks{}, nil); err == nil {
		t.Error("nil evaluator must be rejected")
	}
}
