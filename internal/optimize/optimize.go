// Package optimize implements the L5 (autonomous) layer of the twin
// taxonomy (Fig. 2): the paper's example is "training an agent to
// perform automated setpoint control for improved cooling efficiency".
// Here the digital twin itself is the training ground: candidate plant
// setpoints — the cooling-tower leaving-water setpoint and the primary
// header differential-pressure setpoint — are evaluated against the
// simulated plant at a given operating point, and the feasible
// combination with the lowest auxiliary power is selected. Because every
// candidate is scored on the L4 model, no physical plant is put at risk
// (the virtual-prototyping value proposition of §I).
package optimize

import (
	"fmt"

	"exadigit/internal/cooling"
)

// Config describes one setpoint-optimization study.
type Config struct {
	// CTSupplyCandidatesC are candidate tower leaving-water setpoints.
	CTSupplyCandidatesC []float64
	// HTWHeaderCandidatesPa are candidate primary header ΔP setpoints.
	HTWHeaderCandidatesPa []float64
	// Operating point to optimize for.
	HeatMW   float64
	WetBulbC float64
	// MaxSecSupplyC is the feasibility constraint on the CDU secondary
	// supply temperature (the compute load's coolant spec).
	MaxSecSupplyC float64
	// SettleMaxSec bounds each candidate's settling run (default 2 h).
	SettleMaxSec float64
}

// Evaluation scores one candidate.
type Evaluation struct {
	CTSupplyC   float64
	HTWHeaderPa float64
	AuxMW       float64
	PUE         float64
	SecSupplyC  float64 // hottest CDU secondary supply at steady state
	Feasible    bool
}

// Result reports the study.
type Result struct {
	Baseline Evaluation
	// BaselineFeasible reports whether the plant's own setpoints satisfy
	// the study constraints — when false, SavingMW is measured against
	// an operating point the plant should not be run at, and the study's
	// real value is Best itself, not the delta.
	BaselineFeasible bool
	Best             Evaluation
	// BestFound is false when no candidate (nor the baseline) was
	// feasible; Best is then the zero Evaluation and SavingMW is 0.
	BestFound bool
	All       []Evaluation
	SavingMW  float64 // baseline aux − best aux (0 unless BestFound)
}

// Run evaluates every candidate pair on a fresh plant and returns the
// feasible minimum-auxiliary-power configuration.
func Run(plantCfg cooling.Config, cfg Config) (*Result, error) {
	if cfg.HeatMW <= 0 {
		return nil, fmt.Errorf("optimize: HeatMW must be positive")
	}
	if len(cfg.CTSupplyCandidatesC) == 0 {
		return nil, fmt.Errorf("optimize: no CT supply candidates")
	}
	if len(cfg.HTWHeaderCandidatesPa) == 0 {
		return nil, fmt.Errorf("optimize: no header candidates")
	}
	if cfg.MaxSecSupplyC <= 0 {
		cfg.MaxSecSupplyC = plantCfg.SecSupplySetC + 1.0
	}
	if cfg.SettleMaxSec <= 0 {
		cfg.SettleMaxSec = 2 * 3600
	}

	baseline, err := evaluate(plantCfg, cfg, plantCfg.CTSupplySetC, plantCfg.HTWHeaderSetPa)
	if err != nil {
		return nil, err
	}
	// Best must only ever hold a feasible evaluation: an infeasible
	// baseline (e.g. a plant whose own setpoints violate the coolant
	// spec at this operating point) used to seed Best unconditionally,
	// so feasible candidates with higher aux power could never displace
	// it and SavingMW went negative/meaningless.
	res := &Result{Baseline: baseline, BaselineFeasible: baseline.Feasible}
	if baseline.Feasible {
		res.Best, res.BestFound = baseline, true
	}
	for _, ct := range cfg.CTSupplyCandidatesC {
		for _, hdr := range cfg.HTWHeaderCandidatesPa {
			ev, err := evaluate(plantCfg, cfg, ct, hdr)
			if err != nil {
				return nil, err
			}
			res.All = append(res.All, ev)
			if ev.Feasible && (!res.BestFound || ev.AuxMW < res.Best.AuxMW) {
				res.Best, res.BestFound = ev, true
			}
		}
	}
	if res.BestFound {
		res.SavingMW = res.Baseline.AuxMW - res.Best.AuxMW
	}
	return res, nil
}

func evaluate(plantCfg cooling.Config, cfg Config, ctSupplyC, headerPa float64) (Evaluation, error) {
	ev := Evaluation{CTSupplyC: ctSupplyC, HTWHeaderPa: headerPa}
	if ctSupplyC <= cfg.WetBulbC {
		// A tower cannot cool below the wet bulb; candidate infeasible
		// without simulation.
		return ev, nil
	}
	trial := plantCfg
	trial.CTSupplySetC = ctSupplyC
	trial.HTWHeaderSetPa = headerPa
	plant, err := cooling.New(trial)
	if err != nil {
		return ev, err
	}
	heat := make([]float64, trial.NumCDUs)
	for i := range heat {
		heat[i] = cfg.HeatMW * 1e6 / float64(trial.NumCDUs)
	}
	in := cooling.Inputs{
		CDUHeatW: heat,
		WetBulbC: cfg.WetBulbC,
		ITPowerW: cfg.HeatMW * 1e6 / 0.945,
	}
	if err := plant.SettleToSteadyState(in, cfg.SettleMaxSec); err != nil {
		return ev, err
	}
	ev.AuxMW = plant.AuxPowerW() / 1e6
	ev.PUE = plant.PUE()
	o := plant.Snapshot()
	for i := range o.CDUs {
		if o.CDUs[i].SecSupplyTempC > ev.SecSupplyC {
			ev.SecSupplyC = o.CDUs[i].SecSupplyTempC
		}
	}
	ev.Feasible = ev.SecSupplyC <= cfg.MaxSecSupplyC
	return ev, nil
}
