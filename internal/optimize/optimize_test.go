package optimize

import (
	"testing"

	"exadigit/internal/cooling"
)

func TestRunValidation(t *testing.T) {
	cfg := cooling.Frontier()
	if _, err := Run(cfg, Config{}); err == nil {
		t.Error("zero heat should fail")
	}
	if _, err := Run(cfg, Config{HeatMW: 10}); err == nil {
		t.Error("no candidates should fail")
	}
	if _, err := Run(cfg, Config{HeatMW: 10, CTSupplyCandidatesC: []float64{24}}); err == nil {
		t.Error("no header candidates should fail")
	}
}

func TestSetpointOptimizationAtPartLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-candidate plant study")
	}
	// Part load in mild weather: the operating regime where relaxed
	// setpoints pay off (slower fans, slower pumps).
	res, err := Run(cooling.Frontier(), Config{
		CTSupplyCandidatesC:   []float64{22, 24, 26},
		HTWHeaderCandidatesPa: []float64{100e3, 140e3},
		HeatMW:                9,
		WetBulbC:              12,
		MaxSecSupplyC:         33.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) != 6 {
		t.Fatalf("evaluations = %d", len(res.All))
	}
	if !res.Best.Feasible {
		t.Fatal("best candidate must be feasible")
	}
	if res.Best.SecSupplyC > 33.0 {
		t.Errorf("best violates the supply constraint: %v", res.Best.SecSupplyC)
	}
	// The optimizer never does worse than the baseline (it keeps the
	// baseline when nothing beats it).
	if res.Best.AuxMW > res.Baseline.AuxMW+1e-9 {
		t.Errorf("best aux %v MW exceeds baseline %v MW", res.Best.AuxMW, res.Baseline.AuxMW)
	}
	// At this mild operating point a relaxed configuration should win
	// something.
	if res.SavingMW <= 0 {
		t.Errorf("expected positive aux saving at part load, got %v MW", res.SavingMW)
	}
	// PUE accompanies the aux saving.
	if res.Best.PUE > res.Baseline.PUE+1e-9 {
		t.Errorf("best PUE %v should not exceed baseline %v", res.Best.PUE, res.Baseline.PUE)
	}
}

func TestInfeasibleBaselineCannotWin(t *testing.T) {
	if testing.Short() {
		t.Skip("plant study")
	}
	// Probe run: measure what the baseline (CT 22 °C) and a colder
	// candidate (CT 20 °C) actually achieve at this operating point, so
	// the constraint can be pinned between them.
	probe, err := Run(cooling.Frontier(), Config{
		CTSupplyCandidatesC:   []float64{20},
		HTWHeaderCandidatesPa: []float64{140e3},
		HeatMW:                9,
		WetBulbC:              12,
		MaxSecSupplyC:         99,
	})
	if err != nil {
		t.Fatal(err)
	}
	cand := probe.All[0]
	if cand.SecSupplyC >= probe.Baseline.SecSupplyC {
		t.Skipf("colder tower water did not lower the secondary supply (%v vs %v)",
			cand.SecSupplyC, probe.Baseline.SecSupplyC)
	}

	// A coolant limit between the two makes the baseline infeasible and
	// the candidate feasible — but the candidate pays more aux power
	// (colder tower water costs fan/pump work). The buggy selection
	// seeded Best with the infeasible baseline and its lower AuxMW could
	// never be displaced.
	limit := (cand.SecSupplyC + probe.Baseline.SecSupplyC) / 2
	res, err := Run(cooling.Frontier(), Config{
		CTSupplyCandidatesC:   []float64{20},
		HTWHeaderCandidatesPa: []float64{140e3},
		HeatMW:                9,
		WetBulbC:              12,
		MaxSecSupplyC:         limit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineFeasible || res.Baseline.Feasible {
		t.Fatal("baseline should be infeasible under the pinned limit")
	}
	if !res.BestFound {
		t.Fatal("the feasible candidate should have been selected")
	}
	if !res.Best.Feasible || res.Best.CTSupplyC != 20 {
		t.Fatalf("best = %+v, want the feasible CT 20 candidate", res.Best)
	}
}

func TestNoFeasibleEvaluationReportsNone(t *testing.T) {
	if testing.Short() {
		t.Skip("plant study")
	}
	// An impossible coolant limit leaves nothing feasible: the study
	// must say so instead of selecting the infeasible baseline.
	res, err := Run(cooling.Frontier(), Config{
		CTSupplyCandidatesC:   []float64{24},
		HTWHeaderCandidatesPa: []float64{140e3},
		HeatMW:                9,
		WetBulbC:              12,
		MaxSecSupplyC:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFound || res.BaselineFeasible {
		t.Fatalf("nothing is feasible, got BestFound=%v BaselineFeasible=%v", res.BestFound, res.BaselineFeasible)
	}
	if res.SavingMW != 0 {
		t.Fatalf("SavingMW must be 0 with no feasible selection, got %v", res.SavingMW)
	}
}

func TestInfeasibleCandidatesRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("plant study")
	}
	// CT setpoint at/below wet bulb is physically unreachable and must
	// be skipped without simulation; absurdly hot setpoints break the
	// secondary constraint and must be marked infeasible.
	res, err := Run(cooling.Frontier(), Config{
		CTSupplyCandidatesC:   []float64{15, 38},
		HTWHeaderCandidatesPa: []float64{140e3},
		HeatMW:                16,
		WetBulbC:              20,
		MaxSecSupplyC:         32.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range res.All {
		if ev.CTSupplyC == 15 && ev.Feasible {
			t.Error("setpoint below wet bulb must be infeasible")
		}
		if ev.CTSupplyC == 38 && ev.Feasible {
			t.Error("38 °C tower water must break the secondary constraint")
		}
	}
	// With every candidate infeasible the optimizer holds the baseline.
	if res.Best.CTSupplyC != res.Baseline.CTSupplyC {
		t.Error("baseline should be retained when all candidates fail")
	}
}
