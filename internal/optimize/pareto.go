package optimize

import (
	"fmt"
	"sort"

	"exadigit/internal/raps"
)

// Objective is one optimization target over a report metric. Weight
// scales the metric's contribution to the scalarized ranking (default
// 1); Maximize flips the sense (objectives minimize by default).
type Objective struct {
	Metric   string  `json:"metric"`
	Weight   float64 `json:"weight,omitempty"`
	Maximize bool    `json:"maximize,omitempty"`
}

// Constraint bounds a report metric; candidates violating any
// constraint are infeasible (kept out of Best and the frontier, but
// still recorded and still used as surrogate training data).
type Constraint struct {
	Metric string   `json:"metric"`
	Max    *float64 `json:"max,omitempty"`
	Min    *float64 `json:"min,omitempty"`
}

// Candidate is one evaluated design point. Objectives holds the exact
// full-twin metric values — candidates only enter the archive through a
// twin evaluation, never from a surrogate prediction, so every reported
// number re-evaluates bit-identically.
type Candidate struct {
	// Params maps knob name → value (JSON maps serialize key-sorted, so
	// the wire form is deterministic).
	Params map[string]float64 `json:"params"`
	// Vector is the snapped knob vector in knob-list order.
	Vector []float64 `json:"vector"`
	// Objectives maps metric name → twin-exact value (objective and
	// constraint metrics both).
	Objectives map[string]float64 `json:"objectives"`
	// Scalar is the weighted scalarization the Best selection ranks by
	// (lower is better; maximized objectives contribute negatively).
	Scalar   float64 `json:"scalar"`
	Feasible bool    `json:"feasible"`
	// Infeasible carries why (constraint violation or evaluation error).
	Infeasible string `json:"infeasible,omitempty"`
	// Generation the candidate was twin-evaluated in (−1 = baseline).
	Generation int `json:"generation"`
	// CacheHit marks a twin evaluation served from the sweep service's
	// result cache or durable store instead of being computed.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// objectiveSet is the validated objective/constraint configuration.
type objectiveSet struct {
	objectives  []Objective
	constraints []Constraint
	// targets is the deduplicated union of objective and constraint
	// metrics, in first-mention order — the surrogate's target list.
	targets []string
}

func newObjectiveSet(objectives []Objective, constraints []Constraint) (*objectiveSet, error) {
	if len(objectives) == 0 {
		objectives = []Objective{{Metric: "energy_mwh", Weight: 1}}
	}
	os := &objectiveSet{
		objectives:  append([]Objective(nil), objectives...),
		constraints: append([]Constraint(nil), constraints...),
	}
	seen := make(map[string]bool)
	add := func(metric string) error {
		if _, err := metricValue(&zeroReport, metric); err != nil {
			return err
		}
		if !seen[metric] {
			seen[metric] = true
			os.targets = append(os.targets, metric)
		}
		return nil
	}
	seenObj := make(map[string]bool)
	for i := range os.objectives {
		o := &os.objectives[i]
		if o.Weight == 0 {
			o.Weight = 1
		}
		if o.Weight < 0 {
			return nil, fmt.Errorf("optimize: objective %q: negative weight (use maximize instead)", o.Metric)
		}
		if seenObj[o.Metric] {
			return nil, fmt.Errorf("optimize: objective %q listed twice", o.Metric)
		}
		seenObj[o.Metric] = true
		if err := add(o.Metric); err != nil {
			return nil, err
		}
	}
	for _, c := range os.constraints {
		if c.Max == nil && c.Min == nil {
			return nil, fmt.Errorf("optimize: constraint %q needs max and/or min", c.Metric)
		}
		if err := add(c.Metric); err != nil {
			return nil, err
		}
	}
	return os, nil
}

// values extracts every target metric into a map keyed by metric name.
func (os *objectiveSet) values(get func(string) (float64, error)) (map[string]float64, error) {
	m := make(map[string]float64, len(os.targets))
	for _, t := range os.targets {
		v, err := get(t)
		if err != nil {
			return nil, err
		}
		m[t] = v
	}
	return m, nil
}

// scalar ranks a metric map: Σ weight·value with maximized metrics
// negated. Lower is better.
func (os *objectiveSet) scalar(vals map[string]float64) float64 {
	s := 0.0
	for _, o := range os.objectives {
		v := vals[o.Metric]
		if o.Maximize {
			v = -v
		}
		s += o.Weight * v
	}
	return s
}

// feasible checks every constraint; the first violation names itself.
func (os *objectiveSet) feasible(vals map[string]float64) (bool, string) {
	for _, c := range os.constraints {
		v := vals[c.Metric]
		if c.Max != nil && v > *c.Max {
			return false, fmt.Sprintf("%s %.6g > max %.6g", c.Metric, v, *c.Max)
		}
		if c.Min != nil && v < *c.Min {
			return false, fmt.Sprintf("%s %.6g < min %.6g", c.Metric, v, *c.Min)
		}
	}
	return true, ""
}

// dominates reports whether a Pareto-dominates b: at least as good on
// every objective (in each objective's own sense) and strictly better
// on one.
func (os *objectiveSet) dominates(a, b map[string]float64) bool {
	strict := false
	for _, o := range os.objectives {
		av, bv := a[o.Metric], b[o.Metric]
		if o.Maximize {
			av, bv = -av, -bv
		}
		if av > bv {
			return false
		}
		if av < bv {
			strict = true
		}
	}
	return strict
}

// frontier extracts the non-dominated feasible subset, sorted by
// scalar (best first) for stable, readable output.
func (os *objectiveSet) frontier(cands []Candidate) []Candidate {
	var front []Candidate
	for i := range cands {
		if !cands[i].Feasible {
			continue
		}
		dominated := false
		for j := range cands {
			if i == j || !cands[j].Feasible {
				continue
			}
			if os.dominates(cands[j].Objectives, cands[i].Objectives) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, cands[i])
		}
	}
	sort.SliceStable(front, func(i, j int) bool { return front[i].Scalar < front[j].Scalar })
	return front
}

// zeroReport backs metric-name validation (metricValue never fails on
// a well-formed name regardless of report content).
var zeroReport raps.Report
