package optimize

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/raps"
)

// This file defines the co-design search space: named knobs over twin
// design and control parameters — AutoCSM sizing quantities, plant
// setpoints, solver config, and workload/partition mix — each mapped
// onto a candidate core.Scenario, plus the objective metrics extracted
// from the twin's report.

// Knob is one search dimension.
type Knob struct {
	// Name selects what the dimension controls (see KnobNames).
	Name string  `json:"name"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	// Step quantizes the dimension onto a grid anchored at Min (0 →
	// continuous). Integer-valued knobs (equipment counts, job caps)
	// default to step 1. Quantization is what makes candidate scenarios
	// content-hashable across generations and re-runs: two draws that
	// snap to the same grid point are the same scenario, and the sweep
	// service's cache serves the second for free.
	Step float64 `json:"step,omitempty"`
}

// knobKind classifies how a knob applies to a candidate.
type knobKind int

const (
	knobCooling  knobKind = iota // mutates the candidate CoolingSpec
	knobScenario                 // mutates scalar Scenario fields
	knobWorkload                 // mutates the scenario Generator
)

type knobDef struct {
	kind    knobKind
	integer bool
	// design marks AutoCSM sizing inputs, only valid when the base
	// plant is generated (a preset plant is hand-calibrated; resizing
	// it silently would discard the calibration).
	design bool
	apply  func(sc *core.Scenario, cs *config.CoolingSpec, v float64)
}

// knobDefs is the registry of supported knob names.
var knobDefs = map[string]knobDef{
	// Plant control setpoints — applied to presets and generated plants
	// alike via the CoolingSpec setpoint overlay.
	"cooling.ct_supply_set_c": {kind: knobCooling,
		apply: func(_ *core.Scenario, cs *config.CoolingSpec, v float64) { cs.CTSupplySetC = v }},
	"cooling.htw_header_set_pa": {kind: knobCooling,
		apply: func(_ *core.Scenario, cs *config.CoolingSpec, v float64) { cs.HTWHeaderSetPa = v }},

	// AutoCSM sizing quantities (generated plants only).
	"cooling.sec_supply_c": {kind: knobCooling, design: true,
		apply: func(_ *core.Scenario, cs *config.CoolingSpec, v float64) { cs.SecSupplyC = v }},
	"cooling.ct_supply_c": {kind: knobCooling, design: true,
		apply: func(_ *core.Scenario, cs *config.CoolingSpec, v float64) { cs.CTSupplyC = v }},
	"cooling.primary_flow_gpm": {kind: knobCooling, design: true,
		apply: func(_ *core.Scenario, cs *config.CoolingSpec, v float64) { cs.PrimaryFlowGPM = v }},
	"cooling.tower_flow_gpm": {kind: knobCooling, design: true,
		apply: func(_ *core.Scenario, cs *config.CoolingSpec, v float64) { cs.TowerFlowGPM = v }},
	"cooling.num_towers": {kind: knobCooling, design: true, integer: true,
		apply: func(_ *core.Scenario, cs *config.CoolingSpec, v float64) { cs.NumTowers = int(v) }},
	"cooling.cells_per_tower": {kind: knobCooling, design: true, integer: true,
		apply: func(_ *core.Scenario, cs *config.CoolingSpec, v float64) { cs.CellsPerTower = int(v) }},

	// Solver config: 0 keeps the plant's solver, ≥0.5 selects the
	// adaptive fast path — letting a study trade solver cost against
	// objective fidelity.
	"cooling.solver_adaptive": {kind: knobCooling, integer: true,
		apply: func(_ *core.Scenario, cs *config.CoolingSpec, v float64) {
			if v >= 0.5 {
				cs.Solver = "adaptive"
			}
		}},

	// Scenario scalars.
	"scenario.tick_sec": {kind: knobScenario,
		apply: func(sc *core.Scenario, _ *config.CoolingSpec, v float64) { sc.TickSec = v }},
	"scenario.wetbulb_c": {kind: knobScenario,
		apply: func(sc *core.Scenario, _ *config.CoolingSpec, v float64) { sc.WetBulbC = v }},

	// Workload mix (the scenario-level generator; partition workloads
	// inherit it when Partitions is empty).
	"workload.arrival_mean_sec": {kind: knobWorkload,
		apply: func(sc *core.Scenario, _ *config.CoolingSpec, v float64) { sc.Generator.ArrivalMeanSec = v }},
	"workload.nodes_mean": {kind: knobWorkload,
		apply: func(sc *core.Scenario, _ *config.CoolingSpec, v float64) { sc.Generator.NodesMean = v }},
	"workload.max_nodes": {kind: knobWorkload, integer: true,
		apply: func(sc *core.Scenario, _ *config.CoolingSpec, v float64) { sc.Generator.MaxNodes = int(v) }},
	"workload.wall_mean_sec": {kind: knobWorkload,
		apply: func(sc *core.Scenario, _ *config.CoolingSpec, v float64) { sc.Generator.WallMeanSec = v }},
}

// KnobNames lists every supported knob name.
func KnobNames() []string {
	names := make([]string, 0, len(knobDefs))
	for n := range knobDefs {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

// Space is a validated knob list bound to a base scenario and plant.
type Space struct {
	knobs []Knob
	defs  []knobDef
}

// NewSpace validates the knobs against the base plant. basePlant is the
// CoolingSpec candidates will mutate (the scenario override when set,
// else the system spec's plant).
func NewSpace(knobs []Knob, basePlant config.CoolingSpec) (*Space, error) {
	if len(knobs) == 0 {
		return nil, fmt.Errorf("optimize: study needs at least one knob")
	}
	s := &Space{knobs: append([]Knob(nil), knobs...), defs: make([]knobDef, len(knobs))}
	seen := make(map[string]bool, len(knobs))
	for i := range s.knobs {
		k := &s.knobs[i]
		def, ok := knobDefs[k.Name]
		if !ok {
			return nil, fmt.Errorf("optimize: unknown knob %q (supported: %s)",
				k.Name, strings.Join(KnobNames(), ", "))
		}
		if seen[k.Name] {
			return nil, fmt.Errorf("optimize: knob %q listed twice", k.Name)
		}
		seen[k.Name] = true
		if def.integer && k.Step == 0 {
			k.Step = 1
		}
		if !(k.Min < k.Max) {
			return nil, fmt.Errorf("optimize: knob %q: min %v must be below max %v", k.Name, k.Min, k.Max)
		}
		if k.Step < 0 {
			return nil, fmt.Errorf("optimize: knob %q: step must be non-negative", k.Name)
		}
		if def.design && basePlant.Preset != "" {
			return nil, fmt.Errorf("optimize: knob %q resizes the plant, but the base plant is the hand-calibrated preset %q — clear the preset and supply design quantities to search sizing",
				k.Name, basePlant.Preset)
		}
		s.defs[i] = def
	}
	return s, nil
}

// Dims is the search dimensionality.
func (s *Space) Dims() int { return len(s.knobs) }

// Knobs returns the validated knob list (integer steps defaulted).
func (s *Space) Knobs() []Knob { return append([]Knob(nil), s.knobs...) }

// Bounds returns the per-dimension [lo, hi] arrays (surrogate
// normalization ranges).
func (s *Space) Bounds() (lo, hi []float64) {
	lo = make([]float64, len(s.knobs))
	hi = make([]float64, len(s.knobs))
	for i, k := range s.knobs {
		lo[i], hi[i] = k.Min, k.Max
	}
	return lo, hi
}

// Snap clamps and quantizes a raw vector onto the space's grid,
// in place, and returns it.
func (s *Space) Snap(vec []float64) []float64 {
	for i, k := range s.knobs {
		v := vec[i]
		if k.Step > 0 {
			v = k.Min + math.Round((v-k.Min)/k.Step)*k.Step
		}
		if v < k.Min {
			v = k.Min
		}
		if v > k.Max {
			v = k.Max
		}
		if s.defs[i].integer {
			v = math.Round(v)
		}
		vec[i] = v
	}
	return vec
}

// Key is the canonical identity of a snapped vector — the memo key that
// makes re-encountered candidates free.
func (s *Space) Key(vec []float64) string {
	var b strings.Builder
	for i, v := range vec {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.FormatFloat(v, 'g', 12, 64))
	}
	return b.String()
}

// Params labels a vector with its knob names (for reports).
func (s *Space) Params(vec []float64) map[string]float64 {
	m := make(map[string]float64, len(vec))
	for i, k := range s.knobs {
		m[k.Name] = vec[i]
	}
	return m
}

// Apply builds the candidate scenario for a snapped vector: the base
// scenario with the knob values overlaid, carrying its own CoolingSpec
// clone whenever any cooling knob is present (so each candidate plant
// is content-addressed independently by the sweep service).
func (s *Space) Apply(base core.Scenario, basePlant config.CoolingSpec, vec []float64) (core.Scenario, error) {
	if len(vec) != len(s.knobs) {
		return core.Scenario{}, fmt.Errorf("optimize: vector has %d dims, space has %d", len(vec), len(s.knobs))
	}
	sc := base
	var cs *config.CoolingSpec
	for i, def := range s.defs {
		if def.kind == knobCooling {
			if cs == nil {
				clone := basePlant
				cs = &clone
				sc.CoolingSpec = cs
				sc.Cooling = true
			}
		}
		def.apply(&sc, cs, vec[i])
	}
	return sc, nil
}

// metricValue extracts a named objective/constraint metric from a
// report. aux_mw is derived as AvgPowerMW·(AvgPUE−1) — the cooling
// overhead the PUE carries on top of the IT load.
func metricValue(rep *raps.Report, metric string) (float64, error) {
	switch metric {
	case "energy_mwh":
		return rep.EnergyMWh, nil
	case "avg_pue":
		return rep.AvgPUE, nil
	case "aux_mw":
		if rep.AvgPUE <= 0 {
			return 0, nil
		}
		return rep.AvgPowerMW * (rep.AvgPUE - 1), nil
	case "throughput_per_hr":
		return rep.ThroughputPerHr, nil
	case "avg_power_mw":
		return rep.AvgPowerMW, nil
	case "loss_mw":
		return rep.AvgLossMW, nil
	case "jobs_completed":
		return float64(rep.JobsCompleted), nil
	default:
		return 0, fmt.Errorf("optimize: unknown metric %q (supported: %s)",
			metric, strings.Join(MetricNames(), ", "))
	}
}

// MetricNames lists every supported objective/constraint metric.
func MetricNames() []string {
	return []string{"energy_mwh", "avg_pue", "aux_mw", "throughput_per_hr", "avg_power_mw", "loss_mw", "jobs_completed"}
}

// sortStrings is a tiny insertion sort: the knob registry is small and
// this avoids importing sort for one call site.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
