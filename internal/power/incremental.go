package power

// Incremental is the event-driven evaluation engine for a Model. The
// dense Model.Compute sweeps every node and every chassis conversion
// chain on each call even though utilization is piecewise-constant — it
// only changes when a job starts, ends, or crosses a 15 s trace quantum.
// Incremental exploits that structure: per-node powers and per-chassis
// conversion results are cached, utilization updates mark the touched
// chassis dirty, and ComputeDelta re-evaluates only the dirty chassis
// before re-aggregating rack/CDU/system totals in exactly the summation
// order Compute uses. On Frontier-shaped topologies the headline fields
// (TotalW, NodeOutW, losses, per-rack and per-CDU inputs) are
// bit-identical to Compute; the Breakdown's CPU/GPU entries differ only
// by hierarchical-vs-flat summation rounding (≲1e-12 relative).
//
// The Model must not be mutated after NewIncremental — the engine caches
// component powers and the conversion chain. Compute remains the
// reference implementation; the equivalence is pinned by tests.
type Incremental struct {
	m *Model

	// Per-node caches (length Topo.NodesTotal): P_S48V and the CPU/GPU
	// component contributions feeding the Fig. 4 breakdown.
	nodeP    []float64
	nodeCPUW []float64
	nodeGPUW []float64

	chassis   []chassisCache
	dirtyList []int

	// nodeChassis maps a node index to its chassis.
	nodeChassis []int32

	// Idle per-node values, used for filler slots the dense loop pads
	// incomplete final chassis with.
	idleP, idleCPUW, idleGPUW float64

	// Constant breakdown entries (independent of utilization), captured
	// from the seeding reference Compute so they match it bit-for-bit.
	ramW, nvmeW, nicW float64

	sp SystemPower
}

// chassisCache holds one chassis's cached evaluation. start/end bound the
// chassis's real node slots; filler counts the idle padding slots the
// dense loop processes for topologies whose node count is not a multiple
// of the chassis size (the cache replicates Compute's iteration exactly).
type chassisCache struct {
	start, end int
	filler     int
	dirty      bool

	out        float64 // Σ P_S48V over the chassis's nodes
	cpuW, gpuW float64 // breakdown contributions
	res        ChassisResult
}

// NewIncremental builds the engine with every node idle and the cached
// state seeded from a reference Compute call.
func (m *Model) NewIncremental() *Incremental {
	t := m.Topo
	total := t.NodesTotal
	numChassis := t.NumRacks() * t.ChassisPerRack
	inc := &Incremental{
		m:           m,
		nodeP:       make([]float64, total),
		nodeCPUW:    make([]float64, total),
		nodeGPUW:    make([]float64, total),
		chassis:     make([]chassisCache, numChassis),
		nodeChassis: make([]int32, total),
		idleP:       m.Spec.NodePower(0, 0),
		idleCPUW:    m.Spec.CPUIdle,
		idleGPUW:    float64(m.Spec.GPUsPerNode) * m.Spec.GPUIdle,
	}

	// Replicate Compute's slot iteration so chassis boundaries — including
	// the padded tail when NodesTotal is not chassis-aligned — match the
	// dense sweep exactly.
	cur := 0
	for c := range inc.chassis {
		start := cur
		for i := 0; i < t.NodesPerChassis; i++ {
			cur++
			if cur > total {
				break
			}
		}
		end := cur
		realStart, realEnd := start, end
		if realStart > total {
			realStart = total
		}
		if realEnd > total {
			realEnd = total
		}
		inc.chassis[c] = chassisCache{
			start:  realStart,
			end:    realEnd,
			filler: (end - start) - (realEnd - realStart),
		}
		for n := realStart; n < realEnd; n++ {
			inc.nodeChassis[n] = int32(c)
		}
	}

	for i := range inc.nodeP {
		inc.nodeP[i] = inc.idleP
		inc.nodeCPUW[i] = inc.idleCPUW
		inc.nodeGPUW[i] = inc.idleGPUW
	}
	for c := range inc.chassis {
		inc.refreshChassis(c)
	}

	// Seed sp (and the constant breakdown entries) from the reference
	// implementation, then overwrite with the incremental aggregation so
	// subsequent deltas are self-consistent.
	zero := make([]float64, total)
	m.Compute(zero, zero, &inc.sp)
	inc.ramW = inc.sp.Breakdown.RAM
	inc.nvmeW = inc.sp.Breakdown.NVMe
	inc.nicW = inc.sp.Breakdown.NIC
	inc.resum()
	return inc
}

// Power returns the engine's live SystemPower. The pointer stays valid
// across ComputeDelta calls; slices within are reused, not reallocated.
func (inc *Incremental) Power() *SystemPower { return &inc.sp }

// Dirty reports whether any utilization change is pending aggregation.
func (inc *Incremental) Dirty() bool { return len(inc.dirtyList) > 0 }

// SetNodes applies one utilization pair to a set of nodes — a job's
// allocation, where every node runs at the job's current trace sample —
// evaluating the Eq. 3 node power once for the whole set. Nodes whose
// cached power is unchanged are skipped without dirtying their chassis.
func (inc *Incremental) SetNodes(nodes []int, cpuUtil, gpuUtil float64) {
	s := inc.m.Spec
	p := s.NodePower(cpuUtil, gpuUtil)
	cu, gu := clamp01(cpuUtil), clamp01(gpuUtil)
	cpuW := s.CPUIdle + cu*(s.CPUMax-s.CPUIdle)
	gpuW := float64(s.GPUsPerNode) * (s.GPUIdle + gu*(s.GPUMax-s.GPUIdle))
	for _, n := range nodes {
		if n < 0 || n >= len(inc.nodeP) {
			continue
		}
		if inc.nodeP[n] == p && inc.nodeCPUW[n] == cpuW && inc.nodeGPUW[n] == gpuW {
			continue
		}
		inc.nodeP[n] = p
		inc.nodeCPUW[n] = cpuW
		inc.nodeGPUW[n] = gpuW
		inc.markDirty(int(inc.nodeChassis[n]))
	}
}

// SetNodesIdle resets a released allocation to idle.
func (inc *Incremental) SetNodesIdle(nodes []int) { inc.SetNodes(nodes, 0, 0) }

func (inc *Incremental) markDirty(c int) {
	if !inc.chassis[c].dirty {
		inc.chassis[c].dirty = true
		inc.dirtyList = append(inc.dirtyList, c)
	}
}

// ComputeDelta re-evaluates the dirty chassis and refreshes the
// aggregates, returning the live SystemPower. With no pending changes it
// returns the cached result untouched — the O(1) fast path for ticks
// where utilization did not move.
func (inc *Incremental) ComputeDelta() *SystemPower {
	if len(inc.dirtyList) == 0 {
		return &inc.sp
	}
	for _, c := range inc.dirtyList {
		inc.refreshChassis(c)
	}
	inc.dirtyList = inc.dirtyList[:0]
	inc.resum()
	return &inc.sp
}

// refreshChassis re-sums the chassis's cached node powers (in node order,
// matching Compute) and re-evaluates its conversion chain.
func (inc *Incremental) refreshChassis(c int) {
	cc := &inc.chassis[c]
	var out, cpuW, gpuW float64
	for i := cc.start; i < cc.end; i++ {
		out += inc.nodeP[i]
		cpuW += inc.nodeCPUW[i]
		gpuW += inc.nodeGPUW[i]
	}
	for k := 0; k < cc.filler; k++ {
		out += inc.idleP
		cpuW += inc.idleCPUW
		gpuW += inc.idleGPUW
	}
	cc.out, cc.cpuW, cc.gpuW = out, cpuW, gpuW
	cc.res = inc.m.Chain.Chassis(out)
	cc.dirty = false
}

// resum rebuilds every aggregate from the per-chassis caches in the same
// rack-major order Compute uses, so rack, CDU, and system totals carry
// identical rounding to the dense sweep.
func (inc *Incremental) resum() {
	m := inc.m
	t := m.Topo
	numRacks := t.NumRacks()
	out := &inc.sp
	if cap(out.PerCDUInputW) < t.NumCDUs {
		out.PerCDUInputW = make([]float64, t.NumCDUs)
	}
	out.PerCDUInputW = out.PerCDUInputW[:t.NumCDUs]
	for i := range out.PerCDUInputW {
		out.PerCDUInputW[i] = 0
	}
	if cap(out.PerRackInputW) < numRacks {
		out.PerRackInputW = make([]float64, numRacks)
	}
	out.PerRackInputW = out.PerRackInputW[:numRacks]
	out.TotalW, out.NodeOutW, out.RectLossW, out.SivocLossW, out.SwitchW = 0, 0, 0, 0, 0

	var cpuW, gpuW float64
	ci := 0
	for rack := 0; rack < numRacks; rack++ {
		rackInput := 0.0
		for ch := 0; ch < t.ChassisPerRack; ch++ {
			cc := &inc.chassis[ci]
			ci++
			out.NodeOutW += cc.out
			out.RectLossW += cc.res.RectLossW
			out.SivocLossW += cc.res.SivocLossW
			rackInput += cc.res.InputW
			cpuW += cc.cpuW
			gpuW += cc.gpuW
		}
		sw := float64(t.SwitchesPerRack) * m.Spec.Switch
		rackInput += sw
		out.SwitchW += sw
		out.PerRackInputW[rack] = rackInput
		out.PerCDUInputW[t.CDUOfRack(rack)] += rackInput
		out.TotalW += rackInput
	}
	out.CDUPumpW = float64(t.NumCDUs) * m.Spec.CDUPump
	out.TotalW += out.CDUPumpW
	out.Breakdown = Breakdown{
		CPU: cpuW, GPU: gpuW,
		RAM: inc.ramW, NVMe: inc.nvmeW, NIC: inc.nicW,
		Switches: out.SwitchW,
		RectLoss: out.RectLossW, SivocLoss: out.SivocLossW,
		CDUPumps: out.CDUPumpW,
	}
}
