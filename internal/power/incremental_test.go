package power

import (
	"math"
	"math/rand"
	"testing"
)

// relDiff returns |a-b| / max(|a|,|b|,1).
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	m := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return d / m
}

func assertSystemPowerClose(t *testing.T, step int, want, got *SystemPower, tol float64) {
	t.Helper()
	check := func(name string, a, b float64) {
		t.Helper()
		if relDiff(a, b) > tol {
			t.Fatalf("step %d: %s: dense %v vs incremental %v (rel %v)", step, name, a, b, relDiff(a, b))
		}
	}
	check("TotalW", want.TotalW, got.TotalW)
	check("NodeOutW", want.NodeOutW, got.NodeOutW)
	check("RectLossW", want.RectLossW, got.RectLossW)
	check("SivocLossW", want.SivocLossW, got.SivocLossW)
	check("SwitchW", want.SwitchW, got.SwitchW)
	check("CDUPumpW", want.CDUPumpW, got.CDUPumpW)
	check("Breakdown.CPU", want.Breakdown.CPU, got.Breakdown.CPU)
	check("Breakdown.GPU", want.Breakdown.GPU, got.Breakdown.GPU)
	check("Breakdown.RAM", want.Breakdown.RAM, got.Breakdown.RAM)
	check("Breakdown.NVMe", want.Breakdown.NVMe, got.Breakdown.NVMe)
	check("Breakdown.NIC", want.Breakdown.NIC, got.Breakdown.NIC)
	check("Breakdown.Total", want.Breakdown.Total(), got.Breakdown.Total())
	if len(want.PerRackInputW) != len(got.PerRackInputW) {
		t.Fatalf("step %d: rack count %d vs %d", step, len(want.PerRackInputW), len(got.PerRackInputW))
	}
	for i := range want.PerRackInputW {
		check("PerRackInputW", want.PerRackInputW[i], got.PerRackInputW[i])
	}
	for i := range want.PerCDUInputW {
		check("PerCDUInputW", want.PerCDUInputW[i], got.PerCDUInputW[i])
	}
}

// TestIncrementalMatchesCompute drives a random sequence of job-shaped
// utilization updates through both the dense reference Compute and the
// incremental ComputeDelta, asserting every aggregate agrees to 1e-9
// relative at every step (§ISSUE acceptance; in practice agreement is
// ≲1e-12, and bit-exact for the non-breakdown fields).
func TestIncrementalMatchesCompute(t *testing.T) {
	for _, mode := range []Mode{ACBaseline, SmartRectifier, DC380} {
		m := NewFrontierModel()
		m.Chain.Mode = mode
		inc := m.NewIncremental()
		rng := rand.New(rand.NewSource(42))
		n := m.Topo.NodesTotal

		cpu := make([]float64, n)
		gpu := make([]float64, n)
		var ref SystemPower

		type alloc struct {
			nodes []int
		}
		var live []alloc
		for step := 0; step < 60; step++ {
			if len(live) > 0 && rng.Float64() < 0.3 {
				// Release a random allocation.
				k := rng.Intn(len(live))
				a := live[k]
				live = append(live[:k], live[k+1:]...)
				inc.SetNodesIdle(a.nodes)
				for _, nd := range a.nodes {
					cpu[nd], gpu[nd] = 0, 0
				}
			} else {
				// Start a job on a random contiguous-ish node set with a
				// single utilization pair (how RAPS drives the model).
				count := 1 + rng.Intn(800)
				start := rng.Intn(n)
				cu, gu := rng.Float64(), rng.Float64()
				nodes := make([]int, 0, count)
				for i := 0; i < count; i++ {
					nodes = append(nodes, (start+i)%n)
				}
				inc.SetNodes(nodes, cu, gu)
				for _, nd := range nodes {
					cpu[nd], gpu[nd] = cu, gu
				}
				live = append(live, alloc{nodes: nodes})
			}
			got := inc.ComputeDelta()
			m.Compute(cpu, gpu, &ref)
			assertSystemPowerClose(t, step, &ref, got, 1e-9)

			// Heat vectors agree too (per-CDU channel of the issue).
			wantHeat := m.CDUHeatW(&ref)
			gotHeat := m.CDUHeatInto(got, nil)
			for i := range wantHeat {
				if relDiff(wantHeat[i], gotHeat[i]) > 1e-9 {
					t.Fatalf("mode %v step %d: CDU %d heat %v vs %v", mode, step, i, wantHeat[i], gotHeat[i])
				}
			}
		}
	}
}

// TestIncrementalNoOpDelta pins the O(1) fast path: with no pending
// changes ComputeDelta returns the cached state unchanged.
func TestIncrementalNoOpDelta(t *testing.T) {
	m := NewFrontierModel()
	inc := m.NewIncremental()
	nodes := []int{0, 1, 2, 100, 5000}
	inc.SetNodes(nodes, 0.5, 0.8)
	first := *inc.ComputeDelta()
	if inc.Dirty() {
		t.Fatal("engine still dirty after ComputeDelta")
	}
	// Re-applying identical utilization must not dirty anything.
	inc.SetNodes(nodes, 0.5, 0.8)
	if inc.Dirty() {
		t.Fatal("identical utilization re-application dirtied the engine")
	}
	second := inc.ComputeDelta()
	if first.TotalW != second.TotalW || first.NodeOutW != second.NodeOutW {
		t.Fatalf("no-op delta changed totals: %v vs %v", first.TotalW, second.TotalW)
	}
}

// TestIncrementalUnalignedTopology covers node counts that do not fill
// the final chassis (the Setonix-style partitions), where the dense loop
// pads with idle filler slots.
func TestIncrementalUnalignedTopology(t *testing.T) {
	m := NewFrontierModel()
	m.Topo = Topology{
		NodesTotal:      1592, // 12.4 racks — last chassis partial
		NodesPerRack:    128,
		NodesPerChassis: 16,
		ChassisPerRack:  8,
		SwitchesPerRack: 32,
		RacksPerCDU:     3,
		NumCDUs:         5,
	}
	if err := m.Topo.Validate(); err != nil {
		t.Fatal(err)
	}
	inc := m.NewIncremental()
	n := m.Topo.NodesTotal
	cpu := make([]float64, n)
	gpu := make([]float64, n)
	rng := rand.New(rand.NewSource(9))
	var ref SystemPower
	for step := 0; step < 20; step++ {
		count := 1 + rng.Intn(300)
		start := rng.Intn(n)
		cu, gu := rng.Float64(), rng.Float64()
		nodes := make([]int, 0, count)
		for i := 0; i < count; i++ {
			nodes = append(nodes, (start+i)%n)
		}
		inc.SetNodes(nodes, cu, gu)
		for _, nd := range nodes {
			cpu[nd], gpu[nd] = cu, gu
		}
		got := inc.ComputeDelta()
		m.Compute(cpu, gpu, &ref)
		assertSystemPowerClose(t, step, &ref, got, 1e-9)
	}
}

// TestSetNodesOutOfRange: indices outside the machine are ignored, not
// panicked on (defensive parity with Compute's bounds handling).
func TestSetNodesOutOfRange(t *testing.T) {
	m := NewFrontierModel()
	inc := m.NewIncremental()
	before := inc.Power().TotalW
	inc.SetNodes([]int{-1, m.Topo.NodesTotal, m.Topo.NodesTotal + 5}, 1, 1)
	if inc.Dirty() {
		t.Fatal("out-of-range nodes dirtied the engine")
	}
	if got := inc.ComputeDelta().TotalW; got != before {
		t.Fatalf("total changed: %v vs %v", got, before)
	}
}

func BenchmarkDenseCompute(b *testing.B) {
	m := NewFrontierModel()
	n := m.Topo.NodesTotal
	cpu := make([]float64, n)
	gpu := make([]float64, n)
	for i := range cpu {
		cpu[i], gpu[i] = 0.5, 0.7
	}
	var out SystemPower
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Compute(cpu, gpu, &out)
	}
}

// BenchmarkIncrementalDelta measures a representative event tick: one
// 268-node job (the Table IV average) crosses a trace quantum.
func BenchmarkIncrementalDelta(b *testing.B) {
	m := NewFrontierModel()
	inc := m.NewIncremental()
	nodes := make([]int, 268)
	for i := range nodes {
		nodes[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := 0.3 + 0.4*float64(i%2)
		inc.SetNodes(nodes, u, u)
		inc.ComputeDelta()
	}
}
