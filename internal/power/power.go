// Package power implements the dynamic power and conversion-loss model of
// RAPS (§III-B): per-node power from CPU/GPU utilization (Eq. 3 with the
// Table I component values), the AC→DC rectifier and DC-DC SIVOC loss
// chain (Eqs. 1–2, Fig. 3), rack- and CDU-level aggregation (Eq. 4), and
// the two what-if variants evaluated in §IV-3 — smart load-sharing
// rectifier staging and direct 380 V DC distribution.
package power

import "fmt"

// ComponentSpec holds the Table I per-component power values (watts) and
// per-node multiplicities for a Frontier-like node.
type ComponentSpec struct {
	CPUIdle, CPUMax float64
	GPUIdle, GPUMax float64
	RAM             float64 // per node (average)
	NVMe            float64 // per device
	NIC             float64 // per device
	Switch          float64 // per switch (average)
	CDUPump         float64 // per CDU (average)

	GPUsPerNode int
	NICsPerNode int
	NVMePerNode int
}

// FrontierComponents returns the published Table I values: CPU [90, 280] W,
// GPU [88, 560] W, RAM 74 W, NVMe 15 W ×2, NIC 20 W ×4, switch 250 W,
// CDU pump 8.7 kW.
func FrontierComponents() ComponentSpec {
	return ComponentSpec{
		CPUIdle: 90, CPUMax: 280,
		GPUIdle: 88, GPUMax: 560,
		RAM: 74, NVMe: 15, NIC: 20,
		Switch: 250, CDUPump: 8700,
		GPUsPerNode: 4, NICsPerNode: 4, NVMePerNode: 2,
	}
}

// NodeIdle returns the node power at zero utilization (626 W for Frontier).
func (s ComponentSpec) NodeIdle() float64 { return s.NodePower(0, 0) }

// NodePeak returns the node power at full utilization (2704 W for Frontier).
func (s ComponentSpec) NodePeak() float64 { return s.NodePower(1, 1) }

// NodePower implements Eq. 3: P = Pcpu + 4·Pgpu + 4·Pnic + Pram + 2·Pnvme,
// with CPU and GPU power linearly interpolated between idle and max by
// utilization (clamped to [0, 1]).
func (s ComponentSpec) NodePower(cpuUtil, gpuUtil float64) float64 {
	cu := clamp01(cpuUtil)
	gu := clamp01(gpuUtil)
	cpu := s.CPUIdle + cu*(s.CPUMax-s.CPUIdle)
	gpu := s.GPUIdle + gu*(s.GPUMax-s.GPUIdle)
	return cpu +
		float64(s.GPUsPerNode)*gpu +
		float64(s.NICsPerNode)*s.NIC +
		s.RAM +
		float64(s.NVMePerNode)*s.NVMe
}

// RectifierCurve is the load-dependent efficiency of one active rectifier,
// a two-sided quadratic peaking at exactly (POptW, EtaMax) — §IV-3 gives
// 96.3 % at 7.5 kW, with a 1–2 % drop at the near-idle operating point.
//
//	η(P) = EtaMax − D·((P − POpt)/POpt)²
//
// with D = LowDroop below the optimum and D = HighDroop above it. The
// droop coefficients are calibrated so that the chassis-level conversion
// reproduces the Table III verification points (idle 7.24 MW, HPL-core
// 22.3 MW, peak 28.2 MW) given the Table I loads.
type RectifierCurve struct {
	EtaMax    float64 // peak efficiency at POptW
	LowDroop  float64 // quadratic droop coefficient below POptW
	HighDroop float64 // quadratic droop coefficient above POptW
	POptW     float64 // optimal load per rectifier
	PMaxW     float64 // continuous rating per rectifier
}

// FrontierRectifier returns the Table III-calibrated curve. At the
// Frontier idle point (≈2.56 kW per rectifier) η ≈ 0.941; at the peak
// point (≈11.0 kW) η ≈ 0.954.
func FrontierRectifier() RectifierCurve {
	return RectifierCurve{
		EtaMax:    0.963,
		LowDroop:  0.0506,
		HighDroop: 0.0405,
		POptW:     7500,
		PMaxW:     15000,
	}
}

// Eta returns the conversion efficiency at output load loadW.
func (r RectifierCurve) Eta(loadW float64) float64 {
	if loadW <= 0 {
		return r.EtaMax - r.LowDroop
	}
	f := (loadW - r.POptW) / r.POptW
	if loadW < r.POptW {
		return r.EtaMax - r.LowDroop*f*f
	}
	return r.EtaMax - r.HighDroop*f*f
}

// Mode selects the power-distribution architecture under study.
type Mode int

const (
	// ACBaseline is Frontier as built: all chassis rectifiers share load.
	ACBaseline Mode = iota
	// SmartRectifier stages rectifiers so each runs near its optimum
	// (what-if 1 in §IV-3).
	SmartRectifier
	// DC380 bypasses rectification with direct 380 V DC distribution
	// (what-if 2 in §IV-3), leaving the SIVOC stage and a small DC
	// busway distribution loss.
	DC380
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ACBaseline:
		return "ac-baseline"
	case SmartRectifier:
		return "smart-rectifier"
	case DC380:
		return "dc380"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ConversionChain models the two-stage conversion of Fig. 3: chassis
// rectifier group (four parallel rectifiers per chassis feeding a common
// 380 V DC bus) followed by per-node SIVOCs stepping down to 48 V.
type ConversionChain struct {
	Rect              RectifierCurve
	EtaSIVOC          float64 // DC-DC stage efficiency (0.98 per §III-B1)
	EtaDCDistribution float64 // busway efficiency in DC380 mode (0.993)
	RectPerChassis    int
	Mode              Mode
}

// FrontierChain returns the as-built conversion chain.
func FrontierChain() ConversionChain {
	return ConversionChain{
		Rect:              FrontierRectifier(),
		EtaSIVOC:          0.98,
		EtaDCDistribution: 0.993,
		RectPerChassis:    4,
		Mode:              ACBaseline,
	}
}

// ChassisResult reports the conversion accounting for one chassis.
type ChassisResult struct {
	InputW      float64 // AC (or DC-bus) power drawn by the chassis
	SivocLossW  float64
	RectLossW   float64 // rectifier loss; distribution loss in DC380 mode
	RectsActive int     // rectifiers carrying load (4 in baseline)
}

// Chassis computes the power drawn from the distribution transformer by a
// chassis whose nodes output nodeOutW watts (sum over the chassis's
// nodes, measured at the 48 V point per Eq. 1's P_S48V).
func (c ConversionChain) Chassis(nodeOutW float64) ChassisResult {
	var res ChassisResult
	if nodeOutW <= 0 {
		return res
	}
	sivocIn := nodeOutW / c.EtaSIVOC
	res.SivocLossW = sivocIn - nodeOutW

	switch c.Mode {
	case DC380:
		in := sivocIn / c.EtaDCDistribution
		res.RectLossW = in - sivocIn
		res.InputW = in
		res.RectsActive = 0
		return res
	case SmartRectifier:
		res.RectsActive = c.smartStage(sivocIn)
	default:
		res.RectsActive = c.RectPerChassis
	}
	perRect := sivocIn / float64(res.RectsActive)
	eta := c.Rect.Eta(perRect)
	in := sivocIn / eta
	res.RectLossW = in - sivocIn
	res.InputW = in
	return res
}

// smartStage picks the number of active rectifiers that keeps per-unit
// load nearest the optimum while respecting the continuous rating.
func (c ConversionChain) smartStage(busLoadW float64) int {
	best, bestEta := c.RectPerChassis, -1.0
	for n := 1; n <= c.RectPerChassis; n++ {
		per := busLoadW / float64(n)
		if per > c.Rect.PMaxW {
			continue
		}
		if eta := c.Rect.Eta(per); eta > bestEta {
			best, bestEta = n, eta
		}
	}
	return best
}

// Topology captures the structural counts of Table I.
type Topology struct {
	NodesTotal      int
	NodesPerRack    int
	NodesPerChassis int
	ChassisPerRack  int
	SwitchesPerRack int
	RacksPerCDU     int
	NumCDUs         int
}

// FrontierTopology returns the Table I counts: 9472 nodes, 128 per rack
// (74 racks), 16 per chassis, 8 chassis and 32 switches per rack, 25 CDUs
// serving up to 3 racks each.
func FrontierTopology() Topology {
	return Topology{
		NodesTotal:      9472,
		NodesPerRack:    128,
		NodesPerChassis: 16,
		ChassisPerRack:  8,
		SwitchesPerRack: 32,
		RacksPerCDU:     3,
		NumCDUs:         25,
	}
}

// NumRacks returns the rack count implied by the node counts.
func (t Topology) NumRacks() int { return (t.NodesTotal + t.NodesPerRack - 1) / t.NodesPerRack }

// CDUOfRack maps a rack index to its cooling distribution unit.
func (t Topology) CDUOfRack(rack int) int {
	c := rack / t.RacksPerCDU
	if c >= t.NumCDUs {
		c = t.NumCDUs - 1
	}
	return c
}

// Validate checks internal consistency of the topology counts.
func (t Topology) Validate() error {
	if t.NodesTotal <= 0 || t.NodesPerRack <= 0 || t.NodesPerChassis <= 0 {
		return fmt.Errorf("power: non-positive node counts in topology")
	}
	if t.NodesPerRack%t.NodesPerChassis != 0 {
		return fmt.Errorf("power: nodes per rack (%d) not divisible by nodes per chassis (%d)",
			t.NodesPerRack, t.NodesPerChassis)
	}
	if t.NodesPerRack/t.NodesPerChassis != t.ChassisPerRack {
		return fmt.Errorf("power: chassis per rack mismatch: %d/%d != %d",
			t.NodesPerRack, t.NodesPerChassis, t.ChassisPerRack)
	}
	if t.NumCDUs <= 0 || t.RacksPerCDU <= 0 {
		return fmt.Errorf("power: non-positive CDU counts")
	}
	if t.NumCDUs*t.RacksPerCDU < t.NumRacks() {
		return fmt.Errorf("power: %d CDUs × %d racks cannot serve %d racks",
			t.NumCDUs, t.RacksPerCDU, t.NumRacks())
	}
	return nil
}

// Breakdown is the Fig. 4 power-contributor decomposition (watts).
type Breakdown struct {
	GPU, CPU, RAM, NVMe, NIC float64
	Switches                 float64
	RectLoss, SivocLoss      float64
	CDUPumps                 float64
}

// Total sums every contributor.
func (b Breakdown) Total() float64 {
	return b.GPU + b.CPU + b.RAM + b.NVMe + b.NIC + b.Switches + b.RectLoss + b.SivocLoss + b.CDUPumps
}

// SystemPower is the full accounting for one evaluation instant.
type SystemPower struct {
	TotalW       float64 // Psystem: everything including CDU pumps
	NodeOutW     float64 // Σ P_S48V over all nodes
	RectLossW    float64
	SivocLossW   float64
	SwitchW      float64
	CDUPumpW     float64
	PerCDUInputW []float64 // rack input power (incl. switches) per CDU
	// PerRackInputW is the input power per rack (incl. switches) — the
	// spatial heat-map channel (§III-A's "visualizing heat maps").
	PerRackInputW []float64
	Breakdown     Breakdown
}

// LossW returns total conversion loss (Eq. 2 summed over the system).
func (p *SystemPower) LossW() float64 { return p.RectLossW + p.SivocLossW }

// Efficiency returns η_system per Eq. 1 measured at the aggregate level:
// node output power divided by the power entering the conversion chain.
func (p *SystemPower) Efficiency() float64 {
	in := p.NodeOutW + p.RectLossW + p.SivocLossW
	if in <= 0 {
		return 0
	}
	return p.NodeOutW / in
}

// Model evaluates system power for a vector of per-node utilizations.
type Model struct {
	Spec  ComponentSpec
	Chain ConversionChain
	Topo  Topology
	// CoolingEff converts CDU electrical input power to the heat carried
	// into the liquid loop (0.945, §III-B2).
	CoolingEff float64
}

// NewFrontierModel assembles the as-published Frontier power model.
func NewFrontierModel() *Model {
	return &Model{
		Spec:       FrontierComponents(),
		Chain:      FrontierChain(),
		Topo:       FrontierTopology(),
		CoolingEff: 0.945,
	}
}

// Compute evaluates the whole system. cpuUtil and gpuUtil hold one entry
// per node (length Topo.NodesTotal); missing trailing entries are treated
// as idle. The result is written into out to allow reuse in the 1 Hz
// simulation loop without allocation.
func (m *Model) Compute(cpuUtil, gpuUtil []float64, out *SystemPower) {
	t := m.Topo
	numRacks := t.NumRacks()
	if cap(out.PerCDUInputW) < t.NumCDUs {
		out.PerCDUInputW = make([]float64, t.NumCDUs)
	}
	out.PerCDUInputW = out.PerCDUInputW[:t.NumCDUs]
	for i := range out.PerCDUInputW {
		out.PerCDUInputW[i] = 0
	}
	if cap(out.PerRackInputW) < numRacks {
		out.PerRackInputW = make([]float64, numRacks)
	}
	out.PerRackInputW = out.PerRackInputW[:numRacks]
	out.TotalW, out.NodeOutW, out.RectLossW, out.SivocLossW, out.SwitchW = 0, 0, 0, 0, 0
	out.Breakdown = Breakdown{}

	nodeIdle := m.Spec.NodeIdle()
	node := 0
	for rack := 0; rack < numRacks; rack++ {
		rackInput := 0.0
		for ch := 0; ch < t.ChassisPerRack; ch++ {
			chassisOut := 0.0
			for i := 0; i < t.NodesPerChassis; i++ {
				var p float64
				if node < len(cpuUtil) && node < len(gpuUtil) {
					cu, gu := cpuUtil[node], gpuUtil[node]
					p = m.Spec.NodePower(cu, gu)
					m.accumulateComponents(cu, gu, &out.Breakdown)
				} else {
					p = nodeIdle
					m.accumulateComponents(0, 0, &out.Breakdown)
				}
				chassisOut += p
				node++
				if node > t.NodesTotal {
					break
				}
			}
			res := m.Chain.Chassis(chassisOut)
			out.NodeOutW += chassisOut
			out.RectLossW += res.RectLossW
			out.SivocLossW += res.SivocLossW
			rackInput += res.InputW
		}
		sw := float64(t.SwitchesPerRack) * m.Spec.Switch
		rackInput += sw
		out.SwitchW += sw
		out.PerRackInputW[rack] = rackInput
		out.PerCDUInputW[t.CDUOfRack(rack)] += rackInput
		out.TotalW += rackInput
	}
	out.CDUPumpW = float64(t.NumCDUs) * m.Spec.CDUPump
	out.TotalW += out.CDUPumpW
	out.Breakdown.Switches = out.SwitchW
	out.Breakdown.RectLoss = out.RectLossW
	out.Breakdown.SivocLoss = out.SivocLossW
	out.Breakdown.CDUPumps = out.CDUPumpW
}

func (m *Model) accumulateComponents(cu, gu float64, b *Breakdown) {
	cu, gu = clamp01(cu), clamp01(gu)
	b.CPU += m.Spec.CPUIdle + cu*(m.Spec.CPUMax-m.Spec.CPUIdle)
	b.GPU += float64(m.Spec.GPUsPerNode) * (m.Spec.GPUIdle + gu*(m.Spec.GPUMax-m.Spec.GPUIdle))
	b.RAM += m.Spec.RAM
	b.NVMe += float64(m.Spec.NVMePerNode) * m.Spec.NVMe
	b.NIC += float64(m.Spec.NICsPerNode) * m.Spec.NIC
}

// ComputeUniform evaluates the system with every node at the same
// utilization — the Table III verification shortcut.
func (m *Model) ComputeUniform(cpuUtil, gpuUtil float64, activeNodes int, out *SystemPower) {
	n := m.Topo.NodesTotal
	if activeNodes > n {
		activeNodes = n
	}
	cu := make([]float64, n)
	gu := make([]float64, n)
	for i := 0; i < activeNodes; i++ {
		cu[i] = cpuUtil
		gu[i] = gpuUtil
	}
	m.Compute(cu, gu, out)
}

// CDUHeatW converts the per-CDU electrical input into the heat load fed to
// the cooling model (input power × cooling efficiency, §III-B2).
func (m *Model) CDUHeatW(p *SystemPower) []float64 {
	return m.CDUHeatInto(p, nil)
}

// CDUHeatInto is the allocation-free variant of CDUHeatW for the 1 Hz
// simulation loop: dst is reused when it has capacity.
func (m *Model) CDUHeatInto(p *SystemPower, dst []float64) []float64 {
	if cap(dst) < len(p.PerCDUInputW) {
		dst = make([]float64, len(p.PerCDUInputW))
	}
	dst = dst[:len(p.PerCDUInputW)]
	for i, w := range p.PerCDUInputW {
		dst[i] = w * m.CoolingEff
	}
	return dst
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
