package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableIComponentValues(t *testing.T) {
	s := FrontierComponents()
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"GPU idle", s.GPUIdle, 88},
		{"GPU max", s.GPUMax, 560},
		{"CPU idle", s.CPUIdle, 90},
		{"CPU max", s.CPUMax, 280},
		{"RAM", s.RAM, 74},
		{"NVMe", s.NVMe, 15},
		{"NIC", s.NIC, 20},
		{"Switch", s.Switch, 250},
		{"CDU pump", s.CDUPump, 8700},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

func TestTableITopology(t *testing.T) {
	topo := FrontierTopology()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.NodesTotal != 9472 {
		t.Errorf("nodes = %d", topo.NodesTotal)
	}
	if topo.NumRacks() != 74 {
		t.Errorf("racks = %d, want 74", topo.NumRacks())
	}
	if topo.NumCDUs != 25 || topo.RacksPerCDU != 3 {
		t.Errorf("CDUs = %d × %d racks", topo.NumCDUs, topo.RacksPerCDU)
	}
	// Rack 72 and 73 belong to the last CDU (74 racks over 25 CDUs).
	if topo.CDUOfRack(0) != 0 || topo.CDUOfRack(73) != 24 || topo.CDUOfRack(72) != 24 {
		t.Error("CDU mapping wrong")
	}
}

func TestTopologyValidateErrors(t *testing.T) {
	bad := FrontierTopology()
	bad.ChassisPerRack = 7
	if bad.Validate() == nil {
		t.Error("chassis mismatch should fail")
	}
	bad = FrontierTopology()
	bad.NumCDUs = 10
	if bad.Validate() == nil {
		t.Error("too few CDUs should fail")
	}
	bad = FrontierTopology()
	bad.NodesTotal = 0
	if bad.Validate() == nil {
		t.Error("zero nodes should fail")
	}
	bad = FrontierTopology()
	bad.NodesPerChassis = 15
	if bad.Validate() == nil {
		t.Error("non-divisible chassis should fail")
	}
}

func TestNodePowerEq3(t *testing.T) {
	s := FrontierComponents()
	if got := s.NodeIdle(); got != 626 {
		t.Errorf("idle node = %v, want 626 (90+4·88+4·20+74+2·15)", got)
	}
	if got := s.NodePeak(); got != 2704 {
		t.Errorf("peak node = %v, want 2704 (280+4·560+4·20+74+2·15)", got)
	}
	// HPL core phase: CPU 33 %, GPU 79 % (§IV-2).
	got := s.NodePower(0.33, 0.79)
	want := (90 + 0.33*190) + 4*(88+0.79*472) + 80 + 74 + 30
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("HPL node = %v, want %v", got, want)
	}
}

func TestNodePowerClampsUtilization(t *testing.T) {
	s := FrontierComponents()
	if s.NodePower(-1, -1) != s.NodeIdle() {
		t.Error("negative utilization should clamp to idle")
	}
	if s.NodePower(2, 2) != s.NodePeak() {
		t.Error("over-unity utilization should clamp to peak")
	}
}

func TestNodePowerMonotoneProperty(t *testing.T) {
	s := FrontierComponents()
	f := func(a, b float64) bool {
		u1 := math.Mod(math.Abs(a), 1)
		u2 := math.Mod(math.Abs(b), 1)
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		return s.NodePower(u1, u1) <= s.NodePower(u2, u2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectifierCurveShape(t *testing.T) {
	r := FrontierRectifier()
	peak := r.Eta(r.POptW)
	if peak != 0.963 {
		t.Errorf("peak efficiency = %v, want exactly 0.963 at the optimum", peak)
	}
	// Light-load penalty of 1–2 % at a few-kW loads (§IV-3).
	light := r.Eta(2500)
	if peak-light < 0.01 || peak-light > 0.035 {
		t.Errorf("light-load penalty = %v, want 1-3.5 %%", peak-light)
	}
	// Mild droop above optimum.
	heavy := r.Eta(11000)
	if heavy >= peak || peak-heavy > 0.02 {
		t.Errorf("heavy-load droop = %v", peak-heavy)
	}
	if r.Eta(0) >= r.Eta(1000) {
		t.Error("efficiency should improve away from zero load")
	}
	if r.Eta(-5) != r.EtaMax-r.LowDroop {
		t.Error("negative load should return the floor")
	}
}

// TestTableIII reproduces the paper's RAPS power verification: idle
// 7.24 MW, HPL core phase 22.3 MW on 9216 nodes, peak 28.2 MW.
func TestTableIII(t *testing.T) {
	m := NewFrontierModel()
	var sp SystemPower
	cases := []struct {
		name       string
		cpu, gpu   float64
		nodes      int
		wantMW     float64
		tolPercent float64
	}{
		{"idle", 0, 0, 9472, 7.24, 1.0},
		{"hpl-core", 0.33, 0.79, 9216, 22.3, 1.0},
		{"peak", 1, 1, 9472, 28.2, 1.0},
	}
	for _, tc := range cases {
		m.ComputeUniform(tc.cpu, tc.gpu, tc.nodes, &sp)
		gotMW := sp.TotalW / 1e6
		errPct := 100 * math.Abs(gotMW-tc.wantMW) / tc.wantMW
		if errPct > tc.tolPercent {
			t.Errorf("%s: %0.2f MW, want %0.2f MW (err %0.2f %%)", tc.name, gotMW, tc.wantMW, errPct)
		}
	}
}

// TestFig4Breakdown checks the peak-power decomposition: GPUs dominate at
// ≈21.2 MW and all contributors sum to the total.
func TestFig4Breakdown(t *testing.T) {
	m := NewFrontierModel()
	var sp SystemPower
	m.ComputeUniform(1, 1, 9472, &sp)
	b := sp.Breakdown
	if math.Abs(b.GPU-9472*4*560)/1e6 > 1e-9 {
		t.Errorf("GPU = %v MW, want 21.217", b.GPU/1e6)
	}
	if math.Abs(b.CPU-9472*280)/1e6 > 1e-9 {
		t.Errorf("CPU = %v MW", b.CPU/1e6)
	}
	if math.Abs(b.Total()-sp.TotalW) > 1 {
		t.Errorf("breakdown sum %v != total %v", b.Total(), sp.TotalW)
	}
	// GPUs are by far the dominant contributor.
	if b.GPU < 0.7*sp.TotalW {
		t.Errorf("GPUs should dominate peak power: %v of %v", b.GPU, sp.TotalW)
	}
}

func TestSystemEfficiencyNearPublished(t *testing.T) {
	// At a realistic (bimodal) operating point — most nodes running jobs
	// near full tilt, the rest idle, averaging ≈60 % of peak power — the
	// paper quotes η_system ≈ 93.3 % with losses ≈ 6.7 %.
	m := NewFrontierModel()
	n := m.Topo.NodesTotal
	cu := make([]float64, n)
	gu := make([]float64, n)
	for i := 0; i < n*7/10; i++ { // 70 % of nodes busy
		cu[i] = 0.9
		gu[i] = 0.85
	}
	var sp SystemPower
	m.Compute(cu, gu, &sp)
	eta := sp.Efficiency()
	if eta < 0.925 || eta > 0.945 {
		t.Errorf("η_system = %v, want ≈0.933", eta)
	}
	lossFrac := sp.LossW() / sp.TotalW
	if lossFrac < 0.05 || lossFrac > 0.08 {
		t.Errorf("loss fraction = %v, want ≈0.06-0.07", lossFrac)
	}
}

func TestConversionLossAccounting(t *testing.T) {
	c := FrontierChain()
	res := c.Chassis(16 * 1700.0) // 16 nodes at 1.7 kW
	// Eq. 2: input = output + losses.
	if math.Abs(res.InputW-(16*1700.0+res.RectLossW+res.SivocLossW)) > 1e-6 {
		t.Error("power not conserved through the chain")
	}
	if res.RectsActive != 4 {
		t.Errorf("baseline uses all 4 rectifiers, got %d", res.RectsActive)
	}
	if res.RectLossW <= 0 || res.SivocLossW <= 0 {
		t.Error("losses must be positive under load")
	}
	zero := c.Chassis(0)
	if zero.InputW != 0 || zero.RectLossW != 0 {
		t.Error("zero load draws nothing")
	}
}

func TestSmartRectifierStagesDownAtIdle(t *testing.T) {
	c := FrontierChain()
	c.Mode = SmartRectifier
	idleChassis := 16 * 626.0 / 0.98 // SIVOC input at idle ≈ 10.2 kW
	res := c.Chassis(16 * 626.0)
	if res.RectsActive >= 4 {
		t.Errorf("smart staging should shed rectifiers at idle, got %d", res.RectsActive)
	}
	// The staged configuration must beat sharing across all four.
	base := FrontierChain().Chassis(16 * 626.0)
	if res.InputW >= base.InputW {
		t.Errorf("smart %v W should draw less than baseline %v W at idle (bus %v W)",
			res.InputW, base.InputW, idleChassis)
	}
}

func TestSmartRectifierRespectsRating(t *testing.T) {
	c := FrontierChain()
	c.Mode = SmartRectifier
	res := c.Chassis(16 * 2704.0) // peak: 44.1 kW bus
	perRect := (16 * 2704.0 / 0.98) / float64(res.RectsActive)
	if perRect > c.Rect.PMaxW {
		t.Errorf("per-rectifier load %v exceeds rating %v", perRect, c.Rect.PMaxW)
	}
}

// TestWhatIfSmartRectifier reproduces the ≈0.1 % efficiency gain of §IV-3.
func TestWhatIfSmartRectifier(t *testing.T) {
	base := NewFrontierModel()
	smart := NewFrontierModel()
	smart.Chain.Mode = SmartRectifier
	var spB, spS SystemPower
	// Evaluate across a daily utilization mix (weighted toward mid loads).
	gainSum, n := 0.0, 0
	for _, u := range []float64{0.0, 0.15, 0.3, 0.5, 0.7, 0.9} {
		base.ComputeUniform(u, u, 9472, &spB)
		smart.ComputeUniform(u, u, 9472, &spS)
		gainSum += spS.Efficiency() - spB.Efficiency()
		n++
		if spS.TotalW > spB.TotalW+1 {
			t.Errorf("smart staging must never draw more power (u=%v)", u)
		}
	}
	gain := gainSum / float64(n)
	if gain < 0.0002 || gain > 0.01 {
		t.Errorf("average efficiency gain = %v, want ≈0.001 (0.1 %%)", gain)
	}
}

// TestWhatIfDC380 reproduces the §IV-3 result: system efficiency rises
// from ≈93.3 % to ≈97.3 % under direct 380 V DC distribution.
func TestWhatIfDC380(t *testing.T) {
	dc := NewFrontierModel()
	dc.Chain.Mode = DC380
	var sp SystemPower
	dc.ComputeUniform(0.4, 0.55, 9472, &sp)
	eta := sp.Efficiency()
	if math.Abs(eta-0.973) > 0.003 {
		t.Errorf("DC380 η = %v, want ≈0.973", eta)
	}
	base := NewFrontierModel()
	var spB SystemPower
	base.ComputeUniform(0.4, 0.55, 9472, &spB)
	saving := spB.TotalW - sp.TotalW
	if saving <= 0 {
		t.Error("DC380 must reduce total power")
	}
	// ≈4 % of system power is recovered.
	if frac := saving / spB.TotalW; frac < 0.025 || frac > 0.06 {
		t.Errorf("DC380 saving fraction = %v, want ≈0.04", frac)
	}
}

func TestComputePartialUtilizationVectors(t *testing.T) {
	m := NewFrontierModel()
	var full, short SystemPower
	m.ComputeUniform(0, 0, 9472, &full)
	// Short vectors: remaining nodes idle — same as all-idle.
	m.Compute([]float64{0, 0}, []float64{0, 0}, &short)
	if math.Abs(full.TotalW-short.TotalW) > 1 {
		t.Errorf("short vectors should pad idle: %v vs %v", short.TotalW, full.TotalW)
	}
}

func TestPerCDUPartition(t *testing.T) {
	m := NewFrontierModel()
	var sp SystemPower
	m.ComputeUniform(0.5, 0.5, 9472, &sp)
	if len(sp.PerCDUInputW) != 25 {
		t.Fatalf("CDU count = %d", len(sp.PerCDUInputW))
	}
	sum := 0.0
	for i, w := range sp.PerCDUInputW {
		if w <= 0 {
			t.Errorf("CDU %d has no load", i)
		}
		sum += w
	}
	if math.Abs(sum+sp.CDUPumpW-sp.TotalW) > 1 {
		t.Errorf("CDU partition %v + pumps %v != total %v", sum, sp.CDUPumpW, sp.TotalW)
	}
	// The last CDU serves 2 racks (74 = 24×3 + 2): about 2/3 the load.
	ratio := sp.PerCDUInputW[24] / sp.PerCDUInputW[0]
	if math.Abs(ratio-2.0/3) > 0.01 {
		t.Errorf("last CDU ratio = %v, want ≈0.667", ratio)
	}
}

func TestCDUHeat(t *testing.T) {
	m := NewFrontierModel()
	var sp SystemPower
	m.ComputeUniform(1, 1, 9472, &sp)
	heat := m.CDUHeatW(&sp)
	for i := range heat {
		if math.Abs(heat[i]-0.945*sp.PerCDUInputW[i]) > 1e-9 {
			t.Errorf("CDU %d heat = %v, want 94.5 %% of input", i, heat[i])
		}
	}
}

func TestComputeReusesAllocation(t *testing.T) {
	m := NewFrontierModel()
	var sp SystemPower
	m.ComputeUniform(0.5, 0.5, 100, &sp)
	first := &sp.PerCDUInputW[0]
	m.ComputeUniform(0.7, 0.7, 100, &sp)
	if first != &sp.PerCDUInputW[0] {
		t.Error("Compute should reuse the PerCDU slice")
	}
}

func TestModeString(t *testing.T) {
	if ACBaseline.String() != "ac-baseline" || SmartRectifier.String() != "smart-rectifier" || DC380.String() != "dc380" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should have a name")
	}
}

func BenchmarkComputeFullSystem(b *testing.B) {
	m := NewFrontierModel()
	n := m.Topo.NodesTotal
	cu := make([]float64, n)
	gu := make([]float64, n)
	for i := range cu {
		cu[i] = 0.5
		gu[i] = 0.6
	}
	var sp SystemPower
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Compute(cu, gu, &sp)
	}
}

func TestPerRackPartition(t *testing.T) {
	m := NewFrontierModel()
	var sp SystemPower
	m.ComputeUniform(0.5, 0.5, 9472, &sp)
	if len(sp.PerRackInputW) != 74 {
		t.Fatalf("racks = %d, want 74", len(sp.PerRackInputW))
	}
	sum := 0.0
	for r, w := range sp.PerRackInputW {
		if w <= 0 {
			t.Errorf("rack %d has no power", r)
		}
		sum += w
	}
	if math.Abs(sum+sp.CDUPumpW-sp.TotalW) > 1 {
		t.Errorf("rack partition %v + pumps %v != total %v", sum, sp.CDUPumpW, sp.TotalW)
	}
	// Per-rack and per-CDU partitions agree.
	topo := m.Topo
	cduSum := make([]float64, topo.NumCDUs)
	for r, w := range sp.PerRackInputW {
		cduSum[topo.CDUOfRack(r)] += w
	}
	for c := range cduSum {
		if math.Abs(cduSum[c]-sp.PerCDUInputW[c]) > 1e-6 {
			t.Fatalf("CDU %d: rack sum %v != CDU %v", c, cduSum[c], sp.PerCDUInputW[c])
		}
	}
}
