package raps

import (
	"context"
	"errors"
	"testing"

	"exadigit/internal/job"
	"exadigit/internal/power"
)

// TestRunContextStopsWithinOneTick pins the abort granularity in
// simulation time: a cancel issued at simulated time T (from inside the
// per-tick emission-intensity sampler) stops a cooled run within one
// tick boundary of T — not at the end of the horizon.
func TestRunContextStopsWithinOneTick(t *testing.T) {
	const tick = 15.0
	const cancelAt = 3600.0

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cfg := DefaultConfig()
	cfg.TickSec = tick
	cfg.EnableCooling = true // cooling boundaries cap analytic gaps at one tick here
	cfg.EmissionIntensityFn = func(tSec float64) float64 {
		if tSec >= cancelAt {
			cancel()
		}
		return 852.3
	}
	sim, err := New(cfg, power.NewFrontierModel(), []*job.Job{job.NewHPL(1, 0, 24*3600)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.RunContext(ctx, 24*3600)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The EI sampler fires during the tick that reaches cancelAt; the
	// loop observes the cancel before the next tick. Two ticks of slack
	// covers the sampling tick itself.
	if now := sim.Now(); now < cancelAt || now > cancelAt+2*tick {
		t.Fatalf("aborted at t=%v, want within one tick of %v", now, cancelAt)
	}
	// Partial accumulators stay inspectable after an abort.
	if rep := sim.ReportNow(); rep.SimSeconds != sim.Now() || rep.AvgPowerMW <= 0 {
		t.Fatalf("partial report = %+v", rep)
	}
}

// TestRunContextNilAndBackground pins that Run and RunContext with a
// live context behave identically.
func TestRunContextNilAndBackground(t *testing.T) {
	mk := func() *Simulation {
		cfg := DefaultConfig()
		cfg.TickSec = 15
		sim, err := New(cfg, power.NewFrontierModel(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	r1, err := mk().Run(900)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mk().RunContext(context.Background(), 900)
	if err != nil {
		t.Fatal(err)
	}
	if r1.EnergyMWh != r2.EnergyMWh || r1.AvgPowerMW != r2.AvgPowerMW {
		t.Fatalf("Run and RunContext diverged: %+v vs %+v", r1, r2)
	}
}
