package raps

import (
	"math"
	"testing"

	"exadigit/internal/cooling"
	"exadigit/internal/fmu"
	"exadigit/internal/job"
	"exadigit/internal/power"
)

// runCooledQuiet runs a quiet cooled stretch (one long flat job, so heat
// is constant after start) under the given plant solver and returns the
// simulation for inspection.
func runCooledQuiet(t *testing.T, solver string, horizon float64) *Simulation {
	t.Helper()
	pcfg := cooling.Frontier()
	pcfg.Solver = solver
	design, err := fmu.NewDesign(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.TickSec = 15
	cfg.EnableCooling = true
	cfg.CoolingDesign = design
	cfg.WetBulbC = func(float64) float64 { return 19 }
	j := job.New(1, "flat", 4000, horizon+1, 0)
	j.CPUTrace = job.FlatTrace(0.7, horizon+1)
	j.GPUTrace = job.FlatTrace(0.5, horizon+1)
	sim, err := New(cfg, power.NewFrontierModel(), []*job.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(horizon); err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestCoolingCoastSkipsQuietBoundaries pins the raps half of the
// quiescent-plant fast path: under the adaptive solver a quiet cooled
// stretch coasts across 15 s cooling boundaries (tick-gap skipping stays
// engaged), while the fixed-step solver forces a dense boundary every
// 15 s. The coasted run must agree with the fixed reference on energy
// exactly and on PUE within the solver tolerance.
func TestCoolingCoastSkipsQuietBoundaries(t *testing.T) {
	const horizon = 6 * 3600
	fixed := runCooledQuiet(t, "", horizon)
	adaptive := runCooledQuiet(t, cooling.SolverAdaptive, horizon)

	if got := fixed.CoolingSolverStats(); got.QuiescentSec != 0 {
		t.Errorf("fixed solver fast-forwarded %v s", got.QuiescentSec)
	}
	ast := adaptive.CoolingSolverStats()
	if ast.QuiescentSec == 0 {
		t.Error("adaptive solver never fast-forwarded a quiet stretch")
	}
	if ast.ControlSteps >= fixed.CoolingSolverStats().ControlSteps/2 {
		t.Errorf("adaptive solver did not reduce control work: %d vs %d",
			ast.ControlSteps, fixed.CoolingSolverStats().ControlSteps)
	}
	// Boundary coasting: the event engine must skip more ticks than the
	// fixed-cooling run, where every 15 s boundary is an event.
	if adaptive.QuietTicks() <= fixed.QuietTicks() {
		t.Errorf("coasting did not increase skipped ticks: %d vs %d",
			adaptive.QuietTicks(), fixed.QuietTicks())
	}

	fr, ar := fixed.ReportNow(), adaptive.ReportNow()
	if fr.EnergyMWh != ar.EnergyMWh {
		t.Errorf("energy diverged: %v vs %v MWh", fr.EnergyMWh, ar.EnergyMWh)
	}
	if math.Abs(fr.AvgPUE-ar.AvgPUE) > 0.005 {
		t.Errorf("PUE diverged beyond tolerance: %v vs %v", fr.AvgPUE, ar.AvgPUE)
	}
}
