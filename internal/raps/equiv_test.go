package raps

import (
	"math"
	"testing"

	"exadigit/internal/job"
	"exadigit/internal/power"
)

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	m := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1e-12)
	return d / m
}

func runEngines(t *testing.T, cfgTmpl Config, mkJobs func() []*job.Job, horizon float64) (dense, event *Simulation) {
	t.Helper()
	run := func(engine Engine) *Simulation {
		cfg := cfgTmpl
		cfg.Engine = engine
		sim, err := New(cfg, power.NewFrontierModel(), mkJobs())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(horizon); err != nil {
			t.Fatal(err)
		}
		return sim
	}
	return run(EngineDense), run(EngineEvent)
}

func assertReportsClose(t *testing.T, want, got *Report, tol float64) {
	t.Helper()
	if want.JobsCompleted != got.JobsCompleted {
		t.Fatalf("jobs completed: dense %d vs event %d", want.JobsCompleted, got.JobsCompleted)
	}
	check := func(name string, a, b float64) {
		t.Helper()
		if relDiff(a, b) > tol {
			t.Errorf("%s: dense %v vs event %v (rel %v)", name, a, b, relDiff(a, b))
		}
	}
	check("EnergyMWh", want.EnergyMWh, got.EnergyMWh)
	check("AvgPowerMW", want.AvgPowerMW, got.AvgPowerMW)
	check("MaxPowerMW", want.MaxPowerMW, got.MaxPowerMW)
	check("MinPowerMW", want.MinPowerMW, got.MinPowerMW)
	check("AvgLossMW", want.AvgLossMW, got.AvgLossMW)
	check("MaxLossMW", want.MaxLossMW, got.MaxLossMW)
	check("LossPercent", want.LossPercent, got.LossPercent)
	check("EtaSystem", want.EtaSystem, got.EtaSystem)
	check("CO2Tons", want.CO2Tons, got.CO2Tons)
	check("CostUSD", want.CostUSD, got.CostUSD)
	check("AvgUtilization", want.AvgUtilization, got.AvgUtilization)
	check("AvgPUE", want.AvgPUE, got.AvgPUE)
}

func assertHistoriesClose(t *testing.T, want, got []Sample, tol float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("history length: dense %d vs event %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.TimeSec != g.TimeSec {
			t.Fatalf("sample %d time: %v vs %v", i, w.TimeSec, g.TimeSec)
		}
		if w.JobsRunning != g.JobsRunning || w.JobsPending != g.JobsPending {
			t.Fatalf("sample %d jobs: dense %d/%d vs event %d/%d",
				i, w.JobsRunning, w.JobsPending, g.JobsRunning, g.JobsPending)
		}
		for _, f := range []struct {
			name string
			a, b float64
		}{
			{"PowerW", w.PowerW, g.PowerW},
			{"LossW", w.LossW, g.LossW},
			{"Utilization", w.Utilization, g.Utilization},
			{"EtaSystem", w.EtaSystem, g.EtaSystem},
			{"EtaCooling", w.EtaCooling, g.EtaCooling},
			{"PUE", w.PUE, g.PUE},
			{"HTWReturnC", w.HTWReturnC, g.HTWReturnC},
		} {
			if relDiff(f.a, f.b) > tol {
				t.Fatalf("sample %d (t=%v) %s: dense %v vs event %v", i, w.TimeSec, f.name, f.a, f.b)
			}
		}
		if len(w.CDUHeatW) != len(g.CDUHeatW) {
			t.Fatalf("sample %d CDU heat length %d vs %d", i, len(w.CDUHeatW), len(g.CDUHeatW))
		}
		for c := range w.CDUHeatW {
			if relDiff(w.CDUHeatW[c], g.CDUHeatW[c]) > tol {
				t.Fatalf("sample %d CDU %d heat: %v vs %v", i, c, w.CDUHeatW[c], g.CDUHeatW[c])
			}
		}
	}
}

// TestEventEngineMatchesDense is the headline equivalence property: a
// seeded synthetic day (arrivals, completions, trace jitter, queueing)
// driven through both the dense reference Compute path and the
// event-driven incremental path must agree on energy, losses, breakdown
// aggregates, and per-CDU heat to 1e-9 relative (ISSUE 1 acceptance).
func TestEventEngineMatchesDense(t *testing.T) {
	gen := job.DefaultGeneratorConfig()
	gen.Seed = 1234
	mkJobs := func() []*job.Job { return job.NewGenerator(gen).GenerateHorizon(86400) }
	cfg := DefaultConfig()
	cfg.TickSec = 15
	cfg.RecordCDUHeat = true
	dense, event := runEngines(t, cfg, mkJobs, 86400)
	assertReportsClose(t, dense.ReportNow(), event.ReportNow(), 1e-9)
	assertHistoriesClose(t, dense.History(), event.History(), 1e-9)

	// Per-job energy attribution agrees too (batched gap integration vs
	// per-tick accumulation differ only in rounding).
	de := dense.JobEnergyReport()
	ee := event.JobEnergyReport()
	if len(de) != len(ee) {
		t.Fatalf("job energy entries: %d vs %d", len(de), len(ee))
	}
	for i := range de {
		if de[i].JobID != ee[i].JobID || relDiff(de[i].NodeEnergyMWh, ee[i].NodeEnergyMWh) > 1e-9 {
			t.Fatalf("job energy %d: %+v vs %+v", i, de[i], ee[i])
		}
	}
}

// TestEventEngineMatchesDenseSubQuantumTick covers 1 s ticks, where most
// ticks sit inside a trace quantum and the skip logic must stop exactly
// on arrival/completion/quantum boundaries.
func TestEventEngineMatchesDenseSubQuantumTick(t *testing.T) {
	gen := job.DefaultGeneratorConfig()
	gen.Seed = 77
	gen.ArrivalMeanSec = 600 // keep the 1 s-tick dense reference affordable
	mkJobs := func() []*job.Job { return job.NewGenerator(gen).GenerateHorizon(2 * 3600) }
	cfg := DefaultConfig()
	cfg.TickSec = 1
	dense, event := runEngines(t, cfg, mkJobs, 2*3600)
	assertReportsClose(t, dense.ReportNow(), event.ReportNow(), 1e-9)
	assertHistoriesClose(t, dense.History(), event.History(), 1e-9)
}

// TestEventEngineMatchesDenseCooled pins equivalence with the cooling
// FMU coupled: boundary ticks are events, gaps between them are skipped,
// and the plant must see the identical heat/wet-bulb/power sequence.
func TestEventEngineMatchesDenseCooled(t *testing.T) {
	mkJobs := func() []*job.Job {
		j := job.New(1, "load", 8000, 2400, 300)
		j.CPUTrace = job.FlatTrace(0.8, 2400)
		j.GPUTrace = job.FlatTrace(0.75, 2400)
		return []*job.Job{j}
	}
	cfg := DefaultConfig()
	cfg.TickSec = 1
	cfg.EnableCooling = true
	cfg.WetBulbC = func(t float64) float64 { return 18 + 4*math.Sin(t/3600) }
	dense, event := runEngines(t, cfg, mkJobs, 3600)
	assertReportsClose(t, dense.ReportNow(), event.ReportNow(), 1e-9)
	assertHistoriesClose(t, dense.History(), event.History(), 1e-9)
}

// TestEventEngineMatchesDenseReplayPinned covers replay-pinned starts
// (ReplayStart) and a time-varying emission intensity, both of which
// must be treated as events / per-tick samples by the skip logic.
func TestEventEngineMatchesDenseReplayPinned(t *testing.T) {
	mkJobs := func() []*job.Job {
		a := job.New(1, "pinned-a", 4000, 3600, 0)
		a.ReplayStart = 1800
		a.CPUTrace = job.FlatTrace(0.6, 3600)
		a.GPUTrace = job.FlatTrace(0.9, 3600)
		b := job.New(2, "pinned-b", 2000, 1200, 0)
		b.ReplayStart = 7200
		b.CPUTrace = job.FlatTrace(0.4, 1200)
		b.GPUTrace = job.FlatTrace(0.5, 1200)
		return []*job.Job{a, b}
	}
	cfg := DefaultConfig()
	cfg.TickSec = 15
	cfg.EmissionIntensityFn = func(t float64) float64 {
		if math.Mod(t/3600, 24) < 6 {
			return 400
		}
		return 1100
	}
	dense, event := runEngines(t, cfg, mkJobs, 6*3600)
	assertReportsClose(t, dense.ReportNow(), event.ReportNow(), 1e-9)
	assertHistoriesClose(t, dense.History(), event.History(), 1e-9)
}

// TestEventEngineMatchesDenseStuckPinnedJob: a pinned replay job whose
// ReplayStart passes while its nodes are still busy. Past pinned starts
// are excluded from the event horizon (only the completion that frees
// nodes can start them), so gap skipping must stay active — and the
// deferred start must still land on exactly the dense engine's tick.
func TestEventEngineMatchesDenseStuckPinnedJob(t *testing.T) {
	mkJobs := func() []*job.Job {
		hog := job.New(1, "hog", 9000, 3600, 0)
		hog.CPUTrace = job.FlatTrace(0.7, 3600)
		hog.GPUTrace = job.FlatTrace(0.7, 3600)
		pinned := job.New(2, "pinned", 5000, 1800, 0)
		pinned.ReplayStart = 600 // passes while the hog holds the machine
		pinned.CPUTrace = job.FlatTrace(0.5, 1800)
		pinned.GPUTrace = job.FlatTrace(0.6, 1800)
		return []*job.Job{hog, pinned}
	}
	cfg := DefaultConfig()
	cfg.TickSec = 15
	dense, event := runEngines(t, cfg, mkJobs, 2*3600)
	if got := event.ReportNow().JobsCompleted; got != 2 {
		t.Fatalf("event engine completed %d jobs, want 2", got)
	}
	assertReportsClose(t, dense.ReportNow(), event.ReportNow(), 1e-9)
	assertHistoriesClose(t, dense.History(), event.History(), 1e-9)
}

// TestEventSkipIdleRun: an empty machine is one long event-free gap; the
// skip path must still produce the full history series and exact-energy
// accumulators.
func TestEventSkipIdleRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TickSec = 1
	dense, event := runEngines(t, cfg, func() []*job.Job { return nil }, 3600)
	assertReportsClose(t, dense.ReportNow(), event.ReportNow(), 1e-9)
	assertHistoriesClose(t, dense.History(), event.History(), 1e-9)
	if len(event.History()) != 240 {
		t.Fatalf("idle hour at 15 s sampling: %d samples, want 240", len(event.History()))
	}
}
