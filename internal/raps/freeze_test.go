package raps

import (
	"math"
	"testing"

	"exadigit/internal/job"
)

// flatJob builds a constant-utilization job — the workload shape whose
// per-quantum trace advances used to disable tick-gap skipping.
func flatJob(id, nodes int, wall, submit float64) *job.Job {
	j := job.New(id, "flat", nodes, wall, submit)
	j.CPUTrace = job.FlatTrace(0.5, wall)
	j.GPUTrace = job.FlatTrace(0.8, wall)
	return j
}

// TestConstantTraceFreezeEnablesSkipping: a running FlatTrace job must
// not force an event every 15 s trace quantum — the constant-suffix
// detection freezes it at start, so nearly the whole horizon is
// integrated analytically even at a 1 s tick.
func TestConstantTraceFreezeEnablesSkipping(t *testing.T) {
	horizon := 4 * 3600.0
	jobs := []*job.Job{flatJob(1, 512, horizon+100, 0)}
	cfg := DefaultConfig() // 1 s tick
	sim, err := New(cfg, frontierModel(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(horizon); err != nil {
		t.Fatal(err)
	}
	steps := int(horizon / cfg.TickSec)
	if q := sim.QuietTicks(); q < steps*9/10 {
		t.Errorf("only %d of %d ticks skipped; constant trace should freeze the job", q, steps)
	}
}

// TestFreezeMatchesDense: freezing must be invisible in the results —
// the event engine with frozen flat jobs reproduces the dense reference
// sweep bit-for-bit on the energy accumulators.
func TestFreezeMatchesDense(t *testing.T) {
	horizon := 2 * 3600.0
	build := func() []*job.Job {
		return []*job.Job{
			flatJob(1, 512, 5000, 0),
			flatJob(2, 1024, horizon+50, 600),
			// A plateau trace: varies, then constant — frozen mid-job.
			func() *job.Job {
				j := job.New(3, "plateau", 256, horizon, 30)
				n := job.TraceLen(horizon)
				j.CPUTrace = make([]float64, n)
				j.GPUTrace = make([]float64, n)
				for i := range j.CPUTrace {
					if i < 4 {
						j.CPUTrace[i] = 0.1 * float64(i+1)
						j.GPUTrace[i] = 0.2 * float64(i+1)
					} else {
						j.CPUTrace[i] = 0.45
						j.GPUTrace[i] = 0.9
					}
				}
				return j
			}(),
		}
	}
	run := func(engine Engine) *Report {
		cfg := DefaultConfig()
		cfg.TickSec = 15
		cfg.Engine = engine
		sim, err := New(cfg, frontierModel(), build())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(horizon)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	ev, de := run(EngineEvent), run(EngineDense)
	if ev.JobsCompleted != de.JobsCompleted {
		t.Errorf("jobs: event %d vs dense %d", ev.JobsCompleted, de.JobsCompleted)
	}
	if ev.EnergyMWh != de.EnergyMWh {
		if rel := math.Abs(ev.EnergyMWh-de.EnergyMWh) / de.EnergyMWh; rel > 1e-12 {
			t.Errorf("energy diverges: event %v vs dense %v (%v rel)", ev.EnergyMWh, de.EnergyMWh, rel)
		}
	}
	if math.Abs(ev.AvgUtilization-de.AvgUtilization) > 1e-12 {
		t.Errorf("utilization diverges: %v vs %v", ev.AvgUtilization, de.AvgUtilization)
	}
}

// TestOnSampleHookSeesEveryHistorySample: the streaming hook must fire
// once per recorded sample, inside skipped gaps included, with identical
// content.
func TestOnSampleHookSeesEveryHistorySample(t *testing.T) {
	horizon := 2 * 3600.0
	var hooked []Sample
	cfg := DefaultConfig()
	cfg.TickSec = 15
	cfg.OnSample = func(s Sample) { hooked = append(hooked, s) }
	sim, err := New(cfg, frontierModel(), []*job.Job{flatJob(1, 256, horizon, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(horizon); err != nil {
		t.Fatal(err)
	}
	hist := sim.History()
	if len(hooked) != len(hist) {
		t.Fatalf("hook saw %d samples, history has %d", len(hooked), len(hist))
	}
	for i := range hist {
		if hooked[i].TimeSec != hist[i].TimeSec || hooked[i].PowerW != hist[i].PowerW {
			t.Fatalf("sample %d diverges: hook %+v vs history %+v", i, hooked[i], hist[i])
		}
	}
}
