package raps

import "sort"

// JobEnergy is the per-job energy attribution of §III-A's first use case
// ("visualizing energy consumption on a per-job basis").
type JobEnergy struct {
	JobID     int
	Name      string
	NodeCount int
	// NodeEnergyMWh is the energy measured at the 48 V node input
	// (Eq. 1's P_S48V) integrated over the job's runtime.
	NodeEnergyMWh float64
	// FacilityEnergyMWh scales NodeEnergyMWh by the system-wide ratio of
	// facility energy to node-output energy, attributing each job its
	// proportional share of conversion losses, switches, and CDU pumps.
	FacilityEnergyMWh float64
	// CO2Tons and CostUSD price the facility share with the run's
	// emission factor and tariff.
	CO2Tons float64
	CostUSD float64
}

// trackJobEnergy accumulates per-job node-level energy each tick; called
// from Tick with the current utilizations already applied. Under the
// event engine the per-node power is already cached per job for the
// current trace quantum, so the Eq. 3 re-evaluation is skipped.
func (s *Simulation) trackJobEnergy(dt float64) {
	if s.jobEnergyJ == nil {
		s.jobEnergyJ = make(map[int]float64)
	}
	for _, r := range s.sch.Running() {
		var p float64
		if rs, ok := s.runStates[r.ID]; ok {
			p = rs.nodeP * float64(r.NodeCount)
		} else {
			cu, gu := r.UtilAt(s.now - r.StartTime)
			p = s.model.Spec.NodePower(cu, gu) * float64(r.NodeCount)
		}
		s.jobEnergyJ[r.ID] += p * dt
	}
}

// JobEnergyReport returns every started job's attributed energy, sorted
// by facility share descending. The facility multiplier is the run-wide
// total energy divided by node-output energy, so per-job facility shares
// sum to the total minus the idle floor.
func (s *Simulation) JobEnergyReport() []JobEnergy {
	mult := 1.0
	if s.nodeOutJ > 0 {
		mult = s.energyJ / s.nodeOutJ
	}
	ef := 0.0
	if s.convInJ > 0 {
		eta := s.nodeOutJ / s.convInJ
		if eta > 0 {
			ef = s.cfg.EmissionIntensity / 2204.6 / eta
		}
	}
	byID := make(map[int]*JobEnergy)
	add := func(id int, name string, nodes int) {
		if joules, ok := s.jobEnergyJ[id]; ok {
			mwh := joules / 3.6e9
			fac := mwh * mult
			byID[id] = &JobEnergy{
				JobID: id, Name: name, NodeCount: nodes,
				NodeEnergyMWh:     mwh,
				FacilityEnergyMWh: fac,
				CO2Tons:           fac * ef,
				CostUSD:           fac * s.cfg.ElectricityUSDPerMWh,
			}
		}
	}
	for _, j := range s.completed {
		add(j.ID, j.Name, j.NodeCount)
	}
	for _, j := range s.sch.Running() {
		add(j.ID, j.Name, j.NodeCount)
	}
	out := make([]JobEnergy, 0, len(byID))
	for _, je := range byID {
		out = append(out, *je)
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].FacilityEnergyMWh != out[k].FacilityEnergyMWh {
			return out[i].FacilityEnergyMWh > out[k].FacilityEnergyMWh
		}
		return out[i].JobID < out[k].JobID
	})
	return out
}

// TopConsumers returns the n largest jobs by facility energy.
func (s *Simulation) TopConsumers(n int) []JobEnergy {
	all := s.JobEnergyReport()
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}
