package raps

import "sort"

// JobEnergy is the per-job energy attribution of §III-A's first use case
// ("visualizing energy consumption on a per-job basis").
type JobEnergy struct {
	JobID     int
	Name      string
	NodeCount int
	// NodeEnergyMWh is the energy measured at the 48 V node input
	// (Eq. 1's P_S48V) integrated over the job's runtime.
	NodeEnergyMWh float64
	// FacilityEnergyMWh scales NodeEnergyMWh by the system-wide ratio of
	// facility energy to node-output energy, attributing each job its
	// proportional share of conversion losses, switches, and CDU pumps.
	FacilityEnergyMWh float64
	// CO2Tons and CostUSD price the facility share with the run's
	// emission factor and tariff.
	CO2Tons float64
	CostUSD float64
}

// trackJobEnergy accumulates one partition's per-job node-level energy
// each tick; called from Tick with the current utilizations already
// applied. Under the event engine the per-node power is already cached
// per job for the current trace quantum, so the Eq. 3 re-evaluation is
// skipped.
func (s *Simulation) trackJobEnergy(pt *partSim, dt float64) {
	if pt.jobEnergyJ == nil {
		pt.jobEnergyJ = make(map[int]float64)
	}
	for _, r := range pt.sch.Running() {
		var p float64
		if rs, ok := pt.runStates[r.ID]; ok {
			p = rs.nodeP * float64(r.NodeCount)
		} else {
			cu, gu := r.UtilAt(s.now - r.StartTime)
			p = pt.model.Spec.NodePower(cu, gu) * float64(r.NodeCount)
		}
		pt.jobEnergyJ[r.ID] += p * dt
	}
}

// JobEnergyReport returns every started job's attributed energy across
// all partitions, sorted by facility share descending. The facility
// multiplier is the run-wide total energy divided by node-output energy,
// so per-job facility shares sum to the total minus the idle floor. Job
// IDs are per-partition namespaces; the twin layer offsets generated IDs
// so multi-partition reports stay unambiguous.
func (s *Simulation) JobEnergyReport() []JobEnergy {
	mult := 1.0
	if s.nodeOutJ > 0 {
		mult = s.energyJ / s.nodeOutJ
	}
	ef := 0.0
	if s.convInJ > 0 {
		eta := s.nodeOutJ / s.convInJ
		if eta > 0 {
			ef = s.cfg.EmissionIntensity / 2204.6 / eta
		}
	}
	var out []JobEnergy
	for _, pt := range s.parts {
		// Duplicate job IDs within a partition (replay datasets carry
		// IDs verbatim) share one energy bucket; emit it once, not once
		// per instance, so report rows still sum to the run total.
		seen := make(map[int]bool, len(pt.jobEnergyJ))
		add := func(id int, name string, nodes int) {
			if seen[id] {
				return
			}
			if joules, ok := pt.jobEnergyJ[id]; ok {
				seen[id] = true
				mwh := joules / 3.6e9
				fac := mwh * mult
				out = append(out, JobEnergy{
					JobID: id, Name: name, NodeCount: nodes,
					NodeEnergyMWh:     mwh,
					FacilityEnergyMWh: fac,
					CO2Tons:           fac * ef,
					CostUSD:           fac * s.cfg.ElectricityUSDPerMWh,
				})
			}
		}
		for _, j := range pt.completed {
			add(j.ID, j.Name, j.NodeCount)
		}
		for _, j := range pt.sch.Running() {
			add(j.ID, j.Name, j.NodeCount)
		}
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].FacilityEnergyMWh != out[k].FacilityEnergyMWh {
			return out[i].FacilityEnergyMWh > out[k].FacilityEnergyMWh
		}
		return out[i].JobID < out[k].JobID
	})
	return out
}

// TopConsumers returns the n largest jobs by facility energy.
func (s *Simulation) TopConsumers(n int) []JobEnergy {
	all := s.JobEnergyReport()
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}
