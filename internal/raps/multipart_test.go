package raps

import (
	"math"
	"testing"

	"exadigit/internal/cooling"
	"exadigit/internal/fmu"
	"exadigit/internal/job"
	"exadigit/internal/power"
)

// smallModel builds a compact partition model for multi-partition tests:
// nodes/racks sized so two partitions fit comfortably inside the
// 25-loop Frontier plant used as the shared test plant.
func smallModel(nodes, nodesPerRack, numCDUs int, withGPUs bool) *power.Model {
	spec := power.FrontierComponents()
	if !withGPUs {
		spec.GPUIdle, spec.GPUMax, spec.GPUsPerNode = 0, 0, 0
	}
	return &power.Model{
		Spec:  spec,
		Chain: power.FrontierChain(),
		Topo: power.Topology{
			NodesTotal:      nodes,
			NodesPerRack:    nodesPerRack,
			NodesPerChassis: 16,
			ChassisPerRack:  nodesPerRack / 16,
			SwitchesPerRack: 2,
			RacksPerCDU:     1,
			NumCDUs:         numCDUs,
		},
		CoolingEff: 0.945,
	}
}

func twoTestPartitions(seedA, seedB int64) []Partition {
	genA := job.DefaultGeneratorConfig()
	genA.Seed = seedA
	genA.MaxNodes = 64
	genB := job.DefaultGeneratorConfig()
	genB.Seed = seedB
	genB.MaxNodes = 32
	return []Partition{
		{Name: "cpu", Model: smallModel(64, 32, 2, false), Jobs: job.NewGenerator(genA).GenerateHorizon(2 * 3600)},
		{Name: "gpu", Model: smallModel(32, 16, 2, true), Jobs: job.NewGenerator(genB).GenerateHorizon(2 * 3600)},
	}
}

// TestMultiPartitionHeatConservation is the ISSUE 5 conservation
// property: at every cooling coupling boundary, the heat the shared
// plant receives equals the summed per-partition CDU heat, each
// partition's loop-range sum equals its own (power − pumps) × cooling
// efficiency, and the plant's IT-power input equals the summed partition
// power.
func TestMultiPartitionHeatConservation(t *testing.T) {
	design, err := fmu.NewDesign(cooling.Frontier()) // 25 loops ≥ the 4 coupled
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.TickSec = 15
	cfg.EnableCooling = true
	cfg.CoolingDesign = design
	cfg.RecordCDUHeat = true
	cfg.WetBulbC = func(float64) float64 { return 19 }

	var sim *Simulation
	boundaries := 0
	cfg.OnSample = func(smp Sample) {
		// HistoryDtSec == CoolingDtSec == TickSec == 15 s, so every
		// sample time is a coupling boundary and stepCooling ran earlier
		// in the same tick.
		boundaries++
		fed := make([]float64, len(sim.heatRefs))
		if err := sim.cool.GetReal(sim.heatRefs, fed); err != nil {
			t.Fatal(err)
		}
		var fedSum, recSum float64
		for _, h := range fed {
			fedSum += h
		}
		for _, h := range smp.CDUHeatW {
			recSum += h
		}
		if fedSum != recSum {
			t.Fatalf("t=%v: plant received %v W but the recorded CDU heat sums to %v W", smp.TimeSec, fedSum, recSum)
		}
		if len(smp.PartPowerW) != 2 {
			t.Fatalf("t=%v: PartPowerW = %v, want 2 partitions", smp.TimeSec, smp.PartPowerW)
		}
		off := 0
		for p, pt := range sim.parts {
			n := pt.model.Topo.NumCDUs
			var seg float64
			for _, h := range smp.CDUHeatW[off : off+n] {
				seg += h
			}
			pump := float64(n) * pt.model.Spec.CDUPump
			want := (smp.PartPowerW[p] - pump) * pt.model.CoolingEff
			if d := math.Abs(seg - want); d > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("t=%v partition %q: CDU heat %v W, want (%v−%v)×%v = %v W",
					smp.TimeSec, pt.name, seg, smp.PartPowerW[p], pump, pt.model.CoolingEff, want)
			}
			off += n
		}
		itBuf := make([]float64, 1)
		if err := sim.cool.GetReal([]fmu.ValueRef{sim.itRef}, itBuf); err != nil {
			t.Fatal(err)
		}
		if itBuf[0] != smp.PowerW {
			t.Fatalf("t=%v: plant it_power_w = %v, sample power = %v", smp.TimeSec, itBuf[0], smp.PowerW)
		}
		if smp.PartPowerW[0]+smp.PartPowerW[1] != smp.PowerW {
			t.Fatalf("t=%v: partition powers %v do not sum to %v", smp.TimeSec, smp.PartPowerW, smp.PowerW)
		}
	}

	sim, err = NewMulti(cfg, twoTestPartitions(41, 42))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(2 * 3600); err != nil {
		t.Fatal(err)
	}
	if boundaries == 0 {
		t.Fatal("no coupling boundaries observed")
	}
}

// TestMultiPartitionEventMatchesDense extends the headline equivalence
// property across the partition dimension: a two-partition day driven
// through both engines agrees on the report, the history, and each
// partition's sub-report.
func TestMultiPartitionEventMatchesDense(t *testing.T) {
	run := func(engine Engine) *Simulation {
		cfg := DefaultConfig()
		cfg.TickSec = 15
		cfg.Engine = engine
		cfg.RecordCDUHeat = true
		sim, err := NewMulti(cfg, twoTestPartitions(7, 8))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(2 * 3600); err != nil {
			t.Fatal(err)
		}
		return sim
	}
	dense := run(EngineDense)
	event := run(EngineEvent)
	assertReportsClose(t, dense.ReportNow(), event.ReportNow(), 1e-9)
	assertHistoriesClose(t, dense.History(), event.History(), 1e-9)
	dr, er := dense.ReportNow(), event.ReportNow()
	if len(dr.Partitions) != 2 || len(er.Partitions) != 2 {
		t.Fatalf("partition reports: dense %d, event %d", len(dr.Partitions), len(er.Partitions))
	}
	for i := range dr.Partitions {
		d, e := dr.Partitions[i], er.Partitions[i]
		if d.Name != e.Name || d.JobsCompleted != e.JobsCompleted {
			t.Fatalf("partition %d identity diverged: %+v vs %+v", i, d, e)
		}
		if relDiff(d.EnergyMWh, e.EnergyMWh) > 1e-9 || relDiff(d.AvgPowerMW, e.AvgPowerMW) > 1e-9 {
			t.Fatalf("partition %d energy diverged: %+v vs %+v", i, d, e)
		}
	}
	if event.QuietTicks() == 0 {
		t.Error("event engine skipped no ticks on a two-partition day — skipping disabled by the partition dimension")
	}
	// Per-partition energies decompose the total.
	var sum float64
	for _, p := range er.Partitions {
		sum += p.EnergyMWh
	}
	if relDiff(sum, er.EnergyMWh) > 1e-9 {
		t.Errorf("partition energies %v MWh do not sum to %v MWh", sum, er.EnergyMWh)
	}
}

// TestNewMultiRejectsUndersizedPlant pins the raps-level guard: coupling
// more partition CDUs than the plant has loops fails at construction
// with a missing-variable error instead of corrupting the coupling.
func TestNewMultiRejectsUndersizedPlant(t *testing.T) {
	small := cooling.Frontier()
	small.NumCDUs = 3 // fewer than the 4 loops the partitions couple
	design, err := fmu.NewDesign(small)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.EnableCooling = true
	cfg.CoolingDesign = design
	if _, err := NewMulti(cfg, twoTestPartitions(1, 2)); err == nil {
		t.Fatal("undersized plant accepted")
	}
}

// TestSingleVsTwoPartitionSplit pins the aggregation arithmetic another
// way: one partition split into two identical halves (same jobs, same
// topology halves) produces the same total power series as the unsplit
// machine when the workload is replicated per half.
func TestSingleVsTwoPartitionSplit(t *testing.T) {
	mkJob := func() *job.Job {
		j := job.New(1, "load", 24, 1800, 300)
		j.CPUTrace = job.FlatTrace(0.7, 1800)
		j.GPUTrace = job.FlatTrace(0.6, 1800)
		return j
	}
	cfg := DefaultConfig()
	cfg.TickSec = 15

	whole, err := NewMulti(cfg, []Partition{
		{Name: "all", Model: smallModel(64, 32, 2, true), Jobs: []*job.Job{mkJob()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := whole.Run(3600); err != nil {
		t.Fatal(err)
	}

	split, err := NewMulti(cfg, []Partition{
		{Name: "a", Model: smallModel(32, 32, 1, true), Jobs: []*job.Job{mkJob()}},
		{Name: "b", Model: smallModel(32, 32, 1, true), Jobs: []*job.Job{mkJob()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := split.Run(3600); err != nil {
		t.Fatal(err)
	}

	wh, sh := whole.History(), split.History()
	if len(wh) != len(sh) {
		t.Fatalf("history lengths differ: %d vs %d", len(wh), len(sh))
	}
	for i := range wh {
		// The split halves run the same 24-node job twice (48 active
		// nodes vs 24), so only the structural identities are compared:
		// split partition powers must sum to the split total, and both
		// runs share the time base.
		if wh[i].TimeSec != sh[i].TimeSec {
			t.Fatalf("sample %d time %v vs %v", i, wh[i].TimeSec, sh[i].TimeSec)
		}
		if len(sh[i].PartPowerW) != 2 {
			t.Fatalf("sample %d: split run has no partition split", i)
		}
		if got := sh[i].PartPowerW[0] + sh[i].PartPowerW[1]; got != sh[i].PowerW {
			t.Fatalf("sample %d: partition powers %v sum to %v, total %v",
				i, sh[i].PartPowerW, got, sh[i].PowerW)
		}
	}
}
