// Package raps implements the Resource Allocator and Power Simulator —
// the paper's core module (§III-B, Algorithm 1). A Simulation advances
// one-second ticks: arriving jobs enter the pending queue, the scheduler
// assigns nodes, per-node power follows the CPU/GPU utilization traces
// through the Eq. 3 component model with Eq. 1-2 conversion losses, and
// every 15 s the aggregated per-CDU heat drives the cooling model through
// the FMU interface. At the end of a run the §III-B5 report is produced:
// jobs completed, throughput, average power, energy, losses, CO₂
// emissions (Eq. 6), and electricity cost.
//
// Utilization is piecewise-constant — it changes only when a job starts,
// ends, or crosses a 15 s trace quantum — so the default EngineEvent
// evaluates power incrementally (power.Incremental dirty-chassis deltas)
// and Run integrates the accumulators analytically across event-free tick
// gaps instead of sweeping all nodes every tick. EngineDense keeps the
// original dense sweep as the reference implementation; equivalence is
// pinned by TestEventEngineMatchesDense.
package raps

import (
	"context"
	"fmt"
	"math"
	"sort"

	"exadigit/internal/cooling"
	"exadigit/internal/fmu"
	"exadigit/internal/job"
	"exadigit/internal/power"
	"exadigit/internal/sched"
	"exadigit/internal/telemetry"
	"exadigit/internal/units"
)

// Engine selects the power-evaluation strategy.
type Engine int

const (
	// EngineEvent (the default) tracks dirty chassis through
	// power.Incremental and skips event-free tick gaps analytically.
	// Results match EngineDense bit-for-bit on the report accumulators
	// for chassis-aligned topologies (and to ≲1e-12 otherwise).
	EngineEvent Engine = iota
	// EngineDense re-evaluates every node every tick through
	// Model.Compute — the reference implementation, kept for
	// verification and as the baseline in perf comparisons.
	EngineDense
)

// Config parameterizes a simulation run.
type Config struct {
	// Policy names the scheduling policy ("fcfs", "sjf", "easy").
	Policy string
	// TickSec is the simulation tick (Algorithm 1 uses 1 s; 15 s is a
	// faithful speed-up because utilization traces advance at 15 s
	// quanta anyway).
	TickSec float64
	// CoolingDtSec is the cooling-model coupling period (15 s, §III-B).
	CoolingDtSec float64
	// EnableCooling couples the cooling FMU (≈3× slower, §IV-3).
	EnableCooling bool
	// CoolingDesign, when set, supplies the precompiled FMU design to
	// instantiate the cooling model from — sweeps compile it once per
	// spec and share it across scenarios. nil compiles a private
	// Frontier-plant design (the pre-existing behavior).
	CoolingDesign *fmu.Design
	// Engine selects the power-evaluation strategy; the zero value is
	// the event-driven incremental engine.
	Engine Engine
	// WetBulbC supplies the outdoor wet-bulb temperature over simulation
	// time; nil means a constant 20 °C.
	WetBulbC func(tSec float64) float64
	// ElectricityUSDPerMWh prices energy for the cost report. The
	// default 91.5 $/MWh reproduces the paper's ≈$900k/yr for 1.14 MW of
	// losses.
	ElectricityUSDPerMWh float64
	// EmissionIntensity is EI in Eq. 6, lb CO₂ per MWh (852.3).
	EmissionIntensity float64
	// EmissionIntensityFn optionally supplies a time-varying EI
	// (lb CO₂/MWh) — the paper notes the grid's intensity "can vary
	// regionally and even hourly". When set it overrides
	// EmissionIntensity and enables carbon-aware what-if studies. It is
	// still sampled at every tick inside skipped gaps, so event skipping
	// does not coarsen the carbon integral.
	EmissionIntensityFn func(tSec float64) float64
	// HistoryDtSec is the sampling period of the recorded series (15 s).
	HistoryDtSec float64
	// NoHistory skips storing the recorded series in memory — the lean
	// mode for huge sweeps and streamed long replays where only the
	// report (and any OnSample sink) matters. OnSample still fires per
	// sample; History() stays empty and ExportTelemetry carries no
	// series.
	NoHistory bool
	// RecordCDUHeat stores the per-CDU heat vector in each history
	// sample (needed by the Fig. 7 cooling-validation experiment).
	RecordCDUHeat bool
	// OnSample, when set, is invoked synchronously for every recorded
	// history sample as it is taken — the hook streaming telemetry sinks
	// attach to so samples leave the process incrementally instead of
	// being materialized by ExportTelemetry after the run. The Sample is
	// passed by value; its CDUHeatW slice (if recorded) must not be
	// retained.
	OnSample func(Sample)
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		Policy:               "fcfs",
		TickSec:              1,
		CoolingDtSec:         15,
		EnableCooling:        false,
		ElectricityUSDPerMWh: 91.5,
		EmissionIntensity:    852.3,
		HistoryDtSec:         15,
	}
}

// Sample is one entry of the recorded history (Fig. 9's plotted series).
type Sample struct {
	TimeSec       float64
	PowerW        float64 // predicted instantaneous system power
	LossW         float64 // rectification + conversion losses
	Utilization   float64 // active nodes / total nodes
	EtaSystem     float64 // Eq. 1 conversion efficiency
	EtaCooling    float64 // H / P_system (§IV-2)
	PUE           float64 // 0 when cooling disabled
	HTWReturnC    float64 // primary return temperature (Fig. 8); 0 if disabled
	HTWSupplyC    float64 // primary supply temperature; 0 if disabled
	SecSupplyMaxC float64 // hottest CDU secondary supply; 0 if disabled
	JobsRunning   int
	JobsPending   int
	// CDUHeatW is the per-CDU heat load fed to the cooling model; only
	// populated when Config.RecordCDUHeat is set.
	CDUHeatW []float64
}

// Report is the §III-B5 end-of-run summary.
type Report struct {
	JobsCompleted   int
	ThroughputPerHr float64
	AvgPowerMW      float64
	MaxPowerMW      float64
	MinPowerMW      float64
	EnergyMWh       float64
	AvgLossMW       float64
	MaxLossMW       float64
	LossPercent     float64 // average loss / average power
	EtaSystem       float64 // energy-weighted Eq. 1 efficiency
	CO2Tons         float64 // Eq. 6
	CostUSD         float64
	AvgUtilization  float64
	AvgPUE          float64 // 0 when cooling disabled
	SimSeconds      float64
	// Workload statistics for Table IV.
	AvgArrivalSec  float64
	AvgNodesPerJob float64
	AvgRuntimeMin  float64
}

// runState caches the event-engine view of one running job: its current
// trace quantum, the per-node power at that quantum, and the node
// allocation (retained past Reap, which nils the job's own slice).
type runState struct {
	j      *job.Job
	nodes  []int
	idx    int // current trace-quantum index
	cu, gu float64
	nodeP  float64 // Eq. 3 per-node power at (cu, gu)
	frozen bool    // utilization can no longer change
	// constFrom is the first index of the traces' constant suffix
	// (computed once at job start): once idx reaches it the remaining
	// samples are all equal, so the job is frozen early — FlatTrace jobs
	// and replay plateaus stop forcing per-quantum events and tick-gap
	// skipping stays enabled for much larger gaps.
	constFrom int
}

// freezeAt reports whether the job's utilization is pinned from trace
// index idx onward — either the trace is exhausted or idx has entered
// the constant suffix.
func (rs *runState) freezeAt(idx int) bool {
	return idx >= rs.constFrom || rs.j.TraceFrozenAt(idx)
}

// Simulation is one RAPS run in progress.
type Simulation struct {
	cfg    Config
	model  *power.Model
	sch    *sched.Scheduler
	fmuGet []fmu.ValueRef

	cool     *fmu.Instance
	heatRefs []fmu.ValueRef
	wbRef    fmu.ValueRef
	itRef    fmu.ValueRef
	// lastCoolT is the sim time of the last cooling DoStep; coasting
	// across quiet boundaries leaves it behind s.now until the plant is
	// stepped across the whole gap at once. coolCoastS is the plant's
	// coast window (0 for the fixed-step solver: every boundary steps).
	lastCoolT  float64
	coolCoastS float64
	// Preallocated cooling-coupling scratch (refs are constant).
	coolRefs []fmu.ValueRef
	coolVals []float64
	fmuOut   []float64

	pending []*job.Job // future arrivals, sorted by submit time
	nextArr int

	// Dense-engine state: per-node utilization arrays rebuilt each tick.
	nodeCPU []float64
	nodeGPU []float64

	// Event-engine state.
	inc       *power.Incremental
	runStates map[int]*runState

	now     float64
	sp      *power.SystemPower
	history []Sample

	// Cached per-CDU heat derived from sp; invalidated whenever power
	// changes so history sampling and cooling coupling never recompute
	// (or reallocate) it redundantly.
	heatBuf   []float64
	heatSum   float64
	heatValid bool

	// accumulators
	energyJ      float64
	lossJ        float64
	nodeOutJ     float64
	convInJ      float64
	utilSum      float64
	pueSum       float64
	pueCount     int
	ticks        int
	quietTicks   int
	maxPowerW    float64
	minPowerW    float64
	maxLossW     float64
	completed    []*job.Job
	lastHistoryT float64
	jobEnergyJ   map[int]float64
	// weightedEIJ integrates P·EI·dt for time-varying-EI carbon
	// accounting (J·lb/MWh).
	weightedEIJ float64
}

// New builds a simulation over the given power model. jobs may arrive in
// any order; they are sorted by submit time internally. The model must
// not be mutated after New — the event engine caches its parameters.
func New(cfg Config, model *power.Model, jobs []*job.Job) (*Simulation, error) {
	if cfg.TickSec <= 0 {
		return nil, fmt.Errorf("raps: TickSec must be positive")
	}
	if cfg.Engine != EngineEvent && cfg.Engine != EngineDense {
		return nil, fmt.Errorf("raps: unknown engine %d", cfg.Engine)
	}
	if cfg.CoolingDtSec <= 0 {
		cfg.CoolingDtSec = 15
	}
	if cfg.HistoryDtSec <= 0 {
		cfg.HistoryDtSec = 15
	}
	if cfg.ElectricityUSDPerMWh == 0 {
		cfg.ElectricityUSDPerMWh = 91.5
	}
	if cfg.EmissionIntensity == 0 {
		cfg.EmissionIntensity = 852.3
	}
	policy, err := sched.PolicyByName(cfg.Policy)
	if err != nil {
		return nil, err
	}
	if err := model.Topo.Validate(); err != nil {
		return nil, err
	}
	s := &Simulation{
		cfg:       cfg,
		model:     model,
		sch:       sched.NewScheduler(model.Topo.NodesTotal, policy),
		minPowerW: math.Inf(1),
	}
	if cfg.Engine == EngineDense {
		s.nodeCPU = make([]float64, model.Topo.NodesTotal)
		s.nodeGPU = make([]float64, model.Topo.NodesTotal)
		s.sp = &power.SystemPower{}
	} else {
		s.inc = model.NewIncremental()
		s.sp = s.inc.Power()
		s.runStates = make(map[int]*runState)
	}
	s.pending = append(s.pending, jobs...)
	sortJobsBySubmit(s.pending)

	if cfg.EnableCooling {
		design := cfg.CoolingDesign
		if design == nil {
			design, err = fmu.NewDesign(cooling.Frontier())
			if err != nil {
				return nil, err
			}
		}
		inst, err := design.Instantiate()
		if err != nil {
			return nil, err
		}
		if err := inst.SetupExperiment(0); err != nil {
			return nil, err
		}
		d := inst.Description()
		for i := 1; i <= model.Topo.NumCDUs; i++ {
			r, err := d.RefByName(fmt.Sprintf("cdu[%d].heat_w", i))
			if err != nil {
				return nil, err
			}
			s.heatRefs = append(s.heatRefs, r)
		}
		if s.wbRef, err = d.RefByName("wetbulb_temp_c"); err != nil {
			return nil, err
		}
		if s.itRef, err = d.RefByName("it_power_w"); err != nil {
			return nil, err
		}
		ret, err := d.RefByName("facility.return_temp_c")
		if err != nil {
			return nil, err
		}
		sup, err := d.RefByName("facility.supply_temp_c")
		if err != nil {
			return nil, err
		}
		s.fmuGet = []fmu.ValueRef{ret, sup}
		for i := 1; i <= model.Topo.NumCDUs; i++ {
			r, err := d.RefByName(fmt.Sprintf("cdu[%d].secondary_supply_temp_c", i))
			if err != nil {
				return nil, err
			}
			s.fmuGet = append(s.fmuGet, r)
		}
		s.coolRefs = append(append([]fmu.ValueRef{}, s.heatRefs...), s.wbRef, s.itRef)
		s.coolVals = make([]float64, len(s.coolRefs))
		s.fmuOut = make([]float64, len(s.fmuGet))
		s.cool = inst
		s.coolCoastS = inst.Plant().CoastWindowS()
	}
	return s, nil
}

func sortJobsBySubmit(jobs []*job.Job) {
	// Stable sort by (submit, id); synthetic multi-day workloads reach
	// thousands of jobs, so the old insertion sort's O(n²) worst case
	// mattered.
	sort.SliceStable(jobs, func(i, k int) bool { return less(jobs[i], jobs[k]) })
}

func less(a, b *job.Job) bool {
	if a.SubmitTime != b.SubmitTime {
		return a.SubmitTime < b.SubmitTime
	}
	return a.ID < b.ID
}

// Now returns the current simulation time in seconds.
func (s *Simulation) Now() float64 { return s.now }

// QuietTicks returns how many ticks were integrated analytically inside
// event-free gaps rather than simulated — the event engine's skipping
// effectiveness (observability for the constant-trace freeze and gap
// analysis; 0 under EngineDense).
func (s *Simulation) QuietTicks() int { return s.quietTicks }

// History returns the recorded series.
func (s *Simulation) History() []Sample { return s.history }

// PerRackPowerW returns the most recent per-rack input power (the
// §III-A heat-map channel). The slice is live simulation state; callers
// must copy it if they retain it.
func (s *Simulation) PerRackPowerW() []float64 { return s.sp.PerRackInputW }

// CoolingPlant exposes the coupled plant (nil when cooling is disabled).
func (s *Simulation) CoolingPlant() *cooling.Plant {
	if s.cool == nil {
		return nil
	}
	return s.cool.Plant()
}

// CoolingSolverStats returns the coupled plant's thermal-solver
// accounting — the quiescent-fraction observability for the adaptive
// cooling fast path (zero when cooling is disabled).
func (s *Simulation) CoolingSolverStats() cooling.SolverStats {
	if s.cool == nil {
		return cooling.SolverStats{}
	}
	return s.cool.SolverStats()
}

// Run advances the simulation for the given horizon (Algorithm 1's
// RUNSIMULATION) and returns the end-of-run report. Under EngineEvent,
// tick gaps containing no event — no arrival, completion, trace-quantum
// crossing, pinned replay start, or cooling boundary — are integrated
// analytically in one pass instead of being simulated tick by tick.
func (s *Simulation) Run(horizonSec float64) (*Report, error) {
	return s.RunContext(context.Background(), horizonSec)
}

// RunContext is Run under a context: cancellation is observed at every
// tick boundary, so an abort stops a running day within one tick (one
// analytic gap at most under EngineEvent) instead of letting the horizon
// play out. The context error is returned; partial accumulators remain
// inspectable through ReportNow and Now.
func (s *Simulation) RunContext(ctx context.Context, horizonSec float64) (*Report, error) {
	done := ctx.Done()
	steps := int(math.Round(horizonSec / s.cfg.TickSec))
	for i := 0; i < steps; {
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		if k := s.skippableTicks(steps - i); k > 0 {
			s.advanceQuiet(k)
			i += k
			continue
		}
		if err := s.Tick(); err != nil {
			return nil, err
		}
		i++
	}
	return s.ReportNow(), nil
}

// Tick advances one simulation tick (Algorithm 1's TICK).
func (s *Simulation) Tick() error {
	dt := s.cfg.TickSec
	s.now += dt

	// Release completed jobs (lines 15-20); their nodes read as idle when
	// utilizations are refreshed below.
	done := s.sch.Reap(s.now)
	s.completed = append(s.completed, done...)

	// Admit newly arrived jobs (line 8).
	for s.nextArr < len(s.pending) && s.pending[s.nextArr].SubmitTime <= s.now {
		s.sch.Submit(s.pending[s.nextArr])
		s.nextArr++
	}
	// Schedule (line 9).
	started := s.sch.Schedule(s.now)

	// Recalculate power and apply losses (lines 21-22).
	if s.inc != nil {
		s.applyDeltas(done, started)
	} else {
		s.denseRefresh()
		s.model.Compute(s.nodeCPU, s.nodeGPU, s.sp)
		s.heatValid = false
	}
	s.accumulate(dt)
	s.trackJobEnergy(dt)

	// Couple the cooling model every 15 s (lines 23-26).
	if s.cool != nil && s.onBoundary(s.cfg.CoolingDtSec) {
		if err := s.stepCooling(); err != nil {
			return err
		}
	}
	if s.now-s.lastHistoryT >= s.cfg.HistoryDtSec-1e-9 {
		s.recordSample()
		s.lastHistoryT = s.now
	}
	s.ticks++
	return nil
}

// denseRefresh rebuilds the per-node utilization arrays from the running
// jobs' traces — the reference path's full sweep.
func (s *Simulation) denseRefresh() {
	for i := range s.nodeCPU {
		s.nodeCPU[i] = 0
		s.nodeGPU[i] = 0
	}
	for _, r := range s.sch.Running() {
		cu, gu := r.UtilAt(s.now - r.StartTime)
		for _, n := range r.Nodes {
			s.nodeCPU[n] = cu
			s.nodeGPU[n] = gu
		}
	}
}

// applyDeltas feeds this tick's utilization changes — completions,
// starts, and trace-quantum crossings — into the incremental engine.
func (s *Simulation) applyDeltas(done, started []*job.Job) {
	for _, j := range done {
		if rs, ok := s.runStates[j.ID]; ok {
			s.inc.SetNodesIdle(rs.nodes)
			delete(s.runStates, j.ID)
		}
	}
	for _, j := range started {
		t := s.now - j.StartTime
		idx := int(t / job.TraceQuantaSec)
		cu, gu := j.UtilAt(t)
		rs := &runState{
			j: j, nodes: j.Nodes, idx: idx, cu: cu, gu: gu,
			nodeP:     s.model.Spec.NodePower(cu, gu),
			constFrom: j.TraceConstSuffix(),
		}
		rs.frozen = rs.freezeAt(idx)
		s.inc.SetNodes(rs.nodes, cu, gu)
		s.runStates[j.ID] = rs
	}
	for _, j := range s.sch.Running() {
		rs, ok := s.runStates[j.ID]
		if !ok || rs.frozen {
			continue
		}
		t := s.now - j.StartTime
		idx := int(t / job.TraceQuantaSec)
		if idx == rs.idx {
			continue
		}
		rs.idx = idx
		rs.frozen = rs.freezeAt(idx)
		cu, gu := j.UtilAt(t)
		if cu != rs.cu || gu != rs.gu {
			rs.cu, rs.gu = cu, gu
			rs.nodeP = s.model.Spec.NodePower(cu, gu)
			s.inc.SetNodes(rs.nodes, cu, gu)
		}
	}
	if s.inc.Dirty() {
		s.heatValid = false
	}
	s.inc.ComputeDelta()
}

// skippableTicks returns how many upcoming ticks are guaranteed
// event-free — no arrival, completion, trace-quantum crossing, pinned
// replay start, or cooling boundary falls on them — and may therefore be
// integrated analytically. Returns 0 under EngineDense (the reference
// path simulates every tick) and 0 when the next tick may carry an
// event. Scheduler state cannot change between events: queued jobs only
// start when a completion or arrival frees resources, and EASY-backfill
// eligibility (now + walltime ≤ shadow) only shrinks as time advances.
func (s *Simulation) skippableTicks(maxTicks int) int {
	if s.inc == nil || maxTicks <= 0 {
		return 0
	}
	dt := s.cfg.TickSec
	next := math.Inf(1)
	consider := func(t float64) {
		if t < next {
			next = t
		}
	}
	if s.nextArr < len(s.pending) {
		consider(s.pending[s.nextArr].SubmitTime)
	}
	for _, rs := range s.runStates {
		consider(rs.j.StartTime + rs.j.WallTimeSec)
		if !rs.frozen {
			consider(rs.j.StartTime + float64(rs.idx+1)*job.TraceQuantaSec)
		}
	}
	if t := s.sch.NextPinnedStart(s.now); t >= 0 {
		consider(t)
	}
	if s.cool != nil {
		period := s.cfg.CoolingDtSec
		next := (math.Floor((s.now+1e-6)/period) + 1) * period
		if s.coolCoastS > 0 {
			if limit := s.lastCoolT + s.coolCoastS; limit > next && s.cool.Plant().CanCoast(s.cduHeat()) {
				// The plant is settled and would hold at the upcoming
				// boundaries under the gap's (constant) heat: coast — the
				// next cooling event is the end of the coast window,
				// snapped onto the boundary grid. stepCooling integrates
				// the plant across the whole deferred gap at once.
				next = math.Floor(limit/period) * period
			}
		}
		consider(next)
	}
	if math.IsInf(next, 1) {
		return maxTicks
	}
	// The event triggers on the first tick whose time reaches `next`;
	// everything strictly before it is skippable. The epsilon keeps
	// exact-multiple gaps robust against float noise (conservative: at
	// worst one extra full Tick runs).
	k := int(math.Ceil((next-s.now)/dt-1e-9)) - 1
	if k < 0 {
		k = 0
	}
	if k > maxTicks {
		k = maxTicks
	}
	return k
}

// advanceQuiet integrates k event-free ticks. Power, utilization, and
// job state are constant across the gap, so the per-tick model sweep and
// scheduler pass are elided; the accumulator arithmetic is kept
// per-tick-identical to Tick so results match the dense path. History
// samples falling inside the gap are still recorded at their exact times
// (from the cached power state), and a time-varying emission intensity
// is still sampled every tick.
func (s *Simulation) advanceQuiet(k int) {
	dt := s.cfg.TickSec
	p := s.sp.TotalW
	loss := s.sp.LossW()
	nodeOut := s.sp.NodeOutW
	util := float64(s.sch.Pool.InUse()) / float64(s.sch.Pool.Total())
	ei := s.cfg.EmissionIntensity
	fn := s.cfg.EmissionIntensityFn
	pue := 0.0
	if s.cool != nil {
		pue = s.cool.Plant().PUE()
	}
	for i := 0; i < k; i++ {
		s.now += dt
		e := p * dt
		s.energyJ += e
		if fn != nil {
			ei = fn(s.now)
		}
		s.weightedEIJ += e * ei
		s.lossJ += loss * dt
		s.nodeOutJ += nodeOut * dt
		s.convInJ += (nodeOut + loss) * dt
		s.utilSum += util * dt
		if s.cool != nil && pue > 0 {
			s.pueSum += pue
			s.pueCount++
		}
		if s.now-s.lastHistoryT >= s.cfg.HistoryDtSec-1e-9 {
			s.recordSample()
			s.lastHistoryT = s.now
		}
		s.ticks++
		s.quietTicks++
	}
	if p > s.maxPowerW {
		s.maxPowerW = p
	}
	if p < s.minPowerW {
		s.minPowerW = p
	}
	if loss > s.maxLossW {
		s.maxLossW = loss
	}
	if len(s.runStates) > 0 {
		if s.jobEnergyJ == nil {
			s.jobEnergyJ = make(map[int]float64)
		}
		gap := dt * float64(k)
		for id, rs := range s.runStates {
			s.jobEnergyJ[id] += rs.nodeP * float64(rs.j.NodeCount) * gap
		}
	}
}

// onBoundary reports whether the current time is a multiple of period.
func (s *Simulation) onBoundary(period float64) bool {
	m := math.Mod(s.now+1e-9, period)
	return m < s.cfg.TickSec-1e-9 || period-m < 1e-6
}

// cduHeat returns the cached per-CDU heat vector for the current power
// state, recomputing it only after the power changed.
func (s *Simulation) cduHeat() []float64 {
	if !s.heatValid {
		s.heatBuf = s.model.CDUHeatInto(s.sp, s.heatBuf)
		s.heatSum = 0
		for _, h := range s.heatBuf {
			s.heatSum += h
		}
		s.heatValid = true
	}
	return s.heatBuf
}

// stepCooling advances the plant to s.now. The common case steps one
// coupling interval exactly (bit-identical to the pre-coasting path).
// After a coasted gap the deferred stretch is fast-forwarded first under
// the inputs it was quiescent under — the values of the previous SetReal
// — and only the final coupling interval sees the fresh inputs, so a
// coast never back-applies a new transient over held time.
func (s *Simulation) stepCooling() error {
	period := s.cfg.CoolingDtSec
	dt := s.now - s.lastCoolT
	if dt <= 0 {
		return nil
	}
	if math.Abs(dt-period) < 1e-6 {
		dt = period
	} else if dt > period {
		if err := s.cool.DoStep(dt - period); err != nil {
			return err
		}
		dt = period
	}
	heat := s.cduHeat()
	n := copy(s.coolVals, heat)
	wb := 20.0
	if s.cfg.WetBulbC != nil {
		wb = s.cfg.WetBulbC(s.now)
	}
	s.coolVals[n] = wb
	s.coolVals[n+1] = s.sp.TotalW
	if err := s.cool.SetReal(s.coolRefs, s.coolVals); err != nil {
		return err
	}
	if err := s.cool.DoStep(dt); err != nil {
		return err
	}
	s.lastCoolT = s.now
	return nil
}

func (s *Simulation) accumulate(dt float64) {
	p := s.sp.TotalW
	s.energyJ += p * dt
	ei := s.cfg.EmissionIntensity
	if s.cfg.EmissionIntensityFn != nil {
		ei = s.cfg.EmissionIntensityFn(s.now)
	}
	s.weightedEIJ += p * dt * ei
	loss := s.sp.LossW()
	s.lossJ += loss * dt
	s.nodeOutJ += s.sp.NodeOutW * dt
	s.convInJ += (s.sp.NodeOutW + loss) * dt
	util := float64(s.sch.Pool.InUse()) / float64(s.sch.Pool.Total())
	s.utilSum += util * dt
	if p > s.maxPowerW {
		s.maxPowerW = p
	}
	if p < s.minPowerW {
		s.minPowerW = p
	}
	if loss > s.maxLossW {
		s.maxLossW = loss
	}
	if s.cool != nil {
		if pue := s.cool.Plant().PUE(); pue > 0 {
			s.pueSum += pue
			s.pueCount++
		}
	}
}

func (s *Simulation) recordSample() {
	if s.cfg.NoHistory && s.cfg.OnSample == nil {
		return // no consumer: skip building the sample entirely
	}
	smp := Sample{
		TimeSec:     s.now,
		PowerW:      s.sp.TotalW,
		LossW:       s.sp.LossW(),
		Utilization: float64(s.sch.Pool.InUse()) / float64(s.sch.Pool.Total()),
		EtaSystem:   s.sp.Efficiency(),
		JobsRunning: len(s.sch.Running()),
		JobsPending: s.sch.Pending(),
	}
	if s.sp.TotalW > 0 {
		s.cduHeat()
		smp.EtaCooling = s.heatSum / s.sp.TotalW
	}
	if s.cool != nil {
		smp.PUE = s.cool.Plant().PUE()
		if err := s.cool.GetReal(s.fmuGet, s.fmuOut); err == nil {
			smp.HTWReturnC = s.fmuOut[0]
			smp.HTWSupplyC = s.fmuOut[1]
			for _, v := range s.fmuOut[2:] {
				if v > smp.SecSupplyMaxC {
					smp.SecSupplyMaxC = v
				}
			}
		}
	}
	if s.cfg.RecordCDUHeat {
		smp.CDUHeatW = append([]float64(nil), s.cduHeat()...)
	}
	if !s.cfg.NoHistory {
		s.history = append(s.history, smp)
	}
	if s.cfg.OnSample != nil {
		s.cfg.OnSample(smp)
	}
}

// ReportNow summarizes the run so far (§III-B5's output statistics).
func (s *Simulation) ReportNow() *Report {
	r := &Report{
		JobsCompleted: len(s.completed),
		SimSeconds:    s.now,
	}
	if s.now <= 0 {
		return r
	}
	hours := s.now / 3600
	r.ThroughputPerHr = float64(r.JobsCompleted) / hours
	r.AvgPowerMW = units.WToMW(s.energyJ / s.now)
	r.MaxPowerMW = units.WToMW(s.maxPowerW)
	if !math.IsInf(s.minPowerW, 1) {
		r.MinPowerMW = units.WToMW(s.minPowerW)
	}
	r.EnergyMWh = s.energyJ / 3.6e9
	r.AvgLossMW = units.WToMW(s.lossJ / s.now)
	r.MaxLossMW = units.WToMW(s.maxLossW)
	if r.AvgPowerMW > 0 {
		r.LossPercent = 100 * r.AvgLossMW / r.AvgPowerMW
	}
	if s.convInJ > 0 {
		r.EtaSystem = s.nodeOutJ / s.convInJ
	}
	// Eq. 6: Ef = EI × (1 ton / 2204.6 lb) × 1/η_system, with EI taken
	// as the energy-weighted average when a time-varying profile is set.
	if r.EtaSystem > 0 && s.energyJ > 0 {
		avgEI := s.weightedEIJ / s.energyJ
		ef := avgEI * units.LbToMetricTon / r.EtaSystem
		r.CO2Tons = r.EnergyMWh * ef
	}
	r.CostUSD = r.EnergyMWh * s.cfg.ElectricityUSDPerMWh
	r.AvgUtilization = s.utilSum / s.now
	if s.pueCount > 0 {
		r.AvgPUE = s.pueSum / float64(s.pueCount)
	}
	if n := len(s.completed); n > 0 {
		var nodes, runtime float64
		for _, j := range s.completed {
			nodes += float64(j.NodeCount)
			runtime += j.WallTimeSec
		}
		r.AvgNodesPerJob = nodes / float64(n)
		r.AvgRuntimeMin = runtime / float64(n) / 60
		if n > 1 {
			first := s.completed[0].SubmitTime
			last := s.completed[n-1].SubmitTime
			if last > first {
				r.AvgArrivalSec = (last - first) / float64(n-1)
			}
		}
	}
	return r
}

// ForEachJobRecord visits every job that has started (completed first,
// then still running) as a Table II telemetry record — the shared
// iteration behind ExportTelemetry and the streaming NDJSON sink, so
// both emit identical records in identical order.
func (s *Simulation) ForEachJobRecord(fn func(telemetry.JobRecord)) {
	spec := s.model.Spec
	for _, j := range s.completed {
		fn(telemetry.FromJob(j, spec.CPUIdle, spec.CPUMax, spec.GPUIdle, spec.GPUMax))
	}
	for _, j := range s.sch.Running() {
		fn(telemetry.FromJob(j, spec.CPUIdle, spec.CPUMax, spec.GPUIdle, spec.GPUMax))
	}
}

// SeriesPointAt converts one recorded sample into the system-level
// telemetry series schema, evaluating the run's wet-bulb source at the
// sample time.
func (s *Simulation) SeriesPointAt(smp Sample) telemetry.SeriesPoint {
	wb := 20.0
	if s.cfg.WetBulbC != nil {
		wb = s.cfg.WetBulbC(smp.TimeSec)
	}
	return telemetry.SeriesPoint{
		TimeSec: smp.TimeSec, MeasuredPowerW: smp.PowerW, WetBulbC: wb,
	}
}

// ExportTelemetry converts the run so far into a Table II-style dataset:
// every job that has started (completed or still running) with its power
// traces, plus the predicted power series as the "measured" channel (our
// substitute for production telemetry).
func (s *Simulation) ExportTelemetry(epoch string) *telemetry.Dataset {
	d := &telemetry.Dataset{Epoch: epoch, SeriesDtSec: s.cfg.HistoryDtSec}
	s.ForEachJobRecord(func(r telemetry.JobRecord) { d.Jobs = append(d.Jobs, r) })
	for _, smp := range s.history {
		d.Series = append(d.Series, s.SeriesPointAt(smp))
	}
	return d
}

// JobsFromDataset converts telemetry job records into replay-pinned jobs
// using the model's component power ranges (telemetry carries power, the
// simulator needs utilization — footnote 1).
func JobsFromDataset(d *telemetry.Dataset, spec power.ComponentSpec) []*job.Job {
	jobs := make([]*job.Job, 0, len(d.Jobs))
	for i := range d.Jobs {
		jobs = append(jobs, d.Jobs[i].ToJob(spec.CPUIdle, spec.CPUMax, spec.GPUIdle, spec.GPUMax))
	}
	return jobs
}
