// Package raps implements the Resource Allocator and Power Simulator —
// the paper's core module (§III-B, Algorithm 1). A Simulation advances
// one-second ticks: arriving jobs enter the pending queue, the scheduler
// assigns nodes, per-node power follows the CPU/GPU utilization traces
// through the Eq. 3 component model with Eq. 1-2 conversion losses, and
// every 15 s the aggregated per-CDU heat drives the cooling model through
// the FMU interface. At the end of a run the §III-B5 report is produced:
// jobs completed, throughput, average power, energy, losses, CO₂
// emissions (Eq. 6), and electricity cost.
//
// A Simulation couples one or more partitions (§V's multi-partition
// generalization, Setonix-style): each partition owns its scheduler, job
// stream, and power engine, while all partitions share the simulation
// clock and feed their heat into the single cooling plant — partition
// p's CDU loops occupy the contiguous index range after partition p-1's
// in the plant coupling. Single-partition callers use New; NewMulti
// takes the explicit partition list.
//
// Utilization is piecewise-constant — it changes only when a job starts,
// ends, or crosses a 15 s trace quantum — so the default EngineEvent
// evaluates power incrementally (power.Incremental dirty-chassis deltas)
// and Run integrates the accumulators analytically across event-free tick
// gaps. A gap is only skippable when every partition is quiet: any
// partition's arrival, completion, quantum crossing, or pinned start is
// an event for the whole machine. EngineDense keeps the original dense
// sweep as the reference implementation; equivalence is pinned by
// TestEventEngineMatchesDense.
package raps

import (
	"context"
	"fmt"
	"math"
	"sort"

	"exadigit/internal/cooling"
	"exadigit/internal/fmu"
	"exadigit/internal/job"
	"exadigit/internal/power"
	"exadigit/internal/sched"
	"exadigit/internal/telemetry"
	"exadigit/internal/units"
)

// Engine selects the power-evaluation strategy.
type Engine int

const (
	// EngineEvent (the default) tracks dirty chassis through
	// power.Incremental and skips event-free tick gaps analytically.
	// Results match EngineDense bit-for-bit on the report accumulators
	// for chassis-aligned topologies (and to ≲1e-12 otherwise).
	EngineEvent Engine = iota
	// EngineDense re-evaluates every node every tick through
	// Model.Compute — the reference implementation, kept for
	// verification and as the baseline in perf comparisons.
	EngineDense
)

// Config parameterizes a simulation run.
type Config struct {
	// Policy names the scheduling policy ("fcfs", "sjf", "easy").
	Policy string
	// TickSec is the simulation tick (Algorithm 1 uses 1 s; 15 s is a
	// faithful speed-up because utilization traces advance at 15 s
	// quanta anyway).
	TickSec float64
	// CoolingDtSec is the cooling-model coupling period (15 s, §III-B).
	CoolingDtSec float64
	// EnableCooling couples the cooling FMU (≈3× slower, §IV-3).
	EnableCooling bool
	// CoolingDesign, when set, supplies the precompiled FMU design to
	// instantiate the cooling model from — sweeps compile it once per
	// spec and share it across scenarios. nil compiles a private
	// Frontier-plant design (the pre-existing behavior).
	CoolingDesign *fmu.Design
	// Engine selects the power-evaluation strategy; the zero value is
	// the event-driven incremental engine.
	Engine Engine
	// WetBulbC supplies the outdoor wet-bulb temperature over simulation
	// time; nil means a constant 20 °C.
	WetBulbC func(tSec float64) float64
	// ElectricityUSDPerMWh prices energy for the cost report. The
	// default 91.5 $/MWh reproduces the paper's ≈$900k/yr for 1.14 MW of
	// losses.
	ElectricityUSDPerMWh float64
	// EmissionIntensity is EI in Eq. 6, lb CO₂ per MWh (852.3).
	EmissionIntensity float64
	// EmissionIntensityFn optionally supplies a time-varying EI
	// (lb CO₂/MWh) — the paper notes the grid's intensity "can vary
	// regionally and even hourly". When set it overrides
	// EmissionIntensity and enables carbon-aware what-if studies. It is
	// still sampled at every tick inside skipped gaps, so event skipping
	// does not coarsen the carbon integral.
	EmissionIntensityFn func(tSec float64) float64
	// HistoryDtSec is the sampling period of the recorded series (15 s).
	HistoryDtSec float64
	// NoHistory skips storing the recorded series in memory — the lean
	// mode for huge sweeps and streamed long replays where only the
	// report (and any OnSample sink) matters. OnSample still fires per
	// sample; History() stays empty and ExportTelemetry carries no
	// series.
	NoHistory bool
	// RecordCDUHeat stores the per-CDU heat vector in each history
	// sample (needed by the Fig. 7 cooling-validation experiment). In a
	// multi-partition run the vector spans all partitions' CDUs in
	// partition order.
	RecordCDUHeat bool
	// OnSample, when set, is invoked synchronously for every recorded
	// history sample as it is taken — the hook streaming telemetry sinks
	// attach to so samples leave the process incrementally instead of
	// being materialized by ExportTelemetry after the run. The Sample is
	// passed by value; its CDUHeatW slice (if recorded) must not be
	// retained.
	OnSample func(Sample)
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		Policy:               "fcfs",
		TickSec:              1,
		CoolingDtSec:         15,
		EnableCooling:        false,
		ElectricityUSDPerMWh: 91.5,
		EmissionIntensity:    852.3,
		HistoryDtSec:         15,
	}
}

// Partition couples one partition's power model and job stream into a
// simulation — the unit of §V's multi-partition generalization. The
// Model must not be mutated after NewMulti (the event engine caches its
// parameters); Jobs may arrive in any order.
type Partition struct {
	// Name labels the partition in reports and telemetry ("cpu",
	// "gpu", ...); empty names are allowed for single-partition runs.
	Name string
	// Model is the partition's power model; its topology sizes the
	// partition's scheduler and its CDU count claims the next contiguous
	// range of the shared plant's loops.
	Model *power.Model
	// Jobs is the partition's workload.
	Jobs []*job.Job
}

// Sample is one entry of the recorded history (Fig. 9's plotted series).
type Sample struct {
	TimeSec       float64
	PowerW        float64 // predicted instantaneous system power
	LossW         float64 // rectification + conversion losses
	Utilization   float64 // active nodes / total nodes
	EtaSystem     float64 // Eq. 1 conversion efficiency
	EtaCooling    float64 // H / P_system (§IV-2)
	PUE           float64 // 0 when cooling disabled
	HTWReturnC    float64 // primary return temperature (Fig. 8); 0 if disabled
	HTWSupplyC    float64 // primary supply temperature; 0 if disabled
	SecSupplyMaxC float64 // hottest CDU secondary supply; 0 if disabled
	JobsRunning   int
	JobsPending   int
	// PartPowerW is the per-partition input power, indexed like the
	// simulation's partitions; nil on single-partition runs (whose
	// telemetry predates the partition dimension and stays bit-stable).
	PartPowerW []float64
	// CDUHeatW is the per-CDU heat load fed to the cooling model (all
	// partitions, in partition order); only populated when
	// Config.RecordCDUHeat is set.
	CDUHeatW []float64
}

// PartitionReport is one partition's share of a multi-partition run.
type PartitionReport struct {
	Name           string  `json:"name"`
	JobsCompleted  int     `json:"jobs_completed"`
	AvgPowerMW     float64 `json:"avg_power_mw"`
	MaxPowerMW     float64 `json:"max_power_mw"`
	EnergyMWh      float64 `json:"energy_mwh"`
	AvgUtilization float64 `json:"avg_utilization"`
}

// Report is the §III-B5 end-of-run summary.
type Report struct {
	JobsCompleted   int
	ThroughputPerHr float64
	AvgPowerMW      float64
	MaxPowerMW      float64
	MinPowerMW      float64
	EnergyMWh       float64
	AvgLossMW       float64
	MaxLossMW       float64
	LossPercent     float64 // average loss / average power
	EtaSystem       float64 // energy-weighted Eq. 1 efficiency
	CO2Tons         float64 // Eq. 6
	CostUSD         float64
	AvgUtilization  float64
	AvgPUE          float64 // 0 when cooling disabled
	SimSeconds      float64
	// Workload statistics for Table IV.
	AvgArrivalSec  float64
	AvgNodesPerJob float64
	AvgRuntimeMin  float64
	// Partitions breaks the run down per partition; nil on
	// single-partition runs (keeping their report JSON unchanged).
	Partitions []PartitionReport `json:"Partitions,omitempty"`
}

// runState caches the event-engine view of one running job: its current
// trace quantum, the per-node power at that quantum, and the node
// allocation (retained past Reap, which nils the job's own slice).
type runState struct {
	j      *job.Job
	nodes  []int
	idx    int // current trace-quantum index
	cu, gu float64
	nodeP  float64 // Eq. 3 per-node power at (cu, gu)
	frozen bool    // utilization can no longer change
	// constFrom is the first index of the traces' constant suffix
	// (computed once at job start): once idx reaches it the remaining
	// samples are all equal, so the job is frozen early — FlatTrace jobs
	// and replay plateaus stop forcing per-quantum events and tick-gap
	// skipping stays enabled for much larger gaps.
	constFrom int
}

// freezeAt reports whether the job's utilization is pinned from trace
// index idx onward — either the trace is exhausted or idx has entered
// the constant suffix.
func (rs *runState) freezeAt(idx int) bool {
	return idx >= rs.constFrom || rs.j.TraceFrozenAt(idx)
}

// partSim is the per-partition simulation state: scheduler, job stream,
// power engine, and the partition's slice of the shared plant coupling.
type partSim struct {
	name  string
	model *power.Model
	sch   *sched.Scheduler

	pending []*job.Job // future arrivals, sorted by submit time
	nextArr int

	// Dense-engine state: per-node utilization arrays rebuilt each tick.
	nodeCPU []float64
	nodeGPU []float64

	// Event-engine state.
	inc       *power.Incremental
	runStates map[int]*runState

	sp        *power.SystemPower
	completed []*job.Job

	// cduOff is the partition's first CDU index in the shared plant
	// coupling (partitions occupy contiguous loop ranges in order).
	cduOff int

	jobEnergyJ map[int]float64

	// Per-partition report accumulators (the aggregate accumulators on
	// Simulation remain the authoritative, bit-stable report inputs).
	energyJ   float64
	utilSum   float64
	maxPowerW float64
}

// util returns the partition's node utilization.
func (pt *partSim) util() float64 {
	return float64(pt.sch.Pool.InUse()) / float64(pt.sch.Pool.Total())
}

// Simulation is one RAPS run in progress.
type Simulation struct {
	cfg    Config
	parts  []*partSim
	fmuGet []fmu.ValueRef

	cool     *fmu.Instance
	heatRefs []fmu.ValueRef
	wbRef    fmu.ValueRef
	itRef    fmu.ValueRef
	// lastCoolT is the sim time of the last cooling DoStep; coasting
	// across quiet boundaries leaves it behind s.now until the plant is
	// stepped across the whole gap at once. coolCoastS is the plant's
	// coast window (0 for the fixed-step solver: every boundary steps).
	lastCoolT  float64
	coolCoastS float64
	// Preallocated cooling-coupling scratch (refs are constant).
	coolRefs []fmu.ValueRef
	coolVals []float64
	fmuOut   []float64

	now     float64
	history []Sample

	// totalCDUs is the summed CDU count across partitions — the width of
	// the shared plant coupling.
	totalCDUs int

	// Cached per-CDU heat (all partitions, partition order) derived from
	// the partitions' power state; invalidated whenever power changes so
	// history sampling and cooling coupling never recompute (or
	// reallocate) it redundantly.
	heatBuf   []float64
	heatSum   float64
	heatValid bool

	// accumulators
	energyJ      float64
	lossJ        float64
	nodeOutJ     float64
	convInJ      float64
	utilSum      float64
	pueSum       float64
	pueCount     int
	ticks        int
	quietTicks   int
	maxPowerW    float64
	minPowerW    float64
	maxLossW     float64
	lastHistoryT float64
	// weightedEIJ integrates P·EI·dt for time-varying-EI carbon
	// accounting (J·lb/MWh).
	weightedEIJ float64
}

// New builds a single-partition simulation over the given power model —
// the Frontier-shaped entry point. jobs may arrive in any order; they
// are sorted by submit time internally. The model must not be mutated
// after New — the event engine caches its parameters.
func New(cfg Config, model *power.Model, jobs []*job.Job) (*Simulation, error) {
	return NewMulti(cfg, []Partition{{Model: model, Jobs: jobs}})
}

// NewMulti builds a simulation over one or more partitions sharing the
// simulation clock and the cooling plant. Partition p's CDU loops couple
// to the plant's loops starting where partition p-1's end, so the plant
// must expose at least the summed CDU count.
func NewMulti(cfg Config, partitions []Partition) (*Simulation, error) {
	if cfg.TickSec <= 0 {
		return nil, fmt.Errorf("raps: TickSec must be positive")
	}
	if cfg.Engine != EngineEvent && cfg.Engine != EngineDense {
		return nil, fmt.Errorf("raps: unknown engine %d", cfg.Engine)
	}
	if len(partitions) == 0 {
		return nil, fmt.Errorf("raps: at least one partition required")
	}
	if cfg.CoolingDtSec <= 0 {
		cfg.CoolingDtSec = 15
	}
	if cfg.HistoryDtSec <= 0 {
		cfg.HistoryDtSec = 15
	}
	if cfg.ElectricityUSDPerMWh == 0 {
		cfg.ElectricityUSDPerMWh = 91.5
	}
	if cfg.EmissionIntensity == 0 {
		cfg.EmissionIntensity = 852.3
	}
	policy, err := sched.PolicyByName(cfg.Policy)
	if err != nil {
		return nil, err
	}
	s := &Simulation{
		cfg:       cfg,
		minPowerW: math.Inf(1),
	}
	for i := range partitions {
		p := &partitions[i]
		if p.Model == nil {
			return nil, fmt.Errorf("raps: partition %d has no power model", i)
		}
		if err := p.Model.Topo.Validate(); err != nil {
			return nil, err
		}
		pt := &partSim{
			name:   p.Name,
			model:  p.Model,
			sch:    sched.NewScheduler(p.Model.Topo.NodesTotal, policy),
			cduOff: s.totalCDUs,
		}
		if cfg.Engine == EngineDense {
			pt.nodeCPU = make([]float64, p.Model.Topo.NodesTotal)
			pt.nodeGPU = make([]float64, p.Model.Topo.NodesTotal)
			pt.sp = &power.SystemPower{}
		} else {
			pt.inc = p.Model.NewIncremental()
			pt.sp = pt.inc.Power()
			pt.runStates = make(map[int]*runState)
		}
		pt.pending = append(pt.pending, p.Jobs...)
		sortJobsBySubmit(pt.pending)
		s.totalCDUs += p.Model.Topo.NumCDUs
		s.parts = append(s.parts, pt)
	}

	if cfg.EnableCooling {
		design := cfg.CoolingDesign
		if design == nil {
			design, err = fmu.NewDesign(cooling.Frontier())
			if err != nil {
				return nil, err
			}
		}
		inst, err := design.Instantiate()
		if err != nil {
			return nil, err
		}
		if err := inst.SetupExperiment(0); err != nil {
			return nil, err
		}
		d := inst.Description()
		for i := 1; i <= s.totalCDUs; i++ {
			r, err := d.RefByName(fmt.Sprintf("cdu[%d].heat_w", i))
			if err != nil {
				return nil, err
			}
			s.heatRefs = append(s.heatRefs, r)
		}
		if s.wbRef, err = d.RefByName("wetbulb_temp_c"); err != nil {
			return nil, err
		}
		if s.itRef, err = d.RefByName("it_power_w"); err != nil {
			return nil, err
		}
		ret, err := d.RefByName("facility.return_temp_c")
		if err != nil {
			return nil, err
		}
		sup, err := d.RefByName("facility.supply_temp_c")
		if err != nil {
			return nil, err
		}
		s.fmuGet = []fmu.ValueRef{ret, sup}
		for i := 1; i <= s.totalCDUs; i++ {
			r, err := d.RefByName(fmt.Sprintf("cdu[%d].secondary_supply_temp_c", i))
			if err != nil {
				return nil, err
			}
			s.fmuGet = append(s.fmuGet, r)
		}
		s.coolRefs = append(append([]fmu.ValueRef{}, s.heatRefs...), s.wbRef, s.itRef)
		s.coolVals = make([]float64, len(s.coolRefs))
		s.fmuOut = make([]float64, len(s.fmuGet))
		s.cool = inst
		s.coolCoastS = inst.Plant().CoastWindowS()
	}
	return s, nil
}

func sortJobsBySubmit(jobs []*job.Job) {
	// Stable sort by (submit, id); synthetic multi-day workloads reach
	// thousands of jobs, so the old insertion sort's O(n²) worst case
	// mattered.
	sort.SliceStable(jobs, func(i, k int) bool { return less(jobs[i], jobs[k]) })
}

func less(a, b *job.Job) bool {
	if a.SubmitTime != b.SubmitTime {
		return a.SubmitTime < b.SubmitTime
	}
	return a.ID < b.ID
}

// Now returns the current simulation time in seconds.
func (s *Simulation) Now() float64 { return s.now }

// QuietTicks returns how many ticks were integrated analytically inside
// event-free gaps rather than simulated — the event engine's skipping
// effectiveness (observability for the constant-trace freeze and gap
// analysis; 0 under EngineDense).
func (s *Simulation) QuietTicks() int { return s.quietTicks }

// History returns the recorded series.
func (s *Simulation) History() []Sample { return s.history }

// Partitions returns how many partitions the simulation couples.
func (s *Simulation) Partitions() int { return len(s.parts) }

// PartitionNames returns the partition labels in coupling order.
func (s *Simulation) PartitionNames() []string {
	names := make([]string, len(s.parts))
	for i, pt := range s.parts {
		names[i] = pt.name
	}
	return names
}

// PartitionPowerW returns the current per-partition input power, indexed
// like the partitions.
func (s *Simulation) PartitionPowerW() []float64 {
	out := make([]float64, len(s.parts))
	for i, pt := range s.parts {
		out[i] = pt.sp.TotalW
	}
	return out
}

// PerRackPowerW returns the most recent per-rack input power (the
// §III-A heat-map channel), concatenated across partitions in partition
// order. On a single partition the slice is live simulation state
// (callers must copy it if they retain it); the multi-partition
// concatenation is freshly allocated per call, so concurrent readers of
// a settled run stay race-free.
func (s *Simulation) PerRackPowerW() []float64 {
	if len(s.parts) == 1 {
		return s.parts[0].sp.PerRackInputW
	}
	var out []float64
	for _, pt := range s.parts {
		out = append(out, pt.sp.PerRackInputW...)
	}
	return out
}

// CoolingPlant exposes the coupled plant (nil when cooling is disabled).
func (s *Simulation) CoolingPlant() *cooling.Plant {
	if s.cool == nil {
		return nil
	}
	return s.cool.Plant()
}

// CoolingSolverStats returns the coupled plant's thermal-solver
// accounting — the quiescent-fraction observability for the adaptive
// cooling fast path (zero when cooling is disabled).
func (s *Simulation) CoolingSolverStats() cooling.SolverStats {
	if s.cool == nil {
		return cooling.SolverStats{}
	}
	return s.cool.SolverStats()
}

// Run advances the simulation for the given horizon (Algorithm 1's
// RUNSIMULATION) and returns the end-of-run report. Under EngineEvent,
// tick gaps containing no event — no arrival, completion, trace-quantum
// crossing, pinned replay start, or cooling boundary on any partition —
// are integrated analytically in one pass instead of being simulated
// tick by tick.
func (s *Simulation) Run(horizonSec float64) (*Report, error) {
	return s.RunContext(context.Background(), horizonSec)
}

// RunContext is Run under a context: cancellation is observed at every
// tick boundary, so an abort stops a running day within one tick (one
// analytic gap at most under EngineEvent) instead of letting the horizon
// play out. The context error is returned; partial accumulators remain
// inspectable through ReportNow and Now.
func (s *Simulation) RunContext(ctx context.Context, horizonSec float64) (*Report, error) {
	done := ctx.Done()
	steps := int(math.Round(horizonSec / s.cfg.TickSec))
	for i := 0; i < steps; {
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		if k := s.skippableTicks(steps - i); k > 0 {
			s.advanceQuiet(k)
			i += k
			continue
		}
		if err := s.Tick(); err != nil {
			return nil, err
		}
		i++
	}
	return s.ReportNow(), nil
}

// Tick advances one simulation tick (Algorithm 1's TICK) across every
// partition.
func (s *Simulation) Tick() error {
	dt := s.cfg.TickSec
	s.now += dt

	for _, pt := range s.parts {
		// Release completed jobs (lines 15-20); their nodes read as idle
		// when utilizations are refreshed below.
		done := pt.sch.Reap(s.now)
		pt.completed = append(pt.completed, done...)

		// Admit newly arrived jobs (line 8).
		for pt.nextArr < len(pt.pending) && pt.pending[pt.nextArr].SubmitTime <= s.now {
			pt.sch.Submit(pt.pending[pt.nextArr])
			pt.nextArr++
		}
		// Schedule (line 9).
		started := pt.sch.Schedule(s.now)

		// Recalculate power and apply losses (lines 21-22).
		if pt.inc != nil {
			s.applyDeltas(pt, done, started)
		} else {
			pt.denseRefresh(s.now)
			pt.model.Compute(pt.nodeCPU, pt.nodeGPU, pt.sp)
			s.heatValid = false
		}
	}
	s.accumulate(dt)
	for _, pt := range s.parts {
		s.trackJobEnergy(pt, dt)
	}

	// Couple the cooling model every 15 s (lines 23-26).
	if s.cool != nil && s.onBoundary(s.cfg.CoolingDtSec) {
		if err := s.stepCooling(); err != nil {
			return err
		}
	}
	if s.now-s.lastHistoryT >= s.cfg.HistoryDtSec-1e-9 {
		s.recordSample()
		s.lastHistoryT = s.now
	}
	s.ticks++
	return nil
}

// denseRefresh rebuilds the partition's per-node utilization arrays from
// the running jobs' traces — the reference path's full sweep.
func (pt *partSim) denseRefresh(now float64) {
	for i := range pt.nodeCPU {
		pt.nodeCPU[i] = 0
		pt.nodeGPU[i] = 0
	}
	for _, r := range pt.sch.Running() {
		cu, gu := r.UtilAt(now - r.StartTime)
		for _, n := range r.Nodes {
			pt.nodeCPU[n] = cu
			pt.nodeGPU[n] = gu
		}
	}
}

// applyDeltas feeds one partition's utilization changes — completions,
// starts, and trace-quantum crossings — into its incremental engine.
func (s *Simulation) applyDeltas(pt *partSim, done, started []*job.Job) {
	for _, j := range done {
		if rs, ok := pt.runStates[j.ID]; ok {
			pt.inc.SetNodesIdle(rs.nodes)
			delete(pt.runStates, j.ID)
		}
	}
	for _, j := range started {
		t := s.now - j.StartTime
		idx := int(t / job.TraceQuantaSec)
		cu, gu := j.UtilAt(t)
		rs := &runState{
			j: j, nodes: j.Nodes, idx: idx, cu: cu, gu: gu,
			nodeP:     pt.model.Spec.NodePower(cu, gu),
			constFrom: j.TraceConstSuffix(),
		}
		rs.frozen = rs.freezeAt(idx)
		pt.inc.SetNodes(rs.nodes, cu, gu)
		pt.runStates[j.ID] = rs
	}
	for _, j := range pt.sch.Running() {
		rs, ok := pt.runStates[j.ID]
		if !ok || rs.frozen {
			continue
		}
		t := s.now - j.StartTime
		idx := int(t / job.TraceQuantaSec)
		if idx == rs.idx {
			continue
		}
		rs.idx = idx
		rs.frozen = rs.freezeAt(idx)
		cu, gu := j.UtilAt(t)
		if cu != rs.cu || gu != rs.gu {
			rs.cu, rs.gu = cu, gu
			rs.nodeP = pt.model.Spec.NodePower(cu, gu)
			pt.inc.SetNodes(rs.nodes, cu, gu)
		}
	}
	if pt.inc.Dirty() {
		s.heatValid = false
	}
	pt.inc.ComputeDelta()
}

// skippableTicks returns how many upcoming ticks are guaranteed
// event-free — no arrival, completion, trace-quantum crossing, pinned
// replay start, or cooling boundary falls on them, on any partition —
// and may therefore be integrated analytically. Returns 0 under
// EngineDense (the reference path simulates every tick) and 0 when the
// next tick may carry an event. Scheduler state cannot change between
// events: queued jobs only start when a completion or arrival frees
// resources, and EASY-backfill eligibility (now + walltime ≤ shadow)
// only shrinks as time advances.
func (s *Simulation) skippableTicks(maxTicks int) int {
	if s.cfg.Engine == EngineDense || maxTicks <= 0 {
		return 0
	}
	dt := s.cfg.TickSec
	next := math.Inf(1)
	consider := func(t float64) {
		if t < next {
			next = t
		}
	}
	for _, pt := range s.parts {
		if pt.nextArr < len(pt.pending) {
			consider(pt.pending[pt.nextArr].SubmitTime)
		}
		for _, rs := range pt.runStates {
			consider(rs.j.StartTime + rs.j.WallTimeSec)
			if !rs.frozen {
				consider(rs.j.StartTime + float64(rs.idx+1)*job.TraceQuantaSec)
			}
		}
		if t := pt.sch.NextPinnedStart(s.now); t >= 0 {
			consider(t)
		}
	}
	if s.cool != nil {
		period := s.cfg.CoolingDtSec
		next := (math.Floor((s.now+1e-6)/period) + 1) * period
		if s.coolCoastS > 0 {
			if limit := s.lastCoolT + s.coolCoastS; limit > next && s.cool.Plant().CanCoast(s.cduHeat()) {
				// The plant is settled and would hold at the upcoming
				// boundaries under the gap's (constant) heat: coast — the
				// next cooling event is the end of the coast window,
				// snapped onto the boundary grid. stepCooling integrates
				// the plant across the whole deferred gap at once.
				next = math.Floor(limit/period) * period
			}
		}
		consider(next)
	}
	if math.IsInf(next, 1) {
		return maxTicks
	}
	// The event triggers on the first tick whose time reaches `next`;
	// everything strictly before it is skippable. The epsilon keeps
	// exact-multiple gaps robust against float noise (conservative: at
	// worst one extra full Tick runs).
	k := int(math.Ceil((next-s.now)/dt-1e-9)) - 1
	if k < 0 {
		k = 0
	}
	if k > maxTicks {
		k = maxTicks
	}
	return k
}

// advanceQuiet integrates k event-free ticks. Power, utilization, and
// job state are constant across the gap on every partition, so the
// per-tick model sweep and scheduler pass are elided; the accumulator
// arithmetic is kept per-tick-identical to Tick so results match the
// dense path. History samples falling inside the gap are still recorded
// at their exact times (from the cached power state), and a time-varying
// emission intensity is still sampled every tick.
func (s *Simulation) advanceQuiet(k int) {
	dt := s.cfg.TickSec
	a := s.aggregate()
	p, loss, nodeOut := a.totalW, a.lossW(), a.nodeOutW
	util := a.util()
	ei := s.cfg.EmissionIntensity
	fn := s.cfg.EmissionIntensityFn
	pue := 0.0
	if s.cool != nil {
		pue = s.cool.Plant().PUE()
	}
	for i := 0; i < k; i++ {
		s.now += dt
		e := p * dt
		s.energyJ += e
		if fn != nil {
			ei = fn(s.now)
		}
		s.weightedEIJ += e * ei
		s.lossJ += loss * dt
		s.nodeOutJ += nodeOut * dt
		s.convInJ += (nodeOut + loss) * dt
		s.utilSum += util * dt
		if s.cool != nil && pue > 0 {
			s.pueSum += pue
			s.pueCount++
		}
		if s.now-s.lastHistoryT >= s.cfg.HistoryDtSec-1e-9 {
			s.recordSample()
			s.lastHistoryT = s.now
		}
		s.ticks++
		s.quietTicks++
	}
	if p > s.maxPowerW {
		s.maxPowerW = p
	}
	if p < s.minPowerW {
		s.minPowerW = p
	}
	if loss > s.maxLossW {
		s.maxLossW = loss
	}
	gap := dt * float64(k)
	for _, pt := range s.parts {
		pt.energyJ += pt.sp.TotalW * gap
		pt.utilSum += pt.util() * gap
		if pt.sp.TotalW > pt.maxPowerW {
			pt.maxPowerW = pt.sp.TotalW
		}
		if len(pt.runStates) > 0 {
			if pt.jobEnergyJ == nil {
				pt.jobEnergyJ = make(map[int]float64)
			}
			for id, rs := range pt.runStates {
				pt.jobEnergyJ[id] += rs.nodeP * float64(rs.j.NodeCount) * gap
			}
		}
	}
}

// agg is the cross-partition power/scheduler aggregate. Every summation
// starts at zero and adds in partition order, so a single-partition
// aggregate is bit-identical to that partition's own accounting — the
// invariant the dense/event and tick/quiet-gap equivalences (and the
// single-partition telemetry goldens) rest on. All four consumers
// (accumulate, advanceQuiet, recordSample, stepCooling) share this one
// implementation so the arithmetic cannot drift between them.
type agg struct {
	totalW, rectW, sivocW, nodeOutW float64
	inUse, total                    int
	running, pending                int
}

func (s *Simulation) aggregate() agg {
	var a agg
	for _, pt := range s.parts {
		a.totalW += pt.sp.TotalW
		a.rectW += pt.sp.RectLossW
		a.sivocW += pt.sp.SivocLossW
		a.nodeOutW += pt.sp.NodeOutW
		a.inUse += pt.sch.Pool.InUse()
		a.total += pt.sch.Pool.Total()
		a.running += len(pt.sch.Running())
		a.pending += pt.sch.Pending()
	}
	return a
}

// lossW mirrors power.SystemPower.LossW over the aggregate.
func (a agg) lossW() float64 { return a.rectW + a.sivocW }

// util is the machine-wide node utilization.
func (a agg) util() float64 { return float64(a.inUse) / float64(a.total) }

// etaSystem mirrors power.SystemPower.Efficiency (Eq. 1) over the
// aggregate conversion chain, in the same summation order.
func (a agg) etaSystem() float64 {
	in := a.nodeOutW + a.rectW + a.sivocW
	if in <= 0 {
		return 0
	}
	return a.nodeOutW / in
}

// onBoundary reports whether the current time is a multiple of period.
func (s *Simulation) onBoundary(period float64) bool {
	m := math.Mod(s.now+1e-9, period)
	return m < s.cfg.TickSec-1e-9 || period-m < 1e-6
}

// cduHeat returns the cached per-CDU heat vector — every partition's
// CDUs concatenated in partition order — for the current power state,
// recomputing it only after the power changed.
func (s *Simulation) cduHeat() []float64 {
	if !s.heatValid {
		if s.heatBuf == nil {
			s.heatBuf = make([]float64, s.totalCDUs)
		}
		for _, pt := range s.parts {
			n := pt.model.Topo.NumCDUs
			seg := s.heatBuf[pt.cduOff : pt.cduOff+n : pt.cduOff+n]
			pt.model.CDUHeatInto(pt.sp, seg)
		}
		s.heatSum = 0
		for _, h := range s.heatBuf {
			s.heatSum += h
		}
		s.heatValid = true
	}
	return s.heatBuf
}

// stepCooling advances the plant to s.now. The common case steps one
// coupling interval exactly (bit-identical to the pre-coasting path).
// After a coasted gap the deferred stretch is fast-forwarded first under
// the inputs it was quiescent under — the values of the previous SetReal
// — and only the final coupling interval sees the fresh inputs, so a
// coast never back-applies a new transient over held time.
func (s *Simulation) stepCooling() error {
	period := s.cfg.CoolingDtSec
	dt := s.now - s.lastCoolT
	if dt <= 0 {
		return nil
	}
	if math.Abs(dt-period) < 1e-6 {
		dt = period
	} else if dt > period {
		if err := s.cool.DoStep(dt - period); err != nil {
			return err
		}
		dt = period
	}
	heat := s.cduHeat()
	n := copy(s.coolVals, heat)
	wb := 20.0
	if s.cfg.WetBulbC != nil {
		wb = s.cfg.WetBulbC(s.now)
	}
	s.coolVals[n] = wb
	s.coolVals[n+1] = s.aggregate().totalW
	if err := s.cool.SetReal(s.coolRefs, s.coolVals); err != nil {
		return err
	}
	if err := s.cool.DoStep(dt); err != nil {
		return err
	}
	s.lastCoolT = s.now
	return nil
}

func (s *Simulation) accumulate(dt float64) {
	a := s.aggregate()
	p, loss, nodeOut := a.totalW, a.lossW(), a.nodeOutW
	for _, pt := range s.parts {
		pt.energyJ += pt.sp.TotalW * dt
		pt.utilSum += pt.util() * dt
		if pt.sp.TotalW > pt.maxPowerW {
			pt.maxPowerW = pt.sp.TotalW
		}
	}
	s.energyJ += p * dt
	ei := s.cfg.EmissionIntensity
	if s.cfg.EmissionIntensityFn != nil {
		ei = s.cfg.EmissionIntensityFn(s.now)
	}
	s.weightedEIJ += p * dt * ei
	s.lossJ += loss * dt
	s.nodeOutJ += nodeOut * dt
	s.convInJ += (nodeOut + loss) * dt
	s.utilSum += a.util() * dt
	if p > s.maxPowerW {
		s.maxPowerW = p
	}
	if p < s.minPowerW {
		s.minPowerW = p
	}
	if loss > s.maxLossW {
		s.maxLossW = loss
	}
	if s.cool != nil {
		if pue := s.cool.Plant().PUE(); pue > 0 {
			s.pueSum += pue
			s.pueCount++
		}
	}
}

func (s *Simulation) recordSample() {
	if s.cfg.NoHistory && s.cfg.OnSample == nil {
		return // no consumer: skip building the sample entirely
	}
	a := s.aggregate()
	p := a.totalW
	smp := Sample{
		TimeSec:     s.now,
		PowerW:      p,
		LossW:       a.lossW(),
		Utilization: a.util(),
		EtaSystem:   a.etaSystem(),
		JobsRunning: a.running,
		JobsPending: a.pending,
	}
	if len(s.parts) > 1 {
		smp.PartPowerW = make([]float64, len(s.parts))
		for i, pt := range s.parts {
			smp.PartPowerW[i] = pt.sp.TotalW
		}
	}
	if p > 0 {
		s.cduHeat()
		smp.EtaCooling = s.heatSum / p
	}
	if s.cool != nil {
		smp.PUE = s.cool.Plant().PUE()
		if err := s.cool.GetReal(s.fmuGet, s.fmuOut); err == nil {
			smp.HTWReturnC = s.fmuOut[0]
			smp.HTWSupplyC = s.fmuOut[1]
			for _, v := range s.fmuOut[2:] {
				if v > smp.SecSupplyMaxC {
					smp.SecSupplyMaxC = v
				}
			}
		}
	}
	if s.cfg.RecordCDUHeat {
		smp.CDUHeatW = append([]float64(nil), s.cduHeat()...)
	}
	if !s.cfg.NoHistory {
		s.history = append(s.history, smp)
	}
	if s.cfg.OnSample != nil {
		s.cfg.OnSample(smp)
	}
}

// ReportNow summarizes the run so far (§III-B5's output statistics).
func (s *Simulation) ReportNow() *Report {
	completed := 0
	for _, pt := range s.parts {
		completed += len(pt.completed)
	}
	r := &Report{
		JobsCompleted: completed,
		SimSeconds:    s.now,
	}
	if s.now <= 0 {
		return r
	}
	hours := s.now / 3600
	r.ThroughputPerHr = float64(r.JobsCompleted) / hours
	r.AvgPowerMW = units.WToMW(s.energyJ / s.now)
	r.MaxPowerMW = units.WToMW(s.maxPowerW)
	if !math.IsInf(s.minPowerW, 1) {
		r.MinPowerMW = units.WToMW(s.minPowerW)
	}
	r.EnergyMWh = s.energyJ / 3.6e9
	r.AvgLossMW = units.WToMW(s.lossJ / s.now)
	r.MaxLossMW = units.WToMW(s.maxLossW)
	if r.AvgPowerMW > 0 {
		r.LossPercent = 100 * r.AvgLossMW / r.AvgPowerMW
	}
	if s.convInJ > 0 {
		r.EtaSystem = s.nodeOutJ / s.convInJ
	}
	// Eq. 6: Ef = EI × (1 ton / 2204.6 lb) × 1/η_system, with EI taken
	// as the energy-weighted average when a time-varying profile is set.
	if r.EtaSystem > 0 && s.energyJ > 0 {
		avgEI := s.weightedEIJ / s.energyJ
		ef := avgEI * units.LbToMetricTon / r.EtaSystem
		r.CO2Tons = r.EnergyMWh * ef
	}
	r.CostUSD = r.EnergyMWh * s.cfg.ElectricityUSDPerMWh
	r.AvgUtilization = s.utilSum / s.now
	if s.pueCount > 0 {
		r.AvgPUE = s.pueSum / float64(s.pueCount)
	}
	// Workload statistics. The arrival span uses the single partition's
	// first/last completed job (completion order) exactly as before the
	// partition refactor — bit-stable — while multi-partition runs take
	// the global min/max submit time: partitions complete independently,
	// so concatenation-order endpoints would compare unrelated streams
	// (a later partition's t=0 job would zero the statistic).
	var nodes, runtime float64
	first, last := math.Inf(1), math.Inf(-1)
	seen := 0
	for _, pt := range s.parts {
		for _, j := range pt.completed {
			if j.SubmitTime < first {
				first = j.SubmitTime
			}
			if j.SubmitTime > last {
				last = j.SubmitTime
			}
			nodes += float64(j.NodeCount)
			runtime += j.WallTimeSec
			seen++
		}
	}
	if len(s.parts) == 1 && seen > 0 {
		first = s.parts[0].completed[0].SubmitTime
		last = s.parts[0].completed[seen-1].SubmitTime
	}
	if seen > 0 {
		r.AvgNodesPerJob = nodes / float64(seen)
		r.AvgRuntimeMin = runtime / float64(seen) / 60
		if seen > 1 && last > first {
			r.AvgArrivalSec = (last - first) / float64(seen-1)
		}
	}
	if len(s.parts) > 1 {
		r.Partitions = make([]PartitionReport, len(s.parts))
		for i, pt := range s.parts {
			r.Partitions[i] = PartitionReport{
				Name:           pt.name,
				JobsCompleted:  len(pt.completed),
				AvgPowerMW:     units.WToMW(pt.energyJ / s.now),
				MaxPowerMW:     units.WToMW(pt.maxPowerW),
				EnergyMWh:      pt.energyJ / 3.6e9,
				AvgUtilization: pt.utilSum / s.now,
			}
		}
	}
	return r
}

// ForEachJobRecord visits every job that has started — all partitions'
// completed jobs first (partition order), then still-running jobs — as a
// Table II telemetry record, each converted with its own partition's
// component power ranges. This is the shared iteration behind
// ExportTelemetry and the streaming NDJSON sink, so both emit identical
// records in identical order.
func (s *Simulation) ForEachJobRecord(fn func(telemetry.JobRecord)) {
	for _, pt := range s.parts {
		spec := pt.model.Spec
		for _, j := range pt.completed {
			fn(telemetry.FromJob(j, spec.CPUIdle, spec.CPUMax, spec.GPUIdle, spec.GPUMax))
		}
	}
	for _, pt := range s.parts {
		spec := pt.model.Spec
		for _, j := range pt.sch.Running() {
			fn(telemetry.FromJob(j, spec.CPUIdle, spec.CPUMax, spec.GPUIdle, spec.GPUMax))
		}
	}
}

// SeriesPointAt converts one recorded sample into the system-level
// telemetry series schema, evaluating the run's wet-bulb source at the
// sample time.
func (s *Simulation) SeriesPointAt(smp Sample) telemetry.SeriesPoint {
	wb := 20.0
	if s.cfg.WetBulbC != nil {
		wb = s.cfg.WetBulbC(smp.TimeSec)
	}
	return telemetry.SeriesPoint{
		TimeSec: smp.TimeSec, MeasuredPowerW: smp.PowerW, WetBulbC: wb,
		PartPowerW: smp.PartPowerW,
	}
}

// ExportTelemetry converts the run so far into a Table II-style dataset:
// every job that has started (completed or still running) with its power
// traces, plus the predicted power series as the "measured" channel (our
// substitute for production telemetry).
func (s *Simulation) ExportTelemetry(epoch string) *telemetry.Dataset {
	d := &telemetry.Dataset{Epoch: epoch, SeriesDtSec: s.cfg.HistoryDtSec}
	s.ForEachJobRecord(func(r telemetry.JobRecord) { d.Jobs = append(d.Jobs, r) })
	for _, smp := range s.history {
		d.Series = append(d.Series, s.SeriesPointAt(smp))
	}
	return d
}

// JobsFromDataset converts telemetry job records into replay-pinned jobs
// using the model's component power ranges (telemetry carries power, the
// simulator needs utilization — footnote 1).
func JobsFromDataset(d *telemetry.Dataset, spec power.ComponentSpec) []*job.Job {
	jobs := make([]*job.Job, 0, len(d.Jobs))
	for i := range d.Jobs {
		jobs = append(jobs, d.Jobs[i].ToJob(spec.CPUIdle, spec.CPUMax, spec.GPUIdle, spec.GPUMax))
	}
	return jobs
}
