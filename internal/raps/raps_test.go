package raps

import (
	"math"
	"testing"

	"exadigit/internal/job"
	"exadigit/internal/power"
)

func frontierModel() *power.Model { return power.NewFrontierModel() }

func TestIdleSystemMatchesTableIII(t *testing.T) {
	sim, err := New(DefaultConfig(), frontierModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.AvgPowerMW-7.24)/7.24 > 0.01 {
		t.Errorf("idle power = %v MW, want ≈7.24 (Table III)", rep.AvgPowerMW)
	}
	if rep.JobsCompleted != 0 || rep.AvgUtilization != 0 {
		t.Errorf("idle run completed %d jobs, util %v", rep.JobsCompleted, rep.AvgUtilization)
	}
}

func TestHPLRunMatchesTableIII(t *testing.T) {
	// One HPL job across 9216 nodes; measure core-phase power.
	hpl := job.NewHPL(1, 0, 7200)
	cfg := DefaultConfig()
	cfg.TickSec = 15
	sim, err := New(cfg, frontierModel(), []*job.Job{hpl})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(3600); err != nil {
		t.Fatal(err)
	}
	// Mid-run sample is in the HPL core phase.
	hist := sim.History()
	var core float64
	for _, smp := range hist {
		if smp.TimeSec > 1800 && smp.TimeSec < 1900 {
			core = smp.PowerW / 1e6
		}
	}
	if math.Abs(core-22.3)/22.3 > 0.01 {
		t.Errorf("HPL core power = %v MW, want ≈22.3 (Table III)", core)
	}
}

func TestPeakPowerMatchesTableIII(t *testing.T) {
	peak := job.New(1, "peak", 9472, 3600, 0)
	if err := peak.ApplyFingerprint(job.FPMax); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.TickSec = 15
	sim, err := New(cfg, frontierModel(), []*job.Job{peak})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(1800)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MaxPowerMW-28.2)/28.2 > 0.01 {
		t.Errorf("peak power = %v MW, want ≈28.2 (Table III)", rep.MaxPowerMW)
	}
}

func TestJobLifecycleAndThroughput(t *testing.T) {
	var jobs []*job.Job
	for i := 0; i < 10; i++ {
		j := job.New(i+1, "j", 100, 600, float64(i*60))
		j.CPUTrace = job.FlatTrace(0.5, 600)
		j.GPUTrace = job.FlatTrace(0.5, 600)
		jobs = append(jobs, j)
	}
	cfg := DefaultConfig()
	cfg.TickSec = 5
	sim, err := New(cfg, frontierModel(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(2 * 3600)
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsCompleted != 10 {
		t.Errorf("completed %d jobs, want 10", rep.JobsCompleted)
	}
	if rep.ThroughputPerHr != 5 {
		t.Errorf("throughput = %v/hr, want 5", rep.ThroughputPerHr)
	}
	if rep.AvgNodesPerJob != 100 {
		t.Errorf("avg nodes = %v", rep.AvgNodesPerJob)
	}
	if math.Abs(rep.AvgRuntimeMin-10) > 0.1 {
		t.Errorf("avg runtime = %v min, want 10", rep.AvgRuntimeMin)
	}
	if math.Abs(rep.AvgArrivalSec-60) > 1 {
		t.Errorf("avg arrival = %v s, want 60", rep.AvgArrivalSec)
	}
}

func TestEnergyAccounting(t *testing.T) {
	sim, err := New(DefaultConfig(), frontierModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(3600)
	if err != nil {
		t.Fatal(err)
	}
	// One hour at constant power: energy = power × 1 h.
	if math.Abs(rep.EnergyMWh-rep.AvgPowerMW) > 1e-6 {
		t.Errorf("energy %v MWh != avg power %v MW over 1 h", rep.EnergyMWh, rep.AvgPowerMW)
	}
	// Cost: energy × $/MWh.
	if math.Abs(rep.CostUSD-rep.EnergyMWh*91.5) > 1e-6 {
		t.Errorf("cost = %v", rep.CostUSD)
	}
	// CO₂ per Eq. 6 with EI=852.3 lb/MWh.
	wantCO2 := rep.EnergyMWh * 852.3 / 2204.6 / rep.EtaSystem
	if math.Abs(rep.CO2Tons-wantCO2) > 1e-9 {
		t.Errorf("CO2 = %v, want %v", rep.CO2Tons, wantCO2)
	}
}

func TestEtaSystemInPublishedRange(t *testing.T) {
	// A busy system should land near the paper's η_system ≈ 93.3 %.
	j := job.New(1, "busy", 7000, 3600, 0)
	j.CPUTrace = job.FlatTrace(0.9, 3600)
	j.GPUTrace = job.FlatTrace(0.85, 3600)
	cfg := DefaultConfig()
	cfg.TickSec = 15
	sim, err := New(cfg, frontierModel(), []*job.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(1800)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EtaSystem < 0.92 || rep.EtaSystem > 0.95 {
		t.Errorf("η_system = %v", rep.EtaSystem)
	}
	if rep.LossPercent < 5 || rep.LossPercent > 8.5 {
		t.Errorf("loss %% = %v, want ≈6.7 (Table IV)", rep.LossPercent)
	}
}

func TestHistorySampling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TickSec = 1
	cfg.HistoryDtSec = 15
	sim, err := New(cfg, frontierModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(150); err != nil {
		t.Fatal(err)
	}
	hist := sim.History()
	if len(hist) != 10 {
		t.Fatalf("history samples = %d, want 10 over 150 s at 15 s", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if math.Abs(hist[i].TimeSec-hist[i-1].TimeSec-15) > 1e-9 {
			t.Errorf("sample gap %v", hist[i].TimeSec-hist[i-1].TimeSec)
		}
	}
	// Cooling efficiency ≈ 0.945 minus pump overhead share.
	if hist[0].EtaCooling < 0.90 || hist[0].EtaCooling > 0.95 {
		t.Errorf("η_cooling = %v", hist[0].EtaCooling)
	}
}

func TestCooledRunProducesPUE(t *testing.T) {
	j := job.New(1, "load", 8000, 1200, 0)
	j.CPUTrace = job.FlatTrace(0.8, 1200)
	j.GPUTrace = job.FlatTrace(0.8, 1200)
	cfg := DefaultConfig()
	cfg.TickSec = 15
	cfg.EnableCooling = true
	sim, err := New(cfg, frontierModel(), []*job.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(1800)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AvgPUE < 1.01 || rep.AvgPUE > 1.12 {
		t.Errorf("PUE = %v, want ≈1.03-1.06", rep.AvgPUE)
	}
	if sim.CoolingPlant() == nil {
		t.Fatal("cooled run should expose the plant")
	}
	// Primary return temperature recorded in history (Fig. 8 series).
	hist := sim.History()
	last := hist[len(hist)-1]
	if last.HTWReturnC < 25 || last.HTWReturnC > 55 {
		t.Errorf("HTW return = %v °C", last.HTWReturnC)
	}
}

func TestUncooledRunHasNoPlant(t *testing.T) {
	sim, err := New(DefaultConfig(), frontierModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sim.CoolingPlant() != nil {
		t.Error("uncooled run should have no plant")
	}
}

func TestTelemetryExportAndReplayRoundTrip(t *testing.T) {
	// Run synthetic jobs, export telemetry, replay it, compare power.
	gen := job.NewGenerator(job.GeneratorConfig{
		ArrivalMeanSec: 300, NodesMean: 500, NodesStd: 400, MaxNodes: 9472,
		WallMeanSec: 900, WallStdSec: 200, WallMinSec: 300, WallMaxSec: 1800,
		CPUUtilMean: 0.5, CPUUtilStd: 0.2, GPUUtilMean: 0.7, GPUUtilStd: 0.2,
		UtilJitter: 0.02, SingleNodeFraction: 0.3, Seed: 11,
	})
	jobs := gen.GenerateHorizon(2 * 3600)
	cfg := DefaultConfig()
	cfg.TickSec = 15
	sim, err := New(cfg, frontierModel(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := sim.Run(4 * 3600)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.JobsCompleted < 10 {
		t.Fatalf("only %d jobs completed", rep1.JobsCompleted)
	}
	ds := sim.ExportTelemetry("test-day")
	if len(ds.Jobs) != rep1.JobsCompleted || len(ds.Series) == 0 {
		t.Fatalf("export: %d jobs, %d samples", len(ds.Jobs), len(ds.Series))
	}

	// Replay: pinned starts reproduce the same power trajectory.
	replayJobs := JobsFromDataset(ds, frontierModel().Spec)
	sim2, err := New(cfg, frontierModel(), replayJobs)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := sim2.Run(4 * 3600)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.JobsCompleted != rep1.JobsCompleted {
		t.Errorf("replay completed %d vs original %d", rep2.JobsCompleted, rep1.JobsCompleted)
	}
	if math.Abs(rep2.AvgPowerMW-rep1.AvgPowerMW)/rep1.AvgPowerMW > 0.01 {
		t.Errorf("replay power %v vs original %v MW", rep2.AvgPowerMW, rep1.AvgPowerMW)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{TickSec: 0}, frontierModel(), nil); err == nil {
		t.Error("zero tick should fail")
	}
	if _, err := New(Config{TickSec: 1, Policy: "bogus"}, frontierModel(), nil); err == nil {
		t.Error("unknown policy should fail")
	}
	bad := frontierModel()
	bad.Topo.NumCDUs = 0
	if _, err := New(DefaultConfig(), bad, nil); err == nil {
		t.Error("invalid topology should fail")
	}
}

func TestReportBeforeRun(t *testing.T) {
	sim, err := New(DefaultConfig(), frontierModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := sim.ReportNow()
	if rep.SimSeconds != 0 || rep.JobsCompleted != 0 {
		t.Error("fresh report should be empty")
	}
}

func TestWetBulbFunctionIsUsed(t *testing.T) {
	called := false
	cfg := DefaultConfig()
	cfg.TickSec = 15
	cfg.EnableCooling = true
	cfg.WetBulbC = func(t float64) float64 {
		called = true
		return 18
	}
	sim, err := New(cfg, frontierModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(60); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("wet-bulb provider never consulted")
	}
}

func BenchmarkTickUncooled(b *testing.B) {
	cfg := DefaultConfig()
	cfg.TickSec = 1
	j := job.New(1, "load", 9000, 1e9, 0)
	j.CPUTrace = job.FlatTrace(0.6, 3600)
	j.GPUTrace = job.FlatTrace(0.7, 3600)
	sim, err := New(cfg, power.NewFrontierModel(), []*job.Job{j})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTickCooled15s(b *testing.B) {
	cfg := DefaultConfig()
	cfg.TickSec = 15
	cfg.EnableCooling = true
	j := job.New(1, "load", 9000, 1e9, 0)
	j.CPUTrace = job.FlatTrace(0.6, 3600)
	j.GPUTrace = job.FlatTrace(0.7, 3600)
	sim, err := New(cfg, power.NewFrontierModel(), []*job.Job{j})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestJobEnergyAttribution(t *testing.T) {
	// Two jobs of very different size: attribution must reflect the
	// node-seconds × power each consumed.
	big := job.New(1, "big", 4000, 1200, 0)
	big.CPUTrace = job.FlatTrace(0.8, 1200)
	big.GPUTrace = job.FlatTrace(0.8, 1200)
	small := job.New(2, "small", 100, 1200, 0)
	small.CPUTrace = job.FlatTrace(0.8, 1200)
	small.GPUTrace = job.FlatTrace(0.8, 1200)
	cfg := DefaultConfig()
	cfg.TickSec = 15
	sim, err := New(cfg, frontierModel(), []*job.Job{big, small})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(1800)
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsCompleted != 2 {
		t.Fatalf("completed %d", rep.JobsCompleted)
	}
	top := sim.TopConsumers(2)
	if len(top) != 2 || top[0].JobID != 1 {
		t.Fatalf("top consumers = %+v", top)
	}
	// 40× the nodes at identical utilization → 40× the node energy.
	ratio := top[0].NodeEnergyMWh / top[1].NodeEnergyMWh
	if math.Abs(ratio-40) > 0.5 {
		t.Errorf("energy ratio = %v, want 40", ratio)
	}
	// Facility share exceeds node share (losses + switches + pumps).
	for _, je := range top {
		if je.FacilityEnergyMWh <= je.NodeEnergyMWh {
			t.Errorf("job %d facility %v ≤ node %v", je.JobID, je.FacilityEnergyMWh, je.NodeEnergyMWh)
		}
		if je.CO2Tons <= 0 || je.CostUSD <= 0 {
			t.Errorf("job %d missing carbon/cost attribution", je.JobID)
		}
	}
	// Attributed facility energy never exceeds the run's total.
	sum := top[0].FacilityEnergyMWh + top[1].FacilityEnergyMWh
	if sum > rep.EnergyMWh {
		t.Errorf("attributed %v MWh > total %v MWh", sum, rep.EnergyMWh)
	}
}

func TestJobEnergyIncludesRunningJobs(t *testing.T) {
	j := job.New(1, "running", 1000, 1e6, 0)
	j.CPUTrace = job.FlatTrace(0.5, 3600)
	j.GPUTrace = job.FlatTrace(0.5, 3600)
	cfg := DefaultConfig()
	cfg.TickSec = 15
	sim, err := New(cfg, frontierModel(), []*job.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(600); err != nil {
		t.Fatal(err)
	}
	rep := sim.JobEnergyReport()
	if len(rep) != 1 || rep[0].NodeEnergyMWh <= 0 {
		t.Fatalf("running job not attributed: %+v", rep)
	}
	if got := sim.TopConsumers(10); len(got) != 1 {
		t.Errorf("TopConsumers clamps to available jobs: %d", len(got))
	}
}

func TestTimeVaryingEmissionIntensity(t *testing.T) {
	// A job running in a low-carbon window must be charged less CO2 than
	// the same job in a high-carbon window — the carbon-aware-scheduling
	// what-if enabled by hourly grid intensity.
	diurnalEI := func(tSec float64) float64 {
		hour := math.Mod(tSec/3600, 24)
		if hour < 12 {
			return 400 // clean half-day (lb CO2/MWh)
		}
		return 1200 // dirty half-day
	}
	runAt := func(startSec float64) *Report {
		j := job.New(1, "shiftable", 6000, 3600, startSec)
		j.ReplayStart = startSec
		j.CPUTrace = job.FlatTrace(0.9, 3600)
		j.GPUTrace = job.FlatTrace(0.9, 3600)
		cfg := DefaultConfig()
		cfg.TickSec = 15
		cfg.EmissionIntensityFn = diurnalEI
		sim, err := New(cfg, frontierModel(), []*job.Job{j})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(24 * 3600)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	clean := runAt(2 * 3600)  // runs 02:00-03:00 in the clean window
	dirty := runAt(14 * 3600) // runs 14:00-15:00 in the dirty window
	if math.Abs(clean.EnergyMWh-dirty.EnergyMWh)/clean.EnergyMWh > 0.001 {
		t.Fatalf("energy should match: %v vs %v", clean.EnergyMWh, dirty.EnergyMWh)
	}
	if dirty.CO2Tons <= clean.CO2Tons*1.05 {
		t.Errorf("dirty-window CO2 %v should clearly exceed clean-window %v",
			dirty.CO2Tons, clean.CO2Tons)
	}
}

func TestConstantEIFallback(t *testing.T) {
	// Without a profile the Eq. 6 constant-EI formula is reproduced
	// exactly (already asserted in TestEnergyAccounting; this pins the
	// weighted-average path to the same result).
	sim, err := New(DefaultConfig(), frontierModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(600)
	if err != nil {
		t.Fatal(err)
	}
	want := rep.EnergyMWh * 852.3 / 2204.6 / rep.EtaSystem
	if math.Abs(rep.CO2Tons-want) > 1e-9 {
		t.Errorf("CO2 = %v, want %v", rep.CO2Tons, want)
	}
}
