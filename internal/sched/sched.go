// Package sched implements the resource-allocation half of RAPS
// (§III-B4): a node pool tracking free/busy nodes, the scheduling
// policies named in the paper (First-Come-First-Served and Shortest Job
// First), an EASY-backfill policy (the paper's "more sophisticated
// algorithms" future work), and a replay mode that pins jobs to their
// telemetry start times ("replayed using the physical twin's scheduling
// policy").
package sched

import (
	"fmt"
	"sort"

	"exadigit/internal/job"
)

// NodePool allocates node indices from a fixed-size machine.
type NodePool struct {
	free  []int // stack of free node indices
	inUse []bool
	total int
}

// NewNodePool builds a pool of n nodes, all free.
func NewNodePool(n int) *NodePool {
	p := &NodePool{
		free:  make([]int, n),
		inUse: make([]bool, n),
		total: n,
	}
	// Pop from the end; seed so that node 0 is allocated first.
	for i := 0; i < n; i++ {
		p.free[i] = n - 1 - i
	}
	return p
}

// Total returns the machine size.
func (p *NodePool) Total() int { return p.total }

// Available returns the number of free nodes.
func (p *NodePool) Available() int { return len(p.free) }

// InUse returns the number of allocated nodes.
func (p *NodePool) InUse() int { return p.total - len(p.free) }

// Alloc reserves n nodes, returning their indices, or nil if the pool
// cannot satisfy the request.
func (p *NodePool) Alloc(n int) []int {
	if n <= 0 || n > len(p.free) {
		return nil
	}
	out := make([]int, n)
	base := len(p.free) - n
	copy(out, p.free[base:])
	p.free = p.free[:base]
	for _, id := range out {
		p.inUse[id] = true
	}
	return out
}

// Release returns nodes to the pool. Releasing a free node panics — it
// indicates scheduler state corruption.
func (p *NodePool) Release(nodes []int) {
	for _, id := range nodes {
		if id < 0 || id >= p.total {
			panic(fmt.Sprintf("sched: release of invalid node %d", id))
		}
		if !p.inUse[id] {
			panic(fmt.Sprintf("sched: double release of node %d", id))
		}
		p.inUse[id] = false
		p.free = append(p.free, id)
	}
}

// Policy orders the pending queue before each scheduling pass.
type Policy interface {
	// Name identifies the policy in configs and reports.
	Name() string
	// Order sorts pending in the order jobs should be considered.
	Order(pending []*job.Job)
	// Backfill reports whether jobs behind a blocked queue head may
	// start out of order.
	Backfill() bool
}

// FCFS is First-Come-First-Served: strict submit order, no backfill.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// Order implements Policy (stable by submit time, then ID).
func (FCFS) Order(pending []*job.Job) { orderBySubmit(pending) }

// Backfill implements Policy.
func (FCFS) Backfill() bool { return false }

// SJF is Shortest-Job-First by requested wall time.
type SJF struct{}

// Name implements Policy.
func (SJF) Name() string { return "sjf" }

// Order implements Policy.
func (SJF) Order(pending []*job.Job) {
	sort.SliceStable(pending, func(i, k int) bool {
		if pending[i].WallTimeSec != pending[k].WallTimeSec {
			return pending[i].WallTimeSec < pending[k].WallTimeSec
		}
		return pending[i].ID < pending[k].ID
	})
}

// Backfill implements Policy.
func (SJF) Backfill() bool { return false }

// EASY is FCFS with EASY backfilling: when the queue head cannot start,
// later jobs may run if they fit in the currently free nodes and finish
// before the head's earliest possible start (its "shadow time").
type EASY struct{}

// Name implements Policy.
func (EASY) Name() string { return "easy-backfill" }

// Order implements Policy.
func (EASY) Order(pending []*job.Job) { orderBySubmit(pending) }

// Backfill implements Policy.
func (EASY) Backfill() bool { return true }

func orderBySubmit(pending []*job.Job) {
	sort.SliceStable(pending, func(i, k int) bool {
		if pending[i].SubmitTime != pending[k].SubmitTime {
			return pending[i].SubmitTime < pending[k].SubmitTime
		}
		return pending[i].ID < pending[k].ID
	})
}

// PolicyByName resolves the scheduler policy names accepted in configs.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "fcfs", "":
		return FCFS{}, nil
	case "sjf":
		return SJF{}, nil
	case "easy", "easy-backfill", "backfill":
		return EASY{}, nil
	default:
		return nil, fmt.Errorf("sched: unknown policy %q", name)
	}
}

// Scheduler runs the Algorithm 1 SCHEDULEJOBS procedure against a pool.
type Scheduler struct {
	Pool    *NodePool
	Policy  Policy
	pending []*job.Job
	running []*job.Job
}

// NewScheduler builds a scheduler over n nodes with the given policy.
func NewScheduler(n int, policy Policy) *Scheduler {
	return &Scheduler{Pool: NewNodePool(n), Policy: policy}
}

// Submit queues a job (Algorithm 1 line 8: "Add newly arriving jobs to
// pending queue").
func (s *Scheduler) Submit(j *job.Job) {
	j.State = job.Pending
	s.pending = append(s.pending, j)
}

// Pending returns the queued job count.
func (s *Scheduler) Pending() int { return len(s.pending) }

// Running returns the jobs currently holding nodes.
func (s *Scheduler) Running() []*job.Job { return s.running }

// Schedule performs one scheduling pass at simulation time now, starting
// every job the policy admits. Started jobs are returned.
// Replay-pinned jobs (ReplayStart ≥ 0) only start once now reaches their
// pinned time, ahead of policy order.
func (s *Scheduler) Schedule(now float64) []*job.Job {
	var started []*job.Job

	// Replay-pinned jobs start exactly on schedule when possible.
	remaining := s.pending[:0]
	for _, j := range s.pending {
		if j.ReplayStart >= 0 && now >= j.ReplayStart {
			if nodes := s.Pool.Alloc(j.NodeCount); nodes != nil {
				s.start(j, nodes, now)
				started = append(started, j)
				continue
			}
		}
		remaining = append(remaining, j)
	}
	s.pending = remaining

	s.Policy.Order(s.pending)
	blockedHead := (*job.Job)(nil)
	shadow := 0.0
	remaining = s.pending[:0]
	for _, j := range s.pending {
		if j.ReplayStart >= 0 {
			// Pinned jobs wait for their moment; never policy-started.
			remaining = append(remaining, j)
			continue
		}
		switch {
		case blockedHead == nil:
			if nodes := s.Pool.Alloc(j.NodeCount); nodes != nil {
				s.start(j, nodes, now)
				started = append(started, j)
				continue
			}
			if !s.Policy.Backfill() {
				remaining = append(remaining, j)
				// FCFS/SJF: a blocked head blocks everyone behind it.
				blockedHead = j
				shadow = -1
				continue
			}
			blockedHead = j
			shadow = s.shadowTime(now, j)
			remaining = append(remaining, j)
		case shadow < 0:
			remaining = append(remaining, j)
		default:
			// EASY backfill: only if the candidate fits now and cannot
			// delay the blocked head.
			if j.NodeCount <= s.Pool.Available() && now+j.WallTimeSec <= shadow {
				if nodes := s.Pool.Alloc(j.NodeCount); nodes != nil {
					s.start(j, nodes, now)
					started = append(started, j)
					continue
				}
			}
			remaining = append(remaining, j)
		}
	}
	s.pending = remaining
	return started
}

// NextPinnedStart returns the earliest ReplayStart strictly after now
// among queued replay-pinned jobs, or -1 when there is none. The
// event-driven simulation loop uses it as an event horizon: between two
// consecutive events nothing in the scheduler's state can change, so
// future pinned starts must be surfaced as events of their own. Pinned
// jobs whose start time has already passed are excluded — they are
// waiting on nodes, and the completion that frees nodes is an event
// already, so reporting the past time would only pin the horizon to the
// present and disable gap skipping.
func (s *Scheduler) NextPinnedStart(now float64) float64 {
	next := -1.0
	for _, j := range s.pending {
		if j.ReplayStart > now && (next < 0 || j.ReplayStart < next) {
			next = j.ReplayStart
		}
	}
	return next
}

// shadowTime computes the earliest time the blocked head could start,
// assuming running jobs end at StartTime+WallTimeSec.
func (s *Scheduler) shadowTime(now float64, head *job.Job) float64 {
	type ending struct {
		t     float64
		nodes int
	}
	ends := make([]ending, 0, len(s.running))
	for _, r := range s.running {
		ends = append(ends, ending{t: r.StartTime + r.WallTimeSec, nodes: r.NodeCount})
	}
	sort.Slice(ends, func(i, k int) bool { return ends[i].t < ends[k].t })
	avail := s.Pool.Available()
	for _, e := range ends {
		avail += e.nodes
		if avail >= head.NodeCount {
			return e.t
		}
	}
	// Head can never start (larger than machine): no backfill window.
	return now
}

func (s *Scheduler) start(j *job.Job, nodes []int, now float64) {
	j.State = job.Running
	j.StartTime = now
	j.Nodes = nodes
	s.running = append(s.running, j)
}

// Reap completes every running job whose wall time has elapsed by now,
// releasing its nodes (Algorithm 1 lines 16-19). Completed jobs are
// returned.
func (s *Scheduler) Reap(now float64) []*job.Job {
	var done []*job.Job
	keep := s.running[:0]
	for _, j := range s.running {
		if now >= j.StartTime+j.WallTimeSec {
			j.State = job.Completed
			j.EndTime = now
			s.Pool.Release(j.Nodes)
			j.Nodes = nil
			done = append(done, j)
		} else {
			keep = append(keep, j)
		}
	}
	s.running = keep
	return done
}
