package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"exadigit/internal/job"
)

func TestNodePoolAllocRelease(t *testing.T) {
	p := NewNodePool(10)
	if p.Total() != 10 || p.Available() != 10 || p.InUse() != 0 {
		t.Fatal("fresh pool wrong")
	}
	a := p.Alloc(4)
	if len(a) != 4 || p.Available() != 6 || p.InUse() != 4 {
		t.Fatalf("alloc 4: %v, avail %d", a, p.Available())
	}
	b := p.Alloc(6)
	if len(b) != 6 || p.Available() != 0 {
		t.Fatal("alloc remainder failed")
	}
	if p.Alloc(1) != nil {
		t.Error("overallocation must fail")
	}
	p.Release(a)
	if p.Available() != 4 {
		t.Error("release failed")
	}
	if got := p.Alloc(0); got != nil {
		t.Error("zero alloc should return nil")
	}
}

func TestNodePoolNoDoubleAllocationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		p := NewNodePool(64)
		rng := rand.New(rand.NewSource(1))
		var held [][]int
		seen := make(map[int]bool)
		for _, op := range ops {
			if op%2 == 0 || len(held) == 0 {
				n := int(op%16) + 1
				nodes := p.Alloc(n)
				if nodes == nil {
					continue
				}
				for _, id := range nodes {
					if seen[id] {
						return false // double allocation!
					}
					seen[id] = true
				}
				held = append(held, nodes)
			} else {
				i := rng.Intn(len(held))
				for _, id := range held[i] {
					delete(seen, id)
				}
				p.Release(held[i])
				held = append(held[:i], held[i+1:]...)
			}
		}
		return p.InUse() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodePoolDoubleReleasePanics(t *testing.T) {
	p := NewNodePool(4)
	a := p.Alloc(2)
	p.Release(a)
	defer func() {
		if recover() == nil {
			t.Error("double release must panic")
		}
	}()
	p.Release(a)
}

func TestNodePoolInvalidReleasePanics(t *testing.T) {
	p := NewNodePool(4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range release must panic")
		}
	}()
	p.Release([]int{99})
}

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"fcfs": "fcfs", "": "fcfs", "sjf": "sjf",
		"easy": "easy-backfill", "backfill": "easy-backfill",
	} {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("%q → %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := PolicyByName("slurm"); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestFCFSOrdering(t *testing.T) {
	s := NewScheduler(10, FCFS{})
	// Submit out of order; FCFS starts them by submit time.
	j2 := job.New(2, "b", 5, 100, 20)
	j1 := job.New(1, "a", 5, 100, 10)
	s.Submit(j2)
	s.Submit(j1)
	started := s.Schedule(30)
	if len(started) != 2 {
		t.Fatalf("started %d", len(started))
	}
	if started[0].ID != 1 || started[1].ID != 2 {
		t.Errorf("FCFS order: %d, %d", started[0].ID, started[1].ID)
	}
}

func TestFCFSHeadOfLineBlocking(t *testing.T) {
	s := NewScheduler(10, FCFS{})
	s.Submit(job.New(1, "big", 8, 100, 0))
	started := s.Schedule(0)
	if len(started) != 1 {
		t.Fatal("big job should start")
	}
	// Head (needs 8) blocks; the small job behind must NOT start under FCFS.
	s.Submit(job.New(2, "huge", 8, 100, 1))
	s.Submit(job.New(3, "small", 1, 10, 2))
	started = s.Schedule(5)
	if len(started) != 0 {
		t.Errorf("FCFS must not backfill, started %d jobs", len(started))
	}
}

func TestSJFPrefersShortJobs(t *testing.T) {
	s := NewScheduler(4, SJF{})
	s.Submit(job.New(1, "long", 4, 1000, 0))
	s.Submit(job.New(2, "short", 4, 10, 1))
	started := s.Schedule(2)
	if len(started) != 1 || started[0].ID != 2 {
		t.Errorf("SJF should start the short job first: %+v", started)
	}
}

func TestEASYBackfill(t *testing.T) {
	s := NewScheduler(10, EASY{})
	long := job.New(1, "long", 8, 1000, 0)
	s.Submit(long)
	if got := s.Schedule(0); len(got) != 1 {
		t.Fatal("long job should start")
	}
	// Head needs 8 nodes (only 2 free) → blocked until t=1000.
	s.Submit(job.New(2, "head", 8, 100, 1))
	// Fits in 2 free nodes and ends before 1000 → backfills.
	fits := job.New(3, "fits", 2, 50, 2)
	// Fits in nodes but would outlive the shadow window → must wait.
	tooLong := job.New(4, "toolong", 2, 5000, 3)
	s.Submit(fits)
	s.Submit(tooLong)
	started := s.Schedule(5)
	if len(started) != 1 || started[0].ID != 3 {
		ids := []int{}
		for _, j := range started {
			ids = append(ids, j.ID)
		}
		t.Errorf("EASY should backfill only job 3, started %v", ids)
	}
}

func TestEASYShadowAdvancesAfterCompletion(t *testing.T) {
	s := NewScheduler(10, EASY{})
	s.Submit(job.New(1, "long", 8, 100, 0))
	s.Schedule(0)
	s.Submit(job.New(2, "head", 10, 100, 1))
	s.Schedule(1)
	// At t=100 the long job ends; head can now run.
	done := s.Reap(100)
	if len(done) != 1 {
		t.Fatal("long job should complete")
	}
	started := s.Schedule(100)
	if len(started) != 1 || started[0].ID != 2 {
		t.Error("head should start after resources free")
	}
}

func TestReapReleasesNodes(t *testing.T) {
	s := NewScheduler(8, FCFS{})
	j := job.New(1, "j", 8, 60, 0)
	s.Submit(j)
	s.Schedule(0)
	if s.Pool.Available() != 0 {
		t.Fatal("all nodes should be busy")
	}
	if done := s.Reap(30); len(done) != 0 {
		t.Error("too early to reap")
	}
	done := s.Reap(60)
	if len(done) != 1 || done[0].State != job.Completed {
		t.Fatal("job should complete at its wall time")
	}
	if s.Pool.Available() != 8 {
		t.Error("nodes should be released")
	}
	if done[0].EndTime != 60 {
		t.Errorf("end time = %v", done[0].EndTime)
	}
}

func TestReplayPinnedStart(t *testing.T) {
	s := NewScheduler(10, FCFS{})
	j := job.New(1, "replay", 4, 100, 0)
	j.ReplayStart = 50
	s.Submit(j)
	if got := s.Schedule(0); len(got) != 0 {
		t.Error("pinned job must not start before its telemetry time")
	}
	if got := s.Schedule(49); len(got) != 0 {
		t.Error("still too early")
	}
	got := s.Schedule(50)
	if len(got) != 1 || got[0].StartTime != 50 {
		t.Errorf("pinned job should start at 50: %+v", got)
	}
}

func TestReplayPinnedDoesNotStealPolicySlot(t *testing.T) {
	s := NewScheduler(4, FCFS{})
	pinned := job.New(1, "replay", 4, 100, 0)
	pinned.ReplayStart = 1000
	s.Submit(pinned)
	free := job.New(2, "free", 4, 10, 1)
	s.Submit(free)
	started := s.Schedule(5)
	if len(started) != 1 || started[0].ID != 2 {
		t.Error("policy job should run while the pinned job waits")
	}
}

func TestSchedulerConservesNodesUnderLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewScheduler(128, EASY{})
	id := 1
	for tick := 0; tick < 2000; tick++ {
		now := float64(tick)
		if rng.Float64() < 0.3 {
			s.Submit(job.New(id, "j", 1+rng.Intn(64), 1+float64(rng.Intn(200)), now))
			id++
		}
		s.Reap(now)
		s.Schedule(now)
		used := 0
		for _, r := range s.Running() {
			used += r.NodeCount
		}
		if used != s.Pool.InUse() {
			t.Fatalf("tick %d: running jobs hold %d nodes but pool says %d", tick, used, s.Pool.InUse())
		}
		if used+s.Pool.Available() != 128 {
			t.Fatalf("tick %d: node conservation violated", tick)
		}
	}
}

func TestJobLargerThanMachineNeverStarts(t *testing.T) {
	s := NewScheduler(4, EASY{})
	s.Submit(job.New(1, "toobig", 8, 100, 0))
	s.Submit(job.New(2, "ok", 2, 10, 1))
	started := s.Schedule(1)
	// The oversized head can never run; backfill window is degenerate,
	// but the small job fits "now" with shadow=now → cannot backfill
	// (now+wall > now). Accept either it waiting or running; key
	// invariant: the oversized job never starts.
	for _, j := range started {
		if j.ID == 1 {
			t.Fatal("impossible job must never start")
		}
	}
}
