package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"exadigit/internal/httpmw"
)

// TestSweepAPIBehindBearerAuth pins the serve-mode auth wiring: the
// sweep API mounted behind httpmw.RequireBearer rejects tokenless and
// wrong-token requests with 401 and serves authorized ones normally.
func TestSweepAPIBehindBearerAuth(t *testing.T) {
	svc := New(Options{Workers: 1})
	srv := httptest.NewServer(httpmw.RequireBearer("twin-token", svc.Handler()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless list = %d, want 401", resp.StatusCode)
	}

	body := `{"scenarios":[{"workload":"idle","horizon_sec":60,"tick_sec":15}]}`
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/api/sweeps", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer wrong")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong-token submit = %d, want 401", resp.StatusCode)
	}

	req, err = http.NewRequest(http.MethodPost, srv.URL+"/api/sweeps", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer twin-token")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("authorized submit = %d, want 202", resp.StatusCode)
	}
}
