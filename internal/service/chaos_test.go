package service

// The fault-injection (chaos) suite — run standalone via `make chaos`.
// Every recovery path of the per-scenario failure domain is pinned here:
// worker panics recovered into typed errors, deadline overruns retried,
// fail-N-times-then-succeed transients, permanent failures reported
// per-scenario without poisoning the sweep, truncated store entries
// quarantined at startup and at read time, and queue saturation refused
// with backpressure instead of accepted and dropped.

import (
	"context"
	"errors"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/store"
)

// chaosOptions are fast-retry service options for the suite (waiting out
// production backoff would dominate test wall time).
func chaosOptions(st *store.Store) Options {
	return Options{
		Workers:        4,
		Store:          st,
		MaxAttempts:    3,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  5 * time.Millisecond,
	}
}

// TestChaosSweepSurvivesInjectedFaults is the acceptance chaos test: a
// 32-scenario sweep with a panic on one scenario, a deadline overrun on
// another, a fail-twice-then-succeed transient on a third, and one
// permanently failing scenario completes with correct results for every
// non-permanently-failed scenario — the process never dies, the sweep
// never hangs, and the durable store ends up holding every success.
func TestChaosSweepSurvivesInjectedFaults(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := New(chaosOptions(st))
	const (
		panicIdx     = 3
		timeoutIdx   = 7
		transientIdx = 11
		permIdx      = 13
		n            = 32
	)
	svc.SetFaultInjector(&FaultInjector{
		BeforeRun: func(ctx context.Context, f Fault) error {
			switch {
			case f.Index == panicIdx && f.Attempt == 1:
				panic("chaos: injected worker panic")
			case f.Index == timeoutIdx && f.Attempt == 1:
				// Inject latency past the scenario deadline; the hook
				// honors the attempt ctx like a well-behaved slow stage.
				<-ctx.Done()
				return nil
			case f.Index == transientIdx && f.Attempt <= 2:
				return errors.New("chaos: injected transient failure")
			case f.Index == permIdx:
				return errors.New("chaos: injected permanent failure")
			}
			return nil
		},
	})

	scenarios := make([]core.Scenario, n)
	for i := range scenarios {
		scenarios[i] = synthScenario(int64(9000+i), 900)
	}
	sw, err := svc.Submit(config.Frontier(), scenarios, SweepOptions{
		Name:            "chaos",
		ScenarioTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	stat := waitSweep(t, sw)
	if stat.Done != n-1 || stat.Failed != 1 || stat.Cancelled != 0 {
		t.Fatalf("chaos sweep final status: %+v", stat)
	}

	results := sw.Results()
	for i, sc := range stat.Scenarios {
		if i == permIdx {
			if sc.State != StateFailed {
				t.Fatalf("permanent scenario %d not failed: %+v", i, sc)
			}
			if !strings.Contains(sc.Error, "after 3 attempt") || !strings.Contains(sc.Error, "permanent failure") {
				t.Fatalf("permanent failure not reported as ScenarioError: %q", sc.Error)
			}
			if sc.Attempts != 3 {
				t.Fatalf("permanent scenario consumed %d attempts, want 3", sc.Attempts)
			}
			continue
		}
		if sc.State != StateDone || results[i] == nil || results[i].Report == nil {
			t.Fatalf("scenario %d did not recover: %+v", i, sc)
		}
	}
	// The recovered scenarios record their retry consumption.
	if got := stat.Scenarios[panicIdx].Attempts; got != 2 {
		t.Errorf("panicked scenario attempts = %d, want 2", got)
	}
	if got := stat.Scenarios[timeoutIdx].Attempts; got != 2 {
		t.Errorf("timed-out scenario attempts = %d, want 2", got)
	}
	if got := stat.Scenarios[transientIdx].Attempts; got != 3 {
		t.Errorf("transient scenario attempts = %d, want 3", got)
	}

	fm := svc.FailureMetricsSnapshot()
	if fm.PanicsRecovered != 1 {
		t.Errorf("panics recovered = %d, want 1", fm.PanicsRecovered)
	}
	if fm.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", fm.Timeouts)
	}
	// panic retry + timeout retry + two transient retries = 4 (the
	// permanent scenario adds 2 more).
	if fm.Retries != 6 {
		t.Errorf("retries = %d, want 6", fm.Retries)
	}
	if fm.Pending != 0 {
		t.Errorf("pending not drained after sweep: %d", fm.Pending)
	}
	// Every success was persisted; the failure was not.
	if st.Len() != n-1 {
		t.Errorf("store holds %d entries, want %d", st.Len(), n-1)
	}
}

// TestChaosPanicEveryAttemptIsPermanentTypedFailure: a scenario that
// panics on every attempt exhausts its budget and surfaces as a
// *ScenarioError wrapping a *PanicError — typed all the way through.
func TestChaosPanicEveryAttemptIsPermanentTypedFailure(t *testing.T) {
	svc := New(chaosOptions(nil))
	svc.SetFaultInjector(&FaultInjector{
		BeforeRun: func(ctx context.Context, f Fault) error {
			if f.Index == 0 {
				panic("chaos: poisoned scenario")
			}
			return nil
		},
	})
	scenarios := []core.Scenario{synthScenario(9101, 900), synthScenario(9102, 900)}
	sw, err := svc.Submit(config.Frontier(), scenarios, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stat := waitSweep(t, sw)
	if stat.Failed != 1 || stat.Done != 1 {
		t.Fatalf("final status: %+v", stat)
	}
	if got := stat.Scenarios[0].Error; !strings.Contains(got, "panicked") || !strings.Contains(got, "poisoned") {
		t.Fatalf("panic cause lost from reported error: %q", got)
	}
	if svc.FailureMetricsSnapshot().PanicsRecovered != 3 {
		t.Fatalf("want 3 recovered panics, got %+v", svc.FailureMetricsSnapshot())
	}
}

// TestChaosDeadlineOverrunEveryAttempt: injected latency past the
// deadline on every attempt makes the scenario fail permanently with the
// deadline in its error, while a sibling scenario is untouched.
func TestChaosDeadlineOverrunEveryAttempt(t *testing.T) {
	svc := New(chaosOptions(nil))
	svc.SetFaultInjector(&FaultInjector{
		BeforeRun: func(ctx context.Context, f Fault) error {
			if f.Index == 0 {
				<-ctx.Done()
			}
			return nil
		},
	})
	scenarios := []core.Scenario{synthScenario(9201, 900), synthScenario(9202, 900)}
	sw, err := svc.Submit(config.Frontier(), scenarios, SweepOptions{
		ScenarioTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	stat := waitSweep(t, sw)
	if stat.Failed != 1 || stat.Done != 1 {
		t.Fatalf("final status: %+v", stat)
	}
	if got := stat.Scenarios[0].Error; !strings.Contains(got, "deadline") {
		t.Fatalf("timeout not reported: %q", got)
	}
	if tm := svc.FailureMetricsSnapshot().Timeouts; tm != 3 {
		t.Fatalf("timeouts = %d, want 3", tm)
	}
}

// TestChaosTruncatedStoreEntryHealed: a store entry truncated behind the
// index's back is quarantined at read time, the scenario recomputed, and
// the recomputed result re-persisted — the self-healing path. A fresh
// Open over the same directory must also quarantine a truncation at
// startup (both detection points are exercised).
func TestChaosTruncatedStoreEntryHealed(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(chaosOptions(st))
	scenarios := []core.Scenario{synthScenario(9301, 900), synthScenario(9302, 900)}
	spec := config.Frontier()
	sw, err := svc.Submit(spec, scenarios, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitSweep(t, sw)
	if st.Len() != 2 {
		t.Fatalf("store holds %d entries, want 2", st.Len())
	}

	// Truncate one entry in place (index still trusts it).
	path := st.EntryPath(sw.SpecHash(), sw.ScenarioHashes()[0])
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()/3); err != nil {
		t.Fatal(err)
	}

	// A fresh service over the same store (memory cache cold) must
	// detect the corruption at read time, recompute, and re-persist.
	svc2 := New(chaosOptions(st))
	sw2, err := svc2.Submit(spec, scenarios, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stat := waitSweep(t, sw2)
	if stat.Done != 1 || stat.Cached != 1 {
		t.Fatalf("post-truncation sweep: %+v (want 1 recomputed + 1 disk hit)", stat)
	}
	if m := st.Stats(); m.CorruptQuarantined != 1 {
		t.Fatalf("corrupt entry not quarantined: %+v", m)
	}
	if st.Len() != 2 {
		t.Fatalf("store not healed: %d entries, want 2", st.Len())
	}

	// Startup-scan detection: truncate again, then reopen the directory.
	if err := os.Truncate(path, 10); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 1 {
		t.Fatalf("startup scan served a truncated entry: %d entries, want 1", st2.Len())
	}
	if m := st2.Stats(); m.CorruptQuarantined != 1 {
		t.Fatalf("startup quarantine not counted: %+v", m)
	}
}

// TestChaosQueueSaturationBackpressure: a saturated queue refuses new
// sweeps with ErrSaturated (counted as a rejection) instead of accepting
// work it cannot reach, and admits again once capacity frees.
func TestChaosQueueSaturationBackpressure(t *testing.T) {
	gate := make(chan struct{})
	var gated atomic.Bool
	opts := chaosOptions(nil)
	opts.Workers = 1
	opts.MaxPending = 2
	svc := New(opts)
	svc.SetFaultInjector(&FaultInjector{
		BeforeRun: func(ctx context.Context, f Fault) error {
			if gated.Load() {
				select {
				case <-gate:
				case <-ctx.Done():
				}
			}
			return nil
		},
	})
	gated.Store(true)
	spec := config.Frontier()
	sw, err := svc.Submit(spec, []core.Scenario{synthScenario(9401, 900), synthScenario(9402, 900)}, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}

	_, err = svc.Submit(spec, []core.Scenario{synthScenario(9403, 900)}, SweepOptions{})
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated queue accepted work: %v", err)
	}
	if rej := svc.FailureMetricsSnapshot().QueueRejections; rej != 1 {
		t.Fatalf("rejections = %d, want 1", rej)
	}

	gated.Store(false)
	close(gate)
	waitSweep(t, sw)
	sw2, err := svc.Submit(spec, []core.Scenario{synthScenario(9403, 900)}, SweepOptions{})
	if err != nil {
		t.Fatalf("queue did not recover after drain: %v", err)
	}
	waitSweep(t, sw2)
}

// TestChaosCloseThenDrain: Close rejects new sweeps with ErrClosed while
// already-admitted sweeps run to completion under Drain — the graceful
// shutdown sequence.
func TestChaosCloseThenDrain(t *testing.T) {
	svc := New(chaosOptions(nil))
	spec := config.Frontier()
	sw, err := svc.Submit(spec, []core.Scenario{synthScenario(9501, 1800)}, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if _, err := svc.Submit(spec, []core.Scenario{synthScenario(9502, 900)}, SweepOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed service accepted a sweep: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := sw.Status(); !st.Finished || st.Done != 1 {
		t.Fatalf("drained sweep not finished: %+v", st)
	}
}
