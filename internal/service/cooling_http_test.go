package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/core"
)

// coolingVariants returns three distinct plants for the same Frontier
// compute spec: the hand-calibrated preset, the AutoCSM synthesis of the
// same design quantities, and an AutoCSM variant with a re-sized tower
// loop.
func coolingVariants() []config.CoolingSpec {
	preset := config.Frontier().Cooling
	auto := preset
	auto.Preset = ""
	resized := auto
	resized.NumTowers = 4
	resized.TowerFlowGPM = 7500
	resized.PrimaryFlowGPM = 6000
	return []config.CoolingSpec{preset, auto, resized}
}

// TestHTTPSweepMixesCoolingVariants is the acceptance test for the
// spec-driven cooling axis: a single POST /api/sweeps mixing ≥3 cooling
// variants runs each scenario on its own AutoCSM-compiled plant —
// distinct scenario hashes, distinct plant behavior (AvgPUE), with the
// preset variant pinned to the hand-calibrated Frontier result.
func TestHTTPSweepMixesCoolingVariants(t *testing.T) {
	svc := New(Options{Workers: 3})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	req := SubmitRequest{Name: "cooling-mix"}
	variants := coolingVariants()
	names := []string{"preset", "autocsm", "resized"}
	for i := range variants {
		v := variants[i]
		req.Scenarios = append(req.Scenarios, ScenarioRequest{
			Name: names[i], Workload: "hpl", BenchmarkWallSec: 2 * 3600,
			HorizonSec: 1800, TickSec: 15, WetBulbC: 19,
			CoolingSpec: &v, // implies cooling
		})
	}
	ack := postSweep(t, srv.URL, req)
	seen := map[string]bool{}
	for _, h := range ack.ScenarioHashes {
		if seen[h] {
			t.Fatalf("duplicate scenario hash %s across cooling variants", h)
		}
		seen[h] = true
	}

	sw, ok := svc.Sweep(ack.ID)
	if !ok {
		t.Fatal("sweep not registered")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := sw.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st := sw.Status()
	if st.Done != len(variants) {
		t.Fatalf("status = %+v", st)
	}
	results := sw.Results()
	pues := make([]float64, len(results))
	for i, res := range results {
		if res == nil {
			t.Fatalf("scenario %d missing result", i)
		}
		pues[i] = res.Report.AvgPUE
	}
	for i := 0; i < len(pues); i++ {
		for k := i + 1; k < len(pues); k++ {
			if pues[i] == pues[k] {
				t.Errorf("%s and %s cooled identically (PUE %v)", names[i], names[k], pues[i])
			}
		}
	}

	// The preset variant must match a run of the plain Frontier spec
	// (its scenario hash differs — the override is part of the scenario —
	// but the plant, and therefore the physics, is bit-identical).
	ref, err := core.RunBatch(config.Frontier(), []core.Scenario{{
		Name: "preset", Workload: core.WorkloadHPL, BenchmarkWallSec: 2 * 3600,
		HorizonSec: 1800, TickSec: 15, WetBulbC: 19, Cooling: true,
		NoExport: true, NoHistory: true,
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ref[0].Report.AvgPUE != pues[0] {
		t.Errorf("preset variant PUE %v != plain Frontier spec PUE %v", pues[0], ref[0].Report.AvgPUE)
	}
}

// TestHashNormalizesImpliedCooling pins that the library spelling
// (CoolingSpec set, Cooling false) and the HTTP spelling (CoolingSpec
// set, Cooling normalized to true) of the same run share one hash — and
// therefore one result-cache entry.
func TestHashNormalizesImpliedCooling(t *testing.T) {
	spec := config.Frontier().Cooling
	lib := core.Scenario{Workload: core.WorkloadIdle, HorizonSec: 60, TickSec: 15, CoolingSpec: &spec}
	http := lib
	http.Cooling = true
	h1, err := HashScenario(lib)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HashScenario(http)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("implied-cooling spellings hash differently: %s vs %s", h1, h2)
	}
	uncooled := lib
	uncooled.CoolingSpec = nil
	h3, err := HashScenario(uncooled)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("dropping the plant override did not change the hash")
	}
}

// TestHTTPRejectsInvalidCoolingSpec pins the 400 boundary: structurally
// invalid plants — non-positive flows or CDU counts, unknown presets,
// and plants that cannot couple the topology — fail the submission, not
// a worker.
func TestHTTPRejectsInvalidCoolingSpec(t *testing.T) {
	svc := New(Options{Workers: 1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	bad := map[string]func(*config.CoolingSpec){
		"negative flow":  func(c *config.CoolingSpec) { c.Preset = ""; c.PrimaryFlowGPM = -5 },
		"zero cdus":      func(c *config.CoolingSpec) { c.Preset = ""; c.NumCDUs = 0 },
		"unknown preset": func(c *config.CoolingSpec) { c.Preset = "chiller-9000" },
		"too few cdus":   func(c *config.CoolingSpec) { c.Preset = ""; c.NumCDUs = 10 },
		"infeasible": func(c *config.CoolingSpec) {
			// Valid structurally, but AutoCSM cannot size it: CT supply
			// too close to the secondary return.
			c.Preset = ""
			c.CTSupplyC = 28
		},
	}
	for name, mutate := range bad {
		spec := config.Frontier().Cooling
		mutate(&spec)
		req := SubmitRequest{Scenarios: []ScenarioRequest{{
			Workload: "idle", HorizonSec: 60, TickSec: 15, CoolingSpec: &spec,
		}}}
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+"/api/sweeps", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
	if got := svc.List(); len(got) != 0 {
		t.Errorf("rejected submissions registered sweeps: %+v", got)
	}
}

// TestHTTPCancelAbortsMidDay pins that POST /api/sweeps/{id}/cancel
// stops an in-flight simulation promptly (the run aborts at a tick
// boundary) rather than after its multi-day horizon completes.
func TestHTTPCancelAbortsMidDay(t *testing.T) {
	svc := New(Options{Workers: 1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	ack := postSweep(t, srv.URL, SubmitRequest{Scenarios: []ScenarioRequest{{
		Name: "long-day", Workload: "synthetic",
		HorizonSec: 14 * 24 * 3600, TickSec: 1, Cooling: true, WetBulbC: 20,
	}}})
	sw, ok := svc.Sweep(ack.ID)
	if !ok {
		t.Fatal("sweep not registered")
	}
	// Wait for the scenario to be running, then cancel over HTTP.
	deadline := time.Now().Add(10 * time.Second)
	for sw.Status().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("scenario never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	start := time.Now()
	resp, err := http.Post(srv.URL+"/api/sweeps/"+ack.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := sw.Wait(ctx); err != nil {
		t.Fatalf("sweep did not finish after cancel: %v", err)
	}
	if wall := time.Since(start); wall > 10*time.Second {
		t.Errorf("cancel-to-finish took %v", wall)
	}
	st := sw.Status()
	if st.Cancelled != 1 || st.Done != 0 {
		t.Errorf("status after cancel = %+v", st)
	}
}

// TestHTTPStructuredFeasibilityError pins the structured 400 body: an
// AutoCSM-infeasible plant rejection names the offending field and a
// suggested fix instead of leaking sizing internals as free text.
func TestHTTPStructuredFeasibilityError(t *testing.T) {
	svc := New(Options{Workers: 1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	spec := config.Frontier().Cooling
	spec.Preset = ""
	spec.CTSupplyC = 28 // feasibility failure deep in AutoCSM sizing

	req := SubmitRequest{Scenarios: []ScenarioRequest{{
		Workload: "idle", HorizonSec: 60, TickSec: 15, CoolingSpec: &spec,
	}}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/api/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var got struct {
		Error      string `json:"error"`
		Field      string `json:"field"`
		Constraint string `json:"constraint"`
		Suggestion string `json:"suggestion"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Field == "" || got.Constraint == "" || got.Suggestion == "" {
		t.Fatalf("expected structured field/constraint/suggestion, got %+v", got)
	}

	// An unknown solver name is structured too.
	spec2 := config.Frontier().Cooling
	spec2.Solver = "magic"
	req.Scenarios[0].CoolingSpec = &spec2
	body, _ = json.Marshal(req)
	resp2, err := http.Post(srv.URL+"/api/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var got2 struct {
		Field string `json:"field"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&got2); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusBadRequest || got2.Field != "solver" {
		t.Fatalf("solver rejection: status %d field %q", resp2.StatusCode, got2.Field)
	}
}
