package service

import (
	"testing"
	"time"
)

// TestDrainRateEWMA pins the irregular-interval EWMA behind the
// Retry-After hint: a steady completion cadence converges to its true
// rate, a slowdown moves the estimate down within ~one time constant,
// and same-instant impulses stay bounded instead of spiking to
// infinity.
func TestDrainRateEWMA(t *testing.T) {
	var d drainRate
	now := time.Unix(1_700_000_000, 0)
	d.note(0, now) // stamp the epoch

	// 2 scenarios/sec for 2 tau: the estimate must be within 20%.
	for i := 0; i < 120; i++ {
		now = now.Add(500 * time.Millisecond)
		d.note(1, now)
	}
	if r := d.value(); r < 1.6 || r > 2.4 {
		t.Fatalf("steady 2/s cadence estimated at %.2f/s", r)
	}

	// Slow to 0.2/s for one tau: the estimate must have moved most of
	// the way down (strictly below half the old rate).
	for i := 0; i < 6; i++ {
		now = now.Add(5 * time.Second)
		d.note(1, now)
	}
	if r := d.value(); r > 1.0 {
		t.Fatalf("after slowdown to 0.2/s the estimate is still %.2f/s", r)
	}

	// A burst of same-instant completions must not blow the estimate up.
	for i := 0; i < 100; i++ {
		d.note(1, now)
	}
	if r := d.value(); r > 10 {
		t.Fatalf("same-instant impulses spiked the estimate to %.2f/s", r)
	}
}

// TestRetryAfterTracksDrainRate pins the saturated-queue hint: with no
// drain observed it falls back to the per-worker guess; once the
// service has measured its own completion rate, the hint is
// pending/rate — jittered ±25% and clamped to [1, 60] — so a slow
// plant advertises a long wait and a fast one a short wait.
func TestRetryAfterTracksDrainRate(t *testing.T) {
	s := New(Options{Workers: 2})
	s.pending.Store(120)

	// Fallback before any drain: 120 pending / 2 workers = 60s, clamped
	// to the ceiling even after -25% jitter... so check the jitter band.
	for i := 0; i < 20; i++ {
		if sec := s.retryAfterSec(); sec < 45 || sec > 60 {
			t.Fatalf("fallback hint %ds outside the jittered 120/2 band", sec)
		}
	}

	// Feed a measured 10/s drain: 120 pending / 10 per sec = 12s ±25%.
	now := time.Unix(1_700_000_000, 0)
	s.drain.note(0, now)
	for i := 0; i < 1200; i++ {
		now = now.Add(100 * time.Millisecond)
		s.drain.note(1, now)
	}
	lo, hi := 60, 0
	for i := 0; i < 50; i++ {
		sec := s.retryAfterSec()
		if sec < 8 || sec > 16 {
			t.Fatalf("measured-rate hint %ds outside 12s +/-25%% (+rounding)", sec)
		}
		if sec < lo {
			lo = sec
		}
		if sec > hi {
			hi = sec
		}
	}
	if lo == hi {
		t.Fatalf("50 hints all identical (%ds): jitter missing", lo)
	}

	// Clamp floor: near-empty queue still advertises at least 1s.
	s.pending.Store(1)
	if sec := s.retryAfterSec(); sec != 1 {
		t.Fatalf("floor hint = %ds, want 1", sec)
	}
}
