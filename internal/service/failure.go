package service

// This file is the sweep service's per-scenario failure domain. A worker
// panic, a scenario running past its deadline, or a transient simulation
// error must cost exactly one scenario attempt — never the process, never
// the sweep. Panics are recovered into typed errors, attempts retry with
// capped exponential backoff + jitter, and what survives MaxAttempts is
// reported per-scenario as a ScenarioError in sweep status and NDJSON
// output. The FaultInjector hook at the bottom is the test-only chaos
// harness that pins every one of these recovery paths.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"time"

	"exadigit/internal/core"
)

// Submission errors.
var (
	// ErrSaturated is returned by Submit when admitting the sweep would
	// push the pending-scenario count past Options.MaxPending. The HTTP
	// layer maps it to 429 + Retry-After; library callers back off and
	// resubmit.
	ErrSaturated = errors.New("service: sweep queue saturated")
	// ErrClosed is returned by Submit once Close has been called — the
	// graceful-shutdown path stops admitting work before draining.
	ErrClosed = errors.New("service: service closed")
)

// ScenarioError is the typed per-scenario failure the service reports
// when a scenario exhausts its attempts: which scenario (by content
// hash and sweep index), how many attempts were made, and the final
// cause. It unwraps to the cause, so errors.Is/As see through it.
type ScenarioError struct {
	ScenarioHash string
	Index        int
	Attempts     int
	Cause        error
}

func (e *ScenarioError) Error() string {
	return fmt.Sprintf("service: scenario %d (%.12s) failed after %d attempt(s): %v",
		e.Index, e.ScenarioHash, e.Attempts, e.Cause)
}

func (e *ScenarioError) Unwrap() error { return e.Cause }

// PanicError is a worker panic converted into an error by the recovery
// wrapper around each scenario attempt — the process-isolation boundary
// that keeps one poisoned scenario from killing the whole service.
type PanicError struct {
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("service: scenario panicked: %v", e.Value)
}

// backoffDelay returns the capped exponential backoff for the given
// (1-based) attempt with ±50% jitter, so a burst of simultaneous
// failures does not retry in lockstep.
func backoffDelay(base, max time.Duration, attempt int) time.Duration {
	d := base << (attempt - 1)
	if d <= 0 || d > max {
		d = max
	}
	// jitter in [0.5, 1.5)
	return time.Duration((0.5 + rand.Float64()) * float64(d))
}

// sleepBackoff waits out the backoff for attempt, returning false if ctx
// was cancelled first.
func sleepBackoff(ctx context.Context, base, max time.Duration, attempt int) bool {
	t := time.NewTimer(backoffDelay(base, max, attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Fault identifies one scenario attempt to the fault injector.
type Fault struct {
	SpecHash     string
	ScenarioHash string
	// Index is the scenario's position within its sweep.
	Index int
	// Attempt is 1-based.
	Attempt int
}

// FaultInjector is the test-only chaos hook. When installed via
// SetFaultInjector, BeforeRun is called inside the worker's recovery and
// deadline scope immediately before each simulation attempt, so a hook
// that panics exercises panic isolation, a hook that sleeps past the
// scenario deadline exercises timeout handling, and a hook that returns
// an error exercises retry/backoff (fail-N-times-then-succeed). The ctx
// carries the attempt's deadline; hooks that sleep should select on it.
//
// Production code never installs an injector; the nil fast path is one
// atomic load per attempt.
type FaultInjector struct {
	BeforeRun func(ctx context.Context, f Fault) error
}

// faultHolder wraps the injector for atomic publication.
type faultHolder struct {
	mu sync.RWMutex
	fi *FaultInjector
}

func (h *faultHolder) get() *FaultInjector {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.fi
}

func (h *faultHolder) set(fi *FaultInjector) {
	h.mu.Lock()
	h.fi = fi
	h.mu.Unlock()
}

// SetFaultInjector installs (or, with nil, removes) the chaos hook.
// Test-only: it exists so the fault-injection suite can drive every
// recovery path deterministically.
func (s *Service) SetFaultInjector(fi *FaultInjector) { s.faults.set(fi) }

// FailureMetrics is the failure/recovery accounting served on
// /api/sweeps/metrics — the observability an operator needs to tell a
// healthy service from one quietly burning attempts.
type FailureMetrics struct {
	// Retries counts re-attempts after a transient failure (not first
	// attempts).
	Retries uint64 `json:"retries"`
	// PanicsRecovered counts worker panics converted to ScenarioErrors.
	PanicsRecovered uint64 `json:"panics_recovered"`
	// Timeouts counts attempts that exceeded the scenario deadline.
	Timeouts uint64 `json:"timeouts"`
	// QueueRejections counts submissions refused with ErrSaturated.
	QueueRejections uint64 `json:"queue_rejections"`
	// Pending is the current queued+running scenario count across all
	// sweeps; MaxPending is the admission bound it is checked against.
	Pending    int64 `json:"pending"`
	MaxPending int   `json:"max_pending"`
}

// FailureMetricsSnapshot returns the current failure/recovery counters.
func (s *Service) FailureMetricsSnapshot() FailureMetrics {
	return FailureMetrics{
		Retries:         s.retries.Value(),
		PanicsRecovered: s.panics.Value(),
		Timeouts:        s.timeouts.Value(),
		QueueRejections: s.rejections.Value(),
		Pending:         s.pending.Load(),
		MaxPending:      s.maxPending,
	}
}

// runRecovered executes one simulation attempt inside the panic
// isolation boundary: a panic anywhere below — the twin, the power
// engine, the cooling solver, or an injected fault — is converted to a
// *PanicError instead of unwinding the worker goroutine and killing the
// process.
func (sw *Sweep) runRecovered(ctx context.Context, i, attempt int) (res *core.Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			sw.svc.panics.Inc()
			res, err = nil, &PanicError{Value: rec, Stack: string(debug.Stack())}
		}
	}()
	if fi := sw.svc.faults.get(); fi != nil && fi.BeforeRun != nil {
		if err := fi.BeforeRun(ctx, Fault{
			SpecHash:     sw.specHash,
			ScenarioHash: sw.hashes[i],
			Index:        i,
			Attempt:      attempt,
		}); err != nil {
			return nil, err
		}
		// An injected delay may have consumed the whole deadline; surface
		// that exactly like a slow simulation would.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	// Coordinator mode: hand the attempt to the remote compute tier.
	// Telemetry-writer scenarios stay local — their side effect cannot
	// cross the wire, and the coordinator holds the compiled spec anyway.
	if r := sw.svc.runner; r != nil && sw.scenarios[i].TelemetryTo == nil {
		return r.RunScenario(ctx, RunRequest{
			Spec:         sw.spec,
			SpecHash:     sw.specHash,
			Scenario:     sw.scenarios[i],
			ScenarioHash: sw.hashes[i],
			Index:        i,
			Attempt:      attempt,
		})
	}
	return sw.compiled.Twin().RunContext(ctx, sw.scenarios[i])
}
