package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"exadigit/internal/core"
	"exadigit/internal/job"
	"exadigit/internal/telemetry"
)

// scenarioPayload is the canonical hashable view of a Scenario. Every
// field that can change a run's outcome is listed explicitly — adding a
// field to core.Scenario does not silently change existing hashes, and
// runtime-only plumbing (TelemetryTo) is excluded by construction. The
// replay dataset is folded in as its own content digest so huge traces
// hash in one pass without being re-encoded into the payload.
type scenarioPayload struct {
	Name       string            `json:"name"`
	Workload   core.WorkloadKind `json:"workload"`
	HorizonSec float64           `json:"horizon_sec"`
	TickSec    float64           `json:"tick_sec"`
	Policy     string            `json:"policy"`
	Cooling    bool              `json:"cooling"`
	// CoolingSpecHash folds the scenario's plant override in by its
	// canonical content hash (config.CoolingSpec.Hash), which also
	// covers the content of runtime-registered presets — re-registering
	// a plant under the same name changes override-scenario hashes too.
	// Omitted when the scenario cools with the system spec's own plant,
	// so pre-override hashes are unchanged.
	CoolingSpecHash string              `json:"cooling_spec_hash,omitempty"`
	PowerMode       string              `json:"power_mode"`
	Generator       job.GeneratorConfig `json:"generator"`
	// Partitions is the per-partition workload configuration of a
	// multi-partition scenario; omitted when empty, so pre-partition
	// scenario hashes are unchanged.
	Partitions       []core.PartitionScenario `json:"partitions,omitempty"`
	DatasetDigest    string                   `json:"dataset_digest,omitempty"`
	BenchmarkWallSec float64                  `json:"benchmark_wall_sec"`
	WetBulbC         float64                  `json:"wetbulb_c"`
	WeatherStart     time.Time                `json:"weather_start"`
	WeatherSeed      int64                    `json:"weather_seed"`
	Engine           string                   `json:"engine"`
	NoExport         bool                     `json:"no_export"`
	NoHistory        bool                     `json:"no_history"`
}

// HashScenario returns the canonical content hash of a scenario — the
// scenario half of the (spec, scenario) result-cache key. Two scenarios
// hash equal iff they would produce identical results against the same
// spec (the simulator is deterministic given these fields).
func HashScenario(sc core.Scenario) (string, error) {
	p := scenarioPayload{
		Name:       sc.Name,
		Workload:   sc.Workload,
		HorizonSec: sc.HorizonSec,
		TickSec:    sc.TickSec,
		Policy:     sc.Policy,
		// A plant override implies cooling (the twin normalizes the same
		// way), so {CoolingSpec, Cooling:false} and {CoolingSpec,
		// Cooling:true} — the library and HTTP spellings of the same run
		// — hash identically and share one cache entry.
		Cooling:          sc.Cooling || sc.CoolingSpec != nil,
		PowerMode:        sc.PowerMode,
		Generator:        sc.Generator,
		Partitions:       sc.Partitions,
		BenchmarkWallSec: sc.BenchmarkWallSec,
		WetBulbC:         sc.WetBulbC,
		WeatherStart:     sc.WeatherStart,
		WeatherSeed:      sc.WeatherSeed,
		Engine:           sc.Engine,
		NoExport:         sc.NoExport,
		NoHistory:        sc.NoHistory,
	}
	if len(sc.Partitions) > 0 {
		// An explicit per-partition list makes the twin ignore the
		// scenario-level workload knobs (core.Twin.partitionWorkloads),
		// so normalize them out of the hash — spellings differing only
		// in an ignored field share one cache entry, matching the
		// implied-cooling normalization above. The replay dataset is
		// ignored too (replay is never per-partition), so its digest is
		// skipped below.
		p.Workload = ""
		p.Generator = job.GeneratorConfig{}
		p.BenchmarkWallSec = 0
	}
	if sc.CoolingSpec != nil {
		h, err := sc.CoolingSpec.Hash()
		if err != nil {
			return "", fmt.Errorf("service: scenario hash: %w", err)
		}
		p.CoolingSpecHash = h
	}
	if sc.Dataset != nil && len(sc.Partitions) == 0 {
		digest, err := datasetDigest(sc.Dataset)
		if err != nil {
			return "", err
		}
		p.DatasetDigest = digest
	}
	data, err := json.Marshal(p)
	if err != nil {
		return "", fmt.Errorf("service: scenario hash: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// datasetDigest streams the dataset's content through SHA-256 without
// materializing a second copy.
func datasetDigest(d *telemetry.Dataset) (string, error) {
	h := sha256.New()
	enc := json.NewEncoder(h)
	if err := enc.Encode(struct {
		Epoch       string  `json:"epoch"`
		SeriesDtSec float64 `json:"series_dt_sec"`
	}{d.Epoch, d.SeriesDtSec}); err != nil {
		return "", fmt.Errorf("service: dataset digest: %w", err)
	}
	for i := range d.Jobs {
		if err := enc.Encode(&d.Jobs[i]); err != nil {
			return "", fmt.Errorf("service: dataset digest: %w", err)
		}
	}
	for i := range d.Series {
		if err := enc.Encode(&d.Series[i]); err != nil {
			return "", fmt.Errorf("service: dataset digest: %w", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
