package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/httpmw"
	"exadigit/internal/job"
	"exadigit/internal/raps"
)

// This file is the HTTP face of the sweep service — the REST backend of
// the paper's §III-B6 deployment, where what-if experiments are
// launched against a long-running twin and recalled later:
//
//	POST   /api/sweeps              submit a sweep (SubmitRequest JSON)
//	GET    /api/sweeps              list sweeps (summaries)
//	GET    /api/sweeps/{id}         one sweep's full status
//	GET    /api/sweeps/{id}/results completed results (reports)
//	GET    /api/sweeps/{id}/stream  NDJSON: results streamed as they complete
//	POST   /api/sweeps/{id}/cancel  cancel queued work
//
// Replay-dataset scenarios are not accepted over the wire (datasets are
// submitted programmatically via Service.Submit).

// ScenarioRequest is the wire form of one scenario.
type ScenarioRequest struct {
	Name       string  `json:"name,omitempty"`
	Workload   string  `json:"workload"`
	HorizonSec float64 `json:"horizon_sec"`
	TickSec    float64 `json:"tick_sec,omitempty"`
	Policy     string  `json:"policy,omitempty"`
	Cooling    bool    `json:"cooling,omitempty"`
	// CoolingSpec overrides the system spec's plant for this scenario
	// (preset name or AutoCSM design quantities); implies cooling. It is
	// validated at this boundary — non-positive flows, CDU counts, or an
	// unknown preset are a 400, not a worker failure.
	CoolingSpec *config.CoolingSpec `json:"cooling_spec,omitempty"`
	PowerMode   string              `json:"power_mode,omitempty"`
	// Partitions configures each partition's workload individually for
	// multi-partition specs (Setonix-style, §V): one entry per spec
	// partition, each with its own workload kind, generator, benchmark
	// wall time, and job cap. Omitted → the scenario-level workload is
	// replicated onto every partition.
	Partitions []core.PartitionScenario `json:"partitions,omitempty"`
	// Generator tunes synthetic workloads; omitted → defaults.
	Generator        *job.GeneratorConfig `json:"generator,omitempty"`
	BenchmarkWallSec float64              `json:"benchmark_wall_sec,omitempty"`
	WetBulbC         float64              `json:"wetbulb_c,omitempty"`
	WeatherStart     time.Time            `json:"weather_start,omitempty"`
	WeatherSeed      int64                `json:"weather_seed,omitempty"`
	Engine           string               `json:"engine,omitempty"`
	// NoExport and NoHistory default to true over HTTP: sweep results
	// carry reports, not dense telemetry exports or sample series. Set
	// either to false explicitly to retain the data in the server-side
	// result (recallable via Service.Sweep(id).Results()).
	NoExport  *bool `json:"no_export,omitempty"`
	NoHistory *bool `json:"no_history,omitempty"`
}

// Scenario converts the wire form to a core scenario.
func (r *ScenarioRequest) Scenario() core.Scenario {
	sc := core.Scenario{
		Name:             r.Name,
		Workload:         core.WorkloadKind(r.Workload),
		HorizonSec:       r.HorizonSec,
		TickSec:          r.TickSec,
		Policy:           r.Policy,
		Cooling:          r.Cooling || r.CoolingSpec != nil,
		CoolingSpec:      r.CoolingSpec,
		PowerMode:        r.PowerMode,
		Partitions:       r.Partitions,
		BenchmarkWallSec: r.BenchmarkWallSec,
		WetBulbC:         r.WetBulbC,
		WeatherStart:     r.WeatherStart,
		WeatherSeed:      r.WeatherSeed,
		Engine:           r.Engine,
		NoExport:         true,
		NoHistory:        true,
	}
	if r.Generator != nil {
		sc.Generator = *r.Generator
	}
	if r.NoExport != nil {
		sc.NoExport = *r.NoExport
	}
	if r.NoHistory != nil {
		sc.NoHistory = *r.NoHistory
	}
	return sc
}

// SubmitRequest is the POST /api/sweeps body.
type SubmitRequest struct {
	Name string `json:"name,omitempty"`
	// SpecName selects a built-in spec ("frontier" default,
	// "setonix-like"); Spec overrides it with a full inline system spec.
	SpecName      string             `json:"spec_name,omitempty"`
	Spec          *config.SystemSpec `json:"spec,omitempty"`
	MaxConcurrent int                `json:"max_concurrent,omitempty"`
	// TimeoutSec bounds each scenario attempt's wall time for this sweep
	// (0 → the server's -scenario-timeout default). Overrunning attempts
	// are retried; a scenario that keeps overrunning is reported failed,
	// not left running forever.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// MaxAttempts overrides the server's retry budget for this sweep.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// SweepKey is the idempotency key (the Idempotency-Key header takes
	// precedence): a resubmission carrying a key already bound to a
	// sweep — including one recovered from the journal after a server
	// restart — returns that sweep's original id instead of recomputing.
	SweepKey string `json:"sweep_key,omitempty"`
	// Ephemeral opts this sweep out of the durable journal: it will not
	// be re-adopted after a restart. Set by cluster coordinators on shard
	// dispatches — the shard is the coordinator's re-dispatchable work
	// and the coordinator's own journal is the durable record.
	Ephemeral bool              `json:"ephemeral,omitempty"`
	Scenarios []ScenarioRequest `json:"scenarios"`
}

// SubmitResponse acknowledges a submission.
type SubmitResponse struct {
	ID             string   `json:"id"`
	SpecHash       string   `json:"spec_hash"`
	ScenarioHashes []string `json:"scenario_hashes"`
	// Deduplicated marks a response serving an existing sweep matched by
	// idempotency key (HTTP 200, not 202).
	Deduplicated bool `json:"deduplicated,omitempty"`
}

// ResultEntry is one completed scenario on the results/stream endpoints.
type ResultEntry struct {
	Index    int           `json:"index"`
	Name     string        `json:"name"`
	State    ScenarioState `json:"state"`
	CacheHit bool          `json:"cache_hit,omitempty"`
	WallSec  float64       `json:"wall_sec,omitempty"`
	Error    string        `json:"error,omitempty"`
	Report   *raps.Report  `json:"report,omitempty"`
}

// Handler returns the HTTP handler exposing the sweep API, wrapped in
// the shared middleware stack (panic recovery, metrics, optional
// logging — the same layer the viz dashboard uses).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /api/sweeps", s.handleList)
	mux.HandleFunc("GET /api/sweeps/metrics", s.handleMetrics)
	mux.Handle("GET /api/sweeps/trace", s.tracer.Handler())
	mux.HandleFunc("GET /api/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/sweeps/{id}/results", s.handleResults)
	mux.HandleFunc("GET /api/sweeps/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /api/sweeps/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /api/optimize", s.handleOptimizeSubmit)
	mux.HandleFunc("GET /api/optimize", s.handleOptimizeList)
	mux.HandleFunc("GET /api/optimize/{id}", s.handleOptimizeStatus)
	mux.HandleFunc("GET /api/optimize/{id}/result", s.handleOptimizeResult)
	mux.HandleFunc("GET /api/optimize/{id}/stream", s.handleOptimizeStream)
	mux.HandleFunc("POST /api/optimize/{id}/cancel", s.handleOptimizeCancel)
	return httpmw.Wrap(mux, s.logf, s.metrics)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is the JSON error envelope. Spec validation and AutoCSM
// feasibility failures carry the structured field/constraint/suggestion
// triple (config.FieldError) so clients can highlight the offending
// field instead of parsing sizing internals out of a message string.
type errorBody struct {
	Error      string `json:"error"`
	Field      string `json:"field,omitempty"`
	Constraint string `json:"constraint,omitempty"`
	Suggestion string `json:"suggestion,omitempty"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	body := errorBody{Error: err.Error()}
	var fe *config.FieldError
	if errors.As(err, &fe) {
		body.Field = fe.Field
		body.Constraint = fe.Constraint
		body.Suggestion = fe.Suggestion
	}
	writeJSON(w, code, body)
}

// handleMetrics serves the shared HTTP middleware counters together with
// the result-cache accounting, the failure/recovery counters (retries,
// panics recovered, timeouts, queue rejections), and — when a durable
// store is configured — the store's hit/miss/byte accounting.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"http":     s.metrics.Snapshot(),
		"cache":    s.CacheMetricsSnapshot(),
		"failures": s.FailureMetricsSnapshot(),
	}
	if sm, ok := s.StoreMetricsSnapshot(); ok {
		body["store"] = sm
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	var spec config.SystemSpec
	switch {
	case req.Spec != nil:
		spec = *req.Spec
	case req.SpecName == "" || req.SpecName == "frontier":
		spec = config.Frontier()
	case req.SpecName == "setonix-like":
		spec = config.SetonixLike()
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown spec_name %q", req.SpecName))
		return
	}
	scenarios := make([]core.Scenario, len(req.Scenarios))
	for i := range req.Scenarios {
		scenarios[i] = req.Scenarios[i].Scenario()
	}
	key := r.Header.Get("Idempotency-Key")
	if key == "" {
		key = req.SweepKey
	}
	sw, existing, err := s.SubmitIdempotent(spec, scenarios, SweepOptions{
		Name:            req.Name,
		MaxConcurrent:   req.MaxConcurrent,
		ScenarioTimeout: time.Duration(req.TimeoutSec * float64(time.Second)),
		MaxAttempts:     req.MaxAttempts,
		Key:             key,
		Ephemeral:       req.Ephemeral,
	})
	if err != nil {
		switch {
		case errors.Is(err, ErrSaturated):
			// Backpressure, not failure: tell the client when the queue
			// is likely to have room again.
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSec()))
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrClosed):
			// Draining, not gone: the hint is the remaining drain window,
			// after which a restarted instance may be accepting again.
			w.Header().Set("Retry-After", strconv.Itoa(s.closedRetryAfterSec()))
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	code := http.StatusAccepted
	if existing {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{
		ID: sw.ID(), SpecHash: sw.SpecHash(), ScenarioHashes: sw.ScenarioHashes(),
		Deduplicated: existing,
	})
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	hits, misses, entries := s.CacheStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"sweeps": s.List(),
		"cache":  map[string]any{"hits": hits, "misses": misses, "entries": entries},
	})
}

func (s *Service) sweepFor(w http.ResponseWriter, r *http.Request) (*Sweep, bool) {
	id := r.PathValue("id")
	sw, ok := s.Sweep(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no sweep %q", id))
		return nil, false
	}
	return sw, true
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if sw, ok := s.sweepFor(w, r); ok {
		writeJSON(w, http.StatusOK, sw.Status())
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	if sw, ok := s.sweepFor(w, r); ok {
		sw.Cancel()
		writeJSON(w, http.StatusOK, sw.Status())
	}
}

func resultEntry(st ScenarioStatus, res *core.Result) ResultEntry {
	e := ResultEntry{
		Index:    st.Index,
		Name:     st.Name,
		State:    st.State,
		CacheHit: st.CacheHit,
		WallSec:  st.WallSec,
		Error:    st.Error,
	}
	if res != nil {
		e.Report = res.Report
	}
	return e
}

func (s *Service) handleResults(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepFor(w, r)
	if !ok {
		return
	}
	st := sw.Status()
	results := sw.Results()
	out := make([]ResultEntry, 0, len(st.Scenarios))
	for i, sc := range st.Scenarios {
		if sc.Terminal() {
			out = append(out, resultEntry(sc, results[i]))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStream writes one NDJSON ResultEntry per scenario as each
// reaches a terminal state, flushing after every line, and returns once
// the sweep finishes or the client disconnects — the live feed a
// dashboard or CLI tails while a sweep works through the pool.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepFor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	sent := make([]bool, len(sw.hashes))
	for {
		changed := sw.changed()
		st := sw.Status()
		results := sw.Results()
		for i, sc := range st.Scenarios {
			if sent[i] || !sc.Terminal() {
				continue
			}
			if err := enc.Encode(resultEntry(sc, results[i])); err != nil {
				return
			}
			sent[i] = true
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.Finished {
			return
		}
		select {
		case <-changed:
		case <-sw.Done():
		case <-r.Context().Done():
			return
		}
	}
}
