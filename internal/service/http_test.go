package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"exadigit/internal/config"
	"exadigit/internal/core"
	"exadigit/internal/fmu"
	"exadigit/internal/job"
	"exadigit/internal/store"
)

func postSweep(t *testing.T, url string, req SubmitRequest) SubmitResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/api/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var ack SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack
}

func whatIf32() SubmitRequest {
	req := SubmitRequest{Name: "whatif-32"}
	for i := 0; i < 32; i++ {
		gen := job.DefaultGeneratorConfig()
		gen.Seed = int64(i + 1)
		req.Scenarios = append(req.Scenarios, ScenarioRequest{
			Name:       fmt.Sprintf("day-%d", i),
			Workload:   "synthetic",
			HorizonSec: 1800,
			TickSec:    15,
			Cooling:    true,
			WetBulbC:   20,
			Generator:  &gen,
		})
	}
	return req
}

// TestHTTPSweep32SharedCompiledSpec is the acceptance test for the
// tentpole: a 32-scenario what-if sweep submitted over HTTP completes
// through the worker pool with the power model and cooling FMU
// description each built exactly once (one shared CompiledSpec), and an
// identical re-submission is served entirely from the result cache.
func TestHTTPSweep32SharedCompiledSpec(t *testing.T) {
	svc := New(Options{Workers: 4})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	modelsBefore := config.ModelBuilds()
	descsBefore := fmu.DescriptionBuilds()

	ack := postSweep(t, srv.URL, whatIf32())
	if len(ack.SpecHash) != 64 {
		t.Fatalf("bad spec hash %q", ack.SpecHash)
	}
	if len(ack.ScenarioHashes) != 32 {
		t.Fatalf("want 32 scenario hashes, got %d", len(ack.ScenarioHashes))
	}
	sw, ok := svc.Sweep(ack.ID)
	if !ok {
		t.Fatalf("sweep %q not registered", ack.ID)
	}
	st := waitSweep(t, sw)
	if st.Done != 32 || st.Failed != 0 {
		t.Fatalf("sweep did not complete cleanly: %+v", st)
	}

	if got := config.ModelBuilds() - modelsBefore; got != 1 {
		t.Errorf("power model built %d times for 32 scenarios; want exactly 1", got)
	}
	if got := fmu.DescriptionBuilds() - descsBefore; got != 1 {
		t.Errorf("FMU description built %d times for 32 scenarios; want exactly 1", got)
	}

	// Identical re-submission: zero simulations, zero new builds.
	_, missesBefore, _ := svc.CacheStats()
	ack2 := postSweep(t, srv.URL, whatIf32())
	if ack2.SpecHash != ack.SpecHash {
		t.Errorf("spec hash changed across submissions")
	}
	sw2, _ := svc.Sweep(ack2.ID)
	st2 := waitSweep(t, sw2)
	if st2.Cached != 32 {
		t.Fatalf("re-submission not served from cache: %+v", st2)
	}
	if _, misses, _ := svc.CacheStats(); misses != missesBefore {
		t.Errorf("re-submission simulated %d scenarios", misses-missesBefore)
	}
	if got := config.ModelBuilds() - modelsBefore; got != 1 {
		t.Errorf("re-submission rebuilt the power model (%d builds)", got)
	}

	// Results endpoint: 32 terminal entries with reports.
	resp, err := http.Get(srv.URL + "/api/sweeps/" + ack.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entries []ResultEntry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 32 {
		t.Fatalf("want 32 result entries, got %d", len(entries))
	}
	for _, e := range entries {
		if e.Report == nil || e.Report.AvgPowerMW <= 0 {
			t.Fatalf("entry %d: missing report", e.Index)
		}
	}
}

// TestHTTPStreamDeliversResultsAsTheyComplete tails the NDJSON stream of
// a live sweep and receives one terminal entry per scenario.
func TestHTTPStreamDeliversResultsAsTheyComplete(t *testing.T) {
	svc := New(Options{Workers: 2})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	req := SubmitRequest{Name: "stream"}
	for i := 0; i < 5; i++ {
		gen := job.DefaultGeneratorConfig()
		gen.Seed = int64(500 + i)
		req.Scenarios = append(req.Scenarios, ScenarioRequest{
			Workload: "synthetic", HorizonSec: 3600, TickSec: 15, Generator: &gen,
		})
	}
	ack := postSweep(t, srv.URL, req)

	resp, err := http.Get(srv.URL + "/api/sweeps/" + ack.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	seen := map[int]bool{}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		var e ResultEntry
		if err := json.Unmarshal(scanner.Bytes(), &e); err != nil {
			t.Fatalf("bad stream line %q: %v", scanner.Text(), err)
		}
		if seen[e.Index] {
			t.Fatalf("scenario %d streamed twice", e.Index)
		}
		seen[e.Index] = true
		if e.State != StateDone && e.State != StateCached {
			t.Fatalf("scenario %d streamed in state %s", e.Index, e.State)
		}
		if e.Report == nil {
			t.Fatalf("scenario %d streamed without report", e.Index)
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("streamed %d of 5 results", len(seen))
	}
}

// TestHTTPCancelAndStatus exercises cancel over HTTP plus the list
// endpoint's cache statistics.
func TestHTTPCancelAndStatus(t *testing.T) {
	svc := New(Options{Workers: 1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	req := SubmitRequest{Name: "cancel-me", MaxConcurrent: 1}
	for i := 0; i < 6; i++ {
		gen := job.DefaultGeneratorConfig()
		gen.Seed = int64(900 + i)
		req.Scenarios = append(req.Scenarios, ScenarioRequest{
			Workload: "synthetic", HorizonSec: 86400, TickSec: 15, Generator: &gen,
		})
	}
	ack := postSweep(t, srv.URL, req)
	resp, err := http.Post(srv.URL+"/api/sweeps/"+ack.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	sw, _ := svc.Sweep(ack.ID)
	st := waitSweep(t, sw)
	if st.Cancelled == 0 {
		t.Fatalf("nothing cancelled: %+v", st)
	}

	var list struct {
		Sweeps []SweepStatus  `json:"sweeps"`
		Cache  map[string]any `json:"cache"`
	}
	lr, err := http.Get(srv.URL + "/api/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Body.Close()
	if err := json.NewDecoder(lr.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sweeps) != 1 || list.Sweeps[0].ID != ack.ID {
		t.Fatalf("bad sweep list: %+v", list.Sweeps)
	}
	if list.Cache == nil {
		t.Fatal("list response missing cache stats")
	}

	// Unknown sweep → 404.
	nf, err := http.Get(srv.URL + "/api/sweeps/sw-999")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("want 404 for unknown sweep, got %d", nf.StatusCode)
	}
}

// TestMetricsReportsCacheEvictions pins the /api/sweeps/metrics cache
// block: a count-bounded cache under pressure reports evictions, live
// entries, and capacity — the observability groundwork for the planned
// byte-bounded persistent cache.
func TestMetricsReportsCacheEvictions(t *testing.T) {
	svc := New(Options{Workers: 2, CacheCap: 2})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	var scenarios []core.Scenario
	for i := 0; i < 4; i++ {
		gen := job.DefaultGeneratorConfig()
		gen.Seed = int64(900 + i)
		scenarios = append(scenarios, core.Scenario{
			Workload: core.WorkloadSynthetic, Generator: gen,
			HorizonSec: 60, TickSec: 15, NoExport: true, NoHistory: true,
		})
	}
	sw, err := svc.Submit(config.Frontier(), scenarios, SweepOptions{Name: "evict"})
	if err != nil {
		t.Fatal(err)
	}
	<-sw.Done()

	resp, err := http.Get(srv.URL + "/api/sweeps/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Cache CacheMetrics `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Cache.Capacity != 2 {
		t.Errorf("capacity = %d, want 2", got.Cache.Capacity)
	}
	if got.Cache.Evictions < 2 {
		t.Errorf("evictions = %d, want ≥ 2 (4 results through a cap of 2)", got.Cache.Evictions)
	}
	if got.Cache.Entries > 2 {
		t.Errorf("entries = %d exceed capacity", got.Cache.Entries)
	}
	if got.Cache.Misses < 4 {
		t.Errorf("misses = %d, want ≥ 4", got.Cache.Misses)
	}
}

// TestHTTPBackpressure429: an HTTP submission against a saturated queue
// is a 429 with a Retry-After header and the JSON error envelope; once
// capacity frees, the same submission is accepted.
func TestHTTPBackpressure429(t *testing.T) {
	gate := make(chan struct{})
	svc := New(Options{Workers: 1, MaxPending: 1, RetryBaseDelay: time.Millisecond})
	svc.SetFaultInjector(&FaultInjector{
		BeforeRun: func(ctx context.Context, f Fault) error {
			select {
			case <-gate:
			case <-ctx.Done():
			}
			return nil
		},
	})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	req := SubmitRequest{Scenarios: []ScenarioRequest{{
		Workload: "synthetic", HorizonSec: 900, TickSec: 15,
	}}}
	ack := postSweep(t, srv.URL, req)

	body, _ := json.Marshal(SubmitRequest{Scenarios: []ScenarioRequest{{
		Workload: "synthetic", HorizonSec: 1800, TickSec: 15,
	}}})
	resp, err := http.Post(srv.URL+"/api/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
		t.Fatalf("429 body not the JSON error envelope: %v %+v", err, eb)
	}

	close(gate)
	sw, _ := svc.Sweep(ack.ID)
	waitSweep(t, sw)
	postSweep(t, srv.URL, SubmitRequest{Scenarios: []ScenarioRequest{{
		Workload: "synthetic", HorizonSec: 1800, TickSec: 15,
	}}})
}

// TestHTTPMetricsFailureAndStoreSections: /api/sweeps/metrics reports
// the failure/recovery counters and, when a store is configured, the
// durable-store accounting.
func TestHTTPMetricsFailureAndStoreSections(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Options{Workers: 2, Store: st, MaxAttempts: 2, RetryBaseDelay: time.Millisecond})
	svc.SetFaultInjector(&FaultInjector{
		BeforeRun: func(ctx context.Context, f Fault) error {
			if f.Attempt == 1 {
				panic("metrics: injected panic")
			}
			return nil
		},
	})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	ack := postSweep(t, srv.URL, SubmitRequest{Scenarios: []ScenarioRequest{{
		Workload: "synthetic", HorizonSec: 900, TickSec: 15,
	}}})
	sw, _ := svc.Sweep(ack.ID)
	waitSweep(t, sw)

	resp, err := http.Get(srv.URL + "/api/sweeps/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Failures FailureMetrics `json:"failures"`
		Store    *store.Metrics `json:"store"`
		Cache    CacheMetrics   `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Failures.PanicsRecovered != 1 || m.Failures.Retries != 1 {
		t.Fatalf("failure section: %+v", m.Failures)
	}
	if m.Store == nil || m.Store.Puts != 1 || m.Store.Bytes <= 0 {
		t.Fatalf("store section: %+v", m.Store)
	}
}
